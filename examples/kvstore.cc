/**
 * @file
 * A crash-consistent persistent key-value store built on SpecPMT.
 *
 * The store is an open-addressing hash table whose buckets live in
 * persistent memory; every mutation (put/erase) is one speculative
 * transaction, so multi-word bucket updates are crash-atomic. The
 * demo fills the store, then runs a loop of mutation batches, each
 * followed by a randomly-timed simulated power failure and recovery,
 * verifying the store against a shadow std::map after every reboot.
 *
 * Build & run:  ./build/examples/kvstore
 */

#include <cstdio>
#include <map>
#include <optional>

#include "common/hash.hh"
#include "common/rand.hh"
#include "core/spec_tx.hh"
#include "pmem/pmem_device.hh"
#include "pmem/pmem_pool.hh"

using namespace specpmt;

namespace
{

/** A fixed-capacity crash-consistent hash map of u64 -> u64. */
class PmKvStore
{
  public:
    static constexpr unsigned kBuckets = 1u << 12;
    static constexpr unsigned kRootSlot = txn::kAppRootSlotBase;

    /** Bucket states. */
    enum : std::uint64_t
    {
        kEmpty = 0,
        kTombstone = ~0ull,
    };

    struct Bucket
    {
        std::uint64_t key;   ///< kEmpty / kTombstone / user key
        std::uint64_t value;
    };

    /** Create a new store in @p pool (or adopt the existing one). */
    PmKvStore(pmem::PmemPool &pool, txn::TxRuntime &tx)
        : pool_(pool), tx_(tx)
    {
        tableOff_ = pool.getRoot(kRootSlot);
        if (tableOff_ == kPmNull) {
            tableOff_ = pool.alloc(kBuckets * sizeof(Bucket));
            // Initialize through committed transactions so every
            // bucket is covered by a speculative log record.
            constexpr unsigned kBatch = 128;
            for (unsigned base = 0; base < kBuckets; base += kBatch) {
                tx_.txBegin(0);
                for (unsigned i = base; i < base + kBatch; ++i) {
                    tx_.txStoreT<Bucket>(
                        0, bucketOff(i), Bucket{kEmpty, 0});
                }
                tx_.txCommit(0);
            }
            pool.setRoot(kRootSlot, tableOff_);
        }
    }

    /** Insert or update; crash-atomic. Returns false when full. */
    bool
    put(std::uint64_t key, std::uint64_t value)
    {
        const auto slot = findSlot(key, /*for_insert=*/true);
        if (!slot)
            return false;
        tx_.txBegin(0);
        tx_.txStoreT<Bucket>(0, bucketOff(*slot), Bucket{key, value});
        tx_.txCommit(0);
        return true;
    }

    /** Point lookup. */
    std::optional<std::uint64_t>
    get(std::uint64_t key)
    {
        const auto slot = findSlot(key, false);
        if (!slot)
            return std::nullopt;
        const auto bucket = tx_.txLoadT<Bucket>(0, bucketOff(*slot));
        return bucket.key == key ? std::optional(bucket.value)
                                 : std::nullopt;
    }

    /** Delete; crash-atomic. */
    void
    erase(std::uint64_t key)
    {
        const auto slot = findSlot(key, false);
        if (!slot)
            return;
        const auto bucket = tx_.txLoadT<Bucket>(0, bucketOff(*slot));
        if (bucket.key != key)
            return;
        tx_.txBegin(0);
        tx_.txStoreT<Bucket>(0, bucketOff(*slot),
                             Bucket{kTombstone, 0});
        tx_.txCommit(0);
    }

    /** Visit every live pair. */
    template <typename Fn>
    void
    forEach(Fn &&fn)
    {
        for (unsigned i = 0; i < kBuckets; ++i) {
            const auto bucket = tx_.txLoadT<Bucket>(0, bucketOff(i));
            if (bucket.key != kEmpty && bucket.key != kTombstone)
                fn(bucket.key, bucket.value);
        }
    }

  private:
    PmOff
    bucketOff(unsigned index) const
    {
        return tableOff_ + index * sizeof(Bucket);
    }

    /** Linear probing; returns the match or first usable slot. */
    std::optional<unsigned>
    findSlot(std::uint64_t key, bool for_insert)
    {
        unsigned index =
            static_cast<unsigned>(mix64(key)) & (kBuckets - 1);
        std::optional<unsigned> first_free;
        for (unsigned probe = 0; probe < kBuckets; ++probe) {
            const auto bucket = tx_.txLoadT<Bucket>(0,
                                                    bucketOff(index));
            if (bucket.key == key)
                return index;
            if (bucket.key == kTombstone && !first_free)
                first_free = index;
            if (bucket.key == kEmpty)
                return for_insert
                    ? (first_free ? first_free : std::optional(index))
                    : std::nullopt;
            index = (index + 1) & (kBuckets - 1);
        }
        return for_insert ? first_free : std::nullopt;
    }

    pmem::PmemPool &pool_;
    txn::TxRuntime &tx_;
    PmOff tableOff_ = kPmNull;
};

} // namespace

int
main()
{
    pmem::PmemDevice device(128u << 20);
    pmem::PmemPool pool(device);
    Rng rng(2026);
    std::map<std::uint64_t, std::uint64_t> shadow;

    auto runtime = std::make_unique<core::SpecTx>(pool, 1);
    auto store = std::make_unique<PmKvStore>(pool, *runtime);

    // Seed the store.
    for (int i = 0; i < 500; ++i) {
        const std::uint64_t key = 1 + rng.below(2000);
        const std::uint64_t value = rng.next();
        if (store->put(key, value))
            shadow[key] = value;
    }

    unsigned reboots = 0;
    for (int round = 0; round < 20; ++round) {
        // A batch of mutations with a crash armed somewhere inside.
        device.armCrash(static_cast<long>(50 + rng.below(2000)));
        try {
            for (int i = 0; i < 200; ++i) {
                const std::uint64_t key = 1 + rng.below(2000);
                if (rng.chance(0.3)) {
                    store->erase(key);
                    shadow.erase(key);
                } else {
                    const std::uint64_t value = rng.next();
                    if (store->put(key, value))
                        shadow[key] = value;
                }
            }
            device.armCrash(-1);
        } catch (const pmem::SimulatedCrash &) {
            // Power failure: the mutation the crash interrupted may
            // or may not be in the shadow; resync the shadow from
            // the recovered store below (crash-atomicity guarantees
            // it differs by at most that one whole mutation).
            ++reboots;
            runtime.reset();
            store.reset();
            device.simulateCrash(pmem::CrashPolicy::random(round, 0.5));
            pool.reopenAfterCrash();
            runtime = std::make_unique<core::SpecTx>(pool, 1);
            runtime->recover();
            store = std::make_unique<PmKvStore>(pool, *runtime);

            // Verify: recovered content differs from the shadow by at
            // most one key (the interrupted mutation), never by a
            // torn bucket.
            std::map<std::uint64_t, std::uint64_t> recovered;
            store->forEach([&](std::uint64_t k, std::uint64_t v) {
                recovered[k] = v;
            });
            unsigned differences = 0;
            for (const auto &[k, v] : shadow) {
                auto it = recovered.find(k);
                if (it == recovered.end() || it->second != v)
                    ++differences;
            }
            for (const auto &[k, v] : recovered) {
                if (!shadow.count(k))
                    ++differences;
            }
            if (differences > 1) {
                std::printf("FAIL: %u divergent keys after reboot\n",
                            differences);
                return 1;
            }
            shadow = std::move(recovered);
        }
    }

    runtime->shutdown();
    std::printf("kvstore survived %u power failures; %zu keys live, "
                "all verified\n",
                reboots, shadow.size());
    return 0;
}
