/**
 * @file
 * Log-management demo: watch the speculative log grow, get compacted
 * by the background reclaimer, and finally hand the pool over to an
 * undo-logging runtime via the mechanism switch (Section 4.3.1).
 *
 * Build & run:  ./build/examples/logstats
 */

#include <cstdio>

#include "common/rand.hh"
#include "core/spec_tx.hh"
#include "pmem/pmem_device.hh"
#include "pmem/pmem_pool.hh"
#include "txn/undo_tx.hh"

using namespace specpmt;

int
main()
{
    pmem::PmemDevice device(256u << 20);
    pmem::PmemPool pool(device);
    Rng rng(99);

    core::SpecTxConfig config;
    config.backgroundReclaim = false; // drive reclamation explicitly
    core::SpecTx tx(pool, 1, config);

    // A small hot working set updated many times: the classic case
    // where stale log records pile up.
    constexpr unsigned kSlots = 64;
    const PmOff data = pool.alloc(kSlots * 8);
    pool.setRoot(txn::kAppRootSlotBase, data);
    tx.txBegin(0);
    for (unsigned i = 0; i < kSlots; ++i)
        tx.txStoreT<std::uint64_t>(0, data + i * 8, 0);
    tx.txCommit(0);

    std::printf("%10s %14s %14s %10s\n", "txs", "log bytes",
                "peak bytes", "cycles");
    for (unsigned round = 1; round <= 6; ++round) {
        for (unsigned t = 0; t < 5000; ++t) {
            tx.txBegin(0);
            for (int w = 0; w < 4; ++w) {
                tx.txStoreT<std::uint64_t>(
                    0, data + rng.below(kSlots) * 8, rng.next());
            }
            tx.txCommit(0);
        }
        const auto before = tx.logBytesInUse();
        tx.reclaimNow();
        std::printf("%10u %7zu->%-6zu %14zu %10llu\n", round * 5000,
                    before, tx.logBytesInUse(), tx.peakLogBytes(),
                    (unsigned long long)tx.reclaimCycles());
    }

    // Hand the pool over to a PMDK-style undo runtime: flush all
    // durable data, drop the speculative logs, switch mechanisms.
    tx.switchMechanism();
    txn::PmdkUndoTx undo(pool, 1);
    undo.txBegin(0);
    undo.txStoreT<std::uint64_t>(0, data, 424242);
    undo.txCommit(0);
    device.simulateCrash(pmem::CrashPolicy::nothing());
    std::printf("after mechanism switch + undo tx + crash: "
                "slot0=%llu (expected 424242)\n",
                (unsigned long long)device.loadT<std::uint64_t>(data));
    return device.loadT<std::uint64_t>(data) == 424242 ? 0 : 1;
}
