/**
 * @file
 * Quickstart: the smallest complete SpecPMT program.
 *
 * Creates an emulated persistent memory pool, runs speculatively
 * persistent transactions over a pair of counters, simulates a power
 * failure at the worst possible moment, recovers, and shows that the
 * interrupted transaction was revoked while committed ones survived.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <cstdio>

#include "core/spec_tx.hh"
#include "pmem/pmem_device.hh"
#include "pmem/pmem_pool.hh"

using namespace specpmt;

int
main()
{
    // An emulated 64MB persistent memory device + pool. On real
    // hardware this would be a DAX-mapped file; here it is a byte
    // image with explicit clwb/sfence/crash semantics.
    pmem::PmemDevice device(64u << 20);
    pmem::PmemPool pool(device);

    // The speculative transaction runtime (one worker thread).
    core::SpecTx tx(pool, /*num_threads=*/1);

    // Allocate two durable counters and publish them through a root
    // slot so a future process can find them.
    const PmOff a = pool.alloc(8);
    const PmOff b = pool.alloc(8);
    pool.setRoot(txn::kAppRootSlotBase, a);
    pool.setRoot(txn::kAppRootSlotBase + 1, b);

    // Committed transaction: both counters move together.
    tx.txBegin(0);
    tx.txStoreT<std::uint64_t>(0, a, 100);
    tx.txStoreT<std::uint64_t>(0, b, 200);
    tx.txCommit(0);
    std::printf("committed: a=%llu b=%llu\n",
                (unsigned long long)device.loadT<std::uint64_t>(a),
                (unsigned long long)device.loadT<std::uint64_t>(b));

    // A transaction interrupted by a power failure. The adversarial
    // part: every dirty cache line drains to PM, so the in-place
    // updates of the doomed transaction DO reach persistent media.
    tx.txBegin(0);
    tx.txStoreT<std::uint64_t>(0, a, 111);
    tx.txStoreT<std::uint64_t>(0, b, 222);
    std::printf("power failure mid-transaction (all lines evict)...\n");
    device.simulateCrash(pmem::CrashPolicy::everything());
    pool.reopenAfterCrash();

    // "Reboot": a fresh runtime recovers from the speculative log.
    core::SpecTx recovered(pool, 1);
    recovered.recover();
    const auto ra = device.loadT<std::uint64_t>(
        pool.getRoot(txn::kAppRootSlotBase));
    const auto rb = device.loadT<std::uint64_t>(
        pool.getRoot(txn::kAppRootSlotBase + 1));
    std::printf("recovered: a=%llu b=%llu  (the 111/222 update was "
                "revoked)\n",
                (unsigned long long)ra, (unsigned long long)rb);

    // The recovered pool keeps working.
    recovered.txBegin(0);
    recovered.txStoreT<std::uint64_t>(0, a, ra + 1);
    recovered.txCommit(0);
    recovered.shutdown();
    std::printf("post-recovery commit: a=%llu\n",
                (unsigned long long)device.loadT<std::uint64_t>(a));

    return (ra == 100 && rb == 200) ? 0 : 1;
}
