/**
 * @file
 * A persistent task-processing pipeline built from the pmds library:
 * a PmQueue of pending jobs, a PmHashMap of job results, and a
 * PmVector audit trail — all crash-consistent, all rebuilt from roots
 * after each of several injected power failures.
 *
 * The invariant checked after every reboot: every job is in exactly
 * one place (pending queue, results map) and the audit trail length
 * equals the number of completed jobs.
 *
 * Build & run:  ./build/examples/tasklist
 */

#include <cstdio>
#include <memory>
#include <map>
#include <set>

#include "common/rand.hh"
#include "core/spec_tx.hh"
#include "pmds/pm_hash_map.hh"
#include "pmds/pm_queue.hh"
#include "pmds/pm_vector.hh"
#include "pmem/pmem_device.hh"
#include "pmem/pmem_pool.hh"

using namespace specpmt;

namespace
{

struct Job
{
    std::uint64_t id;
    std::uint64_t payload;
};

constexpr unsigned kQueueRoot = txn::kAppRootSlotBase;
constexpr unsigned kMapRoot = txn::kAppRootSlotBase + 1;
constexpr unsigned kAuditRoot = txn::kAppRootSlotBase + 2;

} // namespace

int
main()
{
    pmem::PmemDevice device(128u << 20);
    pmem::PmemPool pool(device);
    Rng rng(31);

    core::SpecTxConfig spec_config;
    auto rt = std::make_unique<core::SpecTx>(pool, 1, spec_config);
    auto queue = pmds::PmQueue<Job>::create(*rt, 256);
    auto results =
        pmds::PmHashMap<std::uint64_t, std::uint64_t>::create(*rt,
                                                              1024);
    auto audit = pmds::PmVector<std::uint64_t>::create(*rt, 4096);
    pool.setRoot(kQueueRoot, queue.base());
    pool.setRoot(kMapRoot, results.base());
    pool.setRoot(kAuditRoot, audit.base());

    std::uint64_t next_id = 1;
    unsigned reboots = 0;

    for (int round = 0; round < 15; ++round) {
        device.armCrash(static_cast<long>(30 + rng.below(800)));
        try {
            // Produce a few jobs, then process a few: completing a job
            // moves it from the queue into the results map and appends
            // to the audit trail — one transaction, fully atomic.
            for (int i = 0; i < 10; ++i) {
                if (queue.enqueue({next_id, next_id * 7}))
                    ++next_id;
            }
            for (int i = 0; i < 8; ++i) {
                rt->txBegin(0);
                // Manual composite transaction using the InTx APIs.
                const auto job = queue.front();
                if (job) {
                    results.putInTx(job->id, job->payload * job->payload);
                    audit.pushBackInTx(job->id);
                    // Consume the queue head inside the same tx.
                    const auto header =
                        rt->txLoadT<pmds::PmQueue<Job>::Header>(
                            0, queue.base());
                    rt->txStoreT<std::uint64_t>(
                        0, queue.base() + offsetof(
                               pmds::PmQueue<Job>::Header, head),
                        header.head + 1);
                }
                rt->txCommit(0);
            }
            device.armCrash(-1);
        } catch (const pmem::SimulatedCrash &) {
            ++reboots;
            rt.reset();
            device.simulateCrash(
                pmem::CrashPolicy::random(round * 7 + 3, 0.5));
            pool.reopenAfterCrash();
            rt = std::make_unique<core::SpecTx>(pool, 1, spec_config);
            rt->recover();
            queue = pmds::PmQueue<Job>::attach(*rt,
                                               pool.getRoot(kQueueRoot));
            results =
                pmds::PmHashMap<std::uint64_t, std::uint64_t>::attach(
                    *rt, pool.getRoot(kMapRoot));
            audit = pmds::PmVector<std::uint64_t>::attach(
                *rt, pool.getRoot(kAuditRoot));

            // Audit: completed jobs == audit entries; no job both
            // pending and completed; no audit entry without a result.
            if (results.size() != audit.size()) {
                std::printf("FAIL: %llu results vs %llu audit rows\n",
                            (unsigned long long)results.size(),
                            (unsigned long long)audit.size());
                return 1;
            }
            std::set<std::uint64_t> completed;
            results.forEach([&](std::uint64_t id, std::uint64_t) {
                completed.insert(id);
            });
            for (std::uint64_t i = 0; i < audit.size(); ++i) {
                if (!completed.count(audit.at(i))) {
                    std::printf("FAIL: audit row without result\n");
                    return 1;
                }
            }
            bool overlap = false;
            while (auto job = queue.front()) {
                if (completed.count(job->id))
                    overlap = true;
                break;
            }
            if (overlap) {
                std::printf("FAIL: job both pending and completed\n");
                return 1;
            }
            // Resync the producer from DURABLE state only. A power
            // failure arriving exactly at the commit fence leaves the
            // application uncertain whether its last operation
            // committed ("commit ambiguity"); trusting the volatile
            // next_id here would re-enqueue an id that actually
            // landed. The durable queue + results are the truth.
            std::uint64_t max_id = 0;
            results.forEach([&](std::uint64_t id, std::uint64_t) {
                max_id = std::max(max_id, id);
            });
            queue.forEach([&](const Job &job) {
                max_id = std::max(max_id, job.id);
            });
            next_id = max_id + 1;
        }
    }

    rt->shutdown();
    std::printf("tasklist survived %u power failures: %llu completed "
                "jobs, %llu pending, audit consistent\n",
                reboots, (unsigned long long)results.size(),
                (unsigned long long)queue.size());
    return 0;
}
