/**
 * @file
 * Bank-transfer demo: the classic atomic-durability example.
 *
 * A fleet of accounts lives in persistent memory; every transfer
 * debits one account and credits another inside one speculative
 * transaction. The demo hammers the bank with transfers while
 * injecting power failures at random points — including mid-commit —
 * and checks after every recovery that not a single unit of money was
 * created or destroyed.
 *
 * Build & run:  ./build/examples/bank
 */

#include <cstdio>
#include <memory>

#include "common/rand.hh"
#include "core/spec_tx.hh"
#include "pmem/pmem_device.hh"
#include "pmem/pmem_pool.hh"

using namespace specpmt;

namespace
{

constexpr unsigned kAccounts = 1024;
constexpr std::uint64_t kInitialBalance = 1000;

PmOff
accountOff(PmOff base, unsigned account)
{
    return base + account * sizeof(std::uint64_t);
}

std::uint64_t
totalMoney(pmem::PmemDevice &device, PmOff base)
{
    std::uint64_t total = 0;
    for (unsigned account = 0; account < kAccounts; ++account)
        total += device.loadT<std::uint64_t>(accountOff(base, account));
    return total;
}

} // namespace

int
main()
{
    pmem::PmemDevice device(64u << 20);
    pmem::PmemPool pool(device);
    Rng rng(7);

    auto bank = std::make_unique<core::SpecTx>(pool, 1);

    // Open the accounts through committed transactions.
    const PmOff base = pool.alloc(kAccounts * sizeof(std::uint64_t));
    pool.setRoot(txn::kAppRootSlotBase, base);
    for (unsigned chunk = 0; chunk < kAccounts; chunk += 128) {
        bank->txBegin(0);
        for (unsigned account = chunk; account < chunk + 128; ++account) {
            bank->txStoreT<std::uint64_t>(
                0, accountOff(base, account), kInitialBalance);
        }
        bank->txCommit(0);
    }
    const std::uint64_t expected = kAccounts * kInitialBalance;

    unsigned transfers = 0;
    unsigned crashes = 0;
    for (int round = 0; round < 25; ++round) {
        device.armCrash(static_cast<long>(20 + rng.below(1500)));
        try {
            for (int i = 0; i < 400; ++i) {
                const auto from =
                    static_cast<unsigned>(rng.below(kAccounts));
                const auto to =
                    static_cast<unsigned>(rng.below(kAccounts));
                const std::uint64_t amount = 1 + rng.below(100);

                bank->txBegin(0);
                const auto from_balance = bank->txLoadT<std::uint64_t>(
                    0, accountOff(base, from));
                if (from != to && from_balance >= amount) {
                    bank->txStoreT<std::uint64_t>(
                        0, accountOff(base, from),
                        from_balance - amount);
                    const auto to_balance =
                        bank->txLoadT<std::uint64_t>(
                            0, accountOff(base, to));
                    bank->txStoreT<std::uint64_t>(
                        0, accountOff(base, to), to_balance + amount);
                    ++transfers;
                }
                bank->txCommit(0);
            }
            device.armCrash(-1);
        } catch (const pmem::SimulatedCrash &) {
            ++crashes;
            bank.reset();
            device.simulateCrash(
                pmem::CrashPolicy::random(round * 31 + 5, 0.5));
            pool.reopenAfterCrash();
            bank = std::make_unique<core::SpecTx>(pool, 1);
            bank->recover();

            const std::uint64_t total = totalMoney(
                device, pool.getRoot(txn::kAppRootSlotBase));
            if (total != expected) {
                std::printf("FAIL after crash %u: total %llu != %llu "
                            "— money was %s by a torn transfer!\n",
                            crashes, (unsigned long long)total,
                            (unsigned long long)expected,
                            total > expected ? "created" : "destroyed");
                return 1;
            }
        }
    }

    bank->shutdown();
    std::printf("bank processed ~%u transfers across %u power "
                "failures; every audit balanced at %llu\n",
                transfers, crashes, (unsigned long long)expected);
    return 0;
}
