file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_write_traffic.dir/bench_fig14_write_traffic.cc.o"
  "CMakeFiles/bench_fig14_write_traffic.dir/bench_fig14_write_traffic.cc.o.d"
  "bench_fig14_write_traffic"
  "bench_fig14_write_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_write_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
