# Empty compiler generated dependencies file for bench_fig14_write_traffic.
# This may be replaced when dependencies are built.
