# Empty compiler generated dependencies file for bench_ablation_splog.
# This may be replaced when dependencies are built.
