file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_splog.dir/bench_ablation_splog.cc.o"
  "CMakeFiles/bench_ablation_splog.dir/bench_ablation_splog.cc.o.d"
  "bench_ablation_splog"
  "bench_ablation_splog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_splog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
