file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_sw_speedup.dir/bench_fig12_sw_speedup.cc.o"
  "CMakeFiles/bench_fig12_sw_speedup.dir/bench_fig12_sw_speedup.cc.o.d"
  "bench_fig12_sw_speedup"
  "bench_fig12_sw_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_sw_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
