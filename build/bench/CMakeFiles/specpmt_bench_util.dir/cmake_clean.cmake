file(REMOVE_RECURSE
  "CMakeFiles/specpmt_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/specpmt_bench_util.dir/bench_util.cc.o.d"
  "libspecpmt_bench_util.a"
  "libspecpmt_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/specpmt_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
