file(REMOVE_RECURSE
  "libspecpmt_bench_util.a"
)
