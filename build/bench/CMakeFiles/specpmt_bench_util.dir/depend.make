# Empty dependencies file for specpmt_bench_util.
# This may be replaced when dependencies are built.
