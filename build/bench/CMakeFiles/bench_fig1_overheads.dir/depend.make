# Empty dependencies file for bench_fig1_overheads.
# This may be replaced when dependencies are built.
