file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_overheads.dir/bench_fig1_overheads.cc.o"
  "CMakeFiles/bench_fig1_overheads.dir/bench_fig1_overheads.cc.o.d"
  "bench_fig1_overheads"
  "bench_fig1_overheads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_overheads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
