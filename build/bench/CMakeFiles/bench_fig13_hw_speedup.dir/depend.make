# Empty dependencies file for bench_fig13_hw_speedup.
# This may be replaced when dependencies are built.
