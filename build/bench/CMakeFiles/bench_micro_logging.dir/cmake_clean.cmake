file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_logging.dir/bench_micro_logging.cc.o"
  "CMakeFiles/bench_micro_logging.dir/bench_micro_logging.cc.o.d"
  "bench_micro_logging"
  "bench_micro_logging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_logging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
