# Empty compiler generated dependencies file for bench_micro_logging.
# This may be replaced when dependencies are built.
