# Empty compiler generated dependencies file for bench_fig15_mem_sweep.
# This may be replaced when dependencies are built.
