file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_mem_sweep.dir/bench_fig15_mem_sweep.cc.o"
  "CMakeFiles/bench_fig15_mem_sweep.dir/bench_fig15_mem_sweep.cc.o.d"
  "bench_fig15_mem_sweep"
  "bench_fig15_mem_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_mem_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
