# Empty dependencies file for bench_seq_vs_hash_log.
# This may be replaced when dependencies are built.
