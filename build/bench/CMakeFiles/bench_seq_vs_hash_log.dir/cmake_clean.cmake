file(REMOVE_RECURSE
  "CMakeFiles/bench_seq_vs_hash_log.dir/bench_seq_vs_hash_log.cc.o"
  "CMakeFiles/bench_seq_vs_hash_log.dir/bench_seq_vs_hash_log.cc.o.d"
  "bench_seq_vs_hash_log"
  "bench_seq_vs_hash_log.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_seq_vs_hash_log.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
