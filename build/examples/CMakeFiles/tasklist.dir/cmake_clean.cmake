file(REMOVE_RECURSE
  "CMakeFiles/tasklist.dir/tasklist.cc.o"
  "CMakeFiles/tasklist.dir/tasklist.cc.o.d"
  "tasklist"
  "tasklist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tasklist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
