# Empty dependencies file for tasklist.
# This may be replaced when dependencies are built.
