file(REMOVE_RECURSE
  "CMakeFiles/logstats.dir/logstats.cc.o"
  "CMakeFiles/logstats.dir/logstats.cc.o.d"
  "logstats"
  "logstats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logstats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
