# Empty compiler generated dependencies file for logstats.
# This may be replaced when dependencies are built.
