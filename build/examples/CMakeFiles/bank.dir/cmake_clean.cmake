file(REMOVE_RECURSE
  "CMakeFiles/bank.dir/bank.cc.o"
  "CMakeFiles/bank.dir/bank.cc.o.d"
  "bank"
  "bank.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
