# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;13;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_kvstore "/root/repo/build/examples/kvstore")
set_tests_properties(example_kvstore PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_bank "/root/repo/build/examples/bank")
set_tests_properties(example_bank PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_logstats "/root/repo/build/examples/logstats")
set_tests_properties(example_logstats PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_tasklist "/root/repo/build/examples/tasklist")
set_tests_properties(example_tasklist PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
