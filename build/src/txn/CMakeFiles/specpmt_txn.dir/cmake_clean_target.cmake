file(REMOVE_RECURSE
  "libspecpmt_txn.a"
)
