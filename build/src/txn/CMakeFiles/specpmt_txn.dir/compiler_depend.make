# Empty compiler generated dependencies file for specpmt_txn.
# This may be replaced when dependencies are built.
