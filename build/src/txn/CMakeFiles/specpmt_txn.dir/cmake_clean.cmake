file(REMOVE_RECURSE
  "CMakeFiles/specpmt_txn.dir/spht_tx.cc.o"
  "CMakeFiles/specpmt_txn.dir/spht_tx.cc.o.d"
  "CMakeFiles/specpmt_txn.dir/undo_tx.cc.o"
  "CMakeFiles/specpmt_txn.dir/undo_tx.cc.o.d"
  "CMakeFiles/specpmt_txn.dir/write_set.cc.o"
  "CMakeFiles/specpmt_txn.dir/write_set.cc.o.d"
  "libspecpmt_txn.a"
  "libspecpmt_txn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/specpmt_txn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
