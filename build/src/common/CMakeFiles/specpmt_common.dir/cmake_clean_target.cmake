file(REMOVE_RECURSE
  "libspecpmt_common.a"
)
