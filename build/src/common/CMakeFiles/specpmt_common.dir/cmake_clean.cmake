file(REMOVE_RECURSE
  "CMakeFiles/specpmt_common.dir/crc32.cc.o"
  "CMakeFiles/specpmt_common.dir/crc32.cc.o.d"
  "CMakeFiles/specpmt_common.dir/logging.cc.o"
  "CMakeFiles/specpmt_common.dir/logging.cc.o.d"
  "CMakeFiles/specpmt_common.dir/stats.cc.o"
  "CMakeFiles/specpmt_common.dir/stats.cc.o.d"
  "libspecpmt_common.a"
  "libspecpmt_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/specpmt_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
