# Empty dependencies file for specpmt_common.
# This may be replaced when dependencies are built.
