file(REMOVE_RECURSE
  "libspecpmt_sim.a"
)
