# Empty compiler generated dependencies file for specpmt_sim.
# This may be replaced when dependencies are built.
