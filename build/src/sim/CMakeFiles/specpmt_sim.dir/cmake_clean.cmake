file(REMOVE_RECURSE
  "CMakeFiles/specpmt_sim.dir/hw_runtime.cc.o"
  "CMakeFiles/specpmt_sim.dir/hw_runtime.cc.o.d"
  "CMakeFiles/specpmt_sim.dir/hybrid_spec_tx.cc.o"
  "CMakeFiles/specpmt_sim.dir/hybrid_spec_tx.cc.o.d"
  "CMakeFiles/specpmt_sim.dir/machine.cc.o"
  "CMakeFiles/specpmt_sim.dir/machine.cc.o.d"
  "CMakeFiles/specpmt_sim.dir/sim_config.cc.o"
  "CMakeFiles/specpmt_sim.dir/sim_config.cc.o.d"
  "CMakeFiles/specpmt_sim.dir/spec_hpmt_hw.cc.o"
  "CMakeFiles/specpmt_sim.dir/spec_hpmt_hw.cc.o.d"
  "libspecpmt_sim.a"
  "libspecpmt_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/specpmt_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
