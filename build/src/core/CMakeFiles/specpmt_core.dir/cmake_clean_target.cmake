file(REMOVE_RECURSE
  "libspecpmt_core.a"
)
