file(REMOVE_RECURSE
  "CMakeFiles/specpmt_core.dir/hash_log_tx.cc.o"
  "CMakeFiles/specpmt_core.dir/hash_log_tx.cc.o.d"
  "CMakeFiles/specpmt_core.dir/spec_tx.cc.o"
  "CMakeFiles/specpmt_core.dir/spec_tx.cc.o.d"
  "CMakeFiles/specpmt_core.dir/splog_format.cc.o"
  "CMakeFiles/specpmt_core.dir/splog_format.cc.o.d"
  "libspecpmt_core.a"
  "libspecpmt_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/specpmt_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
