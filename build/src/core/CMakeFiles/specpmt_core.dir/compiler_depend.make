# Empty compiler generated dependencies file for specpmt_core.
# This may be replaced when dependencies are built.
