
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/genome.cc" "src/workloads/CMakeFiles/specpmt_workloads.dir/genome.cc.o" "gcc" "src/workloads/CMakeFiles/specpmt_workloads.dir/genome.cc.o.d"
  "/root/repo/src/workloads/intruder.cc" "src/workloads/CMakeFiles/specpmt_workloads.dir/intruder.cc.o" "gcc" "src/workloads/CMakeFiles/specpmt_workloads.dir/intruder.cc.o.d"
  "/root/repo/src/workloads/kmeans.cc" "src/workloads/CMakeFiles/specpmt_workloads.dir/kmeans.cc.o" "gcc" "src/workloads/CMakeFiles/specpmt_workloads.dir/kmeans.cc.o.d"
  "/root/repo/src/workloads/labyrinth.cc" "src/workloads/CMakeFiles/specpmt_workloads.dir/labyrinth.cc.o" "gcc" "src/workloads/CMakeFiles/specpmt_workloads.dir/labyrinth.cc.o.d"
  "/root/repo/src/workloads/registry.cc" "src/workloads/CMakeFiles/specpmt_workloads.dir/registry.cc.o" "gcc" "src/workloads/CMakeFiles/specpmt_workloads.dir/registry.cc.o.d"
  "/root/repo/src/workloads/ssca2.cc" "src/workloads/CMakeFiles/specpmt_workloads.dir/ssca2.cc.o" "gcc" "src/workloads/CMakeFiles/specpmt_workloads.dir/ssca2.cc.o.d"
  "/root/repo/src/workloads/vacation.cc" "src/workloads/CMakeFiles/specpmt_workloads.dir/vacation.cc.o" "gcc" "src/workloads/CMakeFiles/specpmt_workloads.dir/vacation.cc.o.d"
  "/root/repo/src/workloads/yada.cc" "src/workloads/CMakeFiles/specpmt_workloads.dir/yada.cc.o" "gcc" "src/workloads/CMakeFiles/specpmt_workloads.dir/yada.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/specpmt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/specpmt_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/pmem/CMakeFiles/specpmt_pmem.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/specpmt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
