file(REMOVE_RECURSE
  "CMakeFiles/specpmt_workloads.dir/genome.cc.o"
  "CMakeFiles/specpmt_workloads.dir/genome.cc.o.d"
  "CMakeFiles/specpmt_workloads.dir/intruder.cc.o"
  "CMakeFiles/specpmt_workloads.dir/intruder.cc.o.d"
  "CMakeFiles/specpmt_workloads.dir/kmeans.cc.o"
  "CMakeFiles/specpmt_workloads.dir/kmeans.cc.o.d"
  "CMakeFiles/specpmt_workloads.dir/labyrinth.cc.o"
  "CMakeFiles/specpmt_workloads.dir/labyrinth.cc.o.d"
  "CMakeFiles/specpmt_workloads.dir/registry.cc.o"
  "CMakeFiles/specpmt_workloads.dir/registry.cc.o.d"
  "CMakeFiles/specpmt_workloads.dir/ssca2.cc.o"
  "CMakeFiles/specpmt_workloads.dir/ssca2.cc.o.d"
  "CMakeFiles/specpmt_workloads.dir/vacation.cc.o"
  "CMakeFiles/specpmt_workloads.dir/vacation.cc.o.d"
  "CMakeFiles/specpmt_workloads.dir/yada.cc.o"
  "CMakeFiles/specpmt_workloads.dir/yada.cc.o.d"
  "libspecpmt_workloads.a"
  "libspecpmt_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/specpmt_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
