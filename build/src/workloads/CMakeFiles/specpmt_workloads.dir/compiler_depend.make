# Empty compiler generated dependencies file for specpmt_workloads.
# This may be replaced when dependencies are built.
