file(REMOVE_RECURSE
  "libspecpmt_workloads.a"
)
