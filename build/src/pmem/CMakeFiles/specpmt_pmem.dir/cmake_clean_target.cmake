file(REMOVE_RECURSE
  "libspecpmt_pmem.a"
)
