# Empty compiler generated dependencies file for specpmt_pmem.
# This may be replaced when dependencies are built.
