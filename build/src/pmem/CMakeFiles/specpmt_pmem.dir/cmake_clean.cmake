file(REMOVE_RECURSE
  "CMakeFiles/specpmt_pmem.dir/pmem_device.cc.o"
  "CMakeFiles/specpmt_pmem.dir/pmem_device.cc.o.d"
  "CMakeFiles/specpmt_pmem.dir/pmem_pool.cc.o"
  "CMakeFiles/specpmt_pmem.dir/pmem_pool.cc.o.d"
  "CMakeFiles/specpmt_pmem.dir/pmem_timing.cc.o"
  "CMakeFiles/specpmt_pmem.dir/pmem_timing.cc.o.d"
  "libspecpmt_pmem.a"
  "libspecpmt_pmem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/specpmt_pmem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
