
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pmem/pmem_device.cc" "src/pmem/CMakeFiles/specpmt_pmem.dir/pmem_device.cc.o" "gcc" "src/pmem/CMakeFiles/specpmt_pmem.dir/pmem_device.cc.o.d"
  "/root/repo/src/pmem/pmem_pool.cc" "src/pmem/CMakeFiles/specpmt_pmem.dir/pmem_pool.cc.o" "gcc" "src/pmem/CMakeFiles/specpmt_pmem.dir/pmem_pool.cc.o.d"
  "/root/repo/src/pmem/pmem_timing.cc" "src/pmem/CMakeFiles/specpmt_pmem.dir/pmem_timing.cc.o" "gcc" "src/pmem/CMakeFiles/specpmt_pmem.dir/pmem_timing.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/specpmt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
