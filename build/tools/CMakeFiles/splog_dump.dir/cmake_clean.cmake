file(REMOVE_RECURSE
  "CMakeFiles/splog_dump.dir/splog_dump.cc.o"
  "CMakeFiles/splog_dump.dir/splog_dump.cc.o.d"
  "splog_dump"
  "splog_dump.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/splog_dump.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
