# Empty dependencies file for splog_dump.
# This may be replaced when dependencies are built.
