# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(tool_splog_dump "/root/repo/build/tools/splog_dump")
set_tests_properties(tool_splog_dump PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;4;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_splog_dump_crash "/root/repo/build/tools/splog_dump" "--crash")
set_tests_properties(tool_splog_dump_crash PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
