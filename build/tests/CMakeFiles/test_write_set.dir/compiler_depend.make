# Empty compiler generated dependencies file for test_write_set.
# This may be replaced when dependencies are built.
