file(REMOVE_RECURSE
  "CMakeFiles/test_write_set.dir/test_write_set.cc.o"
  "CMakeFiles/test_write_set.dir/test_write_set.cc.o.d"
  "test_write_set"
  "test_write_set.pdb"
  "test_write_set[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_write_set.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
