file(REMOVE_RECURSE
  "CMakeFiles/test_pmem_device.dir/test_pmem_device.cc.o"
  "CMakeFiles/test_pmem_device.dir/test_pmem_device.cc.o.d"
  "test_pmem_device"
  "test_pmem_device.pdb"
  "test_pmem_device[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pmem_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
