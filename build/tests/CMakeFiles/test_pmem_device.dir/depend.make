# Empty dependencies file for test_pmem_device.
# This may be replaced when dependencies are built.
