file(REMOVE_RECURSE
  "CMakeFiles/test_pmds.dir/test_pmds.cc.o"
  "CMakeFiles/test_pmds.dir/test_pmds.cc.o.d"
  "test_pmds"
  "test_pmds.pdb"
  "test_pmds[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pmds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
