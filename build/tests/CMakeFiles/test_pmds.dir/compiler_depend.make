# Empty compiler generated dependencies file for test_pmds.
# This may be replaced when dependencies are built.
