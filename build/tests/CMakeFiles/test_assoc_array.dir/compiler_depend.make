# Empty compiler generated dependencies file for test_assoc_array.
# This may be replaced when dependencies are built.
