file(REMOVE_RECURSE
  "CMakeFiles/test_assoc_array.dir/test_assoc_array.cc.o"
  "CMakeFiles/test_assoc_array.dir/test_assoc_array.cc.o.d"
  "test_assoc_array"
  "test_assoc_array.pdb"
  "test_assoc_array[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_assoc_array.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
