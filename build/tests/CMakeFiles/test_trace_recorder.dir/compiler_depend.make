# Empty compiler generated dependencies file for test_trace_recorder.
# This may be replaced when dependencies are built.
