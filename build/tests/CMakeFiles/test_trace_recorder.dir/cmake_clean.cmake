file(REMOVE_RECURSE
  "CMakeFiles/test_trace_recorder.dir/test_trace_recorder.cc.o"
  "CMakeFiles/test_trace_recorder.dir/test_trace_recorder.cc.o.d"
  "test_trace_recorder"
  "test_trace_recorder.pdb"
  "test_trace_recorder[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trace_recorder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
