# Empty dependencies file for test_spec_tx.
# This may be replaced when dependencies are built.
