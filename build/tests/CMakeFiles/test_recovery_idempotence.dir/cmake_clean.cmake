file(REMOVE_RECURSE
  "CMakeFiles/test_recovery_idempotence.dir/test_recovery_idempotence.cc.o"
  "CMakeFiles/test_recovery_idempotence.dir/test_recovery_idempotence.cc.o.d"
  "test_recovery_idempotence"
  "test_recovery_idempotence.pdb"
  "test_recovery_idempotence[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_recovery_idempotence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
