# Empty compiler generated dependencies file for test_undo_tx.
# This may be replaced when dependencies are built.
