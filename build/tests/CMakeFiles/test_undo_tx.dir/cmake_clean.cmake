file(REMOVE_RECURSE
  "CMakeFiles/test_undo_tx.dir/test_undo_tx.cc.o"
  "CMakeFiles/test_undo_tx.dir/test_undo_tx.cc.o.d"
  "test_undo_tx"
  "test_undo_tx.pdb"
  "test_undo_tx[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_undo_tx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
