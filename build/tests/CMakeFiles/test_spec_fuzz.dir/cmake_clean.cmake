file(REMOVE_RECURSE
  "CMakeFiles/test_spec_fuzz.dir/test_spec_fuzz.cc.o"
  "CMakeFiles/test_spec_fuzz.dir/test_spec_fuzz.cc.o.d"
  "test_spec_fuzz"
  "test_spec_fuzz.pdb"
  "test_spec_fuzz[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spec_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
