# Empty compiler generated dependencies file for test_spec_fuzz.
# This may be replaced when dependencies are built.
