# Empty dependencies file for test_pmem_timing.
# This may be replaced when dependencies are built.
