file(REMOVE_RECURSE
  "CMakeFiles/test_pmem_timing.dir/test_pmem_timing.cc.o"
  "CMakeFiles/test_pmem_timing.dir/test_pmem_timing.cc.o.d"
  "test_pmem_timing"
  "test_pmem_timing.pdb"
  "test_pmem_timing[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pmem_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
