# Empty compiler generated dependencies file for test_crash_atomicity.
# This may be replaced when dependencies are built.
