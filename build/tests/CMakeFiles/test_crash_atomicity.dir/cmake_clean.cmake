file(REMOVE_RECURSE
  "CMakeFiles/test_crash_atomicity.dir/test_crash_atomicity.cc.o"
  "CMakeFiles/test_crash_atomicity.dir/test_crash_atomicity.cc.o.d"
  "test_crash_atomicity"
  "test_crash_atomicity.pdb"
  "test_crash_atomicity[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_crash_atomicity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
