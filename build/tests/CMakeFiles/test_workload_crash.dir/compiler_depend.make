# Empty compiler generated dependencies file for test_workload_crash.
# This may be replaced when dependencies are built.
