file(REMOVE_RECURSE
  "CMakeFiles/test_workload_crash.dir/test_workload_crash.cc.o"
  "CMakeFiles/test_workload_crash.dir/test_workload_crash.cc.o.d"
  "test_workload_crash"
  "test_workload_crash.pdb"
  "test_workload_crash[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workload_crash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
