file(REMOVE_RECURSE
  "CMakeFiles/test_multithreaded.dir/test_multithreaded.cc.o"
  "CMakeFiles/test_multithreaded.dir/test_multithreaded.cc.o.d"
  "test_multithreaded"
  "test_multithreaded.pdb"
  "test_multithreaded[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multithreaded.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
