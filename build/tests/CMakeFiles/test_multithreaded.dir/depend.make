# Empty dependencies file for test_multithreaded.
# This may be replaced when dependencies are built.
