# Empty dependencies file for test_epoch_protocol.
# This may be replaced when dependencies are built.
