file(REMOVE_RECURSE
  "CMakeFiles/test_epoch_protocol.dir/test_epoch_protocol.cc.o"
  "CMakeFiles/test_epoch_protocol.dir/test_epoch_protocol.cc.o.d"
  "test_epoch_protocol"
  "test_epoch_protocol.pdb"
  "test_epoch_protocol[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_epoch_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
