# Empty compiler generated dependencies file for test_pmem_pool.
# This may be replaced when dependencies are built.
