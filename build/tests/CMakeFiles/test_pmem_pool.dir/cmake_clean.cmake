file(REMOVE_RECURSE
  "CMakeFiles/test_pmem_pool.dir/test_pmem_pool.cc.o"
  "CMakeFiles/test_pmem_pool.dir/test_pmem_pool.cc.o.d"
  "test_pmem_pool"
  "test_pmem_pool.pdb"
  "test_pmem_pool[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pmem_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
