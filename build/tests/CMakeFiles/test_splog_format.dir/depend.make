# Empty dependencies file for test_splog_format.
# This may be replaced when dependencies are built.
