file(REMOVE_RECURSE
  "CMakeFiles/test_splog_format.dir/test_splog_format.cc.o"
  "CMakeFiles/test_splog_format.dir/test_splog_format.cc.o.d"
  "test_splog_format"
  "test_splog_format.pdb"
  "test_splog_format[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_splog_format.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
