file(REMOVE_RECURSE
  "CMakeFiles/test_hw_runtimes.dir/test_hw_runtimes.cc.o"
  "CMakeFiles/test_hw_runtimes.dir/test_hw_runtimes.cc.o.d"
  "test_hw_runtimes"
  "test_hw_runtimes.pdb"
  "test_hw_runtimes[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hw_runtimes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
