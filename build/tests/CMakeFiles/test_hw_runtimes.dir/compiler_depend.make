# Empty compiler generated dependencies file for test_hw_runtimes.
# This may be replaced when dependencies are built.
