
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_spht_tx.cc" "tests/CMakeFiles/test_spht_tx.dir/test_spht_tx.cc.o" "gcc" "tests/CMakeFiles/test_spht_tx.dir/test_spht_tx.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/specpmt_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/specpmt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/specpmt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/specpmt_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/pmem/CMakeFiles/specpmt_pmem.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/specpmt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
