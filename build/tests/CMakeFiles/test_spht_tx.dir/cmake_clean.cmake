file(REMOVE_RECURSE
  "CMakeFiles/test_spht_tx.dir/test_spht_tx.cc.o"
  "CMakeFiles/test_spht_tx.dir/test_spht_tx.cc.o.d"
  "test_spht_tx"
  "test_spht_tx.pdb"
  "test_spht_tx[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spht_tx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
