file(REMOVE_RECURSE
  "CMakeFiles/test_hybrid_spec_tx.dir/test_hybrid_spec_tx.cc.o"
  "CMakeFiles/test_hybrid_spec_tx.dir/test_hybrid_spec_tx.cc.o.d"
  "test_hybrid_spec_tx"
  "test_hybrid_spec_tx.pdb"
  "test_hybrid_spec_tx[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hybrid_spec_tx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
