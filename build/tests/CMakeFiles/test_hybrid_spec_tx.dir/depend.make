# Empty dependencies file for test_hybrid_spec_tx.
# This may be replaced when dependencies are built.
