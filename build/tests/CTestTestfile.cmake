# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_pmem_device[1]_include.cmake")
include("/root/repo/build/tests/test_pmem_pool[1]_include.cmake")
include("/root/repo/build/tests/test_pmem_timing[1]_include.cmake")
include("/root/repo/build/tests/test_write_set[1]_include.cmake")
include("/root/repo/build/tests/test_undo_tx[1]_include.cmake")
include("/root/repo/build/tests/test_spht_tx[1]_include.cmake")
include("/root/repo/build/tests/test_spec_tx[1]_include.cmake")
include("/root/repo/build/tests/test_crash_atomicity[1]_include.cmake")
include("/root/repo/build/tests/test_assoc_array[1]_include.cmake")
include("/root/repo/build/tests/test_tlb[1]_include.cmake")
include("/root/repo/build/tests/test_cache_model[1]_include.cmake")
include("/root/repo/build/tests/test_epoch_protocol[1]_include.cmake")
include("/root/repo/build/tests/test_hw_runtimes[1]_include.cmake")
include("/root/repo/build/tests/test_splog_format[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_workload_crash[1]_include.cmake")
include("/root/repo/build/tests/test_hybrid_spec_tx[1]_include.cmake")
include("/root/repo/build/tests/test_pmds[1]_include.cmake")
include("/root/repo/build/tests/test_multithreaded[1]_include.cmake")
include("/root/repo/build/tests/test_trace_recorder[1]_include.cmake")
include("/root/repo/build/tests/test_recovery_idempotence[1]_include.cmake")
include("/root/repo/build/tests/test_spec_fuzz[1]_include.cmake")
