/**
 * @file
 * Epoch group commit tests (DESIGN §12): the sealer contract at the
 * SpecTx level (tickets shared per epoch and monotone across seals,
 * ack ordering after the shared fence, strict commits bypassing the
 * epoch by sealing it, rollover under concurrent commits), the
 * durable frontier's recovery semantics (sealed epochs replay,
 * unsealed ones are dropped; a strict-mode successor retires the
 * frontier), and the KvService surface (relaxed put tickets, the
 * epochMaxOps auto-seal, strict mutations sealing their shard's
 * epoch).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/spec_tx.hh"
#include "kv/kv_service.hh"
#include "pmem/crash_policy.hh"
#include "pmem/pmem_device.hh"
#include "pmem/pmem_pool.hh"
#include "txn/tx_runtime.hh"

namespace specpmt
{
namespace
{

core::SpecTxConfig
epochConfig()
{
    core::SpecTxConfig config;
    config.backgroundReclaim = false;
    config.logBlockSize = 256;
    config.groupCommit = true;
    return config;
}

class EpochSealerTest : public ::testing::Test
{
  protected:
    static constexpr unsigned kThreads = 4;

    EpochSealerTest()
        : dev_(16u << 20), pool_(dev_),
          tx_(pool_, kThreads, epochConfig())
    {}

    /** Initialize a slot array through one strict transaction. */
    PmOff
    initSlots(unsigned count)
    {
        const PmOff off = pool_.alloc(count * 8);
        tx_.txBegin(0);
        for (unsigned i = 0; i < count; ++i)
            tx_.txStoreT<std::uint64_t>(0, off + i * 8, i);
        tx_.txCommit(0);
        return off;
    }

    /** One single-store relaxed commit; returns the epoch ticket. */
    std::uint64_t
    relaxedPut(ThreadId tid, PmOff off, std::uint64_t value)
    {
        tx_.txBegin(tid);
        tx_.txStoreT<std::uint64_t>(tid, off, value);
        return tx_.txCommitRelaxed(tid);
    }

    pmem::PmemDevice dev_;
    pmem::PmemPool pool_;
    core::SpecTx tx_;
};

TEST_F(EpochSealerTest, RelaxedCommitsDeferTheFenceToTheSeal)
{
    const PmOff off = initSlots(8);
    const auto fences_before = dev_.stats().fences;
    std::uint64_t last_ticket = 0;
    for (unsigned i = 0; i < 8; ++i)
        last_ticket = relaxedPut(0, off + i * 8, 100 + i);
    EXPECT_EQ(dev_.stats().fences, fences_before)
        << "a relaxed commit must not fence";
    EXPECT_GT(last_ticket, tx_.lastSealedEpoch());

    const std::uint64_t sealed = tx_.sealEpoch();
    EXPECT_GE(sealed, last_ticket);
    EXPECT_EQ(tx_.lastSealedEpoch(), sealed);
    const auto seal_fences = dev_.stats().fences - fences_before;
    EXPECT_GE(seal_fences, 1u);
    EXPECT_LT(seal_fences, 8u)
        << "the epoch fence must be shared, not per transaction";
}

TEST_F(EpochSealerTest, TicketsAreSharedPerEpochAndMonotone)
{
    const PmOff off = initSlots(4);
    const auto t1 = relaxedPut(0, off, 1);
    const auto t2 = relaxedPut(0, off + 8, 2);
    EXPECT_GT(t1, 0u);
    EXPECT_EQ(t1, t2) << "commits in one open epoch share its ticket";
    EXPECT_LT(tx_.lastSealedEpoch(), t1);

    EXPECT_GE(tx_.sealEpoch(), t1);
    const auto t3 = relaxedPut(0, off + 16, 3);
    EXPECT_GT(t3, t1) << "sealing rolls the epoch over";
    EXPECT_LT(tx_.lastSealedEpoch(), t3);
    EXPECT_GE(tx_.sealEpoch(), t3);
}

TEST_F(EpochSealerTest, ReadOnlyRelaxedCommitIsAlreadyDurable)
{
    tx_.txBegin(0);
    EXPECT_EQ(tx_.txCommitRelaxed(0), 0u);
}

TEST_F(EpochSealerTest, StrictCommitSealsTheEpochItJoins)
{
    const PmOff off = initSlots(4);
    const auto ticket = relaxedPut(0, off, 11);
    ASSERT_LT(tx_.lastSealedEpoch(), ticket);

    // txCommit keeps ack-implies-durable: it seals the open epoch —
    // including the earlier relaxed commit — before returning.
    tx_.txBegin(0);
    tx_.txStoreT<std::uint64_t>(0, off + 8, 22);
    tx_.txCommit(0);
    EXPECT_GE(tx_.lastSealedEpoch(), ticket);

    // Both survive a crash that drops every unflushed line.
    dev_.simulateCrash(pmem::CrashPolicy::nothing());
    pool_.reopenAfterCrash();
    core::SpecTx fresh(pool_, kThreads, epochConfig());
    fresh.recover();
    EXPECT_EQ(dev_.loadT<std::uint64_t>(off), 11u);
    EXPECT_EQ(dev_.loadT<std::uint64_t>(off + 8), 22u);
}

TEST_F(EpochSealerTest, RolloverUnderConcurrentCommits)
{
    constexpr unsigned kOpsPerThread = 200;
    const PmOff off = initSlots(kThreads);

    std::atomic<bool> stop_sealer{false};
    std::thread sealer([&] {
        while (!stop_sealer.load(std::memory_order_acquire)) {
            tx_.sealEpoch();
            std::this_thread::yield();
        }
    });

    std::vector<std::uint64_t> last_ticket(kThreads, 0);
    std::vector<std::thread> workers;
    for (unsigned t = 0; t < kThreads; ++t) {
        workers.emplace_back([&, t] {
            for (unsigned i = 1; i <= kOpsPerThread; ++i) {
                tx_.txBegin(t);
                tx_.txStoreT<std::uint64_t>(t, off + t * 8,
                                            t * 1000 + i);
                const auto ticket = tx_.txCommitRelaxed(t);
                // Tickets a thread observes never move backwards,
                // however the sealer races the commits.
                EXPECT_GE(ticket, last_ticket[t]);
                last_ticket[t] = ticket;
            }
        });
    }
    for (auto &w : workers)
        w.join();
    stop_sealer.store(true, std::memory_order_release);
    sealer.join();

    // Ack ordering: a transaction is durable once the sealed epoch
    // reaches its ticket, so the final seal must cover every ticket
    // handed out.
    const std::uint64_t sealed = tx_.sealEpoch();
    for (unsigned t = 0; t < kThreads; ++t)
        EXPECT_GE(sealed, last_ticket[t]);

    dev_.simulateCrash(pmem::CrashPolicy::nothing());
    pool_.reopenAfterCrash();
    core::SpecTx fresh(pool_, kThreads, epochConfig());
    fresh.recover();
    for (unsigned t = 0; t < kThreads; ++t)
        EXPECT_EQ(dev_.loadT<std::uint64_t>(off + t * 8),
                  t * 1000 + kOpsPerThread);
}

TEST_F(EpochSealerTest, SealedEpochsReplayUnsealedOnesAreDropped)
{
    const PmOff off = initSlots(1); // value 0
    relaxedPut(0, off, 111);
    tx_.sealEpoch();
    const auto unsealed_ticket = relaxedPut(0, off, 222);
    ASSERT_LT(tx_.lastSealedEpoch(), unsealed_ticket);

    // Power failure dropping every unflushed line: the unsealed
    // commit left no durable trace, the sealed one was fenced.
    dev_.simulateCrash(pmem::CrashPolicy::nothing());
    pool_.reopenAfterCrash();
    core::SpecTx fresh(pool_, kThreads, epochConfig());
    fresh.recover();
    EXPECT_EQ(dev_.loadT<std::uint64_t>(off), 111u)
        << "recovery must stop at the durable epoch frontier";
}

TEST_F(EpochSealerTest, FrontierBoundsReplayUnderHostileEviction)
{
    const PmOff off = initSlots(1);
    relaxedPut(0, off, 111);
    tx_.sealEpoch();
    relaxedPut(0, off, 222);

    // A hostile eviction policy may persist the unsealed commit's
    // lines: if its whole record made it out, the dense-frontier rule
    // adopts it (it holds the next timestamp after the window);
    // otherwise it is dropped. Either way the recovered value is one
    // of the two committed payloads — never the pre-seal 0, never
    // torn.
    dev_.simulateCrash(pmem::CrashPolicy::random(7, 0.6));
    pool_.reopenAfterCrash();
    core::SpecTx fresh(pool_, kThreads, epochConfig());
    fresh.recover();
    const auto value = dev_.loadT<std::uint64_t>(off);
    EXPECT_TRUE(value == 111u || value == 222u) << "value " << value;
}

TEST_F(EpochSealerTest, EpochModeSurvivesRepeatedCrashRecoverCycles)
{
    const PmOff off = initSlots(1);
    relaxedPut(0, off, 111);
    tx_.sealEpoch();
    dev_.simulateCrash(pmem::CrashPolicy::nothing());
    pool_.reopenAfterCrash();
    core::SpecTx second(pool_, kThreads, epochConfig());
    second.recover();
    EXPECT_EQ(dev_.loadT<std::uint64_t>(off), 111u);

    // The recovered incarnation opens a fresh frontier window and the
    // epoch machinery keeps working: new relaxed commits seal and
    // survive a second failure.
    second.txBegin(0);
    second.txStoreT<std::uint64_t>(0, off, 444);
    const auto ticket = second.txCommitRelaxed(0);
    EXPECT_GT(ticket, 0u);
    EXPECT_GE(second.sealEpoch(), ticket);

    dev_.simulateCrash(pmem::CrashPolicy::nothing());
    pool_.reopenAfterCrash();
    core::SpecTx third(pool_, kThreads, epochConfig());
    third.recover();
    EXPECT_EQ(dev_.loadT<std::uint64_t>(off), 444u);
}

TEST_F(EpochSealerTest, StrictModeRecoveryRetiresTheFrontier)
{
    const PmOff off = initSlots(1);
    relaxedPut(0, off, 111);
    tx_.sealEpoch();
    ASSERT_NE(pool_.getRoot(txn::kEpochFrontierSlot), kPmNull);

    dev_.simulateCrash(pmem::CrashPolicy::nothing());
    pool_.reopenAfterCrash();
    // The pool switches back to strict-only operation: recovery
    // replays under the (on-media) frontier rule one last time, then
    // retires the frontier record so future recoveries use the
    // legacy rule.
    core::SpecTxConfig strict_config = epochConfig();
    strict_config.groupCommit = false;
    core::SpecTx fresh(pool_, kThreads, strict_config);
    fresh.recover();
    EXPECT_EQ(pool_.getRoot(txn::kEpochFrontierSlot), kPmNull);
    EXPECT_EQ(dev_.loadT<std::uint64_t>(off), 111u);

    // And the strict successor operates normally, with no epochs.
    fresh.txBegin(0);
    fresh.txStoreT<std::uint64_t>(0, off, 333);
    fresh.txCommit(0);
    EXPECT_EQ(fresh.lastSealedEpoch(), 0u);
}

kv::KvServiceConfig
kvEpochConfig(unsigned epoch_max_ops)
{
    kv::KvServiceConfig config;
    config.shards = 1;
    config.threads = 1;
    config.runtime = "spec";
    config.bucketsPerShard = 1024;
    config.epochMaxOps = epoch_max_ops;
    config.runtimeOptions.groupCommit = true;
    return config;
}

TEST(EpochKv, RelaxedPutTicketSealAndLatestView)
{
    kv::KvService service(kvEpochConfig(0)); // manual sealing only
    ASSERT_TRUE(service.groupCommitEnabled());

    std::uint64_t ticket = 0;
    ASSERT_TRUE(service.put(0, 7, kv::KvValue::tagged(7, 1),
                            kv::Durability::Relaxed, &ticket));
    EXPECT_GT(ticket, 0u);
    EXPECT_LT(service.shardSealedEpoch(0), ticket)
        << "a relaxed put must not be durable before its seal";

    // DRAM-latest view: the value reads back before the seal.
    const auto value = service.get(0, 7);
    ASSERT_TRUE(value.has_value());
    EXPECT_EQ(*value, kv::KvValue::tagged(7, 1));

    EXPECT_GE(service.sealShardEpoch(0), ticket);
    EXPECT_GE(service.shardSealedEpoch(0), ticket);
    service.shutdown();
}

TEST(EpochKv, AutoSealAfterEpochMaxOpsRelaxedMutations)
{
    kv::KvService service(kvEpochConfig(4));
    std::uint64_t first_ticket = 0;
    ASSERT_TRUE(service.put(0, 1, kv::KvValue::tagged(1, 1),
                            kv::Durability::Relaxed, &first_ticket));
    for (kv::KvKey key = 2; key <= 3; ++key)
        ASSERT_TRUE(service.put(0, key, kv::KvValue::tagged(key, 1),
                                kv::Durability::Relaxed));
    EXPECT_LT(service.shardSealedEpoch(0), first_ticket);
    ASSERT_TRUE(service.put(0, 4, kv::KvValue::tagged(4, 1),
                            kv::Durability::Relaxed));
    EXPECT_GE(service.shardSealedEpoch(0), first_ticket)
        << "the epochMaxOps'th relaxed mutation must auto-seal";
    service.shutdown();
}

TEST(EpochKv, StrictPutSealsTheShardEpoch)
{
    kv::KvService service(kvEpochConfig(0));
    std::uint64_t ticket = 0;
    ASSERT_TRUE(service.put(0, 1, kv::KvValue::tagged(1, 1),
                            kv::Durability::Relaxed, &ticket));
    ASSERT_LT(service.shardSealedEpoch(0), ticket);
    ASSERT_TRUE(service.put(0, 2, kv::KvValue::tagged(2, 2)));
    EXPECT_GE(service.shardSealedEpoch(0), ticket)
        << "a strict mutation seals the epoch it joins";
    service.shutdown();
}

} // namespace
} // namespace specpmt
