/**
 * @file
 * Unit tests for software SpecPMT: speculative log format, commit
 * protocol, recovery, abort, log reclamation/compaction, external
 * data adoption, and mechanism switching.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <memory>

#include "core/spec_tx.hh"
#include "pmem/pmem_device.hh"
#include "pmem/pmem_pool.hh"
#include "txn/undo_tx.hh"

namespace specpmt::core
{
namespace
{

SpecTxConfig
testConfig(bool dp = false, std::size_t block = 256)
{
    SpecTxConfig config;
    config.dataPersistOnCommit = dp;
    config.backgroundReclaim = false;
    config.logBlockSize = block;
    return config;
}

class SpecTxTest : public ::testing::Test
{
  protected:
    SpecTxTest()
        : dev_(16u << 20), pool_(dev_), tx_(pool_, 1, testConfig())
    {}

    /** Initialize a slot array through committed transactions. */
    PmOff
    initSlots(unsigned count)
    {
        const PmOff off = pool_.alloc(count * 8);
        tx_.txBegin(0);
        for (unsigned i = 0; i < count; ++i)
            tx_.txStoreT<std::uint64_t>(0, off + i * 8, i);
        tx_.txCommit(0);
        return off;
    }

    pmem::PmemDevice dev_;
    pmem::PmemPool pool_;
    SpecTx tx_;
};

TEST_F(SpecTxTest, SingleFencePerCommitNoFencePerStore)
{
    const PmOff off = initSlots(32);
    const auto fences_before = dev_.stats().fences;
    tx_.txBegin(0);
    for (unsigned i = 0; i < 32; ++i)
        tx_.txStoreT<std::uint64_t>(0, off + i * 8, i * 10);
    tx_.txCommit(0);
    EXPECT_EQ(dev_.stats().fences - fences_before, 1u)
        << "speculative logging commits with exactly one sfence";
}

TEST_F(SpecTxTest, DataIsNeverExplicitlyFlushed)
{
    const PmOff off = initSlots(8);
    const auto data_clwbs = dev_.stats().clwbs[0];
    tx_.txBegin(0);
    tx_.txStoreT<std::uint64_t>(0, off, 99);
    tx_.txCommit(0);
    EXPECT_EQ(dev_.stats().clwbs[0], data_clwbs)
        << "SpecSPMT elides data persistence entirely";
    EXPECT_GT(dev_.stats().clwbs[1], 0u) << "but does flush the log";
}

TEST_F(SpecTxTest, DpVariantFlushesDataAtCommitStillOneFence)
{
    pmem::PmemDevice dev(16u << 20);
    pmem::PmemPool pool(dev);
    SpecTx tx(pool, 1, testConfig(/*dp=*/true));
    const PmOff off = pool.alloc(64);

    const auto fences_before = dev.stats().fences;
    const auto data_clwbs = dev.stats().clwbs[0];
    tx.txBegin(0);
    for (unsigned i = 0; i < 8; ++i)
        tx.txStoreT<std::uint64_t>(0, off + i * 8, i);
    tx.txCommit(0);
    EXPECT_EQ(dev.stats().fences - fences_before, 1u);
    EXPECT_EQ(dev.stats().clwbs[0] - data_clwbs, 1u)
        << "8 contiguous u64 = 1 data cache line";
}

TEST_F(SpecTxTest, CommittedTxSurvivesAdversarialCrashViaReplay)
{
    const PmOff off = initSlots(4);
    tx_.txBegin(0);
    tx_.txStoreT<std::uint64_t>(0, off, 1111);
    tx_.txCommit(0);

    // No data line was flushed; the log alone must reconstruct it.
    dev_.simulateCrash(pmem::CrashPolicy::nothing());
    pool_.reopenAfterCrash();
    SpecTx fresh(pool_, 1, testConfig());
    fresh.recover();
    EXPECT_EQ(dev_.loadT<std::uint64_t>(off), 1111u);
}

TEST_F(SpecTxTest, UncommittedTxIsRevokedEvenIfDataDrained)
{
    const PmOff off = initSlots(4);
    tx_.txBegin(0);
    tx_.txStoreT<std::uint64_t>(0, off, 2222);
    // Everything drains: the uncommitted in-place update hit PM, and
    // so did torn pieces of its (unchecksummed) log segment.
    dev_.simulateCrash(pmem::CrashPolicy::everything());
    pool_.reopenAfterCrash();
    SpecTx fresh(pool_, 1, testConfig());
    fresh.recover();
    EXPECT_EQ(dev_.loadT<std::uint64_t>(off), 0u)
        << "the older committed record must undo the interrupted tx";
}

TEST_F(SpecTxTest, RepeatedUpdatesProduceOneLogEntry)
{
    const PmOff off = initSlots(1);
    const auto bytes_before = tx_.logBytesInUse();
    const auto tail_probe = dev_.stats().storeBytes;
    tx_.txBegin(0);
    for (unsigned i = 0; i < 100; ++i)
        tx_.txStoreT<std::uint64_t>(0, off, i);
    tx_.txCommit(0);
    EXPECT_EQ(dev_.loadT<std::uint64_t>(off), 99u);
    // 100 updates, but the log grew by at most one block.
    EXPECT_LE(tx_.logBytesInUse() - bytes_before, 256u);
    (void)tail_probe;

    // Recovery replays the last value.
    dev_.simulateCrash(pmem::CrashPolicy::nothing());
    pool_.reopenAfterCrash();
    SpecTx fresh(pool_, 1, testConfig());
    fresh.recover();
    EXPECT_EQ(dev_.loadT<std::uint64_t>(off), 99u);
}

TEST_F(SpecTxTest, ReadOnlyCommitCostsNothing)
{
    initSlots(1);
    const auto fences = dev_.stats().fences;
    const auto clwbs = dev_.stats().totalClwbs();
    tx_.txBegin(0);
    tx_.txCommit(0);
    EXPECT_EQ(dev_.stats().fences, fences);
    EXPECT_EQ(dev_.stats().totalClwbs(), clwbs);
}

TEST_F(SpecTxTest, MultiSegmentTxCommitsAtomically)
{
    // 256-byte blocks force a large tx to span several blocks.
    const PmOff off = initSlots(200);
    tx_.txBegin(0);
    for (unsigned i = 0; i < 200; ++i)
        tx_.txStoreT<std::uint64_t>(0, off + i * 8, i + 1000);
    tx_.txCommit(0);

    dev_.simulateCrash(pmem::CrashPolicy::nothing());
    pool_.reopenAfterCrash();
    SpecTx fresh(pool_, 1, testConfig());
    fresh.recover();
    for (unsigned i = 0; i < 200; ++i)
        EXPECT_EQ(dev_.loadT<std::uint64_t>(off + i * 8), i + 1000);
}

TEST_F(SpecTxTest, MultiSegmentUncommittedTxFullyRevoked)
{
    const PmOff off = initSlots(200);
    tx_.txBegin(0);
    for (unsigned i = 0; i < 200; ++i)
        tx_.txStoreT<std::uint64_t>(0, off + i * 8, i + 5000);
    // no commit
    dev_.simulateCrash(pmem::CrashPolicy::everything());
    pool_.reopenAfterCrash();
    SpecTx fresh(pool_, 1, testConfig());
    fresh.recover();
    for (unsigned i = 0; i < 200; ++i)
        EXPECT_EQ(dev_.loadT<std::uint64_t>(off + i * 8), i);
}

TEST_F(SpecTxTest, AbortRestoresAndRuntimeStaysUsable)
{
    const PmOff off = initSlots(8);
    tx_.txBegin(0);
    for (unsigned i = 0; i < 8; ++i)
        tx_.txStoreT<std::uint64_t>(0, off + i * 8, 777);
    tx_.txAbort(0);
    for (unsigned i = 0; i < 8; ++i)
        EXPECT_EQ(dev_.loadT<std::uint64_t>(off + i * 8), i);

    tx_.txBegin(0);
    tx_.txStoreT<std::uint64_t>(0, off, 888);
    tx_.txCommit(0);
    EXPECT_EQ(dev_.loadT<std::uint64_t>(off), 888u);

    // Post-abort recovery must still be coherent.
    dev_.simulateCrash(pmem::CrashPolicy::nothing());
    pool_.reopenAfterCrash();
    SpecTx fresh(pool_, 1, testConfig());
    fresh.recover();
    EXPECT_EQ(dev_.loadT<std::uint64_t>(off), 888u);
    for (unsigned i = 1; i < 8; ++i)
        EXPECT_EQ(dev_.loadT<std::uint64_t>(off + i * 8), i);
}

TEST_F(SpecTxTest, AbortOfMultiBlockTxReleasesBlocks)
{
    const PmOff off = initSlots(200);
    const auto bytes_before = tx_.logBytesInUse();
    tx_.txBegin(0);
    for (unsigned i = 0; i < 200; ++i)
        tx_.txStoreT<std::uint64_t>(0, off + i * 8, 9);
    tx_.txAbort(0);
    // At most the (possibly fresh) tail block is retained.
    EXPECT_LE(tx_.logBytesInUse(), bytes_before + 256);
}

TEST_F(SpecTxTest, ReclamationRemovesStaleRecordsKeepsNewest)
{
    const PmOff off = initSlots(4);
    // Many committed updates of the same 4 slots -> mostly stale log.
    for (unsigned round = 0; round < 200; ++round) {
        tx_.txBegin(0);
        for (unsigned i = 0; i < 4; ++i)
            tx_.txStoreT<std::uint64_t>(0, off + i * 8,
                                        round * 10 + i);
        tx_.txCommit(0);
    }
    const auto before = tx_.logBytesInUse();
    tx_.reclaimNow();
    const auto after = tx_.logBytesInUse();
    EXPECT_LT(after, before / 4) << "compaction must reclaim stale log";
    EXPECT_GT(tx_.reclaimCycles(), 0u);

    // The newest committed values must still be recoverable.
    dev_.simulateCrash(pmem::CrashPolicy::nothing());
    pool_.reopenAfterCrash();
    SpecTx fresh(pool_, 1, testConfig());
    fresh.recover();
    for (unsigned i = 0; i < 4; ++i)
        EXPECT_EQ(dev_.loadT<std::uint64_t>(off + i * 8), 1990u + i);
}

TEST_F(SpecTxTest, ReclamationPreservesRevocability)
{
    const PmOff off = initSlots(4);
    for (unsigned round = 0; round < 50; ++round) {
        tx_.txBegin(0);
        tx_.txStoreT<std::uint64_t>(0, off, round);
        tx_.txCommit(0);
    }
    tx_.reclaimNow();

    // An uncommitted update after reclamation must still be revocable
    // by the surviving (compacted) newest record.
    tx_.txBegin(0);
    tx_.txStoreT<std::uint64_t>(0, off, 12345);
    dev_.simulateCrash(pmem::CrashPolicy::everything());
    pool_.reopenAfterCrash();
    SpecTx fresh(pool_, 1, testConfig());
    fresh.recover();
    EXPECT_EQ(dev_.loadT<std::uint64_t>(off), 49u);
}

TEST_F(SpecTxTest, BackgroundReclaimerBoundsLogGrowth)
{
    pmem::PmemDevice dev(64u << 20);
    pmem::PmemPool pool(dev);
    SpecTxConfig config;
    config.backgroundReclaim = true;
    config.logBlockSize = 4096;
    config.reclaimThresholdBytes = 64 * 1024;
    SpecTx tx(pool, 1, config);

    const PmOff off = pool.alloc(64);
    tx.txBegin(0);
    for (unsigned i = 0; i < 8; ++i)
        tx.txStoreT<std::uint64_t>(0, off + i * 8, 0);
    tx.txCommit(0);

    for (unsigned round = 0; round < 20000; ++round) {
        tx.txBegin(0);
        tx.txStoreT<std::uint64_t>(0, off + (round % 8) * 8, round);
        tx.txCommit(0);
    }
    tx.shutdown();
    EXPECT_GT(tx.reclaimCycles(), 0u);
    EXPECT_LT(tx.logBytesInUse(), 4u << 20)
        << "background reclamation must bound the log";
    EXPECT_EQ(dev.loadT<std::uint64_t>(off + (19999 % 8) * 8), 19999u);
}

TEST_F(SpecTxTest, CrashDuringCompactionIsRecoverable)
{
    const PmOff off = initSlots(8);
    for (unsigned round = 0; round < 100; ++round) {
        tx_.txBegin(0);
        tx_.txStoreT<std::uint64_t>(0, off + (round % 8) * 8, round);
        tx_.txCommit(0);
    }
    // Crash somewhere inside the compaction cycle: sweep countdowns
    // until one lands inside it (the cycle's op count varies with the
    // log contents).
    bool crashed = false;
    for (long countdown : {5L, 11L, 23L, 37L, 61L}) {
        dev_.armCrash(countdown);
        try {
            tx_.reclaimNow();
        } catch (const pmem::SimulatedCrash &) {
            crashed = true;
            break;
        }
    }
    dev_.armCrash(-1);
    EXPECT_TRUE(crashed) << "no countdown landed inside compaction";

    dev_.simulateCrash(pmem::CrashPolicy::random(7, 0.5));
    pool_.reopenAfterCrash();
    SpecTx fresh(pool_, 1, testConfig());
    fresh.recover();
    for (unsigned i = 0; i < 8; ++i) {
        // Last committed value of slot i among rounds 0..99.
        const std::uint64_t expected = 96 + i >= 100 ? 88 + i : 96 + i;
        EXPECT_EQ(dev_.loadT<std::uint64_t>(off + i * 8), expected);
    }
}

TEST_F(SpecTxTest, AdoptExternalMakesForeignDataRevocable)
{
    // Simulate external data: written outside any transaction.
    const PmOff off = pool_.alloc(64);
    for (unsigned i = 0; i < 8; ++i)
        dev_.storeT<std::uint64_t>(off + i * 8, 100 + i);
    dev_.drainAll();

    tx_.adoptExternal(0, off, 64);
    tx_.txBegin(0);
    tx_.txStoreT<std::uint64_t>(0, off, 55555);
    dev_.simulateCrash(pmem::CrashPolicy::everything());
    pool_.reopenAfterCrash();
    SpecTx fresh(pool_, 1, testConfig());
    fresh.recover();
    EXPECT_EQ(dev_.loadT<std::uint64_t>(off), 100u)
        << "snapshot record must revoke the interrupted update";
}

TEST_F(SpecTxTest, SwitchMechanismHandsOffCleanly)
{
    const PmOff off = initSlots(8);
    tx_.txBegin(0);
    tx_.txStoreT<std::uint64_t>(0, off, 321);
    tx_.txCommit(0);
    tx_.switchMechanism();
    EXPECT_EQ(tx_.logBytesInUse(), 0u);

    // Data must be durable without any speculative log left.
    {
        auto image = dev_.crashImage(pmem::CrashPolicy::nothing());
        std::uint64_t persisted;
        std::memcpy(&persisted, image.data() + off, 8);
        EXPECT_EQ(persisted, 321u);
    }

    // An undo-logging runtime takes over the same pool.
    txn::PmdkUndoTx pmdk(pool_, 1);
    pmdk.txBegin(0);
    pmdk.txStoreT<std::uint64_t>(0, off, 654);
    pmdk.txCommit(0);
    dev_.simulateCrash(pmem::CrashPolicy::nothing());
    EXPECT_EQ(dev_.loadT<std::uint64_t>(off), 654u);
}

TEST_F(SpecTxTest, DoubleCrashDoubleRecovery)
{
    const PmOff off = initSlots(4);
    tx_.txBegin(0);
    tx_.txStoreT<std::uint64_t>(0, off, 10);
    tx_.txCommit(0);

    dev_.simulateCrash(pmem::CrashPolicy::nothing());
    pool_.reopenAfterCrash();
    auto second = std::make_unique<SpecTx>(pool_, 1, testConfig());
    second->recover();
    second->txBegin(0);
    second->txStoreT<std::uint64_t>(0, off, 20);
    second->txCommit(0);
    second.reset();

    dev_.simulateCrash(pmem::CrashPolicy::nothing());
    pool_.reopenAfterCrash();
    SpecTx third(pool_, 1, testConfig());
    third.recover();
    EXPECT_EQ(dev_.loadT<std::uint64_t>(off), 20u);
}

TEST_F(SpecTxTest, CrashDuringRecoveryThenRecoverAgain)
{
    const PmOff off = initSlots(16);
    tx_.txBegin(0);
    for (unsigned i = 0; i < 16; ++i)
        tx_.txStoreT<std::uint64_t>(0, off + i * 8, 900 + i);
    tx_.txCommit(0);

    dev_.simulateCrash(pmem::CrashPolicy::nothing());
    pool_.reopenAfterCrash();
    {
        SpecTx interrupted(pool_, 1, testConfig());
        dev_.armCrash(9);
        EXPECT_THROW(interrupted.recover(), pmem::SimulatedCrash);
        dev_.armCrash(-1);
    }
    dev_.simulateCrash(pmem::CrashPolicy::random(3, 0.5));
    pool_.reopenAfterCrash();
    SpecTx fresh(pool_, 1, testConfig());
    fresh.recover();
    for (unsigned i = 0; i < 16; ++i)
        EXPECT_EQ(dev_.loadT<std::uint64_t>(off + i * 8), 900 + i);
}

TEST_F(SpecTxTest, PeakLogBytesTracksGrowth)
{
    const PmOff off = initSlots(8);
    const auto peak0 = tx_.peakLogBytes();
    for (unsigned round = 0; round < 100; ++round) {
        tx_.txBegin(0);
        tx_.txStoreT<std::uint64_t>(0, off, round);
        tx_.txCommit(0);
    }
    EXPECT_GT(tx_.peakLogBytes(), peak0);
    tx_.reclaimNow();
    EXPECT_GE(tx_.peakLogBytes(), tx_.logBytesInUse());
}

} // namespace
} // namespace specpmt::core
