/**
 * @file
 * The central crash-consistency property suite, explorer-backed: for
 * every recoverable runtime and cache-eviction policy, *every*
 * persistence-event crash point of a randomized transactional
 * workload is enumerated (not sampled), recovered, checked for atomic
 * durability, and the recovered pool must keep working — including
 * surviving a second crash. Any failing schedule is reported with a
 * crashmatrix replay token.
 */

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "sim/crash_explorer.hh"

namespace specpmt::sim
{
namespace
{

using Param = std::tuple<const char *, const char *>;

class CrashAtomicityTest : public ::testing::TestWithParam<Param>
{
};

TEST_P(CrashAtomicityTest, EveryCrashPointRecoversConsistently)
{
    const auto [runtime, policy] = GetParam();

    CrashCell cell;
    cell.runtime = runtime;
    cell.workload = "slots";
    cell.policy = policy;
    cell.seed = 1000;
    cell.txCount = 12;
    // Exercise reclamation/compaction inside the crash window for the
    // speculative runtimes.
    if (cell.runtime == "spec" || cell.runtime == "spec-dp")
        cell.reclaimEvery = 7;

    CrashExplorer explorer(cell, builtinCrashWorkloadFactory());
    ExploreOptions options;
    options.jobs = 2;
    options.verifyContinuation = true;
    const auto report = explorer.explore(options);

    ASSERT_EQ(report.error, "");
    EXPECT_GT(report.totalEvents, 0u);
    EXPECT_EQ(report.explored + report.pruned, report.candidatePoints)
        << "crash points unaccounted for";
    EXPECT_EQ(report.candidatePoints, report.totalEvents)
        << "unsharded exploration must cover the whole point space";
    for (const auto &failure : report.failures) {
        ADD_FAILURE() << failure.message
                      << "\n  replay: crashmatrix --replay='"
                      << failure.token << "'";
    }
}

std::string
paramName(const ::testing::TestParamInfo<Param> &info)
{
    std::string name = std::get<0>(info.param);
    name += "_";
    name += std::get<1>(info.param);
    for (auto &c : name) {
        if (c == '-')
            c = '_';
    }
    return name;
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, CrashAtomicityTest,
    ::testing::Combine(::testing::Values("pmdk", "spht", "spec",
                                         "spec-dp", "hybrid"),
                       ::testing::Values("nothing", "everything",
                                         "random")),
    paramName);

} // namespace
} // namespace specpmt::sim
