/**
 * @file
 * The central crash-consistency property suite: for every recoverable
 * runtime, for a sweep of crash points and cache-eviction policies,
 * a randomized transactional workload interrupted by a simulated
 * power failure must recover to an atomically consistent state, and
 * the recovered pool must keep working (including surviving a second
 * crash).
 */

#include <gtest/gtest.h>

#include <tuple>

#include "crash_harness.hh"

namespace specpmt::tests
{
namespace
{

enum class PolicyKind
{
    Nothing,
    Everything,
    Random,
};

const char *
policyName(PolicyKind kind)
{
    switch (kind) {
      case PolicyKind::Nothing:
        return "nothing";
      case PolicyKind::Everything:
        return "everything";
      case PolicyKind::Random:
        return "random";
    }
    return "?";
}

pmem::CrashPolicy
makePolicy(PolicyKind kind, std::uint64_t seed)
{
    switch (kind) {
      case PolicyKind::Nothing:
        return pmem::CrashPolicy::nothing();
      case PolicyKind::Everything:
        return pmem::CrashPolicy::everything();
      case PolicyKind::Random:
        return pmem::CrashPolicy::random(seed, 0.5);
    }
    return pmem::CrashPolicy::nothing();
}

using Param = std::tuple<RuntimeKind, long, PolicyKind>;

class CrashAtomicityTest : public ::testing::TestWithParam<Param>
{
};

TEST_P(CrashAtomicityTest, RecoversToConsistentStateAndKeepsWorking)
{
    const auto [kind, crash_after, policy_kind] = GetParam();

    HarnessConfig config;
    config.seed = 1000 + static_cast<std::uint64_t>(crash_after);
    // Exercise reclamation/compaction inside the crash window for the
    // speculative runtimes.
    if (kind == RuntimeKind::Spec || kind == RuntimeKind::SpecDp)
        config.reclaimEvery = 7;

    CrashScenario scenario(kind, config);
    const bool crashed = scenario.runWithCrash(crash_after);

    const auto policy = makePolicy(
        policy_kind, static_cast<std::uint64_t>(crash_after) * 31 + 7);
    scenario.crashAndRecover(policy);

    if (crashed) {
        const std::string failure = scenario.verifyAtomicity();
        EXPECT_TRUE(failure.empty())
            << runtimeKindName(kind) << " crash_after=" << crash_after
            << " policy=" << policyName(policy_kind) << ": " << failure;
    } else {
        // The countdown outlived the workload: everything committed.
        const std::string failure = scenario.verifyAtomicity();
        EXPECT_TRUE(failure.empty()) << failure;
    }

    // Phase 2: the recovered pool must continue to work and survive a
    // second adversarial crash.
    scenario.rebaseline();
    scenario.runMore(16, /*seed=*/99);
    ASSERT_EQ(scenario.verifyExact(), "");

    scenario.crashAndRecover(pmem::CrashPolicy::nothing());
    EXPECT_EQ(scenario.verifyExact(), "")
        << "second crash after recovery";
}

constexpr long kCrashPoints[] = {1,   3,   7,    15,   31,   63,
                                 127, 255, 511,  1023, 2047, 4095,
                                 8191, 1u << 20 /* = no crash */};

std::string
paramName(const ::testing::TestParamInfo<Param> &info)
{
    const auto kind = std::get<0>(info.param);
    const auto crash_after = std::get<1>(info.param);
    const auto policy = std::get<2>(info.param);
    return std::string(runtimeKindName(kind)) + "_c" +
           std::to_string(crash_after) + "_" + policyName(policy);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CrashAtomicityTest,
    ::testing::Combine(::testing::Values(RuntimeKind::Pmdk,
                                         RuntimeKind::Spht,
                                         RuntimeKind::Spec,
                                         RuntimeKind::SpecDp,
                                         RuntimeKind::Hybrid),
                       ::testing::ValuesIn(kCrashPoints),
                       ::testing::Values(PolicyKind::Nothing,
                                         PolicyKind::Everything,
                                         PolicyKind::Random)),
    paramName);

} // namespace
} // namespace specpmt::tests
