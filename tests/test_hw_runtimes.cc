/**
 * @file
 * Tests of the hardware transaction models: protocol event counts,
 * relative cost orderings the paper's evaluation relies on, hybrid
 * logging transitions, and epoch reclamation bounds.
 */

#include <gtest/gtest.h>

#include "sim/machine.hh"
#include "txn/trace.hh"

namespace specpmt::sim
{
namespace
{

using txn::MemOp;
using txn::MemOpKind;
using txn::MemTrace;

/** Build a trace of @p txs transactions, each writing @p lines. */
MemTrace
makeTrace(unsigned txs, unsigned lines_per_tx, bool repeat_same_lines,
          unsigned compute_ns = 500)
{
    MemTrace trace;
    PmOff cursor = 0;
    for (unsigned t = 0; t < txs; ++t) {
        trace.ops.push_back(
            {MemOpKind::Compute, {}, 0, 0, 0, compute_ns});
        trace.ops.push_back({MemOpKind::TxBegin, {}, 0, 0, 0, 0});
        for (unsigned i = 0; i < lines_per_tx; ++i) {
            const PmOff off = repeat_same_lines
                ? i * kCacheLineSize
                : (cursor += kCacheLineSize);
            trace.ops.push_back({MemOpKind::Store, {}, 0, off, 8, 0});
            ++trace.numUpdates;
            trace.updateBytes += 8;
        }
        trace.ops.push_back({MemOpKind::TxCommit, {}, 0, 0, 0, 0});
        ++trace.numTx;
    }
    return trace;
}

TEST(HwRuntimes, EveryTxCommitsOneFence)
{
    const auto trace = makeTrace(100, 4, false);
    SimConfig config;
    for (const auto scheme : allHwSchemes()) {
        const auto stats = simulate(scheme, config, trace);
        EXPECT_EQ(stats.txs, 100u) << hwSchemeName(scheme);
        // 100 commits + the end-of-run drain fence (+1 reclaim slack).
        EXPECT_GE(stats.fences, 101u) << hwSchemeName(scheme);
        EXPECT_LE(stats.fences, 110u) << hwSchemeName(scheme);
    }
}

TEST(HwRuntimes, NoLogWritesNoLog)
{
    const auto trace = makeTrace(50, 4, false);
    SimConfig config;
    const auto stats = simulate(HwScheme::NoLog, config, trace);
    EXPECT_EQ(stats.pmLogLineWrites, 0u);
    EXPECT_GE(stats.pmDataLineWrites, 200u);
}

TEST(HwRuntimes, EdeIsNeverFasterThanNoLog)
{
    for (const bool repeat : {false, true}) {
        const auto trace = makeTrace(200, 6, repeat);
        SimConfig config;
        const auto ede = simulate(HwScheme::Ede, config, trace);
        const auto ideal = simulate(HwScheme::NoLog, config, trace);
        EXPECT_GE(ede.ns, ideal.ns);
        EXPECT_GT(ede.pmLogLineWrites, 0u);
    }
}

TEST(HwRuntimes, SpecHpmtBeatsEdeOnHotData)
{
    // Repeatedly updating the same few lines is the hybrid design's
    // best case: pages go hot, data persistence is elided.
    const auto trace = makeTrace(3000, 8, /*repeat_same_lines=*/true);
    SimConfig config;
    const auto ede = simulate(HwScheme::Ede, config, trace);
    const auto spec = simulate(HwScheme::SpecHpmt, config, trace);
    EXPECT_LT(spec.ns, ede.ns);
    EXPECT_LT(spec.pmDataLineWrites, ede.pmDataLineWrites / 4)
        << "hot data must coalesce across transactions";
    EXPECT_GT(spec.pageCopies, 0u);
}

TEST(HwRuntimes, ColdDataStaysOnUndoPath)
{
    // A sweep over fresh pages with a single store each must never
    // trigger page copies (hotness is a rate, not a lifetime count).
    MemTrace trace;
    for (unsigned t = 0; t < 2000; ++t) {
        trace.ops.push_back({MemOpKind::TxBegin, {}, 0, 0, 0, 0});
        trace.ops.push_back({MemOpKind::Store, {}, 0,
                             static_cast<PmOff>(t) * kPageSize, 8, 0});
        trace.ops.push_back({MemOpKind::TxCommit, {}, 0, 0, 0, 0});
        ++trace.numTx;
    }
    SimConfig config;
    const auto stats = simulate(HwScheme::SpecHpmt, config, trace);
    EXPECT_EQ(stats.pageCopies, 0u);
}

TEST(HwRuntimes, DpVariantPersistsDataAtCommit)
{
    const auto trace = makeTrace(500, 8, true);
    SimConfig config;
    const auto spec = simulate(HwScheme::SpecHpmt, config, trace);
    const auto dp = simulate(HwScheme::SpecHpmtDp, config, trace);
    EXPECT_GT(dp.pmDataLineWrites, spec.pmDataLineWrites);
    EXPECT_GE(dp.ns, spec.ns);
}

TEST(HwRuntimes, EpochBudgetBoundsLogMemory)
{
    const auto trace = makeTrace(4000, 8, true);
    SimConfig small_config;
    small_config.epochMaxBytes = 32 * 1024;
    small_config.epochMaxPages = 16;
    SimConfig big_config;
    big_config.epochMaxBytes = 8u << 20;

    const auto small_run =
        simulate(HwScheme::SpecHpmt, small_config, trace);
    const auto big_run = simulate(HwScheme::SpecHpmt, big_config, trace);
    EXPECT_GT(small_run.epochsReclaimed, big_run.epochsReclaimed);
    EXPECT_LT(small_run.peakLogBytes, big_run.peakLogBytes);
    // Memory stays within a couple of epoch budgets plus one page.
    EXPECT_LE(small_run.peakLogBytes,
              3 * small_config.epochMaxBytes + kPageSize);
}

TEST(HwRuntimes, HoopRunsGcAndCoalesces)
{
    const auto trace = makeTrace(4000, 8, true);
    SimConfig config;
    const auto hoop = simulate(HwScheme::Hoop, config, trace);
    const auto ede = simulate(HwScheme::Ede, config, trace);
    EXPECT_GT(hoop.gcRuns, 0u);
    EXPECT_LT(hoop.pmDataLineWrites, ede.pmDataLineWrites)
        << "GC coalesces data writes across transactions";
}

TEST(HwRuntimes, TraceLoadsHitCaches)
{
    MemTrace trace;
    trace.ops.push_back({MemOpKind::TxBegin, {}, 0, 0, 0, 0});
    trace.ops.push_back({MemOpKind::Store, {}, 0, 0, 8, 0});
    trace.ops.push_back({MemOpKind::TxCommit, {}, 0, 0, 0, 0});
    for (int i = 0; i < 10; ++i)
        trace.ops.push_back({MemOpKind::Load, {}, 0, 0, 8, 0});
    trace.numTx = 1;
    SimConfig config;
    const auto stats = simulate(HwScheme::Ede, config, trace);
    EXPECT_GE(stats.l1Hits, 10u);
}

} // namespace
} // namespace specpmt::sim
