/**
 * @file
 * Recovery idempotence: a power failure *during recovery* must leave
 * the pool recoverable, and repeating recovery any number of times
 * must converge to the same consistent state. The paper relies on
 * this implicitly ("log reclamation can be repeated from the
 * beginning if it is interrupted by a crash", Section 4.2; replay is
 * idempotent, Section 4.1). Drives sim::SlotScenario's phases by hand
 * because the crash explorer only models one crash per schedule.
 */

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "sim/crash_explorer.hh"

namespace specpmt::sim
{
namespace
{

using Param = std::tuple<const char *, long, long>;

class RecoveryCrashTest : public ::testing::TestWithParam<Param>
{
};

TEST_P(RecoveryCrashTest, CrashDuringRecoveryThenRecoverAgain)
{
    const auto [runtime, run_crash, recovery_crash] = GetParam();

    CrashCell cell;
    cell.runtime = runtime;
    cell.seed = 7000 + static_cast<std::uint64_t>(run_crash);
    cell.txCount = 64;
    SlotScenario scenario(cell);
    scenario.runWithCrash(run_crash);

    // First power failure.
    scenario.device().armCrash(-1);
    auto &dev = scenario.device();
    auto &pool = scenario.pool();
    dev.simulateCrash(pmem::CrashPolicy::random(
        static_cast<std::uint64_t>(run_crash), 0.5));
    pool.reopenAfterCrash();

    // Recovery #1 is itself interrupted by a second power failure.
    {
        auto interrupted = makeCrashRuntime(runtime, pool, 1);
        dev.armCrash(recovery_crash);
        try {
            interrupted->recover();
            dev.armCrash(-1);
        } catch (const pmem::SimulatedCrash &) {
        }
        dev.armCrash(-1);
    }
    dev.simulateCrash(pmem::CrashPolicy::random(
        static_cast<std::uint64_t>(recovery_crash) * 3 + 1, 0.5));
    pool.reopenAfterCrash();

    // Recovery #2 must succeed and produce an atomically consistent
    // state; run it through the scenario so the usual checks apply.
    scenario.crashAndRecover(pmem::CrashPolicy::nothing());
    const std::string failure = scenario.verifyAtomicity();
    EXPECT_TRUE(failure.empty()) << runtime << ": " << failure;

    // And the pool still works.
    scenario.rebaseline();
    scenario.runMore(8, 3);
    EXPECT_EQ(scenario.verifyExact(), "");
}

std::string
paramName(const ::testing::TestParamInfo<Param> &info)
{
    std::string name = std::get<0>(info.param);
    for (auto &c : name) {
        if (c == '-')
            c = '_';
    }
    return name + "_r" + std::to_string(std::get<1>(info.param)) +
           "_c" + std::to_string(std::get<2>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RecoveryCrashTest,
    ::testing::Combine(::testing::Values("pmdk", "spht", "spec",
                                         "hybrid"),
                       ::testing::Values(200L, 900L),
                       ::testing::Values(3L, 11L, 29L, 73L)),
    paramName);

} // namespace
} // namespace specpmt::sim
