/**
 * @file
 * Compile-out test: this translation unit is built with
 * SPECPMT_TRACING_DISABLED defined (see tests/CMakeLists.txt), so the
 * trace macros must expand to side-effect-free no-ops — even with the
 * runtime tracer armed, macro call sites record nothing.
 */

#ifndef SPECPMT_TRACING_DISABLED
#error "this TU must be compiled with SPECPMT_TRACING_DISABLED"
#endif

#include <gtest/gtest.h>

#include "obs/trace.hh"

using namespace specpmt;

namespace
{

TEST(TraceDisabled, MacrosAreNoOpsEvenWhenTracerArmed)
{
    auto &tracer = obs::Tracer::global();
    tracer.clear();
    tracer.enable();

    {
        SPECPMT_TRACE_SPAN("compiled_out", "unittest");
        SPECPMT_TRACE_SPAN("also_compiled_out", "unittest");
    }
    const auto t0 = SPECPMT_TRACE_BEGIN();
    EXPECT_EQ(t0, 0u);
    SPECPMT_TRACE_END("compiled_out_split", "unittest", t0);

    EXPECT_EQ(tracer.bufferedEvents(), 0u);

    // The Tracer object itself still links and works (the kill switch
    // removes macro call sites, not the collector).
    tracer.record("direct", "unittest", 1, 2);
    EXPECT_EQ(tracer.bufferedEvents(), 1u);

    tracer.disable();
    tracer.clear();
}

} // namespace
