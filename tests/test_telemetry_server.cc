/**
 * @file
 * Live telemetry plane tests: the admin HTTP responder serves
 * torn-free /metrics, /stats.json, /healthz and /trace snapshots;
 * concurrent scrapes during metric churn all parse; truncated or
 * garbage HTTP requests never wedge the responder; and against a real
 * NetServer, /healthz flips non-200 while a shard loop is deliberately
 * wedged and recovers afterwards.
 */

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "kv/kv_service.hh"
#include "net/server.hh"
#include "obs/http_client.hh"
#include "obs/metrics.hh"
#include "obs/telemetry_server.hh"
#include "obs/trace.hh"

namespace specpmt::obs
{
namespace
{

TelemetryConfig
localConfig(Registry &registry)
{
    TelemetryConfig config;
    config.port = 0;
    config.registry = &registry;
    return config;
}

bool
get(std::uint16_t port, const std::string &path, HttpResponse &out)
{
    std::string error;
    const bool ok = httpGet("127.0.0.1", port, path, out, error);
    EXPECT_TRUE(ok) << path << ": " << error;
    return ok;
}

TEST(TelemetryServer, ServesAllRoutes)
{
    Registry registry;
    registry.counter("tts_ops_total", "test ops").add(41);
    registry.gauge("tts_level").set(7);

    auto config = localConfig(registry);
    std::atomic<bool> live{true};
    config.health = [&live] {
        std::vector<ShardHealth> shards;
        shards.push_back({0, 100, 2, live.load()});
        shards.push_back({1, 150, 0, true});
        return shards;
    };
    TelemetryServer server(config);
    ASSERT_TRUE(server.start());
    ASSERT_NE(server.port(), 0);

    HttpResponse response;
    ASSERT_TRUE(get(server.port(), "/metrics", response));
    EXPECT_EQ(response.status, 200);
    EXPECT_NE(response.contentType.find("text/plain"),
              std::string::npos);
    FlatSamples samples;
    std::string error;
    ASSERT_TRUE(parsePrometheus(response.body, samples, error))
        << error;
    EXPECT_EQ(samples.at("tts_ops_total"), 41.0);
    EXPECT_EQ(samples.at("tts_level"), 7.0);

    ASSERT_TRUE(get(server.port(), "/stats.json", response));
    EXPECT_EQ(response.status, 200);
    EXPECT_NE(response.body.find("\"counters\""), std::string::npos);
    EXPECT_NE(response.body.find("\"tts_ops_total\": 41"),
              std::string::npos);

    ASSERT_TRUE(get(server.port(), "/healthz", response));
    EXPECT_EQ(response.status, 200);
    EXPECT_NE(response.body.find("\"healthz\""), std::string::npos);
    EXPECT_NE(response.body.find("\"status\": \"ok\""),
              std::string::npos);
    EXPECT_NE(response.body.find("\"seal_lag\": 2"),
              std::string::npos);

    // One dead shard flips the same route to 503/stalled.
    live.store(false);
    ASSERT_TRUE(get(server.port(), "/healthz", response));
    EXPECT_EQ(response.status, 503);
    EXPECT_NE(response.body.find("\"status\": \"stalled\""),
              std::string::npos);

    // /trace serves whatever the tracer buffered in the window.
    Tracer::global().enable();
    const std::uint64_t now = Tracer::now();
    Tracer::global().record("tts_span", "test", now - 1000, now, 77);
    ASSERT_TRUE(get(server.port(), "/trace?ms=1000", response));
    EXPECT_EQ(response.status, 200);
    EXPECT_NE(response.body.find("\"traceEvents\""),
              std::string::npos);
    EXPECT_NE(response.body.find("tts_span"), std::string::npos);
    Tracer::global().disable();
    Tracer::global().clear();

    ASSERT_TRUE(get(server.port(), "/nonsense", response));
    EXPECT_EQ(response.status, 404);

    server.stop();
    EXPECT_FALSE(server.running());
}

TEST(TelemetryServer, ConcurrentScrapesDuringMetricChurn)
{
    Registry registry;
    auto &counter = registry.counter("tts_churn_total");
    auto &hist = registry.histogram("tts_churn_ns");

    auto config = localConfig(registry);
    TelemetryServer server(config);
    ASSERT_TRUE(server.start());

    std::atomic<bool> stop{false};
    std::vector<std::thread> writers;
    for (unsigned t = 0; t < 3; ++t) {
        writers.emplace_back([&] {
            std::uint64_t i = 0;
            while (!stop.load(std::memory_order_relaxed)) {
                counter.add();
                hist.record(++i % 4096);
            }
        });
    }

    constexpr unsigned kScrapers = 4;
    constexpr unsigned kScrapesEach = 25;
    std::atomic<unsigned> failures{0};
    std::vector<std::thread> scrapers;
    for (unsigned t = 0; t < kScrapers; ++t) {
        scrapers.emplace_back([&] {
            double last = 0;
            for (unsigned i = 0; i < kScrapesEach; ++i) {
                HttpResponse response;
                std::string error;
                if (!httpGet("127.0.0.1", server.port(), "/metrics",
                             response, error) ||
                    response.status != 200) {
                    ++failures;
                    continue;
                }
                FlatSamples samples;
                if (!parsePrometheus(response.body, samples, error)) {
                    ++failures;
                    continue;
                }
                // The counter is monotone; a torn snapshot would
                // show up as a backwards step or an absurd value.
                const double seen = samples.at("tts_churn_total");
                if (seen < last)
                    ++failures;
                last = seen;
                if (samples.at("tts_churn_ns_count") >
                    samples.at("tts_churn_ns_sum") + 1)
                    ++failures;
            }
        });
    }
    for (auto &scraper : scrapers)
        scraper.join();
    stop.store(true);
    for (auto &writer : writers)
        writer.join();

    EXPECT_EQ(failures.load(), 0u);
    server.stop();
}

/** Raw client for feeding the responder malformed bytes. */
int
rawConnect(std::uint16_t port)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(
        ::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)),
        0);
    return fd;
}

TEST(TelemetryServer, GarbageRequestsDoNotWedgeTheResponder)
{
    Registry registry;
    registry.counter("tts_alive_total").add(1);
    auto config = localConfig(registry);
    config.maxRequestBytes = 512;
    config.idleTimeoutMs = 200;
    TelemetryServer server(config);
    ASSERT_TRUE(server.start());

    // Deterministic garbage: binary noise, header floods past the
    // request cap, truncated request lines abandoned mid-send, and
    // half-open connections that never write a byte.
    std::uint32_t state = 0x9e3779b9;
    const auto next = [&state] {
        state = state * 1664525u + 1013904223u;
        return state;
    };
    for (int round = 0; round < 20; ++round) {
        const int fd = rawConnect(server.port());
        ASSERT_GE(fd, 0);
        switch (round % 4) {
          case 0: { // binary noise
            std::uint8_t noise[64];
            for (auto &b : noise)
                b = static_cast<std::uint8_t>(next());
            (void)!::send(fd, noise, sizeof(noise), MSG_NOSIGNAL);
            break;
          }
          case 1: { // request larger than maxRequestBytes
            std::string flood = "GET /metrics HTTP/1.1\r\n";
            while (flood.size() < 2048)
                flood += "X-Pad: aaaaaaaaaaaaaaaaaaaaaaaa\r\n";
            (void)!::send(fd, flood.data(), flood.size(),
                          MSG_NOSIGNAL);
            break;
          }
          case 2: { // truncated request, then abrupt close
            const char partial[] = "GET /met";
            (void)!::send(fd, partial, sizeof(partial) - 1,
                          MSG_NOSIGNAL);
            break;
          }
          case 3: // half-open: connect and say nothing
            break;
        }
        ::close(fd);
    }

    // Idle connections left open must be reaped by the timeout, not
    // block the poll thread.
    const int idle = rawConnect(server.port());
    std::this_thread::sleep_for(std::chrono::milliseconds(50));

    // The responder still answers a well-formed scrape.
    HttpResponse response;
    std::string error;
    ASSERT_TRUE(httpGet("127.0.0.1", server.port(), "/metrics",
                        response, error))
        << error;
    EXPECT_EQ(response.status, 200);
    EXPECT_NE(response.body.find("tts_alive_total"),
              std::string::npos);
    ::close(idle);
    server.stop();
}

kv::KvServiceConfig
serviceConfig(unsigned shards)
{
    kv::KvServiceConfig config;
    config.shards = shards;
    config.threads = shards; // loop i transacts as thread id i
    config.runtime = "spec";
    config.bucketsPerShard = 1024;
    return config;
}

/** Poll /healthz until it reports @p status or the deadline passes. */
bool
waitForHealth(std::uint16_t port, int status, int timeoutMs)
{
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeoutMs);
    while (std::chrono::steady_clock::now() < deadline) {
        HttpResponse response;
        std::string error;
        if (httpGet("127.0.0.1", port, "/healthz", response, error) &&
            response.status == status)
            return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    return false;
}

TEST(TelemetryServer, HealthzFlipsWhileAShardLoopIsWedged)
{
    kv::KvService service(serviceConfig(2));
    net::ServerConfig server_config;
    server_config.stallThresholdMs = 500;
    net::NetServer server(service, server_config);
    server.start();

    TelemetryConfig config;
    config.port = 0;
    Registry registry;
    config.registry = &registry;
    config.health = [&server] { return server.healthReport(); };
    TelemetryServer telemetry(config);
    ASSERT_TRUE(telemetry.start());

    // Both loops beat every heartbeat tick (200ms), well inside the
    // 500ms stall threshold.
    ASSERT_TRUE(waitForHealth(telemetry.port(), 200, 2000));
    HttpResponse response;
    ASSERT_TRUE(get(telemetry.port(), "/healthz", response));
    EXPECT_NE(response.body.find("\"shards\""), std::string::npos);

    // Wedge loop 0 for 2s: its heartbeat goes stale past the
    // threshold and /healthz must flip to 503 while it sleeps...
    server.debugWedgeLoop(0, 2000);
    EXPECT_TRUE(waitForHealth(telemetry.port(), 503, 3000));

    // ...and recover once the loop resumes beating.
    EXPECT_TRUE(waitForHealth(telemetry.port(), 200, 3000));

    telemetry.stop();
    server.stop();
    service.shutdown();
}

} // namespace
} // namespace specpmt::obs
