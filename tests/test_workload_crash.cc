/**
 * @file
 * Integration crash tests, explorer-backed: each STAMP-analog
 * workload's persistence-event space is measured by a counting pass,
 * then a bounded set of crash points spread evenly across the run
 * (setup tail, steady state, teardown) is explored under the random
 * cache-eviction policy. After recovery the application's structural
 * invariant — which holds at every committed boundary — must hold,
 * and a clean second power cycle must preserve it. Failing schedules
 * are reported with crashmatrix replay tokens.
 */

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "workloads/stamp_crash_workload.hh"
#include "workloads/workload.hh"

namespace specpmt::workloads
{
namespace
{

using Param = std::tuple<WorkloadKind, const char *>;

class WorkloadCrashTest : public ::testing::TestWithParam<Param>
{
};

TEST_P(WorkloadCrashTest, StructuralInvariantSurvivesCrash)
{
    const auto [kind, runtime] = GetParam();

    sim::CrashCell cell;
    cell.runtime = runtime;
    cell.workload = workloadKindName(kind);
    cell.policy = "random";
    cell.persistProbability = 0.5;
    cell.seed = 11;
    cell.scale = 0.02;

    sim::CrashExplorer explorer(cell, stampCrashWorkloadFactory());
    sim::ExploreOptions options;
    options.jobs = 2;
    options.maxPoints = 5;
    options.verifyContinuation = true;
    const auto report = explorer.explore(options);

    ASSERT_EQ(report.error, "");
    EXPECT_GT(report.totalEvents, 0u);
    EXPECT_LE(report.candidatePoints, options.maxPoints);
    EXPECT_EQ(report.explored + report.pruned, report.candidatePoints);
    for (const auto &failure : report.failures) {
        ADD_FAILURE() << workloadKindName(kind) << ": "
                      << failure.message
                      << "\n  replay: crashmatrix --replay='"
                      << failure.token << "'";
    }
}

std::string
paramName(const ::testing::TestParamInfo<Param> &info)
{
    std::string name = workloadKindName(std::get<0>(info.param));
    name += "_";
    name += std::get<1>(info.param);
    for (auto &c : name) {
        if (c == '-')
            c = '_';
    }
    return name;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WorkloadCrashTest,
    ::testing::Combine(::testing::ValuesIn(allWorkloads()),
                       ::testing::Values("pmdk", "spec")),
    paramName);

} // namespace
} // namespace specpmt::workloads
