/**
 * @file
 * Integration crash tests: a STAMP-analog workload running under a
 * recoverable runtime is killed by a simulated power failure mid-run
 * (random cache-eviction outcome), the pool is re-opened, recovery
 * runs, and the application's structural invariant — which holds at
 * every committed boundary — must hold on the recovered state.
 */

#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "core/spec_tx.hh"
#include "pmem/pmem_device.hh"
#include "pmem/pmem_pool.hh"
#include "txn/undo_tx.hh"
#include "workloads/workload.hh"

namespace specpmt::workloads
{
namespace
{

enum class Scheme
{
    Pmdk,
    Spec,
};

std::unique_ptr<txn::TxRuntime>
makeRuntime(Scheme scheme, pmem::PmemPool &pool)
{
    if (scheme == Scheme::Pmdk)
        return std::make_unique<txn::PmdkUndoTx>(pool, 1);
    core::SpecTxConfig config;
    config.backgroundReclaim = false;
    config.reclaimThresholdBytes = 1u << 30;
    return std::make_unique<core::SpecTx>(pool, 1, config);
}

using Param = std::tuple<WorkloadKind, Scheme, long>;

class WorkloadCrashTest : public ::testing::TestWithParam<Param>
{
};

TEST_P(WorkloadCrashTest, StructuralInvariantSurvivesCrash)
{
    const auto [kind, scheme, crash_after] = GetParam();

    pmem::PmemDevice dev(192u << 20);
    pmem::PmemPool pool(dev);
    auto runtime = makeRuntime(scheme, pool);
    WorkloadConfig config;
    config.seed = 11;
    config.scale = 0.05;
    auto workload = makeWorkload(kind, config);
    workload->setup(*runtime);

    dev.armCrash(crash_after);
    bool crashed = false;
    try {
        workload->run(*runtime);
    } catch (const pmem::SimulatedCrash &) {
        crashed = true;
    }
    dev.armCrash(-1);

    // Power-cycle with a random subset of unfenced lines surviving.
    runtime.reset();
    dev.simulateCrash(pmem::CrashPolicy::random(
        static_cast<std::uint64_t>(crash_after) * 13 + 1, 0.5));
    pool.reopenAfterCrash();

    auto recovered = makeRuntime(scheme, pool);
    recovered->recover();

    EXPECT_TRUE(workload->verifyStructural(*recovered))
        << workloadKindName(kind)
        << (crashed ? " (crashed mid-run)" : " (ran to completion)");
}

std::string
paramName(const ::testing::TestParamInfo<Param> &info)
{
    std::string name = workloadKindName(std::get<0>(info.param));
    for (auto &c : name) {
        if (c == '-')
            c = '_';
    }
    name += std::get<1>(info.param) == Scheme::Pmdk ? "_pmdk" : "_spec";
    name += "_c" + std::to_string(std::get<2>(info.param));
    return name;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WorkloadCrashTest,
    ::testing::Combine(::testing::ValuesIn(allWorkloads()),
                       ::testing::Values(Scheme::Pmdk, Scheme::Spec),
                       ::testing::Values(500L, 5000L, 50000L)),
    paramName);

} // namespace
} // namespace specpmt::workloads
