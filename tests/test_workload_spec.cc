/**
 * @file
 * Tests for the shared workload-shape generator (kv/workload_spec):
 * determinism across generators, mix/distribution contracts, and the
 * tagged-value invariant every load path relies on for verification.
 */

#include <gtest/gtest.h>

#include <map>

#include "kv/workload_spec.hh"

namespace specpmt::kv
{
namespace
{

WorkloadSpec
smallSpec()
{
    WorkloadSpec spec;
    spec.keys = 1024;
    spec.mix = Mix::A;
    spec.dist = KeyDist::Zipfian;
    spec.multiPutFraction = 0.1;
    spec.multiPutBatch = 4;
    return spec;
}

TEST(WorkloadSpec, DeterministicForSeed)
{
    const auto spec = smallSpec();
    const ZipfianGenerator zipf(spec.keys, spec.zipfTheta);
    OpGenerator a(spec, &zipf, 42);
    OpGenerator b(spec, &zipf, 42);
    for (int i = 0; i < 5000; ++i) {
        const auto opA = a.next();
        const auto opB = b.next();
        ASSERT_EQ(opA.kind, opB.kind) << "op " << i;
        ASSERT_EQ(opA.key, opB.key);
        ASSERT_EQ(opA.value, opB.value);
        ASSERT_EQ(opA.batch.size(), opB.batch.size());
        for (std::size_t j = 0; j < opA.batch.size(); ++j) {
            ASSERT_EQ(opA.batch[j].first, opB.batch[j].first);
            ASSERT_EQ(opA.batch[j].second, opB.batch[j].second);
        }
    }

    // A different seed diverges.
    OpGenerator c(spec, &zipf, 43);
    int same = 0;
    OpGenerator a2(spec, &zipf, 42);
    for (int i = 0; i < 1000; ++i) {
        if (a2.next().key == c.next().key)
            ++same;
    }
    EXPECT_LT(same, 1000);
}

TEST(WorkloadSpec, MixContracts)
{
    auto spec = smallSpec();
    spec.multiPutFraction = 0;

    // Mix C is read-only.
    spec.mix = Mix::C;
    {
        const ZipfianGenerator zipf(spec.keys, spec.zipfTheta);
        OpGenerator gen(spec, &zipf, 7);
        for (int i = 0; i < 2000; ++i)
            ASSERT_EQ(gen.next().kind, WorkloadOp::Kind::Get);
    }

    // Mix A is ~50/50, mix B ~95/5.
    for (const auto [mix, expected] :
         {std::pair{Mix::A, 0.5}, std::pair{Mix::B, 0.05}}) {
        spec.mix = mix;
        const ZipfianGenerator zipf(spec.keys, spec.zipfTheta);
        OpGenerator gen(spec, &zipf, 7);
        int updates = 0;
        const int n = 20000;
        for (int i = 0; i < n; ++i) {
            if (gen.next().kind != WorkloadOp::Kind::Get)
                ++updates;
        }
        const double fraction = static_cast<double>(updates) / n;
        EXPECT_NEAR(fraction, expected, 0.02)
            << "mix " << mixName(mix);
        EXPECT_DOUBLE_EQ(mixUpdateFraction(mix), expected);
    }
}

TEST(WorkloadSpec, KeysInRangeAndValuesTagged)
{
    const auto spec = smallSpec();
    const ZipfianGenerator zipf(spec.keys, spec.zipfTheta);
    OpGenerator gen(spec, &zipf, 11);
    int multi = 0;
    for (int i = 0; i < 5000; ++i) {
        const auto op = gen.next();
        switch (op.kind) {
        case WorkloadOp::Kind::Get:
            EXPECT_GE(op.key, 1u);
            EXPECT_LE(op.key, spec.keys);
            break;
        case WorkloadOp::Kind::Put:
            EXPECT_GE(op.key, 1u);
            EXPECT_LE(op.key, spec.keys);
            EXPECT_TRUE(op.value.checkTag(op.key));
            break;
        case WorkloadOp::Kind::MultiPut:
            ++multi;
            ASSERT_EQ(op.batch.size(), spec.multiPutBatch);
            for (const auto &[key, value] : op.batch) {
                EXPECT_GE(key, 1u);
                EXPECT_LE(key, spec.keys);
                EXPECT_TRUE(value.checkTag(key));
            }
            break;
        }
    }
    EXPECT_GT(multi, 0);
}

TEST(WorkloadSpec, ZipfianSkewsAndUniformDoesNot)
{
    auto spec = smallSpec();
    spec.multiPutFraction = 0;
    spec.mix = Mix::C;

    auto hotShare = [&](KeyDist dist) {
        spec.dist = dist;
        const ZipfianGenerator zipf(spec.keys, spec.zipfTheta);
        OpGenerator gen(
            spec, dist == KeyDist::Zipfian ? &zipf : nullptr, 3);
        std::map<KvKey, int> counts;
        const int n = 20000;
        for (int i = 0; i < n; ++i)
            ++counts[gen.next().key];
        int hottest = 0;
        for (const auto &[key, count] : counts)
            hottest = std::max(hottest, count);
        return static_cast<double>(hottest) / n;
    };

    // theta=0.99 zipfian puts several percent of traffic on the
    // hottest key of a 1k keyspace; uniform stays near 1/1024.
    EXPECT_GT(hotShare(KeyDist::Zipfian), 0.02);
    EXPECT_LT(hotShare(KeyDist::Uniform), 0.01);
}

TEST(WorkloadSpec, WorkerSeedMatchesHistoricalDriverFormula)
{
    // kv/driver has always derived per-worker RNG seeds this way;
    // changing it would silently re-shape every seeded benchmark.
    EXPECT_EQ(OpGenerator::workerSeed(1, 0), 0x9E3779B9ull);
    EXPECT_EQ(OpGenerator::workerSeed(1, 3), 0x9E3779B9ull + 3);
    EXPECT_EQ(OpGenerator::workerSeed(7, 2),
              7ull * 0x9E3779B9ull + 2);
}

TEST(WorkloadSpec, RankToKeyScramblesAcrossTheKeyspace)
{
    // rankToKey is a mix64 scramble (YCSB-style), not a bijection:
    // adjacent popularity ranks must land on unrelated keys so hot
    // keys spread across shards, and the image must cover a healthy
    // share of the keyspace (≈ 1-1/e of it for a random map).
    const std::uint64_t keys = 4096;
    std::map<std::uint64_t, int> seen;
    std::uint64_t adjacent = 0;
    for (std::uint64_t rank = 0; rank < keys; ++rank) {
        const auto key = rankToKey(rank, keys);
        ASSERT_GE(key, 1u);
        ASSERT_LE(key, keys);
        ++seen[key];
        if (rank > 0 &&
            std::max(key, rankToKey(rank - 1, keys)) -
                    std::min(key, rankToKey(rank - 1, keys)) ==
                1)
            ++adjacent;
    }
    EXPECT_GT(seen.size(), keys / 2);
    EXPECT_LT(seen.size(), keys); // collisions expected: a scramble
    EXPECT_LT(adjacent, keys / 64); // no sequential structure
}

} // namespace
} // namespace specpmt::kv
