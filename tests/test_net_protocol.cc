/**
 * @file
 * Wire-protocol tests: frame round-trips through the incremental
 * decoder under every read split, and a seeded fuzz pass over
 * truncated / oversized / bit-flipped / garbage streams. The decoder
 * must never crash, never read outside the fed bytes (ASan/UBSan CI
 * enforces that), and for every input either produce a valid frame or
 * diagnose a clean protocol error and stay poisoned.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/rand.hh"
#include "net/protocol.hh"

namespace specpmt::net
{
namespace
{

std::vector<Frame>
decodeAll(const std::vector<std::uint8_t> &bytes,
          std::size_t chunk, bool &errored)
{
    FrameDecoder decoder;
    std::vector<Frame> frames;
    Frame frame;
    std::string error;
    errored = false;
    for (std::size_t off = 0; off < bytes.size(); off += chunk) {
        const std::size_t n = std::min(chunk, bytes.size() - off);
        decoder.feed(bytes.data() + off, n);
        for (;;) {
            const auto status = decoder.next(frame, error);
            if (status == FrameDecoder::Status::NeedMore)
                break;
            if (status == FrameDecoder::Status::Error) {
                errored = true;
                return frames;
            }
            frames.push_back(frame);
        }
    }
    return frames;
}

/** A buffer holding one of every frame type. */
std::vector<std::uint8_t>
sampleStream()
{
    std::vector<std::uint8_t> out;
    appendHello(out, 1, kAnyShard);
    appendHelloOk(out, 1, 8, 3);
    appendGet(out, 2, 42);
    appendPut(out, 3, 42, kv::KvValue::tagged(42, 7));
    appendDel(out, 4, 42);
    appendBatch(out, 5,
                {{1, kv::KvValue::tagged(1, 1)},
                 {2, kv::KvValue::tagged(2, 2)}});
    appendValue(out, 3, kv::KvValue::tagged(42, 7));
    appendOk(out, 5);
    appendNotFound(out, 2);
    appendErr(out, 6, ErrCode::MapFull, "shard 3 full");
    appendBusy(out, 7);
    return out;
}

TEST(NetProtocol, RoundTripEveryOpAtEverySplit)
{
    const auto bytes = sampleStream();
    // Decode the same stream at every chunk size, including 1 byte at
    // a time (worst-case split across reads): identical frames out.
    bool errored = false;
    const auto whole = decodeAll(bytes, bytes.size(), errored);
    ASSERT_FALSE(errored);
    ASSERT_EQ(whole.size(), 11u);

    for (std::size_t chunk = 1; chunk <= 13; ++chunk) {
        const auto split = decodeAll(bytes, chunk, errored);
        EXPECT_FALSE(errored) << "chunk " << chunk;
        ASSERT_EQ(split.size(), whole.size()) << "chunk " << chunk;
        for (std::size_t i = 0; i < whole.size(); ++i) {
            EXPECT_EQ(split[i].op, whole[i].op);
            EXPECT_EQ(split[i].id, whole[i].id);
            EXPECT_EQ(split[i].payload, whole[i].payload);
        }
    }

    // Typed parsers recover the original values.
    std::uint32_t desired = 0;
    EXPECT_TRUE(parseHello(whole[0], desired));
    EXPECT_EQ(desired, kAnyShard);
    kv::KvKey key = 0;
    kv::KvValue value;
    EXPECT_TRUE(parsePut(whole[3], key, value));
    EXPECT_EQ(key, 42u);
    EXPECT_TRUE(value.checkTag(42));
    std::vector<std::pair<kv::KvKey, kv::KvValue>> items;
    EXPECT_TRUE(parseBatch(whole[5], items));
    ASSERT_EQ(items.size(), 2u);
    EXPECT_TRUE(items[1].second.checkTag(2));
    ErrCode code{};
    std::string message;
    EXPECT_TRUE(parseErr(whole[9], code, message));
    EXPECT_EQ(code, ErrCode::MapFull);
    EXPECT_EQ(message, "shard 3 full");
    EXPECT_EQ(whole[10].op, Op::Busy);
    EXPECT_EQ(whole[10].id, 7u);
    EXPECT_TRUE(whole[10].payload.empty());
}

TEST(NetProtocol, TruncationIsNeedMoreNeverError)
{
    std::vector<std::uint8_t> bytes;
    appendPut(bytes, 9, 7, kv::KvValue::tagged(7, 1));
    // Every proper prefix decodes zero frames and reports NeedMore.
    for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
        FrameDecoder decoder;
        decoder.feed(bytes.data(), cut);
        Frame frame;
        std::string error;
        EXPECT_EQ(decoder.next(frame, error),
                  FrameDecoder::Status::NeedMore)
            << "prefix " << cut;
        EXPECT_FALSE(decoder.failed());
    }
}

TEST(NetProtocol, OversizedAndUndersizedLengthsFailClosed)
{
    for (const std::uint32_t length :
         {0u, 1u, 11u, // below the fixed header size
          static_cast<std::uint32_t>(kMaxFrameBytes) + 1,
          0xFFFFFFFFu}) {
        FrameDecoder decoder;
        std::uint8_t raw[4] = {
            static_cast<std::uint8_t>(length),
            static_cast<std::uint8_t>(length >> 8),
            static_cast<std::uint8_t>(length >> 16),
            static_cast<std::uint8_t>(length >> 24)};
        decoder.feed(raw, sizeof(raw));
        Frame frame;
        std::string error;
        EXPECT_EQ(decoder.next(frame, error),
                  FrameDecoder::Status::Error)
            << "length " << length;
        // A lying stream poisons the decoder permanently.
        decoder.feed(raw, sizeof(raw));
        EXPECT_EQ(decoder.next(frame, error),
                  FrameDecoder::Status::Error);
        EXPECT_TRUE(decoder.failed());
    }
}

TEST(NetProtocol, EverySingleBitFlipIsCaught)
{
    // CRC32C catches every single-bit corruption of a frame; whatever
    // the flipped bit breaks (magic, version, opcode, id, payload,
    // the CRC itself, or the length), the decoder must not emit the
    // corrupted frame as-is.
    std::vector<std::uint8_t> bytes;
    appendPut(bytes, 77, 123, kv::KvValue::tagged(123, 9));
    for (std::size_t bit = 0; bit < bytes.size() * 8; ++bit) {
        auto mutated = bytes;
        mutated[bit / 8] ^= static_cast<std::uint8_t>(1u
                                                      << (bit % 8));
        FrameDecoder decoder;
        decoder.feed(mutated.data(), mutated.size());
        Frame frame;
        std::string error;
        const auto status = decoder.next(frame, error);
        if (status == FrameDecoder::Status::Frame) {
            ADD_FAILURE() << "bit " << bit
                          << " flipped undetected";
        }
        // Length-field flips may leave the decoder waiting for more
        // bytes (NeedMore) — correct: the frame was never emitted.
    }
}

TEST(NetProtocol, FuzzRandomStreams)
{
    // Seeded fuzz: random garbage, random chunking. The decoder must
    // terminate without crashing; any frame it does emit must carry a
    // known opcode (i.e. it validated everything it claims to).
    Rng rng(0xF022);
    for (int round = 0; round < 2000; ++round) {
        const std::size_t size = 1 + rng.below(512);
        std::vector<std::uint8_t> bytes(size);
        for (auto &b : bytes)
            b = static_cast<std::uint8_t>(rng.next());
        const std::size_t chunk = 1 + rng.below(64);
        bool errored = false;
        const auto frames = decodeAll(bytes, chunk, errored);
        for (const auto &frame : frames)
            EXPECT_TRUE(
                isKnownOp(static_cast<std::uint8_t>(frame.op)));
    }
}

TEST(NetProtocol, FuzzMutatedValidStreams)
{
    // Start from a valid pipelined stream, apply random mutations
    // (flips, truncations, splices), decode at random splits. Frames
    // decoded before the first corruption must match the originals.
    Rng rng(0xF033);
    const auto pristine = sampleStream();
    bool errored = false;
    const auto expected =
        decodeAll(pristine, pristine.size(), errored);
    ASSERT_FALSE(errored);

    for (int round = 0; round < 2000; ++round) {
        auto bytes = pristine;
        const int mutations = 1 + static_cast<int>(rng.below(4));
        for (int m = 0; m < mutations; ++m) {
            switch (rng.below(3)) {
            case 0: { // bit flip
                const std::size_t bit = rng.below(bytes.size() * 8);
                bytes[bit / 8] ^=
                    static_cast<std::uint8_t>(1u << (bit % 8));
                break;
            }
            case 1: // truncate
                bytes.resize(1 + rng.below(bytes.size()));
                break;
            default: { // splice random bytes into the middle
                const std::size_t at = rng.below(bytes.size());
                const std::size_t n = 1 + rng.below(16);
                std::vector<std::uint8_t> junk(n);
                for (auto &b : junk)
                    b = static_cast<std::uint8_t>(rng.next());
                bytes.insert(bytes.begin() +
                                 static_cast<std::ptrdiff_t>(at),
                             junk.begin(), junk.end());
                break;
            }
            }
        }
        const std::size_t chunk = 1 + rng.below(96);
        const auto frames = decodeAll(bytes, chunk, errored);
        // Whatever survived must be a prefix-correct decode: each
        // frame matches the original stream until the first point of
        // divergence (after which CRC kills the stream).
        for (std::size_t i = 0;
             i < frames.size() && i < expected.size(); ++i) {
            if (frames[i].op != expected[i].op ||
                frames[i].id != expected[i].id ||
                frames[i].payload != expected[i].payload)
                break; // divergence is allowed only via valid frames
            EXPECT_TRUE(isKnownOp(
                static_cast<std::uint8_t>(frames[i].op)));
        }
    }
}

TEST(NetProtocol, TraceExtRoundTripsAtEverySplit)
{
    // A mixed stream: sampled-traced GET, strict+traced PUT, traced
    // but unsampled BATCH, and a plain untraced GET. The extension
    // must survive every read split and stay invisible to the typed
    // parsers (stripped before the payload-shape contract applies).
    const TraceExt sampled{0xDEADBEEFCAFEBABEull, true};
    const TraceExt unsampled{7, false};
    std::vector<std::uint8_t> bytes;
    appendGet(bytes, 2, 42, &sampled);
    appendPut(bytes, 3, 42, kv::KvValue::tagged(42, 7), kFlagStrict,
              &sampled);
    appendBatch(bytes, 5, {{1, kv::KvValue::tagged(1, 1)}}, 0,
                &unsampled);
    appendGet(bytes, 6, 43);

    for (std::size_t chunk = 1; chunk <= bytes.size(); ++chunk) {
        bool errored = false;
        const auto frames = decodeAll(bytes, chunk, errored);
        ASSERT_FALSE(errored) << "chunk " << chunk;
        ASSERT_EQ(frames.size(), 4u) << "chunk " << chunk;

        EXPECT_EQ(frames[0].ext.traceId, sampled.traceId);
        EXPECT_TRUE(frames[0].ext.sampled);
        EXPECT_NE(frames[0].flags & kFlagTraced, 0);
        kv::KvKey key = 0;
        EXPECT_TRUE(parseKey(frames[0], key));
        EXPECT_EQ(key, 42u);

        EXPECT_EQ(frames[1].ext.traceId, sampled.traceId);
        EXPECT_TRUE(frames[1].ext.sampled);
        EXPECT_NE(frames[1].flags & kFlagStrict, 0);
        kv::KvValue value;
        EXPECT_TRUE(parsePut(frames[1], key, value));
        EXPECT_TRUE(value.checkTag(42));

        EXPECT_EQ(frames[2].ext.traceId, unsampled.traceId);
        EXPECT_FALSE(frames[2].ext.sampled);
        std::vector<std::pair<kv::KvKey, kv::KvValue>> items;
        EXPECT_TRUE(parseBatch(frames[2], items));
        ASSERT_EQ(items.size(), 1u);

        EXPECT_EQ(frames[3].ext.traceId, 0u);
        EXPECT_FALSE(frames[3].ext.sampled);
        EXPECT_EQ(frames[3].flags & kFlagTraced, 0);
    }
}

TEST(NetProtocol, UntracedFramesStayByteIdentical)
{
    // A null/zero extension must not change the encoding at all —
    // the old-client interop guarantee is byte-level.
    std::vector<std::uint8_t> plain, with_null, with_zero;
    appendGet(plain, 2, 42);
    appendGet(with_null, 2, 42, nullptr);
    const TraceExt zero{}; // traceId 0 = untraced
    appendGet(with_zero, 2, 42, &zero);
    EXPECT_EQ(plain, with_null);
    EXPECT_EQ(plain, with_zero);
}

TEST(NetProtocol, TracedFrameEveryBitFlipIsCaught)
{
    // The extension is CRC-covered like any other payload byte: no
    // single-bit flip anywhere in a traced frame (including inside
    // the trace id and ext-flags bytes) may emit a frame.
    const TraceExt ext{0x1122334455667788ull, true};
    std::vector<std::uint8_t> bytes;
    appendPut(bytes, 77, 123, kv::KvValue::tagged(123, 9),
              kFlagStrict, &ext);
    for (std::size_t bit = 0; bit < bytes.size() * 8; ++bit) {
        auto mutated = bytes;
        mutated[bit / 8] ^= static_cast<std::uint8_t>(1u
                                                      << (bit % 8));
        FrameDecoder decoder;
        decoder.feed(mutated.data(), mutated.size());
        Frame frame;
        std::string error;
        if (decoder.next(frame, error) ==
            FrameDecoder::Status::Frame) {
            ADD_FAILURE() << "bit " << bit
                          << " flipped undetected";
        }
    }
}

TEST(NetProtocol, TracedFrameShorterThanExtensionFailsClosed)
{
    // kFlagTraced claims the last kTraceExtBytes payload bytes; a
    // frame whose payload cannot hold them (here: a GET's 8-byte key,
    // and an empty payload) is a protocol error, not a guess.
    for (const bool with_payload : {true, false}) {
        std::vector<std::uint8_t> bytes;
        const std::uint64_t key = 42;
        appendFrame(bytes, Op::Get, 9, with_payload ? &key : nullptr,
                    with_payload ? sizeof(key) : 0, kFlagTraced);
        FrameDecoder decoder;
        decoder.feed(bytes.data(), bytes.size());
        Frame frame;
        std::string error;
        EXPECT_EQ(decoder.next(frame, error),
                  FrameDecoder::Status::Error);
        EXPECT_TRUE(decoder.failed());
        EXPECT_NE(error.find("trace extension"), std::string::npos);
    }
}

TEST(NetProtocol, BusyInterleavesWithTracedPipelines)
{
    // The overload-shed exchange as a resilient client sees it: a
    // traced strict PUT answered Busy, then the backed-off retry of
    // the same request answered Ok. The Busy response is a bare
    // header-only frame (empty payload, no flags, no extension) and
    // must round-trip at every read split without disturbing the
    // traced request frames around it.
    const TraceExt ext{0xAB54A98CEB1F0AD2ull, true};
    std::vector<std::uint8_t> bytes;
    appendPut(bytes, 31, 7, kv::KvValue::tagged(7, 1), kFlagStrict,
              &ext);
    appendBusy(bytes, 31);
    appendPut(bytes, 32, 7, kv::KvValue::tagged(7, 1), kFlagStrict,
              &ext);
    appendOk(bytes, 32);

    for (std::size_t chunk = 1; chunk <= bytes.size(); ++chunk) {
        bool errored = false;
        const auto frames = decodeAll(bytes, chunk, errored);
        ASSERT_FALSE(errored) << "chunk " << chunk;
        ASSERT_EQ(frames.size(), 4u) << "chunk " << chunk;

        EXPECT_EQ(frames[1].op, Op::Busy);
        EXPECT_EQ(frames[1].id, 31u);
        EXPECT_TRUE(frames[1].payload.empty());
        EXPECT_EQ(frames[1].flags, 0);
        EXPECT_EQ(frames[1].ext.traceId, 0u);

        // The retry carries the extension and the strict flag intact;
        // the shed in between must not have eaten either.
        EXPECT_EQ(frames[2].ext.traceId, ext.traceId);
        EXPECT_TRUE(frames[2].ext.sampled);
        EXPECT_NE(frames[2].flags & kFlagStrict, 0);
        kv::KvKey key = 0;
        kv::KvValue value;
        EXPECT_TRUE(parsePut(frames[2], key, value));
        EXPECT_EQ(key, 7u);

        EXPECT_EQ(frames[3].op, Op::Ok);
        EXPECT_EQ(frames[3].id, 32u);
    }

    // A Busy frame claiming a trace extension it cannot hold (empty
    // payload + kFlagTraced) is a protocol error — the server never
    // sends one, so a decoder seeing it must fail closed.
    std::vector<std::uint8_t> lying;
    appendFrame(lying, Op::Busy, 31, nullptr, 0, kFlagTraced);
    FrameDecoder decoder;
    decoder.feed(lying.data(), lying.size());
    Frame frame;
    std::string error;
    EXPECT_EQ(decoder.next(frame, error),
              FrameDecoder::Status::Error);
    EXPECT_FALSE(decoder.oversized());
}

TEST(NetProtocol, TightenedFrameCapFailsClosedAsOversize)
{
    // A server tightens the per-frame cap below kMaxFrameBytes; a
    // frame legal under the protocol-wide limit but above the cap is
    // a protocol error flagged oversized() — the bit servers use to
    // count evicted{reason="oversize"} apart from garbage bytes.
    std::vector<std::uint8_t> small;
    appendGet(small, 1, 42);
    std::vector<std::pair<kv::KvKey, kv::KvValue>> items;
    for (kv::KvKey k = 0; k < 64; ++k)
        items.emplace_back(k, kv::KvValue::tagged(k, 1));
    std::vector<std::uint8_t> big;
    appendBatch(big, 2, items);
    ASSERT_LT(big.size(), kMaxFrameBytes);

    FrameDecoder decoder;
    decoder.setMaxFrameBytes(1024);
    decoder.feed(small.data(), small.size());
    Frame frame;
    std::string error;
    ASSERT_EQ(decoder.next(frame, error),
              FrameDecoder::Status::Frame)
        << "under-cap frame must still decode";
    decoder.feed(big.data(), big.size());
    EXPECT_EQ(decoder.next(frame, error),
              FrameDecoder::Status::Error);
    EXPECT_TRUE(decoder.failed());
    EXPECT_TRUE(decoder.oversized());
    EXPECT_NE(error.find("cap"), std::string::npos);

    // A plausible-length frame with a wrong magic byte is a protocol
    // error but NOT an oversize: the two eviction reasons must stay
    // distinguishable.
    FrameDecoder garbage_decoder;
    garbage_decoder.setMaxFrameBytes(1024);
    std::vector<std::uint8_t> bad_magic;
    appendGet(bad_magic, 3, 42);
    bad_magic[4] ^= 0xFF; // the magic byte follows the length field
    garbage_decoder.feed(bad_magic.data(), bad_magic.size());
    EXPECT_EQ(garbage_decoder.next(frame, error),
              FrameDecoder::Status::Error);
    EXPECT_FALSE(garbage_decoder.oversized());

    // The cap clamps: absurd values can neither widen the decoder
    // past the protocol limit nor shrink it below a header-only
    // frame, so Busy/Ok responses always fit.
    FrameDecoder clamped;
    clamped.setMaxFrameBytes(0);
    std::vector<std::uint8_t> busy;
    appendBusy(busy, 9);
    clamped.feed(busy.data(), busy.size());
    EXPECT_EQ(clamped.next(frame, error),
              FrameDecoder::Status::Frame);
    EXPECT_EQ(frame.op, Op::Busy);

    FrameDecoder widened;
    widened.setMaxFrameBytes(static_cast<std::size_t>(-1));
    std::uint8_t huge_len[4] = {0xFF, 0xFF, 0xFF, 0xFF};
    widened.feed(huge_len, sizeof(huge_len));
    EXPECT_EQ(widened.next(frame, error),
              FrameDecoder::Status::Error);
    EXPECT_TRUE(widened.oversized());
}

TEST(NetProtocol, FuzzCappedDecoderNeverEmitsOverCap)
{
    // Seeded fuzz against a cap-tightened decoder: random streams
    // (garbage, and valid streams with oversized batches spliced in)
    // must never crash, and no emitted frame's payload may imply a
    // wire size above the cap.
    Rng rng(0xF044);
    for (int round = 0; round < 1000; ++round) {
        const std::size_t cap = 32 + rng.below(2048);
        FrameDecoder decoder;
        decoder.setMaxFrameBytes(cap);

        std::vector<std::uint8_t> bytes;
        for (int part = 0; part < 4; ++part) {
            switch (rng.below(3)) {
            case 0: { // valid small frame
                appendGet(bytes, rng.next(),
                          static_cast<kv::KvKey>(rng.next()));
                break;
            }
            case 1: { // valid batch, possibly over the cap
                std::vector<std::pair<kv::KvKey, kv::KvValue>> items;
                const std::size_t n = 1 + rng.below(40);
                for (std::size_t i = 0; i < n; ++i)
                    items.emplace_back(
                        static_cast<kv::KvKey>(i),
                        kv::KvValue::tagged(static_cast<kv::KvKey>(i),
                                            1));
                appendBatch(bytes, rng.next(), items);
                break;
            }
            default: { // garbage
                const std::size_t n = 1 + rng.below(64);
                for (std::size_t i = 0; i < n; ++i)
                    bytes.push_back(
                        static_cast<std::uint8_t>(rng.next()));
                break;
            }
            }
        }

        const std::size_t chunk = 1 + rng.below(96);
        Frame frame;
        std::string error;
        for (std::size_t off = 0; off < bytes.size(); off += chunk) {
            const std::size_t n =
                std::min(chunk, bytes.size() - off);
            decoder.feed(bytes.data() + off, n);
            for (;;) {
                const auto status = decoder.next(frame, error);
                if (status != FrameDecoder::Status::Frame)
                    break;
                EXPECT_LE(frameSize(frame.payload.size() +
                                    (frame.ext.traceId != 0
                                         ? kTraceExtBytes
                                         : 0)),
                          4 + cap)
                    << "emitted frame larger than the cap";
            }
        }
    }
}

TEST(NetProtocol, ParsersRejectWrongShapes)
{
    std::vector<std::uint8_t> bytes;
    appendGet(bytes, 2, 42);
    FrameDecoder decoder;
    decoder.feed(bytes.data(), bytes.size());
    Frame frame;
    std::string error;
    ASSERT_EQ(decoder.next(frame, error),
              FrameDecoder::Status::Frame);

    // Wrong opcode for the parser.
    std::uint32_t desired = 0;
    EXPECT_FALSE(parseHello(frame, desired));
    kv::KvKey key = 0;
    kv::KvValue value;
    EXPECT_FALSE(parsePut(frame, key, value));

    // Trailing bytes fail the exact-shape contract.
    Frame fat = frame;
    fat.payload.push_back(0);
    EXPECT_FALSE(parseKey(fat, key));

    // A batch whose count field lies about the payload size fails.
    std::vector<std::uint8_t> batch_bytes;
    appendBatch(batch_bytes, 9, {{1, kv::KvValue::tagged(1, 1)}});
    FrameDecoder batch_decoder;
    batch_decoder.feed(batch_bytes.data(), batch_bytes.size());
    ASSERT_EQ(batch_decoder.next(frame, error),
              FrameDecoder::Status::Frame);
    std::vector<std::pair<kv::KvKey, kv::KvValue>> items;
    ASSERT_TRUE(parseBatch(frame, items));
    frame.payload[0] = 2; // claim two entries, carry one
    EXPECT_FALSE(parseBatch(frame, items));
}

} // namespace
} // namespace specpmt::net
