/**
 * @file
 * Unit tests for the fixed-bucket log-linear latency histogram:
 * bucket geometry, percentile accuracy on known distributions, and
 * merging of per-thread histograms.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rand.hh"
#include "common/stats.hh"

namespace specpmt
{
namespace
{

TEST(LatencyHistogram, SmallValuesGetExactBuckets)
{
    // Values below kSubBuckets are their own bucket.
    for (std::uint64_t v = 0; v < LatencyHistogram::kSubBuckets; ++v) {
        EXPECT_EQ(LatencyHistogram::bucketIndex(v), v);
        EXPECT_EQ(LatencyHistogram::bucketLowerBound(
                      static_cast<unsigned>(v)),
                  v);
        EXPECT_EQ(LatencyHistogram::bucketUpperBound(
                      static_cast<unsigned>(v)),
                  v);
    }
}

TEST(LatencyHistogram, BucketBoundsBracketTheirValues)
{
    // Sweep representative values across the whole 64-bit range: every
    // value must fall inside its bucket's [lower, upper] bounds, and
    // bucket indices must be monotone in the value.
    std::vector<std::uint64_t> values;
    for (unsigned bit = 0; bit < 64; ++bit) {
        for (std::uint64_t delta : {0ull, 1ull, 3ull})
            values.push_back((1ull << bit) + delta);
    }
    std::sort(values.begin(), values.end());
    unsigned last_index = 0;
    for (const std::uint64_t v : values) {
        const unsigned index = LatencyHistogram::bucketIndex(v);
        ASSERT_LT(index, LatencyHistogram::kBuckets);
        EXPECT_LE(LatencyHistogram::bucketLowerBound(index), v);
        EXPECT_GE(LatencyHistogram::bucketUpperBound(index), v);
        EXPECT_GE(index, last_index) << "value " << v;
        last_index = index;
    }
    // Spot-check the log-linear layout: octave [8, 16) splits into 8
    // sub-buckets of width 1; octave [16, 32) into 8 of width 2.
    EXPECT_EQ(LatencyHistogram::bucketIndex(8), 8u);
    EXPECT_EQ(LatencyHistogram::bucketIndex(15), 15u);
    EXPECT_EQ(LatencyHistogram::bucketIndex(16),
              LatencyHistogram::bucketIndex(17));
    EXPECT_NE(LatencyHistogram::bucketIndex(17),
              LatencyHistogram::bucketIndex(18));
}

TEST(LatencyHistogram, QuantizationErrorIsBounded)
{
    // The log-linear layout bounds relative bucket width by
    // 1/kSubBuckets of the value.
    for (std::uint64_t v : {100ull, 999ull, 12345ull, 1048576ull,
                            0xDEADBEEFull}) {
        const unsigned index = LatencyHistogram::bucketIndex(v);
        const auto width = LatencyHistogram::bucketUpperBound(index) -
                           LatencyHistogram::bucketLowerBound(index) +
                           1;
        EXPECT_LE(width,
                  v / LatencyHistogram::kSubBuckets + 1)
            << "value " << v;
    }
}

TEST(LatencyHistogram, PercentilesOnKnownDistribution)
{
    // Record 1..1000 once each: p50 ≈ 500, p95 ≈ 950, p99 ≈ 990, all
    // within the 12.5% quantization bound; extremes are exact.
    LatencyHistogram histogram;
    for (std::uint64_t v = 1; v <= 1000; ++v)
        histogram.record(v);
    EXPECT_EQ(histogram.count(), 1000u);
    EXPECT_EQ(histogram.max(), 1000u);
    EXPECT_EQ(histogram.sum(), 500500u);
    EXPECT_DOUBLE_EQ(histogram.mean(), 500.5);

    EXPECT_EQ(histogram.percentile(0), 1u);
    EXPECT_EQ(histogram.percentile(100), 1000u);
    EXPECT_NEAR(static_cast<double>(histogram.percentile(50)), 500.0,
                500.0 / 8 + 1);
    EXPECT_NEAR(static_cast<double>(histogram.percentile(95)), 950.0,
                950.0 / 8 + 1);
    EXPECT_NEAR(static_cast<double>(histogram.percentile(99)), 990.0,
                990.0 / 8 + 1);
    // Percentiles never exceed the recorded maximum.
    EXPECT_LE(histogram.percentile(99.9), 1000u);
}

TEST(LatencyHistogram, PercentileOfConstantStream)
{
    LatencyHistogram histogram;
    for (int i = 0; i < 100; ++i)
        histogram.record(777);
    const unsigned index = LatencyHistogram::bucketIndex(777);
    for (double p : {0.0, 50.0, 99.0, 99.9, 100.0}) {
        EXPECT_GE(histogram.percentile(p),
                  LatencyHistogram::bucketLowerBound(index));
        EXPECT_LE(histogram.percentile(p), 777u);
    }
}

TEST(LatencyHistogram, EmptyHistogramReadsZero)
{
    LatencyHistogram histogram;
    EXPECT_EQ(histogram.count(), 0u);
    EXPECT_EQ(histogram.max(), 0u);
    EXPECT_EQ(histogram.percentile(99), 0u);
    EXPECT_DOUBLE_EQ(histogram.mean(), 0.0);
}

TEST(LatencyHistogram, MergeEqualsCombinedRecording)
{
    // Per-thread histograms merged must be bucket-identical to one
    // histogram that saw every sample — the driver relies on this.
    Rng rng(7);
    LatencyHistogram parts[4];
    LatencyHistogram whole;
    for (unsigned t = 0; t < 4; ++t) {
        for (int i = 0; i < 5000; ++i) {
            // Heavy-tailed synthetic latencies.
            const std::uint64_t v = 50 + (rng.next() % (1u << (8 + t)));
            parts[t].record(v);
            whole.record(v);
        }
    }
    LatencyHistogram merged;
    for (const auto &part : parts)
        merged.merge(part);
    EXPECT_EQ(merged.count(), whole.count());
    EXPECT_EQ(merged.sum(), whole.sum());
    EXPECT_EQ(merged.max(), whole.max());
    EXPECT_EQ(merged.buckets(), whole.buckets());
    for (double p : {50.0, 95.0, 99.0, 99.9})
        EXPECT_EQ(merged.percentile(p), whole.percentile(p));
}

TEST(LatencyHistogram, ClearResets)
{
    LatencyHistogram histogram;
    histogram.record(123);
    histogram.clear();
    EXPECT_EQ(histogram.count(), 0u);
    EXPECT_EQ(histogram.percentile(50), 0u);
}

} // namespace
} // namespace specpmt
