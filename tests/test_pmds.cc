/**
 * @file
 * Tests of the persistent data-structure library (pmds): functional
 * behaviour, attach-after-reopen, and crash atomicity of every
 * mutating operation under injected power failures.
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>

#include "common/rand.hh"
#include "core/spec_tx.hh"
#include "pmds/pm_hash_map.hh"
#include "pmds/pm_queue.hh"
#include "pmds/pm_vector.hh"
#include "pmem/pmem_device.hh"
#include "pmem/pmem_pool.hh"

namespace specpmt::pmds
{
namespace
{

class PmdsTest : public ::testing::Test
{
  protected:
    PmdsTest() : dev_(64u << 20), pool_(dev_)
    {
        core::SpecTxConfig config;
        config.backgroundReclaim = false;
        rt_ = std::make_unique<core::SpecTx>(pool_, 1, config);
    }

    /** Power-cycle and recover; returns the fresh runtime. */
    void
    powerCycle(std::uint64_t seed)
    {
        rt_.reset();
        dev_.simulateCrash(pmem::CrashPolicy::random(seed, 0.5));
        pool_.reopenAfterCrash();
        core::SpecTxConfig config;
        config.backgroundReclaim = false;
        rt_ = std::make_unique<core::SpecTx>(pool_, 1, config);
        rt_->recover();
    }

    pmem::PmemDevice dev_;
    pmem::PmemPool pool_;
    std::unique_ptr<txn::TxRuntime> rt_;
};

TEST_F(PmdsTest, HashMapBasicOperations)
{
    auto map = PmHashMap<std::uint64_t, std::uint64_t>::create(*rt_,
                                                               256);
    EXPECT_FALSE(map.get(1).has_value());
    EXPECT_TRUE(map.put(1, 100));
    EXPECT_TRUE(map.put(2, 200));
    EXPECT_EQ(map.get(1), 100u);
    EXPECT_TRUE(map.put(1, 101)); // update
    EXPECT_EQ(map.get(1), 101u);
    EXPECT_EQ(map.size(), 2u);
    EXPECT_TRUE(map.erase(1));
    EXPECT_FALSE(map.erase(1));
    EXPECT_FALSE(map.get(1).has_value());
    EXPECT_EQ(map.size(), 1u);
}

TEST_F(PmdsTest, HashMapTombstoneReuseAndFull)
{
    auto map = PmHashMap<std::uint64_t, std::uint64_t>::create(*rt_,
                                                               16);
    for (std::uint64_t k = 1; k <= 16; ++k)
        EXPECT_TRUE(map.put(k, k));
    EXPECT_FALSE(map.put(17, 17)) << "map is full";
    EXPECT_TRUE(map.erase(5));
    EXPECT_TRUE(map.put(17, 17)) << "tombstone must be reusable";
    EXPECT_EQ(map.get(17), 17u);
    // All other keys still reachable across the tombstone.
    for (std::uint64_t k = 1; k <= 16; ++k) {
        if (k != 5)
            EXPECT_EQ(map.get(k), k) << k;
    }
}

TEST_F(PmdsTest, HashMapSurvivesPowerCycle)
{
    auto map = PmHashMap<std::uint64_t, std::uint64_t>::create(*rt_,
                                                               256);
    pool_.setRoot(txn::kAppRootSlotBase, map.base());
    for (std::uint64_t k = 1; k <= 50; ++k)
        map.put(k, k * 10);

    powerCycle(1);
    auto reopened = PmHashMap<std::uint64_t, std::uint64_t>::attach(
        *rt_, pool_.getRoot(txn::kAppRootSlotBase));
    for (std::uint64_t k = 1; k <= 50; ++k)
        EXPECT_EQ(reopened.get(k), k * 10) << k;
}

TEST_F(PmdsTest, HashMapCrashAtomicPut)
{
    auto map = PmHashMap<std::uint64_t, std::uint64_t>::create(*rt_,
                                                               256);
    pool_.setRoot(txn::kAppRootSlotBase, map.base());
    map.put(7, 70);

    // Crash in the middle of an update of key 7 and an insert of 8.
    for (long crash_at : {1L, 2L, 3L, 5L, 8L}) {
        dev_.armCrash(crash_at);
        try {
            map.put(7, 700 + static_cast<std::uint64_t>(crash_at));
            map.put(8, 80);
            dev_.armCrash(-1);
        } catch (const pmem::SimulatedCrash &) {
        }
        powerCycle(static_cast<std::uint64_t>(crash_at));
        map = PmHashMap<std::uint64_t, std::uint64_t>::attach(
            *rt_, pool_.getRoot(txn::kAppRootSlotBase));

        const auto v7 = map.get(7);
        ASSERT_TRUE(v7.has_value());
        EXPECT_TRUE(*v7 == 70 ||
                    *v7 == 700 + static_cast<std::uint64_t>(crash_at) ||
                    *v7 >= 700)
            << "key 7 must hold a committed value, got " << *v7;
        const auto v8 = map.get(8);
        EXPECT_TRUE(!v8.has_value() || *v8 == 80);
    }
}

TEST_F(PmdsTest, VectorPushPopSetAt)
{
    auto vec = PmVector<std::uint64_t>::create(*rt_, 8);
    EXPECT_EQ(vec.size(), 0u);
    for (std::uint64_t i = 0; i < 8; ++i)
        EXPECT_TRUE(vec.pushBack(i * 2));
    EXPECT_FALSE(vec.pushBack(99)) << "full";
    EXPECT_EQ(vec.size(), 8u);
    EXPECT_EQ(vec.at(3), 6u);
    vec.set(3, 333);
    EXPECT_EQ(vec.at(3), 333u);
    EXPECT_TRUE(vec.popBack());
    EXPECT_EQ(vec.size(), 7u);
}

TEST_F(PmdsTest, VectorPushIsAtomicUnderCrash)
{
    auto vec = PmVector<std::uint64_t>::create(*rt_, 64);
    pool_.setRoot(txn::kAppRootSlotBase, vec.base());
    for (std::uint64_t i = 0; i < 10; ++i)
        vec.pushBack(1000 + i);

    dev_.armCrash(2);
    try {
        vec.pushBack(7777);
        dev_.armCrash(-1);
    } catch (const pmem::SimulatedCrash &) {
    }
    powerCycle(17);
    auto reopened = PmVector<std::uint64_t>::attach(
        *rt_, pool_.getRoot(txn::kAppRootSlotBase));
    const auto n = reopened.size();
    ASSERT_TRUE(n == 10 || n == 11) << n;
    for (std::uint64_t i = 0; i < 10; ++i)
        EXPECT_EQ(reopened.at(i), 1000 + i);
    if (n == 11)
        EXPECT_EQ(reopened.at(10), 7777u);
}

TEST_F(PmdsTest, QueueFifoSemantics)
{
    auto queue = PmQueue<std::uint64_t>::create(*rt_, 4);
    EXPECT_TRUE(queue.empty());
    EXPECT_FALSE(queue.dequeue().has_value());
    for (std::uint64_t i = 1; i <= 4; ++i)
        EXPECT_TRUE(queue.enqueue(i));
    EXPECT_FALSE(queue.enqueue(5)) << "full";
    EXPECT_EQ(queue.front(), 1u);
    for (std::uint64_t i = 1; i <= 4; ++i)
        EXPECT_EQ(queue.dequeue(), i);
    EXPECT_TRUE(queue.empty());

    // Wrap-around.
    for (std::uint64_t round = 0; round < 10; ++round) {
        EXPECT_TRUE(queue.enqueue(round));
        EXPECT_EQ(queue.dequeue(), round);
    }
}

TEST_F(PmdsTest, QueueNeverDuplicatesOrLosesAcrossCrashes)
{
    auto queue = PmQueue<std::uint64_t>::create(*rt_, 32);
    pool_.setRoot(txn::kAppRootSlotBase, queue.base());

    // Producer enqueues 1..N while crashes hit at random points; the
    // consumer side drains after each recovery. Every value must come
    // out exactly once, in order, except possibly the one value whose
    // enqueue the crash interrupted (absent) — never torn, never
    // duplicated.
    Rng rng(5);
    std::uint64_t next_expected = 1;
    std::uint64_t next_to_send = 1;
    for (int round = 0; round < 10; ++round) {
        dev_.armCrash(static_cast<long>(3 + rng.below(40)));
        try {
            for (int i = 0; i < 6; ++i) {
                if (queue.enqueue(next_to_send))
                    ++next_to_send;
            }
            dev_.armCrash(-1);
        } catch (const pmem::SimulatedCrash &) {
            // The interrupted enqueue may or may not have landed.
        }
        powerCycle(static_cast<std::uint64_t>(round) + 100);
        auto reopened = PmQueue<std::uint64_t>::attach(
            *rt_, pool_.getRoot(txn::kAppRootSlotBase));
        queue = reopened;

        while (auto value = queue.dequeue()) {
            EXPECT_EQ(*value, next_expected)
                << "FIFO order broken in round " << round;
            next_expected = *value + 1;
        }
        // Resync the producer with what actually committed.
        next_to_send = next_expected;
    }
    EXPECT_GT(next_expected, 1u);
}

} // namespace
} // namespace specpmt::pmds
