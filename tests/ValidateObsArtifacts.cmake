# Runs bench_kv_ycsb with --metrics-out/--trace-out and validates the
# artifacts: both must pass `specstat check`, the metrics exposition
# must carry the core tx/fence/reclaim/recovery series, and the trace
# must hold at least one span of every category. Invoked by ctest as
#   cmake -DBENCH_KV=... -DSPECSTAT=... -DWORK_DIR=... -P this-file

foreach(var BENCH_KV SPECSTAT WORK_DIR)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "missing -D${var}=")
    endif()
endforeach()

file(MAKE_DIRECTORY "${WORK_DIR}")
set(metrics "${WORK_DIR}/metrics.prom")
set(trace "${WORK_DIR}/trace.json")

execute_process(
    COMMAND "${BENCH_KV}" --runtimes=spec --mixes=A --threads=2
            --shards=2 --keys=2048 --ops=400
            "--metrics-out=${metrics}" "--trace-out=${trace}"
    RESULT_VARIABLE bench_status
    OUTPUT_VARIABLE bench_output
    ERROR_VARIABLE bench_output)
if(NOT bench_status EQUAL 0)
    message(FATAL_ERROR
            "bench_kv_ycsb failed (${bench_status}):\n${bench_output}")
endif()

foreach(artifact "${metrics}" "${trace}")
    if(NOT EXISTS "${artifact}")
        message(FATAL_ERROR "artifact not written: ${artifact}")
    endif()
endforeach()

# Both artifacts must parse (Prometheus text / trace JSON).
execute_process(
    COMMAND "${SPECSTAT}" check "${metrics}" "${trace}"
    RESULT_VARIABLE check_status
    OUTPUT_VARIABLE check_output
    ERROR_VARIABLE check_output)
if(NOT check_status EQUAL 0)
    message(FATAL_ERROR
            "specstat check failed (${check_status}):\n${check_output}")
endif()

# The registry dump must carry the core series of every layer.
file(READ "${metrics}" metrics_text)
foreach(series
        specpmt_spec_tx_commits_total
        specpmt_pmem_fences_total
        specpmt_pmem_stores_total
        specpmt_reclaim_cycles_total
        specpmt_recoveries_total
        specpmt_kv_puts_total
        specpmt_sim_ns_total
        specpmt_kv_read_latency_ns_count)
    string(FIND "${metrics_text}" "${series}" found)
    if(found EQUAL -1)
        message(FATAL_ERROR
                "metrics exposition is missing ${series}")
    endif()
endforeach()

# The trace must witness at least one span per category.
file(READ "${trace}" trace_text)
foreach(category tx flush reclaim recovery)
    string(FIND "${trace_text}" "\"cat\": \"${category}\"" found)
    if(found EQUAL -1)
        message(FATAL_ERROR
                "trace has no span in category '${category}'")
    endif()
endforeach()

# `specstat diff` of an exposition against itself reports no deltas
# and exits 0 (the CI diff step relies on both properties).
execute_process(
    COMMAND "${SPECSTAT}" diff "${metrics}" "${metrics}"
    RESULT_VARIABLE diff_status
    OUTPUT_VARIABLE diff_output
    ERROR_VARIABLE diff_output)
if(NOT diff_status EQUAL 0)
    message(FATAL_ERROR
            "specstat diff failed (${diff_status}):\n${diff_output}")
endif()
string(FIND "${diff_output}" "# 0 samples differ" no_deltas)
if(no_deltas EQUAL -1)
    message(FATAL_ERROR
            "self-diff reported deltas:\n${diff_output}")
endif()

message(STATUS "observability artifacts validated")
