/**
 * @file
 * Tests for the trace recorder (the workload -> hardware-simulator
 * bridge) and the hash-table-log strawman runtime.
 */

#include <gtest/gtest.h>

#include "core/hash_log_tx.hh"
#include "pmem/pmem_device.hh"
#include "pmem/pmem_pool.hh"
#include "txn/trace_recorder.hh"

namespace specpmt::txn
{
namespace
{

class TraceRecorderTest : public ::testing::Test
{
  protected:
    TraceRecorderTest() : dev_(8u << 20), pool_(dev_), rec_(pool_, 1) {}

    pmem::PmemDevice dev_;
    pmem::PmemPool pool_;
    TraceRecorder rec_;
};

TEST_F(TraceRecorderTest, SetupPhaseIsNotRecorded)
{
    const PmOff off = pool_.alloc(64);
    rec_.txBegin(0);
    rec_.txStoreT<std::uint64_t>(0, off, 1);
    rec_.txCommit(0);
    EXPECT_TRUE(rec_.trace().ops.empty());
    EXPECT_EQ(rec_.trace().numTx, 0u);
    // But the store was applied.
    EXPECT_EQ(dev_.loadT<std::uint64_t>(off), 1u);
}

TEST_F(TraceRecorderTest, RecordsOpsInProgramOrder)
{
    const PmOff off = pool_.alloc(64);
    rec_.startRecording();
    rec_.txBegin(0);
    rec_.txStoreT<std::uint64_t>(0, off, 2);
    std::uint64_t value;
    rec_.txLoad(0, off, &value, 8);
    rec_.compute(0, 123);
    rec_.txCommit(0);
    rec_.stopRecording();

    const auto &trace = rec_.trace();
    ASSERT_EQ(trace.ops.size(), 5u);
    EXPECT_EQ(trace.ops[0].kind, MemOpKind::TxBegin);
    EXPECT_EQ(trace.ops[1].kind, MemOpKind::Store);
    EXPECT_EQ(trace.ops[1].off, off);
    EXPECT_EQ(trace.ops[1].size, 8u);
    EXPECT_EQ(trace.ops[2].kind, MemOpKind::Load);
    EXPECT_EQ(trace.ops[3].kind, MemOpKind::Compute);
    EXPECT_EQ(trace.ops[3].computeNs, 123u);
    EXPECT_EQ(trace.ops[4].kind, MemOpKind::TxCommit);
    EXPECT_EQ(trace.numTx, 1u);
    EXPECT_EQ(trace.numUpdates, 1u);
    EXPECT_EQ(trace.updateBytes, 8u);
    EXPECT_EQ(value, 2u);
}

TEST_F(TraceRecorderTest, AvgTxBytesMatchesTable2Definition)
{
    const PmOff off = pool_.alloc(256);
    rec_.startRecording();
    // Two txs: 24 bytes and 0 bytes -> 12 B/tx average over all txs.
    rec_.txBegin(0);
    rec_.txStore(0, off, "abcdefgh", 8);
    rec_.txStore(0, off + 64, "abcdefgh", 8);
    rec_.txStore(0, off + 128, "abcdefgh", 8);
    rec_.txCommit(0);
    rec_.txBegin(0);
    rec_.txCommit(0);
    rec_.stopRecording();
    EXPECT_DOUBLE_EQ(rec_.trace().avgTxBytes(), 12.0);
}

TEST(HashLogTx, CommitsAndScattersBuckets)
{
    pmem::PmemDevice dev(64u << 20);
    pmem::PmemPool pool(dev);
    core::HashLogTx tx(pool, 1, 1u << 10);

    const PmOff off = pool.alloc(256);
    const auto fences_before = dev.stats().fences;
    tx.txBegin(0);
    for (unsigned i = 0; i < 4; ++i)
        tx.txStoreT<std::uint64_t>(0, off + i * 64, i);
    tx.txCommit(0);
    EXPECT_EQ(dev.stats().fences - fences_before, 1u);
    // One bucket line flushed per chunk, plus nothing else.
    EXPECT_EQ(dev.stats().clwbs[1], 4u);
    for (unsigned i = 0; i < 4; ++i)
        EXPECT_EQ(dev.loadT<std::uint64_t>(off + i * 64), i);
}

TEST(HashLogTx, LargeValuesSplitAcrossBuckets)
{
    pmem::PmemDevice dev(64u << 20);
    pmem::PmemPool pool(dev);
    core::HashLogTx tx(pool, 1, 1u << 10);

    const PmOff off = pool.alloc(256);
    std::uint8_t blob[100];
    for (unsigned i = 0; i < sizeof(blob); ++i)
        blob[i] = static_cast<std::uint8_t>(i);
    tx.txBegin(0);
    tx.txStore(0, off, blob, sizeof(blob));
    tx.txCommit(0);
    // 100 bytes / 40-byte chunks = 3 bucket lines.
    EXPECT_EQ(dev.stats().clwbs[1], 3u);
}

TEST(HashLogTx, RepeatedUpdatesReuseTheSameBucket)
{
    pmem::PmemDevice dev(64u << 20);
    pmem::PmemPool pool(dev);
    core::HashLogTx tx(pool, 1, 1u << 10);

    const PmOff off = pool.alloc(64);
    for (unsigned round = 0; round < 50; ++round) {
        tx.txBegin(0);
        tx.txStoreT<std::uint64_t>(0, off, round);
        tx.txCommit(0);
    }
    // One record per datum: exactly one bucket line is ever used, so
    // every commit re-flushes that same line.
    EXPECT_EQ(dev.stats().clwbs[1], 50u);
}

} // namespace
} // namespace specpmt::txn
