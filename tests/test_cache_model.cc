/**
 * @file
 * Tests of the two-level cache model: hit levels, dirty writeback
 * hooks, PBit/LogBit flag plumbing, and cleaning.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/cache.hh"

namespace specpmt::sim
{
namespace
{

SimConfig
tinyConfig()
{
    SimConfig config;
    config.l1Bytes = 4 * kCacheLineSize; // 4 lines
    config.l1Ways = 1;
    config.l2Bytes = 8 * kCacheLineSize;
    config.l2Ways = 1;
    return config;
}

TEST(CacheModel, MissThenHit)
{
    CacheModel cache(tinyConfig());
    EXPECT_EQ(cache.access(10, false), CacheLevel::Memory);
    EXPECT_EQ(cache.access(10, false), CacheLevel::L1);
    EXPECT_EQ(cache.memFills(), 1u);
    EXPECT_EQ(cache.l1Hits(), 1u);
}

TEST(CacheModel, WriteMarksDirty)
{
    CacheModel cache(tinyConfig());
    cache.access(3, true);
    ASSERT_NE(cache.l1Meta(3), nullptr);
    EXPECT_TRUE(cache.l1Meta(3)->dirty);
}

TEST(CacheModel, EvictionDemotesToL2AndHitsThere)
{
    CacheModel cache(tinyConfig());
    cache.access(0, true);
    cache.access(4, false); // same L1 set (4 sets, direct-mapped)
    EXPECT_EQ(cache.l1Meta(0), nullptr);
    EXPECT_EQ(cache.access(0, false), CacheLevel::L2);
    EXPECT_TRUE(cache.l1Meta(0)->dirty) << "dirty state must survive";
}

TEST(CacheModel, L1EvictHookFiresForFlaggedLines)
{
    CacheModel cache(tinyConfig());
    std::vector<std::uint64_t> evicted;
    CacheModel::Hooks hooks;
    hooks.onL1Evict = [&](std::uint64_t line, LineMeta &) {
        evicted.push_back(line);
    };
    cache.setHooks(hooks);

    cache.access(0, true); // dirty
    cache.access(4, false);
    ASSERT_EQ(evicted.size(), 1u);
    EXPECT_EQ(evicted[0], 0u);

    // Clean lines leave silently.
    cache.access(8, false);
    EXPECT_EQ(evicted.size(), 1u);
}

TEST(CacheModel, L2WritebackHookFiresForDirtyLines)
{
    CacheModel cache(tinyConfig());
    std::vector<std::uint64_t> written_back;
    CacheModel::Hooks hooks;
    hooks.onL2Writeback = [&](std::uint64_t line, LineMeta &) {
        written_back.push_back(line);
    };
    cache.setHooks(hooks);

    // Dirty line 0; push it to L2, then push it out of L2 (L2 set
    // count is 8, so lines congruent mod 8 collide; lines congruent
    // mod 4 collide in L1).
    cache.access(0, true);
    cache.access(4, false);  // 0 -> L2
    cache.access(8, false);  // 4 -> L2 (set 0 in L2 holds 0, 8...)
    cache.access(16, false); // keep pushing set-0 lines
    cache.access(24, false);
    EXPECT_FALSE(written_back.empty());
    EXPECT_EQ(written_back[0], 0u);
}

TEST(CacheModel, CleanClearsDirtyAndPbitEverywhere)
{
    CacheModel cache(tinyConfig());
    cache.access(1, true);
    cache.l1Meta(1)->pBit = true;
    cache.clean(1);
    EXPECT_FALSE(cache.l1Meta(1)->dirty);
    EXPECT_FALSE(cache.l1Meta(1)->pBit);

    // And in L2.
    cache.access(2, true);
    cache.access(6, false); // evict 2 into L2
    cache.clean(2);
    EXPECT_EQ(cache.access(2, false), CacheLevel::L2);
    EXPECT_FALSE(cache.l1Meta(2)->dirty);
}

TEST(CacheModel, CleanIfDirtyReports)
{
    CacheModel cache(tinyConfig());
    EXPECT_FALSE(cache.cleanIfDirty(9));
    cache.access(9, true);
    EXPECT_TRUE(cache.cleanIfDirty(9));
    EXPECT_FALSE(cache.cleanIfDirty(9));
}

} // namespace
} // namespace specpmt::sim
