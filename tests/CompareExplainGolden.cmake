# Golden test of `crashmatrix --explain`: replay a known torn-commit
# crash point and require the forensic transcript (pminspect report +
# recovery audit) to match the checked-in golden byte-for-byte. The
# report depends only on the image bytes, which the replay token pins,
# so any drift is a real behavior change and must be reviewed (then
# re-baselined by copying the new output over the golden).
#
# Expects: -DCRASHMATRIX=<binary> -DTOKEN_FILE=<replay token file>
#          -DGOLDEN=<golden file> -DWORK_DIR=<scratch dir>
# The token travels in a file because its semicolons would be eaten by
# CMake's list semantics on the command line.

foreach(var CRASHMATRIX TOKEN_FILE GOLDEN WORK_DIR)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "missing -D${var}=")
    endif()
endforeach()

file(MAKE_DIRECTORY "${WORK_DIR}")
file(READ "${TOKEN_FILE}" TOKEN)
string(STRIP "${TOKEN}" TOKEN)

execute_process(
    COMMAND "${CRASHMATRIX}" "--explain=${TOKEN}"
    OUTPUT_VARIABLE actual
    RESULT_VARIABLE status)
if(NOT status EQUAL 0)
    message(FATAL_ERROR
        "crashmatrix --explain failed (status ${status}); a nonzero "
        "status here means the recovery audit disagreed with the "
        "inspector or the token no longer replays")
endif()

file(READ "${GOLDEN}" expected)
if(NOT actual STREQUAL expected)
    file(WRITE "${WORK_DIR}/explain_actual.txt" "${actual}")
    message(FATAL_ERROR
        "explain transcript diverged from ${GOLDEN}; actual output "
        "saved to ${WORK_DIR}/explain_actual.txt")
endif()

message(STATUS "explain transcript matches golden")
