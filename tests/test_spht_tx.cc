/**
 * @file
 * Tests for the SPHT-style redo-logging baseline: working-copy
 * indirection, single-fence commit, background replay, log recycling,
 * and crash recovery.
 */

#include <gtest/gtest.h>

#include "pmem/pmem_device.hh"
#include "pmem/pmem_pool.hh"
#include "txn/spht_tx.hh"

namespace specpmt::txn
{
namespace
{

class SphtTxTest : public ::testing::Test
{
  protected:
    SphtTxTest()
        : dev_(16u << 20), pool_(dev_),
          tx_(pool_, 1, /*start_replayer=*/false)
    {}

    pmem::PmemDevice dev_;
    pmem::PmemPool pool_;
    SphtTx tx_;
};

TEST_F(SphtTxTest, LoadsSeeOwnStoresThroughWorkingCopy)
{
    const PmOff off = pool_.alloc(8);
    tx_.txBegin(0);
    tx_.txStoreT<std::uint64_t>(0, off, 123);
    EXPECT_EQ(tx_.txLoadT<std::uint64_t>(0, off), 123u);
    tx_.txCommit(0);
    EXPECT_EQ(tx_.txLoadT<std::uint64_t>(0, off), 123u);
}

TEST_F(SphtTxTest, DataReachesPmOnlyViaReplayer)
{
    const PmOff off = pool_.alloc(8);
    tx_.txBegin(0);
    tx_.txStoreT<std::uint64_t>(0, off, 5);
    tx_.txCommit(0);

    // Out-of-place: the device's data location is untouched until the
    // replayer applies the redo record.
    EXPECT_EQ(dev_.loadT<std::uint64_t>(off), 0u);
    tx_.drainReplayer();
    EXPECT_EQ(dev_.loadT<std::uint64_t>(off), 5u);
}

TEST_F(SphtTxTest, SingleFencePerCommit)
{
    const PmOff off = pool_.alloc(256);
    const auto fences_before = dev_.stats().fences;
    tx_.txBegin(0);
    for (unsigned i = 0; i < 16; ++i)
        tx_.txStoreT<std::uint64_t>(0, off + i * 8, i);
    tx_.txCommit(0);
    EXPECT_EQ(dev_.stats().fences - fences_before, 1u)
        << "SPHT commits with one persist barrier";
}

TEST_F(SphtTxTest, ReadOnlyCommitIsFree)
{
    const auto fences_before = dev_.stats().fences;
    tx_.txBegin(0);
    tx_.txCommit(0);
    EXPECT_EQ(dev_.stats().fences, fences_before);
}

TEST_F(SphtTxTest, CommittedButUnreplayedTxSurvivesCrash)
{
    const PmOff off = pool_.alloc(8);
    tx_.txBegin(0);
    tx_.txStoreT<std::uint64_t>(0, off, 42);
    tx_.txCommit(0);
    // Crash before the replayer ran and with no dirty-line luck.
    dev_.simulateCrash(pmem::CrashPolicy::nothing());
    pool_.reopenAfterCrash();

    SphtTx fresh(pool_, 1, false);
    fresh.recover();
    EXPECT_EQ(dev_.loadT<std::uint64_t>(off), 42u);
    EXPECT_EQ(fresh.txLoadT<std::uint64_t>(0, off), 42u)
        << "the rebuilt working copy must reflect recovered data";
}

TEST_F(SphtTxTest, UncommittedTxVanishesAtCrash)
{
    const PmOff off = pool_.alloc(8);
    tx_.txBegin(0);
    tx_.txStoreT<std::uint64_t>(0, off, 7);
    tx_.txCommit(0);

    tx_.txBegin(0);
    tx_.txStoreT<std::uint64_t>(0, off, 8); // never committed
    dev_.simulateCrash(pmem::CrashPolicy::everything());
    pool_.reopenAfterCrash();

    SphtTx fresh(pool_, 1, false);
    fresh.recover();
    EXPECT_EQ(dev_.loadT<std::uint64_t>(off), 7u);
}

TEST_F(SphtTxTest, ReplayOrderFollowsTimestampsAcrossThreads)
{
    pmem::PmemDevice dev(16u << 20);
    pmem::PmemPool pool(dev);
    SphtTx tx(pool, 2, false);

    const PmOff off = pool.alloc(8);
    // Thread 0 then thread 1 update the same location (caller-ordered,
    // as the paper's locking contract requires).
    tx.txBegin(0);
    tx.txStoreT<std::uint64_t>(0, off, 100);
    tx.txCommit(0);
    tx.txBegin(1);
    tx.txStoreT<std::uint64_t>(1, off, 200);
    tx.txCommit(1);

    dev.simulateCrash(pmem::CrashPolicy::nothing());
    pool.reopenAfterCrash();
    SphtTx fresh(pool, 2, false);
    fresh.recover();
    EXPECT_EQ(dev.loadT<std::uint64_t>(off), 200u)
        << "recovery must apply the younger record last";
}

TEST_F(SphtTxTest, LogRecyclesAfterReplay)
{
    const PmOff off = pool_.alloc(8192);
    // Push far more redo bytes than one log area holds; with the
    // synchronous drain in ensureSpace this must recycle, not die.
    std::vector<std::uint8_t> blob(4096, 0x5A);
    for (int i = 0; i < 3000; ++i) {
        tx_.txBegin(0);
        tx_.txStore(0, off, blob.data(), blob.size());
        tx_.txCommit(0);
    }
    tx_.drainReplayer();
    EXPECT_EQ(dev_.loadT<std::uint8_t>(off), 0x5Au);
}

TEST_F(SphtTxTest, BackgroundReplayerDrainsOnShutdown)
{
    pmem::PmemDevice dev(16u << 20);
    pmem::PmemPool pool(dev);
    const PmOff off = pool.alloc(800);
    {
        SphtTx tx(pool, 1, /*start_replayer=*/true);
        for (unsigned i = 0; i < 100; ++i) {
            tx.txBegin(0);
            tx.txStoreT<std::uint64_t>(0, off + (i % 100) * 8, i + 1);
            tx.txCommit(0);
        }
        tx.shutdown();
    }
    dev.simulateCrash(pmem::CrashPolicy::nothing());
    EXPECT_EQ(dev.loadT<std::uint64_t>(off + 99 * 8), 100u);
}

} // namespace
} // namespace specpmt::txn
