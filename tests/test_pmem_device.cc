/**
 * @file
 * Tests of the emulated persistence domain: store/flush/fence
 * semantics, crash policies, crash injection, traffic accounting.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <thread>

#include "pmem/pmem_device.hh"

namespace specpmt::pmem
{
namespace
{

TEST(PmemDevice, StoresAreVolatileUntilFencedFlush)
{
    PmemDevice dev(1 << 16);
    dev.storeT<std::uint64_t>(128, 0xABCDu);
    EXPECT_EQ(dev.loadT<std::uint64_t>(128), 0xABCDu);

    // Adversarial crash: nothing unfenced persists.
    auto image = dev.crashImage(CrashPolicy::nothing());
    std::uint64_t persisted;
    std::memcpy(&persisted, image.data() + 128, 8);
    EXPECT_EQ(persisted, 0u);

    dev.clwb(128);
    image = dev.crashImage(CrashPolicy::nothing());
    std::memcpy(&persisted, image.data() + 128, 8);
    EXPECT_EQ(persisted, 0u) << "clwb without sfence is not durable";

    dev.sfence();
    image = dev.crashImage(CrashPolicy::nothing());
    std::memcpy(&persisted, image.data() + 128, 8);
    EXPECT_EQ(persisted, 0xABCDu);
}

TEST(PmemDevice, EverythingDrainsPolicyPersistsDirtyLines)
{
    PmemDevice dev(1 << 16);
    dev.storeT<std::uint64_t>(0, 7);
    auto image = dev.crashImage(CrashPolicy::everything());
    std::uint64_t persisted;
    std::memcpy(&persisted, image.data(), 8);
    EXPECT_EQ(persisted, 7u);
}

TEST(PmemDevice, ClwbSnapshotsAtFlushTime)
{
    PmemDevice dev(1 << 16);
    dev.storeT<std::uint64_t>(0, 1);
    dev.clwb(0);
    dev.storeT<std::uint64_t>(0, 2); // re-dirty after flush
    dev.sfence();

    // The fence persists the snapshot taken at clwb time (value 1);
    // value 2 is still only in the cache.
    auto image = dev.crashImage(CrashPolicy::nothing());
    std::uint64_t persisted;
    std::memcpy(&persisted, image.data(), 8);
    EXPECT_EQ(persisted, 1u);
    EXPECT_TRUE(dev.isLineDirty(0));
}

TEST(PmemDevice, RandomPolicyIsReproducible)
{
    PmemDevice dev(1 << 16);
    for (unsigned i = 0; i < 64; ++i)
        dev.storeT<std::uint64_t>(i * 64, i + 1);
    const auto a = dev.crashImage(CrashPolicy::random(99));
    const auto b = dev.crashImage(CrashPolicy::random(99));
    const auto c = dev.crashImage(CrashPolicy::random(100));
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
}

TEST(PmemDevice, SimulateCrashCollapsesState)
{
    PmemDevice dev(1 << 16);
    dev.storeT<std::uint64_t>(64, 5);
    dev.clwb(64);
    dev.sfence();
    dev.storeT<std::uint64_t>(64, 9); // dirty on top

    dev.simulateCrash(CrashPolicy::nothing());
    EXPECT_EQ(dev.loadT<std::uint64_t>(64), 5u);
    EXPECT_EQ(dev.dirtyLineCount(), 0u);
    EXPECT_EQ(dev.stats().crashes, 1u);
}

TEST(PmemDevice, NtStoreBypassesCacheButNeedsFence)
{
    PmemDevice dev(1 << 16);
    const std::uint64_t value = 0xF00Du;
    dev.ntstore(256, &value, sizeof(value));
    EXPECT_FALSE(dev.isLineDirty(256));

    auto image = dev.crashImage(CrashPolicy::nothing());
    std::uint64_t persisted;
    std::memcpy(&persisted, image.data() + 256, 8);
    EXPECT_EQ(persisted, 0u);

    dev.sfence();
    image = dev.crashImage(CrashPolicy::nothing());
    std::memcpy(&persisted, image.data() + 256, 8);
    EXPECT_EQ(persisted, value);
}

TEST(PmemDevice, DrainAllPersistsEverything)
{
    PmemDevice dev(1 << 16);
    for (unsigned i = 0; i < 100; ++i)
        dev.storeT<std::uint64_t>(i * 64, i);
    dev.drainAll();
    EXPECT_EQ(dev.dirtyLineCount(), 0u);
    auto image = dev.crashImage(CrashPolicy::nothing());
    for (unsigned i = 0; i < 100; ++i) {
        std::uint64_t persisted;
        std::memcpy(&persisted, image.data() + i * 64, 8);
        EXPECT_EQ(persisted, i);
    }
}

TEST(PmemDevice, RedundantClwbOfCleanLineIsFree)
{
    PmemDevice dev(1 << 16);
    dev.clwb(0);
    EXPECT_EQ(dev.stats().totalClwbs(), 0u);
    dev.storeT<std::uint64_t>(0, 1);
    dev.clwb(0);
    dev.clwb(0); // second flush: line already pending, not dirty
    EXPECT_EQ(dev.stats().totalClwbs(), 1u);
}

TEST(PmemDevice, TrafficClassesAreSeparated)
{
    PmemDevice dev(1 << 16);
    dev.storeT<std::uint64_t>(0, 1);
    dev.clwb(0, TrafficClass::Data);
    dev.storeT<std::uint64_t>(64, 1);
    dev.clwb(64, TrafficClass::Log);
    dev.storeT<std::uint64_t>(128, 1);
    dev.clwb(128, TrafficClass::Meta);
    const auto &stats = dev.stats();
    EXPECT_EQ(stats.clwbs[0], 1u);
    EXPECT_EQ(stats.clwbs[1], 1u);
    EXPECT_EQ(stats.clwbs[2], 1u);
}

TEST(PmemDevice, MultiLineStoreDirtiesAllLines)
{
    PmemDevice dev(1 << 16);
    std::uint8_t buffer[200] = {1};
    dev.store(60, buffer, sizeof(buffer)); // spans lines 0..4
    EXPECT_EQ(dev.dirtyLineCount(), 5u);
}

TEST(PmemDevice, CrashInjectionFiresAtExactOp)
{
    PmemDevice dev(1 << 16);
    dev.armCrash(2);
    dev.storeT<std::uint64_t>(0, 1);  // op 0
    dev.storeT<std::uint64_t>(8, 2);  // op 1
    EXPECT_THROW(dev.storeT<std::uint64_t>(16, 3),
                 SimulatedCrash); // op 2: boom, store not applied
    EXPECT_EQ(dev.loadT<std::uint64_t>(16), 0u);
    // Countdown disarms itself after firing.
    dev.storeT<std::uint64_t>(24, 4);
    EXPECT_EQ(dev.loadT<std::uint64_t>(24), 4u);
}

TEST(PmemDevice, CrashInjectionIsThreadLocal)
{
    PmemDevice dev(1 << 16);
    dev.armCrash(0);
    std::thread other([&] {
        // A different thread must not trip the armed countdown.
        for (int i = 0; i < 10; ++i)
            dev.storeT<std::uint64_t>(512 + i * 8, i);
    });
    other.join();
    EXPECT_EQ(dev.loadT<std::uint64_t>(512), 0u);
    EXPECT_THROW(dev.storeT<std::uint64_t>(0, 1), SimulatedCrash);
}

TEST(PmemDevice, ResetFromImageRestoresBothImages)
{
    PmemDevice dev(1 << 16);
    dev.storeT<std::uint64_t>(0, 42);
    dev.clwb(0);
    dev.sfence();
    const auto image = dev.crashImage(CrashPolicy::nothing());

    PmemDevice dev2(1 << 16);
    dev2.resetFromImage(image);
    EXPECT_EQ(dev2.loadT<std::uint64_t>(0), 42u);
    const auto image2 = dev2.crashImage(CrashPolicy::nothing());
    EXPECT_EQ(image2, image);
}

TEST(PmemDevice, OutOfRangeAccessDies)
{
    PmemDevice dev(1 << 12);
    EXPECT_DEATH(dev.storeT<std::uint64_t>((1 << 12) - 4, 1), "range");
}

} // namespace
} // namespace specpmt::pmem
