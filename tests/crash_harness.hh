/**
 * @file
 * Shared crash-consistency test harness.
 *
 * Drives a randomized transactional workload over a slot array through
 * any TxRuntime, injecting a simulated power failure after a chosen
 * number of persistence operations and under a chosen cache-eviction
 * policy, then re-opens the pool, runs recovery, and checks atomic
 * durability: the surviving state must equal the committed prefix,
 * or — when the crash landed inside a commit whose fence may already
 * have retired — the committed prefix plus the *entire* in-flight
 * transaction. Any partial transaction is a failure.
 */

#ifndef SPECPMT_TESTS_CRASH_HARNESS_HH
#define SPECPMT_TESTS_CRASH_HARNESS_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/rand.hh"
#include "core/spec_tx.hh"
#include "pmem/pmem_device.hh"
#include "pmem/pmem_pool.hh"
#include "sim/hybrid_spec_tx.hh"
#include "txn/runtime_factory.hh"
#include "txn/spht_tx.hh"
#include "txn/tx_runtime.hh"
#include "txn/undo_tx.hh"

namespace specpmt::tests
{

/** Recoverable runtimes under test. */
enum class RuntimeKind
{
    Pmdk,
    Spht,
    Spec,
    SpecDp,
    Hybrid, ///< hardware hybrid-logging protocol (functional model)
};

inline const char *
runtimeKindName(RuntimeKind kind)
{
    switch (kind) {
      case RuntimeKind::Pmdk:
        return "pmdk";
      case RuntimeKind::Spht:
        return "spht";
      case RuntimeKind::Spec:
        return "spec";
      case RuntimeKind::SpecDp:
        return "spec_dp";
      case RuntimeKind::Hybrid:
        return "hybrid";
    }
    return "?";
}

/**
 * Build a runtime configured for deterministic crash testing: no
 * background threads, small log blocks (to force block chaining and
 * multi-segment transactions), low reclamation threshold.
 */
inline std::unique_ptr<txn::TxRuntime>
makeRuntime(RuntimeKind kind, pmem::PmemPool &pool, unsigned threads)
{
    // Deterministic crash-test options: no background threads, small
    // log blocks to force block chaining inside the crash window.
    txn::RuntimeOptions options;
    options.backgroundWorkers = false;
    options.specLogBlockSize = 256;
    switch (kind) {
      case RuntimeKind::Pmdk:
        return txn::makeRuntime("pmdk", pool, threads, options);
      case RuntimeKind::Spht:
        return txn::makeRuntime("spht", pool, threads, options);
      case RuntimeKind::Spec:
        return txn::makeRuntime("spec", pool, threads, options);
      case RuntimeKind::SpecDp:
        return txn::makeRuntime("spec-dp", pool, threads, options);
      case RuntimeKind::Hybrid: {
        sim::HybridConfig config;
        config.hotCounterMax = 3;
        config.epochMaxBytes = 16 * 1024;
        config.epochMaxPages = 8;
        return std::make_unique<sim::HybridSpecTx>(pool, threads,
                                                   config);
      }
    }
    return nullptr;
}

/** Harness parameters. */
struct HarnessConfig
{
    unsigned slots = 128;
    unsigned txCount = 48;
    unsigned maxStoresPerTx = 6;
    std::uint64_t seed = 42;
    /** Run a synchronous reclaim cycle every N transactions (0=off). */
    unsigned reclaimEvery = 0;
};

/** A crash-consistency scenario over one runtime kind. */
class CrashScenario
{
  public:
    CrashScenario(RuntimeKind kind, HarnessConfig config = {})
        : kind_(kind), config_(config),
          dev_(16u << 20), pool_(dev_)
    {
        runtime_ = makeRuntime(kind_, pool_, 1);
        // Slot array, published via a root so the scenario is honest
        // about how a real application would rediscover its data.
        dataOff_ = pool_.alloc(config_.slots * sizeof(std::uint64_t));
        pool_.setRoot(txn::kAppRootSlotBase, dataOff_);

        // Initialize every slot through committed transactions so
        // each datum enters the durable world with a log record.
        for (unsigned base = 0; base < config_.slots; base += 16) {
            runtime_->txBegin(0);
            for (unsigned i = base;
                 i < std::min(base + 16, config_.slots); ++i) {
                runtime_->txStoreT<std::uint64_t>(
                    0, slotOff(i), static_cast<std::uint64_t>(i));
            }
            runtime_->txCommit(0);
        }
        for (unsigned i = 0; i < config_.slots; ++i)
            committed_[i] = i;
    }

    PmOff
    slotOff(unsigned slot) const
    {
        return dataOff_ + slot * sizeof(std::uint64_t);
    }

    /**
     * Run the workload with a crash armed after @p crash_after
     * persistence ops; returns true if the crash fired.
     */
    bool
    runWithCrash(long crash_after)
    {
        Rng rng(config_.seed);
        dev_.armCrash(crash_after);
        try {
            for (unsigned t = 0; t < config_.txCount; ++t) {
                staged_.clear();
                runtime_->txBegin(0);
                const unsigned stores =
                    1 + static_cast<unsigned>(
                            rng.below(config_.maxStoresPerTx));
                for (unsigned i = 0; i < stores; ++i) {
                    const auto slot = static_cast<unsigned>(
                        rng.below(config_.slots));
                    const std::uint64_t value = rng.next() | 1;
                    runtime_->txStoreT<std::uint64_t>(0, slotOff(slot),
                                                      value);
                    staged_[slot] = value;
                }
                runtime_->txCommit(0);
                for (const auto &[slot, value] : staged_)
                    committed_[slot] = value;
                staged_.clear();

                if (config_.reclaimEvery != 0 &&
                    (t + 1) % config_.reclaimEvery == 0) {
                    if (auto *spec =
                            dynamic_cast<core::SpecTx *>(runtime_.get()))
                        spec->reclaimNow();
                }
            }
        } catch (const pmem::SimulatedCrash &) {
            return true;
        }
        dev_.armCrash(-1);
        return false;
    }

    /** Power-cycle the pool and run recovery on a fresh runtime. */
    void
    crashAndRecover(const pmem::CrashPolicy &policy)
    {
        dev_.armCrash(-1);
        runtime_.reset(); // the old process is gone
        dev_.simulateCrash(policy);
        pool_.reopenAfterCrash();
        runtime_ = makeRuntime(kind_, pool_, 1);
        dataOff_ = pool_.getRoot(txn::kAppRootSlotBase);
        runtime_->recover();
    }

    /**
     * Check atomic durability of the current device state.
     * @return empty string on success, else a failure description.
     */
    std::string
    verifyAtomicity() const
    {
        bool matches_committed = true;
        bool matches_overlay = true;
        for (unsigned i = 0; i < config_.slots; ++i) {
            const auto actual = dev_.loadT<std::uint64_t>(slotOff(i));
            const std::uint64_t want_committed = committed_.at(i);
            std::uint64_t want_overlay = want_committed;
            if (auto it = staged_.find(i); it != staged_.end())
                want_overlay = it->second;
            if (actual != want_committed)
                matches_committed = false;
            if (actual != want_overlay)
                matches_overlay = false;
        }
        if (matches_committed || matches_overlay)
            return {};
        std::string failure = "partial transaction visible: ";
        for (unsigned i = 0; i < config_.slots; ++i) {
            const auto actual = dev_.loadT<std::uint64_t>(slotOff(i));
            if (actual != committed_.at(i)) {
                failure += "slot " + std::to_string(i) + "=" +
                           std::to_string(actual) + " (committed " +
                           std::to_string(committed_.at(i)) + ") ";
            }
        }
        return failure;
    }

    /**
     * Accept whichever of the two legal post-crash states actually
     * survived as the new committed baseline.
     */
    void
    rebaseline()
    {
        for (unsigned i = 0; i < config_.slots; ++i)
            committed_[i] = dev_.loadT<std::uint64_t>(slotOff(i));
        staged_.clear();
    }

    /** Run @p count crash-free transactions (post-recovery phase). */
    void
    runMore(unsigned count, std::uint64_t seed)
    {
        Rng rng(seed);
        for (unsigned t = 0; t < count; ++t) {
            runtime_->txBegin(0);
            const unsigned stores =
                1 + static_cast<unsigned>(
                        rng.below(config_.maxStoresPerTx));
            for (unsigned i = 0; i < stores; ++i) {
                const auto slot =
                    static_cast<unsigned>(rng.below(config_.slots));
                const std::uint64_t value = rng.next() | 1;
                runtime_->txStoreT<std::uint64_t>(0, slotOff(slot),
                                                  value);
                committed_[slot] = value;
            }
            runtime_->txCommit(0);
        }
        // The redo baseline applies data out of place; drain it so
        // device reads observe the committed state.
        if (auto *spht = dynamic_cast<txn::SphtTx *>(runtime_.get()))
            spht->drainReplayer();
    }

    /** Exact-state check (crash-free phases). */
    std::string
    verifyExact() const
    {
        for (unsigned i = 0; i < config_.slots; ++i) {
            const auto actual = dev_.loadT<std::uint64_t>(slotOff(i));
            if (actual != committed_.at(i)) {
                return "slot " + std::to_string(i) + " = " +
                       std::to_string(actual) + ", expected " +
                       std::to_string(committed_.at(i));
            }
        }
        return {};
    }

    pmem::PmemDevice &device() { return dev_; }
    pmem::PmemPool &pool() { return pool_; }
    txn::TxRuntime &runtime() { return *runtime_; }

  private:
    RuntimeKind kind_;
    HarnessConfig config_;
    pmem::PmemDevice dev_;
    pmem::PmemPool pool_;
    std::unique_ptr<txn::TxRuntime> runtime_;
    PmOff dataOff_ = kPmNull;
    std::map<unsigned, std::uint64_t> committed_;
    std::map<unsigned, std::uint64_t> staged_;
};

} // namespace specpmt::tests

#endif // SPECPMT_TESTS_CRASH_HARNESS_HH
