/**
 * @file
 * Tests for the set-associative array underlying the TLB and cache
 * models: hit/miss behaviour, LRU victim selection, eviction
 * reporting.
 */

#include <gtest/gtest.h>

#include "sim/assoc_array.hh"

namespace specpmt::sim
{
namespace
{

TEST(AssocArray, InsertAndFind)
{
    AssocArray<int> array(8, 2);
    EXPECT_EQ(array.find(42), nullptr);
    EXPECT_FALSE(array.insert(42, 7).has_value());
    ASSERT_NE(array.find(42), nullptr);
    EXPECT_EQ(*array.find(42), 7);
}

TEST(AssocArray, MetaIsMutableThroughFind)
{
    AssocArray<int> array(8, 2);
    array.insert(1, 10);
    *array.find(1) = 20;
    EXPECT_EQ(*array.peek(1), 20);
}

TEST(AssocArray, EvictsLruWithinSet)
{
    // 1 set, 2 ways: keys all map to the same set.
    AssocArray<int> array(2, 2);
    array.insert(1, 100);
    array.insert(2, 200);
    // Touch key 1 so key 2 becomes LRU.
    array.find(1);
    const auto evicted = array.insert(3, 300);
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(evicted->first, 2u);
    EXPECT_EQ(evicted->second, 200);
    EXPECT_NE(array.find(1), nullptr);
    EXPECT_EQ(array.find(2), nullptr);
}

TEST(AssocArray, SetsAreIndependent)
{
    AssocArray<int> array(4, 2); // 2 sets
    // Keys 0 and 2 map to set 0; 1 and 3 to set 1.
    array.insert(0, 1);
    array.insert(2, 2);
    array.insert(1, 3);
    // Filling set 0 further evicts only from set 0.
    const auto evicted = array.insert(4, 4);
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(evicted->first % 2, 0u);
    EXPECT_NE(array.find(1), nullptr);
}

TEST(AssocArray, EraseReturnsMeta)
{
    AssocArray<int> array(8, 2);
    array.insert(5, 50);
    const auto meta = array.erase(5);
    ASSERT_TRUE(meta.has_value());
    EXPECT_EQ(*meta, 50);
    EXPECT_EQ(array.find(5), nullptr);
    EXPECT_FALSE(array.erase(5).has_value());
}

TEST(AssocArray, ForEachVisitsAllValidEntries)
{
    AssocArray<int> array(16, 4);
    for (int i = 0; i < 10; ++i)
        array.insert(static_cast<std::uint64_t>(i), i);
    int count = 0, sum = 0;
    array.forEach([&](std::uint64_t, int &value) {
        ++count;
        sum += value;
    });
    EXPECT_EQ(count, 10);
    EXPECT_EQ(sum, 45);
}

TEST(AssocArray, NonMultipleCapacityRoundsDownToWholeSets)
{
    // 2MB/64B = 32768 entries at 12 ways: 2730 sets.
    AssocArray<int> array(32768, 12);
    EXPECT_EQ(array.numSets(), 32768u / 12);
    EXPECT_EQ(array.ways(), 12u);
}

} // namespace
} // namespace specpmt::sim
