/**
 * @file
 * Tests of the hardware hybrid-logging protocol's functional model
 * (Section 5): cold-path undo logging, cold->hot transitions with
 * page records, the Section 5.1.1 three-step recovery, and
 * epoch-based reclamation.
 */

#include <gtest/gtest.h>

#include "pmem/pmem_device.hh"
#include "pmem/pmem_pool.hh"
#include "sim/hybrid_spec_tx.hh"

namespace specpmt::sim
{
namespace
{

HybridConfig
testConfig()
{
    HybridConfig config;
    config.hotCounterMax = 3; // heat pages quickly in tests
    config.epochMaxBytes = 8 * 1024;
    config.epochMaxPages = 4;
    return config;
}

class HybridSpecTxTest : public ::testing::Test
{
  protected:
    HybridSpecTxTest()
        : dev_(32u << 20), pool_(dev_), tx_(pool_, 1, testConfig())
    {}

    /** Commit one value at @p off. */
    void
    commitValue(PmOff off, std::uint64_t value)
    {
        tx_.txBegin(0);
        tx_.txStoreT<std::uint64_t>(0, off, value);
        tx_.txCommit(0);
    }

    /** Heat the page containing @p off with committed writes. */
    void
    heatPage(PmOff off)
    {
        for (unsigned i = 0; i < 4; ++i)
            commitValue(off + 512 + i * 8, i);
    }

    pmem::PmemDevice dev_;
    pmem::PmemPool pool_;
    HybridSpecTx tx_;
};

TEST_F(HybridSpecTxTest, ColdCommitIsDurableAdversarially)
{
    const PmOff off = pool_.alloc(64);
    commitValue(off, 909);
    dev_.simulateCrash(pmem::CrashPolicy::nothing());
    EXPECT_EQ(dev_.loadT<std::uint64_t>(off), 909u)
        << "cold data persists synchronously at commit";
}

TEST_F(HybridSpecTxTest, UncommittedColdWriteIsRevoked)
{
    const PmOff off = pool_.alloc(64);
    commitValue(off, 1);
    tx_.txBegin(0);
    tx_.txStoreT<std::uint64_t>(0, off, 2);
    // The in-place update drains; the (ordered, fence-free) undo
    // record must revoke it.
    dev_.simulateCrash(pmem::CrashPolicy::everything());
    pool_.reopenAfterCrash();
    HybridSpecTx fresh(pool_, 1, testConfig());
    fresh.recover();
    EXPECT_EQ(dev_.loadT<std::uint64_t>(off), 1u);
}

TEST_F(HybridSpecTxTest, HotCommitRecoversFromSpeculativeLog)
{
    const PmOff off = pool_.alloc(4096);
    heatPage(off);
    EXPECT_EQ(tx_.hotPageCount(), 1u);
    commitValue(off, 4242);
    // Hot data is never flushed: only the log can rebuild it.
    dev_.simulateCrash(pmem::CrashPolicy::nothing());
    pool_.reopenAfterCrash();
    HybridSpecTx fresh(pool_, 1, testConfig());
    fresh.recover();
    EXPECT_EQ(dev_.loadT<std::uint64_t>(off), 4242u);
}

TEST_F(HybridSpecTxTest, UncommittedHotWriteIsRevoked)
{
    const PmOff off = pool_.alloc(4096);
    heatPage(off);
    commitValue(off, 7);
    tx_.txBegin(0);
    tx_.txStoreT<std::uint64_t>(0, off, 8);
    dev_.simulateCrash(pmem::CrashPolicy::everything());
    pool_.reopenAfterCrash();
    HybridSpecTx fresh(pool_, 1, testConfig());
    fresh.recover();
    EXPECT_EQ(dev_.loadT<std::uint64_t>(off), 7u);
}

TEST_F(HybridSpecTxTest, MidTransactionTransitionFullyRevoked)
{
    // Section 5.1.1 invariant 2: a page that becomes hot inside a
    // transaction is covered by undo records (before the transition)
    // plus the page record (after it); the interrupted transaction
    // must disappear entirely.
    const PmOff off = pool_.alloc(4096);
    commitValue(off, 100);
    commitValue(off + 8, 200);

    tx_.txBegin(0);
    // Cold writes first (counter at 2 after the setup commits).
    tx_.txStoreT<std::uint64_t>(0, off, 111);      // undo-logged
    tx_.txStoreT<std::uint64_t>(0, off + 8, 222);  // heats the page
    tx_.txStoreT<std::uint64_t>(0, off + 16, 333); // hot write
    dev_.simulateCrash(pmem::CrashPolicy::everything());
    pool_.reopenAfterCrash();
    HybridSpecTx fresh(pool_, 1, testConfig());
    fresh.recover();
    EXPECT_EQ(dev_.loadT<std::uint64_t>(off), 100u);
    EXPECT_EQ(dev_.loadT<std::uint64_t>(off + 8), 200u);
    EXPECT_EQ(dev_.loadT<std::uint64_t>(off + 16), 0u);
}

TEST_F(HybridSpecTxTest, CommittedPageSnapshotCoversUntouchedLines)
{
    // A line never rewritten after the page went hot is guarded only
    // by the *committed* page record; an interrupted later write to
    // it must still be revoked (step iii replays the page snapshot).
    const PmOff off = pool_.alloc(4096);
    commitValue(off + 1024, 55); // cold commit, persists data
    heatPage(off);               // page record snapshots 55

    tx_.txBegin(0);
    tx_.txStoreT<std::uint64_t>(0, off + 1024, 66); // hot, uncommitted
    dev_.simulateCrash(pmem::CrashPolicy::everything());
    pool_.reopenAfterCrash();
    HybridSpecTx fresh(pool_, 1, testConfig());
    fresh.recover();
    EXPECT_EQ(dev_.loadT<std::uint64_t>(off + 1024), 55u);
}

TEST_F(HybridSpecTxTest, EpochReclamationBoundsLogAndPreservesSafety)
{
    const PmOff off = pool_.alloc(4096);
    heatPage(off);
    // Enough committed updates to roll through several epochs.
    for (unsigned round = 0; round < 600; ++round)
        commitValue(off + (round % 64) * 8, round);
    EXPECT_GT(tx_.epochsReclaimed(), 0u);
    EXPECT_LT(tx_.logBytesInUse(), 128u * 1024)
        << "epoch reclamation must bound log memory";

    // After reclamation the page may have gone cold; an interrupted
    // update must still be revocable through whichever path applies.
    tx_.txBegin(0);
    tx_.txStoreT<std::uint64_t>(0, off, 999999);
    dev_.simulateCrash(pmem::CrashPolicy::everything());
    pool_.reopenAfterCrash();
    HybridSpecTx fresh(pool_, 1, testConfig());
    fresh.recover();
    const auto recovered = dev_.loadT<std::uint64_t>(off);
    // Last committed value of slot 0 was round 576 (576 % 64 == 0).
    EXPECT_EQ(recovered, 576u);
}

TEST_F(HybridSpecTxTest, ReclamationFlipsPagesColdAgain)
{
    const PmOff off = pool_.alloc(4096);
    heatPage(off);
    EXPECT_EQ(tx_.hotPageCount(), 1u);
    for (unsigned round = 0; round < 600; ++round)
        commitValue(off + (round % 64) * 8, round);
    // With tiny epochs the page's creating epoch has been reclaimed
    // and re-heated several times; page copies > 1 proves the
    // clearepoch -> cold -> reheat cycle happened.
    EXPECT_GT(tx_.pageCopies(), 1u);
}

TEST_F(HybridSpecTxTest, RecoveredPoolKeepsWorking)
{
    const PmOff off = pool_.alloc(4096);
    heatPage(off);
    commitValue(off, 1);
    dev_.simulateCrash(pmem::CrashPolicy::random(3, 0.5));
    pool_.reopenAfterCrash();
    HybridSpecTx second(pool_, 1, testConfig());
    second.recover();
    second.txBegin(0);
    second.txStoreT<std::uint64_t>(0, off, 2);
    second.txCommit(0);
    dev_.simulateCrash(pmem::CrashPolicy::nothing());
    pool_.reopenAfterCrash();
    HybridSpecTx third(pool_, 1, testConfig());
    third.recover();
    EXPECT_EQ(dev_.loadT<std::uint64_t>(off), 2u);
}

} // namespace
} // namespace specpmt::sim
