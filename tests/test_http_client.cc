/**
 * @file
 * Deadline tests for the telemetry-plane HTTP client: a scrape
 * against a wedged or misbehaving server must return within the
 * caller's deadline, never hang. Covers the slow-loris drip (bytes
 * keep arriving but the response never completes), the header-only
 * stall (headers start, terminator never comes), and mid-body EOF
 * (connection-close framing: a clean early close ends the body
 * without waiting out the deadline).
 */

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <functional>
#include <string>
#include <thread>

#include "obs/http_client.hh"

namespace specpmt::obs
{
namespace
{

using Clock = std::chrono::steady_clock;

long
elapsedMs(Clock::time_point since)
{
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               Clock::now() - since)
        .count();
}

/**
 * One-shot loopback server: accepts a single connection and hands it
 * to the session callback on a background thread. Sessions end when
 * the callback returns; the callback is responsible for noticing a
 * closed peer (send fails / recv returns 0) so a timed-out client
 * releases the thread.
 */
class StubServer
{
  public:
    explicit StubServer(std::function<void(int)> session)
    {
        listen_ = ::socket(AF_INET, SOCK_STREAM, 0);
        EXPECT_GE(listen_, 0);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        EXPECT_EQ(::bind(listen_,
                         reinterpret_cast<sockaddr *>(&addr),
                         sizeof(addr)),
                  0);
        EXPECT_EQ(::listen(listen_, 1), 0);
        socklen_t len = sizeof(addr);
        EXPECT_EQ(::getsockname(listen_,
                                reinterpret_cast<sockaddr *>(&addr),
                                &len),
                  0);
        port_ = ntohs(addr.sin_port);
        thread_ = std::thread([this, session] {
            const int client = ::accept(listen_, nullptr, nullptr);
            if (client >= 0) {
                session(client);
                ::close(client);
            }
        });
    }

    ~StubServer()
    {
        thread_.join();
        ::close(listen_);
    }

    std::uint16_t port() const { return port_; }

  private:
    int listen_ = -1;
    std::uint16_t port_ = 0;
    std::thread thread_;
};

/** Drain whatever request bytes the client sent (best effort). */
void
drainRequest(int fd)
{
    char buf[4096];
    (void)::recv(fd, buf, sizeof(buf), 0);
}

void
sendAll(int fd, const std::string &bytes)
{
    (void)::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL);
}

TEST(HttpClient, SlowLorisDripTimesOutAtTheDeadline)
{
    // The server drips one header byte every 50 ms forever: progress
    // never stops, but the response never completes. The deadline is
    // absolute wall clock, so the drip must not extend it.
    StubServer server([](int fd) {
        drainRequest(fd);
        const std::string drip = "HTTP/1.1 200 OK\r\nContent-Type: "
                                 "text/plain\r\nX-Padding: ";
        for (std::size_t i = 0;; i = (i + 1) % drip.size()) {
            const ssize_t n =
                ::send(fd, drip.data() + i, 1, MSG_NOSIGNAL);
            if (n <= 0)
                return; // client gave up and closed
            std::this_thread::sleep_for(
                std::chrono::milliseconds(50));
        }
    });

    HttpResponse response;
    std::string error;
    const auto start = Clock::now();
    const bool ok = httpGet("127.0.0.1", server.port(), "/metrics",
                            response, error, 400);
    EXPECT_FALSE(ok);
    EXPECT_EQ(error, "timed out");
    EXPECT_GE(elapsedMs(start), 300);
    EXPECT_LT(elapsedMs(start), 5000)
        << "deadline did not bound the slow-loris drip";
}

TEST(HttpClient, HeaderOnlyStallTimesOutAtTheDeadline)
{
    // Headers start but the blank-line terminator never arrives and
    // the connection stays open: the client must not wait for EOF
    // beyond its deadline.
    StubServer server([](int fd) {
        drainRequest(fd);
        sendAll(fd, "HTTP/1.1 200 OK\r\n"
                    "Content-Type: text/plain\r\n");
        // Hold the connection open until the client closes it.
        char buf[16];
        while (::recv(fd, buf, sizeof(buf), 0) > 0) {
        }
    });

    HttpResponse response;
    std::string error;
    const auto start = Clock::now();
    const bool ok = httpGet("127.0.0.1", server.port(), "/metrics",
                            response, error, 400);
    EXPECT_FALSE(ok);
    EXPECT_EQ(error, "timed out");
    EXPECT_GE(elapsedMs(start), 300);
    EXPECT_LT(elapsedMs(start), 5000);
}

TEST(HttpClient, MidBodyEofReturnsPromptlyWithTheReceivedBody)
{
    // Connection-close framing: the body ends at EOF, so a server
    // that closes early ends the request cleanly — well inside the
    // deadline, with exactly the bytes that made it across.
    StubServer server([](int fd) {
        drainRequest(fd);
        sendAll(fd, "HTTP/1.1 200 OK\r\n"
                    "Content-Type: text/plain\r\n"
                    "\r\n"
                    "partial body");
    });

    HttpResponse response;
    std::string error;
    const auto start = Clock::now();
    const bool ok = httpGet("127.0.0.1", server.port(), "/metrics",
                            response, error, 5000);
    EXPECT_TRUE(ok) << error;
    EXPECT_EQ(response.status, 200);
    EXPECT_EQ(response.contentType, "text/plain");
    EXPECT_EQ(response.body, "partial body");
    EXPECT_LT(elapsedMs(start), 2000)
        << "a closed connection must not wait out the deadline";
}

TEST(HttpClient, ImmediateEofBeforeHeadersFailsCleanly)
{
    // EOF before any header terminator is a malformed response, not
    // a hang and not a success.
    StubServer server([](int fd) { drainRequest(fd); });

    HttpResponse response;
    std::string error;
    const bool ok = httpGet("127.0.0.1", server.port(), "/healthz",
                            response, error, 2000);
    EXPECT_FALSE(ok);
    EXPECT_NE(error.find("no header terminator"), std::string::npos)
        << error;
}

TEST(HttpClient, ParseHttpUrlSplitsAuthorityAndPath)
{
    std::string host, path;
    std::uint16_t port = 0;
    ASSERT_TRUE(parseHttpUrl("http://127.0.0.1:9180/metrics", host,
                             port, path));
    EXPECT_EQ(host, "127.0.0.1");
    EXPECT_EQ(port, 9180);
    EXPECT_EQ(path, "/metrics");
    ASSERT_TRUE(parseHttpUrl("http://localhost/x", host, port, path));
    EXPECT_EQ(port, 80);
    EXPECT_FALSE(parseHttpUrl("https://127.0.0.1/", host, port, path));
    EXPECT_FALSE(parseHttpUrl("http://:1/", host, port, path));
    EXPECT_FALSE(
        parseHttpUrl("http://h:99999/", host, port, path));
}

} // namespace
} // namespace specpmt::obs
