/**
 * @file
 * Unit tests for the common utility layer: CRC32C, mixing hashes,
 * deterministic RNG, statistics helpers, and geometry helpers.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/crc32.hh"
#include "common/hash.hh"
#include "common/rand.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace specpmt
{
namespace
{

TEST(Crc32, KnownVectors)
{
    // CRC32C ("123456789") = 0xE3069283 is the canonical check value.
    EXPECT_EQ(crc32c("123456789", 9), 0xE3069283u);
    EXPECT_EQ(crc32c("", 0), 0u);
}

TEST(Crc32, IncrementalMatchesOneShot)
{
    const char data[] = "speculative logging amortizes fences";
    const std::size_t n = sizeof(data) - 1;
    const std::uint32_t whole = crc32c(data, n);
    for (std::size_t split = 0; split <= n; ++split) {
        const std::uint32_t first = crc32c(data, split);
        const std::uint32_t second = crc32c(data + split, n - split,
                                            first);
        EXPECT_EQ(second, whole) << "split at " << split;
    }
}

TEST(Crc32, DetectsSingleBitFlips)
{
    std::uint8_t buffer[64];
    for (std::size_t i = 0; i < sizeof(buffer); ++i)
        buffer[i] = static_cast<std::uint8_t>(i * 7 + 1);
    const std::uint32_t clean = crc32c(buffer, sizeof(buffer));
    for (std::size_t byte = 0; byte < sizeof(buffer); ++byte) {
        for (int bit = 0; bit < 8; ++bit) {
            buffer[byte] ^= (1u << bit);
            EXPECT_NE(crc32c(buffer, sizeof(buffer)), clean);
            buffer[byte] ^= (1u << bit);
        }
    }
}

TEST(Hash, Mix64IsInjectiveOnSmallRange)
{
    std::set<std::uint64_t> seen;
    for (std::uint64_t i = 0; i < 10000; ++i)
        EXPECT_TRUE(seen.insert(mix64(i)).second);
}

TEST(Hash, CombineOrderMatters)
{
    EXPECT_NE(hashCombine(1, 2), hashCombine(2, 1));
}

TEST(Rng, DeterministicForSeed)
{
    Rng a(7), b(7), c(8);
    for (int i = 0; i < 100; ++i) {
        const auto va = a.next();
        EXPECT_EQ(va, b.next());
        (void)c;
    }
    Rng d(8);
    EXPECT_NE(Rng(7).next(), d.next());
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(3);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 20000; ++i) {
        const auto v = rng.range(5, 8);
        EXPECT_GE(v, 5u);
        EXPECT_LE(v, 8u);
        saw_lo |= (v == 5);
        saw_hi |= (v == 8);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIsRoughlyUniform)
{
    Rng rng(11);
    double sum = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Stats, Geomean)
{
    EXPECT_DOUBLE_EQ(geomean({4.0}), 4.0);
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

TEST(Stats, CounterSet)
{
    CounterSet counters;
    EXPECT_EQ(counters.get("missing"), 0u);
    counters.add("fences");
    counters.add("fences", 4);
    EXPECT_EQ(counters.get("fences"), 5u);
    counters.clear();
    EXPECT_EQ(counters.get("fences"), 0u);
}

TEST(Types, LineGeometry)
{
    EXPECT_EQ(lineBase(0), 0u);
    EXPECT_EQ(lineBase(63), 0u);
    EXPECT_EQ(lineBase(64), 64u);
    EXPECT_EQ(lineIndex(127), 1u);
    EXPECT_EQ(lineSpan(0, 0), 0u);
    EXPECT_EQ(lineSpan(0, 1), 1u);
    EXPECT_EQ(lineSpan(63, 2), 2u);
    EXPECT_EQ(lineSpan(0, 64), 1u);
    EXPECT_EQ(lineSpan(0, 65), 2u);
    EXPECT_EQ(pageBase(4097), 4096u);
    EXPECT_EQ(pageIndex(8191), 1u);
}

} // namespace
} // namespace specpmt
