/**
 * @file
 * Tests of the Section 5.2.2 multi-threaded epoch reclamation
 * protocol, including the exact Figure 11 hazard.
 */

#include <gtest/gtest.h>

#include "sim/epoch_protocol.hh"

namespace specpmt::sim
{
namespace
{

TEST(EpochProtocol, OpenEpochIsNotReclaimable)
{
    EpochProtocol protocol;
    const auto e = protocol.startEpoch(0, 1, 10);
    EXPECT_FALSE(protocol.canReclaim(e));
}

TEST(EpochProtocol, ClosedButIdNotReassignedIsStillActive)
{
    EpochProtocol protocol;
    const auto e = protocol.startEpoch(0, 1, 10);
    protocol.endEpoch(e, 20);
    // Closed, but its records may still guard data updated by later
    // transactions of this thread until the ID is reassigned.
    EXPECT_FALSE(protocol.canReclaim(e));
}

TEST(EpochProtocol, InactiveEpochWithNoOverlapReclaims)
{
    EpochProtocol protocol;
    const auto e1 = protocol.startEpoch(0, 1, 10);
    protocol.endEpoch(e1, 20);
    const auto e2 = protocol.startEpoch(0, 1, 30); // reassigns ID 1
    EXPECT_TRUE(protocol.span(e1).inactive());
    EXPECT_TRUE(protocol.canReclaim(e1));
    (void)e2;
}

TEST(EpochProtocol, Figure11HazardIsBlocked)
{
    // Thread 1 writes w1 inside an epoch that stays active; thread 2
    // wants to reclaim its own epoch that overlaps thread 1's. If it
    // did, a crash during thread 1's later w3 could not be revoked.
    EpochProtocol protocol;
    const auto t1 = protocol.startEpoch(1, 1, 10); // thread 1, open
    const auto t2 = protocol.startEpoch(2, 1, 12);
    protocol.endEpoch(t2, 20);
    protocol.startEpoch(2, 1, 25); // reassign: t2 inactive

    EXPECT_TRUE(protocol.span(t2).inactive());
    EXPECT_FALSE(protocol.canReclaim(t2))
        << "thread 1's epoch started before t2 ended: reclaim unsafe";
    (void)t1;
}

TEST(EpochProtocol, ReclaimAllowedOnceAllActiveEpochsStartLater)
{
    EpochProtocol protocol;
    const auto t2 = protocol.startEpoch(2, 1, 12);
    protocol.endEpoch(t2, 20);
    protocol.startEpoch(2, 1, 25);

    // A fresh epoch on thread 1 starting after t2 ended is harmless.
    const auto t1 = protocol.startEpoch(1, 1, 30);
    EXPECT_TRUE(protocol.canReclaim(t2));
    (void)t1;
}

TEST(EpochProtocol, ReassignmentRetiresOnlySameThreadSameId)
{
    EpochProtocol protocol;
    const auto a = protocol.startEpoch(0, 1, 10);
    protocol.endEpoch(a, 15);
    const auto b = protocol.startEpoch(0, 2, 16); // different ID
    protocol.endEpoch(b, 18);
    EXPECT_FALSE(protocol.span(a).inactive());
    protocol.startEpoch(1, 1, 20); // different thread, same ID
    EXPECT_FALSE(protocol.span(a).inactive());
    protocol.startEpoch(0, 1, 22); // same thread, same ID
    EXPECT_TRUE(protocol.span(a).inactive());
}

} // namespace
} // namespace specpmt::sim
