/**
 * @file
 * Metrics registry tests: exact multi-threaded counter sums,
 * torn-free snapshots under concurrent writers, golden Prometheus
 * and JSON expositions, the text-exposition parser, and the
 * LatencyHistogram::toJson contract (bucket bounds pinned to
 * bucketLowerBound/bucketUpperBound).
 */

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/stats.hh"
#include "obs/metrics.hh"

using namespace specpmt;

namespace
{

TEST(Counter, MultiThreadedAddsSumExactly)
{
    obs::Registry registry;
    auto &counter = registry.counter("t_ops_total", "test ops");
    constexpr unsigned kThreads = 8;
    constexpr std::uint64_t kAddsPerThread = 100000;

    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&counter] {
            for (std::uint64_t i = 0; i < kAddsPerThread; ++i)
                counter.add();
        });
    }
    for (auto &thread : threads)
        thread.join();

    EXPECT_EQ(counter.value(), kThreads * kAddsPerThread);
    EXPECT_EQ(registry.snapshot().counters.at("t_ops_total"),
              kThreads * kAddsPerThread);
}

TEST(Counter, SnapshotsAreTornFreeAndMonotone)
{
    obs::Registry registry;
    auto &counter = registry.counter("t_mono_total");
    std::atomic<bool> stop{false};

    std::vector<std::thread> writers;
    for (unsigned t = 0; t < 4; ++t) {
        writers.emplace_back([&] {
            while (!stop.load(std::memory_order_relaxed))
                counter.add(3);
        });
    }

    // Concurrent snapshots must never go backwards and never tear
    // (a torn 64-bit read would show up as a wild jump either way).
    std::uint64_t last = 0;
    for (int i = 0; i < 2000; ++i) {
        const std::uint64_t seen =
            registry.snapshot().counters.at("t_mono_total");
        EXPECT_GE(seen, last);
        last = seen;
    }
    stop.store(true);
    for (auto &writer : writers)
        writer.join();
    EXPECT_GE(counter.value(), last);
    EXPECT_EQ(counter.value() % 3, 0u);
}

TEST(Gauge, SetAndAdd)
{
    obs::Registry registry;
    auto &gauge = registry.gauge("t_level");
    gauge.set(-5);
    EXPECT_EQ(gauge.value(), -5);
    gauge.add(15);
    EXPECT_EQ(gauge.value(), 10);
    EXPECT_EQ(registry.snapshot().gauges.at("t_level"), 10);
}

TEST(Histogram, RecordAndBulkMergeAgree)
{
    obs::Registry registry;
    auto &hist = registry.histogram("t_lat_ns");
    hist.record(10);
    hist.record(20);

    LatencyHistogram local;
    local.record(30);
    local.record(40);
    hist.mergeFrom(local);

    const LatencyHistogram merged = hist.snapshot();
    EXPECT_EQ(merged.count(), 4u);
    EXPECT_EQ(merged.sum(), 100u);
    EXPECT_EQ(merged.max(), 40u);
}

TEST(Registry, SameNameAndLabelsReturnsSameInstrument)
{
    obs::Registry registry;
    auto &a = registry.counter("t_same", "", {{"k", "v"}});
    auto &b = registry.counter("t_same", "", {{"k", "v"}});
    auto &c = registry.counter("t_same", "", {{"k", "other"}});
    EXPECT_EQ(&a, &b);
    EXPECT_NE(&a, &c);
}

TEST(Registry, ExpositionNameEscapesLabelValues)
{
    EXPECT_EQ(obs::expositionName("m", {{"k", "a\"b\\c"}}),
              "m{k=\"a\\\"b\\\\c\"}");
    EXPECT_EQ(obs::expositionName("m", {}), "m");
    EXPECT_EQ(obs::expositionName(
                  "m", {{"a", "1"}, {"b", "2"}}),
              "m{a=\"1\",b=\"2\"}");
}

TEST(Registry, ExpositionNameEscapesNewlines)
{
    // A raw newline in a label value would split the sample across
    // two exposition lines; it must leave as the two-byte escape.
    const std::string name =
        obs::expositionName("m", {{"k", "line1\nline2"}});
    EXPECT_EQ(name, "m{k=\"line1\\nline2\"}");
    EXPECT_EQ(name.find('\n'), std::string::npos);
    // All three escapes stacked in one value.
    EXPECT_EQ(obs::expositionName("m", {{"k", "\\\"\n"}}),
              "m{k=\"\\\\\\\"\\n\"}");
}

TEST(Registry, SanitizeMetricNameForcesPrometheusCharset)
{
    EXPECT_EQ(obs::sanitizeMetricName("good_name:total"),
              "good_name:total");
    EXPECT_EQ(obs::sanitizeMetricName("has space"), "has_space");
    EXPECT_EQ(obs::sanitizeMetricName("has-dash.dot"), "has_dash_dot");
    // A leading digit gains a '_' prefix instead of being dropped.
    EXPECT_EQ(obs::sanitizeMetricName("9lives"), "_9lives");
    EXPECT_EQ(obs::sanitizeMetricName(""), "_");
    EXPECT_EQ(obs::sanitizeMetricName("\x01\xff"), "___");
}

TEST(Registry, IllegalInstrumentNamesAreSanitizedOnRegistration)
{
    obs::Registry registry;
    registry.counter("bad name-1").add(7);
    const auto snapshot = registry.snapshot();
    EXPECT_EQ(snapshot.counters.at("bad_name_1"), 7u);
    // The sanitized exposition must survive the parser.
    obs::FlatSamples samples;
    std::string error;
    ASSERT_TRUE(obs::parsePrometheus(snapshot.toPrometheus(), samples,
                                     error))
        << error;
    EXPECT_EQ(samples.at("bad_name_1"), 7.0);
    // Same raw name again resolves to the same instrument.
    registry.counter("bad name-1").add(1);
    EXPECT_EQ(registry.snapshot().counters.at("bad_name_1"), 8u);
}

TEST(Exposition, EscapedLabelValuesRoundTripThroughParser)
{
    obs::Registry registry;
    registry
        .counter("esc_total", "",
                 {{"path", "a\"b\\c"}, {"note", "two\nlines"}})
        .add(11);
    const std::string text = registry.snapshot().toPrometheus();
    obs::FlatSamples samples;
    std::string error;
    ASSERT_TRUE(obs::parsePrometheus(text, samples, error)) << error;
    const std::string key = obs::expositionName(
        "esc_total", {{"path", "a\"b\\c"}, {"note", "two\nlines"}});
    ASSERT_EQ(samples.size(), 1u);
    EXPECT_EQ(samples.at(key), 11.0);
}

/** A registry with one of everything, with deterministic contents. */
obs::Registry &
goldenRegistry()
{
    static obs::Registry registry;
    static bool filled = false;
    if (!filled) {
        filled = true;
        registry.counter("test_ops_total", "ops processed").add(3);
        registry.counter("test_ops_total", "", {{"kind", "read"}})
            .add(2);
        registry.gauge("test_level", "current level").set(-5);
        auto &hist = registry.histogram("test_lat_ns", "latency");
        hist.record(1);
        hist.record(2);
        hist.record(3);
    }
    return registry;
}

TEST(Exposition, PrometheusGolden)
{
    const std::string expected =
        "# HELP test_ops_total ops processed\n"
        "# TYPE test_ops_total counter\n"
        "test_ops_total 3\n"
        "test_ops_total{kind=\"read\"} 2\n"
        "# HELP test_level current level\n"
        "# TYPE test_level gauge\n"
        "test_level -5\n"
        "# HELP test_lat_ns latency\n"
        "# TYPE test_lat_ns histogram\n"
        "test_lat_ns_bucket{le=\"1\"} 1\n"
        "test_lat_ns_bucket{le=\"2\"} 2\n"
        "test_lat_ns_bucket{le=\"3\"} 3\n"
        "test_lat_ns_bucket{le=\"+Inf\"} 3\n"
        "test_lat_ns_sum 6\n"
        "test_lat_ns_count 3\n";
    EXPECT_EQ(goldenRegistry().snapshot().toPrometheus(), expected);
}

TEST(Exposition, JsonGolden)
{
    const std::string expected =
        "{\n"
        "  \"counters\": {\n"
        "    \"test_ops_total\": 3,\n"
        "    \"test_ops_total{kind=\\\"read\\\"}\": 2\n"
        "  },\n"
        "  \"gauges\": {\n"
        "    \"test_level\": -5\n"
        "  },\n"
        "  \"histograms\": {\n"
        "    \"test_lat_ns\": {\"count\": 3, \"sum\": 6, \"max\": 3, "
        "\"buckets\": [[1, 1, 1], [2, 2, 1], [3, 3, 1]]}\n"
        "  }\n"
        "}\n";
    EXPECT_EQ(goldenRegistry().snapshot().toJson(), expected);
}

TEST(Exposition, PrometheusRoundTripsThroughParser)
{
    obs::FlatSamples samples;
    std::string error;
    ASSERT_TRUE(obs::parsePrometheus(
        goldenRegistry().snapshot().toPrometheus(), samples, error))
        << error;
    EXPECT_EQ(samples.at("test_ops_total"), 3.0);
    EXPECT_EQ(samples.at("test_ops_total{kind=\"read\"}"), 2.0);
    EXPECT_EQ(samples.at("test_level"), -5.0);
    EXPECT_EQ(samples.at("test_lat_ns_bucket{le=\"+Inf\"}"), 3.0);
    EXPECT_EQ(samples.at("test_lat_ns_sum"), 6.0);
    EXPECT_EQ(samples.at("test_lat_ns_count"), 3.0);
}

TEST(Exposition, ParserRejectsMalformedLines)
{
    obs::FlatSamples samples;
    std::string error;
    EXPECT_FALSE(obs::parsePrometheus("name_only\n", samples, error));
    EXPECT_FALSE(obs::parsePrometheus("1bad 3\n", samples, error));
    EXPECT_FALSE(obs::parsePrometheus("name 1.2.3\n", samples, error));
    EXPECT_FALSE(
        obs::parsePrometheus("name{unterminated 3\n", samples, error));
    EXPECT_TRUE(obs::parsePrometheus(
        "# comment only\n\nok_name 42\n", samples, error))
        << error;
    EXPECT_EQ(samples.at("ok_name"), 42.0);
}

TEST(LatencyHistogramJson, GoldenForExactSmallBuckets)
{
    LatencyHistogram hist;
    hist.record(1);
    hist.record(2);
    hist.record(2);
    hist.record(3);
    EXPECT_EQ(hist.toJson(),
              "{\"count\": 4, \"sum\": 8, \"max\": 3, \"buckets\": "
              "[[1, 1, 1], [2, 2, 2], [3, 3, 1]]}");
}

TEST(LatencyHistogramJson, BucketBoundsMatchTheStaticFunctions)
{
    // Large values land in range buckets; the JSON must carry exactly
    // the bounds bucketLowerBound/bucketUpperBound report, so a
    // consumer can reconstruct the distribution from either source.
    LatencyHistogram hist;
    const std::uint64_t value = 1000000;
    hist.record(value);

    const auto &buckets = hist.buckets();
    unsigned index = 0;
    for (unsigned i = 0; i < LatencyHistogram::kBuckets; ++i) {
        if (buckets[i] != 0) {
            index = i;
            break;
        }
    }
    const std::string expected =
        "[[" +
        std::to_string(LatencyHistogram::bucketLowerBound(index)) +
        ", " +
        std::to_string(LatencyHistogram::bucketUpperBound(index)) +
        ", 1]]";
    EXPECT_NE(hist.toJson().find(expected), std::string::npos)
        << hist.toJson() << " missing " << expected;
    EXPECT_LE(LatencyHistogram::bucketLowerBound(index), value);
    EXPECT_GE(LatencyHistogram::bucketUpperBound(index), value);
}

TEST(Histogram, ExemplarAttachesToBucketAndLatestWins)
{
    obs::Registry registry;
    auto &hist = registry.histogram("ex_lat_ns", "latency");
    hist.record(2, 111);
    hist.record(2, 222); // same bucket: the later exemplar wins
    hist.record(3);      // no exemplar on this bucket

    const std::string text = registry.snapshot().toPrometheus();
    EXPECT_NE(text.find("ex_lat_ns_bucket{le=\"2\"} 2 "
                        "# {trace_id=\"222\"} 2"),
              std::string::npos)
        << text;
    EXPECT_EQ(text.find("trace_id=\"111\""), std::string::npos);
    EXPECT_NE(text.find("ex_lat_ns_bucket{le=\"3\"} 3\n"),
              std::string::npos)
        << "exemplar leaked onto a bucket that never got one";

    // The text parser strips exemplars: samples stay purely numeric.
    obs::FlatSamples samples;
    std::string error;
    ASSERT_TRUE(obs::parsePrometheus(text, samples, error)) << error;
    EXPECT_EQ(samples.at("ex_lat_ns_bucket{le=\"2\"}"), 2.0);
    EXPECT_EQ(samples.at("ex_lat_ns_count"), 3.0);
}

TEST(Histogram, NoExemplarMeansByteIdenticalExposition)
{
    // record() without an exemplar id must serialize exactly like the
    // pre-exemplar format — the golden tests above pin the full text;
    // this pins the absence of the suffix even after mixed usage.
    obs::Registry registry;
    auto &hist = registry.histogram("plain_lat_ns");
    hist.record(5);
    hist.record(7, 0); // id 0 = no exemplar
    const std::string text = registry.snapshot().toPrometheus();
    EXPECT_EQ(text.find(" # {"), std::string::npos) << text;
}

TEST(FloatGauge, InterleavesIntoGaugeSections)
{
    obs::Registry registry;
    registry.gauge("t_a_level").set(4);
    registry.floatGauge("t_b_ratio", "derived ratio").set(1.5);
    registry.gauge("t_c_level").set(9);

    const std::string text = registry.snapshot().toPrometheus();
    // All three land in gauge sections, sorted by name.
    const auto a = text.find("t_a_level 4");
    const auto b = text.find("t_b_ratio 1.5");
    const auto c = text.find("t_c_level 9");
    ASSERT_NE(a, std::string::npos) << text;
    ASSERT_NE(b, std::string::npos) << text;
    ASSERT_NE(c, std::string::npos) << text;
    EXPECT_LT(a, b);
    EXPECT_LT(b, c);
    EXPECT_NE(text.find("# TYPE t_b_ratio gauge"), std::string::npos);

    obs::FlatSamples samples;
    std::string error;
    ASSERT_TRUE(obs::parsePrometheus(text, samples, error)) << error;
    EXPECT_DOUBLE_EQ(samples.at("t_b_ratio"), 1.5);
}

TEST(Exposition, EmptyRegistrySerializes)
{
    obs::Registry registry;
    EXPECT_EQ(registry.snapshot().toPrometheus(), "");
    const std::string json = registry.snapshot().toJson();
    EXPECT_NE(json.find("\"counters\""), std::string::npos);
    obs::FlatSamples samples;
    std::string error;
    EXPECT_TRUE(obs::parsePrometheus("", samples, error));
    EXPECT_TRUE(samples.empty());
}

} // namespace
