/**
 * @file
 * Golden and fuzz tests of the offline forensic inspector
 * (src/forensic/inspector): exact text and JSON reports for
 * hand-built committed / torn-final-seal / in-flight images, and a
 * seeded corruption fuzzer asserting the inspector never crashes and
 * never reports COMMITTED for a record whose seal does not validate.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <vector>

#include "common/rand.hh"
#include "core/splog_format.hh"
#include "forensic/inspector.hh"
#include "pmem/crash_policy.hh"
#include "pmem/image_io.hh"
#include "pmem/pmem_device.hh"
#include "txn/tx_runtime.hh"

namespace specpmt::forensic
{
namespace
{

using core::BlockHeader;
using core::EntryHead;
using core::SegHead;

std::string
hex(std::uint64_t value)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "0x%llx",
                  static_cast<unsigned long long>(value));
    return buf;
}

std::string
hex32(std::uint32_t value)
{
    char buf[16];
    std::snprintf(buf, sizeof(buf), "0x%08x", value);
    return buf;
}

/** Hand-built single-chain fixture, test_splog_format idiom. */
class PminspectTest : public ::testing::Test
{
  protected:
    static constexpr PmOff kBase = 4096;

    PminspectTest() : dev_(1 << 20) {}

    void
    publishChain(unsigned tid, PmOff head)
    {
        dev_.storeT<PmOff>(txn::logHeadSlot(tid) * sizeof(PmOff),
                           head);
    }

    void
    writeBlock(PmOff off, std::uint64_t capacity, PmOff next)
    {
        BlockHeader header{next, kPmNull, capacity, 0};
        dev_.storeT(off, header);
        dev_.storeT<std::uint64_t>(off + sizeof(BlockHeader), 0);
    }

    /**
     * Append a segment at @p pos; final seals attest @p tx_segments.
     * Returns bytes used.
     */
    std::size_t
    writeSegment(PmOff pos, TxTimestamp ts, bool final,
                 std::uint32_t tx_segments,
                 const std::vector<std::uint64_t> &values)
    {
        std::size_t bytes = sizeof(SegHead);
        PmOff cursor = pos + sizeof(SegHead);
        for (std::size_t i = 0; i < values.size(); ++i) {
            EntryHead ehead{0x10000 + i * 8, 8, 0};
            dev_.storeT(cursor, ehead);
            dev_.storeT(cursor + sizeof(EntryHead), values[i]);
            cursor += core::entryBytes(8);
            bytes += core::entryBytes(8);
        }
        SegHead head;
        head.sizeBytes = static_cast<std::uint32_t>(bytes);
        head.timestamp = ts;
        head.flags = final ? core::segFlagsWithCount(core::kSegFinal,
                                                     tx_segments)
                           : 0;
        head.numEntries = static_cast<std::uint32_t>(values.size());
        head.crc = core::segmentCrc(dev_, pos, head);
        dev_.storeT(pos, head);
        dev_.storeT<std::uint64_t>(pos + bytes, 0);
        return bytes;
    }

    pmem::PmemDevice dev_;
};

TEST_F(PminspectTest, CommittedGoldenTextAndJson)
{
    publishChain(0, kBase);
    writeBlock(kBase, 4096, kPmNull);
    writeSegment(kBase + sizeof(BlockHeader), 7, true, 1,
                 {11, 22, 33});

    const auto report = inspectImage(dev_, 1, "fixture");
    EXPECT_EQ(report.toText(),
              "pminspect report: fixture\n"
              "device: 1048576 bytes\n"
              "chains: 1\n"
              "chain tid=0 head=0x1000 blocks=1 tail=clean\n"
              "  COMMITTED ts=7 segs=1 entries=3 at=0x1020"
              " final-seal(count=1)\n"
              "    reason: final seal at 0x1020 attests 1 segment(s);"
              " run has 1\n"
              "flight recorder: absent\n"
              "summary: committed=1 torn=0 in-flight=0\n");

    EXPECT_EQ(
        report.toJson(),
        "{\n"
        "  \"image\": {\"source\": \"fixture\", \"bytes\": 1048576},\n"
        "  \"chains\": [\n"
        "    {\"tid\": 0, \"head\": 4096, \"blocks\": [4096],"
        " \"tornTail\": false, \"tailPos\": 4224, \"tailDetail\":"
        " \"\", \"lastCommittedEnd\": 4224,\n"
        "     \"txs\": [\n"
        "      {\"verdict\": \"COMMITTED\", \"ts\": 7, \"reason\":"
        " \"final seal at 0x1020 attests 1 segment(s); run has 1\","
        " \"segments\": [{\"pos\": 4128, \"sizeBytes\": 96,"
        " \"timestamp\": 7, \"final\": true, \"txSegments\": 1,"
        " \"numEntries\": 3}], \"entries\": [{\"off\": 65536,"
        " \"size\": 8}, {\"off\": 65544, \"size\": 8},"
        " {\"off\": 65552, \"size\": 8}]}]}\n"
        "  ],\n"
        "  \"flight\": {\"present\": false, \"error\": \"\","
        " \"capacity\": 0, \"invalidSlots\": 0, \"records\": []},\n"
        "  \"summary\": {\"committed\": 1, \"torn\": 0,"
        " \"inFlight\": 0}\n"
        "}\n");
}

TEST_F(PminspectTest, InFlightGoldenText)
{
    publishChain(0, kBase);
    writeBlock(kBase, 4096, kPmNull);
    writeSegment(kBase + sizeof(BlockHeader), 5, false, 0, {99});

    const auto report = inspectImage(dev_, 1, "fixture");
    EXPECT_EQ(report.toText(),
              "pminspect report: fixture\n"
              "device: 1048576 bytes\n"
              "chains: 1\n"
              "chain tid=0 head=0x1000 blocks=1 tail=clean\n"
              "  IN-FLIGHT ts=5 segs=1 entries=1 at=0x1020\n"
              "    reason: no final seal; log ends in clean tail"
              " poison (crash between txBegin and the commit seal)\n"
              "flight recorder: absent\n"
              "summary: committed=0 torn=0 in-flight=1\n");
}

TEST_F(PminspectTest, TornFinalSealGoldenText)
{
    publishChain(0, kBase);
    writeBlock(kBase, 4096, kPmNull);
    PmOff pos = kBase + sizeof(BlockHeader);
    pos += writeSegment(pos, 1, true, 1, {11});
    writeSegment(pos, 2, true, 1, {22});

    // Flip the low bit of the second seal's stored crc: the commit
    // seal itself is torn.
    const auto stored = dev_.loadT<std::uint32_t>(pos) ^ 1u;
    dev_.storeT<std::uint32_t>(pos, stored);
    const auto computed =
        core::segmentCrc(dev_, pos, dev_.loadT<SegHead>(pos));

    const auto report = inspectImage(dev_, 1, "fixture");
    EXPECT_EQ(report.toText(),
              "pminspect report: fixture\n"
              "device: 1048576 bytes\n"
              "chains: 1\n"
              "chain tid=0 head=0x1000 blocks=1 tail=torn@" +
                  hex(pos) +
                  "\n"
                  "  COMMITTED ts=1 segs=1 entries=1 at=0x1020"
                  " final-seal(count=1)\n"
                  "    reason: final seal at 0x1020 attests 1"
                  " segment(s); run has 1\n"
                  "  TORN ts=0 segs=0 entries=0\n"
                  "    reason: torn record at chain tail: seal crc"
                  " mismatch at " +
                  hex(pos) + ": stored " + hex32(stored) +
                  ", computed " + hex32(computed) +
                  " (sizeBytes=48, ts=2, entries=1)\n"
                  "flight recorder: absent\n"
                  "summary: committed=1 torn=1 in-flight=0\n");
    EXPECT_EQ(report.torn, 1u);
    ASSERT_FALSE(report.chains.empty());
    EXPECT_TRUE(report.chains[0].tornTail);
    // Recovery re-adopts at the committed prefix, before the torn seal.
    EXPECT_EQ(report.chains[0].lastCommittedEnd, pos);
}

TEST_F(PminspectTest, SegCountMismatchClassifiesTorn)
{
    publishChain(0, kBase);
    writeBlock(kBase, 4096, kPmNull);
    PmOff pos = kBase + sizeof(BlockHeader);
    pos += writeSegment(pos, 3, false, 0, {1});
    // Final seal claims 3 segments; only 2 survived.
    writeSegment(pos, 3, true, 3, {2});

    const auto report = inspectImage(dev_, 1, "fixture");
    ASSERT_EQ(report.chains.size(), 1u);
    ASSERT_EQ(report.chains[0].txs.size(), 1u);
    const auto &tx = report.chains[0].txs[0];
    EXPECT_EQ(tx.verdict, TxVerdict::Torn);
    EXPECT_NE(tx.reason.find("attests 3 segment(s) but the run has 2"),
              std::string::npos);
    EXPECT_EQ(report.torn, 1u);
}

TEST_F(PminspectTest, TimestampBreakDebrisClassifiesTorn)
{
    publishChain(0, kBase);
    writeBlock(kBase, 4096, kPmNull);
    PmOff pos = kBase + sizeof(BlockHeader);
    pos += writeSegment(pos, 1, false, 0, {1}); // interrupted tx
    writeSegment(pos, 2, true, 1, {2});         // next tx commits

    const auto report = inspectImage(dev_, 1, "fixture");
    ASSERT_EQ(report.chains.size(), 1u);
    ASSERT_EQ(report.chains[0].txs.size(), 2u);
    EXPECT_EQ(report.chains[0].txs[0].verdict, TxVerdict::Torn);
    EXPECT_NE(report.chains[0].txs[0].reason.find(
                  "no final seal before the log's timestamp changed"),
              std::string::npos);
    EXPECT_EQ(report.chains[0].txs[1].verdict, TxVerdict::Committed);
}

TEST_F(PminspectTest, AbsentChainsAreNotReported)
{
    const auto report = inspectImage(dev_, 4, "fixture");
    EXPECT_TRUE(report.chains.empty());
    EXPECT_EQ(report.committed + report.torn + report.inFlight, 0u);
}

/**
 * Seeded corruption fuzz: arbitrary bit flips and truncations must
 * never crash the inspector — and must never yield a COMMITTED
 * verdict whose seals do not actually validate on the corrupted
 * image.
 */
TEST_F(PminspectTest, FuzzedImagesNeverCrashNeverLie)
{
    publishChain(0, kBase);
    writeBlock(kBase, 256, kBase + 4096);
    writeBlock(kBase + 4096, 4096, kPmNull);
    PmOff pos = kBase + sizeof(BlockHeader);
    pos += writeSegment(pos, 1, true, 1, {11, 22});
    writeSegment(pos, 2, true, 1, {33});
    PmOff pos2 = kBase + 4096 + sizeof(BlockHeader);
    pos2 += writeSegment(pos2, 3, false, 0, {44});
    pos2 += writeSegment(pos2, 3, true, 2, {55});
    writeSegment(pos2, 4, false, 0, {66});

    const auto base_image =
        dev_.crashImage(pmem::CrashPolicy::everything());

    Rng rng(20260805);
    for (unsigned round = 0; round < 300; ++round) {
        auto image = base_image;
        if (round % 5 == 4) {
            // Truncate somewhere, root page included.
            image.resize(rng.below(image.size()));
        }
        const unsigned flips = 1 + rng.below(8);
        for (unsigned f = 0; f < flips && !image.empty(); ++f) {
            // Bias half the flips into the log area where they bite.
            const std::size_t off =
                (f % 2 == 0 && image.size() > kBase + 8192)
                    ? kBase + rng.below(8192)
                    : rng.below(image.size());
            image[off] ^= static_cast<std::uint8_t>(
                1u << rng.below(8));
        }

        const auto fuzzed = pmem::deviceFromImage(image);
        const auto report = inspectImage(*fuzzed, 4, "fuzz");

        for (const auto &chain : report.chains) {
            for (const auto &tx : chain.txs) {
                if (tx.verdict != TxVerdict::Committed)
                    continue;
                ASSERT_FALSE(tx.segs.empty()) << "round " << round;
                for (const auto &seg : tx.segs) {
                    ASSERT_LE(seg.pos + sizeof(SegHead),
                              fuzzed->size())
                        << "round " << round;
                    const auto head =
                        fuzzed->loadT<SegHead>(seg.pos);
                    ASSERT_EQ(core::segmentCrc(*fuzzed, seg.pos,
                                               head),
                              head.crc)
                        << "round " << round << ": COMMITTED with an"
                        << " invalid seal at " << seg.pos;
                }
                const auto &last = tx.segs.back();
                ASSERT_TRUE(last.final) << "round " << round;
                ASSERT_EQ(last.txSegments, tx.segs.size())
                    << "round " << round;
            }
        }
    }
}

} // namespace
} // namespace specpmt::forensic
