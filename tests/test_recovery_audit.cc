/**
 * @file
 * Acceptance test of the forensic layer's central claim: the offline
 * inspector's transaction classification agrees with what the
 * runtime's real recover() does, at *every* crash point of a full
 * crashmatrix sweep — not at a few hand-picked ones.
 *
 * For each persistence-event crash point of a deterministic workload
 * run, the post-crash image(s) are exported, classified by the
 * inspector, and audited by running real recovery on a throwaway copy
 * (forensic/recovery_audit). A single disagreement fails with the
 * replay token that reproduces it.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "forensic/inspector.hh"
#include "forensic/recovery_audit.hh"
#include "kv/kv_crash_workload.hh"
#include "pmem/crash_policy.hh"
#include "pmem/image_io.hh"
#include "sim/crash_explorer.hh"

namespace specpmt::forensic
{
namespace
{

constexpr long kNoCrash = 1L << 40;

/**
 * Sweep every crash point of @p cell's run, auditing every exported
 * image. Identical images (pruned by content hash) are audited once:
 * recovery and the inspector are both deterministic functions of the
 * image bytes.
 */
void
sweepAndAudit(const sim::CrashCell &cell,
              const sim::CrashWorkloadFactory &factory)
{
    auto counting = factory(cell);
    ASSERT_FALSE(counting->run(kNoCrash));
    const std::uint64_t events = counting->eventsConsumed();
    ASSERT_GT(events, 0u);

    std::set<std::uint64_t> seen;
    std::size_t audited = 0;
    std::size_t torn_seen = 0;
    for (std::uint64_t point = 1; point <= events; ++point) {
        auto workload = factory(cell);
        if (!workload->run(static_cast<long>(point)))
            continue; // ran to completion before the countdown
        const auto policy = cell.policyAt(point);
        for (const auto &exp : workload->exportCrashImages(policy)) {
            if (!seen.insert(sim::hashCrashImage(exp.image)).second)
                continue;
            const auto dev = pmem::deviceFromImage(exp.image);
            const auto report =
                inspectImage(*dev, exp.threads, exp.name);
            const auto audit = auditRecovery(
                exp.image, cell.runtime, exp.threads, report);
            ASSERT_TRUE(audit.supported);
            std::string detail;
            for (const auto &d : audit.disagreements)
                detail += "\n  " + d;
            EXPECT_TRUE(audit.agrees)
                << "token " << cell.token(point) << " image "
                << exp.name << detail;
            ++audited;
            torn_seen += report.torn;
        }
    }
    // The sweep must have produced real work, or the test is vacuous.
    EXPECT_GT(audited, 0u)
        << "no distinct post-crash image was ever exported";
    (void)torn_seen;
}

TEST(RecoveryAuditSweepTest, KvWorkloadEveryCrashPointAgrees)
{
    sim::CrashCell cell;
    cell.runtime = "spec";
    cell.workload = "kv";
    cell.policy = "nothing";
    cell.seed = 42;
    cell.kvShards = 2;
    cell.kvKeys = 12;
    cell.kvOps = 8;
    sweepAndAudit(cell, kv::kvCrashWorkloadFactory());
}

TEST(RecoveryAuditSweepTest, KvWorkloadRandomPolicyAgrees)
{
    // The random persist policy can drop individual pending lines,
    // producing torn seals and count mismatches: the interesting half
    // of the classification space.
    sim::CrashCell cell;
    cell.runtime = "spec";
    cell.workload = "kv";
    cell.policy = "random";
    cell.persistProbability = 0.5;
    cell.seed = 7;
    cell.kvShards = 2;
    cell.kvKeys = 12;
    cell.kvOps = 8;
    sweepAndAudit(cell, kv::kvCrashWorkloadFactory());
}

TEST(RecoveryAuditSweepTest, SlotsWorkloadRandomPolicyAgrees)
{
    sim::CrashCell cell;
    cell.runtime = "spec";
    cell.workload = "slots";
    cell.policy = "random";
    cell.persistProbability = 0.5;
    cell.seed = 42;
    cell.slots = 64;
    cell.txCount = 12;
    cell.maxStoresPerTx = 4;
    sweepAndAudit(cell, sim::builtinCrashWorkloadFactory());
}

TEST(RecoveryAuditSweepTest, SpecDpRuntimeAgrees)
{
    sim::CrashCell cell;
    cell.runtime = "spec-dp";
    cell.workload = "slots";
    cell.policy = "random";
    cell.persistProbability = 0.5;
    cell.seed = 11;
    cell.slots = 64;
    cell.txCount = 10;
    cell.maxStoresPerTx = 4;
    sweepAndAudit(cell, sim::builtinCrashWorkloadFactory());
}

} // namespace
} // namespace specpmt::forensic
