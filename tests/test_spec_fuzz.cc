/**
 * @file
 * Long-horizon randomized differential test of software SpecPMT: a
 * single pool lives through thousands of mixed operations — commits,
 * aborts, external-data adoption, synchronous reclamation cycles,
 * log-block churn — punctuated by repeated randomly-timed power
 * failures, each followed by recovery on a fresh runtime. A
 * std::map reference model tracks the committed state; after every
 * reboot the durable state must equal the committed prefix or the
 * committed prefix plus the entire in-flight transaction (commit
 * ambiguity), never anything torn.
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "common/rand.hh"
#include "core/spec_tx.hh"
#include "pmem/pmem_device.hh"
#include "pmem/pmem_pool.hh"

namespace specpmt::core
{
namespace
{

class SpecFuzzTest : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(SpecFuzzTest, SurvivesEverything)
{
    const std::uint64_t seed = GetParam();
    Rng rng(seed);

    pmem::PmemDevice dev(64u << 20);
    pmem::PmemPool pool(dev);
    SpecTxConfig config;
    config.backgroundReclaim = false;
    config.logBlockSize = 512; // force chaining and compaction
    auto tx = std::make_unique<SpecTx>(pool, 1, config);

    constexpr unsigned kSlots = 96;
    const PmOff data = pool.alloc(kSlots * 8);
    pool.setRoot(txn::kAppRootSlotBase, data);
    tx->txBegin(0);
    for (unsigned i = 0; i < kSlots; ++i)
        tx->txStoreT<std::uint64_t>(0, data + i * 8, i);
    tx->txCommit(0);

    std::map<unsigned, std::uint64_t> committed;
    for (unsigned i = 0; i < kSlots; ++i)
        committed[i] = i;
    std::map<unsigned, std::uint64_t> staged;

    unsigned reboots = 0;
    unsigned aborts = 0;
    unsigned reclaims = 0;
    for (unsigned step = 0; step < 40; ++step) {
        dev.armCrash(static_cast<long>(10 + rng.below(700)));
        try {
            for (unsigned op = 0; op < 60; ++op) {
                const double dice = rng.uniform();
                if (dice < 0.70) {
                    // A transaction of 1..5 stores; 20% abort.
                    staged.clear();
                    tx->txBegin(0);
                    const unsigned stores =
                        1 + static_cast<unsigned>(rng.below(5));
                    for (unsigned i = 0; i < stores; ++i) {
                        const auto slot = static_cast<unsigned>(
                            rng.below(kSlots));
                        const std::uint64_t value = rng.next() | 1;
                        tx->txStoreT<std::uint64_t>(0, data + slot * 8,
                                                    value);
                        staged[slot] = value;
                    }
                    if (rng.chance(0.2)) {
                        tx->txAbort(0);
                        ++aborts;
                        staged.clear();
                    } else {
                        tx->txCommit(0);
                        for (const auto &[slot, value] : staged)
                            committed[slot] = value;
                        staged.clear();
                    }
                } else if (dice < 0.85) {
                    // Read-only transaction.
                    tx->txBegin(0);
                    const auto slot =
                        static_cast<unsigned>(rng.below(kSlots));
                    const auto value = tx->txLoadT<std::uint64_t>(
                        0, data + slot * 8);
                    EXPECT_EQ(value, committed.at(slot));
                    tx->txCommit(0);
                } else if (dice < 0.95) {
                    tx->reclaimNow();
                    ++reclaims;
                } else {
                    // Re-adopt a random range as "external" data.
                    const auto slot = static_cast<unsigned>(
                        rng.below(kSlots - 8));
                    tx->adoptExternal(0, data + slot * 8, 64);
                }
            }
            dev.armCrash(-1);
        } catch (const pmem::SimulatedCrash &) {
            ++reboots;
            tx.reset();
            dev.simulateCrash(pmem::CrashPolicy::random(
                seed * 1000 + step, 0.5));
            pool.reopenAfterCrash();
            tx = std::make_unique<SpecTx>(pool, 1, config);
            tx->recover();

            // Atomicity: committed, or committed + the whole staged
            // transaction (commit ambiguity); never a torn subset.
            bool matches_committed = true;
            bool matches_overlay = true;
            for (unsigned i = 0; i < kSlots; ++i) {
                const auto actual =
                    dev.loadT<std::uint64_t>(data + i * 8);
                const auto want = committed.at(i);
                auto overlay = want;
                if (auto it = staged.find(i); it != staged.end())
                    overlay = it->second;
                matches_committed &= (actual == want);
                matches_overlay &= (actual == overlay);
            }
            ASSERT_TRUE(matches_committed || matches_overlay)
                << "torn state after reboot " << reboots << " (step "
                << step << ", seed " << seed << ")";

            // Rebaseline on whichever legal state survived.
            for (unsigned i = 0; i < kSlots; ++i)
                committed[i] = dev.loadT<std::uint64_t>(data + i * 8);
            staged.clear();
        }
    }

    // Clean shutdown: final state must match exactly and be durable.
    tx->shutdown();
    dev.simulateCrash(pmem::CrashPolicy::nothing());
    for (unsigned i = 0; i < kSlots; ++i)
        EXPECT_EQ(dev.loadT<std::uint64_t>(data + i * 8),
                  committed.at(i));

    // The scenario must actually have exercised the machinery.
    EXPECT_GT(reboots + aborts + reclaims, 5u) << "degenerate run";
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpecFuzzTest,
                         ::testing::Range<std::uint64_t>(1, 13));

} // namespace
} // namespace specpmt::core
