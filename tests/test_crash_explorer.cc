/**
 * @file
 * Tests for the crash-schedule exploration engine itself: replay-token
 * round-tripping, exhaustive coverage accounting, prune soundness,
 * shard partitioning, bounded exploration, and — the test of the
 * tester — an injected commit-fence regression must be caught and
 * reproduce from its replay token.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "sim/crash_explorer.hh"

namespace specpmt::sim
{
namespace
{

CrashCell
smallSlotsCell()
{
    CrashCell cell;
    cell.runtime = "spec";
    cell.workload = "slots";
    cell.policy = "nothing";
    cell.seed = 42;
    cell.txCount = 8;
    return cell;
}

TEST(ReplayToken, RoundTripsEveryCellField)
{
    CrashCell cell;
    cell.runtime = "spec-dp";
    cell.workload = "kv";
    cell.policy = "random";
    cell.persistProbability = 0.25;
    cell.seed = 987654321;
    cell.fault = "drop-fences";
    cell.slots = 17;
    cell.txCount = 33;
    cell.maxStoresPerTx = 9;
    cell.reclaimEvery = 5;
    cell.kvShards = 3;
    cell.kvKeys = 77;
    cell.kvOps = 11;
    cell.scale = 0.125;

    const std::string token = cell.token(4242);

    CrashCell parsed;
    std::uint64_t event = 0;
    std::string error;
    ASSERT_TRUE(CrashCell::parseToken(token, parsed, event, error))
        << error;
    EXPECT_EQ(event, 4242u);
    EXPECT_EQ(parsed.runtime, cell.runtime);
    EXPECT_EQ(parsed.workload, cell.workload);
    EXPECT_EQ(parsed.policy, cell.policy);
    EXPECT_EQ(parsed.persistProbability, cell.persistProbability);
    EXPECT_EQ(parsed.seed, cell.seed);
    EXPECT_EQ(parsed.fault, cell.fault);
    EXPECT_EQ(parsed.slots, cell.slots);
    EXPECT_EQ(parsed.txCount, cell.txCount);
    EXPECT_EQ(parsed.maxStoresPerTx, cell.maxStoresPerTx);
    EXPECT_EQ(parsed.reclaimEvery, cell.reclaimEvery);
    EXPECT_EQ(parsed.kvShards, cell.kvShards);
    EXPECT_EQ(parsed.kvKeys, cell.kvKeys);
    EXPECT_EQ(parsed.kvOps, cell.kvOps);
    EXPECT_EQ(parsed.scale, cell.scale);
    // The re-serialized token must be bit-identical (tokens are keys).
    EXPECT_EQ(parsed.token(event), token);
}

TEST(ReplayToken, RejectsMalformedInput)
{
    CrashCell cell;
    std::uint64_t event = 0;
    std::string error;
    EXPECT_FALSE(CrashCell::parseToken("", cell, event, error));
    EXPECT_FALSE(
        CrashCell::parseToken("bogus;rt=spec;ev=1", cell, event, error));
    // Missing the event id.
    EXPECT_FALSE(
        CrashCell::parseToken("cmx1;rt=spec", cell, event, error));
    // Unknown key.
    EXPECT_FALSE(CrashCell::parseToken("cmx1;rt=spec;ev=1;zz=9", cell,
                                       event, error));
    // Unknown policy.
    EXPECT_FALSE(CrashCell::parseToken("cmx1;pol=sometimes;ev=1", cell,
                                       event, error));
}

TEST(CrashExplorer, ExhaustiveCellAccountsForEveryPoint)
{
    CrashExplorer explorer(smallSlotsCell(),
                           builtinCrashWorkloadFactory());
    ExploreOptions options;
    options.jobs = 2;
    const auto report = explorer.explore(options);

    ASSERT_EQ(report.error, "");
    EXPECT_GT(report.totalEvents, 0u);
    EXPECT_EQ(report.candidatePoints, report.totalEvents);
    EXPECT_EQ(report.explored + report.pruned, report.candidatePoints);
    // The deterministic slot workload crashes identically at many
    // points (e.g. consecutive reads), so pruning must engage.
    EXPECT_GT(report.pruned, 0u);
    EXPECT_TRUE(report.failures.empty());
    EXPECT_TRUE(report.ok());
}

TEST(CrashExplorer, ShardsPartitionThePointSpace)
{
    const auto cell = smallSlotsCell();
    constexpr unsigned kShards = 3;
    std::uint64_t candidates = 0;
    std::uint64_t total = 0;
    for (unsigned shard = 0; shard < kShards; ++shard) {
        CrashExplorer explorer(cell, builtinCrashWorkloadFactory());
        ExploreOptions options;
        options.shardIndex = shard;
        options.shardCount = kShards;
        options.jobs = 2;
        const auto report = explorer.explore(options);
        ASSERT_EQ(report.error, "");
        EXPECT_TRUE(report.ok());
        candidates += report.candidatePoints;
        total = report.totalEvents;
    }
    // The shards cover the whole space exactly once.
    EXPECT_EQ(candidates, total);
}

TEST(CrashExplorer, MaxPointsBoundsTheRun)
{
    CrashExplorer explorer(smallSlotsCell(),
                           builtinCrashWorkloadFactory());
    ExploreOptions options;
    options.maxPoints = 7;
    const auto report = explorer.explore(options);
    ASSERT_EQ(report.error, "");
    EXPECT_GT(report.totalEvents, 7u);
    EXPECT_EQ(report.candidatePoints, 7u);
    EXPECT_EQ(report.explored + report.pruned, 7u);
    EXPECT_TRUE(report.ok());
}

TEST(CrashExplorer, RejectsNonRecoverableRuntime)
{
    auto cell = smallSlotsCell();
    cell.runtime = "direct"; // no recovery story — not explorable
    CrashExplorer explorer(cell, builtinCrashWorkloadFactory());
    const auto report = explorer.explore({});
    EXPECT_NE(report.error, "");
    EXPECT_FALSE(report.ok());
}

TEST(CrashExplorer, HybridRuntimeIsExplorable)
{
    auto cell = smallSlotsCell();
    cell.runtime = "hybrid";
    cell.policy = "random";
    CrashExplorer explorer(cell, builtinCrashWorkloadFactory());
    ExploreOptions options;
    options.jobs = 2;
    const auto report = explorer.explore(options);
    ASSERT_EQ(report.error, "");
    EXPECT_TRUE(report.ok()) << (report.failures.empty()
                                     ? report.error
                                     : report.failures[0].message);
}

/**
 * Test the tester: with commit fences dropped at the device level,
 * acknowledged transactions are no longer durable, and the explorer
 * must catch it — and the failing schedule must reproduce from its
 * replay token alone.
 */
TEST(CrashExplorer, CatchesDroppedCommitFences)
{
    auto cell = smallSlotsCell();
    cell.fault = "drop-fences";
    CrashExplorer explorer(cell, builtinCrashWorkloadFactory());
    ExploreOptions options;
    options.jobs = 2;
    const auto report = explorer.explore(options);

    ASSERT_EQ(report.error, "");
    ASSERT_FALSE(report.failures.empty())
        << "a dropped commit fence must produce failing schedules";

    const auto &failure = report.failures.front();
    EXPECT_NE(failure.token.find("fault=drop-fences"),
              std::string::npos);

    // The token alone reproduces the failure...
    const auto replay = CrashExplorer::replay(
        failure.token, builtinCrashWorkloadFactory());
    ASSERT_EQ(replay.error, "");
    EXPECT_TRUE(replay.fired);
    EXPECT_FALSE(replay.failure.empty());
    EXPECT_EQ(replay.point, failure.point);

    // ...and the same point without the fault is clean.
    auto clean_cell = cell;
    clean_cell.fault = "none";
    const auto clean = CrashExplorer::replay(
        clean_cell.token(failure.point), builtinCrashWorkloadFactory());
    ASSERT_EQ(clean.error, "");
    EXPECT_TRUE(clean.failure.empty()) << clean.failure;
}

/*
 * Regression: the exhaustive sweep found a schedule where a
 * multi-segment transaction's final seal drained while an intermediate
 * segment's header line did not — the missing segment reads back as
 * tail poison, the walker follows the (persisted) chain pointer to the
 * valid final seal, and recovery used to redo a subset of the
 * transaction's writes. The final seal now attests to the tx's total
 * segment count, and a short run is treated as a torn commit.
 */
TEST(CrashExplorer, RejectsFinalSealWithMissingSegments)
{
    const auto result = CrashExplorer::replay(
        "cmx1;rt=spec-dp;wl=slots;pol=random;p=0.5;seed=42;fault=none;"
        "slots=64;tx=12;st=4;rec=0;shards=2;keys=48;ops=24;scale=0.05;"
        "ev=88",
        builtinCrashWorkloadFactory(), /*verify_continuation=*/true);
    ASSERT_EQ(result.error, "");
    EXPECT_TRUE(result.fired);
    EXPECT_TRUE(result.failure.empty()) << result.failure;
}

TEST(CrashExplorer, ReplayRejectsBadTokens)
{
    const auto result = CrashExplorer::replay(
        "cmx1;rt=nonsense;ev=3", builtinCrashWorkloadFactory());
    EXPECT_NE(result.error, "");
}

TEST(CrashExplorer, ReportJsonCarriesTheAccounting)
{
    const auto cell = smallSlotsCell();
    CrashExplorer explorer(cell, builtinCrashWorkloadFactory());
    ExploreOptions options;
    options.jobs = 2;
    const auto report = explorer.explore(options);
    ASSERT_EQ(report.error, "");

    const std::string json = report.toJson(cell);
    EXPECT_NE(json.find("\"total_events\":" +
                        std::to_string(report.totalEvents)),
              std::string::npos);
    EXPECT_NE(json.find("\"explored\":" +
                        std::to_string(report.explored)),
              std::string::npos);
    EXPECT_NE(json.find("\"pruned\":" + std::to_string(report.pruned)),
              std::string::npos);
    EXPECT_NE(json.find("\"runtime\":\"spec\""), std::string::npos);
}

} // namespace
} // namespace specpmt::sim
