/**
 * @file
 * End-to-end tests of the networked front end over loopback: wire
 * correctness, pipelined read-your-writes, group-commit fence
 * amortization (a pipelined batch of N mutations commits in far
 * fewer than N fences), and the durability contract under a crash
 * mid-load — every PUT the open-loop client saw acked must survive
 * power failure, recovery, and an independent forensic audit of the
 * post-crash images.
 */

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "forensic/inspector.hh"
#include "obs/metrics.hh"
#include "forensic/recovery_audit.hh"
#include "kv/kv_service.hh"
#include "net/loadgen.hh"
#include "net/protocol.hh"
#include "net/server.hh"
#include "obs/trace.hh"
#include "pmem/crash_policy.hh"
#include "pmem/image_io.hh"

namespace specpmt::net
{
namespace
{

kv::KvServiceConfig
serviceConfig(unsigned shards)
{
    kv::KvServiceConfig config;
    config.shards = shards;
    config.threads = shards; // loop i transacts as thread id i
    config.runtime = "spec";
    config.bucketsPerShard = 4096;
    return config;
}

/** Minimal blocking client for the correctness tests. */
class BlockingClient
{
  public:
    explicit BlockingClient(std::uint16_t port)
    {
        fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        EXPECT_GE(fd_, 0);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(port);
        ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
        EXPECT_EQ(::connect(fd_,
                            reinterpret_cast<sockaddr *>(&addr),
                            sizeof(addr)),
                  0);
        const int one = 1;
        ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one,
                     sizeof(one));
    }

    ~BlockingClient()
    {
        if (fd_ >= 0)
            ::close(fd_);
    }

    void
    sendAll(const std::vector<std::uint8_t> &bytes)
    {
        std::size_t off = 0;
        while (off < bytes.size()) {
            const ssize_t n =
                ::send(fd_, bytes.data() + off, bytes.size() - off,
                       MSG_NOSIGNAL);
            ASSERT_GT(n, 0);
            off += static_cast<std::size_t>(n);
        }
    }

    /** Read until @p count frames decoded (or the peer closes). */
    std::vector<Frame>
    readFrames(std::size_t count)
    {
        std::vector<Frame> frames;
        Frame frame;
        std::string error;
        while (frames.size() < count) {
            for (;;) {
                const auto status = decoder_.next(frame, error);
                if (status == FrameDecoder::Status::NeedMore)
                    break;
                EXPECT_EQ(status, FrameDecoder::Status::Frame)
                    << error;
                if (status != FrameDecoder::Status::Frame)
                    return frames;
                frames.push_back(frame);
                if (frames.size() == count)
                    return frames;
            }
            std::uint8_t buf[16 * 1024];
            const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
            if (n <= 0)
                return frames; // peer closed
            decoder_.feed(buf, static_cast<std::size_t>(n));
        }
        return frames;
    }

    /** HELLO handshake; returns the bound shard. */
    std::uint32_t
    hello(std::uint32_t desired)
    {
        std::vector<std::uint8_t> out;
        appendHello(out, 1, desired);
        sendAll(out);
        const auto frames = readFrames(1);
        EXPECT_EQ(frames.size(), 1u);
        std::uint32_t shards = 0;
        std::uint32_t bound = 0;
        EXPECT_TRUE(parseHelloOk(frames[0], shards, bound));
        return bound;
    }

    bool alive() const { return fd_ >= 0; }

    /**
     * Abortive close: SO_LINGER with a zero timeout makes close()
     * send RST instead of FIN, so the server's next write on this
     * connection fails hard (ECONNRESET / EPIPE) — the rudest exit a
     * client can make.
     */
    void
    resetHard()
    {
        if (fd_ < 0)
            return;
        linger lg{};
        lg.l_onoff = 1;
        lg.l_linger = 0;
        ::setsockopt(fd_, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
        ::close(fd_);
        fd_ = -1;
    }

    /** Bound recv() so a test never hangs past its own deadline. */
    void
    setRecvTimeoutMs(int ms)
    {
        timeval tv{};
        tv.tv_sec = ms / 1000;
        tv.tv_usec = (ms % 1000) * 1000;
        ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    }

  private:
    int fd_ = -1;
    FrameDecoder decoder_;
};

TEST(NetLoopback, WireOpsAndPipelinedReadYourWrites)
{
    kv::KvService service(serviceConfig(2));
    NetServer server(service, ServerConfig{});
    server.start();

    BlockingClient client(server.port());
    client.hello(kAnyShard);

    // One pipelined burst: PUT k, GET k (must see the PUT), DEL k,
    // GET k (must miss), DEL k (must miss) — answered in order.
    const kv::KvKey key = 1234;
    const auto value = kv::KvValue::tagged(key, 99);
    std::vector<std::uint8_t> out;
    appendPut(out, 10, key, value);
    appendGet(out, 11, key);
    appendDel(out, 12, key);
    appendGet(out, 13, key);
    appendDel(out, 14, key);
    client.sendAll(out);

    const auto frames = client.readFrames(5);
    ASSERT_EQ(frames.size(), 5u);
    EXPECT_EQ(frames[0].op, Op::Ok);
    EXPECT_EQ(frames[0].id, 10u);
    ASSERT_EQ(frames[1].op, Op::Value);
    kv::KvValue got;
    ASSERT_TRUE(parseValue(frames[1], got));
    EXPECT_EQ(got, value);
    EXPECT_EQ(frames[2].op, Op::Ok);
    EXPECT_EQ(frames[3].op, Op::NotFound);
    EXPECT_EQ(frames[4].op, Op::NotFound);

    server.stop();
    service.shutdown();
}

TEST(NetLoopback, MalformedBytesCloseTheConnection)
{
    kv::KvService service(serviceConfig(1));
    NetServer server(service, ServerConfig{});
    server.start();

    BlockingClient client(server.port());
    client.hello(0);

    // A corrupted frame (CRC broken) must produce a best-effort Err
    // and then EOF — never a crash, never silent resync.
    std::vector<std::uint8_t> out;
    appendGet(out, 5, 1);
    out.back() ^= 0xFF;
    client.sendAll(out);
    const auto frames = client.readFrames(2);
    ASSERT_GE(frames.size(), 1u);
    EXPECT_EQ(frames[0].op, Op::Err);
    // The stream ends after the Err (readFrames returned short).
    EXPECT_LE(frames.size(), 1u);

    server.stop();
    service.shutdown();
}

TEST(NetLoopback, GroupCommitAmortizesFences)
{
    kv::KvService service(serviceConfig(1));
    NetServer server(service, ServerConfig{});
    server.start();

    BlockingClient client(server.port());
    ASSERT_EQ(client.hello(0), 0u);

    const std::uint64_t before =
        service.shardSnapshot(0).device.fences;

    // 64 pipelined PUTs written as one burst: the server drains them
    // in one (or a few) epoll wake-ups and commits each drained run
    // as ONE crash-atomic transaction — far fewer than 64 fences.
    constexpr int kPuts = 64;
    std::vector<std::uint8_t> out;
    for (int i = 0; i < kPuts; ++i) {
        const kv::KvKey key = 1 + static_cast<kv::KvKey>(i);
        appendPut(out, 100 + static_cast<std::uint64_t>(i), key,
                  kv::KvValue::tagged(key, 7));
    }
    client.sendAll(out);
    const auto frames =
        client.readFrames(static_cast<std::size_t>(kPuts));
    ASSERT_EQ(frames.size(), static_cast<std::size_t>(kPuts));
    for (const auto &frame : frames)
        EXPECT_EQ(frame.op, Op::Ok);

    const std::uint64_t delta =
        service.shardSnapshot(0).device.fences - before;
    EXPECT_GE(delta, 1u);
    EXPECT_LT(delta, static_cast<std::uint64_t>(kPuts))
        << "group commit provided no fence amortization";

    server.stop();
    service.shutdown();
}

TEST(NetLoopback, OpenLoopEndToEnd)
{
    kv::KvService service(serviceConfig(2));
    NetServer server(service, ServerConfig{});
    server.start();

    LoadgenConfig config;
    config.port = server.port();
    config.targetQps = 4000;
    config.seconds = 1.0;
    config.workload.keys = 512;
    config.workload.mix = kv::Mix::A;
    // multiPut off: every write to a key then flows through that
    // key's one shard connection, so the client's last-acked payload
    // is exactly the server's final value and strict equality holds.
    // (A multiPut batch routes by its *first* key; a secondary key
    // written from another connection has no cross-connection ack
    // order, which OpenLoopMultiPut covers with a weaker check.)
    config.workload.multiPutFraction = 0.0;
    config.seed = 5;
    config.loadFirst = true;
    const auto result = runOpenLoop(config);

    ASSERT_FALSE(result.aborted) << result.error;
    EXPECT_FALSE(result.connectionLost);
    EXPECT_EQ(result.protocolErrors, 0u);
    EXPECT_EQ(result.errors, 0u);
    EXPECT_EQ(result.lost, 0u);
    EXPECT_EQ(result.notFound, 0u); // keyspace was preloaded
    EXPECT_EQ(result.acked, result.scheduled);
    EXPECT_EQ(result.readLatency.count() +
                  result.updateLatency.count(),
              result.acked);
    // Load phase + traffic: every key carries an obligation.
    EXPECT_EQ(result.ackedPuts.size(), config.workload.keys);

    server.stop();

    // Every acked PUT is readable at its last acked payload.
    for (const auto &[key, payload] : result.ackedPuts) {
        const auto value = service.get(0, key);
        ASSERT_TRUE(value.has_value()) << "key " << key;
        EXPECT_EQ(*value, kv::KvValue::tagged(key, payload));
    }
    service.shutdown();
}

TEST(NetLoopback, OpenLoopMultiPut)
{
    kv::KvService service(serviceConfig(2));
    NetServer server(service, ServerConfig{});
    server.start();

    LoadgenConfig config;
    config.port = server.port();
    config.targetQps = 3000;
    config.seconds = 1.0;
    config.workload.keys = 256;
    config.workload.mix = kv::Mix::A;
    config.workload.multiPutFraction = 0.3;
    config.seed = 6;
    config.loadFirst = true;
    const auto result = runOpenLoop(config);

    ASSERT_FALSE(result.aborted) << result.error;
    EXPECT_EQ(result.protocolErrors, 0u);
    EXPECT_EQ(result.errors, 0u);
    EXPECT_EQ(result.lost, 0u);
    EXPECT_EQ(result.acked, result.scheduled);

    server.stop();

    // Batch members can hit a key from either connection, so the
    // final payload is whichever write the server ordered last — but
    // every acked key must exist with an untorn value for that key.
    for (const auto &[key, payload] : result.ackedPuts) {
        const auto value = service.get(0, key);
        ASSERT_TRUE(value.has_value()) << "key " << key;
        EXPECT_TRUE(value->checkTag(key)) << "key " << key;
    }
    service.shutdown();
}

TEST(NetLoopback, MixedVersionClientsInteroperate)
{
    // An old-style client (no trace extension — byte-identical to the
    // pre-extension protocol) and a new traced client share one
    // server: both must be answered correctly, and responses must
    // never carry the extension regardless of what the request did.
    kv::KvService service(serviceConfig(1));
    NetServer server(service, ServerConfig{});
    server.start();

    BlockingClient old_client(server.port());
    BlockingClient new_client(server.port());
    ASSERT_EQ(old_client.hello(0), 0u);
    ASSERT_EQ(new_client.hello(0), 0u);

    const TraceExt ext{0xABCDEFull, true};
    std::vector<std::uint8_t> out;
    appendPut(out, 1, 7, kv::KvValue::tagged(7, 1), 0, &ext);
    appendGet(out, 2, 7, &ext);
    new_client.sendAll(out);
    const auto traced = new_client.readFrames(2);
    ASSERT_EQ(traced.size(), 2u);
    EXPECT_EQ(traced[0].op, Op::Ok);
    EXPECT_EQ(traced[1].op, Op::Value);
    for (const auto &frame : traced) {
        EXPECT_EQ(frame.flags & kFlagTraced, 0)
            << "responses must not carry the trace extension";
        EXPECT_EQ(frame.ext.traceId, 0u);
    }

    // The old client reads the traced client's write: tracing is
    // per-request metadata, not a fork of the data path.
    out.clear();
    appendPut(out, 3, 8, kv::KvValue::tagged(8, 2));
    appendGet(out, 4, 7);
    old_client.sendAll(out);
    const auto plain = old_client.readFrames(2);
    ASSERT_EQ(plain.size(), 2u);
    EXPECT_EQ(plain[0].op, Op::Ok);
    ASSERT_EQ(plain[1].op, Op::Value);
    kv::KvValue got;
    ASSERT_TRUE(parseValue(plain[1], got));
    EXPECT_TRUE(got.checkTag(7));

    server.stop();
    service.shutdown();
}

TEST(NetLoopback, SampledRequestEmitsCorrelatedServerSpans)
{
    obs::Tracer::global().clear();
    obs::Tracer::global().enable();

    kv::KvService service(serviceConfig(1));
    NetServer server(service, ServerConfig{});
    server.start();

    BlockingClient client(server.port());
    ASSERT_EQ(client.hello(0), 0u);

    // One sampled traced strict PUT: the server must emit request
    // spans correlated by the wire trace id, and the srv_exec span
    // must carry the PM cost vector charged by the commit.
    constexpr std::uint64_t kTraceId = 424242;
    const TraceExt ext{kTraceId, true};
    std::vector<std::uint8_t> out;
    appendPut(out, 1, 99, kv::KvValue::tagged(99, 5), kFlagStrict,
              &ext);
    client.sendAll(out);
    const auto frames = client.readFrames(1);
    ASSERT_EQ(frames.size(), 1u);
    EXPECT_EQ(frames[0].op, Op::Ok);

    // The ack_write span is recorded just after the response bytes
    // leave the server; give it a beat before serializing.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    server.stop();
    obs::Tracer::global().disable();

    const std::string json = obs::Tracer::global().toChromeJson();
    EXPECT_NE(json.find("\"id\": 424242"), std::string::npos)
        << "no span carries the wire trace id";
    EXPECT_NE(json.find("srv_exec"), std::string::npos);
    EXPECT_NE(json.find("user_bytes"), std::string::npos)
        << "srv_exec span lacks the PM cost vector";
    EXPECT_NE(json.find("flush_batch"), std::string::npos);

    obs::Tracer::global().clear();
    service.shutdown();
}

TEST(NetLoopback, CrashUnderLoadRecoversEveryAckedPut)
{
    constexpr unsigned kShards = 2;
    kv::KvService service(serviceConfig(kShards));
    NetServer server(service, ServerConfig{});
    server.start();

    // Open-loop load on a second thread; the schedule is longer than
    // the server will live.
    LoadgenConfig config;
    config.port = server.port();
    config.targetQps = 3000;
    config.seconds = 30.0;
    config.workload.keys = 512;
    config.workload.mix = kv::Mix::A;
    config.seed = 9;
    config.loadFirst = true;
    LoadgenResult result;
    std::thread load(
        [&] { result = runOpenLoop(config); });

    // Yank the server mid-load: connections die with requests in
    // flight, exactly like a machine losing power under traffic.
    std::this_thread::sleep_for(std::chrono::milliseconds(700));
    server.stop();
    load.join();

    ASSERT_FALSE(result.aborted) << result.error;
    EXPECT_TRUE(result.connectionLost);
    ASSERT_GT(result.ackedPuts.size(), 0u);

    // Power-fail the service under a hostile eviction policy and
    // capture the post-crash images.
    service.crash(pmem::CrashPolicy::random(9, 0.5));
    std::vector<std::vector<std::uint8_t>> images;
    for (unsigned s = 0; s < kShards; ++s) {
        const auto &dev = service.shardDevice(s);
        images.emplace_back(dev.persistentRaw(),
                            dev.persistentRaw() + dev.size());
    }

    service.recover();

    // Durability contract: every key with an acked PUT must survive
    // recovery with an untorn value, and that value must be either
    // the last acked payload or the payload of a later sent-but-
    // unacked PUT (the server may have committed a mutation whose
    // ack the crash swallowed — allowed; LOSING an acked put is not).
    for (const auto &[key, payload] : result.ackedPuts) {
        const auto value = service.get(0, key);
        ASSERT_TRUE(value.has_value()) << "acked key " << key
                                       << " lost in the crash";
        bool allowed = *value == kv::KvValue::tagged(key, payload);
        if (const auto it = result.unackedPuts.find(key);
            it != result.unackedPuts.end()) {
            for (const auto unacked : it->second)
                allowed = allowed ||
                          *value == kv::KvValue::tagged(key, unacked);
        }
        EXPECT_TRUE(allowed)
            << "key " << key
            << " recovered to a value never sent (or torn)";
    }

    // Independent check: the offline inspector's classification of
    // each post-crash image agrees with what real recovery did.
    for (unsigned s = 0; s < kShards; ++s) {
        const auto dev = pmem::deviceFromImage(images[s]);
        const auto report = forensic::inspectImage(
            *dev, service.numThreads(),
            "shard" + std::to_string(s));
        const auto audit = forensic::auditRecovery(
            images[s], "spec", service.numThreads(), report);
        ASSERT_TRUE(audit.supported);
        std::string detail;
        for (const auto &d : audit.disagreements)
            detail += "\n  " + d;
        EXPECT_TRUE(audit.agrees) << "shard " << s << detail;
    }
    service.shutdown();
}

TEST(NetLoopback, StrictPutAckImpliesDurabilityMidEpoch)
{
    // Epoch group commit with triggers far beyond the test's
    // lifetime: only a strict request can seal an epoch, so any ack
    // the client sees was released by the strict commit's fence.
    auto service_config = serviceConfig(1);
    service_config.runtimeOptions.groupCommit = true;
    service_config.epochMaxOps = 0; // the server owns the seal policy
    kv::KvService service(service_config);
    ServerConfig server_config;
    server_config.groupCommit = true;
    server_config.epochMaxOps = 1u << 20;
    server_config.epochMaxDelayUs = 60'000'000;
    NetServer server(service, server_config);
    server.start();

    BlockingClient client(server.port());
    ASSERT_EQ(client.hello(0), 0u);

    const kv::KvKey relaxed_key = 10;
    const kv::KvKey strict_key = 20;
    const kv::KvKey open_key = 30;
    std::vector<std::uint8_t> out;
    appendPut(out, 1, relaxed_key,
              kv::KvValue::tagged(relaxed_key, 1));
    appendPut(out, 2, strict_key, kv::KvValue::tagged(strict_key, 2),
              kFlagStrict);
    appendPut(out, 3, open_key, kv::KvValue::tagged(open_key, 3));
    client.sendAll(out);

    // The strict PUT commits with its own fence and seals the shard
    // epoch, releasing the earlier relaxed PUT's deferred ack with
    // it (pipeline order preserved). The trailing relaxed PUT joined
    // a fresh epoch that never seals, so its ack never arrives.
    const auto frames = client.readFrames(2);
    ASSERT_EQ(frames.size(), 2u);
    EXPECT_EQ(frames[0].op, Op::Ok);
    EXPECT_EQ(frames[0].id, 1u);
    EXPECT_EQ(frames[1].op, Op::Ok);
    EXPECT_EQ(frames[1].id, 2u);
    EXPECT_GE(service.shardSealedEpoch(0), 1u);

    server.stop();

    // Power-fail dropping every unflushed line: both acked PUTs were
    // behind the strict commit's fence and must survive; the unacked
    // one was never sealed and must be cleanly absent.
    service.crash(pmem::CrashPolicy::nothing());
    service.recover();
    auto value = service.get(0, relaxed_key);
    ASSERT_TRUE(value.has_value());
    EXPECT_EQ(*value, kv::KvValue::tagged(relaxed_key, 1));
    value = service.get(0, strict_key);
    ASSERT_TRUE(value.has_value());
    EXPECT_EQ(*value, kv::KvValue::tagged(strict_key, 2));
    EXPECT_FALSE(service.get(0, open_key).has_value())
        << "an unacked relaxed PUT must not partially survive";
    service.shutdown();
}

TEST(NetLoopback, CrashUnderLoadGroupCommitKeepsEveryAckedPut)
{
    // The crash-under-load durability contract, now with epoch group
    // commit serving and a strict minority in the traffic: acks are
    // released only after their epoch's shared fence (or their own,
    // if strict), so every acked PUT must still survive power
    // failure — relaxed durability weakens nothing the client was
    // told.
    constexpr unsigned kShards = 2;
    auto service_config = serviceConfig(kShards);
    service_config.runtimeOptions.groupCommit = true;
    service_config.epochMaxOps = 0; // the server owns the seal policy
    kv::KvService service(service_config);
    ServerConfig server_config;
    server_config.groupCommit = true;
    server_config.epochMaxOps = 16;
    server_config.epochMaxDelayUs = 300;
    NetServer server(service, server_config);
    server.start();

    LoadgenConfig config;
    config.port = server.port();
    config.targetQps = 3000;
    config.seconds = 30.0;
    config.workload.keys = 512;
    config.workload.mix = kv::Mix::A;
    config.strictFraction = 0.15;
    config.seed = 11;
    config.loadFirst = true;
    LoadgenResult result;
    std::thread load([&] { result = runOpenLoop(config); });

    std::this_thread::sleep_for(std::chrono::milliseconds(700));
    server.stop();
    load.join();

    ASSERT_FALSE(result.aborted) << result.error;
    EXPECT_TRUE(result.connectionLost);
    ASSERT_GT(result.ackedPuts.size(), 0u);
    EXPECT_GT(result.strictSent, 0u);

    service.crash(pmem::CrashPolicy::random(11, 0.5));
    std::vector<std::vector<std::uint8_t>> images;
    for (unsigned s = 0; s < kShards; ++s) {
        const auto &dev = service.shardDevice(s);
        images.emplace_back(dev.persistentRaw(),
                            dev.persistentRaw() + dev.size());
    }

    service.recover();

    for (const auto &[key, payload] : result.ackedPuts) {
        const auto value = service.get(0, key);
        ASSERT_TRUE(value.has_value()) << "acked key " << key
                                       << " lost in the crash";
        bool allowed = *value == kv::KvValue::tagged(key, payload);
        if (const auto it = result.unackedPuts.find(key);
            it != result.unackedPuts.end()) {
            for (const auto unacked : it->second)
                allowed = allowed ||
                          *value == kv::KvValue::tagged(key, unacked);
        }
        EXPECT_TRUE(allowed)
            << "key " << key
            << " recovered to a value never sent (or torn)";
    }

    // The images carry an epoch frontier; the inspector must apply
    // the frontier replay rule and still agree with what recovery
    // actually did, shard by shard.
    for (unsigned s = 0; s < kShards; ++s) {
        const auto dev = pmem::deviceFromImage(images[s]);
        const auto report = forensic::inspectImage(
            *dev, service.numThreads(),
            "shard" + std::to_string(s));
        EXPECT_TRUE(report.epochMedia) << "shard " << s;
        const auto audit = forensic::auditRecovery(
            images[s], "spec", service.numThreads(), report);
        ASSERT_TRUE(audit.supported);
        std::string detail;
        for (const auto &d : audit.disagreements)
            detail += "\n  " + d;
        EXPECT_TRUE(audit.agrees) << "shard " << s << detail;
    }
    service.shutdown();
}

TEST(NetLoopback, MidResponseConnectionResetDoesNotKillServer)
{
    // Regression test for the SIGPIPE/ECONNRESET hardening: a client
    // that requests a large pipelined response and then aborts the
    // connection (RST via zero-linger close) leaves the server
    // mid-write on a dead socket. The server must drop that
    // connection and keep serving everyone else — a missing
    // MSG_NOSIGNAL anywhere in the write path would instead kill the
    // whole process with SIGPIPE.
    kv::KvService service(serviceConfig(1));
    NetServer server(service, ServerConfig{});
    server.start();

    {
        BlockingClient loader(server.port());
        ASSERT_EQ(loader.hello(0), 0u);
        std::vector<std::uint8_t> out;
        for (kv::KvKey key = 1; key <= 64; ++key)
            appendPut(out, key, key, kv::KvValue::tagged(key, 1));
        loader.sendAll(out);
        ASSERT_EQ(loader.readFrames(64).size(), 64u);
    }

    for (int round = 0; round < 5; ++round) {
        BlockingClient rude(server.port());
        ASSERT_EQ(rude.hello(0), 0u);
        // 4096 pipelined GETs produce ~350 KiB of Value responses —
        // far beyond the socket buffer, so the server is still
        // writing when the reset lands.
        std::vector<std::uint8_t> out;
        std::uint64_t id = 100;
        for (int i = 0; i < 4096; ++i)
            appendGet(out, id++, 1 + (static_cast<kv::KvKey>(i) % 64));
        rude.sendAll(out);
        // Read a few responses to ensure the server's write stream is
        // flowing, then slam the door on the rest.
        ASSERT_GE(rude.readFrames(4).size(), 4u);
        rude.resetHard();
    }

    // The server survived every reset and still serves new clients.
    ASSERT_TRUE(server.running());
    BlockingClient polite(server.port());
    ASSERT_EQ(polite.hello(0), 0u);
    std::vector<std::uint8_t> out;
    appendGet(out, 9000, 7);
    polite.sendAll(out);
    const auto frames = polite.readFrames(1);
    ASSERT_EQ(frames.size(), 1u);
    kv::KvValue got;
    ASSERT_TRUE(parseValue(frames[0], got));
    EXPECT_TRUE(got.checkTag(7));

    server.stop();
    service.shutdown();
}

TEST(NetLoopback, OversizedFrameEvictsConnectionAndCountsIt)
{
    // A server-side frame cap below the protocol-wide kMaxFrameBytes:
    // a frame legal on the wire but above the cap evicts the
    // connection and bumps evicted{reason="oversize"} — without
    // disturbing other connections.
    auto &evicted = obs::Registry::global().counter(
        "specpmt_net_evicted_total",
        "connections evicted by server policy",
        obs::Labels{{"reason", "oversize"}});
    const std::uint64_t before = evicted.value();

    kv::KvService service(serviceConfig(1));
    ServerConfig config;
    config.maxFrameBytes = 4096;
    NetServer server(service, config);
    server.start();

    BlockingClient greedy(server.port());
    ASSERT_EQ(greedy.hello(0), 0u);
    std::vector<std::pair<kv::KvKey, kv::KvValue>> items;
    for (kv::KvKey k = 0; k < 512; ++k)
        items.emplace_back(k, kv::KvValue::tagged(k, 1));
    std::vector<std::uint8_t> out;
    appendBatch(out, 50, items); // ~37 KiB: over the cap, legal wire
    ASSERT_LT(out.size(), kMaxFrameBytes);
    greedy.sendAll(out);
    greedy.setRecvTimeoutMs(5000);
    // The server closes the connection (possibly after a best-effort
    // Err frame); what it must NOT do is execute the batch.
    greedy.readFrames(1);

    BlockingClient other(server.port());
    ASSERT_EQ(other.hello(0), 0u);
    out.clear();
    appendGet(out, 60, 3);
    other.sendAll(out);
    const auto frames = other.readFrames(1);
    ASSERT_EQ(frames.size(), 1u);
    EXPECT_EQ(frames[0].op, Op::NotFound)
        << "the oversized batch must not have been applied";

    EXPECT_GE(evicted.value(), before + 1);

    server.stop();
    service.shutdown();
}

TEST(NetLoopback, IdleConnectionIsEvicted)
{
    // The data-plane idle sweep: a connection that goes quiet for
    // longer than idleTimeoutMs is closed by the server and counted
    // as evicted{reason="idle"}; an active connection on the same
    // loop stays up.
    auto &evicted = obs::Registry::global().counter(
        "specpmt_net_evicted_total",
        "connections evicted by server policy",
        obs::Labels{{"reason", "idle"}});
    const std::uint64_t before = evicted.value();

    kv::KvService service(serviceConfig(1));
    ServerConfig config;
    config.idleTimeoutMs = 200;
    NetServer server(service, config);
    server.start();

    BlockingClient idle(server.port());
    ASSERT_EQ(idle.hello(0), 0u);
    idle.setRecvTimeoutMs(10000);
    // No further bytes: the sweep must EOF this connection. The
    // blocking read returns zero frames once the server closes.
    const auto t0 = std::chrono::steady_clock::now();
    const auto frames = idle.readFrames(1);
    const auto waited = std::chrono::steady_clock::now() - t0;
    EXPECT_TRUE(frames.empty()) << "unexpected frame on idle conn";
    EXPECT_LT(waited, std::chrono::seconds(9))
        << "idle sweep never closed the connection";
    EXPECT_GE(evicted.value(), before + 1);

    // A new connection is admitted fine after the eviction.
    BlockingClient fresh(server.port());
    ASSERT_EQ(fresh.hello(0), 0u);

    server.stop();
    service.shutdown();
}

TEST(NetLoopback, AdmissionControlShedsBusyAndNeverLies)
{
    // Overload shedding: with a tiny pending-ops budget, a huge
    // pipelined burst must be answered partly Ok, partly Busy —
    // and the two answers must mean what they say: every Ok'd PUT is
    // readable afterwards, every Busy'd PUT was never applied.
    kv::KvService service(serviceConfig(1));
    ServerConfig config;
    config.maxPendingOps = 8;
    NetServer server(service, config);
    server.start();

    BlockingClient client(server.port());
    ASSERT_EQ(client.hello(0), 0u);

    constexpr std::uint64_t kBurst = 512;
    std::vector<std::uint8_t> out;
    for (std::uint64_t i = 0; i < kBurst; ++i) {
        const kv::KvKey key = 1 + static_cast<kv::KvKey>(i);
        appendPut(out, 1000 + i, key, kv::KvValue::tagged(key, 3));
    }
    client.sendAll(out);
    const auto frames = client.readFrames(kBurst);
    ASSERT_EQ(frames.size(), kBurst) << "responses were lost";

    std::vector<bool> okById(kBurst, false);
    std::uint64_t ok = 0;
    std::uint64_t busy = 0;
    for (const auto &frame : frames) {
        ASSERT_GE(frame.id, 1000u);
        const std::uint64_t i = frame.id - 1000;
        ASSERT_LT(i, kBurst);
        if (frame.op == Op::Ok) {
            okById[i] = true;
            ++ok;
        } else {
            ASSERT_EQ(frame.op, Op::Busy) << "id " << frame.id;
            ++busy;
        }
    }
    EXPECT_GE(ok, 1u);
    EXPECT_GE(busy, 1u)
        << "a 512-op burst against an 8-op budget shed nothing";

    // Busy is a *definite* non-apply: the key must be absent. Ok is
    // a definite apply: the key must be present. Read through the
    // service directly so the verification pass cannot itself be
    // shed.
    server.stop();
    for (std::uint64_t i = 0; i < kBurst; ++i) {
        const kv::KvKey key = 1 + static_cast<kv::KvKey>(i);
        const auto value = service.get(0, key);
        if (okById[i]) {
            ASSERT_TRUE(value.has_value()) << "key " << key;
            EXPECT_TRUE(value->checkTag(key));
        } else {
            EXPECT_FALSE(value.has_value())
                << "Busy'd PUT of key " << key << " was applied anyway";
        }
    }
    service.shutdown();
}

} // namespace
} // namespace specpmt::net
