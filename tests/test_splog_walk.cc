/**
 * @file
 * Unit tests of the shared transaction grouper (core/splog_walk): the
 * single implementation of the "which segment runs form committed
 * transactions" rule that recovery, the reclaimer and the forensic
 * inspector all consume.
 */

#include <gtest/gtest.h>

#include "core/splog_walk.hh"

namespace specpmt::core
{
namespace
{

/** A synthetic checksum-valid segment at @p pos. */
DecodedSegment
seg(PmOff pos, TxTimestamp ts, bool final, std::uint32_t tx_segments,
    std::uint32_t size_bytes = 64)
{
    DecodedSegment out;
    out.pos = pos;
    out.timestamp = ts;
    out.final = final;
    out.txSegments = final ? tx_segments : 0;
    out.sizeBytes = size_bytes;
    return out;
}

TEST(TxGrouperTest, EmptyWalkYieldsNothing)
{
    TxGrouper grouper;
    const auto &tail = grouper.finish();
    EXPECT_TRUE(tail.segs.empty());
    EXPECT_TRUE(grouper.committed().empty());
    EXPECT_TRUE(grouper.discarded().empty());
    EXPECT_EQ(grouper.lastCommittedEnd(), kPmNull);
}

TEST(TxGrouperTest, SingleSegmentTransactionCommits)
{
    TxGrouper grouper;
    grouper.feed(seg(0x1000, 7, true, 1, 72));
    grouper.finish();

    ASSERT_EQ(grouper.committed().size(), 1u);
    EXPECT_EQ(grouper.committed()[0].ts, 7u);
    ASSERT_EQ(grouper.committed()[0].segs.size(), 1u);
    EXPECT_TRUE(grouper.discarded().empty());
    EXPECT_TRUE(grouper.inFlight().segs.empty());
    // 72 bytes round up to the 8-aligned slot end.
    EXPECT_EQ(grouper.lastCommittedEnd(), 0x1000u + 72u);
}

TEST(TxGrouperTest, MultiSegmentRunCommitsWithExactCount)
{
    TxGrouper grouper;
    grouper.feed(seg(0x1000, 3, false, 0));
    grouper.feed(seg(0x1040, 3, false, 0));
    grouper.feed(seg(0x1080, 3, true, 3));
    grouper.finish();

    ASSERT_EQ(grouper.committed().size(), 1u);
    EXPECT_EQ(grouper.committed()[0].segs.size(), 3u);
    EXPECT_TRUE(grouper.discarded().empty());
}

TEST(TxGrouperTest, SegCountMismatchDiscardsTheRun)
{
    // The final seal attests 3 segments but only 2 survived (the
    // middle segment's header never drained and read back as tail
    // poison): committing would apply a subset of the transaction.
    TxGrouper grouper;
    grouper.feed(seg(0x1000, 3, false, 0));
    grouper.feed(seg(0x1080, 3, true, 3));
    grouper.finish();

    EXPECT_TRUE(grouper.committed().empty());
    ASSERT_EQ(grouper.discarded().size(), 1u);
    EXPECT_EQ(grouper.discarded()[0].reason,
              TxDiscard::SegCountMismatch);
    EXPECT_EQ(grouper.discarded()[0].tx.segs.size(), 2u);
    EXPECT_EQ(grouper.lastCommittedEnd(), kPmNull);
}

TEST(TxGrouperTest, TimestampBreakDiscardsTheInterruptedRun)
{
    // ts=1 never got its final seal before ts=2's segments arrived:
    // the ts=1 run is an interrupted commit's leftovers.
    TxGrouper grouper;
    grouper.feed(seg(0x1000, 1, false, 0));
    grouper.feed(seg(0x1040, 2, true, 1));
    grouper.finish();

    ASSERT_EQ(grouper.discarded().size(), 1u);
    EXPECT_EQ(grouper.discarded()[0].reason, TxDiscard::TimestampBreak);
    EXPECT_EQ(grouper.discarded()[0].tx.ts, 1u);
    ASSERT_EQ(grouper.committed().size(), 1u);
    EXPECT_EQ(grouper.committed()[0].ts, 2u);
}

TEST(TxGrouperTest, TrailingOpenRunIsInFlight)
{
    TxGrouper grouper;
    grouper.feed(seg(0x1000, 1, true, 1));
    grouper.feed(seg(0x1040, 2, false, 0));
    grouper.feed(seg(0x1080, 2, false, 0));
    const auto &tail = grouper.finish();

    ASSERT_EQ(tail.segs.size(), 2u);
    EXPECT_EQ(tail.ts, 2u);
    EXPECT_EQ(grouper.committed().size(), 1u);
    EXPECT_TRUE(grouper.discarded().empty());
    // The adoption point is the committed prefix, not the tail.
    EXPECT_EQ(grouper.lastCommittedEnd(), 0x1000u + 64u);
}

TEST(TxGrouperTest, LastCommittedEndTracksTheNewestCommit)
{
    TxGrouper grouper;
    grouper.feed(seg(0x1000, 1, true, 1));
    grouper.feed(seg(0x1040, 2, true, 1, 48));
    grouper.finish();

    EXPECT_EQ(grouper.committed().size(), 2u);
    EXPECT_EQ(grouper.lastCommittedEnd(), 0x1040u + 48u);
}

TEST(TxGrouperTest, ZeroCountSealNeverCommitsAMultiSegmentRun)
{
    // A final seal with no count attestation (legacy/garbled flags)
    // cannot prove the run's length; the grouper must not commit it.
    TxGrouper grouper;
    grouper.feed(seg(0x1000, 5, false, 0));
    grouper.feed(seg(0x1040, 5, true, 0));
    grouper.finish();

    EXPECT_TRUE(grouper.committed().empty());
    ASSERT_EQ(grouper.discarded().size(), 1u);
    EXPECT_EQ(grouper.discarded()[0].reason,
              TxDiscard::SegCountMismatch);
}

TEST(TxGrouperTest, BlockIndexPropagatesToGroupedSegs)
{
    TxGrouper grouper;
    grouper.feed(seg(0x1000, 1, false, 0), 4);
    grouper.feed(seg(0x2000, 1, true, 2), 5);
    grouper.finish();

    ASSERT_EQ(grouper.committed().size(), 1u);
    EXPECT_EQ(grouper.committed()[0].segs[0].blockIndex, 4u);
    EXPECT_EQ(grouper.committed()[0].segs[1].blockIndex, 5u);
}

TEST(TxGrouperTest, BackToBackDiscardsKeepWalkOrder)
{
    TxGrouper grouper;
    grouper.feed(seg(0x1000, 1, false, 0)); // ts break victim
    grouper.feed(seg(0x1040, 2, false, 0));
    grouper.feed(seg(0x1080, 2, true, 9)); // count mismatch
    grouper.feed(seg(0x10C0, 3, true, 1)); // commits
    grouper.finish();

    ASSERT_EQ(grouper.discarded().size(), 2u);
    EXPECT_EQ(grouper.discarded()[0].reason, TxDiscard::TimestampBreak);
    EXPECT_EQ(grouper.discarded()[1].reason,
              TxDiscard::SegCountMismatch);
    ASSERT_EQ(grouper.committed().size(), 1u);
    EXPECT_EQ(grouper.committed()[0].ts, 3u);
}

} // namespace
} // namespace specpmt::core
