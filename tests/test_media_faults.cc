/**
 * @file
 * KvService robustness under injected PM media faults and degraded
 * modes: write-EIO transactions abort cleanly (nothing partially
 * applied) and retries recover via fresh log blocks; poisoned reads
 * surface as typed Io outcomes and never as garbage values; forced
 * and log-exhaustion read-only modes refuse mutations individually
 * while reads stay alive; and a file-backed pm dir reattaches across
 * a service teardown with every strict put intact.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "kv/kv_service.hh"
#include "pmem/pmem_device.hh"

namespace specpmt::kv
{
namespace
{

KvServiceConfig
baseConfig(unsigned shards)
{
    KvServiceConfig config;
    config.shards = shards;
    config.threads = shards;
    config.runtime = "spec";
    config.bucketsPerShard = 4096;
    config.shardPoolBytes = 8u << 20;
    return config;
}

std::vector<BatchOp>
putBatch(KvKey first, std::size_t count, std::uint64_t payload)
{
    std::vector<BatchOp> ops;
    for (std::size_t i = 0; i < count; ++i) {
        BatchOp op;
        op.kind = BatchOp::Kind::Put;
        op.key = first + static_cast<KvKey>(i);
        op.value = KvValue::tagged(op.key, payload);
        ops.push_back(op);
    }
    return ops;
}

TEST(MediaFaults, WriteEioAbortsAtomicallyAndRetriesRecover)
{
    KvService service(baseConfig(1));
    // EIO lines land in the log/heap area past the root directory;
    // the seeded plan is deterministic, so this test always exercises
    // the same fault set.
    pmem::FaultPlan plan;
    plan.seed = 1;
    plan.eioLines = 64;
    plan.regionStart = 65536;
    service.shardDevice(0).applyFaultPlan(plan);

    std::uint64_t io = 0;
    std::uint64_t ok_after_io = 0;
    std::vector<BatchOpResult> results;
    for (int round = 0; round < 128; ++round) {
        const KvKey first = 1 + static_cast<KvKey>(round) * 8;
        const auto status = service.executeShardBatch(
            0, 0, putBatch(first, 8, 7), results);
        ASSERT_NE(status, BatchStatus::BadRoute);
        ASSERT_NE(status, BatchStatus::ReadOnly);
        if (status == BatchStatus::Io) {
            ++io;
            // The run aborted as a unit: none of its 8 puts may have
            // been applied.
            for (std::size_t i = 0; i < 8; ++i)
                EXPECT_FALSE(
                    service.get(0, first + static_cast<KvKey>(i))
                        .has_value())
                    << "partial apply after Io abort, key "
                    << first + i;
        } else {
            ASSERT_EQ(status, BatchStatus::Ok);
            if (io > 0)
                ++ok_after_io;
            for (std::size_t i = 0; i < 8; ++i) {
                const auto value =
                    service.get(0, first + static_cast<KvKey>(i));
                ASSERT_TRUE(value.has_value());
                EXPECT_TRUE(value->checkTag(
                    first + static_cast<KvKey>(i)));
            }
        }
    }
    EXPECT_GE(io, 1u) << "the fault plan never fired";
    // Aborting rewinds the log tail onto the same bad line; without
    // the retire-on-abort block burning, every retry would hit the
    // identical EIO forever. Recovery within the same plan proves
    // retries make progress.
    EXPECT_GE(ok_after_io, 1u)
        << "no retry ever recovered from a write EIO";
    EXPECT_GE(service.shardMediaAborts(0), io);
    EXPECT_TRUE(service.shardDegraded(0));
    EXPECT_FALSE(service.shardReadOnly(0))
        << "media aborts alone must not flip read-only mode";

    // With the plan lifted the shard serves normally again.
    service.shardDevice(0).clearFaultPlan();
    const auto status = service.executeShardBatch(
        0, 0, putBatch(100000, 8, 9), results);
    EXPECT_EQ(status, BatchStatus::Ok);
    service.shutdown();
}

TEST(MediaFaults, PoisonedReadsSurfaceAsIoNeverAsGarbage)
{
    KvService service(baseConfig(1));
    constexpr KvKey kKeys = 256;
    std::vector<BatchOpResult> results;
    for (KvKey first = 1; first <= kKeys; first += 64)
        ASSERT_EQ(service.executeShardBatch(
                      0, 0, putBatch(first, 64, 5), results),
                  BatchStatus::Ok);

    pmem::FaultPlan plan;
    plan.seed = 3;
    plan.poisonLines = 4000;
    plan.regionStart = 65536;
    service.shardDevice(0).applyFaultPlan(plan);

    // Every get either returns the exact stored value or fails as a
    // typed Io outcome; a poisoned line must never leak bytes.
    std::uint64_t io = 0;
    std::uint64_t hits = 0;
    for (KvKey key = 1; key <= kKeys; ++key) {
        BatchOp op;
        op.kind = BatchOp::Kind::Get;
        op.key = key;
        const auto status =
            service.executeShardBatch(0, 0, {op}, results);
        if (status == BatchStatus::Io) {
            ++io;
            continue;
        }
        ASSERT_EQ(status, BatchStatus::Ok);
        ASSERT_TRUE(results[0].ok) << "key " << key;
        EXPECT_EQ(results[0].value, KvValue::tagged(key, 5));
        ++hits;
    }
    EXPECT_GE(io, 1u) << "the poison plan never fired";
    EXPECT_GE(hits, 1u) << "every single get failed";
    EXPECT_GE(service.shardMediaAborts(0), io);
    EXPECT_GE(service.shardSnapshot(0).device.mediaReadErrors, io);
    EXPECT_TRUE(service.shardDegraded(0));

    // Poison blocks access but corrupts nothing: with the plan
    // cleared, every key reads back exactly as stored.
    service.shardDevice(0).clearFaultPlan();
    for (KvKey key = 1; key <= kKeys; ++key) {
        const auto value = service.get(0, key);
        ASSERT_TRUE(value.has_value()) << "key " << key;
        EXPECT_EQ(*value, KvValue::tagged(key, 5));
    }
    service.shutdown();
}

TEST(MediaFaults, ForcedReadOnlyRefusesMutationsIndividually)
{
    KvService service(baseConfig(1));
    std::vector<BatchOpResult> results;
    ASSERT_EQ(service.executeShardBatch(0, 0, putBatch(1, 16, 2),
                                        results),
              BatchStatus::Ok);

    service.setShardReadOnly(0, true);
    EXPECT_TRUE(service.shardReadOnly(0));
    EXPECT_TRUE(service.shardDegraded(0));

    // A mixed batch on a read-only shard: reads answer, mutations
    // are refused per-op with the typed flag, and nothing is staged.
    std::vector<BatchOp> mixed;
    BatchOp get;
    get.kind = BatchOp::Kind::Get;
    get.key = 1;
    mixed.push_back(get);
    BatchOp put;
    put.kind = BatchOp::Kind::Put;
    put.key = 500;
    put.value = KvValue::tagged(500, 9);
    mixed.push_back(put);
    BatchOp erase;
    erase.kind = BatchOp::Kind::Erase;
    erase.key = 2;
    mixed.push_back(erase);
    ASSERT_EQ(service.executeShardBatch(0, 0, mixed, results),
              BatchStatus::Ok);
    EXPECT_TRUE(results[0].ok);
    EXPECT_EQ(results[0].value, KvValue::tagged(1, 2));
    EXPECT_FALSE(results[1].ok);
    EXPECT_TRUE(results[1].rejectedReadOnly);
    EXPECT_FALSE(results[2].ok);
    EXPECT_TRUE(results[2].rejectedReadOnly);
    EXPECT_FALSE(service.get(0, 500).has_value());
    EXPECT_TRUE(service.get(0, 2).has_value())
        << "the refused erase must not have removed the key";

    // Clearing the mode restores full service.
    service.setShardReadOnly(0, false);
    EXPECT_FALSE(service.shardReadOnly(0));
    ASSERT_EQ(service.executeShardBatch(0, 0, {mixed[1]}, results),
              BatchStatus::Ok);
    EXPECT_TRUE(results[0].ok);
    EXPECT_TRUE(service.get(0, 500).has_value());
    service.shutdown();
}

TEST(MediaFaults, LogExhaustionFlipsReadOnlyAndReadsSurvive)
{
    // A deliberately tiny pool: sustained overwrites outrun log
    // reclamation, and the PoolExhausted throw must degrade the
    // shard to read-only instead of killing the service.
    KvServiceConfig config = baseConfig(1);
    config.shardPoolBytes = 2u << 20;
    KvService service(config);

    constexpr KvKey kKeys = 512;
    std::vector<BatchOpResult> results;
    bool exhausted = false;
    std::uint64_t payload = 1;
    for (int round = 0; round < 800 && !exhausted; ++round) {
        for (KvKey first = 1; first <= kKeys && !exhausted;
             first += 256) {
            const auto status = service.executeShardBatch(
                0, 0, putBatch(first, 256, payload), results);
            ++payload;
            if (status == BatchStatus::ReadOnly)
                exhausted = true;
            else
                ASSERT_EQ(status, BatchStatus::Ok);
        }
    }
    ASSERT_TRUE(exhausted)
        << "the 2 MiB pool never ran out of log space";
    EXPECT_TRUE(service.shardReadOnly(0));
    EXPECT_TRUE(service.shardDegraded(0));

    // Reads still work over the degraded shard, and every readable
    // value is untorn (the aborted exhausting run applied nothing
    // torn).
    std::uint64_t readable = 0;
    for (KvKey key = 1; key <= kKeys; ++key) {
        const auto value = service.get(0, key);
        if (!value.has_value())
            continue;
        EXPECT_TRUE(value->checkTag(key)) << "key " << key;
        ++readable;
    }
    EXPECT_GE(readable, 1u);

    // Read-only sticks: further mutations are refused per-op.
    ASSERT_EQ(service.executeShardBatch(0, 0, putBatch(1, 1, 99),
                                        results),
              BatchStatus::Ok);
    EXPECT_TRUE(results[0].rejectedReadOnly);
    service.shutdown();
}

TEST(MediaFaults, PmDirReattachRecoversEveryStrictPut)
{
    // File-backed persistence domain: strict puts, tear the service
    // down, reopen the same directory — the constructor reattaches
    // the images, replays recovery, and every put is intact.
    namespace fs = std::filesystem;
    char tmpl[] = "/tmp/specpmt_pmdir_test.XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    const std::string pm_dir = tmpl;

    KvServiceConfig config = baseConfig(2);
    config.pmDir = pm_dir;
    constexpr KvKey kKeys = 64;
    {
        KvService service(config);
        std::uint64_t payload = 11;
        for (KvKey key = 1; key <= kKeys; ++key)
            ASSERT_TRUE(service.put(service.shardOf(key) == 0 ? 0 : 1,
                                    key,
                                    KvValue::tagged(key, payload)))
                << "key " << key;
        service.shutdown();
    }

    {
        KvService revived(config);
        for (unsigned s = 0; s < 2; ++s)
            EXPECT_TRUE(revived.shardDevice(s).hadExistingData())
                << "shard " << s << " did not reattach its image";
        for (KvKey key = 1; key <= kKeys; ++key) {
            const auto value = revived.get(0, key);
            ASSERT_TRUE(value.has_value()) << "key " << key;
            EXPECT_EQ(*value, KvValue::tagged(key, 11));
        }
        revived.shutdown();
    }
    fs::remove_all(pm_dir);
}

} // namespace
} // namespace specpmt::kv
