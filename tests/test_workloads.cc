/**
 * @file
 * Workload correctness: every STAMP-analog kernel must satisfy its
 * application invariant, be deterministic per seed, and produce the
 * identical logical state under every crash-consistency runtime
 * (no-consistency baseline, PMDK undo, SPHT redo, SpecSPMT).
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/spec_tx.hh"
#include "pmem/pmem_device.hh"
#include "pmem/pmem_pool.hh"
#include "txn/spht_tx.hh"
#include "txn/undo_tx.hh"
#include "workloads/workload.hh"

namespace specpmt::workloads
{
namespace
{

constexpr double kTestScale = 0.03;

enum class Scheme
{
    Direct,
    Pmdk,
    Spht,
    Spec,
};

std::unique_ptr<txn::TxRuntime>
makeRuntime(Scheme scheme, pmem::PmemPool &pool)
{
    switch (scheme) {
      case Scheme::Direct:
        return std::make_unique<txn::DirectTx>(pool, 1);
      case Scheme::Pmdk:
        return std::make_unique<txn::PmdkUndoTx>(pool, 1);
      case Scheme::Spht:
        return std::make_unique<txn::SphtTx>(pool, 1, false);
      case Scheme::Spec: {
        core::SpecTxConfig config;
        config.backgroundReclaim = false;
        return std::make_unique<core::SpecTx>(pool, 1, config);
      }
    }
    return nullptr;
}

struct RunOutput
{
    bool verified;
    bool structural;
    std::uint64_t digest;
};

RunOutput
runOnce(WorkloadKind kind, Scheme scheme, std::uint64_t seed)
{
    pmem::PmemDevice dev(192u << 20);
    pmem::PmemPool pool(dev);
    auto runtime = makeRuntime(scheme, pool);
    WorkloadConfig config;
    config.seed = seed;
    config.scale = kTestScale;
    auto workload = makeWorkload(kind, config);
    workload->setup(*runtime);
    workload->run(*runtime);
    runtime->shutdown();
    return {workload->verify(*runtime),
            workload->verifyStructural(*runtime),
            workload->digest(*runtime)};
}

class WorkloadTest : public ::testing::TestWithParam<WorkloadKind>
{
};

TEST_P(WorkloadTest, InvariantHoldsAndDigestIsDeterministic)
{
    const auto first = runOnce(GetParam(), Scheme::Direct, 5);
    EXPECT_TRUE(first.verified);
    EXPECT_TRUE(first.structural);
    EXPECT_NE(first.digest, 0u);

    const auto again = runOnce(GetParam(), Scheme::Direct, 5);
    EXPECT_EQ(again.digest, first.digest) << "same seed, same state";

    const auto other_seed = runOnce(GetParam(), Scheme::Direct, 6);
    EXPECT_NE(other_seed.digest, first.digest)
        << "different seed must change the state";
}

TEST_P(WorkloadTest, AllRuntimesProduceIdenticalLogicalState)
{
    const auto reference = runOnce(GetParam(), Scheme::Direct, 9);
    ASSERT_TRUE(reference.verified);
    for (const Scheme scheme :
         {Scheme::Pmdk, Scheme::Spht, Scheme::Spec}) {
        const auto result = runOnce(GetParam(), scheme, 9);
        EXPECT_TRUE(result.verified)
            << "scheme " << static_cast<int>(scheme);
        EXPECT_EQ(result.digest, reference.digest)
            << "scheme " << static_cast<int>(scheme)
            << " diverged from the no-consistency baseline";
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadTest,
    ::testing::ValuesIn(allWorkloads()),
    [](const ::testing::TestParamInfo<WorkloadKind> &info) {
        std::string name = workloadKindName(info.param);
        for (auto &c : name) {
            if (c == '-')
                c = '_';
        }
        return name;
    });

} // namespace
} // namespace specpmt::workloads
