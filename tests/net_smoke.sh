#!/usr/bin/env bash
# Network smoke test: start `speckv serve` on an ephemeral port, drive
# it with the open-loop specnet_bench, shut the server down with
# SIGTERM, then gate the server-side metrics exposition with several
# `specstat check --require` assertions at once. Also proves the
# multi-require semantics: adding one failing assertion to the same
# invocation must flip the exit status.
#
# Usage: net_smoke.sh SPECKV SPECNET_BENCH SPECSTAT WORK_DIR
set -u

SPECKV=$1
SPECNET_BENCH=$2
SPECSTAT=$3
WORK_DIR=$4

mkdir -p "$WORK_DIR"
rm -f "$WORK_DIR"/port.txt "$WORK_DIR"/serve-metrics.prom \
      "$WORK_DIR"/bench.json "$WORK_DIR"/serve.log

fail() {
    echo "net_smoke: FAIL: $*" >&2
    [ -f "$WORK_DIR/serve.log" ] && cat "$WORK_DIR/serve.log" >&2
    exit 1
}

"$SPECKV" serve --runtime=spec --shards=2 --keys=2048 \
    --port=0 --port-file="$WORK_DIR/port.txt" --seconds=60 \
    --metrics-out="$WORK_DIR/serve-metrics.prom" \
    >"$WORK_DIR/serve.log" 2>&1 &
SERVE_PID=$!
trap 'kill -9 $SERVE_PID 2>/dev/null' EXIT

for _ in $(seq 1 100); do
    [ -s "$WORK_DIR/port.txt" ] && break
    kill -0 $SERVE_PID 2>/dev/null || fail "server exited early"
    sleep 0.1
done
[ -s "$WORK_DIR/port.txt" ] || fail "server never wrote the port file"

"$SPECNET_BENCH" --port-file="$WORK_DIR/port.txt" \
    --qps=4000 --seconds=2 --keys=2048 --mix=A --load \
    --json="$WORK_DIR/bench.json" \
    || fail "specnet_bench reported failure"

kill -TERM $SERVE_PID
wait $SERVE_PID || fail "server did not exit cleanly on SIGTERM"
trap - EXIT

[ -s "$WORK_DIR/serve-metrics.prom" ] || fail "no metrics artifact"
grep -q '"p99_ns"' "$WORK_DIR/bench.json" || fail "no bench artifact"

# Sampling-off hygiene: without --trace-sample the wire protocol and
# the exposition must be byte-identical to the pre-tracing build — no
# traced frames sent, no exemplars rendered.
grep -q '"traced_sent": 0' "$WORK_DIR/bench.json" \
    || fail "bench sent traced frames with sampling off"
if grep -q '# {trace_id=' "$WORK_DIR/serve-metrics.prom"; then
    fail "exemplars leaked into the exposition with sampling off"
fi

# The real gate: several assertions in ONE check invocation.
"$SPECSTAT" check "$WORK_DIR/serve-metrics.prom" \
    --require='specpmt_net_protocol_errors_total==0' \
    --require='specpmt_net_frames_rx_total>=8000' \
    --require='specpmt_net_connections_total>=2' \
    --require='specpmt_net_batch_commits_total>=1' \
    || fail "specstat check rejected the serve metrics"

# Multi-require semantics: one failing assertion among passing ones
# must fail the whole invocation.
if "$SPECSTAT" check "$WORK_DIR/serve-metrics.prom" \
    --require='specpmt_net_protocol_errors_total==0' \
    --require='specpmt_net_frames_rx_total<1' \
    >/dev/null 2>&1; then
    fail "specstat check ignored a failing --require"
fi

# Second phase: the same serve/load pair with epoch group commit on
# and a strict minority in the traffic, plus the live telemetry
# plane. The epoch counters prove the relaxed path actually ran
# (commits joined epochs, epochs sealed) and that nothing was dropped
# on the floor at shutdown (the final seal leaves no pending
# transactions behind); the admin endpoint is scraped MID-LOAD to
# prove /metrics and /healthz answer while the shard loops are busy.
# The bench also samples 5% of requests into the wire trace
# extension, so this phase doubles as the end-to-end tracing gate:
# exemplars on the live scrape, PM cost metrics with real values,
# and a client+server waterfall merged by `specstat trace`.
rm -f "$WORK_DIR"/port.txt "$WORK_DIR"/admin.txt
"$SPECKV" serve --runtime=spec --shards=2 --keys=2048 \
    --port=0 --port-file="$WORK_DIR/port.txt" --seconds=60 \
    --group-commit --epoch-max-ops=16 --epoch-max-delay-us=300 \
    --admin-port=0 --admin-port-file="$WORK_DIR/admin.txt" \
    --slow-us=100000 \
    --metrics-out="$WORK_DIR/serve-epoch-metrics.prom" \
    --trace-out="$WORK_DIR/serve-epoch-trace.json" \
    >"$WORK_DIR/serve-epoch.log" 2>&1 &
SERVE_PID=$!
trap 'kill -9 $SERVE_PID 2>/dev/null' EXIT

for _ in $(seq 1 100); do
    [ -s "$WORK_DIR/port.txt" ] && [ -s "$WORK_DIR/admin.txt" ] && break
    kill -0 $SERVE_PID 2>/dev/null || fail "epoch server exited early"
    sleep 0.1
done
[ -s "$WORK_DIR/port.txt" ] || fail "epoch server never wrote port"
[ -s "$WORK_DIR/admin.txt" ] || fail "epoch server never wrote admin port"
ADMIN=$(cat "$WORK_DIR/admin.txt")

"$SPECNET_BENCH" --port-file="$WORK_DIR/port.txt" \
    --qps=4000 --seconds=4 --keys=2048 --mix=A --strict=0.1 --load \
    --trace-sample=0.05 \
    --trace-out="$WORK_DIR/bench-epoch-trace.json" \
    --json="$WORK_DIR/bench-epoch.json" \
    >"$WORK_DIR/bench-epoch.log" 2>&1 &
BENCH_PID=$!

# --- Mid-load telemetry gates (the bench is still driving load) ---
sleep 1

# /healthz must be 200 with every shard live, and the stage
# histograms must already carry samples.
"$SPECSTAT" check "http://127.0.0.1:$ADMIN/healthz" \
    "http://127.0.0.1:$ADMIN/metrics" \
    --require='specpmt_net_stage_exec_count>0' \
    --require='specpmt_net_stage_queue_count>0' \
    --require='specpmt_net_stage_write_count>0' \
    || fail "mid-load admin scrape gate failed"

# A sampled request's trace id must surface as an OpenMetrics
# exemplar on the live /metrics scrape while load is still running.
if command -v curl >/dev/null 2>&1; then
    curl -s "http://127.0.0.1:$ADMIN/metrics" \
        >"$WORK_DIR/live-metrics.prom"
    grep -q '# {trace_id=' "$WORK_DIR/live-metrics.prom" \
        || fail "no exemplar on the live /metrics scrape"
fi

# Epoch seal lag stays bounded on every shard while relaxed commits
# stream through (the per-shard gauges are labeled, so gate via dump).
"$SPECSTAT" dump "http://127.0.0.1:$ADMIN/metrics" \
    | awk '/^specpmt_epoch_seal_lag/ { if ($2 + 0 > 64) bad = 1 }
           END { exit bad ? 1 : 0 }' \
    || fail "epoch seal lag unbounded mid-load"

# Two /metrics scrapes rendered as one terminal frame: non-zero QPS
# and a real per-stage p99 for the exec stage.
"$SPECSTAT" top --port="$ADMIN" --interval=0.5 --once \
    >"$WORK_DIR/top.txt" || fail "specstat top --once failed"
awk '/^qps / { seen = 1; if ($2 + 0 <= 0) bad = 1 }
     /^exec / { if ($3 == "-") bad = 1 }
     END { exit (seen && !bad) ? 0 : 1 }' "$WORK_DIR/top.txt" \
    || { cat "$WORK_DIR/top.txt" >&2; fail "specstat top frame bogus"; }

# stats.json must flatten into the same series — through stdin when
# curl is around to pipe it, else fetched by specstat itself.
if command -v curl >/dev/null 2>&1; then
    curl -s "http://127.0.0.1:$ADMIN/stats.json" \
        >"$WORK_DIR/stats.json"
    "$SPECSTAT" dump - <"$WORK_DIR/stats.json" \
        | grep -q '^specpmt_net_frames_rx_total' \
        || fail "stats.json did not flatten through specstat dump -"
else
    "$SPECSTAT" dump "http://127.0.0.1:$ADMIN/stats.json" \
        | grep -q '^specpmt_net_frames_rx_total' \
        || fail "stats.json did not flatten through specstat dump"
fi

wait $BENCH_PID || fail "specnet_bench (epoch serve) reported failure"

kill -TERM $SERVE_PID
wait $SERVE_PID || fail "epoch server did not exit cleanly"
trap - EXIT

"$SPECSTAT" check "$WORK_DIR/serve-epoch-metrics.prom" \
    "$WORK_DIR/serve-epoch-trace.json" \
    --require='specpmt_net_protocol_errors_total==0' \
    --require='specpmt_epoch_relaxed_commits_total>=1000' \
    --require='specpmt_epoch_seals_total>=10' \
    --require='specpmt_epoch_pending_txs==0' \
    || fail "specstat check rejected the epoch serve metrics"

# PM cost accounting gates: every commit was charged (write
# amplification is log bytes over user bytes, so >= 1 whenever the
# log wrote anything), and the flush/fence budget per transaction
# stays within the speculative-logging design envelope.
"$SPECSTAT" check "$WORK_DIR/serve-epoch-metrics.prom" \
    --require='specpmt_pm_txs_total>=1000' \
    --require='specpmt_pm_user_bytes_total>0' \
    --require='specpmt_pm_write_amp>=1' \
    --require='specpmt_pm_flushes_per_tx<=8' \
    --require='specpmt_pm_fences_per_tx<=4' \
    || fail "specstat check rejected the PM cost metrics"

# The metrics artifact carries the sampled exemplars even without a
# live scrape (same renderer as /metrics).
grep -q '# {trace_id=' "$WORK_DIR/serve-epoch-metrics.prom" \
    || fail "no exemplar in the serve metrics artifact"

# End-to-end waterfall: merge the client-side capture with the
# server-side one; `specstat trace` must correlate at least one
# sampled request across both (exit 1 = no correlated spans), and
# the slowest waterfall must span wire, server stages, and the PM
# cost vector attributed to its exec span.
"$SPECSTAT" trace --slowest=1 \
    "$WORK_DIR/bench-epoch-trace.json" \
    "$WORK_DIR/serve-epoch-trace.json" \
    >"$WORK_DIR/trace.txt" \
    || fail "specstat trace found no correlated spans"
for needle in client_rtt srv_exec 'pm: user'; do
    grep -q "$needle" "$WORK_DIR/trace.txt" \
        || { cat "$WORK_DIR/trace.txt" >&2
             fail "merged waterfall missing '$needle'"; }
done
echo "net_smoke: merged waterfall:"
cat "$WORK_DIR/trace.txt"

# Stage attribution sanity: the per-stage means must be positive and
# their sum bounded by the loadgen's end-to-end update mean — the
# server-side stages are a subset of what the open-loop client times
# (which also carries client-side work and intended-departure wait).
STAGE_SUM_NS=$("$SPECSTAT" dump "$WORK_DIR/serve-epoch-metrics.prom" \
    | awk '/^specpmt_net_stage_[a-z_]*_sum /   { s[$1] = $2 }
           /^specpmt_net_stage_[a-z_]*_count / { c[$1] = $2 }
           END {
               total = 0
               for (k in s) {
                   ck = k; sub(/_sum$/, "_count", ck)
                   if (c[ck] + 0 > 0) total += s[k] / c[ck]
               }
               print total
           }')
E2E_NS=$(tr ',' '\n' <"$WORK_DIR/bench-epoch.json" \
    | awk '/"update_latency"/ { inupd = 1 }
           inupd && /"mean_ns"/ { gsub(/[^0-9.]/, "", $0); print; exit }')
awk -v s="$STAGE_SUM_NS" -v e="$E2E_NS" \
    'BEGIN { exit (s + 0 > 0 && s <= e + 0) ? 0 : 1 }' \
    || fail "stage means ($STAGE_SUM_NS ns) not within loadgen e2e mean ($E2E_NS ns)"
echo "net_smoke: stage-mean sum ${STAGE_SUM_NS}ns <= e2e mean ${E2E_NS}ns"

echo "net_smoke: OK"
