#!/usr/bin/env bash
# Network smoke test: start `speckv serve` on an ephemeral port, drive
# it with the open-loop specnet_bench, shut the server down with
# SIGTERM, then gate the server-side metrics exposition with several
# `specstat check --require` assertions at once. Also proves the
# multi-require semantics: adding one failing assertion to the same
# invocation must flip the exit status.
#
# Usage: net_smoke.sh SPECKV SPECNET_BENCH SPECSTAT WORK_DIR
set -u

SPECKV=$1
SPECNET_BENCH=$2
SPECSTAT=$3
WORK_DIR=$4

mkdir -p "$WORK_DIR"
rm -f "$WORK_DIR"/port.txt "$WORK_DIR"/serve-metrics.prom \
      "$WORK_DIR"/bench.json "$WORK_DIR"/serve.log

fail() {
    echo "net_smoke: FAIL: $*" >&2
    [ -f "$WORK_DIR/serve.log" ] && cat "$WORK_DIR/serve.log" >&2
    exit 1
}

"$SPECKV" serve --runtime=spec --shards=2 --keys=2048 \
    --port=0 --port-file="$WORK_DIR/port.txt" --seconds=60 \
    --metrics-out="$WORK_DIR/serve-metrics.prom" \
    >"$WORK_DIR/serve.log" 2>&1 &
SERVE_PID=$!
trap 'kill -9 $SERVE_PID 2>/dev/null' EXIT

for _ in $(seq 1 100); do
    [ -s "$WORK_DIR/port.txt" ] && break
    kill -0 $SERVE_PID 2>/dev/null || fail "server exited early"
    sleep 0.1
done
[ -s "$WORK_DIR/port.txt" ] || fail "server never wrote the port file"

"$SPECNET_BENCH" --port-file="$WORK_DIR/port.txt" \
    --qps=4000 --seconds=2 --keys=2048 --mix=A --load \
    --json="$WORK_DIR/bench.json" \
    || fail "specnet_bench reported failure"

kill -TERM $SERVE_PID
wait $SERVE_PID || fail "server did not exit cleanly on SIGTERM"
trap - EXIT

[ -s "$WORK_DIR/serve-metrics.prom" ] || fail "no metrics artifact"
grep -q '"p99_ns"' "$WORK_DIR/bench.json" || fail "no bench artifact"

# The real gate: several assertions in ONE check invocation.
"$SPECSTAT" check "$WORK_DIR/serve-metrics.prom" \
    --require='specpmt_net_protocol_errors_total==0' \
    --require='specpmt_net_frames_rx_total>=8000' \
    --require='specpmt_net_connections_total>=2' \
    --require='specpmt_net_batch_commits_total>=1' \
    || fail "specstat check rejected the serve metrics"

# Multi-require semantics: one failing assertion among passing ones
# must fail the whole invocation.
if "$SPECSTAT" check "$WORK_DIR/serve-metrics.prom" \
    --require='specpmt_net_protocol_errors_total==0' \
    --require='specpmt_net_frames_rx_total<1' \
    >/dev/null 2>&1; then
    fail "specstat check ignored a failing --require"
fi

# Second phase: the same serve/load pair with epoch group commit on
# and a strict minority in the traffic. The epoch counters prove the
# relaxed path actually ran (commits joined epochs, epochs sealed)
# and that nothing was dropped on the floor at shutdown (the final
# seal leaves no pending transactions behind).
rm -f "$WORK_DIR"/port.txt
"$SPECKV" serve --runtime=spec --shards=2 --keys=2048 \
    --port=0 --port-file="$WORK_DIR/port.txt" --seconds=60 \
    --group-commit --epoch-max-ops=16 --epoch-max-delay-us=300 \
    --metrics-out="$WORK_DIR/serve-epoch-metrics.prom" \
    >"$WORK_DIR/serve-epoch.log" 2>&1 &
SERVE_PID=$!
trap 'kill -9 $SERVE_PID 2>/dev/null' EXIT

for _ in $(seq 1 100); do
    [ -s "$WORK_DIR/port.txt" ] && break
    kill -0 $SERVE_PID 2>/dev/null || fail "epoch server exited early"
    sleep 0.1
done
[ -s "$WORK_DIR/port.txt" ] || fail "epoch server never wrote port"

"$SPECNET_BENCH" --port-file="$WORK_DIR/port.txt" \
    --qps=4000 --seconds=2 --keys=2048 --mix=A --strict=0.1 --load \
    --json="$WORK_DIR/bench-epoch.json" \
    || fail "specnet_bench (epoch serve) reported failure"

kill -TERM $SERVE_PID
wait $SERVE_PID || fail "epoch server did not exit cleanly"
trap - EXIT

"$SPECSTAT" check "$WORK_DIR/serve-epoch-metrics.prom" \
    --require='specpmt_net_protocol_errors_total==0' \
    --require='specpmt_epoch_relaxed_commits_total>=1000' \
    --require='specpmt_epoch_seals_total>=10' \
    --require='specpmt_epoch_pending_txs==0' \
    || fail "specstat check rejected the epoch serve metrics"

echo "net_smoke: OK"
