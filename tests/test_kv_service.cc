/**
 * @file
 * Crash-consistency and concurrency tests for the sharded KV service.
 * Crash coverage is explorer-backed: every persistence-event crash
 * point of a YCSB-A-style mixed run is enumerated per runtime ×
 * eviction-policy cell (after recovery every shard must equal a
 * prefix of its committed transactions — no acknowledged put may be
 * lost and no partial transaction may be visible), plus
 * multi-threaded smoke and recovery tests.
 */

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "common/rand.hh"
#include "kv/driver.hh"
#include "kv/kv_crash_workload.hh"
#include "kv/kv_service.hh"

namespace specpmt::kv
{
namespace
{

constexpr std::uint64_t kKeys = 256;

KvServiceConfig
crashTestConfig(const std::string &runtime)
{
    KvServiceConfig config;
    config.shards = 4;
    config.threads = 1;
    config.runtime = runtime;
    config.bucketsPerShard = 512;
    config.shardPoolBytes = 8u << 20;
    // Deterministic crash testing: no background threads, small log
    // blocks so transactions span block boundaries.
    config.runtimeOptions.backgroundWorkers = false;
    config.runtimeOptions.specLogBlockSize = 256;
    return config;
}

using Param = std::tuple<const char *, const char *>;

class KvCrashTest : public ::testing::TestWithParam<Param>
{
};

TEST_P(KvCrashTest, ShardsRecoverToCommittedPrefixAtEveryCrashPoint)
{
    const auto [runtime, policy] = GetParam();

    sim::CrashCell cell;
    cell.runtime = runtime;
    cell.workload = "kv";
    cell.policy = policy;
    cell.seed = 2000;
    cell.kvShards = 2;
    cell.kvKeys = 48;
    cell.kvOps = 16;

    sim::CrashExplorer explorer(cell, kvCrashWorkloadFactory());
    sim::ExploreOptions options;
    options.jobs = 2;
    options.verifyContinuation = true;
    const auto report = explorer.explore(options);

    ASSERT_EQ(report.error, "");
    EXPECT_GT(report.totalEvents, 0u);
    EXPECT_EQ(report.explored + report.pruned, report.candidatePoints);
    EXPECT_EQ(report.candidatePoints, report.totalEvents);
    for (const auto &failure : report.failures) {
        ADD_FAILURE() << failure.message
                      << "\n  replay: crashmatrix --replay='"
                      << failure.token << "'";
    }
}

std::string
paramName(const ::testing::TestParamInfo<Param> &info)
{
    std::string name = std::get<0>(info.param);
    name += "_";
    name += std::get<1>(info.param);
    for (auto &c : name) {
        if (c == '-')
            c = '_';
    }
    return name;
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, KvCrashTest,
    ::testing::Combine(::testing::Values("spec", "spec-dp", "pmdk",
                                         "spht"),
                       ::testing::Values("nothing", "everything",
                                         "random")),
    paramName);

TEST(KvService, RoutesAndBasicOps)
{
    KvService service(crashTestConfig("spec"));
    EXPECT_FALSE(service.get(0, 42).has_value());
    EXPECT_TRUE(service.put(0, 42, KvValue::tagged(42, 7)));
    const auto value = service.get(0, 42);
    ASSERT_TRUE(value.has_value());
    EXPECT_TRUE(value->checkTag(42));
    EXPECT_EQ(value->words[1], 7u);
    EXPECT_TRUE(service.erase(0, 42));
    EXPECT_FALSE(service.erase(0, 42));
    EXPECT_FALSE(service.get(0, 42).has_value());

    // Keys spread over all shards.
    std::vector<bool> hit(service.numShards(), false);
    for (KvKey key = 0; key < 64; ++key)
        hit[service.shardOf(key)] = true;
    for (unsigned s = 0; s < service.numShards(); ++s)
        EXPECT_TRUE(hit[s]) << "shard " << s << " never selected";
    service.shutdown();
}

TEST(KvService, MultiPutSpansShards)
{
    KvService service(crashTestConfig("spec"));
    std::vector<std::pair<KvKey, KvValue>> batch;
    for (KvKey key = 1; key <= 64; ++key)
        batch.emplace_back(key, KvValue::tagged(key, key * 3));
    EXPECT_TRUE(service.multiPut(0, batch));
    std::uint64_t txs = 0;
    for (unsigned s = 0; s < service.numShards(); ++s)
        txs += service.shardSnapshot(s).committedTxs;
    // One shard-local transaction per touched shard, not per key.
    EXPECT_EQ(txs, service.numShards());
    for (KvKey key = 1; key <= 64; ++key) {
        const auto value = service.get(0, key);
        ASSERT_TRUE(value.has_value()) << "key " << key;
        EXPECT_EQ(value->words[1], key * 3);
    }
    service.shutdown();
}

TEST(KvService, ConcurrentClientsPreserveEveryAcknowledgedPut)
{
    KvServiceConfig config = crashTestConfig("spec");
    config.threads = 4;
    KvService service(config);

    // Each thread owns a key range and also hammers a shared hot set,
    // exercising stripe locking and the insert structure lock.
    constexpr unsigned kThreads = 4;
    constexpr std::uint64_t kPerThread = 400;
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&service, t] {
            Rng rng(t + 1);
            for (std::uint64_t i = 0; i < kPerThread; ++i) {
                const KvKey own = 1000 + t * kPerThread + i;
                ASSERT_TRUE(service.put(
                    t, own, KvValue::tagged(own, rng.next())));
                const KvKey hot = 1 + rng.below(16);
                ASSERT_TRUE(service.put(
                    t, hot, KvValue::tagged(hot, rng.next())));
                const auto read = service.get(t, hot);
                if (read) {
                    EXPECT_TRUE(read->checkTag(hot));
                }
            }
        });
    }
    for (auto &thread : threads)
        thread.join();

    // Every thread-owned key must be present and intact; hot keys
    // must hold some thread's complete write (no torn values).
    for (unsigned t = 0; t < kThreads; ++t) {
        for (std::uint64_t i = 0; i < kPerThread; ++i) {
            const KvKey own = 1000 + t * kPerThread + i;
            const auto value = service.get(0, own);
            ASSERT_TRUE(value.has_value()) << "lost key " << own;
            EXPECT_TRUE(value->checkTag(own));
        }
    }
    for (KvKey hot = 1; hot <= 16; ++hot) {
        const auto value = service.get(0, hot);
        ASSERT_TRUE(value.has_value());
        EXPECT_TRUE(value->checkTag(hot));
    }
    service.shutdown();
}

TEST(KvService, ParallelRecoveryAfterConcurrentRun)
{
    KvServiceConfig config = crashTestConfig("spec");
    config.threads = 4;
    KvService service(config);

    DriverConfig driver;
    driver.threads = 4;
    driver.keys = kKeys;
    driver.opsPerThread = 500;
    driver.mix = Mix::A;
    driver.multiPutFraction = 0.1;
    loadKeyspace(service, driver);
    const auto result = runClosedLoop(service, driver);
    EXPECT_EQ(result.failed, 0u);
    EXPECT_FALSE(result.crashed);
    EXPECT_EQ(result.totalOps(),
              driver.threads * driver.opsPerThread);
    EXPECT_GT(result.readLatency.count(), 0u);
    EXPECT_GT(result.updateLatency.count(), 0u);

    // Power-fail everything, recover all shards in parallel, and
    // check no loaded key was lost and no value is torn.
    service.crash(pmem::CrashPolicy::random(3, 0.5));
    service.recover();
    for (KvKey key = 1; key <= kKeys; ++key) {
        const auto value = service.get(0, key);
        ASSERT_TRUE(value.has_value()) << "lost key " << key;
        EXPECT_TRUE(value->checkTag(key));
    }
    service.shutdown();
}

TEST(ZipfianGenerator, SkewsTowardLowRanks)
{
    ZipfianGenerator zipf(1000, 0.99);
    Rng rng(11);
    unsigned top10 = 0;
    constexpr unsigned kDraws = 20000;
    for (unsigned i = 0; i < kDraws; ++i) {
        const auto rank = zipf.next(rng);
        ASSERT_LT(rank, 1000u);
        if (rank < 10)
            ++top10;
    }
    // Under uniform the top-10 share would be 1%; zipf(0.99) puts
    // roughly a third of the mass there.
    EXPECT_GT(top10, kDraws / 10);
}

} // namespace
} // namespace specpmt::kv
