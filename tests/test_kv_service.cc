/**
 * @file
 * Crash-consistency and concurrency tests for the sharded KV service:
 * a crash-at-every-point × eviction-policy sweep during a YCSB-A-style
 * mixed workload (after recovery every shard must equal a prefix of
 * its committed transactions — no acknowledged put may be lost and no
 * partial transaction may be visible), plus multi-threaded smoke and
 * recovery tests.
 */

#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "common/rand.hh"
#include "kv/driver.hh"
#include "kv/kv_service.hh"

namespace specpmt::kv
{
namespace
{

constexpr std::uint64_t kKeys = 256;

KvServiceConfig
crashTestConfig(const std::string &runtime)
{
    KvServiceConfig config;
    config.shards = 4;
    config.threads = 1;
    config.runtime = runtime;
    config.bucketsPerShard = 512;
    config.shardPoolBytes = 8u << 20;
    // Deterministic crash testing: no background threads, small log
    // blocks so transactions span block boundaries.
    config.runtimeOptions.backgroundWorkers = false;
    config.runtimeOptions.specLogBlockSize = 256;
    return config;
}

/**
 * A single-client YCSB-A-style scenario (50% reads, 40% puts, 10%
 * cross-shard multiPuts over a zipfian-free uniform keyspace) with a
 * shadow of every acknowledged mutation, crash injection, and
 * per-shard prefix-consistency verification.
 */
class KvCrashScenario
{
  public:
    explicit KvCrashScenario(const std::string &runtime)
        : service_(crashTestConfig(runtime))
    {
        for (KvKey key = 1; key <= kKeys; ++key) {
            const auto value = KvValue::tagged(key, 0);
            EXPECT_TRUE(service_.put(0, key, value));
            committed_[key] = value;
        }
    }

    /**
     * Run @p ops mixed operations with a crash armed after
     * @p crash_after persistence ops on every shard device; returns
     * true if the power failure fired.
     */
    bool
    runWithCrash(long crash_after, unsigned ops, std::uint64_t seed)
    {
        Rng rng(seed);
        service_.armCrashAll(crash_after);
        try {
            for (unsigned i = 0; i < ops; ++i) {
                staged_.clear();
                const double dice = rng.uniform();
                if (dice < 0.5) {
                    const KvKey key = 1 + rng.below(kKeys);
                    const auto value = service_.get(0, key);
                    if (value) {
                        EXPECT_TRUE(value->checkTag(key));
                    }
                } else if (dice < 0.9) {
                    const KvKey key = 1 + rng.below(kKeys);
                    const auto value =
                        KvValue::tagged(key, rng.next() | 1);
                    staged_[key] = value;
                    if (service_.put(0, key, value))
                        committed_[key] = value;
                    staged_.clear();
                } else {
                    std::vector<std::pair<KvKey, KvValue>> batch;
                    for (unsigned b = 0; b < 4; ++b) {
                        const KvKey key = 1 + rng.below(kKeys);
                        const auto value =
                            KvValue::tagged(key, rng.next() | 1);
                        batch.emplace_back(key, value);
                        staged_[key] = value;
                    }
                    if (service_.multiPut(0, batch)) {
                        for (const auto &[key, value] : batch)
                            committed_[key] = value;
                    }
                    staged_.clear();
                }
            }
        } catch (const pmem::SimulatedCrash &) {
            return true;
        }
        service_.armCrashAll(-1);
        return false;
    }

    void
    crashAndRecover(const pmem::CrashPolicy &policy)
    {
        service_.crash(policy);
        service_.recover();
    }

    /**
     * Atomic-durability check: per shard, the surviving state must be
     * the acknowledged (committed) state, possibly plus the *whole*
     * shard-local part of the one in-flight transaction. Any torn
     * value, lost acknowledged put, or partially applied shard
     * transaction is a failure.
     */
    std::string
    verifyAtomicity()
    {
        for (unsigned s = 0; s < service_.numShards(); ++s) {
            bool matches_committed = true;
            bool matches_overlay = true;
            std::string detail;
            for (KvKey key = 1; key <= kKeys; ++key) {
                if (service_.shardOf(key) != s)
                    continue;
                const auto actual = service_.get(0, key);
                const auto committed = lookup(committed_, key);
                auto overlay = committed;
                if (auto it = staged_.find(key); it != staged_.end())
                    overlay = it->second;
                if (!same(actual, committed)) {
                    matches_committed = false;
                    detail += " key " + std::to_string(key);
                }
                if (!same(actual, overlay))
                    matches_overlay = false;
            }
            if (!matches_committed && !matches_overlay) {
                return "shard " + std::to_string(s) +
                       " holds a partial transaction:" + detail;
            }
        }
        return {};
    }

    /** Adopt the surviving state as the new acknowledged baseline. */
    void
    rebaseline()
    {
        committed_.clear();
        for (KvKey key = 1; key <= kKeys; ++key) {
            if (const auto value = service_.get(0, key))
                committed_[key] = *value;
        }
        staged_.clear();
    }

    /** Exact-state check (crash-free phases). */
    std::string
    verifyExact()
    {
        for (KvKey key = 1; key <= kKeys; ++key) {
            const auto actual = service_.get(0, key);
            if (!same(actual, lookup(committed_, key)))
                return "key " + std::to_string(key) + " diverges";
        }
        return {};
    }

    KvService &service() { return service_; }

  private:
    static std::optional<KvValue>
    lookup(const std::map<KvKey, KvValue> &map, KvKey key)
    {
        const auto it = map.find(key);
        return it == map.end() ? std::nullopt
                               : std::optional(it->second);
    }

    static bool
    same(const std::optional<KvValue> &a,
         const std::optional<KvValue> &b)
    {
        if (a.has_value() != b.has_value())
            return false;
        return !a || *a == *b;
    }

    KvService service_;
    std::map<KvKey, KvValue> committed_;
    std::map<KvKey, KvValue> staged_;
};

enum class PolicyKind
{
    Nothing,
    Everything,
    Random,
};

const char *
policyName(PolicyKind kind)
{
    switch (kind) {
      case PolicyKind::Nothing:
        return "nothing";
      case PolicyKind::Everything:
        return "everything";
      case PolicyKind::Random:
        return "random";
    }
    return "?";
}

pmem::CrashPolicy
makePolicy(PolicyKind kind, std::uint64_t seed)
{
    switch (kind) {
      case PolicyKind::Nothing:
        return pmem::CrashPolicy::nothing();
      case PolicyKind::Everything:
        return pmem::CrashPolicy::everything();
      case PolicyKind::Random:
        return pmem::CrashPolicy::random(seed, 0.5);
    }
    return pmem::CrashPolicy::nothing();
}

using Param = std::tuple<std::string, long, PolicyKind>;

class KvCrashTest : public ::testing::TestWithParam<Param>
{
};

TEST_P(KvCrashTest, ShardsRecoverToCommittedPrefix)
{
    const auto &[runtime, crash_after, policy_kind] = GetParam();

    KvCrashScenario scenario(runtime);
    const bool crashed = scenario.runWithCrash(
        crash_after, /*ops=*/64,
        /*seed=*/2000 + static_cast<std::uint64_t>(crash_after));

    scenario.crashAndRecover(makePolicy(
        policy_kind, static_cast<std::uint64_t>(crash_after) * 13 + 5));

    const std::string failure = scenario.verifyAtomicity();
    EXPECT_TRUE(failure.empty())
        << runtime << " crash_after=" << crash_after
        << " policy=" << policyName(policy_kind)
        << " crashed=" << crashed << ": " << failure;

    // The recovered service must keep serving and survive a second,
    // adversarial crash.
    scenario.rebaseline();
    const bool crashed_again =
        scenario.runWithCrash(-1, /*ops=*/24, /*seed=*/99);
    EXPECT_FALSE(crashed_again);
    ASSERT_EQ(scenario.verifyExact(), "");

    scenario.crashAndRecover(pmem::CrashPolicy::nothing());
    EXPECT_EQ(scenario.verifyExact(), "") << "second crash";
}

constexpr long kCrashPoints[] = {1,   3,   7,   15,  31,   63,
                                 127, 255, 511, 1023, 1u << 20};

std::string
paramName(const ::testing::TestParamInfo<Param> &info)
{
    const auto &[runtime, crash_after, policy] = info.param;
    std::string name = runtime;
    for (auto &c : name) {
        if (c == '-')
            c = '_';
    }
    return name + "_c" + std::to_string(crash_after) + "_" +
           policyName(policy);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KvCrashTest,
    ::testing::Combine(::testing::Values("spec", "spec-dp", "pmdk",
                                         "spht"),
                       ::testing::ValuesIn(kCrashPoints),
                       ::testing::Values(PolicyKind::Nothing,
                                         PolicyKind::Everything,
                                         PolicyKind::Random)),
    paramName);

TEST(KvService, RoutesAndBasicOps)
{
    KvService service(crashTestConfig("spec"));
    EXPECT_FALSE(service.get(0, 42).has_value());
    EXPECT_TRUE(service.put(0, 42, KvValue::tagged(42, 7)));
    const auto value = service.get(0, 42);
    ASSERT_TRUE(value.has_value());
    EXPECT_TRUE(value->checkTag(42));
    EXPECT_EQ(value->words[1], 7u);
    EXPECT_TRUE(service.erase(0, 42));
    EXPECT_FALSE(service.erase(0, 42));
    EXPECT_FALSE(service.get(0, 42).has_value());

    // Keys spread over all shards.
    std::vector<bool> hit(service.numShards(), false);
    for (KvKey key = 0; key < 64; ++key)
        hit[service.shardOf(key)] = true;
    for (unsigned s = 0; s < service.numShards(); ++s)
        EXPECT_TRUE(hit[s]) << "shard " << s << " never selected";
    service.shutdown();
}

TEST(KvService, MultiPutSpansShards)
{
    KvService service(crashTestConfig("spec"));
    std::vector<std::pair<KvKey, KvValue>> batch;
    for (KvKey key = 1; key <= 64; ++key)
        batch.emplace_back(key, KvValue::tagged(key, key * 3));
    EXPECT_TRUE(service.multiPut(0, batch));
    std::uint64_t txs = 0;
    for (unsigned s = 0; s < service.numShards(); ++s)
        txs += service.shardSnapshot(s).committedTxs;
    // One shard-local transaction per touched shard, not per key.
    EXPECT_EQ(txs, service.numShards());
    for (KvKey key = 1; key <= 64; ++key) {
        const auto value = service.get(0, key);
        ASSERT_TRUE(value.has_value()) << "key " << key;
        EXPECT_EQ(value->words[1], key * 3);
    }
    service.shutdown();
}

TEST(KvService, ConcurrentClientsPreserveEveryAcknowledgedPut)
{
    KvServiceConfig config = crashTestConfig("spec");
    config.threads = 4;
    KvService service(config);

    // Each thread owns a key range and also hammers a shared hot set,
    // exercising stripe locking and the insert structure lock.
    constexpr unsigned kThreads = 4;
    constexpr std::uint64_t kPerThread = 400;
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&service, t] {
            Rng rng(t + 1);
            for (std::uint64_t i = 0; i < kPerThread; ++i) {
                const KvKey own = 1000 + t * kPerThread + i;
                ASSERT_TRUE(service.put(
                    t, own, KvValue::tagged(own, rng.next())));
                const KvKey hot = 1 + rng.below(16);
                ASSERT_TRUE(service.put(
                    t, hot, KvValue::tagged(hot, rng.next())));
                const auto read = service.get(t, hot);
                if (read) {
                    EXPECT_TRUE(read->checkTag(hot));
                }
            }
        });
    }
    for (auto &thread : threads)
        thread.join();

    // Every thread-owned key must be present and intact; hot keys
    // must hold some thread's complete write (no torn values).
    for (unsigned t = 0; t < kThreads; ++t) {
        for (std::uint64_t i = 0; i < kPerThread; ++i) {
            const KvKey own = 1000 + t * kPerThread + i;
            const auto value = service.get(0, own);
            ASSERT_TRUE(value.has_value()) << "lost key " << own;
            EXPECT_TRUE(value->checkTag(own));
        }
    }
    for (KvKey hot = 1; hot <= 16; ++hot) {
        const auto value = service.get(0, hot);
        ASSERT_TRUE(value.has_value());
        EXPECT_TRUE(value->checkTag(hot));
    }
    service.shutdown();
}

TEST(KvService, ParallelRecoveryAfterConcurrentRun)
{
    KvServiceConfig config = crashTestConfig("spec");
    config.threads = 4;
    KvService service(config);

    DriverConfig driver;
    driver.threads = 4;
    driver.keys = kKeys;
    driver.opsPerThread = 500;
    driver.mix = Mix::A;
    driver.multiPutFraction = 0.1;
    loadKeyspace(service, driver);
    const auto result = runClosedLoop(service, driver);
    EXPECT_EQ(result.failed, 0u);
    EXPECT_FALSE(result.crashed);
    EXPECT_EQ(result.totalOps(),
              driver.threads * driver.opsPerThread);
    EXPECT_GT(result.readLatency.count(), 0u);
    EXPECT_GT(result.updateLatency.count(), 0u);

    // Power-fail everything, recover all shards in parallel, and
    // check no loaded key was lost and no value is torn.
    service.crash(pmem::CrashPolicy::random(3, 0.5));
    service.recover();
    for (KvKey key = 1; key <= kKeys; ++key) {
        const auto value = service.get(0, key);
        ASSERT_TRUE(value.has_value()) << "lost key " << key;
        EXPECT_TRUE(value->checkTag(key));
    }
    service.shutdown();
}

TEST(ZipfianGenerator, SkewsTowardLowRanks)
{
    ZipfianGenerator zipf(1000, 0.99);
    Rng rng(11);
    unsigned top10 = 0;
    constexpr unsigned kDraws = 20000;
    for (unsigned i = 0; i < kDraws; ++i) {
        const auto rank = zipf.next(rng);
        ASSERT_LT(rank, 1000u);
        if (rank < 10)
            ++top10;
    }
    // Under uniform the top-10 share would be 1%; zipf(0.99) puts
    // roughly a third of the mass there.
    EXPECT_GT(top10, kDraws / 10);
}

} // namespace
} // namespace specpmt::kv
