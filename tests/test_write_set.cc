/**
 * @file
 * Tests of the merged-interval write set used for first-update
 * logging and commit-time line flushing.
 */

#include <gtest/gtest.h>

#include "common/rand.hh"
#include "txn/write_set.hh"

namespace specpmt::txn
{
namespace
{

TEST(WriteSet, EmptyCoversNothing)
{
    WriteSet ws;
    EXPECT_TRUE(ws.empty());
    EXPECT_FALSE(ws.covered(0, 1));
    EXPECT_TRUE(ws.covered(10, 0)) << "empty range is trivially covered";
}

TEST(WriteSet, BasicAddAndCover)
{
    WriteSet ws;
    ws.add(100, 50);
    EXPECT_TRUE(ws.covered(100, 50));
    EXPECT_TRUE(ws.covered(120, 10));
    EXPECT_FALSE(ws.covered(99, 2));
    EXPECT_FALSE(ws.covered(149, 2));
}

TEST(WriteSet, AdjacentIntervalsMerge)
{
    WriteSet ws;
    ws.add(0, 10);
    ws.add(10, 10);
    EXPECT_EQ(ws.intervalCount(), 1u);
    EXPECT_TRUE(ws.covered(0, 20));
}

TEST(WriteSet, OverlappingIntervalsMerge)
{
    WriteSet ws;
    ws.add(0, 10);
    ws.add(20, 10);
    ws.add(5, 20); // bridges both
    EXPECT_EQ(ws.intervalCount(), 1u);
    EXPECT_TRUE(ws.covered(0, 30));
}

TEST(WriteSet, UncoveredFindsGaps)
{
    WriteSet ws;
    ws.add(10, 10); // [10,20)
    ws.add(30, 10); // [30,40)

    const auto gaps = ws.uncovered(5, 40); // [5,45)
    ASSERT_EQ(gaps.size(), 3u);
    EXPECT_EQ(gaps[0], std::make_pair(PmOff{5}, std::size_t{5}));
    EXPECT_EQ(gaps[1], std::make_pair(PmOff{20}, std::size_t{10}));
    EXPECT_EQ(gaps[2], std::make_pair(PmOff{40}, std::size_t{5}));
}

TEST(WriteSet, UncoveredOfCoveredRangeIsEmpty)
{
    WriteSet ws;
    ws.add(0, 100);
    EXPECT_TRUE(ws.uncovered(10, 50).empty());
}

TEST(WriteSet, UncoveredOfDisjointRangeIsWhole)
{
    WriteSet ws;
    ws.add(1000, 10);
    const auto gaps = ws.uncovered(0, 8);
    ASSERT_EQ(gaps.size(), 1u);
    EXPECT_EQ(gaps[0], std::make_pair(PmOff{0}, std::size_t{8}));
}

TEST(WriteSet, LineCountDeduplicatesWithinLine)
{
    WriteSet ws;
    ws.add(0, 8);
    ws.add(16, 8);
    ws.add(32, 8); // all in line 0
    EXPECT_EQ(ws.lineCount(), 1u);
    ws.add(64, 8);
    EXPECT_EQ(ws.lineCount(), 2u);
    ws.add(60, 8); // straddles lines 0 and 1
    EXPECT_EQ(ws.lineCount(), 2u);
}

TEST(WriteSet, ByteCount)
{
    WriteSet ws;
    ws.add(0, 10);
    ws.add(5, 10); // overlap
    ws.add(100, 1);
    EXPECT_EQ(ws.byteCount(), 16u);
}

/** Randomized differential test against a per-byte bitmap oracle. */
class WriteSetRandomTest : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(WriteSetRandomTest, MatchesBitmapOracle)
{
    constexpr std::size_t kSpace = 2048;
    Rng rng(GetParam());
    WriteSet ws;
    std::vector<bool> oracle(kSpace, false);

    for (int step = 0; step < 300; ++step) {
        const PmOff off = rng.below(kSpace - 64);
        const std::size_t size = 1 + rng.below(64);
        if (rng.chance(0.6)) {
            ws.add(off, size);
            for (std::size_t i = 0; i < size; ++i)
                oracle[off + i] = true;
        } else {
            // Check coverage & gaps against the oracle.
            bool all = true;
            for (std::size_t i = 0; i < size; ++i)
                all = all && oracle[off + i];
            EXPECT_EQ(ws.covered(off, size), all);

            std::size_t oracle_gap_bytes = 0;
            for (std::size_t i = 0; i < size; ++i)
                oracle_gap_bytes += oracle[off + i] ? 0 : 1;
            std::size_t ws_gap_bytes = 0;
            for (const auto &[gap_off, gap_size] : ws.uncovered(off,
                                                                size)) {
                ws_gap_bytes += gap_size;
                for (std::size_t i = 0; i < gap_size; ++i)
                    EXPECT_FALSE(oracle[gap_off + i]);
            }
            EXPECT_EQ(ws_gap_bytes, oracle_gap_bytes);
        }
    }

    // Final line-count check.
    std::uint64_t oracle_lines = 0;
    for (std::size_t line = 0; line < kSpace / 64; ++line) {
        for (std::size_t i = 0; i < 64; ++i) {
            if (oracle[line * 64 + i]) {
                ++oracle_lines;
                break;
            }
        }
    }
    EXPECT_EQ(ws.lineCount(), oracle_lines);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WriteSetRandomTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

} // namespace
} // namespace specpmt::txn
