/**
 * @file
 * Trace-span tests: spans record only while the tracer is armed,
 * split begin/end spans work, ring buffers drop (and count) overflow
 * instead of growing, and the Chrome trace JSON carries the events.
 */

#include <gtest/gtest.h>

#include "obs/metrics.hh"
#include "obs/trace.hh"

using namespace specpmt;

namespace
{

/** Re-arm a clean tracer for each test, disarm afterwards. */
class TraceTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        obs::Tracer::global().disable();
        obs::Tracer::global().clear();
    }

    void
    TearDown() override
    {
        obs::Tracer::global().disable();
        obs::Tracer::global().clear();
    }
};

TEST_F(TraceTest, ScopedSpanRecordsWhenEnabled)
{
    obs::Tracer::global().enable();
    {
        SPECPMT_TRACE_SPAN("unit_span", "unittest");
    }
    EXPECT_EQ(obs::Tracer::global().bufferedEvents(), 1u);
    const std::string json = obs::Tracer::global().toChromeJson();
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"unit_span\""), std::string::npos);
    EXPECT_NE(json.find("\"cat\": \"unittest\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
}

TEST_F(TraceTest, NothingRecordsWhileDisabled)
{
    {
        SPECPMT_TRACE_SPAN("dead_span", "unittest");
    }
    const auto t0 = SPECPMT_TRACE_BEGIN();
    EXPECT_EQ(t0, 0u);
    SPECPMT_TRACE_END("dead_split", "unittest", t0);
    EXPECT_EQ(obs::Tracer::global().bufferedEvents(), 0u);
}

TEST_F(TraceTest, SplitSpanRecordsBetweenBeginAndEnd)
{
    obs::Tracer::global().enable();
    const auto t0 = SPECPMT_TRACE_BEGIN();
    EXPECT_NE(t0, 0u);
    SPECPMT_TRACE_END("split_span", "unittest", t0);
    EXPECT_EQ(obs::Tracer::global().bufferedEvents(), 1u);
    EXPECT_NE(obs::Tracer::global().toChromeJson().find("split_span"),
              std::string::npos);
}

TEST_F(TraceTest, SpanOpenedBeforeDisableIsDropped)
{
    obs::Tracer::global().enable();
    const auto t0 = SPECPMT_TRACE_BEGIN();
    obs::Tracer::global().disable();
    SPECPMT_TRACE_END("late_span", "unittest", t0);
    EXPECT_EQ(obs::Tracer::global().bufferedEvents(), 0u);
}

TEST_F(TraceTest, RingBufferDropsOldestAndCounts)
{
    obs::Tracer::global().enable();
    constexpr std::size_t kExtra = 100;
    for (std::size_t i = 0;
         i < obs::Tracer::kRingCapacity + kExtra; ++i) {
        obs::Tracer::global().record("flood", "unittest", 1, 2);
    }
    EXPECT_EQ(obs::Tracer::global().bufferedEvents(),
              obs::Tracer::kRingCapacity);
    EXPECT_EQ(obs::Tracer::global().droppedEvents(), kExtra);
}

TEST_F(TraceTest, IdAndArgsSerializeIntoArgsObject)
{
    obs::Tracer::global().enable();
    const obs::TraceArg args[] = {{"user_bytes", 64}, {"fences", 1}};
    obs::Tracer::global().record("cost_span", "unittest", 1, 2, 77,
                                 args, 2);
    const std::string json = obs::Tracer::global().toChromeJson();
    EXPECT_NE(json.find("\"id\": 77"), std::string::npos) << json;
    EXPECT_NE(json.find("\"user_bytes\": 64"), std::string::npos);
    EXPECT_NE(json.find("\"fences\": 1"), std::string::npos);
    // A span without id or args carries no args object at all.
    obs::Tracer::global().clear();
    obs::Tracer::global().record("bare_span", "unittest", 1, 2);
    EXPECT_EQ(obs::Tracer::global().toChromeJson().find("\"args\""),
              std::string::npos);
}

TEST_F(TraceTest, SinceNsServesOnlyTheRecentWindow)
{
    // The /trace?ms=N endpoint serves toChromeJson(sinceNs); spans
    // that ended before the cutoff must be filtered out.
    obs::Tracer::global().enable();
    obs::Tracer::global().record("old_span", "unittest", 50, 100);
    obs::Tracer::global().record("new_span", "unittest", 180, 200);
    const std::string json = obs::Tracer::global().toChromeJson(150);
    EXPECT_EQ(json.find("old_span"), std::string::npos);
    EXPECT_NE(json.find("new_span"), std::string::npos);
}

TEST_F(TraceTest, OverflowFeedsTheGlobalDroppedCounter)
{
    // Ring wraparound must surface on /metrics as
    // specpmt_trace_dropped_total so a live scrape can alert on
    // trace loss — the buffered drop count resets with clear(), the
    // registry counter stays cumulative.
    auto &dropped = obs::Registry::global().counter(
        "specpmt_trace_dropped_total");
    const std::uint64_t before = dropped.value();
    obs::Tracer::global().enable();
    constexpr std::size_t kExtra = 37;
    for (std::size_t i = 0;
         i < obs::Tracer::kRingCapacity + kExtra; ++i) {
        obs::Tracer::global().record("flood2", "unittest", 1, 2);
    }
    EXPECT_EQ(dropped.value() - before, kExtra);
    obs::Tracer::global().clear();
    EXPECT_EQ(obs::Tracer::global().droppedEvents(), 0u);
    EXPECT_EQ(dropped.value() - before, kExtra)
        << "clear() must not rewind the cumulative registry counter";
}

TEST_F(TraceTest, ClearResetsBuffersAndDropCounter)
{
    obs::Tracer::global().enable();
    obs::Tracer::global().record("gone", "unittest", 1, 2);
    obs::Tracer::global().clear();
    EXPECT_EQ(obs::Tracer::global().bufferedEvents(), 0u);
    EXPECT_EQ(obs::Tracer::global().droppedEvents(), 0u);
    EXPECT_EQ(obs::Tracer::global().toChromeJson()
                  .find("\"gone\""),
              std::string::npos);
}

} // namespace
