/**
 * @file
 * Trace-span tests: spans record only while the tracer is armed,
 * split begin/end spans work, ring buffers drop (and count) overflow
 * instead of growing, and the Chrome trace JSON carries the events.
 */

#include <gtest/gtest.h>

#include "obs/trace.hh"

using namespace specpmt;

namespace
{

/** Re-arm a clean tracer for each test, disarm afterwards. */
class TraceTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        obs::Tracer::global().disable();
        obs::Tracer::global().clear();
    }

    void
    TearDown() override
    {
        obs::Tracer::global().disable();
        obs::Tracer::global().clear();
    }
};

TEST_F(TraceTest, ScopedSpanRecordsWhenEnabled)
{
    obs::Tracer::global().enable();
    {
        SPECPMT_TRACE_SPAN("unit_span", "unittest");
    }
    EXPECT_EQ(obs::Tracer::global().bufferedEvents(), 1u);
    const std::string json = obs::Tracer::global().toChromeJson();
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"unit_span\""), std::string::npos);
    EXPECT_NE(json.find("\"cat\": \"unittest\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
}

TEST_F(TraceTest, NothingRecordsWhileDisabled)
{
    {
        SPECPMT_TRACE_SPAN("dead_span", "unittest");
    }
    const auto t0 = SPECPMT_TRACE_BEGIN();
    EXPECT_EQ(t0, 0u);
    SPECPMT_TRACE_END("dead_split", "unittest", t0);
    EXPECT_EQ(obs::Tracer::global().bufferedEvents(), 0u);
}

TEST_F(TraceTest, SplitSpanRecordsBetweenBeginAndEnd)
{
    obs::Tracer::global().enable();
    const auto t0 = SPECPMT_TRACE_BEGIN();
    EXPECT_NE(t0, 0u);
    SPECPMT_TRACE_END("split_span", "unittest", t0);
    EXPECT_EQ(obs::Tracer::global().bufferedEvents(), 1u);
    EXPECT_NE(obs::Tracer::global().toChromeJson().find("split_span"),
              std::string::npos);
}

TEST_F(TraceTest, SpanOpenedBeforeDisableIsDropped)
{
    obs::Tracer::global().enable();
    const auto t0 = SPECPMT_TRACE_BEGIN();
    obs::Tracer::global().disable();
    SPECPMT_TRACE_END("late_span", "unittest", t0);
    EXPECT_EQ(obs::Tracer::global().bufferedEvents(), 0u);
}

TEST_F(TraceTest, RingBufferDropsOldestAndCounts)
{
    obs::Tracer::global().enable();
    constexpr std::size_t kExtra = 100;
    for (std::size_t i = 0;
         i < obs::Tracer::kRingCapacity + kExtra; ++i) {
        obs::Tracer::global().record("flood", "unittest", 1, 2);
    }
    EXPECT_EQ(obs::Tracer::global().bufferedEvents(),
              obs::Tracer::kRingCapacity);
    EXPECT_EQ(obs::Tracer::global().droppedEvents(), kExtra);
}

TEST_F(TraceTest, ClearResetsBuffersAndDropCounter)
{
    obs::Tracer::global().enable();
    obs::Tracer::global().record("gone", "unittest", 1, 2);
    obs::Tracer::global().clear();
    EXPECT_EQ(obs::Tracer::global().bufferedEvents(), 0u);
    EXPECT_EQ(obs::Tracer::global().droppedEvents(), 0u);
    EXPECT_EQ(obs::Tracer::global().toChromeJson()
                  .find("\"gone\""),
              std::string::npos);
}

} // namespace
