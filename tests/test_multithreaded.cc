/**
 * @file
 * Multi-threaded tests: concurrent transactions with application
 * locking (Section 4.3.3), background reclamation under load,
 * cross-thread timestamp-ordered recovery, and the lock table itself.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "common/rand.hh"
#include "core/spec_tx.hh"
#include "pmem/pmem_device.hh"
#include "pmem/pmem_pool.hh"
#include "txn/lock_table.hh"
#include "txn/spht_tx.hh"
#include "txn/undo_tx.hh"

namespace specpmt
{
namespace
{

constexpr unsigned kThreads = 4;

TEST(LockTable, GuardsExcludeEachOther)
{
    txn::LockTable table(8);
    std::atomic<int> inside{0};
    std::atomic<bool> violation{false};
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&] {
            for (int i = 0; i < 2000; ++i) {
                auto guard = table.lockAll({64}); // same stripe
                if (inside.fetch_add(1) != 0)
                    violation = true;
                inside.fetch_sub(1);
            }
        });
    }
    for (auto &thread : threads)
        thread.join();
    EXPECT_FALSE(violation.load());
}

TEST(LockTable, OrderedAcquisitionAvoidsDeadlock)
{
    // Threads lock overlapping address pairs in opposite orders;
    // the sorted-stripe protocol must never deadlock.
    txn::LockTable table(16);
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (int i = 0; i < 3000; ++i) {
                const PmOff a = (t % 2) ? 0 : 4096;
                const PmOff b = (t % 2) ? 4096 : 0;
                auto guard = table.lockAll({a, b});
            }
        });
    }
    for (auto &thread : threads)
        thread.join();
    SUCCEED();
}

/** Run disjoint-region counters on @p runtime from kThreads threads. */
template <typename Runtime>
void
runDisjointCounters(Runtime &runtime, PmOff base, unsigned increments)
{
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            const PmOff slot = base + t * kCacheLineSize;
            for (unsigned i = 0; i < increments; ++i) {
                runtime.txBegin(t);
                const auto value =
                    runtime.template txLoadT<std::uint64_t>(t, slot);
                runtime.template txStoreT<std::uint64_t>(t, slot,
                                                         value + 1);
                runtime.txCommit(t);
            }
        });
    }
    for (auto &thread : threads)
        thread.join();
}

TEST(MultiThreaded, SpecTxDisjointRegionsWithBackgroundReclaim)
{
    pmem::PmemDevice dev(64u << 20);
    pmem::PmemPool pool(dev);
    core::SpecTxConfig config;
    config.backgroundReclaim = true;
    config.reclaimThresholdBytes = 64 * 1024;
    core::SpecTx tx(pool, kThreads, config);

    const PmOff base = pool.alloc(kThreads * kCacheLineSize);
    tx.txBegin(0);
    for (unsigned t = 0; t < kThreads; ++t)
        tx.txStoreT<std::uint64_t>(0, base + t * kCacheLineSize, 0);
    tx.txCommit(0);

    runDisjointCounters(tx, base, 3000);
    tx.shutdown();
    for (unsigned t = 0; t < kThreads; ++t) {
        EXPECT_EQ(dev.loadT<std::uint64_t>(base + t * kCacheLineSize),
                  3000u)
            << "thread " << t;
    }
    EXPECT_GT(tx.reclaimCycles(), 0u);
}

TEST(MultiThreaded, SpecTxCrashRecoveryAcrossThreads)
{
    pmem::PmemDevice dev(64u << 20);
    pmem::PmemPool pool(dev);
    core::SpecTxConfig config;
    config.backgroundReclaim = false;
    auto tx = std::make_unique<core::SpecTx>(pool, kThreads, config);

    const PmOff base = pool.alloc(kThreads * kCacheLineSize);
    pool.setRoot(txn::kAppRootSlotBase, base);
    tx->txBegin(0);
    for (unsigned t = 0; t < kThreads; ++t)
        tx->txStoreT<std::uint64_t>(0, base + t * kCacheLineSize, 0);
    tx->txCommit(0);

    runDisjointCounters(*tx, base, 500);
    // Nothing was ever flushed beyond logs: recovery must rebuild all
    // four counters from the per-thread logs, merged by timestamp.
    tx.reset();
    dev.simulateCrash(pmem::CrashPolicy::nothing());
    pool.reopenAfterCrash();
    core::SpecTx recovered(pool, kThreads, config);
    recovered.recover();
    for (unsigned t = 0; t < kThreads; ++t) {
        EXPECT_EQ(dev.loadT<std::uint64_t>(base + t * kCacheLineSize),
                  500u);
    }
}

TEST(MultiThreaded, SharedCountersWithLocking)
{
    // Threads transfer between shared cells under the lock table; the
    // sum is conserved at every committed boundary, so it must be
    // conserved after a post-run crash + recovery.
    pmem::PmemDevice dev(64u << 20);
    pmem::PmemPool pool(dev);
    core::SpecTxConfig config;
    config.backgroundReclaim = true;
    config.reclaimThresholdBytes = 256 * 1024;
    auto tx = std::make_unique<core::SpecTx>(pool, kThreads, config);
    txn::LockTable locks(32);

    constexpr unsigned kCells = 64;
    constexpr std::uint64_t kInitial = 1000;
    const PmOff base = pool.alloc(kCells * 8);
    tx->txBegin(0);
    for (unsigned c = 0; c < kCells; ++c)
        tx->txStoreT<std::uint64_t>(0, base + c * 8, kInitial);
    tx->txCommit(0);

    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            Rng rng(t + 1);
            for (int i = 0; i < 2000; ++i) {
                const auto from =
                    static_cast<unsigned>(rng.below(kCells));
                const auto to = static_cast<unsigned>(rng.below(kCells));
                if (from == to)
                    continue;
                const PmOff from_off = base + from * 8;
                const PmOff to_off = base + to * 8;
                auto guard = locks.lockAll({from_off, to_off});
                tx->txBegin(t);
                const auto from_balance =
                    tx->txLoadT<std::uint64_t>(t, from_off);
                if (from_balance > 0) {
                    tx->txStoreT<std::uint64_t>(t, from_off,
                                                from_balance - 1);
                    tx->txStoreT<std::uint64_t>(
                        t, to_off,
                        tx->txLoadT<std::uint64_t>(t, to_off) + 1);
                }
                tx->txCommit(t);
            }
        });
    }
    for (auto &thread : threads)
        thread.join();

    tx.reset();
    dev.simulateCrash(pmem::CrashPolicy::random(17, 0.5));
    pool.reopenAfterCrash();
    core::SpecTxConfig fresh_config;
    fresh_config.backgroundReclaim = false;
    core::SpecTx recovered(pool, kThreads, fresh_config);
    recovered.recover();

    std::uint64_t total = 0;
    for (unsigned c = 0; c < kCells; ++c)
        total += dev.loadT<std::uint64_t>(base + c * 8);
    EXPECT_EQ(total, kCells * kInitial)
        << "cross-thread recovery must conserve the sum";
}

TEST(MultiThreaded, SphtSharedCountersWithLocking)
{
    pmem::PmemDevice dev(64u << 20);
    pmem::PmemPool pool(dev);
    auto tx = std::make_unique<txn::SphtTx>(pool, kThreads, true);
    txn::LockTable locks(32);

    constexpr unsigned kCells = 32;
    const PmOff base = pool.alloc(kCells * 8);
    tx->txBegin(0);
    for (unsigned c = 0; c < kCells; ++c)
        tx->txStoreT<std::uint64_t>(0, base + c * 8, 100);
    tx->txCommit(0);

    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            Rng rng(t + 9);
            for (int i = 0; i < 1000; ++i) {
                const auto from =
                    static_cast<unsigned>(rng.below(kCells));
                const auto to = static_cast<unsigned>(rng.below(kCells));
                if (from == to)
                    continue;
                auto guard =
                    locks.lockAll({base + from * 8, base + to * 8});
                tx->txBegin(t);
                const auto from_balance =
                    tx->txLoadT<std::uint64_t>(t, base + from * 8);
                if (from_balance > 0) {
                    tx->txStoreT<std::uint64_t>(t, base + from * 8,
                                                from_balance - 1);
                    tx->txStoreT<std::uint64_t>(
                        t, base + to * 8,
                        tx->txLoadT<std::uint64_t>(t, base + to * 8) +
                            1);
                }
                tx->txCommit(t);
            }
        });
    }
    for (auto &thread : threads)
        thread.join();
    tx->shutdown();

    std::uint64_t total = 0;
    for (unsigned c = 0; c < kCells; ++c)
        total += dev.loadT<std::uint64_t>(base + c * 8);
    EXPECT_EQ(total, kCells * 100u);
}

TEST(MultiThreaded, PmdkThreadsRecoverIndependently)
{
    pmem::PmemDevice dev(64u << 20);
    pmem::PmemPool pool(dev);
    auto tx = std::make_unique<txn::PmdkUndoTx>(pool, kThreads);

    const PmOff base = pool.alloc(kThreads * kCacheLineSize);
    tx->txBegin(0);
    for (unsigned t = 0; t < kThreads; ++t)
        tx->txStoreT<std::uint64_t>(0, base + t * kCacheLineSize, 0);
    tx->txCommit(0);

    runDisjointCounters(*tx, base, 400);
    tx.reset();
    dev.simulateCrash(pmem::CrashPolicy::everything());
    pool.reopenAfterCrash();
    txn::PmdkUndoTx recovered(pool, kThreads);
    recovered.recover();
    for (unsigned t = 0; t < kThreads; ++t) {
        EXPECT_EQ(dev.loadT<std::uint64_t>(base + t * kCacheLineSize),
                  400u);
    }
}

} // namespace
} // namespace specpmt
