/**
 * @file
 * Tests for the PMDK-style undo-logging baseline and the Kamino-Tx
 * upper-bound variant.
 */

#include <gtest/gtest.h>

#include "pmem/pmem_device.hh"
#include "pmem/pmem_pool.hh"
#include "txn/undo_tx.hh"

namespace specpmt::txn
{
namespace
{

class UndoTxTest : public ::testing::Test
{
  protected:
    UndoTxTest() : dev_(8u << 20), pool_(dev_), tx_(pool_, 1) {}

    pmem::PmemDevice dev_;
    pmem::PmemPool pool_;
    PmdkUndoTx tx_;
};

TEST_F(UndoTxTest, CommittedTxIsDurableUnderAdversarialCrash)
{
    const PmOff off = pool_.alloc(8);
    tx_.txBegin(0);
    tx_.txStoreT<std::uint64_t>(0, off, 77);
    tx_.txCommit(0);

    dev_.simulateCrash(pmem::CrashPolicy::nothing());
    PmdkUndoTx fresh(pool_, 1);
    fresh.recover();
    EXPECT_EQ(dev_.loadT<std::uint64_t>(off), 77u);
}

TEST_F(UndoTxTest, UncommittedTxIsRevertedEvenIfDataEvicted)
{
    const PmOff off = pool_.alloc(8);
    tx_.txBegin(0);
    tx_.txStoreT<std::uint64_t>(0, off, 11);
    tx_.txCommit(0);

    tx_.txBegin(0);
    tx_.txStoreT<std::uint64_t>(0, off, 22);
    // Crash with every dirty line drained: the in-place update of 22
    // reached PM, but so did the undo record guarding it.
    dev_.simulateCrash(pmem::CrashPolicy::everything());
    pool_.reopenAfterCrash();
    PmdkUndoTx fresh(pool_, 1);
    fresh.recover();
    EXPECT_EQ(dev_.loadT<std::uint64_t>(off), 11u);
}

TEST_F(UndoTxTest, FirstUpdateOnlyIsLogged)
{
    const PmOff off = pool_.alloc(8);
    tx_.txBegin(0);
    tx_.txStoreT<std::uint64_t>(0, off, 1);
    const auto log_clwbs = dev_.stats().clwbs[1];
    const auto fences = dev_.stats().fences;
    // Repeated updates of the same datum must not re-log or re-fence.
    tx_.txStoreT<std::uint64_t>(0, off, 2);
    tx_.txStoreT<std::uint64_t>(0, off, 3);
    EXPECT_EQ(dev_.stats().clwbs[1], log_clwbs);
    EXPECT_EQ(dev_.stats().fences, fences);
    tx_.txCommit(0);
    EXPECT_EQ(dev_.loadT<std::uint64_t>(off), 3u);
}

TEST_F(UndoTxTest, FenceCountMatchesLibpmemobjAnatomy)
{
    const PmOff off = pool_.alloc(64);
    const auto fences_before = dev_.stats().fences;
    tx_.txBegin(0); // 1 fence (log header activation)
    for (unsigned i = 0; i < 4; ++i) {
        // 2 fences per first-touch range: snapshot persist + ulog
        // metadata publish.
        tx_.txStoreT<std::uint64_t>(0, off + i * 8, i);
    }
    tx_.txCommit(0); // 3 fences: data persist, metadata redo, retire
    EXPECT_EQ(dev_.stats().fences - fences_before, 1u + 4 * 2 + 3);
}

TEST_F(UndoTxTest, AbortRestoresPreTxState)
{
    const PmOff off = pool_.alloc(16);
    tx_.txBegin(0);
    tx_.txStoreT<std::uint64_t>(0, off, 5);
    tx_.txStoreT<std::uint64_t>(0, off + 8, 6);
    tx_.txCommit(0);

    tx_.txBegin(0);
    tx_.txStoreT<std::uint64_t>(0, off, 50);
    tx_.txStoreT<std::uint64_t>(0, off + 8, 60);
    tx_.txAbort(0);
    EXPECT_EQ(dev_.loadT<std::uint64_t>(off), 5u);
    EXPECT_EQ(dev_.loadT<std::uint64_t>(off + 8), 6u);

    // The runtime is usable after an abort.
    tx_.txBegin(0);
    tx_.txStoreT<std::uint64_t>(0, off, 500);
    tx_.txCommit(0);
    EXPECT_EQ(dev_.loadT<std::uint64_t>(off), 500u);
}

TEST_F(UndoTxTest, RecoveryIsIdempotent)
{
    const PmOff off = pool_.alloc(8);
    tx_.txBegin(0);
    tx_.txStoreT<std::uint64_t>(0, off, 1);
    tx_.txCommit(0);
    tx_.txBegin(0);
    tx_.txStoreT<std::uint64_t>(0, off, 2);

    dev_.simulateCrash(pmem::CrashPolicy::everything());
    pool_.reopenAfterCrash();
    PmdkUndoTx fresh(pool_, 1);
    fresh.recover();
    fresh.recover(); // again: must be a no-op
    EXPECT_EQ(dev_.loadT<std::uint64_t>(off), 1u);
}

TEST_F(UndoTxTest, StaleRecordsFromOlderTxNeverReplay)
{
    const PmOff off = pool_.alloc(8);
    // Tx 1 logs old value 0 and commits with 9.
    tx_.txBegin(0);
    tx_.txStoreT<std::uint64_t>(0, off, 9);
    tx_.txCommit(0);
    // Tx 2 starts but writes nothing; its header says 0 record bytes
    // while tx 1's record bytes still sit in the log area.
    tx_.txBegin(0);
    dev_.simulateCrash(pmem::CrashPolicy::everything());
    pool_.reopenAfterCrash();
    PmdkUndoTx fresh(pool_, 1);
    fresh.recover();
    EXPECT_EQ(dev_.loadT<std::uint64_t>(off), 9u)
        << "tx 1's stale undo record must not fire for tx 2";
}

TEST(KaminoTxTest, CommitsInPlaceWithFencePerFirstUpdate)
{
    pmem::PmemDevice dev(8u << 20);
    pmem::PmemPool pool(dev);
    KaminoTx tx(pool, 1);

    const PmOff off = pool.alloc(32);
    const auto fences_before = dev.stats().fences;
    tx.txBegin(0);
    tx.txStoreT<std::uint64_t>(0, off, 1);
    tx.txStoreT<std::uint64_t>(0, off, 2); // same datum: no new fence
    tx.txStoreT<std::uint64_t>(0, off + 8, 3);
    tx.txCommit(0);
    EXPECT_EQ(dev.loadT<std::uint64_t>(off), 2u);
    EXPECT_EQ(dev.loadT<std::uint64_t>(off + 8), 3u);
    // begin(1) + 2 first-update fences + commit(2)
    EXPECT_EQ(dev.stats().fences - fences_before, 5u);

    // Committed data is durable.
    dev.simulateCrash(pmem::CrashPolicy::nothing());
    EXPECT_EQ(dev.loadT<std::uint64_t>(off), 2u);
}

TEST(KaminoTxTest, LogsOnlyAddressesNotValues)
{
    pmem::PmemDevice dev(8u << 20);
    pmem::PmemPool pool(dev);

    // Compare log traffic: Kamino logs 16B per first update, PMDK logs
    // 24B header + payload; with large payloads Kamino writes less.
    const PmOff off = pool.alloc(4096);
    std::vector<std::uint8_t> blob(512, 0xAB);

    KaminoTx kamino(pool, 1);
    const auto before_k = dev.stats().storeBytes;
    kamino.txBegin(0);
    kamino.txStore(0, off, blob.data(), blob.size());
    kamino.txCommit(0);
    const auto kamino_bytes = dev.stats().storeBytes - before_k;

    pmem::PmemDevice dev2(8u << 20);
    pmem::PmemPool pool2(dev2);
    const PmOff off2 = pool2.alloc(4096);
    PmdkUndoTx pmdk(pool2, 1);
    const auto before_p = dev2.stats().storeBytes;
    pmdk.txBegin(0);
    pmdk.txStore(0, off2, blob.data(), blob.size());
    pmdk.txCommit(0);
    const auto pmdk_bytes = dev2.stats().storeBytes - before_p;

    EXPECT_LT(kamino_bytes, pmdk_bytes);
}

} // namespace
} // namespace specpmt::txn
