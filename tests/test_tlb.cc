/**
 * @file
 * Tests of the two-level TLB model with SpecPMT hotness metadata:
 * promotion/demotion, metadata loss on L2 eviction, epoch clearing,
 * and cold-counter decay.
 */

#include <gtest/gtest.h>

#include "sim/tlb.hh"

namespace specpmt::sim
{
namespace
{

TEST(Tlb, MissInsertsColdEntry)
{
    SimConfig config;
    TlbModel tlb(config);
    const auto lookup = tlb.lookup(100);
    EXPECT_FALSE(lookup.hit);
    ASSERT_NE(lookup.meta, nullptr);
    EXPECT_FALSE(lookup.meta->epochBit);
    EXPECT_EQ(lookup.meta->counter, 0);
    EXPECT_EQ(tlb.misses(), 1u);
}

TEST(Tlb, HitPreservesMetadata)
{
    SimConfig config;
    TlbModel tlb(config);
    tlb.lookup(100).meta->counter = 5;
    const auto lookup = tlb.lookup(100);
    EXPECT_TRUE(lookup.hit);
    EXPECT_EQ(lookup.meta->counter, 5);
}

TEST(Tlb, MetadataSurvivesDemotionToL2)
{
    SimConfig config;
    TlbModel tlb(config);
    tlb.lookup(1).meta->counter = 3;
    // Evict vpn 1 from L1 by filling its set (L1: 8 sets x 8 ways;
    // vpns congruent mod 8 share a set).
    for (std::uint64_t i = 1; i <= 8; ++i)
        tlb.lookup(1 + i * 8);
    // vpn 1 now lives in L2; its metadata must survive the round trip.
    const auto lookup = tlb.lookup(1);
    EXPECT_TRUE(lookup.hit);
    EXPECT_EQ(lookup.meta->counter, 3);
}

TEST(Tlb, L2EvictionDiscardsMetadata)
{
    SimConfig config;
    config.l1TlbEntries = 8;
    config.l1TlbWays = 1;
    config.l2TlbEntries = 8;
    config.l2TlbWays = 1;
    TlbModel tlb(config);
    tlb.lookup(0).meta->counter = 7;
    // Push vpn 0 out of L1 and then out of L2 (same set: multiples
    // of 8).
    tlb.lookup(8);  // evicts 0 from L1 into L2
    tlb.lookup(16); // evicts 8 into L2, evicting 0 from L2 entirely
    const auto lookup = tlb.lookup(0);
    EXPECT_FALSE(lookup.hit) << "page fell out of both levels";
    EXPECT_EQ(lookup.meta->counter, 0) << "metadata must be lost";
}

TEST(Tlb, ClearEpochFlipsMatchingPagesCold)
{
    SimConfig config;
    TlbModel tlb(config);
    auto *a = tlb.lookup(1).meta;
    a->epochBit = true;
    a->counter = 3; // epoch 3
    auto *b = tlb.lookup(2).meta;
    b->epochBit = true;
    b->counter = 4; // epoch 4

    tlb.clearEpoch(3);
    EXPECT_FALSE(tlb.lookup(1).meta->epochBit);
    EXPECT_TRUE(tlb.lookup(2).meta->epochBit);
    EXPECT_EQ(tlb.lookup(2).meta->counter, 4);
}

TEST(Tlb, DecayHalvesOnlyColdCounters)
{
    SimConfig config;
    TlbModel tlb(config);
    auto *cold = tlb.lookup(1).meta;
    cold->counter = 6;
    auto *hot = tlb.lookup(2).meta;
    hot->epochBit = true;
    hot->counter = 5; // an epoch ID, not a count

    tlb.decayColdCounters();
    EXPECT_EQ(tlb.lookup(1).meta->counter, 3);
    EXPECT_EQ(tlb.lookup(2).meta->counter, 5)
        << "epoch IDs must not decay";
}

} // namespace
} // namespace specpmt::sim
