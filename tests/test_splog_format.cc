/**
 * @file
 * Unit tests of the speculative log's on-media format: segment
 * encode/walk round trips, torn-record detection, poison semantics,
 * chain following, and torn-header protection.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "common/rand.hh"
#include "core/splog_format.hh"
#include "pmem/pmem_device.hh"

namespace specpmt::core
{
namespace
{

class SplogFormatTest : public ::testing::Test
{
  protected:
    /** Blocks live above the root page (offset 0 is kPmNull). */
    static constexpr PmOff kBase = 4096;

    SplogFormatTest() : dev_(1 << 20) {}

    /** Lay down a block header at @p off with capacity/next. */
    void
    writeBlock(PmOff off, std::uint64_t capacity, PmOff next)
    {
        BlockHeader header{next, kPmNull, capacity, 0};
        dev_.storeT(off, header);
        dev_.storeT<std::uint64_t>(off + sizeof(BlockHeader), 0);
    }

    /**
     * Append a segment with @p values (each an 8-byte entry at
     * synthetic addresses) at @p pos; returns bytes used.
     */
    std::size_t
    writeSegment(PmOff pos, TxTimestamp ts, bool final,
                 const std::vector<std::uint64_t> &values)
    {
        std::size_t bytes = sizeof(SegHead);
        PmOff cursor = pos + sizeof(SegHead);
        for (std::size_t i = 0; i < values.size(); ++i) {
            EntryHead ehead{0x10000 + i * 8, 8, 0};
            dev_.storeT(cursor, ehead);
            dev_.storeT(cursor + sizeof(EntryHead), values[i]);
            cursor += entryBytes(8);
            bytes += entryBytes(8);
        }
        SegHead head;
        head.sizeBytes = static_cast<std::uint32_t>(bytes);
        head.timestamp = ts;
        head.flags = final ? kSegFinal : 0;
        head.numEntries = static_cast<std::uint32_t>(values.size());
        head.crc = segmentCrc(dev_, pos, head);
        dev_.storeT(pos, head);
        // Poison the next slot.
        dev_.storeT<std::uint64_t>(pos + bytes, 0);
        return bytes;
    }

    pmem::PmemDevice dev_;
};

TEST_F(SplogFormatTest, RoundTripSingleSegment)
{
    writeBlock(kBase, 4096, kPmNull);
    writeSegment(kBase + sizeof(BlockHeader), 7, true, {11, 22, 33});

    std::vector<DecodedSegment> segments;
    const auto walk = walkChain(
        dev_, kBase, [&](const DecodedSegment &seg) {
            segments.push_back(seg);
        });
    EXPECT_EQ(walk.end, WalkEnd::CleanTail);
    ASSERT_EQ(segments.size(), 1u);
    EXPECT_EQ(segments[0].timestamp, 7u);
    EXPECT_TRUE(segments[0].final);
    ASSERT_EQ(segments[0].entries.size(), 3u);
    EXPECT_EQ(dev_.loadT<std::uint64_t>(segments[0].entries[1].valuePos),
              22u);
}

TEST_F(SplogFormatTest, MultipleSegmentsInChronologicalOrder)
{
    writeBlock(kBase, 4096, kPmNull);
    PmOff pos = kBase + sizeof(BlockHeader);
    pos += writeSegment(pos, 1, true, {1});
    pos += writeSegment(pos, 2, true, {2});
    writeSegment(pos, 3, true, {3});

    std::vector<TxTimestamp> stamps;
    walkChain(dev_, kBase, [&](const DecodedSegment &seg) {
        stamps.push_back(seg.timestamp);
    });
    EXPECT_EQ(stamps, (std::vector<TxTimestamp>{1, 2, 3}));
}

TEST_F(SplogFormatTest, TornRecordStopsWalk)
{
    writeBlock(kBase, 4096, kPmNull);
    PmOff pos = kBase + sizeof(BlockHeader);
    const auto first = writeSegment(pos, 1, true, {1});
    const auto second_pos = pos + first;
    writeSegment(second_pos, 2, true, {2});

    // Corrupt one byte of the second segment's payload.
    const PmOff victim = second_pos + sizeof(SegHead) +
                         sizeof(EntryHead);
    dev_.storeT<std::uint8_t>(victim, 0xFF);

    std::vector<TxTimestamp> stamps;
    const auto walk = walkChain(dev_, kBase, [&](const DecodedSegment &seg) {
        stamps.push_back(seg.timestamp);
    });
    EXPECT_EQ(walk.end, WalkEnd::TornRecord);
    EXPECT_EQ(stamps, (std::vector<TxTimestamp>{1}));
    EXPECT_EQ(walk.tailPos,
              static_cast<PmOff>(second_pos));
}

TEST_F(SplogFormatTest, ChainFollowsNextPointers)
{
    writeBlock(kBase, 256, kBase + 4096);
    writeBlock(kBase + 4096, 4096, kPmNull);
    writeSegment(kBase + sizeof(BlockHeader), 1, true, {1});
    writeSegment(kBase + 4096 + sizeof(BlockHeader), 2, true, {2});

    std::vector<TxTimestamp> stamps;
    const auto walk = walkChain(dev_, kBase, [&](const DecodedSegment &seg) {
        stamps.push_back(seg.timestamp);
    });
    EXPECT_EQ(stamps, (std::vector<TxTimestamp>{1, 2}));
    ASSERT_EQ(walk.blocks.size(), 2u);
    EXPECT_EQ(walk.blocks[1], kBase + 4096);
    EXPECT_EQ(walk.tailBlock, kBase + 4096);
}

TEST_F(SplogFormatTest, TornBlockHeaderEndsWalkBeforeTheBlock)
{
    writeBlock(kBase, 256, kBase + 8192);
    writeSegment(kBase + sizeof(BlockHeader), 1, true, {1});
    // The next block never got its header persisted: garbage capacity.
    dev_.storeT<std::uint64_t>(kBase + 8192 +
                                   offsetof(BlockHeader, capacity),
                               ~0ull);

    std::vector<TxTimestamp> stamps;
    const auto walk = walkChain(dev_, kBase, [&](const DecodedSegment &seg) {
        stamps.push_back(seg.timestamp);
    });
    EXPECT_EQ(walk.end, WalkEnd::TornRecord);
    EXPECT_EQ(stamps, (std::vector<TxTimestamp>{1}));
    ASSERT_EQ(walk.blocks.size(), 1u);
}

TEST_F(SplogFormatTest, NonFinalSegmentsReportFlag)
{
    writeBlock(kBase, 4096, kPmNull);
    PmOff pos = kBase + sizeof(BlockHeader);
    pos += writeSegment(pos, 5, false, {1, 2});
    writeSegment(pos, 5, true, {3});

    std::vector<bool> finals;
    walkChain(dev_, kBase, [&](const DecodedSegment &seg) {
        finals.push_back(seg.final);
    });
    EXPECT_EQ(finals, (std::vector<bool>{false, true}));
}

TEST_F(SplogFormatTest, CrcDetectsEveryHeaderFieldFlip)
{
    writeBlock(kBase, 4096, kPmNull);
    const PmOff pos = kBase + sizeof(BlockHeader);
    writeSegment(pos, 9, true, {42});
    auto head = dev_.loadT<SegHead>(pos);

    // Flip each header field (except crc) and expect a mismatch.
    for (unsigned field = 0; field < 4; ++field) {
        SegHead mutated = head;
        switch (field) {
          case 0:
            mutated.sizeBytes ^= 0x10;
            break;
          case 1:
            mutated.timestamp ^= 1;
            break;
          case 2:
            mutated.flags ^= kSegFinal;
            break;
          case 3:
            mutated.numEntries ^= 1;
            break;
        }
        EXPECT_NE(segmentCrc(dev_, pos, mutated), head.crc)
            << "field " << field;
    }
}

TEST_F(SplogFormatTest, CrcIsPositionDependent)
{
    writeBlock(kBase, 4096, kPmNull);
    const PmOff pos = kBase + sizeof(BlockHeader);
    writeSegment(pos, 9, true, {42});
    const auto head = dev_.loadT<SegHead>(pos);

    // The identical bytes at a different position must not validate:
    // this is what makes records in recycled blocks harmless.
    std::vector<std::uint8_t> raw(head.sizeBytes);
    dev_.load(pos, raw.data(), head.sizeBytes);
    const PmOff elsewhere = kBase + 2048;
    dev_.store(elsewhere, raw.data(), head.sizeBytes);
    EXPECT_NE(segmentCrc(dev_, elsewhere, head), head.crc);
}

} // namespace
} // namespace specpmt::core
