/**
 * @file
 * Tests of the analytic persistent-memory timing model: strict
 * persist barriers, WPQ back-pressure and merging, multi-channel
 * drain, XPLine write combining, and background-write bandwidth
 * sharing — the cost structure both benchmark platforms rely on.
 */

#include <gtest/gtest.h>

#include "pmem/pmem_timing.hh"

namespace specpmt::pmem
{
namespace
{

TEST(PmemTiming, ComputeAdvancesClock)
{
    PmemTiming timing;
    timing.compute(100);
    EXPECT_EQ(timing.now(), 100u);
}

TEST(PmemTiming, FenceWaitsForSyncDrainPlusFixedCost)
{
    PmemTiming timing;
    timing.onClwb(0);
    timing.onSfence();
    EXPECT_GE(timing.now(),
              timing.params().pmWriteNs + timing.params().sfenceNs);
}

TEST(PmemTiming, FenceOnEmptyQueueCostsOnlyTheFixedDrain)
{
    PmemTiming timing;
    timing.onSfence();
    EXPECT_EQ(timing.now(), timing.params().sfenceNs);
}

TEST(PmemTiming, WpqMergesRepeatedLine)
{
    PmemTiming timing;
    timing.onClwb(7);
    timing.onClwb(7); // still pending: merges, no second media write
    EXPECT_EQ(timing.pmLineWrites(), 1u);
    timing.onClwb(8);
    EXPECT_EQ(timing.pmLineWrites(), 2u);
}

TEST(PmemTiming, SequentialBeatsScattered)
{
    // Sequential lines combine within XPLines; scattered lines pay
    // the full read-modify-write each time.
    PmemTiming seq;
    for (std::uint64_t line = 0; line < 64; ++line)
        seq.onClwb(line);
    seq.onSfence();

    PmemTiming scattered;
    for (std::uint64_t line = 0; line < 64; ++line)
        scattered.onClwb(line * 113);
    scattered.onSfence();

    EXPECT_GT(seq.combinedWrites(), 0u);
    EXPECT_EQ(scattered.combinedWrites(), 0u);
    EXPECT_LT(seq.now(), scattered.now())
        << "sequential log writes must be cheaper than random writes";
}

TEST(PmemTiming, ChannelsDrainInParallel)
{
    // The same scattered write set drains faster with more channels.
    TimingParams one_channel;
    one_channel.pmChannels = 1;
    PmemTiming serial(one_channel);
    PmemTiming parallel; // default 4 channels
    for (std::uint64_t line = 0; line < 32; ++line) {
        // Distinct XPLines spread across channels (stride 5 XPLines).
        serial.onClwb(line * 20);
        parallel.onClwb(line * 20);
    }
    serial.onSfence();
    parallel.onSfence();
    EXPECT_LT(parallel.now(), serial.now());
}

TEST(PmemTiming, FullWpqBackpressures)
{
    PmemTiming timing;
    const unsigned depth = timing.params().wpqLines;
    for (unsigned i = 0; i < depth; ++i)
        timing.onClwb(i * 100);
    const SimNs before = timing.now();
    timing.onClwb(depth * 100);
    EXPECT_GT(timing.now() - before, timing.params().wpqAcceptNs)
        << "a full WPQ must stall the core";
}

TEST(PmemTiming, AsyncWritesConsumeDrainBandwidth)
{
    // Background writes fill the queue; the measured thread's next
    // write stalls on the shared drain.
    PmemTiming timing;
    for (unsigned i = 0; i < timing.params().wpqLines; ++i)
        timing.onClwbAsync(1000 + i * 100);
    EXPECT_EQ(timing.now(), 0u)
        << "async writes do not advance the clock";
    timing.onClwb(5);
    EXPECT_GT(timing.now(), timing.params().wpqAcceptNs);
}

TEST(PmemTiming, FenceDoesNotWaitForPureAsyncBacklog)
{
    PmemTiming timing;
    timing.onClwbAsync(1);
    timing.onSfence();
    EXPECT_EQ(timing.now(), timing.params().sfenceNs)
        << "a fence does not wait for other cores' writes";
}

TEST(PmemTiming, CountsPmLineWrites)
{
    PmemTiming timing;
    for (int i = 0; i < 10; ++i)
        timing.onClwb(i);
    EXPECT_EQ(timing.pmLineWrites(), 10u);
}

TEST(PmemTiming, ResetClearsClockKeepsCounters)
{
    PmemTiming timing;
    timing.onClwb(0);
    timing.onSfence();
    timing.reset();
    EXPECT_EQ(timing.now(), 0u);
    EXPECT_EQ(timing.pmLineWrites(), 1u);
}

} // namespace
} // namespace specpmt::pmem
