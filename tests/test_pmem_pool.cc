/**
 * @file
 * Tests for the pool allocator and the crash-safe root directory.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "pmem/pmem_pool.hh"

namespace specpmt::pmem
{
namespace
{

class PmemPoolTest : public ::testing::Test
{
  protected:
    PmemPoolTest() : dev_(4u << 20), pool_(dev_) {}

    PmemDevice dev_;
    PmemPool pool_;
};

TEST_F(PmemPoolTest, AllocationsAreDisjointAndAligned)
{
    std::set<std::pair<PmOff, PmOff>> ranges;
    for (unsigned i = 1; i <= 200; ++i) {
        const std::size_t size = (i * 13) % 500 + 1;
        const PmOff off = pool_.alloc(size);
        EXPECT_NE(off, kPmNull);
        EXPECT_EQ(off % 16, 0u);
        EXPECT_GE(off, kPageSize) << "page 0 is the root directory";
        const PmOff end = off + pool_.allocationSize(off);
        for (const auto &[s, e] : ranges)
            EXPECT_TRUE(end <= s || off >= e) << "overlap";
        ranges.emplace(off, end);
    }
}

TEST_F(PmemPoolTest, FreeThenAllocReusesMemory)
{
    const PmOff a = pool_.alloc(64);
    pool_.free(a);
    const PmOff b = pool_.alloc(64);
    EXPECT_EQ(a, b);
}

TEST_F(PmemPoolTest, AllocationSizeRoundsToClass)
{
    const PmOff a = pool_.alloc(20);
    EXPECT_EQ(pool_.allocationSize(a), 32u);
    const PmOff b = pool_.alloc(16);
    EXPECT_EQ(pool_.allocationSize(b), 16u);
    const PmOff c = pool_.alloc(4096);
    EXPECT_EQ(pool_.allocationSize(c), 4096u);
}

TEST_F(PmemPoolTest, AlignedAllocationHonorsAlignment)
{
    for (std::size_t alignment : {64u, 256u, 4096u}) {
        const PmOff off = pool_.allocAligned(100, alignment);
        EXPECT_EQ(off % alignment, 0u) << alignment;
    }
}

TEST_F(PmemPoolTest, BytesAllocatedTracksLiveness)
{
    EXPECT_EQ(pool_.bytesAllocated(), 0u);
    const PmOff a = pool_.alloc(64);
    const PmOff b = pool_.alloc(128);
    EXPECT_EQ(pool_.bytesAllocated(), 192u);
    pool_.free(a);
    EXPECT_EQ(pool_.bytesAllocated(), 128u);
    pool_.free(b);
    EXPECT_EQ(pool_.bytesAllocated(), 0u);
    EXPECT_EQ(pool_.peakBytesAllocated(), 192u);
}

TEST_F(PmemPoolTest, RootsSurviveAdversarialCrash)
{
    pool_.setRoot(5, 0x1234560);
    dev_.simulateCrash(CrashPolicy::nothing());
    EXPECT_EQ(pool_.getRoot(5), 0x1234560u);
    EXPECT_EQ(pool_.getRoot(6), kPmNull);
}

TEST_F(PmemPoolTest, ReopenForgetsAllocationsButKeepsWatermark)
{
    const PmOff a = pool_.alloc(256);
    pool_.reopenAfterCrash();
    const PmOff b = pool_.alloc(256);
    EXPECT_NE(a, b) << "fresh allocations must not overwrite old data";
    EXPECT_GT(b, a);
}

TEST_F(PmemPoolTest, AdoptRegistersForeignAllocation)
{
    const PmOff a = pool_.allocAligned(4096, 64);
    pool_.reopenAfterCrash();
    pool_.adopt(a, 4096);
    EXPECT_EQ(pool_.allocationSize(a), 4096u);
    pool_.free(a); // must not die
    const PmOff b = pool_.allocAligned(4096, 16);
    EXPECT_EQ(b, a) << "adopted-then-freed block is reusable";
}

TEST_F(PmemPoolTest, AdoptIsIdempotent)
{
    const PmOff a = pool_.alloc(64);
    pool_.adopt(a, 64);
    EXPECT_EQ(pool_.allocationSize(a), 64u);
}

TEST_F(PmemPoolTest, ExhaustionThrowsTypedAndPoolStaysUsable)
{
    // Exhaustion is a typed, recoverable condition (the KV layer
    // turns it into read-only degraded mode), not a process abort —
    // and an alloc that threw must leave the pool consistent.
    PmemDevice small_dev(3 * kPageSize);
    PmemPool small_pool(small_dev);
    std::vector<PmOff> live;
    for (int i = 0; i < 100; ++i) {
        try {
            live.push_back(small_pool.alloc(4096));
        } catch (const PoolExhausted &) {
            break;
        }
    }
    ASSERT_FALSE(live.empty());
    ASSERT_LT(live.size(), 100u) << "the 12 KiB pool never exhausted";
    // Freeing a block makes the pool allocatable again: the throw
    // must not have corrupted allocator state.
    small_pool.free(live.back());
    EXPECT_EQ(small_pool.alloc(4096), live.back());
}

} // namespace
} // namespace specpmt::pmem
