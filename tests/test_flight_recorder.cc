/**
 * @file
 * Tests of the persistent flight recorder (src/forensic): ring
 * creation, attach, sealed-record append, ring wrap, sequence
 * resumption across re-attach, crash survival of fenced records, and
 * the offline decoder's tolerance of torn slots and garbage roots.
 */

#include <gtest/gtest.h>

#include <memory>

#include "forensic/flight_recorder.hh"
#include "pmem/crash_policy.hh"
#include "pmem/image_io.hh"
#include "pmem/pmem_device.hh"
#include "pmem/pmem_pool.hh"

namespace specpmt::forensic
{
namespace
{

class FlightRecorderTest : public ::testing::Test
{
  protected:
    FlightRecorderTest() : dev_(1 << 20), pool_(dev_) {}

    PmOff
    ringRoot() const
    {
        return pool_.getRoot(kFlightRecorderRootSlot);
    }

    pmem::PmemDevice dev_;
    pmem::PmemPool pool_;
};

TEST_F(FlightRecorderTest, DefaultHandleIsDisabledNoop)
{
    FlightRecorder recorder;
    EXPECT_FALSE(recorder.enabled());
    recorder.record(EventType::TxBegin, 0);
    EXPECT_EQ(recorder.sequence(), 0u);
}

TEST_F(FlightRecorderTest, AttachWithoutCreateIsDisabled)
{
    auto recorder = FlightRecorder::attach(pool_);
    EXPECT_FALSE(recorder.enabled());
    recorder.record(EventType::TxBegin, 0); // must be a harmless no-op
}

TEST_F(FlightRecorderTest, CreatePublishesRingAndAttachEnables)
{
    FlightRecorder::create(pool_, 8);
    EXPECT_NE(ringRoot(), kPmNull);

    auto recorder = FlightRecorder::attach(pool_);
    ASSERT_TRUE(recorder.enabled());
    EXPECT_EQ(recorder.sequence(), 0u);
}

TEST_F(FlightRecorderTest, RecordDecodeRoundTrip)
{
    FlightRecorder::create(pool_, 8);
    auto recorder = FlightRecorder::attach(pool_);
    recorder.record(EventType::TxBegin, 2, 0, 0, 0);
    recorder.record(EventType::TxCommit, 2, 41, 3, 0);
    recorder.record(EventType::RecoveryEnd, 0, 0, 17, 0);
    dev_.sfence();

    const auto ring = FlightRecorder::decode(dev_, ringRoot());
    EXPECT_TRUE(ring.present);
    EXPECT_TRUE(ring.error.empty());
    EXPECT_EQ(ring.capacity, 8u);
    ASSERT_EQ(ring.records.size(), 3u);
    EXPECT_EQ(ring.records[0].seq, 1u);
    EXPECT_EQ(ring.records[0].type, EventType::TxBegin);
    EXPECT_EQ(ring.records[0].tid, 2u);
    EXPECT_EQ(ring.records[1].type, EventType::TxCommit);
    EXPECT_EQ(ring.records[1].timestamp, 41u);
    EXPECT_EQ(ring.records[1].arg0, 3u);
    EXPECT_EQ(ring.records[2].type, EventType::RecoveryEnd);
    EXPECT_EQ(ring.records[2].arg0, 17u);
    // Never-written slots are empty, not torn.
    EXPECT_EQ(ring.invalidSlots, 0u);
}

TEST_F(FlightRecorderTest, RingWrapKeepsTheNewestRecords)
{
    FlightRecorder::create(pool_, 4);
    auto recorder = FlightRecorder::attach(pool_);
    for (std::uint64_t i = 0; i < 10; ++i)
        recorder.record(EventType::TxCommit, 0, i + 1);
    dev_.sfence();

    const auto ring = FlightRecorder::decode(dev_, ringRoot());
    ASSERT_EQ(ring.records.size(), 4u);
    for (std::uint64_t i = 0; i < 4; ++i) {
        EXPECT_EQ(ring.records[i].seq, 7 + i);
        EXPECT_EQ(ring.records[i].timestamp, 7 + i);
    }
    EXPECT_EQ(ring.invalidSlots, 0u);
}

TEST_F(FlightRecorderTest, SequenceResumesAcrossReattach)
{
    FlightRecorder::create(pool_, 8);
    {
        auto recorder = FlightRecorder::attach(pool_);
        recorder.record(EventType::TxBegin, 0);
        recorder.record(EventType::TxCommit, 0, 1);
        dev_.sfence();
    }
    // A fresh attach (new process, post-crash reopen) must continue
    // the sequence, not restart it and shadow older records.
    auto recorder = FlightRecorder::attach(pool_);
    EXPECT_EQ(recorder.sequence(), 2u);
    recorder.record(EventType::RecoveryBegin, 0);
    dev_.sfence();

    const auto ring = FlightRecorder::decode(dev_, ringRoot());
    ASSERT_EQ(ring.records.size(), 3u);
    EXPECT_EQ(ring.records[2].seq, 3u);
    EXPECT_EQ(ring.records[2].type, EventType::RecoveryBegin);
}

TEST_F(FlightRecorderTest, FencedRecordsSurviveACrash)
{
    FlightRecorder::create(pool_, 8);
    auto recorder = FlightRecorder::attach(pool_);
    recorder.record(EventType::TxBegin, 0);
    recorder.record(EventType::TxCommit, 0, 1);
    dev_.sfence(); // the commit fence the records piggyback on
    recorder.record(EventType::TxBegin, 0); // after the last fence

    // Power failure dropping every undrained line: the fenced records
    // must read back; the unfenced one may vanish but never misreads.
    const auto image =
        dev_.crashImage(pmem::CrashPolicy::nothing());
    const auto crashed = pmem::deviceFromImage(image);
    const auto ring = FlightRecorder::decode(
        *crashed, crashed->loadT<PmOff>(kFlightRecorderRootSlot *
                                        sizeof(PmOff)));
    EXPECT_TRUE(ring.present);
    ASSERT_EQ(ring.records.size(), 2u);
    EXPECT_EQ(ring.records[0].type, EventType::TxBegin);
    EXPECT_EQ(ring.records[1].type, EventType::TxCommit);
}

TEST_F(FlightRecorderTest, TornSlotIsReportedInvalidNeverMisread)
{
    FlightRecorder::create(pool_, 8);
    auto recorder = FlightRecorder::attach(pool_);
    recorder.record(EventType::TxBegin, 0);
    recorder.record(EventType::TxCommit, 0, 1);
    dev_.sfence();

    // Flip one payload byte of the second record: its position-seeded
    // seal no longer validates.
    const PmOff slot1 = ringRoot() + sizeof(FlightHeader) +
                        1 * sizeof(FlightRecord);
    dev_.storeT<std::uint8_t>(slot1 + offsetof(FlightRecord, arg0),
                              0xFF);
    dev_.clwb(slot1);
    dev_.sfence();

    const auto ring = FlightRecorder::decode(dev_, ringRoot());
    ASSERT_EQ(ring.records.size(), 1u);
    EXPECT_EQ(ring.records[0].type, EventType::TxBegin);
    EXPECT_EQ(ring.invalidSlots, 1u);
}

TEST_F(FlightRecorderTest, DecodeToleratesGarbageRoot)
{
    // Root pointing at unformatted pool bytes: decode must report a
    // corrupt header, never crash or fabricate records.
    const auto ring = FlightRecorder::decode(dev_, 0x4000);
    EXPECT_TRUE(ring.present);
    EXPECT_FALSE(ring.error.empty());
    EXPECT_TRUE(ring.records.empty());

    // Null root: recorder was simply never enabled.
    const auto absent = FlightRecorder::decode(dev_, kPmNull);
    EXPECT_FALSE(absent.present);

    // Root beyond the device: out-of-bounds, not a crash.
    const auto oob = FlightRecorder::decode(dev_, dev_.size() + 4096);
    EXPECT_TRUE(oob.present);
    EXPECT_FALSE(oob.error.empty());
}

} // namespace
} // namespace specpmt::forensic
