/**
 * @file
 * Tests for the name-based runtime factory: every advertised name
 * constructs a working runtime, the recoverable subset is exactly the
 * schemes with a recovery story, and error paths (unknown names,
 * non-recoverable selection where recovery is relied upon) fail the
 * way the contracts promise.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "pmem/pmem_device.hh"
#include "pmem/pmem_pool.hh"
#include "sim/crash_explorer.hh"
#include "txn/runtime_factory.hh"

namespace specpmt::txn
{
namespace
{

// Big enough for every scheme's metadata (hashlog pre-sizes a 16MB
// table at the default slot count).
constexpr std::size_t kPoolBytes = 64u << 20;

TEST(RuntimeFactory, EveryAdvertisedNameConstructsAndCommits)
{
    for (const auto &name : runtimeNames()) {
        pmem::PmemDevice dev(kPoolBytes);
        pmem::PmemPool pool(dev);
        RuntimeOptions options;
        options.backgroundWorkers = false;
        auto runtime = makeRuntime(name, pool, 1, options);
        ASSERT_NE(runtime, nullptr) << name;

        const PmOff off = pool.alloc(64);
        runtime->txBegin(0);
        runtime->txStoreT<std::uint64_t>(0, off, 0xABCDu);
        runtime->txCommit(0);
        EXPECT_EQ(runtime->txLoadT<std::uint64_t>(0, off), 0xABCDu)
            << name;
        runtime->shutdown();
    }
}

TEST(RuntimeFactory, RejectsUnknownNames)
{
    EXPECT_FALSE(isRuntimeName(""));
    EXPECT_FALSE(isRuntimeName("specx"));
    EXPECT_FALSE(isRuntimeName("SPEC"));
    EXPECT_FALSE(isRuntimeName("undo"));
    for (const auto &name : runtimeNames())
        EXPECT_TRUE(isRuntimeName(name));
}

TEST(RuntimeFactoryDeathTest, PanicsOnUnknownName)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    pmem::PmemDevice dev(kPoolBytes);
    pmem::PmemPool pool(dev);
    EXPECT_DEATH(
        { makeRuntime("not-a-runtime", pool, 1); },
        "unknown runtime name");
}

TEST(RuntimeFactory, RecoverableSubsetIsExact)
{
    const auto &recoverable = recoverableRuntimeNames();
    EXPECT_EQ(recoverable.size(), 4u);
    for (const char *name : {"pmdk", "spht", "spec", "spec-dp"}) {
        EXPECT_TRUE(isRecoverableRuntimeName(name)) << name;
        EXPECT_NE(std::find(recoverable.begin(), recoverable.end(),
                            name),
                  recoverable.end());
    }
    // Performance baselines and the rejected strawman must not be
    // offered where recovery is relied upon.
    for (const char *name : {"direct", "kamino", "hashlog"}) {
        EXPECT_TRUE(isRuntimeName(name)) << name;
        EXPECT_FALSE(isRecoverableRuntimeName(name)) << name;
    }
    EXPECT_FALSE(isRecoverableRuntimeName("not-a-runtime"));
}

TEST(RuntimeFactory, CrashRuntimesAreRecoverablePlusHybrid)
{
    for (const auto &name : sim::crashRuntimeNames()) {
        EXPECT_TRUE(name == "hybrid" || isRecoverableRuntimeName(name))
            << name;
        EXPECT_TRUE(sim::isCrashRuntimeName(name)) << name;

        pmem::PmemDevice dev(kPoolBytes);
        pmem::PmemPool pool(dev);
        auto runtime = sim::makeCrashRuntime(name, pool, 1);
        ASSERT_NE(runtime, nullptr) << name;
        runtime->shutdown();
    }
    EXPECT_FALSE(sim::isCrashRuntimeName("direct"));
    EXPECT_FALSE(sim::isCrashRuntimeName("hashlog"));
}

TEST(RuntimeFactory, MakeCrashRuntimeThrowsOnNonRecoverable)
{
    pmem::PmemDevice dev(kPoolBytes);
    pmem::PmemPool pool(dev);
    EXPECT_THROW(sim::makeCrashRuntime("direct", pool, 1),
                 std::runtime_error);
    EXPECT_THROW(sim::makeCrashRuntime("hashlog", pool, 1),
                 std::runtime_error);
    EXPECT_THROW(sim::makeCrashRuntime("nope", pool, 1),
                 std::runtime_error);
}

} // namespace
} // namespace specpmt::txn
