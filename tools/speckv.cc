/**
 * @file
 * speckv — operational walkthrough of the sharded KV service.
 *
 * Phases:
 *   1. load    — insert the whole keyspace via multiPut batches;
 *   2. run     — closed-loop YCSB mix on N client threads;
 *   3. crash   — re-run with a power failure armed mid-traffic, then
 *                collapse every shard to its crash image under a
 *                randomized eviction policy;
 *   4. recover — rebuild all shards in parallel (one recovery thread
 *                per shard), timed;
 *   5. verify  — every loaded key must still be present with an
 *                intact self-tagged value (no lost keys, no torn or
 *                cross-key values), on every shard.
 *
 * Exit status is nonzero if verification fails, so the ctest entries
 * double as end-to-end smoke tests.
 *
 * Usage:
 *   speckv [--runtime=spec] [--shards=4] [--threads=4]
 *          [--keys=4096] [--ops=2000] [--mix=A|B|C]
 *          [--dist=zipfian|uniform] [--crash-after=500] [--seed=1]
 *          [--metrics-out=m.prom] [--trace-out=t.json]
 *
 * `speckv serve` instead runs the networked front end (src/net): the
 * sharded service behind per-shard epoll event loops speaking the
 * pipelined binary protocol, until --seconds elapse or
 * SIGINT/SIGTERM:
 *
 *   speckv serve [--runtime=spec] [--shards=4] [--keys=4096]
 *                [--port=0] [--port-file=PATH] [--seconds=0]
 *                [--max-ops-per-commit=256] [--group-commit]
 *                [--epoch-max-ops=64] [--epoch-max-delay-us=500]
 *                [--pm-dir=DIR] [--pool-bytes=N]
 *                [--max-pending-ops=4096]
 *                [--idle-timeout-ms=0] [--max-frame-bytes=1048576]
 *                [--fault-seed=1] [--fault-poison=0] [--fault-eio=0]
 *                [--fault-corrupt=0] [--fault-region-start=65536]
 *                [--fault-delay-ms=0] [--fault-shard=-1]
 *                [--metrics-out=m.prom]
 *
 * --port=0 binds an ephemeral port; --port-file writes the bound port
 * so scripts (CI, specnet_bench wrappers) can find it.
 *
 * --pm-dir backs every shard's emulated device with a file
 * `<dir>/shard-<n>.pm`; a restart over the same directory re-attaches
 * the images and runs recovery, so a SIGKILLed server can be brought
 * back with its acked writes intact (the specchaos harness does
 * exactly this).
 *
 * --fault-* install a seeded deterministic media-fault plan
 * (pmem::FaultPlan) on the shard devices: poisoned read lines, write
 * EIO lines, latent bit corruption. --fault-delay-ms defers the
 * injection into mid-traffic; --fault-shard targets one shard (-1 =
 * all). --fault-region-start keeps faults off the pool metadata so
 * scenarios exercise log/data paths, not bootstrap.
 *
 * --group-commit serves with epoch group commit (DESIGN §12):
 * mutations without the wire protocol's kFlagStrict commit relaxed
 * and are acked only after their epoch's shared fence, sealed every
 * --epoch-max-ops deferred mutations or --epoch-max-delay-us
 * microseconds, whichever comes first. Requires a group-commit-capable
 * runtime ("spec", "spec-dp").
 */

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>

#include "common/logging.hh"
#include "common/rand.hh"
#include "kv/driver.hh"
#include "kv/kv_service.hh"
#include "net/server.hh"
#include "obs/artifacts.hh"
#include "pmem/pmem_device.hh"
#include "obs/telemetry_server.hh"
#include "obs/trace.hh"

using namespace specpmt;

namespace
{

struct Args
{
    std::string runtime = "spec";
    unsigned shards = 4;
    unsigned threads = 4;
    std::uint64_t keys = 4096;
    std::uint64_t opsPerThread = 2000;
    kv::Mix mix = kv::Mix::A;
    kv::KeyDist dist = kv::KeyDist::Zipfian;
    long crashAfter = 500;
    std::uint64_t seed = 1;
    obs::OutputFlags obs;
};

Args
parseArgs(int argc, char **argv)
{
    Args args;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&](const char *prefix) -> const char * {
            const std::size_t n = std::string(prefix).size();
            return arg.rfind(prefix, 0) == 0 ? arg.c_str() + n
                                             : nullptr;
        };
        if (const char *v = value("--runtime="))
            args.runtime = v;
        else if (const char *v = value("--shards="))
            args.shards = static_cast<unsigned>(std::atoi(v));
        else if (const char *v = value("--threads="))
            args.threads = static_cast<unsigned>(std::atoi(v));
        else if (const char *v = value("--keys="))
            args.keys = std::strtoull(v, nullptr, 10);
        else if (const char *v = value("--ops="))
            args.opsPerThread = std::strtoull(v, nullptr, 10);
        else if (const char *v = value("--crash-after="))
            args.crashAfter = std::atol(v);
        else if (const char *v = value("--seed="))
            args.seed = std::strtoull(v, nullptr, 10);
        else if (const char *v = value("--mix=")) {
            const std::string m = v;
            args.mix = m == "B" ? kv::Mix::B
                : m == "C"      ? kv::Mix::C
                                : kv::Mix::A;
        } else if (const char *v = value("--dist=")) {
            args.dist = std::string(v) == "uniform"
                ? kv::KeyDist::Uniform
                : kv::KeyDist::Zipfian;
        } else if (!args.obs.accept(arg)) {
            SPECPMT_FATAL("unknown argument: %s", arg.c_str());
        }
    }
    if (!txn::isRuntimeName(args.runtime)) {
        std::string names;
        for (const auto &name : txn::runtimeNames())
            names += " " + name;
        SPECPMT_FATAL("unknown runtime %s; known:%s",
                      args.runtime.c_str(), names.c_str());
    }
    // The walkthrough power-fails the service and recovers it, so the
    // non-recoverable runtimes (the no-crash-consistency baseline and
    // the §4 hash-table-log strawman) cannot drive it; use
    // bench_kv_ycsb (which never crashes) to measure those.
    if (args.runtime == "direct" || args.runtime == "hashlog") {
        SPECPMT_FATAL("runtime %s is not crash-recoverable; speckv "
                      "needs one of: pmdk kamino spht spec spec-dp",
                      args.runtime.c_str());
    }
    return args;
}

std::uint64_t
nextPow2(std::uint64_t x)
{
    std::uint64_t p = 1;
    while (p < x)
        p <<= 1;
    return p;
}

void
printRunResult(const char *phase, const kv::DriverResult &result)
{
    LatencyHistogram latency = result.readLatency;
    latency.merge(result.updateLatency);
    std::printf("[%s] %llu ops in %.3fs: %.1f kops/s wall, "
                "%.1f kops/s simulated; p50 %.1fus p99 %.1fus%s\n",
                phase,
                static_cast<unsigned long long>(result.totalOps()),
                result.wallSeconds, result.throughputOps / 1e3,
                result.simThroughputOps / 1e3,
                latency.percentile(50) / 1e3,
                latency.percentile(99) / 1e3,
                result.crashed ? "  ** power failed **" : "");
}

std::atomic<bool> g_stop{false};

void
onSignal(int)
{
    g_stop.store(true);
}

/** `speckv serve`: run the networked front end; see file comment. */
int
serveMain(int argc, char **argv)
{
    std::string runtime = "spec";
    unsigned shards = 4;
    std::uint64_t keys = 4096;
    unsigned port = 0;
    std::string port_file;
    double seconds = 0; // 0 = until signal
    std::size_t max_ops_per_commit = 256;
    bool group_commit = false;
    std::size_t epoch_max_ops = 64;
    std::uint64_t epoch_max_delay_us = 500;
    int admin_port = -1; // -1 = no admin endpoint; 0 = ephemeral
    std::string admin_port_file;
    std::uint64_t slow_us = 0;
    std::string pm_dir;
    std::size_t pool_bytes = 0; // 0 = KvServiceConfig default
    std::size_t max_pending_ops = 4096;
    std::uint64_t idle_timeout_ms = 0;
    std::size_t max_frame_bytes = net::kMaxFrameBytes;
    pmem::FaultPlan fault_plan;
    fault_plan.regionStart = 64 * 1024;
    std::uint64_t fault_delay_ms = 0;
    int fault_shard = -1;
    obs::OutputFlags obs_flags;

    // Install the stop handlers before anything heavy is built, so a
    // signal during startup still reaches the artifact-flush path.
    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);
    // Every socket send in the tree passes MSG_NOSIGNAL, but a client
    // that resets its connection mid-response must never be able to
    // kill the server through any future write path either.
    std::signal(SIGPIPE, SIG_IGN);

    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&](const char *prefix) -> const char * {
            const std::size_t n = std::string(prefix).size();
            return arg.rfind(prefix, 0) == 0 ? arg.c_str() + n
                                             : nullptr;
        };
        if (const char *v = value("--runtime="))
            runtime = v;
        else if (const char *v = value("--shards="))
            shards = static_cast<unsigned>(std::atoi(v));
        else if (const char *v = value("--keys="))
            keys = std::strtoull(v, nullptr, 10);
        else if (const char *v = value("--port="))
            port = static_cast<unsigned>(std::atoi(v));
        else if (const char *v = value("--port-file="))
            port_file = v;
        else if (const char *v = value("--seconds="))
            seconds = std::atof(v);
        else if (const char *v = value("--max-ops-per-commit="))
            max_ops_per_commit = std::strtoull(v, nullptr, 10);
        else if (arg == "--group-commit")
            group_commit = true;
        else if (const char *v = value("--epoch-max-ops="))
            epoch_max_ops = std::strtoull(v, nullptr, 10);
        else if (const char *v = value("--epoch-max-delay-us="))
            epoch_max_delay_us = std::strtoull(v, nullptr, 10);
        else if (const char *v = value("--admin-port="))
            admin_port = std::atoi(v);
        else if (const char *v = value("--admin-port-file="))
            admin_port_file = v;
        else if (const char *v = value("--slow-us="))
            slow_us = std::strtoull(v, nullptr, 10);
        else if (const char *v = value("--pm-dir="))
            pm_dir = v;
        else if (const char *v = value("--pool-bytes="))
            pool_bytes = std::strtoull(v, nullptr, 10);
        else if (const char *v = value("--max-pending-ops="))
            max_pending_ops = std::strtoull(v, nullptr, 10);
        else if (const char *v = value("--idle-timeout-ms="))
            idle_timeout_ms = std::strtoull(v, nullptr, 10);
        else if (const char *v = value("--max-frame-bytes="))
            max_frame_bytes = std::strtoull(v, nullptr, 10);
        else if (const char *v = value("--fault-seed="))
            fault_plan.seed = std::strtoull(v, nullptr, 10);
        else if (const char *v = value("--fault-poison="))
            fault_plan.poisonLines = std::strtoull(v, nullptr, 10);
        else if (const char *v = value("--fault-eio="))
            fault_plan.eioLines = std::strtoull(v, nullptr, 10);
        else if (const char *v = value("--fault-corrupt="))
            fault_plan.corruptLines = std::strtoull(v, nullptr, 10);
        else if (const char *v = value("--fault-region-start="))
            fault_plan.regionStart = std::strtoull(v, nullptr, 10);
        else if (const char *v = value("--fault-delay-ms="))
            fault_delay_ms = std::strtoull(v, nullptr, 10);
        else if (const char *v = value("--fault-shard="))
            fault_shard = std::atoi(v);
        else if (!obs_flags.accept(arg))
            SPECPMT_FATAL("unknown argument: %s", arg.c_str());
    }
    if (!txn::isRuntimeName(runtime))
        SPECPMT_FATAL("unknown runtime %s", runtime.c_str());

    kv::KvServiceConfig service_config;
    service_config.shards = shards;
    // Loop i of the server transacts as client thread id i.
    service_config.threads = shards;
    service_config.runtime = runtime;
    service_config.bucketsPerShard =
        nextPow2(std::max<std::uint64_t>(1024, 4 * keys / shards));
    if (group_commit)
        service_config.runtimeOptions.groupCommit = true;
    service_config.pmDir = pm_dir;
    if (pool_bytes != 0)
        service_config.shardPoolBytes = pool_bytes;
    kv::KvService service(service_config);

    // Media-fault injection: install the seeded plan after
    // construction (so a --pm-dir re-attach recovers fault-free),
    // either immediately or from a delay thread that fires
    // mid-traffic.
    std::thread fault_thread;
    const bool fault_armed = fault_plan.poisonLines != 0 ||
                             fault_plan.eioLines != 0 ||
                             fault_plan.corruptLines != 0;
    auto apply_faults = [&service, fault_plan, fault_shard, shards] {
        for (unsigned s = 0; s < shards; ++s) {
            if (fault_shard >= 0 &&
                s != static_cast<unsigned>(fault_shard))
                continue;
            service.shardDevice(s).applyFaultPlan(fault_plan);
        }
        SPECPMT_INFORM(
            "speckv serve: fault plan armed (seed=%llu poison=%zu "
            "eio=%zu corrupt=%zu shard=%d)",
            static_cast<unsigned long long>(fault_plan.seed),
            fault_plan.poisonLines, fault_plan.eioLines,
            fault_plan.corruptLines, fault_shard);
    };
    if (fault_armed) {
        if (fault_delay_ms == 0)
            apply_faults();
        else
            fault_thread = std::thread([apply_faults,
                                        fault_delay_ms] {
                const auto deadline =
                    std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(fault_delay_ms);
                while (!g_stop.load() &&
                       std::chrono::steady_clock::now() < deadline)
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(5));
                if (!g_stop.load())
                    apply_faults();
            });
    }

    net::ServerConfig server_config;
    server_config.port = static_cast<std::uint16_t>(port);
    server_config.maxOpsPerCommit = max_ops_per_commit;
    server_config.groupCommit = group_commit;
    server_config.epochMaxOps = epoch_max_ops;
    server_config.epochMaxDelayUs = epoch_max_delay_us;
    server_config.slowUs = slow_us;
    server_config.maxPendingOps = max_pending_ops;
    server_config.idleTimeoutMs = idle_timeout_ms;
    server_config.maxFrameBytes = max_frame_bytes;
    net::NetServer server(service, server_config);
    server.start();

    // The live telemetry plane: /metrics, /stats.json, /healthz,
    // /trace against the same registry the artifacts snapshot.
    std::unique_ptr<obs::TelemetryServer> telemetry;
    if (admin_port >= 0) {
        obs::TelemetryConfig telemetry_config;
        telemetry_config.port = static_cast<std::uint16_t>(admin_port);
        telemetry_config.health = [&server] {
            return server.healthReport();
        };
        telemetry = std::make_unique<obs::TelemetryServer>(
            std::move(telemetry_config));
        if (!telemetry->start())
            SPECPMT_FATAL("cannot start admin endpoint on port %d",
                          admin_port);
        // Arm the tracer so /trace and --slow-us tail sampling have
        // spans to serve even without --trace-out.
        obs::Tracer::global().enable();
        if (!admin_port_file.empty()) {
            FILE *f = std::fopen(admin_port_file.c_str(), "w");
            if (f == nullptr)
                SPECPMT_FATAL("cannot write %s",
                              admin_port_file.c_str());
            std::fprintf(f, "%u\n", telemetry->port());
            std::fclose(f);
        }
    }

    if (!port_file.empty()) {
        FILE *f = std::fopen(port_file.c_str(), "w");
        if (f == nullptr)
            SPECPMT_FATAL("cannot write %s", port_file.c_str());
        std::fprintf(f, "%u\n", server.port());
        std::fclose(f);
    }
    std::printf("speckv serve: runtime=%s shards=%u port=%u%s",
                runtime.c_str(), shards, server.port(),
                group_commit ? " group-commit" : "");
    if (telemetry)
        std::printf(" admin-port=%u", telemetry->port());
    std::printf("\n");
    std::fflush(stdout);

    const auto start = std::chrono::steady_clock::now();
    while (!g_stop.load()) {
        if (seconds > 0 &&
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start)
                    .count() >= seconds)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }

    // Snapshot the artifacts BEFORE the drain path: if stop() or
    // shutdown() wedges (or a second signal kills the process), the
    // serve-time observations are already on disk. A clean exit
    // overwrites them with the final state below.
    obs_flags.writeArtifacts();
    g_stop.store(true);
    if (fault_thread.joinable())
        fault_thread.join();
    if (telemetry)
        telemetry->stop();
    server.stop();
    service.shutdown();
    obs_flags.writeArtifacts();
    std::printf("speckv serve: OK\n");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc > 1 && std::string(argv[1]) == "serve")
        return serveMain(argc, argv);
    const Args args = parseArgs(argc, argv);

    kv::KvServiceConfig service_config;
    service_config.shards = args.shards;
    service_config.threads = args.threads;
    service_config.runtime = args.runtime;
    service_config.bucketsPerShard = nextPow2(
        std::max<std::uint64_t>(1024, 4 * args.keys / args.shards));

    kv::DriverConfig driver_config;
    driver_config.threads = args.threads;
    driver_config.keys = args.keys;
    driver_config.opsPerThread = args.opsPerThread;
    driver_config.mix = args.mix;
    driver_config.dist = args.dist;
    driver_config.seed = args.seed;
    driver_config.multiPutFraction = 0.05;

    std::printf("speckv: runtime=%s shards=%u threads=%u keys=%llu "
                "mix=%s dist=%s\n",
                args.runtime.c_str(), args.shards, args.threads,
                static_cast<unsigned long long>(args.keys),
                kv::mixName(args.mix), kv::keyDistName(args.dist));

    // Phase 1: load.
    kv::KvService service(service_config);
    kv::loadKeyspace(service, driver_config);
    std::printf("[load] %llu keys loaded across %u shards\n",
                static_cast<unsigned long long>(args.keys),
                args.shards);

    // Phase 2: clean run.
    auto run = kv::runClosedLoop(service, driver_config);
    printRunResult("run", run);
    if (run.failed != 0) {
        std::printf("FAIL: %llu failed ops in the clean run\n",
                    static_cast<unsigned long long>(run.failed));
        return 1;
    }

    // Phase 3: run again with a power failure armed mid-traffic.
    driver_config.armCrashAfter = args.crashAfter;
    driver_config.seed = args.seed + 1;
    auto crash_run = kv::runClosedLoop(service, driver_config);
    printRunResult("crash-run", crash_run);
    if (!crash_run.crashed) {
        std::printf("[crash] countdown outlived the run; "
                    "forcing the power failure now\n");
    }
    service.crash(pmem::CrashPolicy::random(args.seed, 0.5));
    std::printf("[crash] all %u shards collapsed to their crash "
                "images (random eviction, p=0.5)\n",
                args.shards);

    // Phase 4: parallel per-shard recovery.
    const auto recover_start = std::chrono::steady_clock::now();
    service.recover();
    const double recover_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - recover_start)
            .count();
    std::printf("[recover] %u shards recovered in parallel in "
                "%.1fms\n",
                args.shards, recover_ms);

    // Phase 5: verify.
    std::uint64_t missing = 0;
    std::uint64_t corrupt = 0;
    for (std::uint64_t key = 1; key <= args.keys; ++key) {
        const auto value = service.get(0, key);
        if (!value)
            ++missing;
        else if (!value->checkTag(key))
            ++corrupt;
    }
    if (missing != 0 || corrupt != 0) {
        std::printf("FAIL: %llu keys missing, %llu values corrupt "
                    "after recovery\n",
                    static_cast<unsigned long long>(missing),
                    static_cast<unsigned long long>(corrupt));
        return 1;
    }
    std::printf("[verify] all %llu keys present and intact on every "
                "shard\n",
                static_cast<unsigned long long>(args.keys));

    // The recovered service must keep serving.
    driver_config.armCrashAfter = -1;
    driver_config.seed = args.seed + 2;
    auto post = kv::runClosedLoop(service, driver_config);
    printRunResult("post-recovery", post);
    if (post.failed != 0) {
        std::printf("FAIL: %llu failed ops after recovery\n",
                    static_cast<unsigned long long>(post.failed));
        return 1;
    }
    service.shutdown();
    args.obs.writeArtifacts();
    std::printf("speckv: OK\n");
    return 0;
}
