/**
 * @file
 * specnet_bench — open-loop load generator CLI for a running
 * `speckv serve` instance.
 *
 * Schedules departures on a target-QPS arrival timeline (Poisson or
 * fixed-rate) and reports latency percentiles measured from each
 * request's INTENDED departure time, so coordinated omission cannot
 * hide server stalls (see src/net/loadgen.hh). A closed-loop client
 * under the same stall would simply emit fewer requests and report a
 * flattering tail.
 *
 * Usage:
 *   specnet_bench [--host=127.0.0.1] (--port=N | --port-file=PATH)
 *                 [--qps=20000] [--seconds=2]
 *                 [--arrival=poisson|fixed] [--mix=A|B|C]
 *                 [--dist=zipfian|uniform] [--keys=4096]
 *                 [--multiput=0.0] [--strict=0.0] [--seed=1]
 *                 [--load] [--json=out.json] [--metrics-out=m.prom]
 *                 [--trace-sample=0.0] [--trace-out=trace.json]
 *                 [--timeout-ms=0] [--retries=0] [--reconnect]
 *                 [--backoff-base-ms=10] [--backoff-max-ms=500]
 *
 * --load first PUTs the whole keyspace (shard-grouped batches), so
 * GETs in the timed phase hit. --strict=F sends fraction F of
 * mutation frames with the protocol's kFlagStrict, forcing a
 * per-request commit fence on a server running epoch group commit
 * (no effect on a strict server, where every commit fences anyway).
 * --trace-sample=F sends fraction F of requests with the wire trace
 * extension: the server emits correlated spans and histogram
 * exemplars for them, and with --trace-out= the client writes its
 * own client_send/client_rtt spans (same trace ids) for `specstat
 * trace` to merge with a server-side /trace capture.
 * --timeout-ms / --retries / --reconnect arm the resilient-client
 * machinery (per-request deadlines, idempotent same-id resends of
 * timed-out or Busy-shed requests, re-dial with capped backoff) for
 * chaos runs against a faulting or restarting server.
 * Exit status is nonzero when the run aborted, a connection died,
 * frames were malformed, or requests went unanswered.
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/logging.hh"
#include "net/loadgen.hh"
#include "obs/artifacts.hh"

using namespace specpmt;

namespace
{

std::uint16_t
readPortFile(const std::string &path)
{
    FILE *f = std::fopen(path.c_str(), "r");
    if (f == nullptr)
        SPECPMT_FATAL("cannot read %s", path.c_str());
    unsigned port = 0;
    if (std::fscanf(f, "%u", &port) != 1 || port == 0 ||
        port > 65535) {
        std::fclose(f);
        SPECPMT_FATAL("no port in %s", path.c_str());
    }
    std::fclose(f);
    return static_cast<std::uint16_t>(port);
}

void
printPercentiles(const char *label, const LatencyHistogram &h)
{
    std::printf("  %-7s %9llu samples  p50 %8.1fus  p99 %8.1fus  "
                "p999 %8.1fus  max %8.1fus\n",
                label, static_cast<unsigned long long>(h.count()),
                h.percentile(50) / 1e3, h.percentile(99) / 1e3,
                h.percentile(99.9) / 1e3, h.max() / 1e3);
}

void
jsonHistogram(FILE *f, const char *name, const LatencyHistogram &h,
              bool last)
{
    std::fprintf(f,
                 "  \"%s\": {\"count\": %llu, \"mean_ns\": %.1f, "
                 "\"p50_ns\": %llu, "
                 "\"p99_ns\": %llu, \"p999_ns\": %llu, "
                 "\"max_ns\": %llu}%s\n",
                 name, static_cast<unsigned long long>(h.count()),
                 h.mean(),
                 static_cast<unsigned long long>(h.percentile(50)),
                 static_cast<unsigned long long>(h.percentile(99)),
                 static_cast<unsigned long long>(h.percentile(99.9)),
                 static_cast<unsigned long long>(h.max()),
                 last ? "" : ",");
}

} // namespace

int
main(int argc, char **argv)
{
    net::LoadgenConfig config;
    std::string json_path;
    obs::OutputFlags obs_flags;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&](const char *prefix) -> const char * {
            const std::size_t n = std::string(prefix).size();
            return arg.rfind(prefix, 0) == 0 ? arg.c_str() + n
                                             : nullptr;
        };
        if (const char *v = value("--host="))
            config.host = v;
        else if (const char *v = value("--port="))
            config.port =
                static_cast<std::uint16_t>(std::atoi(v));
        else if (const char *v = value("--port-file="))
            config.port = readPortFile(v);
        else if (const char *v = value("--qps="))
            config.targetQps = std::atof(v);
        else if (const char *v = value("--seconds="))
            config.seconds = std::atof(v);
        else if (const char *v = value("--arrival="))
            config.arrival = std::string(v) == "fixed"
                ? net::Arrival::Fixed
                : net::Arrival::Poisson;
        else if (const char *v = value("--mix=")) {
            const std::string m = v;
            config.workload.mix = m == "B" ? kv::Mix::B
                : m == "C"                 ? kv::Mix::C
                                           : kv::Mix::A;
        } else if (const char *v = value("--dist="))
            config.workload.dist = std::string(v) == "uniform"
                ? kv::KeyDist::Uniform
                : kv::KeyDist::Zipfian;
        else if (const char *v = value("--keys="))
            config.workload.keys = std::strtoull(v, nullptr, 10);
        else if (const char *v = value("--multiput="))
            config.workload.multiPutFraction = std::atof(v);
        else if (const char *v = value("--strict="))
            config.strictFraction = std::atof(v);
        else if (const char *v = value("--trace-sample="))
            config.traceSample = std::atof(v);
        else if (const char *v = value("--seed="))
            config.seed = std::strtoull(v, nullptr, 10);
        else if (arg == "--load")
            config.loadFirst = true;
        else if (const char *v = value("--timeout-ms="))
            config.requestTimeoutMs = std::strtoull(v, nullptr, 10);
        else if (const char *v = value("--retries="))
            config.maxRetries =
                static_cast<std::uint32_t>(std::atoi(v));
        else if (arg == "--reconnect")
            config.reconnect = true;
        else if (const char *v = value("--backoff-base-ms="))
            config.backoffBaseMs = std::strtoull(v, nullptr, 10);
        else if (const char *v = value("--backoff-max-ms="))
            config.backoffMaxMs = std::strtoull(v, nullptr, 10);
        else if (const char *v = value("--json="))
            json_path = v;
        else if (!obs_flags.accept(arg))
            SPECPMT_FATAL("unknown argument: %s", arg.c_str());
    }
    if (config.port == 0)
        SPECPMT_FATAL("--port or --port-file is required");
    if (config.targetQps <= 0 || config.seconds <= 0)
        SPECPMT_FATAL("--qps and --seconds must be positive");

    std::printf("specnet_bench: %s:%u qps=%.0f seconds=%.1f "
                "arrival=%s mix=%s dist=%s keys=%llu%s\n",
                config.host.c_str(), config.port, config.targetQps,
                config.seconds, net::arrivalName(config.arrival),
                kv::mixName(config.workload.mix),
                kv::keyDistName(config.workload.dist),
                static_cast<unsigned long long>(config.workload.keys),
                config.loadFirst ? " (+load)" : "");
    std::fflush(stdout);

    const net::LoadgenResult result = net::runOpenLoop(config);
    if (result.aborted) {
        std::printf("specnet_bench: ABORTED: %s\n",
                    result.error.c_str());
        return 2;
    }

    std::printf(
        "scheduled %llu  sent %llu  acked %llu  errors %llu  "
        "notFound %llu  lost %llu  protocolErrors %llu  strict %llu  "
        "traced %llu\n",
        static_cast<unsigned long long>(result.scheduled),
        static_cast<unsigned long long>(result.sent),
        static_cast<unsigned long long>(result.acked),
        static_cast<unsigned long long>(result.errors),
        static_cast<unsigned long long>(result.notFound),
        static_cast<unsigned long long>(result.lost),
        static_cast<unsigned long long>(result.protocolErrors),
        static_cast<unsigned long long>(result.strictSent),
        static_cast<unsigned long long>(result.tracedSent));
    if (result.timeouts || result.retries || result.reconnects ||
        result.busyResponses)
        std::printf("timeouts %llu  retries %llu  reconnects %llu  "
                    "busy %llu\n",
                    static_cast<unsigned long long>(result.timeouts),
                    static_cast<unsigned long long>(result.retries),
                    static_cast<unsigned long long>(result.reconnects),
                    static_cast<unsigned long long>(
                        result.busyResponses));
    std::printf("wall %.3fs  achieved %.1f kops/s (target %.1f)\n",
                result.wallSeconds, result.achievedQps / 1e3,
                config.targetQps / 1e3);
    std::printf("latency from INTENDED departure time:\n");
    printPercentiles("read", result.readLatency);
    printPercentiles("update", result.updateLatency);
    printPercentiles("sendlag", result.sendLag);

    if (!json_path.empty()) {
        FILE *f = std::fopen(json_path.c_str(), "w");
        if (f == nullptr)
            SPECPMT_FATAL("cannot write %s", json_path.c_str());
        std::fprintf(
            f,
            "{\n"
            "  \"target_qps\": %.1f,\n"
            "  \"achieved_qps\": %.1f,\n"
            "  \"wall_seconds\": %.3f,\n"
            "  \"arrival\": \"%s\",\n"
            "  \"scheduled\": %llu,\n"
            "  \"sent\": %llu,\n"
            "  \"acked\": %llu,\n"
            "  \"errors\": %llu,\n"
            "  \"not_found\": %llu,\n"
            "  \"lost\": %llu,\n"
            "  \"protocol_errors\": %llu,\n"
            "  \"strict_fraction\": %.4f,\n"
            "  \"strict_sent\": %llu,\n"
            "  \"trace_sample\": %.4f,\n"
            "  \"traced_sent\": %llu,\n"
            "  \"timeouts\": %llu,\n"
            "  \"retries\": %llu,\n"
            "  \"reconnects\": %llu,\n"
            "  \"busy_responses\": %llu,\n",
            config.targetQps, result.achievedQps,
            result.wallSeconds, net::arrivalName(config.arrival),
            static_cast<unsigned long long>(result.scheduled),
            static_cast<unsigned long long>(result.sent),
            static_cast<unsigned long long>(result.acked),
            static_cast<unsigned long long>(result.errors),
            static_cast<unsigned long long>(result.notFound),
            static_cast<unsigned long long>(result.lost),
            static_cast<unsigned long long>(result.protocolErrors),
            config.strictFraction,
            static_cast<unsigned long long>(result.strictSent),
            config.traceSample,
            static_cast<unsigned long long>(result.tracedSent),
            static_cast<unsigned long long>(result.timeouts),
            static_cast<unsigned long long>(result.retries),
            static_cast<unsigned long long>(result.reconnects),
            static_cast<unsigned long long>(result.busyResponses));
        jsonHistogram(f, "read_latency", result.readLatency, false);
        jsonHistogram(f, "update_latency", result.updateLatency,
                      false);
        jsonHistogram(f, "send_lag", result.sendLag, true);
        std::fprintf(f, "}\n");
        std::fclose(f);
    }
    obs_flags.writeArtifacts();

    const bool failed = result.connectionLost ||
                        result.protocolErrors != 0 ||
                        result.lost != 0;
    std::printf("specnet_bench: %s\n", failed ? "FAIL" : "OK");
    return failed ? 1 : 0;
}
