/**
 * @file
 * crashmatrix — exhaustive crash-schedule exploration driver.
 *
 * Enumerates every persistence-event crash point of one cell
 * (runtime x workload x crash policy x seed), or replays a single
 * failing schedule from its token. See src/sim/crash_explorer.hh for
 * the engine; this tool adds cell selection, sharding for CI
 * parallelism, and a JSON report whose failures carry replay tokens.
 *
 * Exit status: 0 = every candidate point explored or pruned and none
 * failed; 1 = at least one failing schedule (tokens printed); 2 = the
 * cell itself was invalid or could not run.
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "forensic/inspector.hh"
#include "forensic/recovery_audit.hh"
#include "kv/kv_crash_workload.hh"
#include "obs/artifacts.hh"
#include "obs/metrics.hh"
#include "pmem/image_io.hh"
#include "sim/crash_explorer.hh"
#include "workloads/stamp_crash_workload.hh"

namespace
{

using namespace specpmt;

/** Every workload any layer of the repo can plug into the explorer. */
sim::CrashWorkloadFactory
fullWorkloadFactory()
{
    return [](const sim::CrashCell &cell)
               -> std::unique_ptr<sim::CrashWorkload> {
        if (cell.workload == "kv")
            return kv::makeKvCrashWorkload(cell);
        if (workloads::isStampWorkloadName(cell.workload))
            return workloads::makeStampCrashWorkload(cell);
        return sim::builtinCrashWorkloadFactory()(cell);
    };
}

void
usage(std::FILE *out)
{
    std::fputs(
        "usage: crashmatrix [cell options] [driver options]\n"
        "       crashmatrix --replay=<token> [--continue]\n"
        "       crashmatrix --explain=<token> [--image-out=DIR]\n"
        "                   [--json=PATH]\n"
        "\n"
        "Explores every persistence-event crash point of one cell of\n"
        "the crash matrix, or replays one schedule from its token.\n"
        "--explain replays a token, saves the post-crash image(s) and\n"
        "prints the pminspect forensic report (transaction verdicts,\n"
        "seal CRCs, flight-recorder ring) plus a recovery audit.\n"
        "\n"
        "cell options\n"
        "  --runtime=NAME   pmdk|spht|spec|spec-dp|hybrid    [spec]\n"
        "  --workload=NAME  slots|kv|genome|intruder|...     [slots]\n"
        "  --policy=NAME    nothing|everything|random        [nothing]\n"
        "  --p=FLOAT        random-policy line survival prob [0.5]\n"
        "  --seed=N         workload RNG seed                [42]\n"
        "  --fault=NAME     none|drop-fences                 [none]\n"
        "  --slots=N --tx=N --stores=N --reclaim-every=N\n"
        "                   slots workload sizing\n"
        "  --kv-shards=N --kv-keys=N --kv-ops=N\n"
        "                   kv workload sizing\n"
        "  --kv-epoch-ops=N kv epoch group commit: relaxed puts,\n"
        "                   epoch sealed every N mutations (0 = off)\n"
        "  --scale=FLOAT    STAMP-analog workload scale      [0.05]\n"
        "\n"
        "driver options (never part of replay tokens)\n"
        "  --shard=K/N      explore points with id%%N == K    [0/1]\n"
        "  --jobs=N         worker threads (0 = hardware)    [1]\n"
        "  --max-points=N   bound points per run (0 = all)   [0]\n"
        "  --continue       verify post-recovery continuation\n"
        "  --json=PATH      write the JSON report (- = stdout)\n"
        "  --metrics-out=P  dump the metrics registry (text/.json)\n"
        "  --trace-out=P    enable tracing, dump Chrome trace JSON\n"
        "  --replay=TOKEN   replay one schedule and exit\n"
        "  --explain=TOKEN  replay + forensic report and exit\n"
        "  --image-out=DIR  (--explain) save post-crash images there\n"
        "  --help           this text\n",
        out);
}

int
replayToken(const std::string &token, bool verify_continuation)
{
    const auto result = sim::CrashExplorer::replay(
        token, fullWorkloadFactory(), verify_continuation);
    if (!result.error.empty()) {
        std::fprintf(stderr, "crashmatrix: bad token: %s\n",
                     result.error.c_str());
        return 2;
    }
    std::printf("replay %s\n", token.c_str());
    std::printf("  crash point %llu %s\n",
                static_cast<unsigned long long>(result.point),
                result.fired ? "fired" : "did not fire (run too short)");
    if (!result.failure.empty()) {
        std::printf("  FAIL: %s\n", result.failure.c_str());
        return 1;
    }
    std::printf("  recovered state consistent\n");
    return 0;
}

/**
 * Replay @p token's crash point, export the post-crash image(s), and
 * emit the forensic report: pminspect classification per image plus a
 * recovery audit (spec family). Deterministic text on stdout (golden
 * testable; metrics only appear in the JSON report).
 */
int
explainToken(const std::string &token, const std::string &image_dir,
             const std::string &json_path)
{
    sim::CrashCell cell;
    std::uint64_t point = 0;
    std::string error;
    if (!sim::CrashCell::parseToken(token, cell, point, error)) {
        std::fprintf(stderr, "crashmatrix: bad token: %s\n",
                     error.c_str());
        return 2;
    }

    std::unique_ptr<sim::CrashWorkload> workload;
    try {
        workload = fullWorkloadFactory()(cell);
    } catch (const std::exception &ex) {
        std::fprintf(stderr, "crashmatrix: %s\n", ex.what());
        return 2;
    }

    const bool fired = workload->run(static_cast<long>(point));
    const auto policy = cell.policyAt(point);
    const auto exports = workload->exportCrashImages(policy);

    std::printf("explain %s\n", token.c_str());
    std::printf("  crash point %llu %s, policy %s, %zu image(s)\n",
                static_cast<unsigned long long>(point),
                fired ? "fired" : "did not fire (run too short)",
                cell.policy.c_str(), exports.size());

    const bool audit_supported =
        cell.runtime == "spec" || cell.runtime == "spec-dp";
    bool disagreement = false;
    std::string json = "{\"token\": \"" + token + "\", \"point\": " +
                       std::to_string(point) + ", \"fired\": " +
                       (fired ? "true" : "false") + ", \"images\": [";
    bool first = true;

    for (const auto &exp : exports) {
        const auto dev = pmem::deviceFromImage(exp.image);
        const auto report =
            forensic::inspectImage(*dev, exp.threads, exp.name);

        std::printf("--- image %s ---\n", exp.name.c_str());
        std::fputs(report.toText().c_str(), stdout);

        forensic::AuditResult audit;
        if (audit_supported) {
            audit = forensic::auditRecovery(exp.image, cell.runtime,
                                            exp.threads, report);
            std::fputs(audit.toText().c_str(), stdout);
            if (!audit.agrees)
                disagreement = true;
        }

        if (!image_dir.empty()) {
            const std::string path =
                image_dir + "/" + exp.name + ".img";
            std::string io_error;
            if (!pmem::saveImage(path, exp.image, io_error)) {
                std::fprintf(stderr, "crashmatrix: %s: %s\n",
                             path.c_str(), io_error.c_str());
                return 2;
            }
        }

        if (!first)
            json += ",";
        first = false;
        json += "\n  {\"name\": \"" + exp.name + "\", \"report\": ";
        json += report.toJson(
            obs::Registry::global().snapshot().toJson());
        if (audit_supported)
            json += ", \"audit\": " + audit.toJson();
        json += "}";
    }
    json += "\n]}\n";

    if (!json_path.empty()) {
        if (json_path == "-") {
            std::printf("%s", json.c_str());
        } else {
            std::ofstream out(json_path);
            if (!out) {
                std::fprintf(stderr, "crashmatrix: cannot write %s\n",
                             json_path.c_str());
                return 2;
            }
            out << json;
        }
    }

    if (disagreement) {
        std::printf("recovery audit DISAGREES with the inspector\n");
        return 1;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    sim::CrashCell cell;
    sim::ExploreOptions options;
    std::string json_path;
    std::string replay_token;
    std::string explain_token;
    std::string image_dir;
    bool verify_continuation = false;
    obs::OutputFlags obs_flags;

    // Accept both --flag=value and --flag value.
    std::vector<std::string> args;
    for (int i = 1; i < argc; ++i) {
        const std::string_view raw = argv[i];
        const bool boolean = raw == "--continue" || raw == "--help" ||
                             raw == "-h";
        if (raw.substr(0, 2) == "--" &&
            raw.find('=') == std::string_view::npos && !boolean &&
            i + 1 < argc) {
            args.push_back(std::string(raw) + "=" + argv[++i]);
        } else {
            args.emplace_back(raw);
        }
    }

    for (const std::string &arg_string : args) {
        const std::string_view arg = arg_string;
        auto value = [&arg](std::string_view prefix,
                            std::string_view &out) {
            if (arg.substr(0, prefix.size()) != prefix)
                return false;
            out = arg.substr(prefix.size());
            return true;
        };
        std::string_view v;
        if (arg == "--help" || arg == "-h") {
            usage(stdout);
            return 0;
        } else if (arg == "--continue") {
            verify_continuation = true;
        } else if (value("--runtime=", v)) {
            cell.runtime = v;
        } else if (value("--workload=", v)) {
            cell.workload = v;
        } else if (value("--policy=", v)) {
            cell.policy = v;
        } else if (value("--p=", v)) {
            cell.persistProbability = std::atof(std::string(v).c_str());
        } else if (value("--seed=", v)) {
            cell.seed = std::strtoull(std::string(v).c_str(), nullptr, 10);
        } else if (value("--fault=", v)) {
            cell.fault = v;
        } else if (value("--slots=", v)) {
            cell.slots = std::atoi(std::string(v).c_str());
        } else if (value("--tx=", v)) {
            cell.txCount = std::atoi(std::string(v).c_str());
        } else if (value("--stores=", v)) {
            cell.maxStoresPerTx = std::atoi(std::string(v).c_str());
        } else if (value("--reclaim-every=", v)) {
            cell.reclaimEvery = std::atoi(std::string(v).c_str());
        } else if (value("--kv-shards=", v)) {
            cell.kvShards = std::atoi(std::string(v).c_str());
        } else if (value("--kv-keys=", v)) {
            cell.kvKeys =
                std::strtoull(std::string(v).c_str(), nullptr, 10);
        } else if (value("--kv-ops=", v)) {
            cell.kvOps = std::atoi(std::string(v).c_str());
        } else if (value("--kv-epoch-ops=", v)) {
            cell.kvEpochOps = std::atoi(std::string(v).c_str());
        } else if (value("--scale=", v)) {
            cell.scale = std::atof(std::string(v).c_str());
        } else if (value("--shard=", v)) {
            const std::string spec(v);
            unsigned index = 0, count = 0;
            if (std::sscanf(spec.c_str(), "%u/%u", &index, &count) != 2 ||
                count == 0 || index >= count) {
                std::fprintf(stderr,
                             "crashmatrix: bad --shard=%s (want K/N, "
                             "K < N)\n",
                             spec.c_str());
                return 2;
            }
            options.shardIndex = index;
            options.shardCount = count;
        } else if (value("--jobs=", v)) {
            options.jobs = std::atoi(std::string(v).c_str());
        } else if (value("--max-points=", v)) {
            options.maxPoints =
                std::strtoull(std::string(v).c_str(), nullptr, 10);
        } else if (value("--json=", v)) {
            json_path = v;
        } else if (value("--replay=", v)) {
            replay_token = v;
        } else if (value("--explain=", v)) {
            explain_token = v;
        } else if (value("--image-out=", v)) {
            image_dir = v;
        } else if (obs_flags.accept(arg)) {
            // --metrics-out= / --trace-out= consumed.
        } else {
            std::fprintf(stderr, "crashmatrix: unknown option: %s\n",
                         std::string(arg).c_str());
            usage(stderr);
            return 2;
        }
    }

    if (!replay_token.empty()) {
        const int status =
            replayToken(replay_token, verify_continuation);
        obs_flags.writeArtifacts();
        return status;
    }

    if (!explain_token.empty()) {
        const int status =
            explainToken(explain_token, image_dir, json_path);
        obs_flags.writeArtifacts();
        return status;
    }

    options.verifyContinuation = verify_continuation;
    sim::CrashExplorer explorer(cell, fullWorkloadFactory());
    const auto report = explorer.explore(options);

    if (!report.error.empty()) {
        std::fprintf(stderr, "crashmatrix: %s\n", report.error.c_str());
        return 2;
    }

    std::printf(
        "cell %s/%s policy=%s seed=%llu fault=%s\n",
        cell.runtime.c_str(), cell.workload.c_str(),
        cell.policy.c_str(), static_cast<unsigned long long>(cell.seed),
        cell.fault.c_str());
    std::printf(
        "  %llu persistence events, shard %u/%u -> %llu candidate "
        "points\n",
        static_cast<unsigned long long>(report.totalEvents),
        options.shardIndex, options.shardCount,
        static_cast<unsigned long long>(report.candidatePoints));
    std::printf(
        "  explored %llu, pruned %llu (bit-identical post-crash "
        "state), failures %zu\n",
        static_cast<unsigned long long>(report.explored),
        static_cast<unsigned long long>(report.pruned),
        report.failures.size());
    for (const auto &failure : report.failures) {
        std::printf("  FAIL point %llu: %s\n",
                    static_cast<unsigned long long>(failure.point),
                    failure.message.c_str());
        std::printf("    replay: crashmatrix --replay='%s'\n",
                    failure.token.c_str());
    }

    if (!json_path.empty()) {
        const std::string json = report.toJson(cell);
        if (json_path == "-") {
            std::printf("%s\n", json.c_str());
        } else {
            std::ofstream out(json_path);
            if (!out) {
                std::fprintf(stderr,
                             "crashmatrix: cannot write %s\n",
                             json_path.c_str());
                return 2;
            }
            out << json << '\n';
        }
    }

    obs_flags.writeArtifacts();
    return report.ok() ? 0 : 1;
}
