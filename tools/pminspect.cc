/**
 * @file
 * pminspect: offline forensic analyzer for saved pmem pool images.
 *
 *   pminspect [options] IMAGE...
 *
 * Opens each image (pmem/image_io format, e.g. written by
 * `crashmatrix --explain --image-out=DIR`) strictly read-only and
 * prints the forensic classification of every transaction found in
 * the speculative logs — COMMITTED / TORN / IN-FLIGHT with per-record
 * reason strings — plus segment headers, CRC seals, timestamps,
 * segment-count attestations and the decoded flight-recorder ring.
 * Recovery is NOT run on the image.
 *
 * Options:
 *   --threads=N       root slots to scan (default: all 19)
 *   --json[=PATH]     emit the JSON report (stdout or PATH); embeds
 *                     a metrics snapshot of this process
 *   --audit=RUNTIME   recovery audit: run RUNTIME's real recover()
 *                     on a throwaway copy and diff its decisions
 *                     against the classification; exits nonzero on
 *                     disagreement ("spec" or "spec-dp")
 *
 * Exit status: 0 on success, 1 on usage/IO errors, 2 when an audit
 * disagrees.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "forensic/inspector.hh"
#include "forensic/recovery_audit.hh"
#include "obs/metrics.hh"
#include "pmem/image_io.hh"

namespace
{

using namespace specpmt;

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--threads=N] [--json[=PATH]] "
                 "[--audit=RUNTIME] IMAGE...\n",
                 argv0);
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    unsigned threads = forensic::kMaxInspectThreads;
    bool json = false;
    std::string json_path;
    std::string audit_runtime;
    std::vector<std::string> images;

    for (int i = 1; i < argc; ++i) {
        const std::string_view arg = argv[i];
        if (arg.rfind("--threads=", 0) == 0) {
            threads = static_cast<unsigned>(
                std::strtoul(argv[i] + 10, nullptr, 10));
        } else if (arg == "--json") {
            json = true;
        } else if (arg.rfind("--json=", 0) == 0) {
            json = true;
            json_path = arg.substr(7);
        } else if (arg.rfind("--audit=", 0) == 0) {
            audit_runtime = arg.substr(8);
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else if (arg.rfind("--", 0) == 0) {
            std::fprintf(stderr, "pminspect: unknown option %s\n",
                         argv[i]);
            return usage(argv[0]);
        } else {
            images.emplace_back(arg);
        }
    }
    if (images.empty())
        return usage(argv[0]);
    if (!audit_runtime.empty() && audit_runtime != "spec" &&
        audit_runtime != "spec-dp") {
        std::fprintf(stderr,
                     "pminspect: --audit supports spec or spec-dp "
                     "(got %s)\n",
                     audit_runtime.c_str());
        return 1;
    }

    int status = 0;
    std::string json_out;
    if (json)
        json_out = "[";
    bool first = true;

    for (const auto &path : images) {
        std::vector<std::uint8_t> image;
        std::string error;
        if (!pmem::loadImage(path, image, error)) {
            std::fprintf(stderr, "pminspect: %s: %s\n", path.c_str(),
                         error.c_str());
            status = 1;
            continue;
        }
        const auto dev = pmem::deviceFromImage(image);
        const auto report =
            forensic::inspectImage(*dev, threads, path);

        forensic::AuditResult audit;
        if (!audit_runtime.empty()) {
            audit = forensic::auditRecovery(image, audit_runtime,
                                            threads, report);
            if (!audit.agrees)
                status = 2;
        }

        if (json) {
            if (!first)
                json_out += ",";
            first = false;
            json_out += "\n{\"report\": ";
            json_out += report.toJson(
                obs::Registry::global().snapshot().toJson());
            if (!audit_runtime.empty())
                json_out += ", \"audit\": " + audit.toJson();
            json_out += "}";
        } else {
            std::fputs(report.toText().c_str(), stdout);
            if (!audit_runtime.empty())
                std::fputs(audit.toText().c_str(), stdout);
        }
    }

    if (json) {
        json_out += "\n]\n";
        if (json_path.empty()) {
            std::fputs(json_out.c_str(), stdout);
        } else {
            std::ofstream out(json_path,
                              std::ios::binary | std::ios::trunc);
            out << json_out;
            if (!out) {
                std::fprintf(stderr, "pminspect: cannot write %s\n",
                             json_path.c_str());
                status = 1;
            }
        }
    }
    return status;
}
