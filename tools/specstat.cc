/**
 * @file
 * specstat — inspect, diff and validate the observability artifacts
 * emitted by the benches and tools (--metrics-out= Prometheus text,
 * --trace-out= Chrome trace-event JSON).
 *
 * Subcommands:
 *   dump FILE        parse a Prometheus exposition and pretty-print
 *                    every sample, sorted by name;
 *   diff OLD NEW     compare two expositions: changed samples with
 *                    deltas, plus added/removed series;
 *   check FILE...    validate artifacts: .json files must be
 *                    syntactically valid JSON (trace files must also
 *                    carry a traceEvents array), everything else must
 *                    parse as Prometheus text. Repeatable
 *                    --require=<metric><op><value> flags (ops ==, !=,
 *                    >=, <=, >, <) assert against the merged samples
 *                    of every Prometheus file; a missing metric fails
 *                    the assertion.
 *   top              poll a live speckv admin endpoint (--admin-port=)
 *                    and render QPS, per-stage latency percentiles,
 *                    fences/tx, epoch state, per-shard balance and the
 *                    slowest histogram exemplar per stage as deltas
 *                    between /metrics scrapes; a cumulative counter
 *                    that decreases between scrapes means the server
 *                    restarted, so the frame re-baselines instead of
 *                    printing negative rates; --once emits a single
 *                    frame for CI capture.
 *   trace FILE...    merge Chrome trace-event captures (client
 *                    --trace-out= files and server /trace?ms=N
 *                    scrapes), group spans by correlation id and
 *                    print per-request waterfalls for the slowest
 *                    traced requests (--slowest=N, --id=ID), with
 *                    the PM cost vector the server attached to each
 *                    srv_exec span.
 *
 * Every FILE argument also accepts `-` (read stdin once) and
 * `http://HOST:PORT/PATH` (scrape a live admin endpoint; a non-200
 * response fails the command, so `specstat check http://..../healthz`
 * gates on shard liveness). JSON inputs are sniffed by content, so
 * `curl :PORT/stats.json | specstat dump -` works: a metrics snapshot
 * flattens counters/gauges verbatim and histograms to NAME_count,
 * NAME_sum and NAME_max samples.
 *   bench            normalize bench outputs (bench_kv_ycsb summary
 *                    JSON, specnet_bench --json files) into one
 *                    BENCH_<sha>.json of named cells with a fixed
 *                    metric vocabulary, with optional inline
 *                    assertions (--min-speedup=A/B:R on
 *                    sim_ops_per_sec, --max-fences-per-tx=CELL:V);
 *   diff --bench     compare two BENCH files cell by cell: every
 *                    metric side by side, and a regression gate on
 *                    the deterministic simulation metrics
 *                    (fences_per_tx may not grow, sim_ops_per_sec may
 *                    not shrink, beyond --max-regress; wall-clock
 *                    metrics are informational only).
 *
 * Exit status: 0 = success, 1 = check found an invalid artifact, a
 * failed --require/bench assertion, or a bench regression; 2 = usage
 * error or unreadable/malformed input.
 */

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/http_client.hh"
#include "obs/metrics.hh"

namespace
{

using specpmt::obs::FlatSamples;

bool
readFile(const std::string &path, std::string &out)
{
    if (path == "-") {
        std::ostringstream buffer;
        buffer << std::cin.rdbuf();
        out = buffer.str();
        return true;
    }
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    out = buffer.str();
    return true;
}

bool
isHttpUrl(std::string_view path)
{
    return path.rfind("http://", 0) == 0;
}

/**
 * Load one artifact: `-` is stdin, `http://` scrapes a live endpoint
 * (non-200 fails, which is how `check .../healthz` gates liveness),
 * anything else is a file.
 */
bool
fetchArtifact(const std::string &path, std::string &text,
              std::string &error)
{
    if (isHttpUrl(path)) {
        std::string host, url_path;
        std::uint16_t port = 0;
        if (!specpmt::obs::parseHttpUrl(path, host, port, url_path)) {
            error = "malformed http:// URL";
            return false;
        }
        specpmt::obs::HttpResponse response;
        if (!specpmt::obs::httpGet(host, port, url_path, response,
                                   error))
            return false;
        text = std::move(response.body);
        if (response.status != 200) {
            error = "HTTP " + std::to_string(response.status);
            return false;
        }
        return true;
    }
    if (!readFile(path, text)) {
        error = "cannot read";
        return false;
    }
    return true;
}

/** First non-whitespace byte opens a JSON value. */
bool
looksLikeJson(std::string_view text)
{
    for (const char c : text) {
        if (std::isspace(static_cast<unsigned char>(c)))
            continue;
        return c == '{' || c == '[';
    }
    return false;
}

/** Integral values print without a fractional part. */
std::string
formatValue(double value)
{
    char buf[64];
    if (value == static_cast<double>(static_cast<long long>(value))) {
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(value));
    } else {
        std::snprintf(buf, sizeof(buf), "%.6g", value);
    }
    return buf;
}

/**
 * Flatten a Registry::toJson() metrics snapshot into Prometheus-style
 * flat samples (defined after JsonFlattener below).
 */
bool flattenMetricsJson(std::string_view text, FlatSamples &out,
                        std::string &error);

/**
 * Load samples from a Prometheus exposition or a metrics-JSON
 * snapshot (file, stdin or URL) or exit with status 2.
 */
FlatSamples
loadSamples(const std::string &path)
{
    std::string text;
    std::string error;
    if (!fetchArtifact(path, text, error)) {
        std::fprintf(stderr, "specstat: %s: %s\n", path.c_str(),
                     error.c_str());
        std::exit(2);
    }
    FlatSamples samples;
    if (looksLikeJson(text)) {
        if (text.find("\"counters\"") == std::string::npos) {
            std::fprintf(stderr,
                         "specstat: %s: JSON input is not a metrics "
                         "snapshot (no counters section)\n",
                         path.c_str());
            std::exit(2);
        }
        if (!flattenMetricsJson(text, samples, error)) {
            std::fprintf(stderr, "specstat: %s: %s\n", path.c_str(),
                         error.c_str());
            std::exit(2);
        }
        return samples;
    }
    if (!specpmt::obs::parsePrometheus(text, samples, error)) {
        std::fprintf(stderr, "specstat: %s: %s\n", path.c_str(),
                     error.c_str());
        std::exit(2);
    }
    return samples;
}

int
cmdDump(const std::string &path)
{
    const FlatSamples samples = loadSamples(path);
    for (const auto &[name, value] : samples) {
        std::printf("%-64s %s\n", name.c_str(),
                    formatValue(value).c_str());
    }
    std::printf("# %zu samples\n", samples.size());
    return 0;
}

int
cmdDiff(const std::string &old_path, const std::string &new_path)
{
    const FlatSamples before = loadSamples(old_path);
    const FlatSamples after = loadSamples(new_path);

    std::size_t changed = 0;
    for (const auto &[name, new_value] : after) {
        const auto it = before.find(name);
        if (it == before.end()) {
            std::printf("+ %-62s %s\n", name.c_str(),
                        formatValue(new_value).c_str());
            ++changed;
        } else if (it->second != new_value) {
            std::printf("  %-62s %s -> %s (%+g)\n", name.c_str(),
                        formatValue(it->second).c_str(),
                        formatValue(new_value).c_str(),
                        new_value - it->second);
            ++changed;
        }
    }
    for (const auto &[name, old_value] : before) {
        if (after.find(name) == after.end()) {
            std::printf("- %-62s %s\n", name.c_str(),
                        formatValue(old_value).c_str());
            ++changed;
        }
    }
    std::printf("# %zu samples differ (%zu -> %zu series)\n", changed,
                before.size(), after.size());
    return 0;
}

/**
 * Minimal JSON syntax scanner — enough to reject truncated or
 * malformed artifacts without pulling in a parser dependency.
 */
class JsonScanner
{
  public:
    explicit JsonScanner(std::string_view text) : text_(text) {}

    bool
    validate(std::string &error)
    {
        error_ = &error;
        if (!value())
            return false;
        skipWs();
        if (pos_ != text_.size())
            return fail("trailing garbage after JSON value");
        return true;
    }

  private:
    bool
    fail(const char *message)
    {
        *error_ = std::string(message) + " at byte " +
                  std::to_string(pos_);
        return false;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool
    literal(std::string_view word)
    {
        if (text_.substr(pos_, word.size()) != word)
            return fail("bad literal");
        pos_ += word.size();
        return true;
    }

    bool
    string()
    {
        ++pos_; // opening quote
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (c == '\\') {
                pos_ += 2;
                continue;
            }
            ++pos_;
        }
        return fail("unterminated string");
    }

    bool
    number()
    {
        const std::size_t start = pos_;
        if (pos_ < text_.size() &&
            (text_[pos_] == '-' || text_[pos_] == '+'))
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '-' ||
                text_[pos_] == '+'))
            ++pos_;
        if (pos_ == start)
            return fail("bad number");
        return true;
    }

    bool
    value()
    {
        skipWs();
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        switch (text_[pos_]) {
          case '{':
            return object();
          case '[':
            return array();
          case '"':
            return string();
          case 't':
            return literal("true");
          case 'f':
            return literal("false");
          case 'n':
            return literal("null");
          default:
            return number();
        }
    }

    bool
    object()
    {
        ++pos_; // '{'
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            return true;
        }
        for (;;) {
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != '"')
                return fail("expected object key");
            if (!string())
                return false;
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != ':')
                return fail("expected ':'");
            ++pos_;
            if (!value())
                return false;
            skipWs();
            if (pos_ < text_.size() && text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (pos_ < text_.size() && text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    bool
    array()
    {
        ++pos_; // '['
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            return true;
        }
        for (;;) {
            if (!value())
                return false;
            skipWs();
            if (pos_ < text_.size() && text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (pos_ < text_.size() && text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }

    std::string_view text_;
    std::size_t pos_ = 0;
    std::string *error_ = nullptr;
};

bool
endsWith(std::string_view s, std::string_view suffix)
{
    return s.size() >= suffix.size() &&
           s.substr(s.size() - suffix.size()) == suffix;
}

/**
 * Validate one artifact and merge any samples it carries into
 * @p merged for the --require assertions (later inputs overwrite
 * same-named series).
 */
bool
checkOne(const std::string &path, FlatSamples &merged)
{
    std::string text;
    std::string error;
    if (!fetchArtifact(path, text, error)) {
        std::fprintf(stderr, "specstat: %s: %s\n", path.c_str(),
                     error.c_str());
        return false;
    }
    if (endsWith(path, ".json") || looksLikeJson(text)) {
        JsonScanner scanner(text);
        if (!scanner.validate(error)) {
            std::fprintf(stderr, "specstat: %s: %s\n", path.c_str(),
                         error.c_str());
            return false;
        }
        // A trace artifact must carry its event array; a metrics JSON
        // dump carries the counters section, a normalized bench file
        // its schema marker, a /healthz body its own marker.
        if (text.find("\"traceEvents\"") == std::string::npos &&
            text.find("\"counters\"") == std::string::npos &&
            text.find("\"bench_schema\"") == std::string::npos &&
            text.find("\"healthz\"") == std::string::npos) {
            std::fprintf(stderr,
                         "specstat: %s: neither a trace (traceEvents) "
                         "nor a metrics (counters) nor a bench "
                         "(bench_schema) nor a health (healthz) JSON "
                         "artifact\n",
                         path.c_str());
            return false;
        }
        if (text.find("\"counters\"") != std::string::npos) {
            FlatSamples samples;
            if (flattenMetricsJson(text, samples, error)) {
                for (const auto &[name, value] : samples)
                    merged[name] = value;
            }
        }
        std::printf("OK %s (json, %zu bytes)\n", path.c_str(),
                    text.size());
        return true;
    }
    FlatSamples samples;
    if (!specpmt::obs::parsePrometheus(text, samples, error)) {
        std::fprintf(stderr, "specstat: %s: %s\n", path.c_str(),
                     error.c_str());
        return false;
    }
    for (const auto &[name, value] : samples)
        merged[name] = value;
    std::printf("OK %s (%zu samples)\n", path.c_str(),
                samples.size());
    return true;
}

/**
 * A JSON document flattened to dotted leaf paths
 * ("results.0.fences_per_tx" -> 123.4); array elements index
 * numerically. Strings and numbers are kept, booleans map to 0/1,
 * nulls are dropped — all the bench artifacts need.
 */
struct FlatJson
{
    std::map<std::string, double> numbers;
    std::map<std::string, std::string> strings;
};

/** Recursive-descent flattener (same grammar as JsonScanner). */
class JsonFlattener
{
  public:
    explicit JsonFlattener(std::string_view text) : text_(text) {}

    bool
    parse(FlatJson &out, std::string &error)
    {
        out_ = &out;
        error_ = &error;
        if (!value())
            return false;
        skipWs();
        if (pos_ != text_.size()) {
            error = "trailing garbage after JSON value";
            return false;
        }
        return true;
    }

  private:
    bool
    fail(const char *message)
    {
        *error_ = std::string(message) + " at byte " +
                  std::to_string(pos_);
        return false;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool
    stringBody(std::string &out)
    {
        ++pos_; // opening quote
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (c == '\\' && pos_ + 1 < text_.size()) {
                out.push_back(text_[pos_ + 1]);
                pos_ += 2;
                continue;
            }
            out.push_back(c);
            ++pos_;
        }
        return fail("unterminated string");
    }

    bool
    value()
    {
        skipWs();
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        switch (text_[pos_]) {
          case '{':
            return object();
          case '[':
            return array();
          case '"': {
            std::string s;
            if (!stringBody(s))
                return false;
            out_->strings[path_] = std::move(s);
            return true;
          }
          case 't':
            out_->numbers[path_] = 1;
            return literal("true");
          case 'f':
            out_->numbers[path_] = 0;
            return literal("false");
          case 'n':
            return literal("null");
          default: {
            char *end = nullptr;
            const double v =
                std::strtod(text_.data() + pos_, &end);
            if (end == text_.data() + pos_)
                return fail("bad number");
            out_->numbers[path_] = v;
            pos_ = static_cast<std::size_t>(end - text_.data());
            return true;
          }
        }
    }

    bool
    literal(std::string_view word)
    {
        if (text_.substr(pos_, word.size()) != word)
            return fail("bad literal");
        pos_ += word.size();
        return true;
    }

    bool
    object()
    {
        ++pos_; // '{'
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            return true;
        }
        const std::string parent = path_;
        for (;;) {
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != '"')
                return fail("expected object key");
            std::string key;
            if (!stringBody(key))
                return false;
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != ':')
                return fail("expected ':'");
            ++pos_;
            path_ = parent.empty() ? key : parent + "." + key;
            if (!value())
                return false;
            path_ = parent;
            skipWs();
            if (pos_ < text_.size() && text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (pos_ < text_.size() && text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    bool
    array()
    {
        ++pos_; // '['
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            return true;
        }
        const std::string parent = path_;
        for (std::size_t i = 0;; ++i) {
            path_ = (parent.empty() ? "" : parent + ".") +
                    std::to_string(i);
            if (!value())
                return false;
            path_ = parent;
            skipWs();
            if (pos_ < text_.size() && text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (pos_ < text_.size() && text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }

    std::string_view text_;
    std::size_t pos_ = 0;
    std::string path_;
    FlatJson *out_ = nullptr;
    std::string *error_ = nullptr;
};

/** Insert a metric suffix before the label set, if any:
 * `name{l} + _count` -> `name_count{l}`. */
std::string
withMetricSuffix(const std::string &name, const char *suffix)
{
    const std::size_t brace = name.find('{');
    if (brace == std::string::npos)
        return name + suffix;
    return name.substr(0, brace) + suffix + name.substr(brace);
}

bool
flattenMetricsJson(std::string_view text, FlatSamples &out,
                   std::string &error)
{
    FlatJson json;
    if (!JsonFlattener(text).parse(json, error))
        return false;
    for (const auto &[path, value] : json.numbers) {
        if (path.rfind("counters.", 0) == 0) {
            out[path.substr(9)] = value;
        } else if (path.rfind("gauges.", 0) == 0) {
            out[path.substr(7)] = value;
        } else if (path.rfind("histograms.", 0) == 0) {
            // histograms.NAME.{count,sum,max} -> NAME_{count,sum,max};
            // the raw bucket triples are dropped (the Prometheus
            // exposition is the bucket-level format).
            const std::string rest = path.substr(11);
            static const std::pair<const char *, const char *>
                kSuffixes[] = {
                    {".count", "_count"},
                    {".sum", "_sum"},
                    {".max", "_max"},
                };
            for (const auto &[json_suffix, metric_suffix] : kSuffixes) {
                if (!endsWith(rest, json_suffix))
                    continue;
                const std::string name = rest.substr(
                    0, rest.size() -
                           std::string_view(json_suffix).size());
                out[withMetricSuffix(name, metric_suffix)] = value;
                break;
            }
        }
    }
    return true;
}

/** One named bench cell: metric name -> value, both sorted. */
using BenchCells = std::map<std::string, std::map<std::string, double>>;

/**
 * Parse one bench source file. bench_kv_ycsb prints its summary JSON
 * as the last line of mixed stdout, so when the whole file is not a
 * JSON document the last '{'-led line is tried before giving up.
 */
bool
loadBenchJson(const std::string &path, FlatJson &out,
              std::string &error)
{
    std::string text;
    if (!readFile(path, text)) {
        error = "cannot read " + path;
        return false;
    }
    if (JsonFlattener(text).parse(out, error))
        return true;
    std::string last_object;
    std::istringstream lines(text);
    for (std::string line; std::getline(lines, line);) {
        if (!line.empty() && line[0] == '{')
            last_object = line;
    }
    if (!last_object.empty()) {
        out = FlatJson{};
        if (JsonFlattener(last_object).parse(out, error))
            return true;
    }
    error = path + ": no parseable bench JSON (" + error + ")";
    return false;
}

/**
 * Extract the normalized cell metrics from one bench source.
 * bench_kv_ycsb summaries contribute one cell per results[] entry
 * (suffixed ".<runtime>-<mix>" when there is more than one);
 * specnet_bench --json files contribute one cell.
 */
bool
extractBenchCells(const std::string &name, const FlatJson &json,
                  BenchCells &cells, std::string &error)
{
    const auto bench_kind = json.strings.find("bench");
    if (bench_kind != json.strings.end() &&
        bench_kind->second == "kv_ycsb") {
        static const char *const kMetrics[] = {
            "fences_per_tx", "ops",    "wall_ops_per_sec",
            "sim_ops_per_sec", "p50_ns", "p99_ns",
        };
        bool multi =
            json.numbers.count("results.1.fences_per_tx") != 0;
        for (std::size_t i = 0;; ++i) {
            const std::string base =
                "results." + std::to_string(i) + ".";
            if (json.numbers.find(base + "fences_per_tx") ==
                json.numbers.end())
                break;
            std::string cell = name;
            if (multi) {
                const auto runtime =
                    json.strings.find(base + "runtime");
                const auto mix = json.strings.find(base + "mix");
                cell += "." +
                        (runtime != json.strings.end()
                             ? runtime->second
                             : std::to_string(i)) +
                        "-" +
                        (mix != json.strings.end() ? mix->second
                                                   : "?");
            }
            auto &metrics = cells[cell];
            for (const char *metric : kMetrics) {
                const auto it = json.numbers.find(base + metric);
                if (it != json.numbers.end())
                    metrics[metric] = it->second;
            }
        }
        if (cells.empty()) {
            error = name + ": kv_ycsb summary carries no results";
            return false;
        }
        return true;
    }
    if (json.numbers.count("target_qps") != 0) {
        // specnet_bench --json artifact.
        auto &metrics = cells[name];
        static const std::pair<const char *, const char *> kMap[] = {
            {"achieved_qps", "achieved_qps"},
            {"acked", "acked"},
            {"errors", "errors"},
            {"lost", "lost"},
            {"protocol_errors", "protocol_errors"},
            {"strict_sent", "strict_sent"},
            {"read_latency.p50_ns", "read_p50_ns"},
            {"read_latency.p99_ns", "read_p99_ns"},
            {"update_latency.p50_ns", "update_p50_ns"},
            {"update_latency.p99_ns", "update_p99_ns"},
        };
        for (const auto &[path, metric] : kMap) {
            const auto it = json.numbers.find(path);
            if (it != json.numbers.end())
                metrics[metric] = it->second;
        }
        return true;
    }
    error = name + ": neither a bench_kv_ycsb summary nor a "
                   "specnet_bench --json artifact";
    return false;
}

/** Load a BENCH_<sha>.json written by cmdBench. */
bool
loadBenchFile(const std::string &path, BenchCells &cells,
              std::string &sha, std::string &error)
{
    std::string text;
    if (!readFile(path, text)) {
        error = "cannot read " + path;
        return false;
    }
    FlatJson json;
    if (!JsonFlattener(text).parse(json, error)) {
        error = path + ": " + error;
        return false;
    }
    if (json.numbers.find("bench_schema") == json.numbers.end()) {
        error = path + ": not a specstat bench file (no "
                       "bench_schema)";
        return false;
    }
    const auto sha_it = json.strings.find("sha");
    if (sha_it != json.strings.end())
        sha = sha_it->second;
    for (const auto &[key, value] : json.numbers) {
        if (key.rfind("cells.", 0) != 0)
            continue;
        const std::size_t metric_dot = key.rfind('.');
        if (metric_dot <= 6)
            continue;
        const std::string cell = key.substr(6, metric_dot - 6);
        cells[cell][key.substr(metric_dot + 1)] = value;
    }
    if (cells.empty()) {
        error = path + ": bench file carries no cells";
        return false;
    }
    return true;
}

/** Serialize a BENCH file; cells and metrics stay sorted. */
std::string
benchToJson(const BenchCells &cells, const std::string &sha)
{
    std::string out = "{\n  \"bench_schema\": 1,\n  \"sha\": \"" +
                      sha + "\",\n  \"cells\": {\n";
    bool first_cell = true;
    for (const auto &[cell, metrics] : cells) {
        if (!first_cell)
            out += ",\n";
        first_cell = false;
        out += "    \"" + cell + "\": {";
        bool first = true;
        for (const auto &[metric, value] : metrics) {
            if (!first)
                out += ", ";
            first = false;
            out += "\"" + metric + "\": " + formatValue(value);
        }
        out += "}";
    }
    out += "\n  }\n}\n";
    return out;
}

int
cmdBench(const std::vector<std::string> &args)
{
    std::string out_path = "-";
    std::string sha;
    std::vector<std::pair<std::string, std::string>> sources;
    // name/name:ratio and name:limit assertion specs.
    std::vector<std::pair<std::pair<std::string, std::string>, double>>
        speedups;
    std::vector<std::pair<std::string, double>> fence_limits;

    for (const auto &arg : args) {
        const auto val = [&](const char *prefix) -> const char * {
            const std::size_t n = std::string_view(prefix).size();
            return arg.rfind(prefix, 0) == 0 ? arg.c_str() + n
                                             : nullptr;
        };
        if (const char *v = val("--out=")) {
            out_path = v;
        } else if (const char *v = val("--sha=")) {
            sha = v;
        } else if (const char *v = val("--cell=")) {
            const std::string spec = v;
            const std::size_t colon = spec.find(':');
            if (colon == 0 || colon == std::string::npos ||
                colon + 1 == spec.size()) {
                std::fprintf(stderr,
                             "specstat: bad --cell=%s (want "
                             "NAME:FILE)\n",
                             spec.c_str());
                return 2;
            }
            sources.emplace_back(spec.substr(0, colon),
                                 spec.substr(colon + 1));
        } else if (const char *v = val("--min-speedup=")) {
            const std::string spec = v;
            const std::size_t slash = spec.find('/');
            const std::size_t colon = spec.rfind(':');
            if (slash == std::string::npos ||
                colon == std::string::npos || colon < slash) {
                std::fprintf(stderr,
                             "specstat: bad --min-speedup=%s (want "
                             "FAST/SLOW:RATIO)\n",
                             spec.c_str());
                return 2;
            }
            speedups.push_back(
                {{spec.substr(0, slash),
                  spec.substr(slash + 1, colon - slash - 1)},
                 std::strtod(spec.c_str() + colon + 1, nullptr)});
        } else if (const char *v = val("--max-fences-per-tx=")) {
            const std::string spec = v;
            const std::size_t colon = spec.rfind(':');
            if (colon == std::string::npos) {
                std::fprintf(stderr,
                             "specstat: bad --max-fences-per-tx=%s "
                             "(want CELL:LIMIT)\n",
                             spec.c_str());
                return 2;
            }
            fence_limits.emplace_back(
                spec.substr(0, colon),
                std::strtod(spec.c_str() + colon + 1, nullptr));
        } else {
            std::fprintf(stderr, "specstat: unknown bench arg %s\n",
                         arg.c_str());
            return 2;
        }
    }
    if (sources.empty()) {
        std::fputs("specstat: bench needs at least one --cell\n",
                   stderr);
        return 2;
    }

    BenchCells cells;
    for (const auto &[name, path] : sources) {
        FlatJson json;
        std::string error;
        if (!loadBenchJson(path, json, error) ||
            !extractBenchCells(name, json, cells, error)) {
            std::fprintf(stderr, "specstat: %s\n", error.c_str());
            return 2;
        }
    }

    for (const auto &[cell, metrics] : cells) {
        std::printf("cell %-24s", cell.c_str());
        for (const auto &[metric, value] : metrics)
            std::printf(" %s=%s", metric.c_str(),
                        formatValue(value).c_str());
        std::printf("\n");
    }

    bool ok = true;
    const auto cellMetric = [&](const std::string &cell,
                                const char *metric,
                                double &out) -> bool {
        const auto c = cells.find(cell);
        if (c == cells.end()) {
            std::fprintf(stderr,
                         "specstat: ASSERT FAILED: no cell '%s'\n",
                         cell.c_str());
            return false;
        }
        const auto m = c->second.find(metric);
        if (m == c->second.end()) {
            std::fprintf(stderr,
                         "specstat: ASSERT FAILED: cell '%s' has no "
                         "%s\n",
                         cell.c_str(), metric);
            return false;
        }
        out = m->second;
        return true;
    };
    for (const auto &[pair, ratio] : speedups) {
        double fast = 0, slow = 0;
        if (!cellMetric(pair.first, "sim_ops_per_sec", fast) ||
            !cellMetric(pair.second, "sim_ops_per_sec", slow)) {
            ok = false;
            continue;
        }
        const double actual = slow > 0 ? fast / slow : 0;
        if (actual >= ratio) {
            std::printf("ASSERT ok min-speedup %s/%s: %.2fx >= "
                        "%.2fx\n",
                        pair.first.c_str(), pair.second.c_str(),
                        actual, ratio);
        } else {
            std::fprintf(stderr,
                         "specstat: ASSERT FAILED min-speedup %s/%s: "
                         "%.2fx < %.2fx\n",
                         pair.first.c_str(), pair.second.c_str(),
                         actual, ratio);
            ok = false;
        }
    }
    for (const auto &[cell, limit] : fence_limits) {
        double actual = 0;
        if (!cellMetric(cell, "fences_per_tx", actual)) {
            ok = false;
            continue;
        }
        if (actual <= limit) {
            std::printf("ASSERT ok max-fences-per-tx %s: %.4f <= "
                        "%.4f\n",
                        cell.c_str(), actual, limit);
        } else {
            std::fprintf(stderr,
                         "specstat: ASSERT FAILED max-fences-per-tx "
                         "%s: %.4f > %.4f\n",
                         cell.c_str(), actual, limit);
            ok = false;
        }
    }

    const std::string json = benchToJson(cells, sha);
    if (out_path == "-") {
        std::fputs(json.c_str(), stdout);
    } else {
        std::ofstream out(out_path, std::ios::binary);
        out << json;
        if (!out) {
            std::fprintf(stderr, "specstat: cannot write %s\n",
                         out_path.c_str());
            return 2;
        }
        std::printf("wrote %s (%zu cells)\n", out_path.c_str(),
                    cells.size());
    }
    return ok ? 0 : 1;
}

/**
 * The deterministic simulation metrics diff --bench gates on; wall
 * metrics (throughput and latency in host time) vary with CI host
 * load and only inform. Direction: +1 = higher is better.
 */
struct GatedMetric
{
    const char *name;
    int direction;
};

constexpr GatedMetric kGatedMetrics[] = {
    {"fences_per_tx", -1},
    {"sim_ops_per_sec", +1},
};

int
cmdDiffBench(const std::string &old_path, const std::string &new_path,
             double max_regress)
{
    BenchCells before, after;
    std::string old_sha, new_sha, error;
    if (!loadBenchFile(old_path, before, old_sha, error) ||
        !loadBenchFile(new_path, after, new_sha, error)) {
        std::fprintf(stderr, "specstat: %s\n", error.c_str());
        return 2;
    }

    std::printf("bench diff: %s (%s) -> %s (%s), tolerance %.0f%%\n",
                old_path.c_str(),
                old_sha.empty() ? "?" : old_sha.c_str(),
                new_path.c_str(),
                new_sha.empty() ? "?" : new_sha.c_str(),
                max_regress * 100.0);
    std::printf("%-24s %-18s %12s %12s %8s\n", "cell", "metric",
                "old", "new", "delta");

    bool ok = true;
    for (const auto &[cell, old_metrics] : before) {
        const auto new_cell = after.find(cell);
        if (new_cell == after.end()) {
            std::fprintf(stderr,
                         "specstat: REGRESSION cell '%s' disappeared "
                         "from %s\n",
                         cell.c_str(), new_path.c_str());
            ok = false;
            continue;
        }
        for (const auto &[metric, old_value] : old_metrics) {
            const auto it = new_cell->second.find(metric);
            if (it == new_cell->second.end())
                continue;
            const double new_value = it->second;
            const double delta =
                old_value != 0
                    ? (new_value - old_value) / old_value * 100.0
                    : 0.0;
            int direction = 0;
            for (const auto &gated : kGatedMetrics) {
                if (metric == gated.name)
                    direction = gated.direction;
            }
            bool regressed = false;
            if (direction > 0)
                regressed =
                    new_value < old_value * (1.0 - max_regress);
            else if (direction < 0)
                regressed =
                    new_value > old_value * (1.0 + max_regress);
            std::printf("%-24s %-18s %12s %12s %+7.1f%%%s\n",
                        cell.c_str(), metric.c_str(),
                        formatValue(old_value).c_str(),
                        formatValue(new_value).c_str(), delta,
                        regressed      ? "  REGRESSION"
                        : direction != 0 ? "  [gated]"
                                         : "");
            if (regressed) {
                std::fprintf(
                    stderr,
                    "specstat: REGRESSION %s %s: %s -> %s "
                    "(%+.1f%%, tolerance %.0f%%)\n",
                    cell.c_str(), metric.c_str(),
                    formatValue(old_value).c_str(),
                    formatValue(new_value).c_str(), delta,
                    max_regress * 100.0);
                ok = false;
            }
        }
    }
    for (const auto &[cell, metrics] : after) {
        if (before.find(cell) == before.end())
            std::printf("%-24s (new cell, %zu metrics)\n",
                        cell.c_str(), metrics.size());
    }
    std::printf(ok ? "bench diff: OK\n" : "bench diff: FAIL\n");
    return ok ? 0 : 1;
}

/**
 * ======================== specstat top ========================
 *
 * A polling terminal view against a live speckv admin endpoint. Every
 * frame is the delta between two /metrics scrapes: cumulative
 * histogram buckets subtract into an exact windowed histogram (the
 * buckets are cumulative-by-le, so the difference of two scrapes is
 * the cumulative histogram of just that window), from which p50/p99/
 * p999 are read off; counters subtract into rates.
 */

/** One cumulative bucket point: le upper bound and count <= le. */
struct BucketPoint
{
    double le = 0;
    double cumulative = 0;
};

/** Histogram base name -> ascending cumulative bucket points. */
using BucketMap = std::map<std::string, std::vector<BucketPoint>>;

BucketMap
collectBuckets(const FlatSamples &samples)
{
    BucketMap out;
    for (const auto &[name, value] : samples) {
        const std::size_t pos = name.find("_bucket{");
        if (pos == std::string::npos)
            continue;
        const std::size_t le = name.find("le=\"", pos);
        if (le == std::string::npos)
            continue;
        double upper;
        if (name.compare(le + 4, 4, "+Inf") == 0)
            upper = std::numeric_limits<double>::infinity();
        else
            upper = std::strtod(name.c_str() + le + 4, nullptr);
        out[name.substr(0, pos)].push_back({upper, value});
    }
    for (auto &[name, points] : out) {
        (void)name;
        std::sort(points.begin(), points.end(),
                  [](const BucketPoint &a, const BucketPoint &b) {
                      return a.le < b.le;
                  });
    }
    return out;
}

/**
 * Histogram base name -> (value, trace id) of its highest-valued
 * OpenMetrics exemplar in one scrape. parsePrometheus strips the
 * `# {trace_id="N"} V` suffixes to keep FlatSamples numeric, so the
 * exemplars are re-scanned from the raw exposition text here.
 */
using ExemplarMap =
    std::map<std::string, std::pair<double, std::uint64_t>>;

ExemplarMap
collectExemplars(const std::string &body)
{
    ExemplarMap out;
    std::size_t line_start = 0;
    while (line_start < body.size()) {
        std::size_t line_end = body.find('\n', line_start);
        if (line_end == std::string::npos)
            line_end = body.size();
        const std::string_view line(body.data() + line_start,
                                    line_end - line_start);
        line_start = line_end + 1;
        if (line.empty() || line[0] == '#')
            continue;
        static constexpr std::string_view kMarker =
            " # {trace_id=\"";
        const std::size_t marker = line.find(kMarker);
        if (marker == std::string_view::npos)
            continue;
        const std::size_t id_pos = marker + kMarker.size();
        const std::uint64_t id =
            std::strtoull(line.data() + id_pos, nullptr, 10);
        const std::size_t close = line.find("\"} ", id_pos);
        if (close == std::string_view::npos || id == 0)
            continue;
        const double value =
            std::strtod(line.data() + close + 3, nullptr);
        std::size_t name_end = line.find("_bucket{");
        if (name_end == std::string_view::npos)
            name_end = line.find_first_of(" {");
        if (name_end == std::string_view::npos)
            continue;
        const std::string base(line.substr(0, name_end));
        const auto it = out.find(base);
        if (it == out.end() || value > it->second.first)
            out[base] = {value, id};
    }
    return out;
}

/** One /metrics scrape plus its parsed bucket series and timestamp. */
struct Scrape
{
    FlatSamples samples;
    BucketMap buckets;
    ExemplarMap exemplars;
    std::chrono::steady_clock::time_point when;
};

double
sampleOr(const FlatSamples &samples, const std::string &name,
         double fallback = 0)
{
    const auto it = samples.find(name);
    return it == samples.end() ? fallback : it->second;
}

double
sampleDelta(const Scrape &prev, const Scrape &cur,
            const std::string &name)
{
    return sampleOr(cur.samples, name) - sampleOr(prev.samples, name);
}

/**
 * Quantile of the windowed histogram between two cumulative bucket
 * series: the smallest le whose windowed cumulative count reaches
 * q * total. Returns NaN when the window saw no samples; +Inf when
 * the quantile falls in the overflow bucket.
 */
double
windowQuantile(const Scrape &prev, const Scrape &cur,
               const std::string &base, double q, double &total_out)
{
    total_out = 0;
    const auto cur_it = cur.buckets.find(base);
    if (cur_it == cur.buckets.end() || cur_it->second.empty())
        return std::numeric_limits<double>::quiet_NaN();
    const auto prev_it = prev.buckets.find(base);
    const auto prevCumulative = [&](double le) -> double {
        if (prev_it == prev.buckets.end())
            return 0;
        for (const auto &point : prev_it->second) {
            if (point.le == le)
                return point.cumulative;
        }
        return 0;
    };
    const auto &points = cur_it->second;
    const double total =
        points.back().cumulative - prevCumulative(points.back().le);
    total_out = total;
    if (total <= 0)
        return std::numeric_limits<double>::quiet_NaN();
    const double target = q * total;
    for (const auto &point : points) {
        const double windowed =
            point.cumulative - prevCumulative(point.le);
        if (windowed >= target)
            return point.le;
    }
    return points.back().le;
}

/** Nanoseconds -> a human column ("3.2us", "1.8ms", "-" for NaN). */
std::string
formatNs(double ns)
{
    char buf[32];
    if (std::isnan(ns))
        return "-";
    if (std::isinf(ns))
        return ">max";
    if (ns < 1000.0)
        std::snprintf(buf, sizeof(buf), "%.0fns", ns);
    else if (ns < 1e6)
        std::snprintf(buf, sizeof(buf), "%.1fus", ns / 1e3);
    else if (ns < 1e9)
        std::snprintf(buf, sizeof(buf), "%.2fms", ns / 1e6);
    else
        std::snprintf(buf, sizeof(buf), "%.2fs", ns / 1e9);
    return buf;
}

void
renderTopFrame(const Scrape &prev, const Scrape &cur,
               const std::string &where, std::size_t frame)
{
    const double dt =
        std::chrono::duration<double>(cur.when - prev.when).count();
    const double safe_dt = dt > 0 ? dt : 1;

    const double qps =
        sampleDelta(prev, cur, "specpmt_net_frames_rx_total") /
        safe_dt;
    double commits =
        sampleDelta(prev, cur, "specpmt_spec_tx_commits_total");
    if (commits <= 0)
        commits = sampleDelta(prev, cur, "specpmt_txn_commits_total");
    if (commits <= 0)
        commits =
            sampleDelta(prev, cur, "specpmt_net_batch_commits_total");
    double fences;
    if (cur.samples.count("specpmt_pmem_fences_total") != 0) {
        fences = sampleDelta(prev, cur, "specpmt_pmem_fences_total");
    } else {
        // The live server persists through the real pmem path, which
        // carries no fence counter; estimate from the SpecPMT fence
        // discipline — one fence per strict commit, one per epoch
        // seal (relaxed commits amortize into their epoch's seal).
        const double relaxed = sampleDelta(
            prev, cur, "specpmt_epoch_relaxed_commits_total");
        fences = sampleDelta(prev, cur, "specpmt_epoch_seals_total") +
                 std::max(0.0, commits - relaxed);
    }
    const double slow_total =
        sampleOr(cur.samples, "specpmt_net_slow_requests_total");
    const double slow_delta =
        sampleDelta(prev, cur, "specpmt_net_slow_requests_total");

    std::printf("specstat top — %s  window %.1fs  frame %zu\n",
                where.c_str(), dt, frame);
    std::printf("qps %.1f   fences/tx %s   slow %.0f (%+.0f)\n", qps,
                commits > 0 ? formatValue(fences / commits).c_str()
                            : "-",
                slow_total, slow_delta);

    std::printf("%-10s %10s %10s %10s %10s  %s\n", "stage", "p50",
                "p99", "p999", "count/s", "exemplar");
    static const std::pair<const char *, const char *> kStages[] = {
        {"queue", "specpmt_net_stage_queue"},
        {"exec", "specpmt_net_stage_exec"},
        {"seal_wait", "specpmt_net_stage_seal_wait"},
        {"write", "specpmt_net_stage_write"},
    };
    for (const auto &[label, base] : kStages) {
        double total = 0;
        const double p50 = windowQuantile(prev, cur, base, 0.50, total);
        const double p99 = windowQuantile(prev, cur, base, 0.99, total);
        const double p999 =
            windowQuantile(prev, cur, base, 0.999, total);
        // Slowest exemplar of the stage histogram: a concrete trace
        // id behind the tail, ready for `specstat trace --id=`.
        std::string exemplar = "-";
        const auto ex = cur.exemplars.find(base);
        if (ex != cur.exemplars.end())
            exemplar = formatNs(ex->second.first) + " id=" +
                       std::to_string(ex->second.second);
        std::printf("%-10s %10s %10s %10s %10.0f  %s\n", label,
                    formatNs(p50).c_str(), formatNs(p99).c_str(),
                    formatNs(p999).c_str(), total / safe_dt,
                    exemplar.c_str());
    }

    const double pending =
        sampleOr(cur.samples, "specpmt_epoch_pending_txs");
    const double seals =
        sampleDelta(prev, cur, "specpmt_net_epoch_seals_total");
    double max_seal_lag = 0;
    for (const auto &[name, value] : cur.samples) {
        if (name.rfind("specpmt_epoch_seal_lag{", 0) == 0)
            max_seal_lag = std::max(max_seal_lag, value);
    }
    std::printf("epoch: pending %.0f   seals/s %.1f   seal_lag max "
                "%.0f\n",
                pending, seals / safe_dt, max_seal_lag);

    std::printf("shard ops/s:");
    bool any_shard = false;
    for (const auto &[name, value] : cur.samples) {
        static const std::string kPrefix =
            "specpmt_net_shard_ops_total{shard=\"";
        if (name.rfind(kPrefix, 0) != 0)
            continue;
        const std::string shard = name.substr(
            kPrefix.size(), name.size() - kPrefix.size() - 2);
        const double rate =
            (value - sampleOr(prev.samples, name)) / safe_dt;
        std::printf("  [%s] %.0f", shard.c_str(), rate);
        any_shard = true;
    }
    std::printf(any_shard ? "\n" : "  (none)\n");
}

/**
 * Cumulative series (counters, histogram counts) never decrease in a
 * live process; a lower reading means the scraped endpoint restarted
 * (or now belongs to a different process) and every delta this frame
 * would come out negative. The frame re-baselines instead.
 */
bool
countersReset(const Scrape &prev, const Scrape &cur)
{
    for (const auto &[name, value] : prev.samples) {
        if (!endsWith(name, "_total") && !endsWith(name, "_count") &&
            name.find("_bucket{") == std::string::npos)
            continue;
        const auto it = cur.samples.find(name);
        if (it != cur.samples.end() && it->second < value)
            return true;
    }
    return false;
}

int
cmdTop(const std::vector<std::string> &args)
{
    std::string host = "127.0.0.1";
    std::string url;
    int port = -1;
    double interval = 1.0;
    long count = -1;
    bool once = false;

    for (const auto &arg : args) {
        const auto val = [&](const char *prefix) -> const char * {
            const std::size_t n = std::string_view(prefix).size();
            return arg.rfind(prefix, 0) == 0 ? arg.c_str() + n
                                             : nullptr;
        };
        if (const char *v = val("--url=")) {
            url = v;
        } else if (const char *v = val("--host=")) {
            host = v;
        } else if (const char *v = val("--port=")) {
            port = std::atoi(v);
        } else if (const char *v = val("--interval=")) {
            interval = std::strtod(v, nullptr);
        } else if (const char *v = val("--count=")) {
            count = std::atol(v);
        } else if (arg == "--once") {
            once = true;
        } else {
            std::fprintf(stderr, "specstat: unknown top arg %s\n",
                         arg.c_str());
            return 2;
        }
    }
    std::string path = "/metrics";
    if (!url.empty()) {
        std::uint16_t parsed_port = 0;
        std::string parsed_path;
        if (!specpmt::obs::parseHttpUrl(url, host, parsed_port,
                                        parsed_path)) {
            std::fprintf(stderr, "specstat: bad --url=%s\n",
                         url.c_str());
            return 2;
        }
        port = parsed_port;
        if (parsed_path != "/")
            path = parsed_path;
    }
    if (port <= 0 || port > 65535) {
        std::fputs("specstat: top needs --port= or --url=\n", stderr);
        return 2;
    }
    if (interval < 0.05)
        interval = 0.05;
    if (once)
        count = 1;

    const std::string where = host + ":" + std::to_string(port);
    const auto scrape = [&](Scrape &out) -> bool {
        specpmt::obs::HttpResponse response;
        std::string error;
        if (!specpmt::obs::httpGet(host,
                                   static_cast<std::uint16_t>(port),
                                   path, response, error)) {
            std::fprintf(stderr, "specstat: %s%s: %s\n",
                         where.c_str(), path.c_str(), error.c_str());
            return false;
        }
        if (response.status != 200) {
            std::fprintf(stderr, "specstat: %s%s: HTTP %d\n",
                         where.c_str(), path.c_str(),
                         response.status);
            return false;
        }
        out.samples.clear();
        if (!specpmt::obs::parsePrometheus(response.body, out.samples,
                                           error)) {
            std::fprintf(stderr, "specstat: %s%s: %s\n",
                         where.c_str(), path.c_str(), error.c_str());
            return false;
        }
        out.buckets = collectBuckets(out.samples);
        out.exemplars = collectExemplars(response.body);
        out.when = std::chrono::steady_clock::now();
        return true;
    };

    Scrape prev;
    if (!scrape(prev))
        return 2;
    for (std::size_t frame = 1;
         count < 0 || frame <= static_cast<std::size_t>(count);
         ++frame) {
        std::this_thread::sleep_for(
            std::chrono::duration<double>(interval));
        Scrape cur;
        if (!scrape(cur))
            return 2;
        if (!once)
            std::printf("\x1b[H\x1b[2J");
        if (countersReset(prev, cur)) {
            std::printf("specstat top — %s  counter reset detected "
                        "(server restart?), re-baselining\n",
                        where.c_str());
        } else {
            renderTopFrame(prev, cur, where, frame);
        }
        std::fflush(stdout);
        prev = std::move(cur);
    }
    return 0;
}

int usage();

/**
 * ======================== specstat trace ========================
 *
 * Merge Chrome trace-event captures — client --trace-out= files and
 * server /trace?ms=N scrapes share the steady-clock time base when
 * both processes run on the same host — group spans by their
 * correlation id (args.id, the 64-bit wire trace id) and print a
 * waterfall per traced request, slowest first: client_send and
 * client_rtt from the load generator interleaved with srv_queue,
 * srv_exec, flush_batch, epoch_seal, seal_wait and ack_write from the
 * server, each positioned on a shared time axis. The PM cost vector
 * the server attaches to srv_exec (user vs log bytes, flushes,
 * fences, log-space watermarks) prints below each waterfall with the
 * derived write amplification.
 */

/** One parsed trace event carrying a correlation id. */
struct TraceSpan
{
    std::string name;
    std::string cat;
    double startNs = 0;
    double durNs = 0;
    std::size_t source = 0; ///< index into the input list
    std::uint64_t id = 0;
    /** Numeric args minus the id, in file order. */
    std::vector<std::pair<std::string, double>> args;
};

/**
 * Load one trace artifact and append its events. The flattener turns
 * `traceEvents[i].field` into `traceEvents.<i>.<field>` leaf paths;
 * string fields (name, cat) and numeric fields (ts, dur, args.*)
 * land in separate maps and are re-joined by index here.
 */
bool
loadTraceSpans(const std::string &path, std::size_t source,
               std::vector<TraceSpan> &out, std::string &error)
{
    std::string text;
    if (!fetchArtifact(path, text, error))
        return false;
    if (text.find("\"traceEvents\"") == std::string::npos) {
        error = "not a trace artifact (no traceEvents)";
        return false;
    }
    FlatJson json;
    if (!JsonFlattener(text).parse(json, error))
        return false;
    const auto indexOf = [](const std::string &key,
                            std::string &field) -> long {
        static const std::string kPrefix = "traceEvents.";
        if (key.rfind(kPrefix, 0) != 0)
            return -1;
        const std::size_t dot = key.find('.', kPrefix.size());
        if (dot == std::string::npos)
            return -1;
        field = key.substr(dot + 1);
        return std::atol(key.c_str() + kPrefix.size());
    };
    std::map<long, TraceSpan> events;
    for (const auto &[key, value] : json.strings) {
        std::string field;
        const long i = indexOf(key, field);
        if (i < 0)
            continue;
        if (field == "name")
            events[i].name = value;
        else if (field == "cat")
            events[i].cat = value;
    }
    for (const auto &[key, value] : json.numbers) {
        std::string field;
        const long i = indexOf(key, field);
        if (i < 0)
            continue;
        if (field == "ts") {
            // Chrome trace timestamps are microseconds.
            events[i].startNs = value * 1000.0;
        } else if (field == "dur") {
            events[i].durNs = value * 1000.0;
        } else if (field == "args.id") {
            events[i].id = static_cast<std::uint64_t>(value);
        } else if (field.rfind("args.", 0) == 0) {
            events[i].args.emplace_back(field.substr(5), value);
        }
    }
    for (auto &[i, span] : events) {
        (void)i;
        span.source = source;
        out.push_back(std::move(span));
    }
    return true;
}

/** Render one waterfall bar on a @p width-column shared time axis. */
std::string
waterfallBar(double offset_ns, double dur_ns, double total_ns,
             int width)
{
    std::string bar(static_cast<std::size_t>(width), '.');
    if (total_ns <= 0)
        return bar;
    int begin = static_cast<int>(offset_ns / total_ns * width);
    int fill = static_cast<int>(dur_ns / total_ns * width);
    begin = std::clamp(begin, 0, width - 1);
    fill = std::clamp(fill, 1, width - begin);
    for (int i = 0; i < fill; ++i)
        bar[static_cast<std::size_t>(begin + i)] = '=';
    return bar;
}

int
cmdTrace(const std::vector<std::string> &args)
{
    std::size_t slowest = 10;
    std::uint64_t only_id = 0;
    std::vector<std::string> paths;
    for (const auto &arg : args) {
        if (arg.rfind("--slowest=", 0) == 0) {
            slowest = std::strtoull(arg.c_str() + 10, nullptr, 10);
        } else if (arg.rfind("--id=", 0) == 0) {
            only_id = std::strtoull(arg.c_str() + 5, nullptr, 10);
        } else if (arg.rfind("--", 0) == 0) {
            std::fprintf(stderr, "specstat: unknown trace arg %s\n",
                         arg.c_str());
            return 2;
        } else {
            paths.push_back(arg);
        }
    }
    if (paths.empty() || slowest == 0)
        return usage();

    std::vector<TraceSpan> spans;
    for (std::size_t i = 0; i < paths.size(); ++i) {
        std::string error;
        if (!loadTraceSpans(paths[i], i, spans, error)) {
            std::fprintf(stderr, "specstat: %s: %s\n",
                         paths[i].c_str(), error.c_str());
            return 2;
        }
        std::printf("input %zu: %s\n", i, paths[i].c_str());
    }

    std::map<std::uint64_t, std::vector<const TraceSpan *>> traces;
    for (const TraceSpan &span : spans) {
        if (span.id == 0 || (only_id != 0 && span.id != only_id))
            continue;
        traces[span.id].push_back(&span);
    }
    if (traces.empty()) {
        std::fprintf(stderr,
                     "specstat: no correlated spans (args.id%s) "
                     "among %zu events\n",
                     only_id != 0 ? " matching --id" : "",
                     spans.size());
        return 1;
    }

    struct Ranked
    {
        std::uint64_t id;
        double start;
        double end;
        const std::vector<const TraceSpan *> *spans;
    };
    std::vector<Ranked> ranked;
    for (const auto &[id, members] : traces) {
        Ranked r{id, std::numeric_limits<double>::infinity(), 0,
                 &members};
        for (const TraceSpan *span : members) {
            r.start = std::min(r.start, span->startNs);
            r.end = std::max(r.end, span->startNs + span->durNs);
        }
        ranked.push_back(r);
    }
    std::sort(ranked.begin(), ranked.end(),
              [](const Ranked &a, const Ranked &b) {
                  return a.end - a.start > b.end - b.start;
              });

    std::printf("%zu correlated trace(s) across %zu spans; showing "
                "slowest %zu\n",
                ranked.size(), spans.size(),
                std::min(slowest, ranked.size()));

    constexpr int kBarWidth = 40;
    for (std::size_t t = 0; t < ranked.size() && t < slowest; ++t) {
        const Ranked &r = ranked[t];
        const double total = r.end - r.start;
        std::vector<const TraceSpan *> ordered = *r.spans;
        std::sort(ordered.begin(), ordered.end(),
                  [](const TraceSpan *a, const TraceSpan *b) {
                      return a->startNs != b->startNs
                                 ? a->startNs < b->startNs
                                 : a->durNs > b->durNs;
                  });
        std::printf("\ntrace %llu  total %s  spans %zu\n",
                    static_cast<unsigned long long>(r.id),
                    formatNs(total).c_str(), ordered.size());
        const TraceSpan *exec = nullptr;
        for (const TraceSpan *span : ordered) {
            std::printf("  %-12s %-7s [%zu] +%-9s %-9s |%s|",
                        span->name.c_str(), span->cat.c_str(),
                        span->source,
                        formatNs(span->startNs - r.start).c_str(),
                        formatNs(span->durNs).c_str(),
                        waterfallBar(span->startNs - r.start,
                                     span->durNs, total, kBarWidth)
                            .c_str());
            for (const auto &[key, value] : span->args)
                std::printf(" %s=%s", key.c_str(),
                            formatValue(value).c_str());
            std::printf("\n");
            if (span->name == "srv_exec" && exec == nullptr)
                exec = span;
        }
        if (exec != nullptr && !exec->args.empty()) {
            const auto arg = [&](const char *key) -> double {
                for (const auto &[k, v] : exec->args)
                    if (k == key)
                        return v;
                return 0;
            };
            const double user = arg("user_bytes");
            const double log = arg("log_bytes");
            std::printf("  pm: user %sB  log %sB  write_amp %s  "
                        "flushes %s (%sB)  fences %s  log_peak %sB  "
                        "reclaim_debt %sB\n",
                        formatValue(user).c_str(),
                        formatValue(log).c_str(),
                        user > 0 ? formatValue(log / user).c_str()
                                 : "-",
                        formatValue(arg("flushes")).c_str(),
                        formatValue(arg("flush_bytes")).c_str(),
                        formatValue(arg("fences")).c_str(),
                        formatValue(arg("log_peak")).c_str(),
                        formatValue(arg("reclaim_debt")).c_str());
        }
    }
    return 0;
}

/** One parsed --require=<metric><op><value> assertion. */
struct Requirement
{
    std::string metric;
    std::string op;
    double value = 0;
    std::string raw; ///< the spec as typed, for messages
};

bool
parseRequirement(std::string_view spec, Requirement &out,
                 std::string &error)
{
    out.raw = spec;
    // A labeled metric (`name{kind="poison"}>=1`) carries '=' inside
    // the label block; the comparison operator can only start after
    // the closing brace.
    std::size_t search_from = 0;
    const std::size_t brace = spec.find('{');
    if (brace != std::string_view::npos &&
        brace < spec.find_first_of("<>!=")) {
        const std::size_t close = spec.find('}', brace);
        if (close == std::string_view::npos) {
            error = "unterminated label block";
            return false;
        }
        search_from = close + 1;
    }
    const std::size_t pos = spec.find_first_of("<>!=", search_from);
    if (pos == 0 || pos == std::string_view::npos) {
        error = "want <metric><op><value> with op one of "
                "== != >= <= > <";
        return false;
    }
    out.metric = spec.substr(0, pos);
    std::size_t value_pos = pos + 1;
    if (value_pos < spec.size() && spec[value_pos] == '=')
        ++value_pos;
    out.op = spec.substr(pos, value_pos - pos);
    if (out.op != "==" && out.op != "!=" && out.op != ">=" &&
        out.op != "<=" && out.op != ">" && out.op != "<") {
        error = "unknown operator '" + out.op + "'";
        return false;
    }
    const std::string value_str(spec.substr(value_pos));
    char *end = nullptr;
    out.value = std::strtod(value_str.c_str(), &end);
    if (value_str.empty() || end == nullptr || *end != '\0') {
        error = "bad numeric value '" + value_str + "'";
        return false;
    }
    return true;
}

bool
evalRequirement(const FlatSamples &samples, const Requirement &req)
{
    const auto it = samples.find(req.metric);
    if (it == samples.end()) {
        std::fprintf(stderr,
                     "specstat: REQUIRE FAILED %s: metric %s not "
                     "found in the checked files\n",
                     req.raw.c_str(), req.metric.c_str());
        return false;
    }
    const double actual = it->second;
    bool ok = false;
    if (req.op == "==")
        ok = actual == req.value;
    else if (req.op == "!=")
        ok = actual != req.value;
    else if (req.op == ">=")
        ok = actual >= req.value;
    else if (req.op == "<=")
        ok = actual <= req.value;
    else if (req.op == ">")
        ok = actual > req.value;
    else if (req.op == "<")
        ok = actual < req.value;
    if (ok) {
        std::printf("REQUIRE ok %s (actual %s)\n", req.raw.c_str(),
                    formatValue(actual).c_str());
    } else {
        std::fprintf(stderr,
                     "specstat: REQUIRE FAILED %s (actual %s)\n",
                     req.raw.c_str(), formatValue(actual).c_str());
    }
    return ok;
}

int
usage()
{
    std::fputs("usage: specstat dump FILE\n"
               "       specstat diff OLD NEW\n"
               "       specstat diff --bench [--max-regress=FRAC] "
               "OLD NEW\n"
               "       specstat check [--require=METRIC<OP>VALUE]... "
               "FILE...\n"
               "       specstat bench [--out=FILE] [--sha=SHA] "
               "--cell=NAME:FILE...\n"
               "                      [--min-speedup=FAST/SLOW:RATIO]"
               "\n"
               "                      [--max-fences-per-tx=CELL:"
               "LIMIT]\n"
               "       specstat top --port=P [--host=H] [--url=U]\n"
               "                    [--interval=SEC] [--count=N] "
               "[--once]\n"
               "       specstat trace [--slowest=N] [--id=ID] "
               "FILE...\n"
               "FILE may be a path, `-` (stdin) or an http:// URL.\n",
               stderr);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string_view command = argv[1];
    if (command == "dump" && argc == 3)
        return cmdDump(argv[2]);
    if (command == "diff" && argc >= 3 &&
        std::string_view(argv[2]) == "--bench") {
        double max_regress = 0.10;
        std::vector<std::string> paths;
        for (int i = 3; i < argc; ++i) {
            const std::string_view arg = argv[i];
            if (arg.rfind("--max-regress=", 0) == 0)
                max_regress =
                    std::strtod(argv[i] + 14, nullptr);
            else
                paths.emplace_back(arg);
        }
        if (paths.size() != 2)
            return usage();
        return cmdDiffBench(paths[0], paths[1], max_regress);
    }
    if (command == "diff" && argc == 4)
        return cmdDiff(argv[2], argv[3]);
    if (command == "bench") {
        std::vector<std::string> args(argv + 2, argv + argc);
        return cmdBench(args);
    }
    if (command == "top") {
        std::vector<std::string> args(argv + 2, argv + argc);
        return cmdTop(args);
    }
    if (command == "trace" && argc >= 3) {
        std::vector<std::string> args(argv + 2, argv + argc);
        return cmdTrace(args);
    }
    if (command == "check" && argc >= 3) {
        std::vector<Requirement> requirements;
        std::vector<std::string> files;
        for (int i = 2; i < argc; ++i) {
            const std::string_view arg = argv[i];
            if (arg.rfind("--require=", 0) == 0) {
                Requirement req;
                std::string error;
                if (!parseRequirement(arg.substr(10), req, error)) {
                    std::fprintf(stderr,
                                 "specstat: bad %s: %s\n", argv[i],
                                 error.c_str());
                    return 2;
                }
                requirements.push_back(std::move(req));
            } else {
                files.emplace_back(arg);
            }
        }
        if (files.empty())
            return usage();
        bool ok = true;
        FlatSamples merged;
        for (const auto &file : files)
            ok = checkOne(file, merged) && ok;
        for (const auto &req : requirements)
            ok = evalRequirement(merged, req) && ok;
        return ok ? 0 : 1;
    }
    return usage();
}
