/**
 * @file
 * specstat — inspect, diff and validate the observability artifacts
 * emitted by the benches and tools (--metrics-out= Prometheus text,
 * --trace-out= Chrome trace-event JSON).
 *
 * Subcommands:
 *   dump FILE        parse a Prometheus exposition and pretty-print
 *                    every sample, sorted by name;
 *   diff OLD NEW     compare two expositions: changed samples with
 *                    deltas, plus added/removed series;
 *   check FILE...    validate artifacts: .json files must be
 *                    syntactically valid JSON (trace files must also
 *                    carry a traceEvents array), everything else must
 *                    parse as Prometheus text. Repeatable
 *                    --require=<metric><op><value> flags (ops ==, !=,
 *                    >=, <=, >, <) assert against the merged samples
 *                    of every Prometheus file; a missing metric fails
 *                    the assertion.
 *
 * Exit status: 0 = success, 1 = check found an invalid artifact or a
 * failed --require assertion, 2 = usage error or unreadable/malformed
 * input to dump/diff.
 */

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hh"

namespace
{

using specpmt::obs::FlatSamples;

bool
readFile(const std::string &path, std::string &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    out = buffer.str();
    return true;
}

/** Integral values print without a fractional part. */
std::string
formatValue(double value)
{
    char buf[64];
    if (value == static_cast<double>(static_cast<long long>(value))) {
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(value));
    } else {
        std::snprintf(buf, sizeof(buf), "%.6g", value);
    }
    return buf;
}

/** Load a Prometheus exposition or exit with status 2. */
FlatSamples
loadSamples(const std::string &path)
{
    std::string text;
    if (!readFile(path, text)) {
        std::fprintf(stderr, "specstat: cannot read %s\n",
                     path.c_str());
        std::exit(2);
    }
    FlatSamples samples;
    std::string error;
    if (!specpmt::obs::parsePrometheus(text, samples, error)) {
        std::fprintf(stderr, "specstat: %s: %s\n", path.c_str(),
                     error.c_str());
        std::exit(2);
    }
    return samples;
}

int
cmdDump(const std::string &path)
{
    const FlatSamples samples = loadSamples(path);
    for (const auto &[name, value] : samples) {
        std::printf("%-64s %s\n", name.c_str(),
                    formatValue(value).c_str());
    }
    std::printf("# %zu samples\n", samples.size());
    return 0;
}

int
cmdDiff(const std::string &old_path, const std::string &new_path)
{
    const FlatSamples before = loadSamples(old_path);
    const FlatSamples after = loadSamples(new_path);

    std::size_t changed = 0;
    for (const auto &[name, new_value] : after) {
        const auto it = before.find(name);
        if (it == before.end()) {
            std::printf("+ %-62s %s\n", name.c_str(),
                        formatValue(new_value).c_str());
            ++changed;
        } else if (it->second != new_value) {
            std::printf("  %-62s %s -> %s (%+g)\n", name.c_str(),
                        formatValue(it->second).c_str(),
                        formatValue(new_value).c_str(),
                        new_value - it->second);
            ++changed;
        }
    }
    for (const auto &[name, old_value] : before) {
        if (after.find(name) == after.end()) {
            std::printf("- %-62s %s\n", name.c_str(),
                        formatValue(old_value).c_str());
            ++changed;
        }
    }
    std::printf("# %zu samples differ (%zu -> %zu series)\n", changed,
                before.size(), after.size());
    return 0;
}

/**
 * Minimal JSON syntax scanner — enough to reject truncated or
 * malformed artifacts without pulling in a parser dependency.
 */
class JsonScanner
{
  public:
    explicit JsonScanner(std::string_view text) : text_(text) {}

    bool
    validate(std::string &error)
    {
        error_ = &error;
        if (!value())
            return false;
        skipWs();
        if (pos_ != text_.size())
            return fail("trailing garbage after JSON value");
        return true;
    }

  private:
    bool
    fail(const char *message)
    {
        *error_ = std::string(message) + " at byte " +
                  std::to_string(pos_);
        return false;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool
    literal(std::string_view word)
    {
        if (text_.substr(pos_, word.size()) != word)
            return fail("bad literal");
        pos_ += word.size();
        return true;
    }

    bool
    string()
    {
        ++pos_; // opening quote
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (c == '\\') {
                pos_ += 2;
                continue;
            }
            ++pos_;
        }
        return fail("unterminated string");
    }

    bool
    number()
    {
        const std::size_t start = pos_;
        if (pos_ < text_.size() &&
            (text_[pos_] == '-' || text_[pos_] == '+'))
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '-' ||
                text_[pos_] == '+'))
            ++pos_;
        if (pos_ == start)
            return fail("bad number");
        return true;
    }

    bool
    value()
    {
        skipWs();
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        switch (text_[pos_]) {
          case '{':
            return object();
          case '[':
            return array();
          case '"':
            return string();
          case 't':
            return literal("true");
          case 'f':
            return literal("false");
          case 'n':
            return literal("null");
          default:
            return number();
        }
    }

    bool
    object()
    {
        ++pos_; // '{'
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            return true;
        }
        for (;;) {
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != '"')
                return fail("expected object key");
            if (!string())
                return false;
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != ':')
                return fail("expected ':'");
            ++pos_;
            if (!value())
                return false;
            skipWs();
            if (pos_ < text_.size() && text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (pos_ < text_.size() && text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    bool
    array()
    {
        ++pos_; // '['
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            return true;
        }
        for (;;) {
            if (!value())
                return false;
            skipWs();
            if (pos_ < text_.size() && text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (pos_ < text_.size() && text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }

    std::string_view text_;
    std::size_t pos_ = 0;
    std::string *error_ = nullptr;
};

bool
endsWith(std::string_view s, std::string_view suffix)
{
    return s.size() >= suffix.size() &&
           s.substr(s.size() - suffix.size()) == suffix;
}

bool
checkOne(const std::string &path)
{
    std::string text;
    if (!readFile(path, text)) {
        std::fprintf(stderr, "specstat: cannot read %s\n",
                     path.c_str());
        return false;
    }
    std::string error;
    if (endsWith(path, ".json")) {
        JsonScanner scanner(text);
        if (!scanner.validate(error)) {
            std::fprintf(stderr, "specstat: %s: %s\n", path.c_str(),
                         error.c_str());
            return false;
        }
        // A trace artifact must carry its event array; a metrics JSON
        // dump carries the counters section instead.
        if (text.find("\"traceEvents\"") == std::string::npos &&
            text.find("\"counters\"") == std::string::npos) {
            std::fprintf(stderr,
                         "specstat: %s: neither a trace (traceEvents) "
                         "nor a metrics (counters) JSON artifact\n",
                         path.c_str());
            return false;
        }
        std::printf("OK %s (json, %zu bytes)\n", path.c_str(),
                    text.size());
        return true;
    }
    FlatSamples samples;
    if (!specpmt::obs::parsePrometheus(text, samples, error)) {
        std::fprintf(stderr, "specstat: %s: %s\n", path.c_str(),
                     error.c_str());
        return false;
    }
    std::printf("OK %s (%zu samples)\n", path.c_str(),
                samples.size());
    return true;
}

/** One parsed --require=<metric><op><value> assertion. */
struct Requirement
{
    std::string metric;
    std::string op;
    double value = 0;
    std::string raw; ///< the spec as typed, for messages
};

bool
parseRequirement(std::string_view spec, Requirement &out,
                 std::string &error)
{
    out.raw = spec;
    const std::size_t pos = spec.find_first_of("<>!=");
    if (pos == 0 || pos == std::string_view::npos) {
        error = "want <metric><op><value> with op one of "
                "== != >= <= > <";
        return false;
    }
    out.metric = spec.substr(0, pos);
    std::size_t value_pos = pos + 1;
    if (value_pos < spec.size() && spec[value_pos] == '=')
        ++value_pos;
    out.op = spec.substr(pos, value_pos - pos);
    if (out.op != "==" && out.op != "!=" && out.op != ">=" &&
        out.op != "<=" && out.op != ">" && out.op != "<") {
        error = "unknown operator '" + out.op + "'";
        return false;
    }
    const std::string value_str(spec.substr(value_pos));
    char *end = nullptr;
    out.value = std::strtod(value_str.c_str(), &end);
    if (value_str.empty() || end == nullptr || *end != '\0') {
        error = "bad numeric value '" + value_str + "'";
        return false;
    }
    return true;
}

bool
evalRequirement(const FlatSamples &samples, const Requirement &req)
{
    const auto it = samples.find(req.metric);
    if (it == samples.end()) {
        std::fprintf(stderr,
                     "specstat: REQUIRE FAILED %s: metric %s not "
                     "found in the checked files\n",
                     req.raw.c_str(), req.metric.c_str());
        return false;
    }
    const double actual = it->second;
    bool ok = false;
    if (req.op == "==")
        ok = actual == req.value;
    else if (req.op == "!=")
        ok = actual != req.value;
    else if (req.op == ">=")
        ok = actual >= req.value;
    else if (req.op == "<=")
        ok = actual <= req.value;
    else if (req.op == ">")
        ok = actual > req.value;
    else if (req.op == "<")
        ok = actual < req.value;
    if (ok) {
        std::printf("REQUIRE ok %s (actual %s)\n", req.raw.c_str(),
                    formatValue(actual).c_str());
    } else {
        std::fprintf(stderr,
                     "specstat: REQUIRE FAILED %s (actual %s)\n",
                     req.raw.c_str(), formatValue(actual).c_str());
    }
    return ok;
}

int
usage()
{
    std::fputs("usage: specstat dump FILE\n"
               "       specstat diff OLD NEW\n"
               "       specstat check [--require=METRIC<OP>VALUE]... "
               "FILE...\n",
               stderr);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string_view command = argv[1];
    if (command == "dump" && argc == 3)
        return cmdDump(argv[2]);
    if (command == "diff" && argc == 4)
        return cmdDiff(argv[2], argv[3]);
    if (command == "check" && argc >= 3) {
        std::vector<Requirement> requirements;
        std::vector<std::string> files;
        for (int i = 2; i < argc; ++i) {
            const std::string_view arg = argv[i];
            if (arg.rfind("--require=", 0) == 0) {
                Requirement req;
                std::string error;
                if (!parseRequirement(arg.substr(10), req, error)) {
                    std::fprintf(stderr,
                                 "specstat: bad %s: %s\n", argv[i],
                                 error.c_str());
                    return 2;
                }
                requirements.push_back(std::move(req));
            } else {
                files.emplace_back(arg);
            }
        }
        if (files.empty())
            return usage();
        bool ok = true;
        FlatSamples merged;
        for (const auto &file : files) {
            ok = checkOne(file) && ok;
            if (endsWith(file, ".json"))
                continue;
            // Merge this exposition's samples for the assertions
            // (later files overwrite same-named series).
            std::string text, error;
            FlatSamples samples;
            if (readFile(file, text) &&
                specpmt::obs::parsePrometheus(text, samples, error)) {
                for (const auto &[name, value] : samples)
                    merged[name] = value;
            }
        }
        for (const auto &req : requirements)
            ok = evalRequirement(merged, req) && ok;
        return ok ? 0 : 1;
    }
    return usage();
}
