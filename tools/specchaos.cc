/**
 * @file
 * specchaos — chaos scenario harness for the networked KV service.
 *
 * Each scenario launches a real `speckv serve` subprocess, drives it
 * with open-loop load (src/net/loadgen — per-request deadlines,
 * idempotent retries, reconnect) while injecting one class of
 * failure, then verifies the service's durability and availability
 * contract held:
 *
 *   media_poison      seeded poisoned-read cache lines mid-traffic;
 *                     server must keep serving, every acked write
 *                     must read back intact or be *accounted* (typed
 *                     Io error, media metrics nonzero).
 *   media_eio         seeded write-EIO lines; transactions abort
 *                     cleanly with Err(Io), nothing half-applied.
 *   latent_corruption seeded silent bit flips in the persistent
 *                     image, SIGKILL, then offline inspection: the
 *                     forensic inspector and runtime recovery must
 *                     agree (recovery_audit), CRC-failing segments
 *                     must be quarantined, and any lost acked write
 *                     must be covered by a nonzero quarantine count.
 *   log_exhaustion    tiny PM pool; sustained writes must trip the
 *                     read-only degraded mode (Err(ReadOnly) on
 *                     mutations) while reads keep being served.
 *   sigkill           SIGKILL mid-traffic, restart on the SAME port
 *                     over the same --pm-dir while the load window
 *                     is still open: the client must reconnect to
 *                     the revived server, and recovery must
 *                     resurface EVERY acked write (the last acked
 *                     value, or a later unacked overwrite of the
 *                     same key) — no exceptions, this is the
 *                     strict-durability contract.
 *   sigstop           SIGSTOP/SIGCONT mid-traffic (a long stall, not
 *                     a crash): the resilient client must ride it
 *                     out via timeouts/retries and the run must end
 *                     with zero lost acked writes.
 *   conn_reset        rogue clients send garbage frames, oversized
 *                     frames, and hard RSTs (SO_LINGER 0) mid-
 *                     response; the server must shrug and keep
 *                     serving the well-behaved connections.
 *
 * Post-crash verification is in-process: the `.pm` backing files a
 * crashed server leaves behind are raw persistence-domain bytes, so
 * the harness reads them, rebuilds an offline device
 * (pmem::deviceFromImage), walks it with forensic::inspectImage and
 * cross-checks runtime recovery with forensic::auditRecovery — the
 * same machinery `pminspect --audit` applies to saved crash images.
 *
 * Usage:
 *   specchaos [--scenario=NAME[,NAME...]] [--list] [--seed=1]
 *             [--speckv=PATH] [--workdir=DIR] [--keep]
 *             [--json=out.json] [--metrics-out=client.prom]
 *             [--inspect=PMDIR]
 *
 * Default runs every scenario. Exit status is nonzero if any
 * scenario fails; the scratch directory (server logs, metrics
 * snapshots, port files, .pm images) is kept on failure or --keep so
 * CI can attach it as an artifact.
 */

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.hh"
#include "forensic/inspector.hh"
#include "forensic/recovery_audit.hh"
#include "kv/kv_service.hh"
#include "net/loadgen.hh"
#include "net/protocol.hh"
#include "obs/metrics.hh"
#include "pmem/image_io.hh"
#include "pmem/pmem_device.hh"

using namespace specpmt;
namespace fs = std::filesystem;

namespace
{

struct HarnessConfig
{
    std::string speckv;
    std::string workdir;
    std::uint64_t seed = 1;
    bool keep = false;
};

// ---------------------------------------------------------------------
// Server subprocess management.
// ---------------------------------------------------------------------

struct ServerHandle
{
    pid_t pid = -1;
    std::uint16_t port = 0;
    std::string logPath;
    std::string metricsPath;

    bool
    alive() const
    {
        if (pid <= 0)
            return false;
        return ::waitpid(pid, nullptr, WNOHANG) == 0;
    }
};

void
msleep(std::uint64_t ms)
{
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

/**
 * fork/exec `speckv serve` with @p extra flags appended. stdout and
 * stderr go to <workdir>/<tag>.log; the bound port is read back from
 * a --port-file. Returns pid -1 with @p err set on failure.
 */
ServerHandle
launchServer(const HarnessConfig &cfg, const std::string &tag,
             const std::vector<std::string> &extra, std::string &err)
{
    ServerHandle h;
    const std::string port_file = cfg.workdir + "/" + tag + ".port";
    h.logPath = cfg.workdir + "/" + tag + ".log";
    h.metricsPath = cfg.workdir + "/" + tag + ".prom";
    ::unlink(port_file.c_str());

    std::vector<std::string> args = {cfg.speckv,
                                     "serve",
                                     "--port=0",
                                     "--port-file=" + port_file,
                                     "--metrics-out=" + h.metricsPath};
    args.insert(args.end(), extra.begin(), extra.end());

    const pid_t pid = ::fork();
    if (pid < 0) {
        err = std::string("fork: ") + std::strerror(errno);
        return h;
    }
    if (pid == 0) {
        const int log_fd = ::open(h.logPath.c_str(),
                                  O_CREAT | O_WRONLY | O_APPEND, 0644);
        if (log_fd >= 0) {
            ::dup2(log_fd, STDOUT_FILENO);
            ::dup2(log_fd, STDERR_FILENO);
            ::close(log_fd);
        }
        std::vector<char *> argv;
        for (auto &a : args)
            argv.push_back(a.data());
        argv.push_back(nullptr);
        ::execv(argv[0], argv.data());
        std::fprintf(stderr, "execv %s: %s\n", argv[0],
                     std::strerror(errno));
        ::_exit(127);
    }
    h.pid = pid;

    // Wait for the port file (the server writes it only after its
    // listener is live), bailing early if the child died.
    for (int i = 0; i < 300; ++i) {
        if (::waitpid(pid, nullptr, WNOHANG) != 0) {
            err = "server exited before binding; see " + h.logPath;
            h.pid = -1;
            return h;
        }
        std::ifstream f(port_file);
        unsigned port = 0;
        if (f && (f >> port) && port != 0 && port <= 65535) {
            h.port = static_cast<std::uint16_t>(port);
            return h;
        }
        msleep(50);
    }
    err = "timed out waiting for " + port_file;
    ::kill(pid, SIGKILL);
    ::waitpid(pid, nullptr, 0);
    h.pid = -1;
    return h;
}

/** Signal @p sig and reap, escalating to SIGKILL after @p graceMs. */
bool
stopServer(ServerHandle &h, int sig = SIGTERM,
           std::uint64_t graceMs = 10000)
{
    if (h.pid <= 0)
        return false;
    ::kill(h.pid, sig);
    for (std::uint64_t waited = 0; waited < graceMs; waited += 50) {
        if (::waitpid(h.pid, nullptr, WNOHANG) != 0) {
            h.pid = -1;
            return true;
        }
        msleep(50);
    }
    ::kill(h.pid, SIGKILL);
    ::waitpid(h.pid, nullptr, 0);
    h.pid = -1;
    return false;
}

/** SIGKILL and reap — the crash scenarios' power button. */
void
killServer(ServerHandle &h)
{
    if (h.pid <= 0)
        return;
    ::kill(h.pid, SIGKILL);
    ::waitpid(h.pid, nullptr, 0);
    h.pid = -1;
}

// ---------------------------------------------------------------------
// Prometheus text-format scraping (the --metrics-out snapshot a
// cleanly stopped server leaves behind).
// ---------------------------------------------------------------------

/** Sum of every sample of @p name (across label sets); -1 if absent. */
double
metricTotal(const std::string &promPath, const std::string &name)
{
    std::ifstream f(promPath);
    if (!f)
        return -1;
    double total = 0;
    bool seen = false;
    std::string line;
    while (std::getline(f, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        if (line.rfind(name, 0) != 0)
            continue;
        const char next = line.size() > name.size() ? line[name.size()]
                                                    : '\0';
        if (next != '{' && next != ' ')
            continue; // longer metric name sharing the prefix
        const std::size_t sp = line.find_last_of(' ');
        if (sp == std::string::npos)
            continue;
        total += std::atof(line.c_str() + sp + 1);
        seen = true;
    }
    return seen ? total : -1;
}

// ---------------------------------------------------------------------
// A small synchronous client for targeted probes and verification
// sweeps (the open-loop loadgen drives the chaos; this reads back).
// ---------------------------------------------------------------------

class SyncClient
{
  public:
    enum class Outcome
    {
        Value,
        Ok,
        NotFound,
        Io,
        ReadOnly,
        Busy,
        OtherErr,
        Broken,
    };

    ~SyncClient() { closeFd(); }

    bool
    connectTo(std::uint16_t port, std::string &err)
    {
        closeFd();
        fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd_ < 0) {
            err = std::string("socket: ") + std::strerror(errno);
            return false;
        }
        struct timeval tv = {5, 0};
        ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
        ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
        int one = 1;
        ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        struct sockaddr_in addr = {};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(port);
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        if (::connect(fd_, reinterpret_cast<struct sockaddr *>(&addr),
                      sizeof(addr)) != 0) {
            err = std::string("connect: ") + std::strerror(errno);
            closeFd();
            return false;
        }
        dec_ = net::FrameDecoder();
        std::vector<std::uint8_t> hello;
        net::appendHello(hello, nextId_++, net::kAnyShard);
        if (!sendAll(hello.data(), hello.size(), err))
            return false;
        net::Frame resp;
        if (!recvFrame(resp, err))
            return false;
        if (resp.op != net::Op::HelloOk) {
            err = "unexpected HELLO response";
            closeFd();
            return false;
        }
        return true;
    }

    bool ok() const { return fd_ >= 0; }

    void
    closeFd()
    {
        if (fd_ >= 0)
            ::close(fd_);
        fd_ = -1;
    }

    /** One GET round trip; on Value the cell lands in @p value. */
    Outcome
    get(kv::KvKey key, kv::KvValue &value, std::string &err)
    {
        std::vector<std::uint8_t> out;
        const std::uint64_t id = nextId_++;
        net::appendGet(out, id, key);
        if (!sendAll(out.data(), out.size(), err))
            return Outcome::Broken;
        net::Frame resp;
        if (!recvFrame(resp, err))
            return Outcome::Broken;
        if (resp.id != id) {
            err = "response id mismatch";
            closeFd();
            return Outcome::Broken;
        }
        if (resp.op == net::Op::Value)
            return net::parseValue(resp, value) ? Outcome::Value
                                                : Outcome::Broken;
        return classify(resp);
    }

    /** One PUT round trip. */
    Outcome
    put(kv::KvKey key, const kv::KvValue &value, std::string &err)
    {
        std::vector<std::uint8_t> out;
        const std::uint64_t id = nextId_++;
        net::appendPut(out, id, key, value);
        if (!sendAll(out.data(), out.size(), err))
            return Outcome::Broken;
        net::Frame resp;
        if (!recvFrame(resp, err))
            return Outcome::Broken;
        return classify(resp);
    }

    struct BulkResult
    {
        std::uint64_t ok = 0;
        std::uint64_t notFound = 0;
        std::uint64_t io = 0;
        std::uint64_t readOnly = 0;
        std::uint64_t busy = 0;
        std::uint64_t otherErr = 0;
        bool broken = false;
        std::string err;
    };

    /**
     * Pipeline @p count PUTs (keys cycling startKey..startKey+span-1,
     * payload = payloadBase + i) and collect every response — the
     * write hammer the exhaustion scenario swings.
     */
    BulkResult
    bulkPut(kv::KvKey startKey, std::uint64_t span, std::uint64_t count,
            std::uint64_t payloadBase)
    {
        BulkResult r;
        std::vector<std::uint8_t> out;
        const std::uint64_t firstId = nextId_;
        for (std::uint64_t i = 0; i < count; ++i) {
            const kv::KvKey key = startKey + (i % span);
            net::appendPut(out, nextId_++, key,
                           kv::KvValue::tagged(key, payloadBase + i));
        }
        drainBulk(out, firstId, count, r);
        return r;
    }

    /** Pipeline GETs for keys startKey..startKey+count-1. */
    BulkResult
    bulkGet(kv::KvKey startKey, std::uint64_t count)
    {
        BulkResult r;
        std::vector<std::uint8_t> out;
        const std::uint64_t firstId = nextId_;
        for (std::uint64_t i = 0; i < count; ++i)
            net::appendGet(out, nextId_++, startKey + i);
        drainBulk(out, firstId, count, r);
        return r;
    }

  private:
    Outcome
    classify(const net::Frame &resp)
    {
        switch (resp.op) {
        case net::Op::Ok:
            return Outcome::Ok;
        case net::Op::NotFound:
            return Outcome::NotFound;
        case net::Op::Busy:
            return Outcome::Busy;
        case net::Op::Err: {
            net::ErrCode code;
            std::string msg;
            if (!net::parseErr(resp, code, msg))
                return Outcome::OtherErr;
            if (code == net::ErrCode::Io)
                return Outcome::Io;
            if (code == net::ErrCode::ReadOnly)
                return Outcome::ReadOnly;
            return Outcome::OtherErr;
        }
        default:
            return Outcome::OtherErr;
        }
    }

    void
    drainBulk(const std::vector<std::uint8_t> &out,
              std::uint64_t firstId, std::uint64_t count, BulkResult &r)
    {
        if (!sendAll(out.data(), out.size(), r.err)) {
            r.broken = true;
            return;
        }
        for (std::uint64_t i = 0; i < count; ++i) {
            net::Frame resp;
            if (!recvFrame(resp, r.err)) {
                r.broken = true;
                return;
            }
            if (resp.id != firstId + i) {
                r.err = "bulk response id mismatch";
                r.broken = true;
                closeFd();
                return;
            }
            if (resp.op == net::Op::Value) {
                ++r.ok; // a GET hit
                continue;
            }
            switch (classify(resp)) {
            case Outcome::Ok:
                ++r.ok;
                break;
            case Outcome::NotFound:
                ++r.notFound;
                break;
            case Outcome::Io:
                ++r.io;
                break;
            case Outcome::ReadOnly:
                ++r.readOnly;
                break;
            case Outcome::Busy:
                ++r.busy;
                break;
            default:
                ++r.otherErr;
                break;
            }
        }
    }

    bool
    sendAll(const std::uint8_t *data, std::size_t size,
            std::string &err)
    {
        std::size_t off = 0;
        while (off < size) {
            const ssize_t n = ::send(fd_, data + off, size - off,
                                     MSG_NOSIGNAL);
            if (n <= 0) {
                err = std::string("send: ") + std::strerror(errno);
                closeFd();
                return false;
            }
            off += static_cast<std::size_t>(n);
        }
        return true;
    }

    bool
    recvFrame(net::Frame &frame, std::string &err)
    {
        while (true) {
            std::string decode_err;
            switch (dec_.next(frame, decode_err)) {
            case net::FrameDecoder::Status::Frame:
                return true;
            case net::FrameDecoder::Status::Error:
                err = "protocol error: " + decode_err;
                closeFd();
                return false;
            case net::FrameDecoder::Status::NeedMore:
                break;
            }
            std::uint8_t buf[4096];
            const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
            if (n == 0) {
                err = "peer closed";
                closeFd();
                return false;
            }
            if (n < 0) {
                err = std::string("recv: ") + std::strerror(errno);
                closeFd();
                return false;
            }
            dec_.feed(buf, static_cast<std::size_t>(n));
        }
    }

    int fd_ = -1;
    net::FrameDecoder dec_;
    std::uint64_t nextId_ = 1;
};

// ---------------------------------------------------------------------
// Durability verification: read back every acked write.
// ---------------------------------------------------------------------

struct SweepResult
{
    std::uint64_t checked = 0;
    std::uint64_t ok = 0;          ///< last acked value intact
    std::uint64_t okUnacked = 0;   ///< a later unacked overwrite won
    std::uint64_t ioAccounted = 0; ///< typed Err(Io) — accounted
    std::uint64_t missing = 0;     ///< NotFound: acked write vanished
    std::uint64_t staleAcked = 0;  ///< an OLDER acked value: rollback
    std::uint64_t wrongValue = 0;  ///< present but matches nothing sent
    std::uint64_t busyGaveUp = 0;  ///< still Busy after retries
    bool broken = false;
    std::string err;

    /**
     * staleAcked counts here too: recovery rolling a key back to an
     * older committed value is lost durability just like NotFound —
     * but unlike wrongValue it is a *rollback*, not corruption, so
     * scenarios that accept accounted loss (torn/quarantined > 0)
     * accept it while a garbage value remains unforgivable.
     */
    std::uint64_t
    violations() const
    {
        return missing + staleAcked + wrongValue + busyGaveUp;
    }

    std::string
    text() const
    {
        char buf[256];
        std::snprintf(buf, sizeof(buf),
                      "checked=%llu ok=%llu unackedWin=%llu io=%llu "
                      "missing=%llu stale=%llu wrong=%llu busy=%llu",
                      static_cast<unsigned long long>(checked),
                      static_cast<unsigned long long>(ok),
                      static_cast<unsigned long long>(okUnacked),
                      static_cast<unsigned long long>(ioAccounted),
                      static_cast<unsigned long long>(missing),
                      static_cast<unsigned long long>(staleAcked),
                      static_cast<unsigned long long>(wrongValue),
                      static_cast<unsigned long long>(busyGaveUp));
        return buf;
    }
};

/**
 * For every key the load run got a write ack for, GET it and demand
 * the last acked payload — or a later *unacked* overwrite of the same
 * key (the server may have applied a mutation whose ack died with the
 * connection), or a typed Err(Io) the caller decides to accept. A
 * value matching an *older* acked payload is classified staleAcked
 * (rollback: a violation, but an accountable one); a value matching
 * nothing ever sent for the key is wrongValue (corruption: never
 * acceptable).
 */
SweepResult
verifyAcked(SyncClient &client, const net::LoadgenResult &load)
{
    SweepResult sweep;
    for (const auto &[key, payload] : load.ackedPuts) {
        ++sweep.checked;
        kv::KvValue value = {};
        SyncClient::Outcome outcome = SyncClient::Outcome::Busy;
        for (int attempt = 0;
             attempt < 10 && outcome == SyncClient::Outcome::Busy;
             ++attempt) {
            if (attempt != 0)
                msleep(20);
            outcome = client.get(key, value, sweep.err);
        }
        switch (outcome) {
        case SyncClient::Outcome::Value: {
            if (value == kv::KvValue::tagged(key, payload)) {
                ++sweep.ok;
                break;
            }
            bool matched = false;
            if (const auto it = load.unackedPuts.find(key);
                it != load.unackedPuts.end()) {
                for (const std::uint64_t alt : it->second) {
                    if (value == kv::KvValue::tagged(key, alt)) {
                        matched = true;
                        break;
                    }
                }
            }
            if (matched) {
                ++sweep.okUnacked;
                break;
            }
            // An OLDER acked payload is a rollback (recovery
            // discarded the newest committed value), not corruption.
            bool stale = false;
            if (const auto it = load.ackedPutHistory.find(key);
                it != load.ackedPutHistory.end()) {
                for (const std::uint64_t old : it->second) {
                    if (value == kv::KvValue::tagged(key, old)) {
                        stale = true;
                        break;
                    }
                }
            }
            stale ? ++sweep.staleAcked : ++sweep.wrongValue;
            break;
        }
        case SyncClient::Outcome::NotFound:
            ++sweep.missing;
            break;
        case SyncClient::Outcome::Io:
            ++sweep.ioAccounted;
            break;
        case SyncClient::Outcome::Busy:
            ++sweep.busyGaveUp;
            break;
        case SyncClient::Outcome::Broken:
            sweep.broken = true;
            return sweep;
        default:
            ++sweep.wrongValue;
            break;
        }
    }
    return sweep;
}

// ---------------------------------------------------------------------
// Offline inspection of the .pm files a crashed server left behind.
// ---------------------------------------------------------------------

struct PmAudit
{
    bool ok = false;
    unsigned shardsSeen = 0;
    std::uint64_t committed = 0;
    std::uint64_t torn = 0;
    std::uint64_t quarantined = 0;
    bool auditAgrees = true;
    std::string err;

    std::string
    text() const
    {
        char buf[192];
        std::snprintf(buf, sizeof(buf),
                      "shards=%u committed=%llu torn=%llu "
                      "quarantined=%llu audit=%s",
                      shardsSeen,
                      static_cast<unsigned long long>(committed),
                      static_cast<unsigned long long>(torn),
                      static_cast<unsigned long long>(quarantined),
                      auditAgrees ? "agree" : "DISAGREE");
        return buf;
    }
};

/**
 * Inspect + audit every shard-<n>.pm under @p pmDir. The backing
 * files are raw persistence-domain bytes (no image-file header), so
 * read them directly and rebuild offline devices from the raw image.
 */
PmAudit
auditPmDir(const std::string &pmDir, const std::string &runtime,
           unsigned threads)
{
    PmAudit audit;
    for (unsigned s = 0;; ++s) {
        const std::string path =
            pmDir + "/shard-" + std::to_string(s) + ".pm";
        std::ifstream f(path, std::ios::binary);
        if (!f)
            break;
        std::vector<std::uint8_t> image(
            (std::istreambuf_iterator<char>(f)),
            std::istreambuf_iterator<char>());
        if (image.empty()) {
            audit.err = path + ": empty image";
            return audit;
        }
        const auto dev = pmem::deviceFromImage(image);
        const forensic::InspectReport report =
            forensic::inspectImage(*dev, threads, path);
        audit.committed += report.committed;
        audit.torn += report.torn;
        audit.quarantined += report.quarantined;
        const forensic::AuditResult shard_audit =
            forensic::auditRecovery(image, runtime, threads, report);
        if (shard_audit.supported && !shard_audit.agrees)
            audit.auditAgrees = false;
        ++audit.shardsSeen;
    }
    if (audit.shardsSeen == 0) {
        audit.err = "no shard-*.pm images under " + pmDir;
        return audit;
    }
    audit.ok = true;
    return audit;
}

// ---------------------------------------------------------------------
// Scenario plumbing.
// ---------------------------------------------------------------------

struct ScenarioOutcome
{
    std::string name;
    bool pass = false;
    std::string detail;
    double seconds = 0;
};

ScenarioOutcome
fail(const std::string &name, const std::string &detail)
{
    return {name, false, detail, 0};
}

ScenarioOutcome
pass(const std::string &name, const std::string &detail)
{
    return {name, true, detail, 0};
}

/** Resilient-client load config every chaos scenario starts from. */
net::LoadgenConfig
chaosLoadConfig(std::uint16_t port, std::uint64_t seed,
                std::uint64_t keys, double qps, double seconds)
{
    net::LoadgenConfig cfg;
    cfg.port = port;
    cfg.seed = seed;
    cfg.workload.keys = keys;
    cfg.workload.mix = kv::Mix::A;
    cfg.targetQps = qps;
    cfg.seconds = seconds;
    cfg.loadFirst = true;
    cfg.requestTimeoutMs = 300;
    cfg.maxRetries = 3;
    cfg.reconnect = true;
    cfg.backoffBaseMs = 10;
    cfg.backoffMaxMs = 200;
    return cfg;
}

std::string
loadText(const net::LoadgenResult &r)
{
    char buf[256];
    std::snprintf(
        buf, sizeof(buf),
        "acked=%llu errors=%llu timeouts=%llu retries=%llu "
        "reconnects=%llu busy=%llu lost=%llu",
        static_cast<unsigned long long>(r.acked),
        static_cast<unsigned long long>(r.errors),
        static_cast<unsigned long long>(r.timeouts),
        static_cast<unsigned long long>(r.retries),
        static_cast<unsigned long long>(r.reconnects),
        static_cast<unsigned long long>(r.busyResponses),
        static_cast<unsigned long long>(r.lost));
    return buf;
}

// ---------------------------------------------------------------------
// Scenarios.
// ---------------------------------------------------------------------

/**
 * Shared body for the two live media-fault scenarios: serve with a
 * seeded fault plan deferred into mid-traffic, drive load, then
 * verify every acked write reads back or errors with typed Io, and
 * that the media metrics actually fired.
 */
ScenarioOutcome
mediaScenario(const HarnessConfig &cfg, const std::string &name,
              const std::string &fault_flag,
              const std::string &required_metric)
{
    const std::string pm_dir = cfg.workdir + "/" + name + "_pm";
    fs::create_directories(pm_dir);
    std::string err;
    ServerHandle server = launchServer(
        cfg, name,
        {"--shards=4", "--keys=1024", "--pm-dir=" + pm_dir,
         "--pool-bytes=8388608",
         "--fault-seed=" + std::to_string(cfg.seed), fault_flag,
         "--fault-delay-ms=400", "--fault-region-start=65536"},
        err);
    if (server.pid < 0)
        return fail(name, "launch: " + err);

    const net::LoadgenResult load = net::runOpenLoop(
        chaosLoadConfig(server.port, cfg.seed, 1024, 8000, 1.5));
    if (load.aborted) {
        stopServer(server);
        return fail(name, "load aborted: " + load.error);
    }
    if (!server.alive())
        return fail(name, "server died under media faults; see " +
                              server.logPath);

    SyncClient client;
    if (!client.connectTo(server.port, err)) {
        stopServer(server);
        return fail(name, "verify connect: " + err);
    }
    const SweepResult sweep = verifyAcked(client, load);
    client.closeFd();
    stopServer(server);
    if (sweep.broken)
        return fail(name, "verify sweep broke: " + sweep.err);
    if (sweep.missing != 0 || sweep.wrongValue != 0 ||
        sweep.busyGaveUp != 0)
        return fail(name, "acked writes unaccounted: " + sweep.text());

    const double injected =
        metricTotal(server.metricsPath,
                    "specpmt_pm_media_faults_injected_total");
    if (injected < 1)
        return fail(name, "fault plan never applied (injected=" +
                              std::to_string(injected) + ")");
    const double required = metricTotal(server.metricsPath,
                                        required_metric);
    if (required < 1)
        return fail(name, required_metric + " stayed zero — faults "
                                            "never bit");
    return pass(name, loadText(load) + " | " + sweep.text());
}

ScenarioOutcome
scenarioMediaPoison(const HarnessConfig &cfg)
{
    // Poisoned lines throw on *read*; the log/data read paths cross
    // them during transactions and recovery scans. Gate on the
    // error counter so the scenario proves reads actually tripped.
    return mediaScenario(cfg, "media_poison", "--fault-poison=192",
                         "specpmt_pm_media_read_errors_total");
}

ScenarioOutcome
scenarioMediaEio(const HarnessConfig &cfg)
{
    return mediaScenario(cfg, "media_eio", "--fault-eio=192",
                         "specpmt_pm_media_write_errors_total");
}

ScenarioOutcome
scenarioLatentCorruption(const HarnessConfig &cfg)
{
    const std::string name = "latent_corruption";
    const std::string pm_dir = cfg.workdir + "/" + name + "_pm";
    fs::create_directories(pm_dir);
    std::string err;
    ServerHandle server = launchServer(
        cfg, name,
        {"--shards=4", "--keys=1024", "--pm-dir=" + pm_dir,
         "--pool-bytes=8388608",
         "--fault-seed=" + std::to_string(cfg.seed),
         "--fault-corrupt=12", "--fault-delay-ms=500",
         "--fault-region-start=65536"},
        err);
    if (server.pid < 0)
        return fail(name, "launch: " + err);

    const net::LoadgenResult load = net::runOpenLoop(
        chaosLoadConfig(server.port, cfg.seed, 1024, 8000, 1.5));
    if (load.aborted) {
        stopServer(server);
        return fail(name, "load aborted: " + load.error);
    }
    // Crash hard: the silent bit flips must be caught by the CRC
    // seals at recovery, not papered over by a clean shutdown.
    killServer(server);

    // Snapshot the corrupted post-crash images: the revived server's
    // recovery discards torn records in-place, so without a copy the
    // kept workdir would only ever show the cleaned-up aftermath
    // (`specchaos --inspect` on the snapshot shows the damage).
    const std::string crash_dir = cfg.workdir + "/" + name + "_crash";
    {
        std::error_code ec;
        fs::remove_all(crash_dir, ec);
        fs::create_directories(crash_dir, ec);
        for (const auto &entry : fs::directory_iterator(pm_dir)) {
            fs::copy_file(entry.path(),
                          fs::path(crash_dir) /
                              entry.path().filename(),
                          ec);
            if (ec)
                return fail(name, "snapshot " +
                                      entry.path().filename().string() +
                                      ": " + ec.message());
        }
    }

    const PmAudit audit = auditPmDir(crash_dir, "spec", 4);
    if (!audit.ok)
        return fail(name, "offline audit: " + audit.err);
    if (!audit.auditAgrees)
        return fail(name, "inspector and recovery disagree: " +
                              audit.text());

    ServerHandle revived = launchServer(
        cfg, name + "_revived",
        {"--shards=4", "--keys=1024", "--pm-dir=" + pm_dir,
         "--pool-bytes=8388608"},
        err);
    if (revived.pid < 0)
        return fail(name, "restart over corrupt images: " + err);
    SyncClient client;
    if (!client.connectTo(revived.port, err)) {
        stopServer(revived);
        return fail(name, "verify connect: " + err);
    }
    const SweepResult sweep = verifyAcked(client, load);
    client.closeFd();
    stopServer(revived);
    if (sweep.broken)
        return fail(name, "verify sweep broke: " + sweep.err);
    // The crown-jewel invariant: a flipped bit must NEVER be served
    // as a value — every flip has a CRC seal to defeat, so silent
    // corruption reaching a client is an outright failure.
    if (sweep.wrongValue != 0)
        return fail(name, "silently corrupt values served: " +
                              sweep.text());
    // Media corruption may destroy durable state (a flip in a log
    // record's header can make the rest of the chain unwalkable, and
    // recovery rolls back to the last walkable prefix). What the
    // contract demands is *accounting*: any acked write that no
    // longer reads back must be visible in the forensic report as a
    // quarantined segment or an interior-torn chain.
    if (sweep.violations() != 0 &&
        audit.quarantined + audit.torn == 0)
        return fail(name, "acked writes lost with nothing "
                          "quarantined or torn: " +
                              sweep.text() + " | " + audit.text());
    return pass(name, sweep.text() + " | " + audit.text());
}

ScenarioOutcome
scenarioLogExhaustion(const HarnessConfig &cfg)
{
    const std::string name = "log_exhaustion";
    std::string err;
    // A deliberately tiny pool: sustained updates must run the
    // append-only log out of space and trip read-only degraded mode.
    ServerHandle server = launchServer(
        cfg, name, {"--shards=2", "--keys=512", "--pool-bytes=2097152"},
        err);
    if (server.pid < 0)
        return fail(name, "launch: " + err);

    SyncClient client;
    if (!client.connectTo(server.port, err)) {
        stopServer(server);
        return fail(name, "connect: " + err);
    }
    std::uint64_t acked = 0;
    std::uint64_t read_only = 0;
    std::uint64_t payload = 1;
    for (int round = 0; round < 800 && read_only == 0; ++round) {
        const SyncClient::BulkResult r =
            client.bulkPut(1, 512, 256, payload);
        payload += 256;
        acked += r.ok;
        read_only += r.readOnly;
        if (r.broken) {
            stopServer(server);
            return fail(name, "write hammer broke: " + r.err);
        }
    }
    if (read_only == 0) {
        stopServer(server);
        return fail(name, "pool never exhausted after " +
                              std::to_string(acked) + " acked puts");
    }

    // Degraded, not dead: reads must still be served...
    const SyncClient::BulkResult reads = client.bulkGet(1, 512);
    if (reads.broken || reads.io != 0 || reads.otherErr != 0) {
        stopServer(server);
        return fail(name, "reads failing on degraded shard: " +
                              reads.err);
    }
    if (acked > 0 && reads.ok == 0) {
        stopServer(server);
        return fail(name, "acked puts but no readable values");
    }
    // ...and mutations must keep being refused, not wedged.
    const SyncClient::BulkResult probe = client.bulkPut(1, 32, 64, 1);
    if (probe.broken) {
        stopServer(server);
        return fail(name, "post-exhaustion probe broke: " + probe.err);
    }
    if (probe.readOnly == 0) {
        stopServer(server);
        return fail(name, "read-only mode did not stick");
    }
    client.closeFd();
    const bool alive = server.alive();
    stopServer(server);
    if (!alive)
        return fail(name, "server died on exhaustion");
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "acked=%llu firstReadOnlyAfter=%llu reads_ok=%llu "
                  "sticky_readonly=%llu",
                  static_cast<unsigned long long>(acked),
                  static_cast<unsigned long long>(acked),
                  static_cast<unsigned long long>(reads.ok),
                  static_cast<unsigned long long>(probe.readOnly));
    return pass(name, buf);
}

ScenarioOutcome
scenarioSigkill(const HarnessConfig &cfg)
{
    const std::string name = "sigkill";
    const std::string pm_dir = cfg.workdir + "/" + name + "_pm";
    fs::create_directories(pm_dir);
    std::string err;
    ServerHandle server = launchServer(
        cfg, name,
        {"--shards=4", "--keys=2048", "--pm-dir=" + pm_dir,
         "--pool-bytes=16777216"},
        err);
    if (server.pid < 0)
        return fail(name, "launch: " + err);

    // Kill mid-traffic, snapshot the post-crash images for the
    // offline audit, and restart on the SAME port while the load
    // window is still open: the resilient client must ride through
    // the outage on failed re-dials and land a real reconnect once
    // the revived server's listener is back.
    const std::string crash_dir = cfg.workdir + "/" + name + "_crash";
    ServerHandle revived;
    std::string restart_err;
    std::thread killer([&] {
        msleep(1200);
        killServer(server);
        std::error_code ec;
        fs::remove_all(crash_dir, ec);
        fs::create_directories(crash_dir, ec);
        for (const auto &entry : fs::directory_iterator(pm_dir)) {
            fs::copy_file(entry.path(),
                          fs::path(crash_dir) /
                              entry.path().filename(),
                          ec);
            if (ec) {
                restart_err = "snapshot " +
                              entry.path().filename().string() + ": " +
                              ec.message();
                return;
            }
        }
        revived = launchServer(
            cfg, name + "_revived",
            {"--shards=4", "--keys=2048", "--pm-dir=" + pm_dir,
             "--pool-bytes=16777216",
             "--port=" + std::to_string(server.port)},
            restart_err);
    });
    const net::LoadgenResult load = net::runOpenLoop(
        chaosLoadConfig(server.port, cfg.seed, 2048, 12000, 4.0));
    killer.join();
    if (!restart_err.empty() || revived.pid < 0) {
        stopServer(revived);
        return fail(name, "mid-load restart: " + restart_err);
    }
    if (load.aborted) {
        stopServer(revived);
        return fail(name, "load aborted: " + load.error);
    }
    if (load.ackedPuts.empty()) {
        stopServer(revived);
        return fail(name, "no writes acked before the kill");
    }
    // A restart inside the load window must leave a reconnect trace;
    // zero means the client never re-dialed the revived server and
    // the post-restart half of the run proved nothing.
    if (load.reconnects == 0) {
        stopServer(revived);
        return fail(name, "restart left no reconnect trace: " +
                              loadText(load));
    }

    const PmAudit audit = auditPmDir(crash_dir, "spec", 4);
    if (!audit.ok) {
        stopServer(revived);
        return fail(name, "offline audit: " + audit.err);
    }
    if (!audit.auditAgrees) {
        stopServer(revived);
        return fail(name, "inspector and recovery disagree: " +
                              audit.text());
    }

    SyncClient client;
    if (!client.connectTo(revived.port, err)) {
        stopServer(revived);
        return fail(name, "verify connect: " + err);
    }
    const SweepResult sweep = verifyAcked(client, load);
    client.closeFd();
    stopServer(revived);
    if (sweep.broken)
        return fail(name, "verify sweep broke: " + sweep.err);
    // No media faults here, so there is no "accounted" escape hatch:
    // an acked write that recovery lost is a durability bug, full
    // stop.
    if (sweep.violations() != 0 || sweep.ioAccounted != 0)
        return fail(name, "acked writes lost across SIGKILL: " +
                              sweep.text() + " | " + audit.text());
    return pass(name, loadText(load) + " | " + sweep.text() + " | " +
                          audit.text());
}

ScenarioOutcome
scenarioSigstop(const HarnessConfig &cfg)
{
    const std::string name = "sigstop";
    std::string err;
    ServerHandle server =
        launchServer(cfg, name, {"--shards=4", "--keys=1024"}, err);
    if (server.pid < 0)
        return fail(name, "launch: " + err);

    std::thread staller([&server] {
        msleep(800);
        ::kill(server.pid, SIGSTOP);
        msleep(700);
        ::kill(server.pid, SIGCONT);
    });
    const net::LoadgenResult load = net::runOpenLoop(
        chaosLoadConfig(server.port, cfg.seed, 1024, 6000, 2.5));
    staller.join();
    if (load.aborted) {
        stopServer(server);
        return fail(name, "load aborted: " + load.error);
    }
    if (!server.alive())
        return fail(name, "server dead after SIGCONT");
    if (load.acked == 0) {
        stopServer(server);
        return fail(name, "nothing acked");
    }
    // A 700ms stall against 300ms deadlines must surface as timeouts;
    // a run with none means the chaos never landed.
    if (load.timeouts + load.retries == 0) {
        stopServer(server);
        return fail(name, "stall left no timeout/retry trace: " +
                              loadText(load));
    }
    SyncClient client;
    if (!client.connectTo(server.port, err)) {
        stopServer(server);
        return fail(name, "verify connect: " + err);
    }
    const SweepResult sweep = verifyAcked(client, load);
    client.closeFd();
    stopServer(server);
    if (sweep.broken)
        return fail(name, "verify sweep broke: " + sweep.err);
    if (sweep.violations() != 0 || sweep.ioAccounted != 0)
        return fail(name, "acked writes lost across a stall: " +
                              sweep.text());
    return pass(name, loadText(load) + " | " + sweep.text());
}

ScenarioOutcome
scenarioConnReset(const HarnessConfig &cfg)
{
    const std::string name = "conn_reset";
    std::string err;
    ServerHandle server =
        launchServer(cfg, name, {"--shards=2", "--keys=512"}, err);
    if (server.pid < 0)
        return fail(name, "launch: " + err);

    SyncClient writer;
    if (!writer.connectTo(server.port, err)) {
        stopServer(server);
        return fail(name, "connect: " + err);
    }
    const SyncClient::BulkResult seeded = writer.bulkPut(1, 512, 512, 7);
    writer.closeFd();
    if (seeded.broken || seeded.ok != 512) {
        stopServer(server);
        return fail(name, "seeding failed: " + seeded.err);
    }

    auto rawConnect = [&server]() -> int {
        const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd < 0)
            return -1;
        struct timeval tv = {2, 0};
        ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
        struct sockaddr_in addr = {};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(server.port);
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        if (::connect(fd, reinterpret_cast<struct sockaddr *>(&addr),
                      sizeof(addr)) != 0) {
            ::close(fd);
            return -1;
        }
        return fd;
    };

    // Rogue 1: pure garbage — the server must diagnose a protocol
    // error and close, not crash or hang.
    if (const int fd = rawConnect(); fd >= 0) {
        std::uint8_t junk[64];
        std::memset(junk, 0xDE, sizeof(junk));
        (void)::send(fd, junk, sizeof(junk), MSG_NOSIGNAL);
        std::uint8_t buf[64];
        while (::recv(fd, buf, sizeof(buf), 0) > 0) {
        }
        ::close(fd);
    }

    // Rogue 2: an oversized length prefix — must trip the frame cap,
    // not make the server buffer a bogus multi-megabyte frame.
    if (const int fd = rawConnect(); fd >= 0) {
        std::uint8_t huge[8] = {0, 0, 0x20, 0, 0xC5, 1, 2, 0};
        (void)::send(fd, huge, sizeof(huge), MSG_NOSIGNAL);
        std::uint8_t buf[64];
        while (::recv(fd, buf, sizeof(buf), 0) > 0) {
        }
        ::close(fd);
    }

    // Rogue 3 (×5): a well-formed pipeline of GETs answered with a
    // hard RST (SO_LINGER 0) mid-response — the mid-write reset the
    // SIGPIPE/MSG_NOSIGNAL hardening exists for.
    for (int round = 0; round < 5; ++round) {
        const int fd = rawConnect();
        if (fd < 0)
            continue;
        std::vector<std::uint8_t> out;
        std::uint64_t id = 1;
        net::appendHello(out, id++, net::kAnyShard);
        for (int i = 0; i < 1024; ++i)
            net::appendGet(out, id++, 1 + (i % 512));
        (void)::send(fd, out.data(), out.size(), MSG_NOSIGNAL);
        std::uint8_t buf[256];
        (void)::recv(fd, buf, sizeof(buf), 0); // let responses start
        struct linger lg = {1, 0};
        ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
        ::close(fd); // RST while the server is still writing
    }
    msleep(200);

    if (!server.alive())
        return fail(name, "server died under rogue clients; see " +
                              server.logPath);
    SyncClient reader;
    if (!reader.connectTo(server.port, err)) {
        stopServer(server);
        return fail(name, "post-chaos connect: " + err);
    }
    const SyncClient::BulkResult reads = reader.bulkGet(1, 512);
    reader.closeFd();
    stopServer(server);
    if (reads.broken || reads.ok != 512)
        return fail(name, "post-chaos reads degraded (ok=" +
                              std::to_string(reads.ok) + "/512): " +
                              reads.err);
    return pass(name, "seeded=512 rogue_rounds=7 post_reads_ok=512");
}

// ---------------------------------------------------------------------
// Harness main.
// ---------------------------------------------------------------------

struct Scenario
{
    const char *name;
    const char *summary;
    ScenarioOutcome (*fn)(const HarnessConfig &);
};

const Scenario kScenarios[] = {
    {"media_poison", "poisoned-read lines mid-traffic; typed Io, "
                     "acked data accounted",
     scenarioMediaPoison},
    {"media_eio", "write-EIO lines mid-traffic; clean tx aborts",
     scenarioMediaEio},
    {"latent_corruption", "silent bit flips + SIGKILL; CRC quarantine "
                          "and audit agreement",
     scenarioLatentCorruption},
    {"log_exhaustion", "tiny pool; read-only degraded mode, reads "
                       "stay up",
     scenarioLogExhaustion},
    {"sigkill", "SIGKILL + same-port restart mid-load; reconnect, "
                "zero acked writes lost",
     scenarioSigkill},
    {"sigstop", "SIGSTOP/SIGCONT stall; client rides it out on "
                "timeouts/retries",
     scenarioSigstop},
    {"conn_reset", "garbage, oversized frames and mid-response RSTs; "
                   "server unharmed",
     scenarioConnReset},
};

std::string
defaultSpeckv(const char *argv0)
{
    const std::string self = argv0;
    const std::size_t slash = self.find_last_of('/');
    if (slash == std::string::npos)
        return "./speckv";
    return self.substr(0, slash) + "/speckv";
}

} // namespace

int
main(int argc, char **argv)
{
    std::signal(SIGPIPE, SIG_IGN); // rogue clients write into RSTs

    HarnessConfig cfg;
    cfg.speckv = defaultSpeckv(argv[0]);
    std::vector<std::string> selected;
    std::string json_path;
    std::string metrics_out;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&](const char *prefix) -> const char * {
            const std::size_t n = std::string(prefix).size();
            return arg.rfind(prefix, 0) == 0 ? arg.c_str() + n
                                             : nullptr;
        };
        if (const char *v = value("--scenario=")) {
            std::string list = v;
            std::size_t pos = 0;
            while (pos != std::string::npos) {
                const std::size_t comma = list.find(',', pos);
                selected.push_back(list.substr(
                    pos, comma == std::string::npos ? comma
                                                    : comma - pos));
                pos = comma == std::string::npos ? comma : comma + 1;
            }
        } else if (const char *v = value("--seed="))
            cfg.seed = std::strtoull(v, nullptr, 10);
        else if (const char *v = value("--speckv="))
            cfg.speckv = v;
        else if (const char *v = value("--workdir="))
            cfg.workdir = v;
        else if (const char *v = value("--json="))
            json_path = v;
        else if (const char *v = value("--metrics-out="))
            metrics_out = v;
        else if (arg == "--keep")
            cfg.keep = true;
        else if (const char *v = value("--inspect=")) {
            // Debug aid: dump the offline inspection of a pm dir a
            // scenario left behind (raw .pm images, no file header).
            for (unsigned s = 0;; ++s) {
                const std::string path = std::string(v) + "/shard-" +
                                         std::to_string(s) + ".pm";
                std::ifstream f(path, std::ios::binary);
                if (!f)
                    break;
                std::vector<std::uint8_t> image(
                    (std::istreambuf_iterator<char>(f)),
                    std::istreambuf_iterator<char>());
                const auto dev = pmem::deviceFromImage(image);
                std::printf("%s\n",
                            forensic::inspectImage(*dev, 4, path)
                                .toText()
                                .c_str());
            }
            return 0;
        }
        else if (arg == "--list") {
            for (const Scenario &s : kScenarios)
                std::printf("%-18s %s\n", s.name, s.summary);
            return 0;
        } else
            SPECPMT_FATAL("unknown argument: %s", arg.c_str());
    }

    if (::access(cfg.speckv.c_str(), X_OK) != 0)
        SPECPMT_FATAL("speckv binary not executable at %s "
                      "(use --speckv=)",
                      cfg.speckv.c_str());

    bool made_workdir = false;
    if (cfg.workdir.empty()) {
        char tmpl[] = "/tmp/specchaos.XXXXXX";
        if (::mkdtemp(tmpl) == nullptr)
            SPECPMT_FATAL("mkdtemp: %s", std::strerror(errno));
        cfg.workdir = tmpl;
        made_workdir = true;
    } else {
        fs::create_directories(cfg.workdir);
    }

    if (selected.empty())
        for (const Scenario &s : kScenarios)
            selected.push_back(s.name);

    std::printf("specchaos: seed=%llu workdir=%s speckv=%s\n",
                static_cast<unsigned long long>(cfg.seed),
                cfg.workdir.c_str(), cfg.speckv.c_str());

    std::vector<ScenarioOutcome> outcomes;
    for (const std::string &want : selected) {
        const Scenario *scenario = nullptr;
        for (const Scenario &s : kScenarios)
            if (want == s.name)
                scenario = &s;
        if (scenario == nullptr)
            SPECPMT_FATAL("unknown scenario %s (try --list)",
                          want.c_str());
        std::printf("[%s] %s\n", scenario->name, scenario->summary);
        std::fflush(stdout);
        const auto start = std::chrono::steady_clock::now();
        ScenarioOutcome outcome = scenario->fn(cfg);
        outcome.seconds = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - start)
                              .count();
        std::printf("[%s] %s (%.1fs) %s\n", outcome.name.c_str(),
                    outcome.pass ? "PASS" : "FAIL", outcome.seconds,
                    outcome.detail.c_str());
        std::fflush(stdout);
        outcomes.push_back(std::move(outcome));
    }

    // The harness process hosts the resilient load generator, so its
    // global registry carries the client-side chaos counters
    // (specpmt_loadgen_retries/timeouts/reconnects/busy) accumulated
    // across every scenario — dump them for `specstat check` gates.
    if (!metrics_out.empty() &&
        !obs::Registry::global().writePrometheus(metrics_out))
        SPECPMT_FATAL("cannot write %s", metrics_out.c_str());

    bool all_pass = true;
    std::printf("\nspecchaos matrix:\n");
    for (const ScenarioOutcome &o : outcomes) {
        std::printf("  %-18s %s\n", o.name.c_str(),
                    o.pass ? "PASS" : "FAIL");
        all_pass = all_pass && o.pass;
    }

    if (!json_path.empty()) {
        FILE *f = std::fopen(json_path.c_str(), "w");
        if (f == nullptr)
            SPECPMT_FATAL("cannot write %s", json_path.c_str());
        std::fprintf(f, "{\n  \"seed\": %llu,\n  \"scenarios\": [\n",
                     static_cast<unsigned long long>(cfg.seed));
        for (std::size_t i = 0; i < outcomes.size(); ++i) {
            std::string detail = outcomes[i].detail;
            for (char &c : detail)
                if (c == '"' || c == '\\')
                    c = '\'';
            std::fprintf(
                f,
                "    {\"name\": \"%s\", \"pass\": %s, "
                "\"seconds\": %.1f, \"detail\": \"%s\"}%s\n",
                outcomes[i].name.c_str(),
                outcomes[i].pass ? "true" : "false",
                outcomes[i].seconds, detail.c_str(),
                i + 1 == outcomes.size() ? "" : ",");
        }
        std::fprintf(f, "  ]\n}\n");
        std::fclose(f);
    }

    if (all_pass && made_workdir && !cfg.keep) {
        std::error_code ec;
        fs::remove_all(cfg.workdir, ec);
    } else if (!all_pass) {
        std::printf("artifacts kept under %s\n", cfg.workdir.c_str());
    }
    std::printf("specchaos: %s\n", all_pass ? "OK" : "FAIL");
    return all_pass ? 0 : 1;
}
