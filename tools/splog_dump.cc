/**
 * @file
 * splog_dump: fsck-style inspector for speculative log chains.
 *
 * Builds a demonstration pool (or takes over after an injected crash
 * with --crash), then walks every thread's log chain and prints block
 * structure, per-segment metadata, checksum status, and aggregate
 * statistics — the kind of offline debugging tool a persistent
 * memory deployment needs when a pool misbehaves.
 *
 * Usage:  ./build/tools/splog_dump [--crash]
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "core/spec_tx.hh"
#include "core/splog_format.hh"
#include "pmem/pmem_device.hh"
#include "pmem/pmem_pool.hh"

using namespace specpmt;

namespace
{

/** Walk and print one thread's chain; returns segment count. */
unsigned
dumpChain(const pmem::PmemDevice &dev, PmOff head, unsigned tid)
{
    std::printf("thread %u: log head @ 0x%llx\n", tid,
                (unsigned long long)head);
    if (head == kPmNull) {
        std::printf("  (no log)\n");
        return 0;
    }

    // Block-level view.
    PmOff block = head;
    unsigned block_index = 0;
    while (block != kPmNull) {
        const auto header = dev.loadT<core::BlockHeader>(block);
        std::printf("  block %u @ 0x%llx  capacity=%llu  next=0x%llx\n",
                    block_index++, (unsigned long long)block,
                    (unsigned long long)header.capacity,
                    (unsigned long long)header.next);
        if (header.capacity < sizeof(core::BlockHeader) ||
            header.capacity > dev.size()) {
            std::printf("    !! implausible capacity (torn header)\n");
            break;
        }
        block = header.next;
        if (block_index > 10000) {
            std::printf("    !! chain too long, aborting walk\n");
            break;
        }
    }

    // Segment-level view.
    unsigned segments = 0;
    std::uint64_t entries = 0;
    std::uint64_t payload_bytes = 0;
    const auto walk = core::walkChain(
        dev, head, [&](const core::DecodedSegment &seg) {
            ++segments;
            entries += seg.entries.size();
            for (const auto &entry : seg.entries)
                payload_bytes += entry.size;
            const char *kind = (seg.flags & core::kSegUndo)   ? "undo"
                               : (seg.flags & core::kSegPage) ? "page"
                               : seg.final                    ? "commit"
                                                              : "part";
            if (segments <= 20) {
                std::printf("  seg @ 0x%llx  %-6s ts=%llu  "
                            "entries=%zu  bytes=%u\n",
                            (unsigned long long)seg.pos, kind,
                            (unsigned long long)seg.timestamp,
                            seg.entries.size(), seg.sizeBytes);
            }
        });
    if (segments > 20)
        std::printf("  ... (%u more segments)\n", segments - 20);
    std::printf("  walk end: %s  tail @ 0x%llx\n",
                walk.end == core::WalkEnd::CleanTail
                    ? "clean tail"
                    : "TORN RECORD (crash point)",
                (unsigned long long)walk.tailPos);
    std::printf("  totals: %u segments, %llu entries, %llu payload "
                "bytes\n",
                segments, (unsigned long long)entries,
                (unsigned long long)payload_bytes);
    return segments;
}

} // namespace

int
main(int argc, char **argv)
{
    const bool crash = argc > 1 && std::strcmp(argv[1], "--crash") == 0;

    pmem::PmemDevice dev(64u << 20);
    pmem::PmemPool pool(dev);
    core::SpecTxConfig config;
    config.backgroundReclaim = false;
    core::SpecTx tx(pool, 1, config);

    // Build a small history: init + updates + one in-flight tx.
    const PmOff data = pool.alloc(1024);
    tx.txBegin(0);
    for (unsigned i = 0; i < 16; ++i)
        tx.txStoreT<std::uint64_t>(0, data + i * 8, i);
    tx.txCommit(0);
    for (unsigned round = 0; round < 5; ++round) {
        tx.txBegin(0);
        tx.txStoreT<std::uint64_t>(0, data + (round % 16) * 8,
                                   round * 100);
        tx.txCommit(0);
    }
    if (crash) {
        tx.txBegin(0);
        tx.txStoreT<std::uint64_t>(0, data, 0xDEAD);
        // Simulate the power failure mid-transaction; the dump below
        // reads the crash image, as an offline tool would.
        dev.simulateCrash(pmem::CrashPolicy::random(1, 0.5));
    }

    std::printf("== splog_dump: %s pool ==\n",
                crash ? "crashed" : "healthy");
    dumpChain(dev, pool.getRoot(txn::logHeadSlot(0)), 0);
    return 0;
}
