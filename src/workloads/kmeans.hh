/**
 * @file
 * kmeans: clustering analog. STAMP's kmeans assigns points to their
 * nearest centroid (pure computation) and transactionally accumulates
 * each point into the chosen centroid: one float per dimension plus a
 * membership count (Table 2: ~101 B and ~27 updates per transaction
 * with d=24 dimensions). The low-contention configuration uses more
 * clusters — and therefore more distance computation per point — than
 * the high-contention one, which is why kmeans-high benefits more
 * from eliding data persistence (Section 7.3: "kmeans-high has less
 * computation and therefore observes higher speedup").
 */

#ifndef SPECPMT_WORKLOADS_KMEANS_HH
#define SPECPMT_WORKLOADS_KMEANS_HH

#include "workloads/workload.hh"

namespace specpmt::workloads
{

/** See file comment. */
class KmeansWorkload : public Workload
{
  public:
    /**
     * @param high_contention  true = kmeans-high (fewer clusters).
     */
    KmeansWorkload(const WorkloadConfig &config, bool high_contention)
        : Workload(config), high_(high_contention),
          clusters_(high_contention ? 16 : 40)
    {}

    const char *
    name() const override
    {
        return high_ ? "kmeans-high" : "kmeans-low";
    }

    void setup(txn::TxRuntime &rt) override;
    void run(txn::TxRuntime &rt) override;
    bool verify(txn::TxRuntime &rt) override;
    std::uint64_t digest(txn::TxRuntime &rt) override;
    bool verifyStructural(txn::TxRuntime &rt) override;

  private:
    static constexpr unsigned kDims = 24;
    static constexpr unsigned kIterations = 2;

    /** Bytes of one centroid record: kDims floats + u64 count. */
    static constexpr std::size_t
    centroidBytes()
    {
        return kDims * sizeof(float) + sizeof(std::uint64_t);
    }

    PmOff centroidOff(unsigned cluster) const
    {
        return centroidsOff_ + cluster * centroidBytes();
    }

    bool high_;
    unsigned clusters_;
    PmOff centroidsOff_ = kPmNull;
    PmOff pointsOff_ = kPmNull; ///< input points (PM-resident heap)
    std::uint64_t numPoints_ = 0;
    std::uint64_t accumulated_ = 0; ///< points folded in (verify)
};

} // namespace specpmt::workloads

#endif // SPECPMT_WORKLOADS_KMEANS_HH
