#include "workloads/vacation.hh"

#include <algorithm>

#include "common/hash.hh"

namespace specpmt::workloads
{

void
VacationWorkload::setup(txn::TxRuntime &rt)
{
    auto &pool = rt.pool();
    resourcesOff_ = pool.alloc(kTables * kItems * sizeof(Resource));
    customersOff_ = pool.alloc(kCustomers * sizeof(Customer));
    pool.setRoot(txn::kAppRootSlotBase, resourcesOff_);

    // Stock every resource with a deterministic inventory.
    Rng stock_rng(config_.seed ^ 0xACAu);
    for (unsigned table = 0; table < kTables; ++table) {
        for (unsigned base = 0; base < kItems; base += 128) {
            rt.txBegin(0);
            for (unsigned item = base; item < base + 128; ++item) {
                const std::uint64_t stock = 120 + stock_rng.below(160);
                storeT<std::uint64_t>(rt, resourceOff(table, item),
                                      stock);
                storeT<std::uint64_t>(rt, resourceOff(table, item) + 8,
                                      stock);
                storeT<std::uint64_t>(rt, resourceOff(table, item) + 16,
                                      0);
            }
            rt.txCommit(0);
        }
    }
    for (unsigned base = 0; base < kCustomers; base += 256) {
        rt.txBegin(0);
        for (unsigned customer = base; customer < base + 256;
             ++customer) {
            storeT<std::uint64_t>(rt, customerOff(customer), 0);
            storeT<std::uint64_t>(rt, customerOff(customer) + 8, 0);
        }
        rt.txCommit(0);
    }
}

void
VacationWorkload::run(txn::TxRuntime &rt)
{
    const std::uint64_t sessions = scaled(25000);
    const unsigned queries = high_ ? 4 : 2;
    // High contention narrows the item range (STAMP's -q parameter).
    const unsigned range = high_ ? kItems / 4 : kItems;

    for (std::uint64_t s = 0; s < sessions; ++s) {
        const auto customer =
            static_cast<unsigned>(rng_.below(kCustomers));

        rt.compute(0, high_ ? 1900 : 1600); // request parsing + tree lookups

        rt.txBegin(0);
        std::uint64_t billed = 0;
        std::uint64_t booked = 0;
        for (unsigned q = 0; q < queries; ++q) {
            const auto table =
                static_cast<unsigned>(rng_.below(kTables));
            const auto item = static_cast<unsigned>(rng_.below(range));
            const PmOff free_off = resourceOff(table, item) + 8;
            const auto free_now = loadT<std::uint64_t>(rt, free_off);
            if (free_now > 0) {
                storeT<std::uint64_t>(rt, free_off, free_now - 1);
                // The reservation record for this unit.
                const PmOff reserved_off =
                    resourceOff(table, item) + 16;
                storeT<std::uint64_t>(
                    rt, reserved_off,
                    loadT<std::uint64_t>(rt, reserved_off) + 1);
                billed += 50 + item % 100;
                ++booked;
            }
        }
        if (booked > 0) {
            const PmOff bill_off = customerOff(customer);
            storeT<std::uint64_t>(
                rt, bill_off, loadT<std::uint64_t>(rt, bill_off) +
                                  billed);
            storeT<std::uint64_t>(
                rt, bill_off + 8,
                loadT<std::uint64_t>(rt, bill_off + 8) + booked);
            reservationsMade_ += booked;
        }
        rt.txCommit(0);
    }
}

bool
VacationWorkload::verify(txn::TxRuntime &rt)
{
    // Conservation: seats taken from inventory equal seats held by
    // customers equal the volatile tally.
    std::uint64_t taken = 0;
    for (unsigned table = 0; table < kTables; ++table) {
        for (unsigned item = 0; item < kItems; ++item) {
            const auto total =
                loadT<std::uint64_t>(rt, resourceOff(table, item));
            const auto free_now =
                loadT<std::uint64_t>(rt, resourceOff(table, item) + 8);
            const auto reserved =
                loadT<std::uint64_t>(rt, resourceOff(table, item) + 16);
            if (free_now > total || reserved != total - free_now)
                return false;
            taken += total - free_now;
        }
    }
    std::uint64_t held = 0;
    for (unsigned customer = 0; customer < kCustomers; ++customer)
        held += loadT<std::uint64_t>(rt, customerOff(customer) + 8);
    return taken == held && held == reservationsMade_;
}

bool
VacationWorkload::verifyStructural(txn::TxRuntime &rt)
{
    // Conservation at any committed boundary: units leave inventory,
    // enter the reservation ledger, and show up in customer counts
    // within one transaction.
    std::uint64_t taken = 0;
    for (unsigned table = 0; table < kTables; ++table) {
        for (unsigned item = 0; item < kItems; ++item) {
            const auto total =
                loadT<std::uint64_t>(rt, resourceOff(table, item));
            const auto free_now =
                loadT<std::uint64_t>(rt, resourceOff(table, item) + 8);
            const auto reserved =
                loadT<std::uint64_t>(rt, resourceOff(table, item) + 16);
            if (free_now > total || reserved != total - free_now)
                return false;
            taken += reserved;
        }
    }
    std::uint64_t held = 0;
    for (unsigned customer = 0; customer < kCustomers; ++customer)
        held += loadT<std::uint64_t>(rt, customerOff(customer) + 8);
    return taken == held;
}

std::uint64_t
VacationWorkload::digest(txn::TxRuntime &rt)
{
    std::uint64_t hash = 0;
    for (unsigned table = 0; table < kTables; ++table) {
        for (unsigned item = 0; item < kItems; ++item) {
            hash = hashCombine(
                hash,
                loadT<std::uint64_t>(rt, resourceOff(table, item) + 8));
        }
    }
    for (unsigned customer = 0; customer < kCustomers; ++customer) {
        hash = hashCombine(hash,
                           loadT<std::uint64_t>(rt,
                                                customerOff(customer)));
        hash = hashCombine(
            hash, loadT<std::uint64_t>(rt, customerOff(customer) + 8));
    }
    return hash;
}

} // namespace specpmt::workloads
