#include "workloads/yada.hh"

#include <algorithm>

#include "common/hash.hh"

namespace specpmt::workloads
{

void
YadaWorkload::setup(txn::TxRuntime &rt)
{
    auto &pool = rt.pool();
    meshOff_ = pool.alloc(kTriangles * sizeof(Triangle));
    refinedOff_ = pool.alloc(sizeof(std::uint64_t));
    pool.setRoot(txn::kAppRootSlotBase, meshOff_);

    Rng mesh_rng(config_.seed ^ 0xDADAu);
    for (unsigned base = 0; base < kTriangles; base += 128) {
        rt.txBegin(0);
        for (unsigned t = base; t < base + 128; ++t) {
            Triangle triangle;
            triangle.quality =
                static_cast<std::uint32_t>(10 + mesh_rng.below(90));
            triangle.generation = 0;
            triangle.vertexHash = mesh_rng.next();
            storeT(rt, triangleOff(t), triangle);
        }
        rt.txCommit(0);
    }
    rt.txBegin(0);
    storeT<std::uint64_t>(rt, refinedOff_, 0);
    rt.txCommit(0);
}

void
YadaWorkload::run(txn::TxRuntime &rt)
{
    const std::uint64_t work_items = scaled(8000);
    for (std::uint64_t w = 0; w < work_items; ++w) {
        const auto center =
            static_cast<unsigned>(rng_.below(kTriangles));

        // Cavity computation: geometric predicates over the
        // neighbourhood (pure compute, fairly heavy in yada).
        rt.compute(0, 2600);

        rt.txBegin(0);
        const auto bad = loadT<Triangle>(rt, triangleOff(center));
        if (bad.quality < 85) {
            // Retriangulate: rewrite the cavity around the element.
            for (unsigned n = 0; n < kCavity; ++n) {
                const unsigned index =
                    (center + n * 37) % kTriangles;
                Triangle neighbour =
                    loadT<Triangle>(rt, triangleOff(index));
                neighbour.quality = std::min<std::uint32_t>(
                    100, neighbour.quality + 10);
                neighbour.generation += 1;
                neighbour.vertexHash =
                    hashCombine(neighbour.vertexHash, center);
                storeT(rt, triangleOff(index), neighbour);
                ++cavityWrites_;
            }
            storeT<std::uint64_t>(
                rt, refinedOff_,
                loadT<std::uint64_t>(rt, refinedOff_) + 1);
            ++refinements_;
        }
        rt.txCommit(0);
    }
}

bool
YadaWorkload::verify(txn::TxRuntime &rt)
{
    if (loadT<std::uint64_t>(rt, refinedOff_) != refinements_)
        return false;
    // Generations count exactly the cavity rewrites that happened.
    std::uint64_t generations = 0;
    for (unsigned t = 0; t < kTriangles; ++t) {
        const auto triangle = loadT<Triangle>(rt, triangleOff(t));
        if (triangle.quality > 100)
            return false;
        generations += triangle.generation;
    }
    return generations == cavityWrites_;
}

bool
YadaWorkload::verifyStructural(txn::TxRuntime &rt)
{
    // Each refinement transaction bumps exactly kCavity generations
    // and the refined counter once.
    std::uint64_t generations = 0;
    for (unsigned t = 0; t < kTriangles; ++t) {
        const auto triangle = loadT<Triangle>(rt, triangleOff(t));
        if (triangle.quality > 100)
            return false;
        generations += triangle.generation;
    }
    return generations ==
           loadT<std::uint64_t>(rt, refinedOff_) * kCavity;
}

std::uint64_t
YadaWorkload::digest(txn::TxRuntime &rt)
{
    std::uint64_t hash = loadT<std::uint64_t>(rt, refinedOff_);
    for (unsigned t = 0; t < kTriangles; ++t) {
        const auto triangle = loadT<Triangle>(rt, triangleOff(t));
        hash = hashCombine(hash, triangle.quality);
        hash = hashCombine(hash, triangle.generation);
        hash = hashCombine(hash, triangle.vertexHash);
    }
    return hash;
}

} // namespace specpmt::workloads
