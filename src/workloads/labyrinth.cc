#include "workloads/labyrinth.hh"

#include <algorithm>
#include <deque>
#include <map>
#include <set>

#include "common/hash.hh"

namespace specpmt::workloads
{

void
LabyrinthWorkload::setup(txn::TxRuntime &rt)
{
    auto &pool = rt.pool();
    gridOff_ = pool.alloc(kCells * sizeof(std::uint64_t));
    pool.setRoot(txn::kAppRootSlotBase, gridOff_);

    constexpr unsigned kChunk = 4096;
    std::vector<std::uint8_t> zeros(kChunk, 0);
    for (std::size_t done = 0; done < kCells * sizeof(std::uint64_t);
         done += kChunk) {
        const std::size_t n = std::min<std::size_t>(
            kChunk, kCells * sizeof(std::uint64_t) - done);
        rt.txBegin(0);
        rt.txStore(0, gridOff_ + done, zeros.data(), n);
        rt.txCommit(0);
    }
}

std::vector<unsigned>
LabyrinthWorkload::planPath(const std::vector<std::uint64_t> &grid,
                            unsigned src, unsigned dst,
                            std::uint64_t *expanded) const
{
    // Plain BFS over free cells of the 3D grid (occupied cells block
    // the route; the extra layers let wires cross, as in STAMP).
    std::vector<int> parent(kCells, -1);
    std::deque<unsigned> frontier;
    frontier.push_back(src);
    parent[src] = static_cast<int>(src);
    *expanded = 0;
    constexpr unsigned kPlane = kSide * kSide;

    while (!frontier.empty()) {
        const unsigned cell = frontier.front();
        frontier.pop_front();
        ++*expanded;
        if (cell == dst)
            break;
        const unsigned x = cell % kSide;
        const unsigned y = (cell / kSide) % kSide;
        const unsigned z = cell / kPlane;
        const int neighbours[6] = {
            x + 1 < kSide ? static_cast<int>(cell + 1) : -1,
            x > 0 ? static_cast<int>(cell - 1) : -1,
            y + 1 < kSide ? static_cast<int>(cell + kSide) : -1,
            y > 0 ? static_cast<int>(cell - kSide) : -1,
            z + 1 < kLayers ? static_cast<int>(cell + kPlane) : -1,
            z > 0 ? static_cast<int>(cell - kPlane) : -1,
        };
        for (int next : neighbours) {
            if (next < 0 || parent[next] != -1 || grid[next] != 0)
                continue;
            parent[next] = static_cast<int>(cell);
            frontier.push_back(static_cast<unsigned>(next));
        }
    }
    std::vector<unsigned> path;
    if (parent[dst] == -1)
        return path;
    for (unsigned cell = dst;; cell = static_cast<unsigned>(
                                   parent[cell])) {
        path.push_back(cell);
        if (cell == src)
            break;
    }
    std::reverse(path.begin(), path.end());
    return path;
}

void
LabyrinthWorkload::run(txn::TxRuntime &rt)
{
    const std::uint64_t requests = scaled(320);
    std::vector<std::uint64_t> snapshot(kCells);
    for (std::uint64_t request = 0; request < requests; ++request) {
        // Terminals sit near opposite edges of the bottom layer, as
        // routing benchmarks place them, giving long wires.
        const auto src = static_cast<unsigned>(
            rng_.below(kSide / 16) + kSide * rng_.below(kSide));
        const auto dst = static_cast<unsigned>(
            (kSide - 1 - rng_.below(kSide / 16)) +
            kSide * rng_.below(kSide));

        rt.txBegin(0);
        // Snapshot the shared grid into private memory — labyrinth's
        // signature bulk read.
        rt.txLoad(0, gridOff_, snapshot.data(),
                  kCells * sizeof(std::uint64_t));
        if (snapshot[src] != 0 || snapshot[dst] != 0 || src == dst) {
            rt.txCommit(0);
            continue;
        }

        std::uint64_t expanded = 0;
        const auto path = planPath(snapshot, src, dst, &expanded);
        // Route planning dominates labyrinth's runtime.
        rt.compute(0, 2 * expanded / 3);

        if (!path.empty()) {
            ++pathsRouted_;
            for (unsigned cell : path) {
                storeT<std::uint64_t>(rt, cellOff(cell), pathsRouted_);
                ++cellsClaimed_;
            }
        }
        rt.txCommit(0);
    }
}

bool
LabyrinthWorkload::verify(txn::TxRuntime &rt)
{
    // Every claimed cell carries a valid path id, and the number of
    // claimed cells matches the tally (paths never overlap).
    std::uint64_t claimed = 0;
    for (unsigned cell = 0; cell < kCells; ++cell) {
        const auto id = loadT<std::uint64_t>(rt, cellOff(cell));
        if (id > pathsRouted_)
            return false;
        if (id != 0)
            ++claimed;
    }
    return claimed == cellsClaimed_;
}

bool
LabyrinthWorkload::verifyStructural(txn::TxRuntime &rt)
{
    // A path is claimed atomically: the cells of every id must form
    // one connected component of the 3D grid.
    std::vector<std::uint64_t> grid(kCells);
    rt.txLoad(0, gridOff_, grid.data(), kCells * sizeof(std::uint64_t));

    std::map<std::uint64_t, std::vector<unsigned>> paths;
    for (unsigned cell = 0; cell < kCells; ++cell) {
        if (grid[cell] != 0)
            paths[grid[cell]].push_back(cell);
    }
    constexpr unsigned kPlane = kSide * kSide;
    for (const auto &[id, cells] : paths) {
        std::set<unsigned> remaining(cells.begin(), cells.end());
        std::deque<unsigned> frontier{cells.front()};
        remaining.erase(cells.front());
        while (!frontier.empty()) {
            const unsigned cell = frontier.front();
            frontier.pop_front();
            const unsigned x = cell % kSide;
            const unsigned y = (cell / kSide) % kSide;
            const unsigned z = cell / kPlane;
            const int neighbours[6] = {
                x + 1 < kSide ? static_cast<int>(cell + 1) : -1,
                x > 0 ? static_cast<int>(cell - 1) : -1,
                y + 1 < kSide ? static_cast<int>(cell + kSide) : -1,
                y > 0 ? static_cast<int>(cell - kSide) : -1,
                z + 1 < kLayers ? static_cast<int>(cell + kPlane) : -1,
                z > 0 ? static_cast<int>(cell - kPlane) : -1,
            };
            for (int next : neighbours) {
                if (next >= 0 &&
                    remaining.erase(static_cast<unsigned>(next))) {
                    frontier.push_back(static_cast<unsigned>(next));
                }
            }
        }
        if (!remaining.empty())
            return false; // a torn (disconnected) path
    }
    return true;
}

std::uint64_t
LabyrinthWorkload::digest(txn::TxRuntime &rt)
{
    std::uint64_t hash = 0;
    for (unsigned cell = 0; cell < kCells; ++cell)
        hash = hashCombine(hash, loadT<std::uint64_t>(rt,
                                                      cellOff(cell)));
    return hash;
}

} // namespace specpmt::workloads
