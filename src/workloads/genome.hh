/**
 * @file
 * genome: gene sequencing analog. STAMP's genome deduplicates DNA
 * segments in a shared hash set, then links unique segments into a
 * sequence by overlap matching. Transactions are tiny (Table 2:
 * 7.2 B written per transaction on average, ~2.9 updates) because
 * most of them are duplicate probes that write nothing, and the
 * writes that do happen are a hash-set key insert or a small link
 * update.
 */

#ifndef SPECPMT_WORKLOADS_GENOME_HH
#define SPECPMT_WORKLOADS_GENOME_HH

#include "workloads/workload.hh"

namespace specpmt::workloads
{

/** See file comment. */
class GenomeWorkload : public Workload
{
  public:
    explicit GenomeWorkload(const WorkloadConfig &config)
        : Workload(config)
    {}

    const char *name() const override { return "genome"; }

    void setup(txn::TxRuntime &rt) override;
    void run(txn::TxRuntime &rt) override;
    bool verify(txn::TxRuntime &rt) override;
    std::uint64_t digest(txn::TxRuntime &rt) override;
    bool verifyStructural(txn::TxRuntime &rt) override;

  private:
    /** One hash-set slot: the segment key (0 = empty). */
    static constexpr unsigned kBuckets = 1u << 15;
    /** Segment keys are drawn from a universe this many times the
     * insert count, giving STAMP-like duplicate rates. */
    static constexpr unsigned kUniverseFactor = 2;

    PmOff keysOff_ = kPmNull;   ///< u64[kBuckets]
    PmOff linksOff_ = kPmNull;  ///< u32[kBuckets] overlap links
    PmOff flagsOff_ = kPmNull;  ///< u8[kBuckets] visited marks
    PmOff positionsOff_ = kPmNull; ///< u64[kBuckets] sequence offsets
    std::uint64_t inserted_ = 0; ///< volatile tally for verify()
    std::uint64_t linked_ = 0;

    /** Probe for @p key; returns bucket index (match or empty). */
    unsigned probe(txn::TxRuntime &rt, std::uint64_t key);
};

} // namespace specpmt::workloads

#endif // SPECPMT_WORKLOADS_GENOME_HH
