/**
 * @file
 * intruder: network intrusion detection analog. STAMP's intruder
 * reassembles packet fragments from a shared queue into flows held in
 * a dictionary, then scans completed flows. Transactions are small
 * (Table 2: ~20.5 B/tx, ~4.6 updates): insert a fragment's payload,
 * update the flow's reassembly state, and occasionally retire a
 * completed flow.
 */

#ifndef SPECPMT_WORKLOADS_INTRUDER_HH
#define SPECPMT_WORKLOADS_INTRUDER_HH

#include "workloads/workload.hh"

namespace specpmt::workloads
{

/** See file comment. */
class IntruderWorkload : public Workload
{
  public:
    explicit IntruderWorkload(const WorkloadConfig &config)
        : Workload(config)
    {}

    const char *name() const override { return "intruder"; }

    void setup(txn::TxRuntime &rt) override;
    void run(txn::TxRuntime &rt) override;
    bool verify(txn::TxRuntime &rt) override;
    std::uint64_t digest(txn::TxRuntime &rt) override;
    bool verifyStructural(txn::TxRuntime &rt) override;

  private:
    static constexpr unsigned kSlots = 1u << 14; ///< flow table slots
    static constexpr unsigned kFlowLen = 6;      ///< fragments per flow

    struct FlowEntry
    {
        std::uint64_t key;      ///< flow id, 0 = empty
        std::uint64_t mask;     ///< received-fragment bitmap
        std::uint64_t lastSeen; ///< arrival index of newest fragment
        std::uint64_t bytes;    ///< accumulated payload bytes
    };

    PmOff flowsOff_ = kPmNull;   ///< FlowEntry[kSlots]
    PmOff payloadOff_ = kPmNull; ///< u16[kSlots][kFlowLen]
    PmOff doneOff_ = kPmNull;    ///< u64 completed-flow counter
    std::uint64_t completed_ = 0;

    unsigned probe(txn::TxRuntime &rt, std::uint64_t key);
};

} // namespace specpmt::workloads

#endif // SPECPMT_WORKLOADS_INTRUDER_HH
