/**
 * @file
 * ssca2: scalable synthetic compact application #2 analog. STAMP's
 * ssca2 kernel 1 constructs a large directed multigraph from an edge
 * stream; each transaction appends one edge to a node's adjacency
 * array and bumps its degree — tiny writes (Table 2: 16 B/tx, ~4
 * updates) over a large memory footprint, which is what stresses
 * per-update fences in undo logging.
 */

#ifndef SPECPMT_WORKLOADS_SSCA2_HH
#define SPECPMT_WORKLOADS_SSCA2_HH

#include "workloads/workload.hh"

namespace specpmt::workloads
{

/** See file comment. */
class Ssca2Workload : public Workload
{
  public:
    explicit Ssca2Workload(const WorkloadConfig &config)
        : Workload(config)
    {}

    const char *name() const override { return "ssca2"; }

    void setup(txn::TxRuntime &rt) override;
    void run(txn::TxRuntime &rt) override;
    bool verify(txn::TxRuntime &rt) override;
    std::uint64_t digest(txn::TxRuntime &rt) override;
    bool verifyStructural(txn::TxRuntime &rt) override;

  private:
    static constexpr unsigned kNodes = 1u << 13;
    static constexpr unsigned kCapacity = 32; ///< adjacency slots/node

    PmOff degreeOff_ = kPmNull;  ///< u64[kNodes]
    PmOff adjOff_ = kPmNull;     ///< u64[kNodes][kCapacity]
    PmOff rdegreeOff_ = kPmNull; ///< transpose graph degrees
    PmOff radjOff_ = kPmNull;    ///< transpose adjacency
    std::uint64_t insertedEdges_ = 0;
    std::uint64_t insertedRedges_ = 0;
};

} // namespace specpmt::workloads

#endif // SPECPMT_WORKLOADS_SSCA2_HH
