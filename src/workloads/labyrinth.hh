/**
 * @file
 * labyrinth: maze routing analog. STAMP's labyrinth routes wires
 * through a shared 3D grid: each transaction snapshots the grid,
 * plans a shortest path on the private copy (heavy computation), and
 * claims the path's cells. Transactions are rare but huge (Table 2:
 * only ~1k transactions averaging ~1.4 KB of writes each).
 */

#ifndef SPECPMT_WORKLOADS_LABYRINTH_HH
#define SPECPMT_WORKLOADS_LABYRINTH_HH

#include <vector>

#include "workloads/workload.hh"

namespace specpmt::workloads
{

/** See file comment. */
class LabyrinthWorkload : public Workload
{
  public:
    explicit LabyrinthWorkload(const WorkloadConfig &config)
        : Workload(config)
    {}

    const char *name() const override { return "labyrinth"; }

    void setup(txn::TxRuntime &rt) override;
    void run(txn::TxRuntime &rt) override;
    bool verify(txn::TxRuntime &rt) override;
    std::uint64_t digest(txn::TxRuntime &rt) override;
    bool verifyStructural(txn::TxRuntime &rt) override;

  private:
    static constexpr unsigned kSide = 128;  ///< x/y extent
    static constexpr unsigned kLayers = 4;  ///< z extent (crossings)
    static constexpr unsigned kCells = kSide * kSide * kLayers;

    PmOff
    cellOff(unsigned cell) const
    {
        return gridOff_ + cell * sizeof(std::uint64_t);
    }

    /**
     * Breadth-first route on a volatile grid snapshot.
     * @return The path cells from src to dst, empty if unroutable.
     */
    std::vector<unsigned> planPath(const std::vector<std::uint64_t> &grid,
                                   unsigned src, unsigned dst,
                                   std::uint64_t *expanded) const;

    PmOff gridOff_ = kPmNull;
    std::uint64_t pathsRouted_ = 0;
    std::uint64_t cellsClaimed_ = 0;
};

} // namespace specpmt::workloads

#endif // SPECPMT_WORKLOADS_LABYRINTH_HH
