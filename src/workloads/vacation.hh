/**
 * @file
 * vacation: travel reservation system analog. STAMP's vacation runs
 * an in-memory database of cars, flights and rooms plus a customer
 * table; each transaction makes a handful of reservations on behalf
 * of a customer. The high-contention configuration issues more
 * queries per transaction over a narrower item range (Table 2:
 * 44.2 B/tx low vs 67.8 B/tx high).
 */

#ifndef SPECPMT_WORKLOADS_VACATION_HH
#define SPECPMT_WORKLOADS_VACATION_HH

#include "workloads/workload.hh"

namespace specpmt::workloads
{

/** See file comment. */
class VacationWorkload : public Workload
{
  public:
    VacationWorkload(const WorkloadConfig &config, bool high_contention)
        : Workload(config), high_(high_contention)
    {}

    const char *
    name() const override
    {
        return high_ ? "vacation-high" : "vacation-low";
    }

    void setup(txn::TxRuntime &rt) override;
    void run(txn::TxRuntime &rt) override;
    bool verify(txn::TxRuntime &rt) override;
    std::uint64_t digest(txn::TxRuntime &rt) override;
    bool verifyStructural(txn::TxRuntime &rt) override;

  private:
    static constexpr unsigned kTables = 3; ///< cars, flights, rooms
    static constexpr unsigned kItems = 1024;
    static constexpr unsigned kCustomers = 4096;

    struct Resource
    {
        std::uint64_t total;
        std::uint64_t free;
        std::uint64_t reserved;
        std::uint64_t pad;
    };

    struct Customer
    {
        std::uint64_t bill;
        std::uint64_t reservations;
    };

    PmOff
    resourceOff(unsigned table, unsigned item) const
    {
        return resourcesOff_ +
               (table * kItems + item) * sizeof(Resource);
    }

    PmOff
    customerOff(unsigned customer) const
    {
        return customersOff_ + customer * sizeof(Customer);
    }

    bool high_;
    PmOff resourcesOff_ = kPmNull;
    PmOff customersOff_ = kPmNull;
    std::uint64_t reservationsMade_ = 0;
};

} // namespace specpmt::workloads

#endif // SPECPMT_WORKLOADS_VACATION_HH
