/**
 * @file
 * yada: Delaunay mesh refinement analog. STAMP's yada repeatedly
 * picks a poor-quality triangle, computes the cavity of elements
 * around it, and retriangulates the cavity — a transaction that
 * rewrites a cluster of neighbouring mesh records (Table 2:
 * ~175.6 B/tx, ~24 updates).
 */

#ifndef SPECPMT_WORKLOADS_YADA_HH
#define SPECPMT_WORKLOADS_YADA_HH

#include "workloads/workload.hh"

namespace specpmt::workloads
{

/** See file comment. */
class YadaWorkload : public Workload
{
  public:
    explicit YadaWorkload(const WorkloadConfig &config)
        : Workload(config)
    {}

    const char *name() const override { return "yada"; }

    void setup(txn::TxRuntime &rt) override;
    void run(txn::TxRuntime &rt) override;
    bool verify(txn::TxRuntime &rt) override;
    std::uint64_t digest(txn::TxRuntime &rt) override;
    bool verifyStructural(txn::TxRuntime &rt) override;

  private:
    static constexpr unsigned kTriangles = 1u << 13;
    /** Cavity size around the refined element. */
    static constexpr unsigned kCavity = 12;

    struct Triangle
    {
        std::uint32_t quality;    ///< smaller = worse
        std::uint32_t generation; ///< retriangulation count
        std::uint64_t vertexHash; ///< stand-in for coordinates
    };

    PmOff
    triangleOff(unsigned index) const
    {
        return meshOff_ + index * sizeof(Triangle);
    }

    PmOff meshOff_ = kPmNull;
    PmOff refinedOff_ = kPmNull; ///< u64 counter
    std::uint64_t refinements_ = 0;
    std::uint64_t cavityWrites_ = 0;
};

} // namespace specpmt::workloads

#endif // SPECPMT_WORKLOADS_YADA_HH
