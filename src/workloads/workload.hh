/**
 * @file
 * STAMP-analog transactional workloads (Section 7.1.1).
 *
 * The paper evaluates on the STAMP suite ported to persistent memory
 * with libvmmalloc. STAMP itself is not available here, so each
 * workload reimplements the *transactional data-access pattern* of
 * its STAMP counterpart — the same data structures, write-set sizes
 * (Table 2), update counts, and compute/transaction ratios — as a
 * compact kernel over this repository's TxRuntime API. DESIGN.md
 * documents the substitution; bench_table2_tx_stats prints the
 * resulting per-workload statistics next to the paper's.
 *
 * Rules every workload obeys:
 *  - all durable writes flow through the runtime (so every scheme,
 *    including speculative logging, sees data enter the durable world
 *    under a committed transaction);
 *  - all durable reads use txLoad (so out-of-place schemes can
 *    redirect them);
 *  - the same seed produces the same transaction stream, so runtimes
 *    are compared on identical work and digests must match.
 */

#ifndef SPECPMT_WORKLOADS_WORKLOAD_HH
#define SPECPMT_WORKLOADS_WORKLOAD_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rand.hh"
#include "txn/tx_runtime.hh"

namespace specpmt::workloads
{

/** The nine evaluated applications. */
enum class WorkloadKind
{
    Genome,
    Intruder,
    KmeansLow,
    KmeansHigh,
    Labyrinth,
    Ssca2,
    VacationLow,
    VacationHigh,
    Yada,
};

/** Workload parameters. */
struct WorkloadConfig
{
    std::uint64_t seed = 1;
    /**
     * Transaction-count scale factor relative to the reference size
     * (1.0 for the benchmark harnesses; tests use smaller values).
     */
    double scale = 1.0;
};

/** Abstract STAMP-analog kernel. */
class Workload
{
  public:
    explicit Workload(const WorkloadConfig &config)
        : config_(config), rng_(config.seed)
    {}

    virtual ~Workload() = default;

    Workload(const Workload &) = delete;
    Workload &operator=(const Workload &) = delete;

    /** Application name as used in the paper's figures. */
    virtual const char *name() const = 0;

    /**
     * Allocate persistent structures and initialize them through
     * committed transactions (not part of the measured region).
     */
    virtual void setup(txn::TxRuntime &rt) = 0;

    /** The measured transactional phase. */
    virtual void run(txn::TxRuntime &rt) = 0;

    /**
     * Check the application-level invariant on the durable state
     * (e.g. "reserved seats equal customer bills"), reading through
     * the runtime. Returns true when consistent.
     */
    virtual bool verify(txn::TxRuntime &rt) = 0;

    /**
     * Order-independent digest of the logical durable state; equal
     * seeds must yield equal digests under every correct runtime.
     */
    virtual std::uint64_t digest(txn::TxRuntime &rt) = 0;

    /**
     * Application invariant that holds at *every* committed-state
     * boundary, checkable without this object's volatile tallies
     * (unlike verify()). Crash-injection tests call it on a freshly
     * recovered pool: if any transaction tore, it fails.
     */
    virtual bool verifyStructural(txn::TxRuntime &rt) = 0;

  protected:
    /** Scale a reference transaction count. */
    std::uint64_t
    scaled(std::uint64_t reference) const
    {
        const double value =
            static_cast<double>(reference) * config_.scale;
        return value < 1.0 ? 1 : static_cast<std::uint64_t>(value);
    }

    template <typename T>
    T
    loadT(txn::TxRuntime &rt, PmOff off)
    {
        return rt.txLoadT<T>(0, off);
    }

    template <typename T>
    void
    storeT(txn::TxRuntime &rt, PmOff off, const T &value)
    {
        rt.txStoreT<T>(0, off, value);
    }

    WorkloadConfig config_;
    Rng rng_;
};

/** Display name for a workload kind. */
const char *workloadKindName(WorkloadKind kind);

/** All workloads in the paper's figure order. */
const std::vector<WorkloadKind> &allWorkloads();

/** Factory. */
std::unique_ptr<Workload> makeWorkload(WorkloadKind kind,
                                       const WorkloadConfig &config);

} // namespace specpmt::workloads

#endif // SPECPMT_WORKLOADS_WORKLOAD_HH
