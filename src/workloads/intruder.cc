#include "workloads/intruder.hh"

#include <algorithm>

#include "common/hash.hh"

namespace specpmt::workloads
{

void
IntruderWorkload::setup(txn::TxRuntime &rt)
{
    auto &pool = rt.pool();
    flowsOff_ = pool.alloc(kSlots * sizeof(FlowEntry));
    payloadOff_ = pool.alloc(kSlots * kFlowLen * sizeof(std::uint16_t));
    doneOff_ = pool.alloc(sizeof(std::uint64_t));
    pool.setRoot(txn::kAppRootSlotBase, flowsOff_);

    constexpr unsigned kChunk = 4096;
    std::vector<std::uint8_t> zeros(kChunk, 0);
    const auto zero_region = [&](PmOff off, std::size_t bytes) {
        for (std::size_t done = 0; done < bytes; done += kChunk) {
            const std::size_t n = std::min<std::size_t>(kChunk,
                                                        bytes - done);
            rt.txBegin(0);
            rt.txStore(0, off + done, zeros.data(), n);
            rt.txCommit(0);
        }
    };
    zero_region(flowsOff_, kSlots * sizeof(FlowEntry));
    zero_region(payloadOff_, kSlots * kFlowLen * sizeof(std::uint16_t));
    zero_region(doneOff_, sizeof(std::uint64_t));
}

unsigned
IntruderWorkload::probe(txn::TxRuntime &rt, std::uint64_t key)
{
    unsigned index = static_cast<unsigned>(mix64(key)) & (kSlots - 1);
    for (;;) {
        const auto resident = loadT<std::uint64_t>(
            rt, flowsOff_ + index * sizeof(FlowEntry));
        if (resident == 0 || resident == key)
            return index;
        index = (index + 1) & (kSlots - 1);
    }
}

void
IntruderWorkload::run(txn::TxRuntime &rt)
{
    const std::uint64_t fragments = scaled(60000);
    const std::uint64_t flows = fragments / kFlowLen;
    for (std::uint64_t i = 0; i < fragments; ++i) {
        const std::uint64_t flow = 1 + rng_.below(flows);
        const unsigned frag =
            static_cast<unsigned>(rng_.below(kFlowLen));
        const auto payload =
            static_cast<std::uint16_t>(rng_.next() & 0xFFFF);

        rt.compute(0, 900); // packet decode + dictionary hashing

        rt.txBegin(0);
        const unsigned slot = probe(rt, flow);
        const PmOff entry = flowsOff_ + slot * sizeof(FlowEntry);
        if (loadT<std::uint64_t>(rt, entry) == 0) {
            storeT<std::uint64_t>(rt, entry, flow);
            storeT<std::uint64_t>(rt, entry + 8, 0);
        }
        // Store the fragment payload, bump the flow's arrival stamp
        // and byte tally, and update the reassembly mask.
        storeT<std::uint16_t>(
            rt, payloadOff_ + (slot * kFlowLen + frag) * 2, payload);
        storeT<std::uint64_t>(rt, entry + 16, i + 1);
        storeT<std::uint64_t>(rt, entry + 24,
                              loadT<std::uint64_t>(rt, entry + 24) +
                                  payload);
        const auto mask = loadT<std::uint64_t>(rt, entry + 8);
        const std::uint64_t new_mask = mask | (1ull << frag);
        if (new_mask != mask) {
            storeT<std::uint64_t>(rt, entry + 8, new_mask);
            if (new_mask == (1ull << kFlowLen) - 1) {
                // Flow complete: retire it to the detector stage.
                storeT<std::uint64_t>(
                    rt, doneOff_,
                    loadT<std::uint64_t>(rt, doneOff_) + 1);
                ++completed_;
            }
        }
        rt.txCommit(0);
    }
}

bool
IntruderWorkload::verify(txn::TxRuntime &rt)
{
    std::uint64_t full = 0;
    for (unsigned slot = 0; slot < kSlots; ++slot) {
        const PmOff entry = flowsOff_ + slot * sizeof(FlowEntry);
        const auto key = loadT<std::uint64_t>(rt, entry);
        const auto mask = loadT<std::uint64_t>(rt, entry + 8);
        if (key == 0 && mask != 0)
            return false; // mask without a flow
        if (mask >= (1ull << kFlowLen))
            return false; // impossible bits
        if (mask == (1ull << kFlowLen) - 1)
            ++full;
    }
    return full == completed_ &&
           loadT<std::uint64_t>(rt, doneOff_) == completed_;
}

bool
IntruderWorkload::verifyStructural(txn::TxRuntime &rt)
{
    std::uint64_t full = 0;
    for (unsigned slot = 0; slot < kSlots; ++slot) {
        const PmOff entry = flowsOff_ + slot * sizeof(FlowEntry);
        const auto key = loadT<std::uint64_t>(rt, entry);
        const auto mask = loadT<std::uint64_t>(rt, entry + 8);
        if (key == 0 && mask != 0)
            return false; // mask without a flow: torn insert
        if (mask >= (1ull << kFlowLen))
            return false;
        if (mask == (1ull << kFlowLen) - 1)
            ++full;
    }
    // The done counter is updated in the same transaction that
    // completes a flow's mask.
    return loadT<std::uint64_t>(rt, doneOff_) == full;
}

std::uint64_t
IntruderWorkload::digest(txn::TxRuntime &rt)
{
    std::uint64_t hash = loadT<std::uint64_t>(rt, doneOff_);
    for (unsigned slot = 0; slot < kSlots; ++slot) {
        const PmOff entry = flowsOff_ + slot * sizeof(FlowEntry);
        hash = hashCombine(hash, loadT<std::uint64_t>(rt, entry));
        hash = hashCombine(hash, loadT<std::uint64_t>(rt, entry + 8));
    }
    for (unsigned i = 0; i < kSlots * kFlowLen; ++i) {
        hash = hashCombine(hash,
                           loadT<std::uint16_t>(rt, payloadOff_ + i * 2));
    }
    return hash;
}

} // namespace specpmt::workloads
