#include "workloads/genome.hh"

#include <algorithm>

#include "common/hash.hh"

namespace specpmt::workloads
{

void
GenomeWorkload::setup(txn::TxRuntime &rt)
{
    auto &pool = rt.pool();
    keysOff_ = pool.alloc(kBuckets * sizeof(std::uint64_t));
    linksOff_ = pool.alloc(kBuckets * sizeof(std::uint32_t));
    flagsOff_ = pool.alloc(kBuckets * sizeof(std::uint8_t));
    positionsOff_ = pool.alloc(kBuckets * sizeof(std::uint64_t));
    pool.setRoot(txn::kAppRootSlotBase, keysOff_);

    // Zero-initialize through committed transactions so every durable
    // byte enters the world with a log record (SpecPMT's contract).
    constexpr unsigned kChunk = 4096;
    std::vector<std::uint8_t> zeros(kChunk, 0);
    const auto zero_region = [&](PmOff off, std::size_t bytes) {
        for (std::size_t done = 0; done < bytes; done += kChunk) {
            const std::size_t n = std::min<std::size_t>(kChunk,
                                                        bytes - done);
            rt.txBegin(0);
            rt.txStore(0, off + done, zeros.data(), n);
            rt.txCommit(0);
        }
    };
    zero_region(keysOff_, kBuckets * sizeof(std::uint64_t));
    zero_region(linksOff_, kBuckets * sizeof(std::uint32_t));
    zero_region(flagsOff_, kBuckets * sizeof(std::uint8_t));
    zero_region(positionsOff_, kBuckets * sizeof(std::uint64_t));
}

unsigned
GenomeWorkload::probe(txn::TxRuntime &rt, std::uint64_t key)
{
    unsigned index = static_cast<unsigned>(mix64(key)) & (kBuckets - 1);
    for (;;) {
        const auto resident =
            loadT<std::uint64_t>(rt, keysOff_ + index * 8);
        if (resident == 0 || resident == key)
            return index;
        index = (index + 1) & (kBuckets - 1);
    }
}

void
GenomeWorkload::run(txn::TxRuntime &rt)
{
    // Phase 1: segment deduplication. Each transaction probes the
    // shared set and inserts the key only when absent.
    const std::uint64_t segments = scaled(30000);
    const std::uint64_t universe = segments * kUniverseFactor;
    for (std::uint64_t i = 0; i < segments; ++i) {
        const std::uint64_t key = 1 + rng_.below(universe);
        rt.compute(0, 490); // hashing + segment comparison work
        rt.txBegin(0);
        const unsigned bucket = probe(rt, key);
        if (loadT<std::uint64_t>(rt, keysOff_ + bucket * 8) == 0) {
            storeT<std::uint64_t>(rt, keysOff_ + bucket * 8, key);
            ++inserted_;
        }
        rt.txCommit(0);
    }

    // Phase 2: overlap chaining over unique segments: mark a segment
    // visited (1 byte) and point it at its successor (4 bytes).
    const std::uint64_t steps = scaled(12000);
    for (std::uint64_t i = 0; i < steps; ++i) {
        const unsigned bucket =
            static_cast<unsigned>(rng_.below(kBuckets));
        rt.compute(0, 400); // overlap scoring
        rt.txBegin(0);
        const auto key = loadT<std::uint64_t>(rt, keysOff_ + bucket * 8);
        if (key != 0 &&
            loadT<std::uint8_t>(rt, flagsOff_ + bucket) == 0) {
            storeT<std::uint8_t>(rt, flagsOff_ + bucket, 1);
            storeT<std::uint32_t>(
                rt, linksOff_ + bucket * 4,
                static_cast<std::uint32_t>(rng_.below(kBuckets)));
            // Record the segment's position in the assembled sequence.
            storeT<std::uint64_t>(rt, positionsOff_ + bucket * 8,
                                  linked_ + 1);
            ++linked_;
        }
        rt.txCommit(0);
    }
}

bool
GenomeWorkload::verify(txn::TxRuntime &rt)
{
    std::uint64_t nonzero = 0;
    std::uint64_t flagged = 0;
    for (unsigned i = 0; i < kBuckets; ++i) {
        if (loadT<std::uint64_t>(rt, keysOff_ + i * 8) != 0)
            ++nonzero;
        const auto flag = loadT<std::uint8_t>(rt, flagsOff_ + i);
        if (flag > 1)
            return false;
        flagged += flag;
        // A visited mark requires a resident key and a position.
        if (flag != 0 &&
            (loadT<std::uint64_t>(rt, keysOff_ + i * 8) == 0 ||
             loadT<std::uint64_t>(rt, positionsOff_ + i * 8) == 0)) {
            return false;
        }
    }
    return nonzero == inserted_ && flagged == linked_;
}

bool
GenomeWorkload::verifyStructural(txn::TxRuntime &rt)
{
    for (unsigned i = 0; i < kBuckets; ++i) {
        const auto flag = loadT<std::uint8_t>(rt, flagsOff_ + i);
        if (flag > 1)
            return false;
        // The visited mark, link, and position are written in one
        // transaction with the key already present: a mark without a
        // key or position means a torn transaction.
        if (flag != 0 &&
            (loadT<std::uint64_t>(rt, keysOff_ + i * 8) == 0 ||
             loadT<std::uint64_t>(rt, positionsOff_ + i * 8) == 0)) {
            return false;
        }
    }
    return true;
}

std::uint64_t
GenomeWorkload::digest(txn::TxRuntime &rt)
{
    std::uint64_t hash = 0;
    for (unsigned i = 0; i < kBuckets; ++i) {
        hash = hashCombine(hash, loadT<std::uint64_t>(rt,
                                                      keysOff_ + i * 8));
        hash = hashCombine(hash,
                           loadT<std::uint32_t>(rt, linksOff_ + i * 4));
        hash = hashCombine(hash, loadT<std::uint8_t>(rt, flagsOff_ + i));
        hash = hashCombine(
            hash, loadT<std::uint64_t>(rt, positionsOff_ + i * 8));
    }
    return hash;
}

} // namespace specpmt::workloads
