#include "workloads/workload.hh"

#include "common/logging.hh"
#include "workloads/genome.hh"
#include "workloads/intruder.hh"
#include "workloads/kmeans.hh"
#include "workloads/labyrinth.hh"
#include "workloads/ssca2.hh"
#include "workloads/vacation.hh"
#include "workloads/yada.hh"

namespace specpmt::workloads
{

const char *
workloadKindName(WorkloadKind kind)
{
    switch (kind) {
      case WorkloadKind::Genome:
        return "genome";
      case WorkloadKind::Intruder:
        return "intruder";
      case WorkloadKind::KmeansLow:
        return "kmeans-low";
      case WorkloadKind::KmeansHigh:
        return "kmeans-high";
      case WorkloadKind::Labyrinth:
        return "labyrinth";
      case WorkloadKind::Ssca2:
        return "ssca2";
      case WorkloadKind::VacationLow:
        return "vacation-low";
      case WorkloadKind::VacationHigh:
        return "vacation-high";
      case WorkloadKind::Yada:
        return "yada";
    }
    return "?";
}

const std::vector<WorkloadKind> &
allWorkloads()
{
    static const std::vector<WorkloadKind> kinds = {
        WorkloadKind::Genome,       WorkloadKind::Intruder,
        WorkloadKind::KmeansLow,    WorkloadKind::KmeansHigh,
        WorkloadKind::Labyrinth,    WorkloadKind::Ssca2,
        WorkloadKind::VacationLow,  WorkloadKind::VacationHigh,
        WorkloadKind::Yada};
    return kinds;
}

std::unique_ptr<Workload>
makeWorkload(WorkloadKind kind, const WorkloadConfig &config)
{
    switch (kind) {
      case WorkloadKind::Genome:
        return std::make_unique<GenomeWorkload>(config);
      case WorkloadKind::Intruder:
        return std::make_unique<IntruderWorkload>(config);
      case WorkloadKind::KmeansLow:
        return std::make_unique<KmeansWorkload>(config, false);
      case WorkloadKind::KmeansHigh:
        return std::make_unique<KmeansWorkload>(config, true);
      case WorkloadKind::Labyrinth:
        return std::make_unique<LabyrinthWorkload>(config);
      case WorkloadKind::Ssca2:
        return std::make_unique<Ssca2Workload>(config);
      case WorkloadKind::VacationLow:
        return std::make_unique<VacationWorkload>(config, false);
      case WorkloadKind::VacationHigh:
        return std::make_unique<VacationWorkload>(config, true);
      case WorkloadKind::Yada:
        return std::make_unique<YadaWorkload>(config);
    }
    SPECPMT_PANIC("unknown workload kind");
}

} // namespace specpmt::workloads
