#include "workloads/stamp_crash_workload.hh"

#include <optional>
#include <stdexcept>
#include <string>

#include "common/hash.hh"
#include "workloads/workload.hh"

namespace specpmt::workloads
{

namespace
{

/** Device capacity matching the kernels' reference footprints. */
constexpr std::size_t kStampDeviceBytes = 192u << 20;

std::optional<WorkloadKind>
kindByName(std::string_view name)
{
    for (const auto kind : allWorkloads()) {
        if (name == workloadKindName(kind))
            return kind;
    }
    return std::nullopt;
}

class StampCrashWorkload final : public sim::CrashWorkload
{
  public:
    explicit StampCrashWorkload(const sim::CrashCell &cell)
        : cell_(cell), device_(kStampDeviceBytes), pool_(device_)
    {
        const auto kind = kindByName(cell_.workload);
        if (!kind) {
            throw std::runtime_error("unknown STAMP workload: " +
                                     cell_.workload);
        }
        runtime_ = sim::makeCrashRuntime(cell_.runtime, pool_, 1);
        WorkloadConfig config;
        config.seed = cell_.seed;
        config.scale = cell_.scale;
        workload_ = makeWorkload(*kind, config);
        workload_->setup(*runtime_);
        if (cell_.fault == "drop-fences")
            device_.injectFault(pmem::DeviceFault::DropFences);
    }

    bool
    run(long crash_after) override
    {
        device_.armCrash(crash_after);
        countdown_ = device_.crashCountdown();
        armed_ = crash_after;
        bool fired = false;
        try {
            workload_->run(*runtime_);
        } catch (const pmem::SimulatedCrash &) {
            fired = true;
        }
        device_.armCrash(-1);
        return fired;
    }

    std::uint64_t
    eventsConsumed() const override
    {
        if (!countdown_)
            return 0;
        if (countdown_->fired.load(std::memory_order_relaxed))
            return static_cast<std::uint64_t>(armed_);
        const long remaining =
            countdown_->remaining.load(std::memory_order_relaxed);
        return static_cast<std::uint64_t>(
            armed_ - (remaining < 0 ? 0 : remaining));
    }

    std::uint64_t
    pruneKey(const pmem::CrashPolicy &policy) const override
    {
        // The structural check reads only durable state, so the
        // post-crash image alone determines the outcome.
        return hashCombine(0x57A3Bull,
                           sim::hashCrashImage(
                               device_.crashImage(policy)));
    }

    void
    powerCycle(const pmem::CrashPolicy &policy) override
    {
        runtime_.reset(); // the old process is gone
        device_.simulateCrash(policy);
        pool_.reopenAfterCrash();
        runtime_ = sim::makeCrashRuntime(cell_.runtime, pool_, 1);
        runtime_->recover();
    }

    std::string
    check() override
    {
        if (!workload_->verifyStructural(*runtime_)) {
            return std::string(workload_->name()) +
                   ": structural invariant violated after recovery";
        }
        return {};
    }

    std::string
    checkContinuation() override
    {
        // Recovery idempotence: a clean second power cycle of the
        // recovered pool must land on the same consistent state.
        powerCycle(pmem::CrashPolicy::nothing());
        if (!workload_->verifyStructural(*runtime_)) {
            return std::string(workload_->name()) +
                   ": structural invariant violated after second "
                   "recovery";
        }
        return {};
    }

  private:
    sim::CrashCell cell_;
    pmem::PmemDevice device_;
    pmem::PmemPool pool_;
    std::unique_ptr<txn::TxRuntime> runtime_;
    std::unique_ptr<Workload> workload_;
    std::shared_ptr<pmem::CrashCountdown> countdown_;
    long armed_ = 0;
};

} // namespace

bool
isStampWorkloadName(std::string_view name)
{
    return kindByName(name).has_value();
}

std::unique_ptr<sim::CrashWorkload>
makeStampCrashWorkload(const sim::CrashCell &cell)
{
    return std::make_unique<StampCrashWorkload>(cell);
}

sim::CrashWorkloadFactory
stampCrashWorkloadFactory()
{
    return [](const sim::CrashCell &cell)
               -> std::unique_ptr<sim::CrashWorkload> {
        if (isStampWorkloadName(cell.workload))
            return makeStampCrashWorkload(cell);
        return sim::builtinCrashWorkloadFactory()(cell);
    };
}

} // namespace specpmt::workloads
