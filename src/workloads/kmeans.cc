#include "workloads/kmeans.hh"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/hash.hh"

namespace specpmt::workloads
{

void
KmeansWorkload::setup(txn::TxRuntime &rt)
{
    auto &pool = rt.pool();
    centroidsOff_ = pool.alloc(clusters_ * centroidBytes());
    pool.setRoot(txn::kAppRootSlotBase, centroidsOff_);

    // The input points live in the persistent heap too (the paper
    // ports STAMP with libvmmalloc, which moves the whole heap to
    // PM); they are written once at load time.
    numPoints_ = scaled(6000);
    pointsOff_ = pool.alloc(numPoints_ * kDims * sizeof(float));
    Rng point_rng(config_.seed);
    for (std::uint64_t p2 = 0; p2 < numPoints_; ++p2) {
        float point[kDims];
        for (unsigned d = 0; d < kDims; ++d)
            point[d] = static_cast<float>(point_rng.uniform()) * 10.0f;
        rt.txBegin(0);
        rt.txStore(0, pointsOff_ + p2 * kDims * sizeof(float), point,
                   sizeof(point));
        rt.txCommit(0);
    }

    // Seed the centroids with deterministic starting positions.
    Rng seed_rng(config_.seed ^ 0xC1u);
    for (unsigned c = 0; c < clusters_; ++c) {
        rt.txBegin(0);
        for (unsigned d = 0; d < kDims; ++d) {
            const float value =
                static_cast<float>(seed_rng.uniform()) * 10.0f;
            storeT<float>(rt, centroidOff(c) + d * sizeof(float),
                          value);
        }
        storeT<std::uint64_t>(
            rt, centroidOff(c) + kDims * sizeof(float), 0);
        rt.txCommit(0);
    }
}

void
KmeansWorkload::run(txn::TxRuntime &rt)
{
    for (unsigned iter = 0; iter < kIterations; ++iter) {
        for (std::uint64_t p = 0; p < numPoints_; ++p) {
            // Fetch the point from the persistent heap (read-only).
            float point[kDims];
            rt.txLoad(0, pointsOff_ + p * kDims * sizeof(float), point,
                      sizeof(point));

            // Nearest-centroid search: k*d distance arithmetic. This
            // is kmeans' dominant compute, proportional to the number
            // of clusters.
            unsigned best = 0;
            float best_distance = 1e30f;
            float coords[kDims];
            for (unsigned c = 0; c < clusters_; ++c) {
                rt.txLoad(0, centroidOff(c), coords, sizeof(coords));
                float distance = 0;
                for (unsigned d = 0; d < kDims; ++d) {
                    const float delta = coords[d] - point[d];
                    distance += delta * delta;
                }
                if (distance < best_distance) {
                    best_distance = distance;
                    best = c;
                }
            }
            rt.compute(0, high_ ? 1500 : 4000); // distance arithmetic, ~k*d flops

            // Transaction: fold the point into the chosen centroid,
            // one float at a time (27-ish small updates, Table 2).
            rt.txBegin(0);
            for (unsigned d = 0; d < kDims; ++d) {
                const PmOff coord_off =
                    centroidOff(best) + d * sizeof(float);
                const auto coord = loadT<float>(rt, coord_off);
                storeT<float>(rt, coord_off,
                              coord + 0.01f * (point[d] - coord));
            }
            const PmOff count_off =
                centroidOff(best) + kDims * sizeof(float);
            storeT<std::uint64_t>(
                rt, count_off, loadT<std::uint64_t>(rt, count_off) + 1);
            rt.txCommit(0);
            ++accumulated_;
        }
    }
}

bool
KmeansWorkload::verify(txn::TxRuntime &rt)
{
    std::uint64_t total = 0;
    for (unsigned c = 0; c < clusters_; ++c) {
        total += loadT<std::uint64_t>(
            rt, centroidOff(c) + kDims * sizeof(float));
        for (unsigned d = 0; d < kDims; ++d) {
            const auto coord =
                loadT<float>(rt, centroidOff(c) + d * sizeof(float));
            if (!std::isfinite(coord) || coord < -100.0f ||
                coord > 100.0f) {
                return false;
            }
        }
    }
    return total == accumulated_;
}

bool
KmeansWorkload::verifyStructural(txn::TxRuntime &rt)
{
    for (unsigned c = 0; c < clusters_; ++c) {
        for (unsigned d = 0; d < kDims; ++d) {
            const auto coord =
                loadT<float>(rt, centroidOff(c) + d * sizeof(float));
            if (!std::isfinite(coord) || coord < -100.0f ||
                coord > 100.0f) {
                return false;
            }
        }
    }
    return true;
}

std::uint64_t
KmeansWorkload::digest(txn::TxRuntime &rt)
{
    std::uint64_t hash = 0;
    for (unsigned c = 0; c < clusters_; ++c) {
        for (unsigned d = 0; d < kDims; ++d) {
            const auto coord =
                loadT<float>(rt, centroidOff(c) + d * sizeof(float));
            std::uint32_t bits;
            std::memcpy(&bits, &coord, sizeof(bits));
            hash = hashCombine(hash, bits);
        }
        hash = hashCombine(
            hash, loadT<std::uint64_t>(
                      rt, centroidOff(c) + kDims * sizeof(float)));
    }
    return hash;
}

} // namespace specpmt::workloads
