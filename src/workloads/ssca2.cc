#include "workloads/ssca2.hh"

#include <algorithm>

#include "common/hash.hh"

namespace specpmt::workloads
{

void
Ssca2Workload::setup(txn::TxRuntime &rt)
{
    auto &pool = rt.pool();
    degreeOff_ = pool.alloc(kNodes * sizeof(std::uint64_t));
    adjOff_ = pool.alloc(kNodes * kCapacity * sizeof(std::uint64_t));
    rdegreeOff_ = pool.alloc(kNodes * sizeof(std::uint64_t));
    radjOff_ = pool.alloc(kNodes * kCapacity * sizeof(std::uint64_t));
    pool.setRoot(txn::kAppRootSlotBase, degreeOff_);

    constexpr unsigned kChunk = 4096;
    std::vector<std::uint8_t> zeros(kChunk, 0);
    const auto zero_region = [&](PmOff off, std::size_t bytes) {
        for (std::size_t done = 0; done < bytes; done += kChunk) {
            const std::size_t n = std::min<std::size_t>(kChunk,
                                                        bytes - done);
            rt.txBegin(0);
            rt.txStore(0, off + done, zeros.data(), n);
            rt.txCommit(0);
        }
    };
    zero_region(degreeOff_, kNodes * sizeof(std::uint64_t));
    zero_region(adjOff_, kNodes * kCapacity * sizeof(std::uint64_t));
    zero_region(rdegreeOff_, kNodes * sizeof(std::uint64_t));
    zero_region(radjOff_, kNodes * kCapacity * sizeof(std::uint64_t));
}

void
Ssca2Workload::run(txn::TxRuntime &rt)
{
    const std::uint64_t edges = scaled(50000);
    for (std::uint64_t i = 0; i < edges; ++i) {
        const auto u = static_cast<unsigned>(rng_.below(kNodes));
        const auto v = static_cast<unsigned>(rng_.below(kNodes));

        rt.compute(0, 700); // edge generation / permutation arithmetic

        rt.txBegin(0);
        // Insert the directed edge and its transpose (ssca2 builds
        // both the graph and its transpose for the later kernels).
        const auto degree =
            loadT<std::uint64_t>(rt, degreeOff_ + u * 8);
        if (degree < kCapacity) {
            storeT<std::uint64_t>(
                rt, adjOff_ + (u * kCapacity + degree) * 8, v + 1);
            storeT<std::uint64_t>(rt, degreeOff_ + u * 8, degree + 1);
            ++insertedEdges_;
        }
        const auto rdegree =
            loadT<std::uint64_t>(rt, rdegreeOff_ + v * 8);
        if (rdegree < kCapacity) {
            storeT<std::uint64_t>(
                rt, radjOff_ + (v * kCapacity + rdegree) * 8, u + 1);
            storeT<std::uint64_t>(rt, rdegreeOff_ + v * 8, rdegree + 1);
            ++insertedRedges_;
        }
        rt.txCommit(0);
    }
}

bool
Ssca2Workload::verify(txn::TxRuntime &rt)
{
    std::uint64_t total_degree = 0;
    for (unsigned u = 0; u < kNodes; ++u) {
        const auto degree = loadT<std::uint64_t>(rt, degreeOff_ + u * 8);
        if (degree > kCapacity)
            return false;
        total_degree += degree;
        // Every slot below the degree must hold a real edge; every
        // slot above it must be empty.
        for (unsigned s = 0; s < kCapacity; ++s) {
            const auto target = loadT<std::uint64_t>(
                rt, adjOff_ + (u * kCapacity + s) * 8);
            if (s < degree && (target == 0 || target > kNodes))
                return false;
            if (s >= degree && target != 0)
                return false;
        }
    }
    if (total_degree != insertedEdges_)
        return false;
    std::uint64_t total_rdegree = 0;
    for (unsigned v = 0; v < kNodes; ++v)
        total_rdegree += loadT<std::uint64_t>(rt, rdegreeOff_ + v * 8);
    return total_rdegree == insertedRedges_;
}

bool
Ssca2Workload::verifyStructural(txn::TxRuntime &rt)
{
    // Degree and adjacency slots are updated in the same transaction:
    // every slot below the degree holds an edge, none above it.
    const auto check = [&](PmOff degrees, PmOff adjacency) {
        for (unsigned u = 0; u < kNodes; ++u) {
            const auto degree =
                loadT<std::uint64_t>(rt, degrees + u * 8);
            if (degree > kCapacity)
                return false;
            for (unsigned s = 0; s < kCapacity; ++s) {
                const auto target = loadT<std::uint64_t>(
                    rt, adjacency + (u * kCapacity + s) * 8);
                if (s < degree && (target == 0 || target > kNodes))
                    return false;
                if (s >= degree && target != 0)
                    return false;
            }
        }
        return true;
    };
    return check(degreeOff_, adjOff_) && check(rdegreeOff_, radjOff_);
}

std::uint64_t
Ssca2Workload::digest(txn::TxRuntime &rt)
{
    std::uint64_t hash = 0;
    for (unsigned u = 0; u < kNodes; ++u) {
        hash = hashCombine(hash,
                           loadT<std::uint64_t>(rt, degreeOff_ + u * 8));
        hash = hashCombine(
            hash, loadT<std::uint64_t>(rt, rdegreeOff_ + u * 8));
        for (unsigned s = 0; s < kCapacity; ++s) {
            hash = hashCombine(
                hash, loadT<std::uint64_t>(
                          rt, adjOff_ + (u * kCapacity + s) * 8));
            hash = hashCombine(
                hash, loadT<std::uint64_t>(
                          rt, radjOff_ + (u * kCapacity + s) * 8));
        }
    }
    return hash;
}

} // namespace specpmt::workloads
