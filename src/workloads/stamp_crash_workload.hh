/**
 * @file
 * Crash-exploration adapter for the STAMP-analog workloads.
 *
 * Wraps one Workload kernel (selected by its workloadKindName, e.g.
 * "genome" or "vacation-low") over a single device/pool/runtime stack
 * so the crash explorer can enumerate its persistence events. After
 * the power cycle the check is the workload's *structural* invariant —
 * the property that holds at every committed-transaction boundary and
 * needs none of the kernel's volatile tallies. The continuation check
 * re-crashes the recovered pool cleanly and re-verifies (recovery
 * idempotence).
 */

#ifndef SPECPMT_WORKLOADS_STAMP_CRASH_WORKLOAD_HH
#define SPECPMT_WORKLOADS_STAMP_CRASH_WORKLOAD_HH

#include <memory>
#include <string_view>

#include "sim/crash_explorer.hh"

namespace specpmt::workloads
{

/** True if @p name is a STAMP-analog workload kind name. */
bool isStampWorkloadName(std::string_view name);

/**
 * Build the STAMP crash workload for @p cell (cell.workload names a
 * WorkloadKind; cell.scale sizes the run). Throws std::runtime_error
 * for unknown workload names or non-recoverable runtimes.
 */
std::unique_ptr<sim::CrashWorkload>
makeStampCrashWorkload(const sim::CrashCell &cell);

/**
 * Factory covering the STAMP-analog kinds here, everything else via
 * sim::builtinCrashWorkloadFactory().
 */
sim::CrashWorkloadFactory stampCrashWorkloadFactory();

} // namespace specpmt::workloads

#endif // SPECPMT_WORKLOADS_STAMP_CRASH_WORKLOAD_HH
