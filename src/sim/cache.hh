/**
 * @file
 * Two-level cache model (private L1D + shared L2) with the hardware
 * SpecPMT per-L1-line PBit/LogBit extensions (Figure 9), LRU
 * replacement, and writeback eviction callbacks so the runtime models
 * can charge persistent-memory traffic for natural evictions.
 */

#ifndef SPECPMT_SIM_CACHE_HH
#define SPECPMT_SIM_CACHE_HH

#include <cstdint>
#include <functional>

#include "common/types.hh"
#include "sim/assoc_array.hh"
#include "sim/sim_config.hh"

namespace specpmt::sim
{

/** Per-cache-line state, including the SpecPMT flag bits. */
struct LineMeta
{
    bool dirty = false;
    bool pBit = false;   ///< needs persistence on eviction
    bool logBit = false; ///< needs speculative logging on commit/evict
};

/** Where an access was satisfied. */
enum class CacheLevel
{
    L1,
    L2,
    Memory,
};

/**
 * The cache hierarchy. All durable data lives in PM, so fills on a
 * full miss pay the PM read latency (charged by the caller from the
 * returned level).
 */
class CacheModel
{
  public:
    /**
     * Called when a line with interesting state leaves the hierarchy
     * or crosses levels: the runtime decides what PM traffic results.
     */
    struct Hooks
    {
        /**
         * Dirty/flagged line evicted from L1 into L2 (still volatile).
         * The hook may rewrite the meta (e.g. clear PBit after
         * persisting) before the line is demoted.
         */
        std::function<void(std::uint64_t line, LineMeta &)> onL1Evict;
        /** Dirty line evicted from L2 toward memory. */
        std::function<void(std::uint64_t line, LineMeta &)>
            onL2Writeback;
    };

    explicit CacheModel(const SimConfig &config)
        : l1_(static_cast<unsigned>(config.l1Bytes / kCacheLineSize),
              config.l1Ways),
          l2_(static_cast<unsigned>(config.l2Bytes / kCacheLineSize),
              config.l2Ways)
    {}

    void setHooks(Hooks hooks) { hooks_ = std::move(hooks); }

    /**
     * Access cache line @p line. Returns the level that satisfied the
     * access; the line is resident in L1 with updated meta afterwards.
     */
    CacheLevel
    access(std::uint64_t line, bool is_write)
    {
        if (LineMeta *meta = l1_.find(line)) {
            meta->dirty |= is_write;
            ++l1Hits_;
            return CacheLevel::L1;
        }
        CacheLevel level = CacheLevel::Memory;
        LineMeta fill{};
        if (auto l2_meta = l2_.erase(line)) {
            fill = *l2_meta;
            level = CacheLevel::L2;
            ++l2Hits_;
        } else {
            ++memFills_;
        }
        fill.dirty |= is_write;
        installL1(line, fill);
        return level;
    }

    /** L1 meta for @p line if resident. */
    LineMeta *l1Meta(std::uint64_t line) { return l1_.find(line); }

    /**
     * Write the line back (clwb semantics): clears dirty wherever the
     * line is resident; the caller charges the PM write.
     */
    void
    clean(std::uint64_t line)
    {
        if (LineMeta *meta = l1_.find(line)) {
            meta->dirty = false;
            meta->pBit = false;
        } else if (auto l2_meta = l2_.erase(line)) {
            l2_meta->dirty = false;
            l2_meta->pBit = false;
            l2_.insert(line, *l2_meta);
        }
    }

    /**
     * If the line is resident and dirty (or carries a PBit duty),
     * clear those flags and report true — the caller charges the
     * resulting PM write.
     */
    bool
    cleanIfDirty(std::uint64_t line)
    {
        if (LineMeta *meta = l1_.find(line)) {
            const bool was = meta->dirty || meta->pBit;
            meta->dirty = false;
            meta->pBit = false;
            return was;
        }
        if (auto l2_meta = l2_.erase(line)) {
            const bool was = l2_meta->dirty || l2_meta->pBit;
            l2_meta->dirty = false;
            l2_meta->pBit = false;
            l2_.insert(line, *l2_meta);
            return was;
        }
        return false;
    }

    /** Apply @p fn to every resident line in both levels. */
    template <typename Fn>
    void
    forEachLine(Fn &&fn)
    {
        l1_.forEach(fn);
        l2_.forEach(fn);
    }

    std::uint64_t l1Hits() const { return l1Hits_; }
    std::uint64_t l2Hits() const { return l2Hits_; }
    std::uint64_t memFills() const { return memFills_; }

  private:
    void
    installL1(std::uint64_t line, const LineMeta &meta)
    {
        auto l1_victim = l1_.insert(line, meta);
        if (!l1_victim)
            return;
        if (hooks_.onL1Evict && (l1_victim->second.dirty ||
                                 l1_victim->second.pBit)) {
            hooks_.onL1Evict(l1_victim->first, l1_victim->second);
        }
        // Demote into L2 (clearing L1-only persistence duties is the
        // runtime's call inside onL1Evict; here we keep dirty state).
        auto l2_victim = l2_.insert(l1_victim->first, l1_victim->second);
        if (l2_victim && l2_victim->second.dirty && hooks_.onL2Writeback)
            hooks_.onL2Writeback(l2_victim->first, l2_victim->second);
    }

    AssocArray<LineMeta> l1_;
    AssocArray<LineMeta> l2_;
    Hooks hooks_;
    std::uint64_t l1Hits_ = 0;
    std::uint64_t l2Hits_ = 0;
    std::uint64_t memFills_ = 0;
};

} // namespace specpmt::sim

#endif // SPECPMT_SIM_CACHE_HH
