/**
 * @file
 * Trace-replay entry point: builds any of the Section 7.3 hardware
 * models by name and replays a workload trace through it.
 */

#ifndef SPECPMT_SIM_MACHINE_HH
#define SPECPMT_SIM_MACHINE_HH

#include <memory>
#include <string>
#include <vector>

#include "sim/hw_runtime.hh"

namespace specpmt::sim
{

/** The hardware schemes of Figures 13-15. */
enum class HwScheme
{
    Ede,
    Hoop,
    SpecHpmtDp,
    SpecHpmt,
    NoLog,
};

/** Display name matching the paper's figures. */
const char *hwSchemeName(HwScheme scheme);

/** All schemes in the paper's presentation order. */
const std::vector<HwScheme> &allHwSchemes();

/** Instantiate a model. */
std::unique_ptr<HwRuntime> makeHwRuntime(HwScheme scheme,
                                         const SimConfig &config);

/** Convenience: replay @p trace on a fresh instance of @p scheme. */
HwStats simulate(HwScheme scheme, const SimConfig &config,
                 const txn::MemTrace &trace);

} // namespace specpmt::sim

#endif // SPECPMT_SIM_MACHINE_HH
