/**
 * @file
 * A generic set-associative array with true-LRU replacement, the
 * building block for the TLB and cache models.
 */

#ifndef SPECPMT_SIM_ASSOC_ARRAY_HH
#define SPECPMT_SIM_ASSOC_ARRAY_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "common/logging.hh"

namespace specpmt::sim
{

/**
 * Set-associative array mapping 64-bit keys to Meta, with LRU
 * replacement inside each set.
 */
template <typename Meta>
class AssocArray
{
  public:
    struct Entry
    {
        std::uint64_t key = 0;
        Meta meta{};
        bool valid = false;
        std::uint64_t lastUse = 0;
    };

    AssocArray(unsigned num_entries, unsigned ways)
        : ways_(ways), numSets_(num_entries / ways),
          entries_(static_cast<std::size_t>(num_entries / ways) * ways)
    {
        // Capacities that are not an exact multiple of the
        // associativity (e.g. 2MB / 12 ways) round down to whole sets.
        SPECPMT_ASSERT(ways > 0);
        SPECPMT_ASSERT(numSets_ > 0);
    }

    /** Find @p key; touches LRU state on hit. */
    Meta *
    find(std::uint64_t key)
    {
        Entry *entry = findEntry(key);
        if (!entry)
            return nullptr;
        entry->lastUse = ++tick_;
        return &entry->meta;
    }

    /** Find without disturbing LRU order (introspection). */
    const Meta *
    peek(std::uint64_t key) const
    {
        const Entry *entry =
            const_cast<AssocArray *>(this)->findEntry(key);
        return entry ? &entry->meta : nullptr;
    }

    /**
     * Insert (key, meta), evicting the set's LRU entry if needed.
     * @return The evicted (key, meta) pair, if a valid entry fell out.
     */
    std::optional<std::pair<std::uint64_t, Meta>>
    insert(std::uint64_t key, const Meta &meta)
    {
        SPECPMT_ASSERT(!findEntry(key));
        Entry *victim = nullptr;
        const std::size_t base = setBase(key);
        for (unsigned way = 0; way < ways_; ++way) {
            Entry &entry = entries_[base + way];
            if (!entry.valid) {
                victim = &entry;
                break;
            }
            if (!victim || entry.lastUse < victim->lastUse)
                victim = &entry;
        }
        std::optional<std::pair<std::uint64_t, Meta>> evicted;
        if (victim->valid)
            evicted = {{victim->key, victim->meta}};
        victim->key = key;
        victim->meta = meta;
        victim->valid = true;
        victim->lastUse = ++tick_;
        return evicted;
    }

    /** Remove @p key if present; returns its meta. */
    std::optional<Meta>
    erase(std::uint64_t key)
    {
        Entry *entry = findEntry(key);
        if (!entry)
            return std::nullopt;
        entry->valid = false;
        return entry->meta;
    }

    /** Apply @p fn to every valid entry (meta mutable). */
    template <typename Fn>
    void
    forEach(Fn &&fn)
    {
        for (Entry &entry : entries_) {
            if (entry.valid)
                fn(entry.key, entry.meta);
        }
    }

    unsigned ways() const { return ways_; }
    unsigned numSets() const { return numSets_; }

  private:
    std::size_t
    setBase(std::uint64_t key) const
    {
        return (key % numSets_) * ways_;
    }

    Entry *
    findEntry(std::uint64_t key)
    {
        const std::size_t base = setBase(key);
        for (unsigned way = 0; way < ways_; ++way) {
            Entry &entry = entries_[base + way];
            if (entry.valid && entry.key == key)
                return &entry;
        }
        return nullptr;
    }

    unsigned ways_;
    unsigned numSets_;
    std::vector<Entry> entries_;
    std::uint64_t tick_ = 0;
};

} // namespace specpmt::sim

#endif // SPECPMT_SIM_ASSOC_ARRAY_HH
