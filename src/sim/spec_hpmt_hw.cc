#include "sim/spec_hpmt_hw.hh"

#include "common/logging.hh"
#include "obs/metrics.hh"

namespace specpmt::sim
{

namespace
{

/** SpecHPMT hardware-model counters, registered once per process. */
struct HwModelMetrics
{
    obs::Counter &pagePromotions;
    obs::Counter &epochAdvances;
    obs::Counter &epochClears;
    obs::Counter &hotnessDecays;

    static HwModelMetrics &
    get()
    {
        auto &reg = obs::Registry::global();
        static HwModelMetrics m{
            reg.counter("specpmt_hw_page_promotions_total",
                        "cold->hot page promotions (bulk page copy)"),
            reg.counter("specpmt_hw_epoch_advances_total",
                        "startepoch executions (epoch ID advances)"),
            reg.counter("specpmt_hw_epoch_clears_total",
                        "clearepoch executions (epoch reclaims)"),
            reg.counter("specpmt_hw_hotness_decays_total",
                        "periodic cold-counter decay sweeps"),
        };
        return m;
    }
};

} // namespace

SpecHpmtHw::SpecHpmtHw(const SimConfig &config,
                       bool data_persist_on_commit)
    : HwRuntime(config), tlb_(config), dp_(data_persist_on_commit),
      epochs_(config.numEpochs)
{
    SPECPMT_ASSERT(config.numEpochs >= 2);
    epochs_[currentEpoch_].live = true;
    liveOrder_.push_back(currentEpoch_);

    // Natural eviction paths for speculatively-logged data: a PBit
    // line persists when it leaves L1 (Figure 8); any line still dirty
    // at L2 eviction writes back to its PM home as usual.
    CacheModel::Hooks hooks;
    hooks.onL1Evict = [this](std::uint64_t line, LineMeta &meta) {
        // A speculatively-logged line may overflow to L2 unpersisted
        // (Section 5.1); a line not yet logged this transaction is
        // logged before it leaves L1 and needs no second record at
        // commit.
        if (meta.pBit && txDirtyHot_.erase(line) > 0) {
            logAppendBytes(16 + kCacheLineSize);
            epochs_[currentEpoch_].bytes += 16 + kCacheLineSize;
            epochs_[currentEpoch_].loggedLines.insert(line);
            noteLogBytes(16 + kCacheLineSize);
            meta.logBit = true;
        }
    };
    hooks.onL2Writeback = [this](std::uint64_t line, LineMeta &meta) {
        persistDataLine(line);
        meta.dirty = false;
    };
    cache_.setHooks(hooks);
}

void
SpecHpmtHw::store(PmOff off, std::uint32_t size)
{
    const std::uint64_t vpn = pageIndex(off);
    const TlbLookup lookup = tlb_.lookup(vpn);
    if (!lookup.hit)
        ++stats_.tlbMisses;
    TlbMeta &meta = *lookup.meta;

    bool hot = meta.epochBit;
    if (!hot) {
        if (meta.counter < config_.hotCounterMax)
            ++meta.counter;
        if (meta.counter >= config_.hotCounterMax) {
            // Cold -> hot: bulk-copy the page into the log via the
            // copy engine (asynchronous — the page stays accessible,
            // Section 5.1); the page log record doubles as the undo
            // log for every later update in this transaction.
            logAppendLinesAsync(kPageSize / kCacheLineSize);
            ++stats_.pageCopies;
            HwModelMetrics::get().pagePromotions.add();
            meta.epochBit = true;
            meta.counter = static_cast<std::uint8_t>(currentEpoch_);
            Epoch &epoch = epochs_[currentEpoch_];
            epoch.bytes += kPageSize;
            ++epoch.pages;
            noteLogBytes(kPageSize);
            hot = true;
        }
    }

    accessLines(off, size, true);

    const std::uint64_t first = lineIndex(off);
    const std::uint64_t last = lineIndex(off + size - 1);
    for (std::uint64_t line = first; line <= last; ++line) {
        if (hot) {
            if (LineMeta *lm = cache_.l1Meta(line)) {
                lm->pBit = true;
                lm->logBit = true;
            }
            txDirtyHot_.insert(line);
        } else {
            // Undo-log the first in-tx update of a cold line; no
            // ordering fence against the data store is needed.
            if (txColdLogged_.insert(line).second)
                logAppendLines(1);
            txDirtyCold_.insert(line);
        }
    }
}

void
SpecHpmtHw::commit()
{
    // Speculative log records for the hot write set: sequential PM
    // writes, coalesced (addr + line data ~ 80B per entry).
    if (!txDirtyHot_.empty()) {
        const std::size_t bytes = txDirtyHot_.size() * 80;
        logAppendLines((bytes + kCacheLineSize - 1) / kCacheLineSize);
        Epoch &epoch = epochs_[currentEpoch_];
        epoch.bytes += bytes;
        noteLogBytes(static_cast<std::ptrdiff_t>(bytes));
        for (std::uint64_t line : txDirtyHot_) {
            epoch.loggedLines.insert(line);
            if (LineMeta *lm = cache_.l1Meta(line))
                lm->logBit = false; // cleared at commit (Section 5.1)
        }
    }

    // Cold (undo-logged) data persists synchronously at commit.
    for (std::uint64_t line : txDirtyCold_) {
        persistDataLine(line);
        cache_.clean(line);
    }
    if (dp_) {
        for (std::uint64_t line : txDirtyHot_) {
            persistDataLine(line);
            cache_.clean(line);
        }
    }
    fence();

    txDirtyHot_.clear();
    txDirtyCold_.clear();
    txColdLogged_.clear();

    if (++commitsSinceDecay_ >= config_.hotnessDecayCommits) {
        tlb_.decayColdCounters();
        commitsSinceDecay_ = 0;
        HwModelMetrics::get().hotnessDecays.add();
    }
    maybeAdvanceEpoch();
}

void
SpecHpmtHw::maybeAdvanceEpoch()
{
    Epoch &current = epochs_[currentEpoch_];
    if (current.bytes <= config_.epochMaxBytes &&
        current.pages <= config_.epochMaxPages) {
        return;
    }
    // startepoch: advance the epoch ID register (IDs cycle through
    // 1..numEpochs-1; 0 stays reserved for cold pages). If the target
    // slot still holds an unreclaimed epoch, reclaim it now.
    const EpochId next = static_cast<EpochId>(
        (currentEpoch_ % (epochs_.size() - 1)) + 1);
    if (epochs_[next].live) {
        reclaimEpoch(next);
        std::erase(liveOrder_, next);
    }
    currentEpoch_ = next;
    epochs_[next].live = true;
    liveOrder_.push_back(next);
    HwModelMetrics::get().epochAdvances.add();

    // Foreground reclamation keeps only the newest epochs alive —
    // the software "always reclaims the oldest epoch" (Section 5.2.1),
    // which bounds log memory to a couple of epoch budgets.
    while (liveOrder_.size() > 2) {
        const EpochId oldest = liveOrder_.front();
        liveOrder_.erase(liveOrder_.begin());
        reclaimEpoch(oldest);
    }
}

void
SpecHpmtHw::reclaimEpoch(EpochId eid)
{
    Epoch &epoch = epochs_[eid];
    // Step 1: persist all data whose only guardian is this epoch's
    // log records (still-dirty lines; lines already evicted reached
    // PM naturally).
    bool flushed_any = false;
    for (std::uint64_t line : epoch.loggedLines) {
        if (cache_.cleanIfDirty(line)) {
            persistDataLine(line);
            flushed_any = true;
        }
    }
    if (flushed_any)
        fence();
    // Step 2: clearepoch EID — one instruction, flips the pages cold.
    tlb_.clearEpoch(eid);
    // Step 3: release the log memory.
    noteLogBytes(-static_cast<std::ptrdiff_t>(epoch.bytes));
    ++stats_.epochsReclaimed;
    HwModelMetrics::get().epochClears.add();
    epoch = Epoch{};
}

void
SpecHpmtHw::finishRun()
{
    for (std::size_t eid = 1; eid < epochs_.size(); ++eid) {
        if (epochs_[eid].live)
            reclaimEpoch(static_cast<EpochId>(eid));
    }
    HwRuntime::finishRun();
}

} // namespace specpmt::sim
