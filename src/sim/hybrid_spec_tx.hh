/**
 * @file
 * Functional model of hardware SpecPMT's hybrid logging protocol
 * (Section 5) — the *correctness* counterpart of the timing model in
 * spec_hpmt_hw: it executes real transactions against the emulated
 * persistence domain so the Section 5.1.1 recoverability argument and
 * the Section 5.2 epoch reclamation protocol can be crash-tested like
 * the software runtimes.
 *
 * Protocol summary:
 *  - cold lines are undo-logged before their first in-transaction
 *    update, and their data is persisted at commit;
 *  - a page crossing the hotness threshold is bulk-copied into the
 *    log (the page record doubles as the undo log for later updates);
 *  - hot-line new values are logged at commit with one fence, and hot
 *    data is never explicitly persisted;
 *  - undo and page records reach the persistence domain through the
 *    hardware's dependency-ordered path (PmemDevice::adrPersist): no
 *    fence, but never later than a dependent data write;
 *  - recovery applies, in order: uncommitted page records,
 *    uncommitted undo records (newest first), then committed
 *    speculative records in global timestamp order;
 *  - epochs are reclaimed oldest-first after persisting the epoch's
 *    speculatively logged data (Section 5.2.1's three steps).
 *
 * One deliberate simplification: page hotness is tracked in an
 * unbounded volatile map rather than a TLB-capacity-bounded one (the
 * timing model covers TLB effects); hotness still uses the 3-bit
 * saturating counter and epoch IDs.
 */

#ifndef SPECPMT_SIM_HYBRID_SPEC_TX_HH
#define SPECPMT_SIM_HYBRID_SPEC_TX_HH

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "core/splog_format.hh"
#include "txn/tx_runtime.hh"
#include "txn/write_set.hh"

namespace specpmt::sim
{

/** Tunables for the hybrid-logging functional model. */
struct HybridConfig
{
    unsigned hotCounterMax = 7;
    std::size_t logBlockSize = core::kLogBlockSize;
    std::size_t epochMaxBytes = 64 * 1024;
    unsigned epochMaxPages = 16;
};

/** Root slot holding thread @p tid's committed-sequence cell. */
constexpr unsigned
hybridSeqSlot(ThreadId tid)
{
    return 20 + tid;
}

/** Hybrid undo/speculative logging runtime (hardware protocol). */
class HybridSpecTx : public txn::TxRuntime
{
  public:
    HybridSpecTx(pmem::PmemPool &pool, unsigned num_threads,
                 const HybridConfig &config = {});

    const char *name() const override { return "hybrid-spec"; }

    void txBegin(ThreadId tid) override;
    void txStore(ThreadId tid, PmOff off, const void *src,
                 std::size_t size) override;
    void txCommit(ThreadId tid) override;

    /** Post-crash recovery: Section 5.1.1's three steps. */
    void recover() override;

    /** Live log bytes across all threads. */
    std::size_t logBytesInUse() const { return logBytes_; }

    /** Pages currently tracked as hot. */
    std::size_t hotPageCount() const;

    /** Completed epoch reclamations. */
    std::uint64_t epochsReclaimed() const { return epochsReclaimed_; }

    /** Bulk page copies performed. */
    std::uint64_t pageCopies() const { return pageCopies_; }

  private:
    /** Volatile page hotness state (cnt/EID of Figure 9). */
    struct PageState
    {
        bool hot = false;
        std::uint8_t counter = 0;
        EpochId epoch = 0;
    };

    /** An epoch: a chronological span of the log. */
    struct Epoch
    {
        EpochId id = 0;
        std::size_t bytes = 0;
        std::vector<std::uint64_t> pages; ///< pages logged in it
        std::size_t startBlockIndex = 0;  ///< first block it occupies
    };

    struct ThreadLog
    {
        std::vector<PmOff> blocks;
        std::size_t tailPos = 0;
        std::uint64_t txSeq = 0;
        bool inTx = false;
        txn::WriteSet coldLogged; ///< undo-covered bytes this tx
        txn::WriteSet coldWrites; ///< cold data to persist at commit
        txn::WriteSet hotWrites;  ///< hot data to spec-log at commit
        /** Epochs, oldest first; back() is open. */
        std::vector<Epoch> epochs;
        EpochId nextEpochId = 1;
        PmOff seqSlotOff = kPmNull; ///< committed-seq cell in PM
    };

    void initThreadLog(unsigned tid);
    void attachBlock(ThreadLog &log, std::size_t min_bytes,
                     bool persist_now);
    /** Reserve @p bytes at the tail (chains a block if needed). */
    PmOff reserve(ThreadLog &log, std::size_t bytes, bool persist_now);

    /**
     * Write a sealed segment whose entries copy current device bytes
     * from the given ranges; returns its position.
     */
    PmOff emitSegment(ThreadLog &log, std::uint32_t flags,
                      TxTimestamp stamp,
                      const std::vector<std::pair<PmOff, std::size_t>>
                          &ranges,
                      bool persist_now);

    void maybeReclaim(ThreadId tid);
    void reclaimOldestEpoch(ThreadId tid);

    HybridConfig config_;
    std::vector<ThreadLog> logs_;
    std::unordered_map<std::uint64_t, PageState> pages_;
    std::size_t logBytes_ = 0;
    std::uint64_t epochsReclaimed_ = 0;
    std::uint64_t pageCopies_ = 0;
    bool needsRecovery_ = false;
};

} // namespace specpmt::sim

#endif // SPECPMT_SIM_HYBRID_SPEC_TX_HH
