#include "sim/machine.hh"

#include "common/logging.hh"
#include "sim/ede_hw.hh"
#include "sim/hoop_hw.hh"
#include "sim/nolog_hw.hh"
#include "sim/spec_hpmt_hw.hh"

namespace specpmt::sim
{

const char *
hwSchemeName(HwScheme scheme)
{
    switch (scheme) {
      case HwScheme::Ede:
        return "EDE";
      case HwScheme::Hoop:
        return "HOOP";
      case HwScheme::SpecHpmtDp:
        return "SpecHPMT-DP";
      case HwScheme::SpecHpmt:
        return "SpecHPMT";
      case HwScheme::NoLog:
        return "no-log";
    }
    return "?";
}

const std::vector<HwScheme> &
allHwSchemes()
{
    static const std::vector<HwScheme> schemes = {
        HwScheme::Ede, HwScheme::Hoop, HwScheme::SpecHpmtDp,
        HwScheme::SpecHpmt, HwScheme::NoLog};
    return schemes;
}

std::unique_ptr<HwRuntime>
makeHwRuntime(HwScheme scheme, const SimConfig &config)
{
    switch (scheme) {
      case HwScheme::Ede:
        return std::make_unique<EdeHw>(config);
      case HwScheme::Hoop:
        return std::make_unique<HoopHw>(config);
      case HwScheme::SpecHpmtDp:
        return std::make_unique<SpecHpmtHw>(config, true);
      case HwScheme::SpecHpmt:
        return std::make_unique<SpecHpmtHw>(config, false);
      case HwScheme::NoLog:
        return std::make_unique<NoLogHw>(config);
    }
    SPECPMT_PANIC("unknown hardware scheme");
}

HwStats
simulate(HwScheme scheme, const SimConfig &config,
         const txn::MemTrace &trace)
{
    auto runtime = makeHwRuntime(scheme, config);
    return runtime->run(trace);
}

} // namespace specpmt::sim
