#include "sim/crash_explorer.hh"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <unordered_set>

#include "common/hash.hh"
#include "common/logging.hh"
#include "common/rand.hh"
#include "core/spec_tx.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "sim/hybrid_spec_tx.hh"
#include "txn/spht_tx.hh"

namespace specpmt::sim
{

namespace
{

/** Counting-pass sentinel: far beyond any bounded workload's events. */
constexpr long kCountSentinel = 1L << 40;

/** Slot-array scenario device capacity. */
constexpr std::size_t kSlotDeviceBytes = 8u << 20;

std::string
formatDouble(double value)
{
    char buffer[40];
    std::snprintf(buffer, sizeof(buffer), "%.17g", value);
    return buffer;
}

void
appendJsonEscaped(std::string &out, std::string_view text)
{
    for (char c : text) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
}

} // namespace

std::uint64_t
hashCrashImage(const std::vector<std::uint8_t> &image)
{
    // FNV-1a, folded a word at a time (the images are megabytes and
    // hashed once per crash point, so byte-at-a-time would dominate
    // exploration cost).
    std::uint64_t hash = 0xcbf29ce484222325ull;
    const std::size_t words = image.size() / 8;
    for (std::size_t i = 0; i < words; ++i) {
        std::uint64_t word;
        std::memcpy(&word, image.data() + i * 8, 8);
        hash = (hash ^ word) * 0x100000001b3ull;
    }
    for (std::size_t i = words * 8; i < image.size(); ++i)
        hash = (hash ^ image[i]) * 0x100000001b3ull;
    return hash;
}

pmem::CrashPolicy
CrashCell::policyAt(std::uint64_t event) const
{
    pmem::CrashMode mode = pmem::CrashMode::NothingExtra;
    parseCrashMode(policy, mode);
    pmem::CrashPolicy result;
    result.mode = mode;
    result.persistProbability = persistProbability;
    // Per-point seed derived from the cell seed, so the token alone
    // reproduces the RandomSubset draw.
    result.seed = mix64(seed ^ event);
    return result;
}

std::string
CrashCell::token(std::uint64_t event) const
{
    std::string out = "cmx1";
    auto put = [&out](const char *key, const std::string &value) {
        out += ';';
        out += key;
        out += '=';
        out += value;
    };
    put("rt", runtime);
    put("wl", workload);
    put("pol", policy);
    put("p", formatDouble(persistProbability));
    put("seed", std::to_string(seed));
    put("fault", fault);
    put("slots", std::to_string(slots));
    put("tx", std::to_string(txCount));
    put("st", std::to_string(maxStoresPerTx));
    put("rec", std::to_string(reclaimEvery));
    put("shards", std::to_string(kvShards));
    put("keys", std::to_string(kvKeys));
    put("ops", std::to_string(kvOps));
    // Emitted only when set so pre-epoch tokens stay byte-identical.
    if (kvEpochOps != 0)
        put("epoch", std::to_string(kvEpochOps));
    put("scale", formatDouble(scale));
    put("ev", std::to_string(event));
    return out;
}

bool
CrashCell::parseToken(std::string_view token, CrashCell &cell,
                      std::uint64_t &event, std::string &error)
{
    CrashCell parsed;
    bool have_event = false;
    std::size_t pos = 0;
    bool first = true;
    while (pos <= token.size()) {
        std::size_t next = token.find(';', pos);
        if (next == std::string_view::npos)
            next = token.size();
        const std::string_view part = token.substr(pos, next - pos);
        pos = next + 1;
        if (first) {
            first = false;
            if (part != "cmx1") {
                error = "not a cmx1 replay token";
                return false;
            }
            continue;
        }
        const std::size_t eq = part.find('=');
        if (eq == std::string_view::npos) {
            error = "malformed token field: " + std::string(part);
            return false;
        }
        const std::string_view key = part.substr(0, eq);
        const std::string value(part.substr(eq + 1));
        if (key == "rt") {
            parsed.runtime = value;
        } else if (key == "wl") {
            parsed.workload = value;
        } else if (key == "pol") {
            parsed.policy = value;
        } else if (key == "p") {
            parsed.persistProbability = std::strtod(value.c_str(),
                                                    nullptr);
        } else if (key == "seed") {
            parsed.seed = std::strtoull(value.c_str(), nullptr, 10);
        } else if (key == "fault") {
            parsed.fault = value;
        } else if (key == "slots") {
            parsed.slots =
                static_cast<unsigned>(std::strtoul(value.c_str(),
                                                   nullptr, 10));
        } else if (key == "tx") {
            parsed.txCount =
                static_cast<unsigned>(std::strtoul(value.c_str(),
                                                   nullptr, 10));
        } else if (key == "st") {
            parsed.maxStoresPerTx =
                static_cast<unsigned>(std::strtoul(value.c_str(),
                                                   nullptr, 10));
        } else if (key == "rec") {
            parsed.reclaimEvery =
                static_cast<unsigned>(std::strtoul(value.c_str(),
                                                   nullptr, 10));
        } else if (key == "shards") {
            parsed.kvShards =
                static_cast<unsigned>(std::strtoul(value.c_str(),
                                                   nullptr, 10));
        } else if (key == "keys") {
            parsed.kvKeys = std::strtoull(value.c_str(), nullptr, 10);
        } else if (key == "ops") {
            parsed.kvOps =
                static_cast<unsigned>(std::strtoul(value.c_str(),
                                                   nullptr, 10));
        } else if (key == "epoch") {
            parsed.kvEpochOps =
                static_cast<unsigned>(std::strtoul(value.c_str(),
                                                   nullptr, 10));
        } else if (key == "scale") {
            parsed.scale = std::strtod(value.c_str(), nullptr);
        } else if (key == "ev") {
            event = std::strtoull(value.c_str(), nullptr, 10);
            have_event = true;
        } else {
            error = "unknown token field: " + std::string(key);
            return false;
        }
    }
    if (!have_event) {
        error = "token is missing the event id";
        return false;
    }
    pmem::CrashMode mode;
    if (!parseCrashMode(parsed.policy, mode)) {
        error = "unknown crash policy: " + parsed.policy;
        return false;
    }
    if (parsed.fault != "none" && parsed.fault != "drop-fences") {
        error = "unknown fault: " + parsed.fault;
        return false;
    }
    cell = parsed;
    return true;
}

std::unique_ptr<txn::TxRuntime>
makeCrashRuntime(std::string_view name, pmem::PmemPool &pool,
                 unsigned threads)
{
    if (name == "hybrid") {
        HybridConfig config;
        config.hotCounterMax = 3;
        config.epochMaxBytes = 16 * 1024;
        config.epochMaxPages = 8;
        return std::make_unique<HybridSpecTx>(pool, threads, config);
    }
    if (!txn::isRecoverableRuntimeName(name)) {
        throw std::runtime_error(
            "crash exploration needs a recoverable runtime, got: " +
            std::string(name));
    }
    // Deterministic crash-test options: no background threads, small
    // log blocks to force block chaining inside the crash window.
    txn::RuntimeOptions options;
    options.backgroundWorkers = false;
    options.specLogBlockSize = 256;
    return txn::makeRuntime(name, pool, threads, options);
}

const std::vector<std::string> &
crashRuntimeNames()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> all = txn::recoverableRuntimeNames();
        all.push_back("hybrid");
        return all;
    }();
    return names;
}

bool
isCrashRuntimeName(std::string_view name)
{
    const auto &names = crashRuntimeNames();
    return std::find(names.begin(), names.end(), name) != names.end();
}

SlotScenario::SlotScenario(const CrashCell &cell)
    : cell_(cell), dev_(kSlotDeviceBytes), pool_(dev_)
{
    runtime_ = makeCrashRuntime(cell_.runtime, pool_, 1);
    // Slot array, published via a root so the scenario is honest
    // about how a real application would rediscover its data.
    dataOff_ = pool_.alloc(cell_.slots * sizeof(std::uint64_t));
    pool_.setRoot(txn::kAppRootSlotBase, dataOff_);

    // Initialize every slot through committed transactions so each
    // datum enters the durable world with a log record.
    for (unsigned base = 0; base < cell_.slots; base += 16) {
        runtime_->txBegin(0);
        for (unsigned i = base;
             i < std::min(base + 16, cell_.slots); ++i) {
            runtime_->txStoreT<std::uint64_t>(
                0, slotOff(i), static_cast<std::uint64_t>(i));
        }
        runtime_->txCommit(0);
    }
    for (unsigned i = 0; i < cell_.slots; ++i)
        committed_[i] = i;
}

PmOff
SlotScenario::slotOff(unsigned slot) const
{
    return dataOff_ + slot * sizeof(std::uint64_t);
}

bool
SlotScenario::runWithCrash(long crash_after)
{
    Rng rng(cell_.seed);
    armed_ = crash_after;
    countdown_ = std::make_shared<pmem::CrashCountdown>();
    countdown_->remaining.store(crash_after,
                                std::memory_order_relaxed);
    dev_.armCrash(countdown_);
    try {
        for (unsigned t = 0; t < cell_.txCount; ++t) {
            staged_.clear();
            runtime_->txBegin(0);
            const unsigned stores =
                1 + static_cast<unsigned>(
                        rng.below(cell_.maxStoresPerTx));
            for (unsigned i = 0; i < stores; ++i) {
                const auto slot =
                    static_cast<unsigned>(rng.below(cell_.slots));
                const std::uint64_t value = rng.next() | 1;
                runtime_->txStoreT<std::uint64_t>(0, slotOff(slot),
                                                  value);
                staged_[slot] = value;
            }
            runtime_->txCommit(0);
            for (const auto &[slot, value] : staged_)
                committed_[slot] = value;
            staged_.clear();

            if (cell_.reclaimEvery != 0 &&
                (t + 1) % cell_.reclaimEvery == 0) {
                if (auto *spec =
                        dynamic_cast<core::SpecTx *>(runtime_.get()))
                    spec->reclaimNow();
            }
        }
    } catch (const pmem::SimulatedCrash &) {
        return true;
    }
    dev_.armCrash(-1);
    return false;
}

std::uint64_t
SlotScenario::eventsConsumed() const
{
    if (!countdown_)
        return 0;
    if (countdown_->fired.load(std::memory_order_relaxed))
        return static_cast<std::uint64_t>(armed_);
    const long remaining =
        countdown_->remaining.load(std::memory_order_relaxed);
    return static_cast<std::uint64_t>(
        armed_ - (remaining < 0 ? 0 : remaining));
}

void
SlotScenario::crashAndRecover(const pmem::CrashPolicy &policy)
{
    dev_.armCrash(-1);
    runtime_.reset(); // the old process is gone
    dev_.simulateCrash(policy);
    pool_.reopenAfterCrash();
    runtime_ = makeCrashRuntime(cell_.runtime, pool_, 1);
    dataOff_ = pool_.getRoot(txn::kAppRootSlotBase);
    runtime_->recover();
}

std::string
SlotScenario::verifyAtomicity() const
{
    bool matches_committed = true;
    bool matches_overlay = true;
    for (unsigned i = 0; i < cell_.slots; ++i) {
        const auto actual = dev_.loadT<std::uint64_t>(slotOff(i));
        const std::uint64_t want_committed = committed_.at(i);
        std::uint64_t want_overlay = want_committed;
        if (auto it = staged_.find(i); it != staged_.end())
            want_overlay = it->second;
        if (actual != want_committed)
            matches_committed = false;
        if (actual != want_overlay)
            matches_overlay = false;
    }
    if (matches_committed || matches_overlay)
        return {};
    std::string failure = "partial transaction visible: ";
    for (unsigned i = 0; i < cell_.slots; ++i) {
        const auto actual = dev_.loadT<std::uint64_t>(slotOff(i));
        if (actual != committed_.at(i)) {
            failure += "slot " + std::to_string(i) + "=" +
                       std::to_string(actual) + " (committed " +
                       std::to_string(committed_.at(i)) + ") ";
        }
    }
    return failure;
}

void
SlotScenario::rebaseline()
{
    for (unsigned i = 0; i < cell_.slots; ++i)
        committed_[i] = dev_.loadT<std::uint64_t>(slotOff(i));
    staged_.clear();
}

void
SlotScenario::runMore(unsigned count, std::uint64_t seed)
{
    Rng rng(seed);
    for (unsigned t = 0; t < count; ++t) {
        runtime_->txBegin(0);
        const unsigned stores =
            1 + static_cast<unsigned>(
                    rng.below(cell_.maxStoresPerTx));
        for (unsigned i = 0; i < stores; ++i) {
            const auto slot =
                static_cast<unsigned>(rng.below(cell_.slots));
            const std::uint64_t value = rng.next() | 1;
            runtime_->txStoreT<std::uint64_t>(0, slotOff(slot),
                                              value);
            committed_[slot] = value;
        }
        runtime_->txCommit(0);
    }
    // The redo baseline applies data out of place; drain it so device
    // reads observe the committed state.
    if (auto *spht = dynamic_cast<txn::SphtTx *>(runtime_.get()))
        spht->drainReplayer();
}

std::string
SlotScenario::verifyExact() const
{
    for (unsigned i = 0; i < cell_.slots; ++i) {
        const auto actual = dev_.loadT<std::uint64_t>(slotOff(i));
        if (actual != committed_.at(i)) {
            return "slot " + std::to_string(i) + " = " +
                   std::to_string(actual) + ", expected " +
                   std::to_string(committed_.at(i));
        }
    }
    return {};
}

std::uint64_t
SlotScenario::shadowHash() const
{
    std::uint64_t hash = 0x510753CEAA101ull;
    for (const auto &[slot, value] : committed_)
        hash = hashCombine(hash, hashCombine(slot, value));
    hash = hashCombine(hash, 0x57A6EDull);
    for (const auto &[slot, value] : staged_)
        hash = hashCombine(hash, hashCombine(slot, value));
    return hash;
}

namespace
{

class SlotCrashWorkload final : public CrashWorkload
{
  public:
    explicit SlotCrashWorkload(const CrashCell &cell)
        : cell_(cell), scenario_(cell)
    {
        if (cell.fault == "drop-fences") {
            scenario_.device().injectFault(
                pmem::DeviceFault::DropFences);
        }
    }

    bool
    run(long crash_after) override
    {
        return scenario_.runWithCrash(crash_after);
    }

    std::uint64_t
    eventsConsumed() const override
    {
        return scenario_.eventsConsumed();
    }

    std::uint64_t
    pruneKey(const pmem::CrashPolicy &policy) const override
    {
        return hashCombine(
            hashCrashImage(scenario_.device().crashImage(policy)),
            scenario_.shadowHash());
    }

    void
    powerCycle(const pmem::CrashPolicy &policy) override
    {
        scenario_.crashAndRecover(policy);
    }

    std::string
    check() override
    {
        return scenario_.verifyAtomicity();
    }

    std::string
    checkContinuation() override
    {
        scenario_.rebaseline();
        scenario_.runMore(12, cell_.seed ^ 0x9e37ull);
        if (auto msg = scenario_.verifyExact(); !msg.empty())
            return "continuation: " + msg;
        scenario_.crashAndRecover(pmem::CrashPolicy::nothing());
        if (auto msg = scenario_.verifyExact(); !msg.empty())
            return "second crash: " + msg;
        return {};
    }

    std::vector<CrashImageExport>
    exportCrashImages(const pmem::CrashPolicy &policy) const override
    {
        std::vector<CrashImageExport> out(1);
        out[0].name = "slots";
        out[0].threads = 1;
        out[0].image = scenario_.device().crashImage(policy);
        return out;
    }

  private:
    CrashCell cell_;
    SlotScenario scenario_;
};

} // namespace

std::unique_ptr<CrashWorkload>
makeSlotCrashWorkload(const CrashCell &cell)
{
    return std::make_unique<SlotCrashWorkload>(cell);
}

CrashWorkloadFactory
builtinCrashWorkloadFactory()
{
    return [](const CrashCell &cell) -> std::unique_ptr<CrashWorkload> {
        if (cell.workload == "slots")
            return makeSlotCrashWorkload(cell);
        throw std::runtime_error("unknown crash workload: " +
                                 cell.workload);
    };
}

std::string
ExploreReport::toJson(const CrashCell &cell) const
{
    std::string out = "{";
    auto str = [&out](const char *key, std::string_view value,
                      bool comma = true) {
        out += '"';
        out += key;
        out += "\":\"";
        appendJsonEscaped(out, value);
        out += '"';
        if (comma)
            out += ',';
    };
    auto num = [&out](const char *key, std::uint64_t value,
                      bool comma = true) {
        out += '"';
        out += key;
        out += "\":";
        out += std::to_string(value);
        if (comma)
            out += ',';
    };
    out += "\"cell\":{";
    str("runtime", cell.runtime);
    str("workload", cell.workload);
    str("policy", cell.policy);
    out += "\"p\":" + formatDouble(cell.persistProbability) + ",";
    num("seed", cell.seed);
    str("fault", cell.fault, false);
    out += "},";
    num("shard_index", options.shardIndex);
    num("shard_count", options.shardCount);
    num("max_points", options.maxPoints);
    num("total_events", totalEvents);
    num("candidate_points", candidatePoints);
    num("explored", explored);
    num("pruned", pruned);
    num("failed", failures.size());
    if (!error.empty())
        str("error", error);
    // Per-cell observability counters: one crashmatrix process runs
    // one cell, so the process-wide registry totals are the cell's.
    out += "\"metrics\":{";
    {
        const auto snapshot = obs::Registry::global().snapshot();
        bool first = true;
        for (const auto &[name, value] : snapshot.counters) {
            const bool wanted =
                name.rfind("specpmt_crash_", 0) == 0 ||
                name.rfind("specpmt_pmem_fences_total", 0) == 0 ||
                name.rfind("specpmt_pmem_crashes_total", 0) == 0 ||
                name.rfind("specpmt_recoveries_total", 0) == 0;
            if (!wanted)
                continue;
            if (!first)
                out += ',';
            first = false;
            out += '"';
            appendJsonEscaped(out, name);
            out += "\":" + std::to_string(value);
        }
    }
    out += "},";
    out += "\"failures\":[";
    for (std::size_t i = 0; i < failures.size(); ++i) {
        if (i)
            out += ',';
        out += "{";
        num("point", failures[i].point);
        str("token", failures[i].token);
        str("message", failures[i].message, false);
        out += "}";
    }
    out += "]}";
    return out;
}

CrashExplorer::CrashExplorer(CrashCell cell,
                             CrashWorkloadFactory factory)
    : cell_(std::move(cell)), factory_(std::move(factory))
{
}

namespace
{

/** Crash-exploration counters, registered once per process. */
struct ExplorerMetrics
{
    obs::Counter &cells;
    obs::Counter &pointsExplored;
    obs::Counter &pointsPruned;
    obs::Counter &failures;

    static ExplorerMetrics &
    get()
    {
        auto &reg = obs::Registry::global();
        static ExplorerMetrics m{
            reg.counter("specpmt_crash_cells_explored_total",
                        "crash-matrix cells fully explored"),
            reg.counter("specpmt_crash_points_explored_total",
                        "crash points injected and checked"),
            reg.counter("specpmt_crash_points_pruned_total",
                        "crash points skipped as duplicate states"),
            reg.counter("specpmt_crash_failures_total",
                        "crash points that failed verification"),
        };
        return m;
    }
};

} // namespace

ExploreReport
CrashExplorer::explore(const ExploreOptions &options)
{
    SPECPMT_TRACE_SPAN("crash_explore_cell", "replay");
    ExploreReport report;
    report.options = options;

    pmem::CrashMode mode;
    if (!parseCrashMode(cell_.policy, mode)) {
        report.error = "unknown crash policy: " + cell_.policy;
        return report;
    }
    if (!isCrashRuntimeName(cell_.runtime)) {
        report.error = "runtime '" + cell_.runtime +
                       "' is not crash-recoverable (choose from the "
                       "recoverable set)";
        return report;
    }
    if (options.shardCount == 0 ||
        options.shardIndex >= options.shardCount) {
        report.error = "invalid shard selection";
        return report;
    }

    // Pass 1: count the persistence events of a full run; that bounds
    // the crash-point space.
    try {
        auto counter = factory_(cell_);
        if (!counter) {
            report.error =
                "no workload factory for '" + cell_.workload + "'";
            return report;
        }
        if (counter->run(kCountSentinel)) {
            report.error = "counting pass crashed unexpectedly";
            return report;
        }
        report.totalEvents = counter->eventsConsumed();
    } catch (const std::exception &e) {
        report.error = e.what();
        return report;
    }

    // Candidate points: this CI shard's slice of [0, totalEvents),
    // optionally bounded to maxPoints spread evenly over the run.
    std::vector<std::uint64_t> points;
    for (std::uint64_t k = options.shardIndex; k < report.totalEvents;
         k += options.shardCount) {
        points.push_back(k);
    }
    if (options.maxPoints != 0 && points.size() > options.maxPoints) {
        std::vector<std::uint64_t> picked;
        picked.reserve(options.maxPoints);
        const double stride =
            static_cast<double>(points.size()) /
            static_cast<double>(options.maxPoints);
        for (std::uint64_t i = 0; i < options.maxPoints; ++i) {
            picked.push_back(
                points[static_cast<std::size_t>(
                    static_cast<double>(i) * stride)]);
        }
        points = std::move(picked);
    }
    report.candidatePoints = points.size();

    std::atomic<std::size_t> next{0};
    std::atomic<std::uint64_t> explored{0};
    std::atomic<std::uint64_t> pruned{0};
    std::mutex mutex; // guards seen + failures
    std::unordered_set<std::uint64_t> seen;
    std::vector<CrashFailure> failures;

    auto worker = [&] {
        SPECPMT_TRACE_SPAN("crash_replay_shard", "replay");
        for (;;) {
            const std::size_t index =
                next.fetch_add(1, std::memory_order_relaxed);
            if (index >= points.size())
                return;
            const std::uint64_t point = points[index];
            const auto policy = cell_.policyAt(point);
            std::string message;
            try {
                auto workload = factory_(cell_);
                if (!workload->run(static_cast<long>(point))) {
                    message = "armed crash did not fire "
                              "(nondeterministic workload?)";
                } else {
                    const std::uint64_t key =
                        workload->pruneKey(policy);
                    {
                        std::lock_guard<std::mutex> guard(mutex);
                        if (!seen.insert(key).second) {
                            pruned.fetch_add(
                                1, std::memory_order_relaxed);
                            continue;
                        }
                    }
                    workload->powerCycle(policy);
                    message = workload->check();
                    if (message.empty() &&
                        options.verifyContinuation) {
                        message = workload->checkContinuation();
                    }
                }
            } catch (const std::exception &e) {
                message = std::string("exception: ") + e.what();
            }
            explored.fetch_add(1, std::memory_order_relaxed);
            if (!message.empty()) {
                std::lock_guard<std::mutex> guard(mutex);
                failures.push_back(
                    {point, cell_.token(point), message});
            }
        }
    };

    unsigned jobs = options.jobs;
    if (jobs == 0) {
        jobs = std::max(1u,
                        std::min(8u,
                                 std::thread::hardware_concurrency() /
                                     2));
    }
    jobs = static_cast<unsigned>(
        std::min<std::size_t>(jobs, std::max<std::size_t>(
                                        points.size(), 1)));
    if (jobs <= 1) {
        worker();
    } else {
        std::vector<std::thread> threads;
        threads.reserve(jobs);
        for (unsigned i = 0; i < jobs; ++i)
            threads.emplace_back(worker);
        for (auto &thread : threads)
            thread.join();
    }

    std::sort(failures.begin(), failures.end(),
              [](const CrashFailure &a, const CrashFailure &b) {
                  return a.point < b.point;
              });
    report.explored = explored.load();
    report.pruned = pruned.load();
    report.failures = std::move(failures);
    auto &metrics = ExplorerMetrics::get();
    metrics.cells.add();
    metrics.pointsExplored.add(report.explored);
    metrics.pointsPruned.add(report.pruned);
    metrics.failures.add(report.failures.size());
    return report;
}

ReplayResult
CrashExplorer::replay(std::string_view token,
                      const CrashWorkloadFactory &factory,
                      bool verify_continuation)
{
    ReplayResult result;
    if (!CrashCell::parseToken(token, result.cell, result.point,
                               result.error)) {
        return result;
    }
    try {
        auto workload = factory(result.cell);
        if (!workload) {
            result.error = "no workload factory for '" +
                           result.cell.workload + "'";
            return result;
        }
        result.fired =
            workload->run(static_cast<long>(result.point));
        const auto policy = result.cell.policyAt(result.point);
        workload->powerCycle(policy);
        result.failure = workload->check();
        if (result.failure.empty() && verify_continuation)
            result.failure = workload->checkContinuation();
    } catch (const std::exception &e) {
        result.error = e.what();
    }
    return result;
}

} // namespace specpmt::sim
