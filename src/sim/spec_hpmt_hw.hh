/**
 * @file
 * Hardware SpecPMT model (Section 5): hybrid undo/speculative logging
 * steered by TLB hotness tracking, PBit/LogBit cache-line flags, and
 * epoch-based foreground log reclamation.
 *
 * Cold pages get EDE-style undo logging with synchronous data
 * persistence at commit. Pages crossing the 3-bit store-counter
 * threshold are bulk-copied into the log (the ARMv9-style copy
 * engine) and switch to speculative logging: their dirty lines are
 * logged sequentially at commit and *not* persisted — they drain to
 * PM on natural cache eviction (PBit) or at epoch reclamation. The
 * -DP variant persists hot data at commit too, isolating the benefit
 * of eliding data persistence (Section 7.1.3).
 */

#ifndef SPECPMT_SIM_SPEC_HPMT_HW_HH
#define SPECPMT_SIM_SPEC_HPMT_HW_HH

#include <vector>

#include "sim/hw_runtime.hh"
#include "sim/tlb.hh"

namespace specpmt::sim
{

/** Hardware SpecPMT (SpecHPMT / SpecHPMT-DP). */
class SpecHpmtHw : public HwRuntime
{
  public:
    /**
     * @param config  Machine parameters.
     * @param data_persist_on_commit  Build the -DP variant.
     */
    SpecHpmtHw(const SimConfig &config,
               bool data_persist_on_commit = false);

    const char *
    name() const override
    {
        return dp_ ? "spec-hpmt-dp" : "spec-hpmt";
    }

    /** TLB model introspection for tests. */
    TlbModel &tlb() { return tlb_; }

  protected:
    void store(PmOff off, std::uint32_t size) override;
    void commit() override;
    void finishRun() override;

  private:
    struct Epoch
    {
        std::size_t bytes = 0;
        unsigned pages = 0;
        /** Speculatively logged lines awaiting data persistence. */
        std::unordered_set<std::uint64_t> loggedLines;
        bool live = false;
    };

    /** Start a new epoch when the current one is over its budget. */
    void maybeAdvanceEpoch();

    /** Reclaim epoch @p eid (Section 5.2.1's three steps). */
    void reclaimEpoch(EpochId eid);

    TlbModel tlb_;
    bool dp_;
    /** Epoch slots; ID 0 is reserved for cold pages (Section 5.2.1). */
    std::vector<Epoch> epochs_;
    /** Live epoch IDs, oldest first. */
    std::vector<EpochId> liveOrder_;
    EpochId currentEpoch_ = 1;

    std::unordered_set<std::uint64_t> txDirtyHot_;
    std::unordered_set<std::uint64_t> txDirtyCold_;
    std::unordered_set<std::uint64_t> txColdLogged_;
    unsigned commitsSinceDecay_ = 0;
};

} // namespace specpmt::sim

#endif // SPECPMT_SIM_SPEC_HPMT_HW_HH
