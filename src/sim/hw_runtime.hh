/**
 * @file
 * Base class for the trace-driven hardware persistent-transaction
 * models compared in Section 7.3: EDE (baseline), HOOP, hardware
 * SpecPMT (and its -DP variant), and the no-log ideal.
 *
 * All models share one core/cache/WPQ cost structure; they differ only
 * in the persistence events their protocols generate — log appends
 * (sequential PM writes, which enjoy XPLine combining), data-line
 * flushes (scattered PM writes), commit fences, background GC bursts,
 * page copies, and epoch reclamation. The time and traffic differences
 * between schemes therefore come exclusively from counted protocol
 * events, never from per-scheme fudge factors.
 */

#ifndef SPECPMT_SIM_HW_RUNTIME_HH
#define SPECPMT_SIM_HW_RUNTIME_HH

#include <cstdint>
#include <string>
#include <unordered_set>

#include "common/types.hh"
#include "pmem/pmem_timing.hh"
#include "sim/cache.hh"
#include "sim/sim_config.hh"
#include "txn/trace.hh"

namespace specpmt::sim
{

/** Timing/traffic results of one trace replay. */
struct HwStats
{
    SimNs ns = 0;                 ///< simulated execution time
    std::uint64_t txs = 0;
    std::uint64_t fences = 0;
    std::uint64_t pmDataLineWrites = 0; ///< scattered data persists
    std::uint64_t pmLogLineWrites = 0;  ///< sequential log persists
    std::uint64_t l1Hits = 0;
    std::uint64_t l2Hits = 0;
    std::uint64_t memFills = 0;
    std::uint64_t tlbMisses = 0;
    std::uint64_t pageCopies = 0;     ///< cold->hot bulk page logs
    std::uint64_t gcRuns = 0;         ///< HOOP garbage collections
    std::uint64_t epochsReclaimed = 0;
    std::size_t peakLogBytes = 0;     ///< high-water log footprint
    std::size_t dataFootprintBytes = 0; ///< distinct durable lines * 64

    /** Total PM line writes (Figure 14's metric). */
    std::uint64_t
    pmLineWrites() const
    {
        return pmDataLineWrites + pmLogLineWrites;
    }
};

/** Abstract hardware transaction model; see file comment. */
class HwRuntime
{
  public:
    explicit HwRuntime(const SimConfig &config);
    virtual ~HwRuntime() = default;

    HwRuntime(const HwRuntime &) = delete;
    HwRuntime &operator=(const HwRuntime &) = delete;

    /** Scheme name as used in the paper's figures. */
    virtual const char *name() const = 0;

    /** Replay a whole trace (single worker thread). */
    const HwStats &run(const txn::MemTrace &trace);

    const HwStats &stats() const { return stats_; }

  protected:
    /** @name Protocol hooks */
    /// @{
    virtual void txBegin() {}
    virtual void store(PmOff off, std::uint32_t size) = 0;

    virtual void
    load(PmOff off, std::uint32_t size)
    {
        accessLines(off, size, false);
    }

    virtual void commit() = 0;

    /** End-of-trace: make everything durable so totals compare. */
    virtual void finishRun();
    /// @}

    /** @name Shared cost helpers */
    /// @{

    /** Touch the cache for every line of [off, off+size). */
    void accessLines(PmOff off, std::uint32_t size, bool is_write);

    /** Append @p lines sequential log lines (WPQ, XPLine-friendly). */
    void logAppendLines(std::uint64_t lines);

    /**
     * Append @p lines sequential log lines through the bulk copy
     * engine (Section 5.1's ARMv9-style primitive): consumes drain
     * bandwidth without stalling the core.
     */
    void logAppendLinesAsync(std::uint64_t lines);

    /**
     * Accumulate @p bytes of log payload, emitting a line write for
     * every full cache line (log records stream out coalesced).
     */
    void logAppendBytes(std::size_t bytes);

    /** Flush the partially filled log line, if any. */
    void logFlushPartial();

    /** Flush one (scattered) data line toward PM. */
    void persistDataLine(std::uint64_t line);

    /** Store fence: drain the WPQ. */
    void fence();

    /** Account a change in the live log footprint. */
    void noteLogBytes(std::ptrdiff_t delta);

    /// @}

    SimConfig config_;
    pmem::PmemTiming timing_;
    CacheModel cache_;
    HwStats stats_;
    /** Distinct durable lines ever stored (footprint metric). */
    std::unordered_set<std::uint64_t> touchedLines_;
    /** Live log bytes (peak recorded in stats_). */
    std::size_t logBytes_ = 0;
    /** Monotonic line cursor giving log appends sequential addresses. */
    std::uint64_t logCursor_ = 1ull << 40;
    /** Bytes accumulated toward the next full log line. */
    std::size_t logPartialBytes_ = 0;
};

} // namespace specpmt::sim

#endif // SPECPMT_SIM_HW_RUNTIME_HH
