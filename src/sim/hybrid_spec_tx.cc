#include "sim/hybrid_spec_tx.hh"

#include <algorithm>
#include <unordered_set>

#include "common/logging.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace specpmt::sim
{

namespace
{

/** Hybrid-runtime counters, registered once per process. */
struct HybridMetrics
{
    obs::Counter &pagePromotions;
    obs::Counter &recoveries;

    static HybridMetrics &
    get()
    {
        auto &reg = obs::Registry::global();
        static HybridMetrics m{
            reg.counter("specpmt_hybrid_page_promotions_total",
                        "hybrid runtime cold->hot page snapshots"),
            reg.counter("specpmt_hybrid_recoveries_total",
                        "hybrid runtime recoveries"),
        };
        return m;
    }
};

} // namespace

using core::BlockHeader;
using core::DecodedSegment;
using core::EntryHead;
using core::entryBytes;
using core::kSegFinal;
using core::kSegPage;
using core::kSegUndo;
using core::SegHead;
using core::segmentCrc;
using core::walkChain;

HybridSpecTx::HybridSpecTx(pmem::PmemPool &pool, unsigned num_threads,
                           const HybridConfig &config)
    : TxRuntime(pool, num_threads), config_(config), logs_(num_threads)
{
    if (pool_.getRoot(txn::logHeadSlot(0)) != kPmNull) {
        needsRecovery_ = true;
        return;
    }
    for (unsigned tid = 0; tid < num_threads; ++tid)
        initThreadLog(tid);
}

void
HybridSpecTx::initThreadLog(unsigned tid)
{
    auto &log = logs_[tid];
    log.blocks.clear();

    // Log blocks are whole pages: a page snapshot of hot *data* must
    // never cover log bytes (the hardware's log region is disjoint
    // from transactional data by construction).
    const std::size_t block_bytes =
        (config_.logBlockSize + kPageSize - 1) & ~(kPageSize - 1);
    const PmOff block = pool_.allocAligned(block_bytes, kPageSize);
    BlockHeader header{kPmNull, kPmNull, pool_.allocationSize(block), 0};
    dev_.storeT(block, header);
    dev_.storeT<std::uint64_t>(block + sizeof(BlockHeader), 0);
    // The hardware log engine writes structure through the ordered
    // path; no fence needed.
    dev_.adrPersist(block, sizeof(BlockHeader) + 8);
    pool_.setRoot(txn::logHeadSlot(tid), block);

    log.seqSlotOff = pool_.alloc(sizeof(std::uint64_t));
    dev_.storeT<std::uint64_t>(log.seqSlotOff, 0);
    dev_.adrPersist(log.seqSlotOff, 8, pmem::TrafficClass::Meta);
    pool_.setRoot(hybridSeqSlot(tid), log.seqSlotOff);

    log.blocks.push_back(block);
    log.tailPos = sizeof(BlockHeader);
    log.txSeq = 0;
    log.inTx = false;
    log.epochs.clear();
    log.epochs.push_back({log.nextEpochId++, 0, {}, 0});
    logBytes_ += pool_.allocationSize(block);
}

void
HybridSpecTx::attachBlock(ThreadLog &log, std::size_t min_bytes,
                          bool persist_now)
{
    std::size_t size = config_.logBlockSize;
    const std::size_t need = sizeof(BlockHeader) + min_bytes + 8;
    if (need > size)
        size = need;
    // Whole pages, page-aligned: see initThreadLog.
    size = (size + kPageSize - 1) & ~(kPageSize - 1);

    const PmOff block = pool_.allocAligned(size, kPageSize);
    size = pool_.allocationSize(block);
    const PmOff old_tail = log.blocks.back();

    BlockHeader header{kPmNull, old_tail, size, 0};
    dev_.storeT(block, header);
    dev_.storeT<std::uint64_t>(block + sizeof(BlockHeader), 0);
    dev_.storeT<PmOff>(old_tail + offsetof(BlockHeader, next), block);
    if (persist_now) {
        dev_.adrPersist(block, sizeof(BlockHeader) + 8);
        dev_.adrPersist(old_tail + offsetof(BlockHeader, next),
                        sizeof(PmOff));
    }

    log.blocks.push_back(block);
    log.tailPos = sizeof(BlockHeader);
    logBytes_ += size;
}

PmOff
HybridSpecTx::reserve(ThreadLog &log, std::size_t bytes,
                      bool persist_now)
{
    const PmOff base = log.blocks.back();
    const auto cap = static_cast<std::size_t>(dev_.loadT<std::uint64_t>(
        base + offsetof(BlockHeader, capacity)));
    if (log.tailPos + bytes + 8 > cap)
        attachBlock(log, bytes, persist_now);
    return log.blocks.back() + log.tailPos;
}

PmOff
HybridSpecTx::emitSegment(
    ThreadLog &log, std::uint32_t flags, TxTimestamp stamp,
    const std::vector<std::pair<PmOff, std::size_t>> &ranges,
    bool persist_now)
{
    std::size_t bytes = sizeof(SegHead);
    for (const auto &[off, size] : ranges)
        bytes += entryBytes(size);

    const PmOff pos = reserve(log, bytes, persist_now);
    PmOff cursor = pos + sizeof(SegHead);
    std::vector<std::uint8_t> value;
    for (const auto &[off, size] : ranges) {
        EntryHead head{off, static_cast<std::uint32_t>(size), 0};
        dev_.storeT(cursor, head);
        value.resize(size);
        dev_.load(off, value.data(), size);
        dev_.store(cursor + sizeof(EntryHead), value.data(), size);
        cursor += entryBytes(size);
    }

    SegHead head;
    head.sizeBytes = static_cast<std::uint32_t>(bytes);
    head.timestamp = stamp;
    head.flags = flags;
    head.numEntries = static_cast<std::uint32_t>(ranges.size());
    head.crc = segmentCrc(dev_, pos, head);
    dev_.storeT(pos, head);
    log.tailPos = pos + bytes - log.blocks.back();
    // Poison the next slot so walkers stop at the tail.
    dev_.storeT<std::uint64_t>(log.blocks.back() + log.tailPos, 0);

    if (persist_now)
        dev_.adrPersist(pos, bytes + 8);

    log.epochs.back().bytes += bytes;
    return pos;
}

void
HybridSpecTx::txBegin(ThreadId tid)
{
    SPECPMT_ASSERT(!needsRecovery_);
    auto &log = logs_.at(tid);
    SPECPMT_ASSERT(!log.inTx);
    log.inTx = true;
    ++log.txSeq;
    log.coldLogged.clear();
    log.coldWrites.clear();
    log.hotWrites.clear();
}

void
HybridSpecTx::txStore(ThreadId tid, PmOff off, const void *src,
                      std::size_t size)
{
    auto &log = logs_.at(tid);
    SPECPMT_ASSERT(log.inTx);
    const auto *bytes = static_cast<const std::uint8_t *>(src);

    // Process page by page: hotness is a page property.
    std::size_t done = 0;
    while (done < size) {
        const PmOff piece_off = off + done;
        const std::size_t in_page =
            std::min<std::size_t>(size - done,
                                  pageBase(piece_off) + kPageSize -
                                      piece_off);
        const std::uint64_t page = pageIndex(piece_off);
        PageState &state = pages_[page];

        if (!state.hot) {
            if (state.counter < config_.hotCounterMax)
                ++state.counter;
            if (state.counter >= config_.hotCounterMax) {
                // Cold -> hot: bulk-copy the page into the log; the
                // snapshot precedes this store, so it doubles as the
                // undo record for the rest of the transaction
                // (Section 5.1.1, invariant 2). The record carries a
                // global timestamp (for step-iii chronological replay
                // once its transaction commits) and a marker entry
                // binding it to this transaction's sequence number.
                dev_.storeT<std::uint64_t>(log.seqSlotOff, log.txSeq);
                emitSegment(log, kSegPage, nextTimestamp(),
                            {{log.seqSlotOff, sizeof(std::uint64_t)},
                             {pageBase(piece_off), kPageSize}},
                            /*persist_now=*/true);
                ++pageCopies_;
                HybridMetrics::get().pagePromotions.add();
                state.hot = true;
                state.epoch = log.epochs.back().id;
                log.epochs.back().pages.push_back(page);
            }
        }

        if (state.hot) {
            log.hotWrites.add(piece_off, in_page);
        } else {
            // Undo-log the first update of each cold byte range
            // through the ordered no-fence path, then update in
            // place; the data itself persists at commit.
            const auto gaps = log.coldLogged.uncovered(piece_off,
                                                       in_page);
            if (!gaps.empty()) {
                emitSegment(log, kSegUndo, log.txSeq, gaps,
                            /*persist_now=*/true);
                for (const auto &[gap_off, gap_size] : gaps)
                    log.coldLogged.add(gap_off, gap_size);
            }
            log.coldWrites.add(piece_off, in_page);
        }

        dev_.store(piece_off, bytes + done, in_page);
        done += in_page;
    }
}

void
HybridSpecTx::txCommit(ThreadId tid)
{
    auto &log = logs_.at(tid);
    SPECPMT_ASSERT(log.inTx);
    log.inTx = false;

    // Publish the committed sequence number through the commit
    // record itself (its replay rebuilds the cell).
    dev_.storeT<std::uint64_t>(log.seqSlotOff, log.txSeq);

    // The commit record carries the new values of the hot write set
    // plus the sequence-cell update.
    std::vector<std::pair<PmOff, std::size_t>> hot_ranges;
    log.hotWrites.forEachInterval([&](PmOff start, std::size_t len) {
        hot_ranges.emplace_back(start, len);
    });
    std::vector<std::pair<PmOff, std::size_t>> ranges = hot_ranges;
    ranges.emplace_back(log.seqSlotOff, sizeof(std::uint64_t));
    std::size_t seg_bytes = sizeof(SegHead);
    for (const auto &[off, size] : ranges)
        seg_bytes += entryBytes(size);

    const TxTimestamp ts = nextTimestamp();
    const PmOff pos =
        emitSegment(log, core::segFlagsWithCount(kSegFinal, 1), ts,
                    ranges, /*persist_now=*/false);

    // One flush batch + one fence: the commit record (checksum = the
    // commit flag) plus the cold write set's data lines.
    dev_.clwbRange(pos, seg_bytes + 8, pmem::TrafficClass::Log);
    log.coldWrites.forEachLine([&](std::uint64_t line) {
        dev_.clwb(line * kCacheLineSize, pmem::TrafficClass::Data);
    });
    dev_.sfence();

    // Epoch bookkeeping: note the pages this commit's records cover.
    auto &epoch = log.epochs.back();
    std::unordered_set<std::uint64_t> touched;
    for (const auto &[off, size] : hot_ranges) {
        for (std::uint64_t page = pageIndex(off);
             page <= pageIndex(off + size - 1); ++page) {
            touched.insert(page);
        }
    }
    for (std::uint64_t page : touched)
        epoch.pages.push_back(page);

    maybeReclaim(tid);
}

void
HybridSpecTx::maybeReclaim(ThreadId tid)
{
    auto &log = logs_[tid];
    Epoch &open = log.epochs.back();
    if (open.bytes <= config_.epochMaxBytes &&
        open.pages.size() <= config_.epochMaxPages) {
        return;
    }
    // startepoch: close the open epoch, begin a fresh one at the
    // current tail block.
    log.epochs.push_back(
        {log.nextEpochId++, 0, {}, log.blocks.size() - 1});
    while (log.epochs.size() > 2)
        reclaimOldestEpoch(tid);
}

void
HybridSpecTx::reclaimOldestEpoch(ThreadId tid)
{
    auto &log = logs_[tid];
    SPECPMT_ASSERT(log.epochs.size() >= 2);
    Epoch epoch = log.epochs.front();
    log.epochs.erase(log.epochs.begin());

    // Step 1: persist every page the epoch's records cover, so no
    // datum depends on the records afterwards.
    for (std::uint64_t page : epoch.pages)
        dev_.clwbRange(page * kPageSize, kPageSize,
                       pmem::TrafficClass::Data);
    dev_.sfence();

    // Step 2: clearepoch — pages whose EID matches go cold.
    for (std::uint64_t page : epoch.pages) {
        auto it = pages_.find(page);
        if (it != pages_.end() && it->second.hot &&
            it->second.epoch == epoch.id) {
            it->second = PageState{};
        }
    }

    // Step 3: release the epoch's log blocks (the chain prefix up to
    // where the successor epoch begins).
    const std::size_t cut = log.epochs.front().startBlockIndex;
    if (cut == 0) {
        ++epochsReclaimed_;
        return; // successor shares the tail block: nothing to free
    }
    const PmOff new_head = log.blocks[cut];
    dev_.storeT<PmOff>(new_head + offsetof(BlockHeader, prev), kPmNull);
    dev_.adrPersist(new_head + offsetof(BlockHeader, prev),
                    sizeof(PmOff));
    pool_.setRoot(txn::logHeadSlot(tid), new_head);
    for (std::size_t i = 0; i < cut; ++i) {
        logBytes_ -= pool_.allocationSize(log.blocks[i]);
        pool_.free(log.blocks[i]);
    }
    log.blocks.erase(log.blocks.begin(),
                     log.blocks.begin() + static_cast<std::ptrdiff_t>(
                                              cut));
    for (auto &remaining : log.epochs)
        remaining.startBlockIndex -= cut;
    ++epochsReclaimed_;
}

std::size_t
HybridSpecTx::hotPageCount() const
{
    std::size_t count = 0;
    for (const auto &[page, state] : pages_) {
        if (state.hot)
            ++count;
    }
    return count;
}

void
HybridSpecTx::recover()
{
    SPECPMT_TRACE_SPAN("hybrid_recover", "recovery");
    HybridMetrics::get().recoveries.add();
    struct CommitRecord
    {
        TxTimestamp ts;
        unsigned tid;
        std::vector<core::DecodedEntry> entries;
    };
    std::vector<CommitRecord> commits;

    for (unsigned tid = 0; tid < numThreads_; ++tid) {
        const PmOff root = pool_.getRoot(txn::logHeadSlot(tid));
        const PmOff seq_slot = pool_.getRoot(hybridSeqSlot(tid));
        if (root == kPmNull)
            continue;

        std::vector<DecodedSegment> undo_segs;
        std::vector<DecodedSegment> page_segs;
        std::vector<DecodedSegment> commit_segs;
        walkChain(dev_, root, [&](const DecodedSegment &seg) {
            if (seg.flags & kSegUndo)
                undo_segs.push_back(seg);
            else if (seg.flags & kSegPage)
                page_segs.push_back(seg);
            else if (seg.flags & kSegFinal)
                commit_segs.push_back(seg);
        });

        // Committed sequence numbers are the values the commit
        // records wrote into this thread's sequence cell.
        std::unordered_set<std::uint64_t> committed_seqs;
        for (const auto &seg : commit_segs) {
            seedTimestamp(seg.timestamp);
            for (const auto &entry : seg.entries) {
                if (entry.dataOff == seq_slot && entry.size == 8) {
                    committed_seqs.insert(
                        dev_.loadT<std::uint64_t>(entry.valuePos));
                }
            }
        }

        // A page record's owning transaction is named by its marker
        // entry (the sequence-cell snapshot taken at creation).
        const auto page_seg_seq = [&](const DecodedSegment &seg) {
            for (const auto &entry : seg.entries) {
                if (entry.dataOff == seq_slot && entry.size == 8)
                    return dev_.loadT<std::uint64_t>(entry.valuePos);
            }
            return ~std::uint64_t{0};
        };

        std::vector<std::uint8_t> value;
        const auto apply = [&](const core::DecodedEntry &entry) {
            value.resize(entry.size);
            dev_.load(entry.valuePos, value.data(), entry.size);
            dev_.store(entry.dataOff, value.data(), entry.size);
        };

        // Step (i): uncommitted page records restore whole pages.
        for (const auto &seg : page_segs) {
            if (!committed_seqs.count(page_seg_seq(seg))) {
                for (const auto &entry : seg.entries)
                    apply(entry);
            }
        }
        // Step (ii): uncommitted undo records, newest first.
        for (auto it = undo_segs.rbegin(); it != undo_segs.rend();
             ++it) {
            if (!committed_seqs.count(it->timestamp)) {
                for (const auto &entry : it->entries)
                    apply(entry);
            }
        }
        // Committed speculative records — page snapshots and commit
        // records alike — replay chronologically in step (iii).
        for (const auto &seg : page_segs) {
            if (committed_seqs.count(page_seg_seq(seg)))
                commits.push_back({seg.timestamp, tid, seg.entries});
        }
        for (const auto &seg : commit_segs)
            commits.push_back({seg.timestamp, tid, seg.entries});
    }

    // Step (iii): committed speculative records, chronologically,
    // across all threads.
    std::sort(commits.begin(), commits.end(),
              [](const CommitRecord &a, const CommitRecord &b) {
                  return a.ts < b.ts;
              });
    std::vector<std::uint8_t> value;
    for (const auto &commit : commits) {
        for (const auto &entry : commit.entries) {
            value.resize(entry.size);
            dev_.load(entry.valuePos, value.data(), entry.size);
            dev_.store(entry.dataOff, value.data(), entry.size);
        }
    }

    // Make the recovered state durable, then start over with fresh
    // logs and all pages cold: the cold path undo-logs before any
    // future update, so coverage is re-established on demand.
    dev_.drainAll();
    pages_.clear();
    logBytes_ = 0;
    for (unsigned tid = 0; tid < numThreads_; ++tid)
        initThreadLog(tid);
    needsRecovery_ = false;
}

} // namespace specpmt::sim
