/**
 * @file
 * HOOP (Cai et al., ISCA'20) model — the hardware out-of-place-update
 * comparator of Section 7.3. Write intents stream into a PM log
 * through an on-chip buffer (no fences, asynchronous persistence);
 * commit persists only the log. A background garbage collector
 * coalesces log records and applies them to the home data locations
 * in 128KB batches, contending with the application for the memory
 * controller's write pending queue — the contention SpecHPMT avoids
 * (Section 7.3).
 */

#ifndef SPECPMT_SIM_HOOP_HW_HH
#define SPECPMT_SIM_HOOP_HW_HH

#include "sim/hw_runtime.hh"

namespace specpmt::sim
{

/** HOOP out-of-place hardware model. */
class HoopHw : public HwRuntime
{
  public:
    explicit HoopHw(const SimConfig &config) : HwRuntime(config) {}

    const char *name() const override { return "hoop"; }

  protected:
    void
    store(PmOff off, std::uint32_t size) override
    {
        accessLines(off, size, true);

        // Each update appends a write intent (addr + data) to the log.
        pendingLogBytes_ += 16 + size;
        noteLogBytes(16 + size);
        while (pendingLogBytes_ >= kCacheLineSize) {
            logAppendLines(1);
            pendingLogBytes_ -= kCacheLineSize;
        }

        const std::uint64_t first = lineIndex(off);
        const std::uint64_t last = lineIndex(off + size - 1);
        for (std::uint64_t line = first; line <= last; ++line)
            gcPendingLines_.insert(line);
    }

    void
    commit() override
    {
        // Persist the partial log line plus the commit record; data
        // stays un-persisted (address indirection serves reads).
        logAppendLines(1 + (pendingLogBytes_ ? 1 : 0));
        pendingLogBytes_ = 0;
        fence();

        if (logBytes_ >= config_.hoopGcBatchBytes)
            runGc();
    }

    void
    finishRun() override
    {
        runGc();
        HwRuntime::finishRun();
    }

  private:
    void
    runGc()
    {
        if (gcPendingLines_.empty())
            return;
        // The GC coalesces all log records of the batch and applies
        // one write per distinct home line — through the same WPQ the
        // application uses, which is where the contention comes from.
        for (std::uint64_t line : gcPendingLines_) {
            persistDataLine(line);
            cache_.clean(line);
        }
        gcPendingLines_.clear();
        noteLogBytes(-static_cast<std::ptrdiff_t>(logBytes_));
        ++stats_.gcRuns;
    }

    std::size_t pendingLogBytes_ = 0;
    std::unordered_set<std::uint64_t> gcPendingLines_;
};

} // namespace specpmt::sim

#endif // SPECPMT_SIM_HOOP_HW_HH
