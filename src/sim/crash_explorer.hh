/**
 * @file
 * Exhaustive crash-schedule exploration ("crashmatrix").
 *
 * The crash-consistency claim of every runtime here — the speculative
 * log is a redo log for committed transactions and an undo log for
 * interrupted ones — is only as strong as the set of crash points
 * actually tested. Hand-picked crash_after sweeps miss crashes inside
 * block-chain splices, mid-compaction and commit-fence races. This
 * module enumerates *every* persistence-event crash point of a
 * deterministic workload run instead of sampling a few:
 *
 *  1. a counting pass runs the workload once with a sentinel
 *     countdown and reads back how many persistence events the run
 *     consumed — that bounds the crash-point space [0, E);
 *  2. a sharded parallel driver replays the workload once per crash
 *     point k (the k-th persistence event throws SimulatedCrash),
 *     pruning points whose post-crash state — persistent image plus
 *     acknowledged-transaction shadow — is bit-identical to an
 *     already-explored point (recovery is deterministic, so equal
 *     inputs cannot produce new outcomes);
 *  3. every surviving point is power-cycled, recovered, and checked
 *     to land on a committed-transaction prefix.
 *
 * Each point is described by a *replay token*: one string carrying the
 * full cell (runtime x workload x crash policy x RNG seed x sizing)
 * plus the event id, so any failing schedule reproduces
 * deterministically from the token alone.
 *
 * The slot-array scenario formerly private to tests/crash_harness.hh
 * lives here as SlotScenario; KvService and the STAMP-analog workloads
 * plug in through the CrashWorkload interface.
 */

#ifndef SPECPMT_SIM_CRASH_EXPLORER_HH
#define SPECPMT_SIM_CRASH_EXPLORER_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "pmem/crash_policy.hh"
#include "pmem/pmem_device.hh"
#include "pmem/pmem_pool.hh"
#include "txn/runtime_factory.hh"
#include "txn/tx_runtime.hh"

namespace specpmt::sim
{

/**
 * One cell of the crash matrix: everything needed to re-create a
 * workload run bit-for-bit. A cell plus an event id is a replay token.
 */
struct CrashCell
{
    std::string runtime = "spec";   ///< makeCrashRuntime() name
    std::string workload = "slots"; ///< workload factory name
    std::string policy = "nothing"; ///< crashModeName()
    double persistProbability = 0.5;
    std::uint64_t seed = 42;
    std::string fault = "none"; ///< "none" | "drop-fences"

    /** @name slots workload sizing */
    /// @{
    unsigned slots = 64;
    unsigned txCount = 16;
    unsigned maxStoresPerTx = 4;
    unsigned reclaimEvery = 0;
    /// @}

    /** @name kv workload sizing */
    /// @{
    unsigned kvShards = 2;
    std::uint64_t kvKeys = 48;
    unsigned kvOps = 24;
    /**
     * Nonzero = epoch group commit: mutations commit relaxed and the
     * workload seals every shard's epoch after this many mutations
     * (and at run end). Crash points then fall on epoch boundaries,
     * mid-epoch, and mid-seal; verification accepts the sealed state
     * plus any per-shard prefix of the unsealed mutations. Only
     * meaningful for group-commit-capable runtimes.
     */
    unsigned kvEpochOps = 0;
    /// @}

    /** STAMP-analog workload scale. */
    double scale = 0.05;

    /** Crash policy applied at crash point @p event. */
    pmem::CrashPolicy policyAt(std::uint64_t event) const;

    /** Serialize this cell + @p event as a replay token. */
    std::string token(std::uint64_t event) const;

    /**
     * Parse a token() string. On success fills @p cell and @p event
     * and returns true; on failure returns false with @p error set.
     */
    static bool parseToken(std::string_view token, CrashCell &cell,
                           std::uint64_t &event, std::string &error);
};

/** A saved post-crash device image, ready for offline inspection. */
struct CrashImageExport
{
    std::string name;     ///< e.g. "slots", "shard0"
    unsigned threads = 1; ///< runtime thread count behind the image
    std::vector<std::uint8_t> image;
};

/**
 * A workload instance the explorer can crash once. Construction runs
 * setup (and applies the cell's injected fault); the explorer then
 * calls run() exactly once, followed by pruneKey()/powerCycle()/
 * check() for points that survive pruning.
 */
class CrashWorkload
{
  public:
    virtual ~CrashWorkload() = default;

    /**
     * Arm a crash after @p crash_after persistence events and run the
     * workload. @return true if the simulated power failure fired.
     */
    virtual bool run(long crash_after) = 0;

    /** Persistence events consumed by the last run(). */
    virtual std::uint64_t eventsConsumed() const = 0;

    /**
     * 64-bit digest of the post-crash state under @p policy: the
     * persistent image(s) combined with the acknowledged-transaction
     * shadow. Two points with equal keys recover identically, so one
     * representative exploration covers both (the pruning rule).
     */
    virtual std::uint64_t
    pruneKey(const pmem::CrashPolicy &policy) const = 0;

    /** Power-cycle under @p policy, re-open and run recovery. */
    virtual void powerCycle(const pmem::CrashPolicy &policy) = 0;

    /** Consistency check; empty string on success. */
    virtual std::string check() = 0;

    /**
     * Optional phase 2: keep using the recovered pool and re-verify
     * (including a second crash). Empty string on success.
     */
    virtual std::string checkContinuation() { return {}; }

    /**
     * The post-crash persistent image(s) under @p policy, for
     * offline forensic analysis (tools/pminspect, crashmatrix
     * --explain). Meaningful after run() fired and before
     * powerCycle() mutates the devices. Default: none.
     */
    virtual std::vector<CrashImageExport>
    exportCrashImages(const pmem::CrashPolicy &policy) const
    {
        (void)policy;
        return {};
    }
};

/** Constructs a workload instance for a cell; throws on a bad cell. */
using CrashWorkloadFactory =
    std::function<std::unique_ptr<CrashWorkload>(const CrashCell &)>;

/** 64-bit digest of a crash image (word-folded FNV-1a). */
std::uint64_t hashCrashImage(const std::vector<std::uint8_t> &image);

/**
 * Build a runtime configured for deterministic crash testing: no
 * background threads, small log blocks (to force block chaining and
 * multi-segment transactions inside the crash window). Accepts the
 * recoverable factory names plus "hybrid" (the hardware
 * hybrid-logging protocol's functional model).
 */
std::unique_ptr<txn::TxRuntime> makeCrashRuntime(std::string_view name,
                                                 pmem::PmemPool &pool,
                                                 unsigned threads);

/** Runtime names makeCrashRuntime() accepts. */
const std::vector<std::string> &crashRuntimeNames();

/** True if makeCrashRuntime() accepts @p name. */
bool isCrashRuntimeName(std::string_view name);

/**
 * The randomized slot-array transactional scenario (promoted from the
 * old test-only crash harness): a slot array published via a pool
 * root, mutated by randomized transactions, with a shadow of the
 * committed and in-flight state for atomic-durability checking.
 * Usable directly (recovery-idempotence tests drive the phases by
 * hand) or through the explorer via makeSlotCrashWorkload().
 */
class SlotScenario
{
  public:
    explicit SlotScenario(const CrashCell &cell);

    /** Pool offset of slot @p slot. */
    PmOff slotOff(unsigned slot) const;

    /**
     * Run the workload with a crash armed after @p crash_after
     * persistence events; returns true if the crash fired.
     */
    bool runWithCrash(long crash_after);

    /** Persistence events consumed by the last runWithCrash(). */
    std::uint64_t eventsConsumed() const;

    /** Power-cycle the pool and run recovery on a fresh runtime. */
    void crashAndRecover(const pmem::CrashPolicy &policy);

    /**
     * Check atomic durability of the current device state: the
     * surviving state must equal the committed prefix, or the prefix
     * plus the *entire* in-flight transaction.
     * @return empty string on success, else a failure description.
     */
    std::string verifyAtomicity() const;

    /**
     * Accept whichever legal post-crash state actually survived as
     * the new committed baseline.
     */
    void rebaseline();

    /** Run @p count crash-free transactions (post-recovery phase). */
    void runMore(unsigned count, std::uint64_t seed);

    /** Exact-state check (crash-free phases). */
    std::string verifyExact() const;

    /** Digest of the committed/staged shadow (see pruneKey()). */
    std::uint64_t shadowHash() const;

    pmem::PmemDevice &device() { return dev_; }
    const pmem::PmemDevice &device() const { return dev_; }
    pmem::PmemPool &pool() { return pool_; }
    txn::TxRuntime &runtime() { return *runtime_; }

  private:
    CrashCell cell_;
    pmem::PmemDevice dev_;
    pmem::PmemPool pool_;
    std::unique_ptr<txn::TxRuntime> runtime_;
    PmOff dataOff_ = kPmNull;
    std::map<unsigned, std::uint64_t> committed_;
    std::map<unsigned, std::uint64_t> staged_;
    std::shared_ptr<pmem::CrashCountdown> countdown_;
    long armed_ = 0;
};

/** CrashWorkload adapter over SlotScenario. */
std::unique_ptr<CrashWorkload>
makeSlotCrashWorkload(const CrashCell &cell);

/**
 * Factory covering the workloads this library can build by itself
 * (currently "slots"); throws std::runtime_error for other names.
 * Layers that own richer workloads (kv, STAMP analogs) wrap this.
 */
CrashWorkloadFactory builtinCrashWorkloadFactory();

/** Driver knobs orthogonal to the cell (they never enter tokens). */
struct ExploreOptions
{
    /** Explore only points with event % shardCount == shardIndex. */
    unsigned shardIndex = 0;
    unsigned shardCount = 1;
    /** Worker threads; 0 = pick from hardware concurrency. */
    unsigned jobs = 1;
    /**
     * Bound on points explored per invocation (0 = exhaustive);
     * points are selected evenly across the event space so bounded
     * cells still cover setup, steady state and teardown.
     */
    std::uint64_t maxPoints = 0;
    /** Also run the post-recovery continuation check per point. */
    bool verifyContinuation = false;
};

/** One failing crash schedule. */
struct CrashFailure
{
    std::uint64_t point = 0; ///< event id of the crash
    std::string token;       ///< full replay token
    std::string message;     ///< what the consistency check saw
};

/** Exploration outcome for one cell. */
struct ExploreReport
{
    /** Non-empty if the cell could not be explored at all. */
    std::string error;
    /** Persistence events of a full run == size of the point space. */
    std::uint64_t totalEvents = 0;
    /** Points selected after shard filtering and maxPoints bounding. */
    std::uint64_t candidatePoints = 0;
    /** Points fully explored (crashed, recovered, verified). */
    std::uint64_t explored = 0;
    /** Points skipped because their post-crash state was a duplicate. */
    std::uint64_t pruned = 0;
    /** Options the exploration ran under (echoed into the report). */
    ExploreOptions options;
    std::vector<CrashFailure> failures;

    /** All candidate points accounted for and none failed. */
    bool
    ok() const
    {
        return error.empty() && failures.empty() &&
               explored + pruned == candidatePoints;
    }

    /** Machine-readable report (the CI artifact). */
    std::string toJson(const CrashCell &cell) const;
};

/** Replay outcome for a single token. */
struct ReplayResult
{
    std::string error; ///< non-empty if the token did not parse/build
    CrashCell cell;
    std::uint64_t point = 0;
    bool fired = false;  ///< the armed crash actually fired
    std::string failure; ///< consistency-check result (empty = pass)
};

/** The exploration engine; see file comment. */
class CrashExplorer
{
  public:
    CrashExplorer(CrashCell cell, CrashWorkloadFactory factory);

    /** Enumerate, prune, recover and verify; see ExploreReport. */
    ExploreReport explore(const ExploreOptions &options = {});

    /** Deterministically re-run the single crash point of @p token. */
    static ReplayResult replay(std::string_view token,
                               const CrashWorkloadFactory &factory,
                               bool verify_continuation = false);

  private:
    CrashCell cell_;
    CrashWorkloadFactory factory_;
};

} // namespace specpmt::sim

#endif // SPECPMT_SIM_CRASH_EXPLORER_HH
