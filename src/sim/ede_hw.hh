/**
 * @file
 * EDE (Execution Dependence Extension, Shull et al., ISCA'21) model —
 * the hardware baseline of Section 7.3. Undo logging with hardware
 * dependence tracking instead of fences between the log write and the
 * in-place data update; data is persisted synchronously at commit.
 * Log records are coalesced as much as possible (Section 7.1.3).
 */

#ifndef SPECPMT_SIM_EDE_HW_HH
#define SPECPMT_SIM_EDE_HW_HH

#include "sim/hw_runtime.hh"

namespace specpmt::sim
{

/** EDE baseline hardware model. */
class EdeHw : public HwRuntime
{
  public:
    explicit EdeHw(const SimConfig &config) : HwRuntime(config) {}

    const char *name() const override { return "ede"; }

  protected:
    void
    store(PmOff off, std::uint32_t size) override
    {
        const std::uint64_t first = lineIndex(off);
        const std::uint64_t last = lineIndex(off + size - 1);
        for (std::uint64_t line = first; line <= last; ++line) {
            // Undo-log each line on its first in-tx update: a record
            // carrying (addr, old line data), streamed out coalesced.
            // No fence orders it against the data update — that is
            // EDE's contribution — but the bytes still go to PM
            // through the WPQ.
            if (txLogged_.insert(line).second)
                logAppendBytes(16 + kCacheLineSize);
            txDirty_.insert(line);
        }
        accessLines(off, size, true);
    }

    void
    commit() override
    {
        // Synchronous data persistence at commit, then one fence that
        // also covers the transaction's log records.
        logFlushPartial();
        for (std::uint64_t line : txDirty_) {
            persistDataLine(line);
            cache_.clean(line);
        }
        fence();
        txDirty_.clear();
        txLogged_.clear();
    }

  private:
    std::unordered_set<std::uint64_t> txDirty_;
    std::unordered_set<std::uint64_t> txLogged_;
};

} // namespace specpmt::sim

#endif // SPECPMT_SIM_EDE_HW_HH
