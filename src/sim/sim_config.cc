#include "sim/sim_config.hh"

#include <cstdio>

namespace specpmt::sim
{

std::string
toStringImpl(const SimConfig &config)
{
    char buffer[1024];
    std::snprintf(
        buffer, sizeof(buffer),
        "Component   Parameter\n"
        "CPU         out-of-order X86 core@%.0fGHz\n"
        "L1 TLB      Private per core, %u entries, %u-way\n"
        "L2 TLB      Private per core, %u entries, %u-way\n"
        "Data Cache  Private per core, %zuKB, %u-way, %llu ns\n"
        "L2 Cache    Shared %zuMB, %u-way, %llu ns\n"
        "PM          %u-line (%u B) write pending queue, %lluns accept; "
        "%lluns read latency; %lluns write latency "
        "(%lluns within an XPLine)\n",
        config.cpuGhz, config.l1TlbEntries, config.l1TlbWays,
        config.l2TlbEntries, config.l2TlbWays, config.l1Bytes / 1024,
        config.l1Ways,
        static_cast<unsigned long long>(config.l1HitNs),
        config.l2Bytes / (1024 * 1024), config.l2Ways,
        static_cast<unsigned long long>(config.l2HitNs),
        config.wpqLines,
        static_cast<unsigned>(config.wpqLines * kCacheLineSize),
        static_cast<unsigned long long>(config.wpqAcceptNs),
        static_cast<unsigned long long>(config.pmReadNs),
        static_cast<unsigned long long>(config.pmWriteNs),
        static_cast<unsigned long long>(config.pmWriteSameXpLineNs));
    return buffer;
}

std::string
SimConfig::toString() const
{
    return toStringImpl(*this);
}

} // namespace specpmt::sim
