/**
 * @file
 * Two-level private TLB model with the hardware-SpecPMT metadata
 * extensions of Figure 9: per-entry EpochBit plus a 3-bit saturating
 * store counter that doubles as the epoch ID once the page goes hot.
 */

#ifndef SPECPMT_SIM_TLB_HH
#define SPECPMT_SIM_TLB_HH

#include <cstdint>

#include "common/types.hh"
#include "sim/assoc_array.hh"
#include "sim/sim_config.hh"

namespace specpmt::sim
{

/** Per-TLB-entry hotness metadata (Figure 9). */
struct TlbMeta
{
    bool epochBit = false;  ///< set: page is speculatively logged (hot)
    std::uint8_t counter = 0; ///< cold: store count; hot: epoch ID
};

/** Result of a TLB probe. */
struct TlbLookup
{
    bool hit = false;
    TlbMeta *meta = nullptr;
};

/**
 * L1 + L2 TLB. A miss inserts a fresh (cold) entry into L1; L1
 * victims demote into L2; L2 victims lose their metadata entirely —
 * which is precisely how hardware SpecPMT bounds hot-page tracking
 * (Section 5.1: an evicted page "is likely no longer hot").
 */
class TlbModel
{
  public:
    explicit TlbModel(const SimConfig &config)
        : l1_(config.l1TlbEntries, config.l1TlbWays),
          l2_(config.l2TlbEntries, config.l2TlbWays)
    {}

    /**
     * Probe for @p vpn, inserting a cold entry on a full miss.
     * The returned meta pointer stays valid until the next lookup.
     */
    TlbLookup
    lookup(std::uint64_t vpn)
    {
        if (TlbMeta *meta = l1_.find(vpn)) {
            ++hits_;
            return {true, meta};
        }
        if (auto l2_meta = l2_.erase(vpn)) {
            // Promote to L1, demoting an L1 victim into L2.
            promote(vpn, *l2_meta);
            ++hits_;
            return {true, l1_.find(vpn)};
        }
        ++misses_;
        promote(vpn, TlbMeta{});
        return {false, l1_.find(vpn)};
    }

    /**
     * Age the cold-page store counters (halving them). Hotness is a
     * *rate*: a page qualifies for speculative logging only when it
     * takes enough stores within an aging window, not merely over its
     * whole TLB residency — sparsely updated pages must stay on the
     * undo path (Section 5.1's "frequently updated" criterion).
     */
    void
    decayColdCounters()
    {
        const auto decay = [](std::uint64_t, TlbMeta &meta) {
            if (!meta.epochBit)
                meta.counter /= 2;
        };
        l1_.forEach(decay);
        l2_.forEach(decay);
    }

    /**
     * clearepoch EID (Section 5.2): turn every page whose epoch ID is
     * @p eid back into a cold page, in both TLB levels. One
     * instruction in hardware.
     */
    void
    clearEpoch(EpochId eid)
    {
        const auto clear = [eid](std::uint64_t, TlbMeta &meta) {
            if (meta.epochBit && meta.counter == eid) {
                meta.epochBit = false;
                meta.counter = 0;
            }
        };
        l1_.forEach(clear);
        l2_.forEach(clear);
    }

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }

  private:
    void
    promote(std::uint64_t vpn, const TlbMeta &meta)
    {
        if (auto l1_victim = l1_.insert(vpn, meta)) {
            if (auto l2_victim = l2_.insert(l1_victim->first,
                                            l1_victim->second)) {
                // Metadata of the L2 victim is discarded: that page
                // is cold again from the hardware's point of view.
                (void)l2_victim;
            }
        }
    }

    AssocArray<TlbMeta> l1_;
    AssocArray<TlbMeta> l2_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace specpmt::sim

#endif // SPECPMT_SIM_TLB_HH
