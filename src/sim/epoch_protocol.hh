/**
 * @file
 * The multi-threaded epoch reclamation safety protocol of
 * Section 5.2.2, as standalone logic: an epoch e may be reclaimed iff
 * (1) e is inactive (its ID has been reassigned to a younger epoch of
 * the same thread), and (2) every active epoch — on any thread —
 * started after e ended. This prevents the Figure 11 hazard where
 * reclaiming a log record removes the only undo guardian of a datum
 * another thread is still updating.
 */

#ifndef SPECPMT_SIM_EPOCH_PROTOCOL_HH
#define SPECPMT_SIM_EPOCH_PROTOCOL_HH

#include <cstdint>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace specpmt::sim
{

/** Lifetime record of one epoch on one thread. */
struct EpochSpan
{
    ThreadId thread = 0;
    EpochId id = 0;
    TxTimestamp start = 0;
    TxTimestamp end = 0;      ///< 0 while still open
    bool idReassigned = false; ///< a younger epoch reuses this ID

    bool open() const { return end == 0; }

    /** Inactive = closed and its ID handed to a younger epoch. */
    bool inactive() const { return !open() && idReassigned; }

    /** Active = open, or closed but ID not yet reassigned. */
    bool active() const { return !inactive(); }
};

/**
 * Tracks epoch spans across threads and answers reclamation-safety
 * queries. Pure bookkeeping — the hardware model consults it; tests
 * drive it directly against the paper's Figure 11 scenario.
 */
class EpochProtocol
{
  public:
    /** Open a new epoch on @p thread at time @p now. */
    std::size_t
    startEpoch(ThreadId thread, EpochId id, TxTimestamp now)
    {
        // Reusing an ID implicitly retires the previous epoch that
        // carried it on this thread.
        for (auto &span : spans_) {
            if (span.thread == thread && span.id == id &&
                !span.idReassigned) {
                SPECPMT_ASSERT(!span.open());
                span.idReassigned = true;
            }
        }
        spans_.push_back({thread, id, now, 0, false});
        return spans_.size() - 1;
    }

    /** Close epoch @p index at time @p now. */
    void
    endEpoch(std::size_t index, TxTimestamp now)
    {
        SPECPMT_ASSERT(index < spans_.size());
        SPECPMT_ASSERT(spans_[index].open());
        spans_[index].end = now;
    }

    /**
     * The Section 5.2.2 rule: may every log record of epoch @p index
     * be reclaimed now?
     */
    bool
    canReclaim(std::size_t index) const
    {
        SPECPMT_ASSERT(index < spans_.size());
        const EpochSpan &epoch = spans_[index];
        if (!epoch.inactive())
            return false;
        for (const auto &other : spans_) {
            if (&other == &epoch || !other.active())
                continue;
            // Every active epoch must have started after e ended.
            if (other.start <= epoch.end)
                return false;
        }
        return true;
    }

    const EpochSpan &span(std::size_t index) const
    {
        return spans_.at(index);
    }

  private:
    std::vector<EpochSpan> spans_;
};

} // namespace specpmt::sim

#endif // SPECPMT_SIM_EPOCH_PROTOCOL_HH
