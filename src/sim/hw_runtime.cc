#include "sim/hw_runtime.hh"

#include "common/logging.hh"

namespace specpmt::sim
{

namespace
{

pmem::TimingParams
timingParams(const SimConfig &config)
{
    pmem::TimingParams params;
    params.storeNs = 0; // cache latencies are charged explicitly
    params.loadNs = 0;
    params.pmReadNs = config.pmReadNs;
    params.pmWriteNs = config.pmWriteNs;
    params.pmWriteSameXpLineNs = config.pmWriteSameXpLineNs;
    params.wpqAcceptNs = config.wpqAcceptNs;
    params.wpqLines = config.wpqLines;
    // The hardware comparison models the single write pending queue of
    // Table 1 with no core-side fence cost (the out-of-order core
    // hides it, Section 7.3).
    params.pmChannels = 1;
    params.sfenceNs = 0;
    return params;
}

} // namespace

HwRuntime::HwRuntime(const SimConfig &config)
    : config_(config), timing_(timingParams(config)), cache_(config)
{}

const HwStats &
HwRuntime::run(const txn::MemTrace &trace)
{
    for (const auto &op : trace.ops) {
        switch (op.kind) {
          case txn::MemOpKind::TxBegin:
            txBegin();
            break;
          case txn::MemOpKind::TxCommit:
            commit();
            ++stats_.txs;
            break;
          case txn::MemOpKind::Store:
            store(op.off, op.size);
            break;
          case txn::MemOpKind::Load:
            load(op.off, op.size);
            break;
          case txn::MemOpKind::Compute:
            timing_.compute(op.computeNs);
            break;
        }
    }
    finishRun();

    stats_.ns = timing_.now();
    stats_.l1Hits = cache_.l1Hits();
    stats_.l2Hits = cache_.l2Hits();
    stats_.memFills = cache_.memFills();
    stats_.dataFootprintBytes = touchedLines_.size() * kCacheLineSize;
    return stats_;
}

void
HwRuntime::finishRun()
{
    // Make residual dirty state durable so write-traffic totals are
    // comparable across schemes with different persistence timing.
    cache_.forEachLine([&](std::uint64_t line, LineMeta &meta) {
        if (meta.dirty || meta.pBit) {
            persistDataLine(line);
            meta.dirty = false;
            meta.pBit = false;
        }
    });
    fence();
}

void
HwRuntime::accessLines(PmOff off, std::uint32_t size, bool is_write)
{
    if (size == 0)
        return;
    const std::uint64_t first = lineIndex(off);
    const std::uint64_t last = lineIndex(off + size - 1);
    for (std::uint64_t line = first; line <= last; ++line) {
        const CacheLevel level = cache_.access(line, is_write);
        switch (level) {
          case CacheLevel::L1:
            timing_.compute(config_.l1HitNs);
            break;
          case CacheLevel::L2:
            timing_.compute(config_.l2HitNs);
            break;
          case CacheLevel::Memory:
            timing_.compute(config_.pmReadNs);
            break;
        }
        if (is_write)
            touchedLines_.insert(line);
    }
}

void
HwRuntime::logAppendLines(std::uint64_t lines)
{
    for (std::uint64_t i = 0; i < lines; ++i) {
        timing_.onClwb(logCursor_++);
        ++stats_.pmLogLineWrites;
    }
}

void
HwRuntime::logAppendLinesAsync(std::uint64_t lines)
{
    for (std::uint64_t i = 0; i < lines; ++i) {
        timing_.onClwbAsync(logCursor_++);
        ++stats_.pmLogLineWrites;
    }
}

void
HwRuntime::logAppendBytes(std::size_t bytes)
{
    logPartialBytes_ += bytes;
    while (logPartialBytes_ >= kCacheLineSize) {
        logAppendLines(1);
        logPartialBytes_ -= kCacheLineSize;
    }
}

void
HwRuntime::logFlushPartial()
{
    if (logPartialBytes_ > 0) {
        logAppendLines(1);
        logPartialBytes_ = 0;
    }
}

void
HwRuntime::persistDataLine(std::uint64_t line)
{
    timing_.onClwb(line);
    ++stats_.pmDataLineWrites;
}

void
HwRuntime::fence()
{
    timing_.onSfence();
    ++stats_.fences;
}

void
HwRuntime::noteLogBytes(std::ptrdiff_t delta)
{
    SPECPMT_ASSERT(delta >= 0 ||
                   logBytes_ >= static_cast<std::size_t>(-delta));
    logBytes_ += delta;
    if (logBytes_ > stats_.peakLogBytes)
        stats_.peakLogBytes = logBytes_;
}

} // namespace specpmt::sim
