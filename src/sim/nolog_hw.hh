/**
 * @file
 * The "no-log" ideal (Section 7.1.3): in-place updates, data persisted
 * at transaction commit, no logging whatsoever — and therefore no
 * crash consistency. The performance ceiling for in-place-update
 * persistent transactions in Figure 13.
 */

#ifndef SPECPMT_SIM_NOLOG_HW_HH
#define SPECPMT_SIM_NOLOG_HW_HH

#include "sim/hw_runtime.hh"

namespace specpmt::sim
{

/** No-log ideal hardware model. */
class NoLogHw : public HwRuntime
{
  public:
    explicit NoLogHw(const SimConfig &config) : HwRuntime(config) {}

    const char *name() const override { return "no-log"; }

  protected:
    void
    store(PmOff off, std::uint32_t size) override
    {
        accessLines(off, size, true);
        const std::uint64_t first = lineIndex(off);
        const std::uint64_t last = lineIndex(off + size - 1);
        for (std::uint64_t line = first; line <= last; ++line)
            txDirty_.insert(line);
    }

    void
    commit() override
    {
        for (std::uint64_t line : txDirty_) {
            persistDataLine(line);
            cache_.clean(line);
        }
        fence();
        txDirty_.clear();
    }

  private:
    std::unordered_set<std::uint64_t> txDirty_;
};

} // namespace specpmt::sim

#endif // SPECPMT_SIM_NOLOG_HW_HH
