/**
 * @file
 * Simulated system configuration, mirroring Table 1 of the paper
 * (Section 7.1.3). bench_table1_config prints it.
 */

#ifndef SPECPMT_SIM_SIM_CONFIG_HH
#define SPECPMT_SIM_SIM_CONFIG_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace specpmt::sim
{

/** Machine parameters for the trace-driven timing model. */
struct SimConfig
{
    /** @name CPU */
    /// @{
    double cpuGhz = 4.0; ///< out-of-order x86 core @ 4GHz
    /// @}

    /** @name TLBs (private per core) */
    /// @{
    unsigned l1TlbEntries = 64;
    unsigned l1TlbWays = 8;
    unsigned l2TlbEntries = 1536;
    unsigned l2TlbWays = 12;
    /// @}

    /** @name Caches */
    /// @{
    std::size_t l1Bytes = 32 * 1024; ///< private, 8-way, 2 cycles
    unsigned l1Ways = 8;
    SimNs l1HitNs = 1;               ///< 2 cycles @ 4GHz, rounded up
    std::size_t l2Bytes = 2 * 1024 * 1024; ///< shared, 12-way, 20 cyc
    unsigned l2Ways = 12;
    SimNs l2HitNs = 5;
    /// @}

    /** @name Persistent memory */
    /// @{
    unsigned wpqLines = 8;     ///< 512-byte write pending queue
    SimNs wpqAcceptNs = 10;
    SimNs pmReadNs = 150;
    SimNs pmWriteNs = 500;
    SimNs pmWriteSameXpLineNs = 125; ///< XPLine write combining
    /// @}

    /** @name Hardware SpecPMT */
    /// @{
    unsigned hotCounterMax = 7;      ///< 3-bit saturating counter
    /** Commits between cold-counter aging steps (hotness is a rate). */
    unsigned hotnessDecayCommits = 128;
    std::size_t epochMaxBytes = 2u << 20;  ///< start new epoch beyond
    unsigned epochMaxPages = 200;
    unsigned numEpochs = 8;          ///< epoch pointers (Figure 10)
    /// @}

    /** @name HOOP */
    /// @{
    std::size_t hoopGcBatchBytes = 128 * 1024; ///< GC reclaim unit
    /// @}

    /** Render the Table 1 rows. */
    std::string toString() const;
};

} // namespace specpmt::sim

#endif // SPECPMT_SIM_SIM_CONFIG_HH
