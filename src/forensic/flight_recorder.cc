#include "forensic/flight_recorder.hh"

#include <algorithm>
#include <cstring>

#include "common/crc32.hh"
#include "common/logging.hh"

namespace specpmt::forensic
{

namespace
{

/** Ring sizes beyond this are treated as header corruption. */
constexpr std::uint32_t kMaxCapacity = 1u << 20;

constexpr PmOff
slotPos(PmOff base, std::uint32_t slot)
{
    return base + sizeof(FlightHeader) +
           static_cast<PmOff>(slot) * sizeof(FlightRecord);
}

constexpr std::size_t
ringBytes(std::uint32_t capacity)
{
    return sizeof(FlightHeader) +
           static_cast<std::size_t>(capacity) * sizeof(FlightRecord);
}

} // namespace

const char *
eventTypeName(EventType type)
{
    switch (type) {
      case EventType::TxBegin:
        return "tx_begin";
      case EventType::TxCommit:
        return "tx_commit";
      case EventType::TxAbort:
        return "tx_abort";
      case EventType::ReclaimBegin:
        return "reclaim_begin";
      case EventType::ReclaimEnd:
        return "reclaim_end";
      case EventType::RecoveryBegin:
        return "recovery_begin";
      case EventType::RecoveryEnd:
        return "recovery_end";
      case EventType::ModeSwitch:
        return "mode_switch";
      case EventType::MediaFault:
        return "media_fault";
      case EventType::Quarantine:
        return "quarantine";
      case EventType::DegradedEnter:
        return "degraded_enter";
      case EventType::None:
        break;
    }
    return "unknown";
}

std::uint32_t
FlightRecorder::recordCrc(PmOff pos, const FlightRecord &rec)
{
    std::uint32_t crc = crc32c(&pos, sizeof(pos));
    crc = crc32c(&rec.type, sizeof(rec.type), crc);
    crc = crc32c(&rec.tid, sizeof(rec.tid), crc);
    crc = crc32c(&rec.seq, sizeof(rec.seq), crc);
    crc = crc32c(&rec.timestamp, sizeof(rec.timestamp), crc);
    crc = crc32c(&rec.arg0, sizeof(rec.arg0), crc);
    return crc32c(&rec.arg1, sizeof(rec.arg1), crc);
}

void
FlightRecorder::create(pmem::PmemPool &pool, std::uint32_t capacity)
{
    SPECPMT_ASSERT(capacity > 0 && capacity <= kMaxCapacity);
    SPECPMT_ASSERT(pool.getRoot(kFlightRecorderRootSlot) == kPmNull);
    auto &dev = pool.device();

    const PmOff base =
        pool.allocAligned(ringBytes(capacity), kCacheLineSize);
    FlightHeader header{};
    header.magic = kFlightMagic;
    header.capacity = capacity;
    dev.storeT(base, header);
    FlightRecord empty{};
    for (std::uint32_t slot = 0; slot < capacity; ++slot)
        dev.storeT(slotPos(base, slot), empty);
    dev.clwbRange(base, ringBytes(capacity), pmem::TrafficClass::Meta);
    dev.sfence();
    // setRoot persists eagerly (clwb + sfence of its own).
    pool.setRoot(kFlightRecorderRootSlot, base);
}

FlightRecorder
FlightRecorder::attach(pmem::PmemPool &pool)
{
    FlightRecorder fr;
    const PmOff base = pool.getRoot(kFlightRecorderRootSlot);
    if (base == kPmNull)
        return fr;
    auto &dev = pool.device();
    if (base + sizeof(FlightHeader) > dev.size())
        return fr;
    const auto header = dev.loadT<FlightHeader>(base);
    if (header.magic != kFlightMagic || header.capacity == 0 ||
        header.capacity > kMaxCapacity ||
        base + ringBytes(header.capacity) > dev.size()) {
        return fr;
    }
    pool.adopt(base, ringBytes(header.capacity));

    // Re-establish the append sequence from the newest valid seal so
    // post-crash records keep sorting after the surviving ones.
    std::uint64_t max_seq = 0;
    for (std::uint32_t slot = 0; slot < header.capacity; ++slot) {
        const PmOff pos = slotPos(base, slot);
        const auto rec = dev.loadT<FlightRecord>(pos);
        if (rec.seq != 0 && recordCrc(pos, rec) == rec.crc)
            max_seq = std::max(max_seq, rec.seq);
    }

    fr.dev_ = &dev;
    fr.base_ = base;
    fr.capacity_ = header.capacity;
    fr.seq_ = std::make_shared<std::atomic<std::uint64_t>>(max_seq);
    return fr;
}

void
FlightRecorder::record(EventType type, ThreadId tid,
                       std::uint64_t timestamp, std::uint64_t arg0,
                       std::uint64_t arg1)
{
    if (!enabled())
        return;
    const std::uint64_t seq =
        seq_->fetch_add(1, std::memory_order_relaxed) + 1;
    const PmOff pos =
        slotPos(base_, static_cast<std::uint32_t>((seq - 1) % capacity_));
    FlightRecord rec{};
    rec.type = type;
    rec.tid = static_cast<std::uint16_t>(tid);
    rec.seq = seq;
    rec.timestamp = timestamp;
    rec.arg0 = arg0;
    rec.arg1 = arg1;
    rec.crc = recordCrc(pos, rec);
    dev_->storeT(pos, rec);
    // Flush only: the line rides the caller's next commit fence.
    dev_->clwb(pos, pmem::TrafficClass::Meta);
}

std::uint64_t
FlightRecorder::sequence() const
{
    return seq_ ? seq_->load(std::memory_order_relaxed) : 0;
}

DecodedFlightRing
FlightRecorder::decode(const pmem::PmemDevice &dev, PmOff pool_root)
{
    DecodedFlightRing ring;
    if (pool_root == kPmNull)
        return ring;
    ring.present = true;
    ring.base = pool_root;
    if (pool_root + sizeof(FlightHeader) > dev.size()) {
        ring.error = "ring header out of device bounds";
        return ring;
    }
    const auto header = dev.loadT<FlightHeader>(pool_root);
    if (header.magic != kFlightMagic) {
        ring.error = "bad ring magic";
        return ring;
    }
    if (header.capacity == 0 || header.capacity > kMaxCapacity ||
        pool_root + ringBytes(header.capacity) > dev.size()) {
        ring.error = "implausible ring capacity " +
                     std::to_string(header.capacity);
        return ring;
    }
    ring.capacity = header.capacity;
    for (std::uint32_t slot = 0; slot < header.capacity; ++slot) {
        const PmOff pos = slotPos(pool_root, slot);
        const auto rec = dev.loadT<FlightRecord>(pos);
        if (rec.seq == 0 && rec.crc == 0 &&
            rec.type == EventType::None) {
            continue; // never written
        }
        if (rec.seq == 0 || recordCrc(pos, rec) != rec.crc) {
            ++ring.invalidSlots; // torn append (or bit rot)
            continue;
        }
        DecodedFlightRecord out;
        out.seq = rec.seq;
        out.type = rec.type;
        out.tid = rec.tid;
        out.timestamp = rec.timestamp;
        out.arg0 = rec.arg0;
        out.arg1 = rec.arg1;
        out.slot = slot;
        ring.records.push_back(out);
    }
    std::sort(ring.records.begin(), ring.records.end(),
              [](const DecodedFlightRecord &a,
                 const DecodedFlightRecord &b) { return a.seq < b.seq; });
    return ring;
}

} // namespace specpmt::forensic
