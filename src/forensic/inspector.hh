/**
 * @file
 * Offline forensic inspector for saved (typically just-crashed) pmem
 * pool images — the analysis half of the post-mortem layer.
 *
 * inspectImage() opens an image strictly read-only and, *without*
 * running recovery, walks every per-thread speculative-log chain
 * (shared walker: core/splog_format + core/splog_walk) and classifies
 * every transaction found in the logs:
 *
 *   COMMITTED — a run of consecutive same-timestamp segments closed
 *               by a valid final seal attesting the run's exact
 *               segment count; recovery will redo it.
 *   TORN      — debris of an interrupted commit: a run broken by a
 *               timestamp change, a final seal whose attested count
 *               disagrees with the run, or a record whose seal fails
 *               its CRC; recovery will discard it.
 *   IN-FLIGHT — a trailing run with no final seal and a clean tail:
 *               the crash hit between txBegin and the commit seal.
 *   UNSEALED  — epoch-mode images only (an epoch frontier record is
 *               published at root slot txn::kEpochFrontierSlot): a
 *               structurally committed run whose timestamp lies
 *               beyond the frontier's dense replay limit — it joined
 *               an epoch whose shared fence never completed, so it
 *               was never acknowledged and recovery drops it.
 *
 * Every verdict carries a human-readable reason string (recomputed
 * CRCs, attested vs. observed segment counts, ...) so a disagreement
 * with the runtime is diagnosable from the report alone. The report
 * also dumps segment headers, CRC seals, timestamps, segment-count
 * attestations, and the decoded flight-recorder ring when one is
 * present ([[flight_recorder]]).
 *
 * The inspector never trusts a byte: arbitrary corruption (truncated
 * image, flipped bits, garbage roots) must produce a report, never a
 * crash — and never a COMMITTED verdict for a record whose seal does
 * not validate.
 *
 * The chain interpretation is the speculative-log format, i.e. the
 * spec / spec-dp / hybrid families. Images of the undo-log baselines
 * publish different structures under the same root slots; their
 * chains simply report as unparseable (torn at the head), which is
 * accurate from the splog point of view.
 */

#ifndef SPECPMT_FORENSIC_INSPECTOR_HH
#define SPECPMT_FORENSIC_INSPECTOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/splog_format.hh"
#include "forensic/flight_recorder.hh"
#include "pmem/pmem_device.hh"

namespace specpmt::forensic
{

/** Highest thread id whose log-head root slot the inspector scans
 * (logHeadSlot(tid) = 1 + tid must stay below the hybrid sequence
 * slots at 20+). */
constexpr unsigned kMaxInspectThreads = 19;

/** Classification of one transaction found in a log chain. */
enum class TxVerdict
{
    Committed,
    Torn,
    InFlight,
    /** Committed on media but beyond the epoch frontier's replay
     * limit (never acked; recovery drops it). Epoch images only. */
    Unsealed,
};

/** "COMMITTED" / "TORN" / "IN-FLIGHT" / "UNSEALED". */
const char *txVerdictName(TxVerdict verdict);

/** One decoded, checksum-valid segment of a reported transaction. */
struct SegReport
{
    PmOff pos = kPmNull;
    std::uint32_t sizeBytes = 0;
    std::uint32_t crc = 0;       ///< the (validated) stored seal
    TxTimestamp timestamp = 0;
    bool final = false;
    std::uint32_t txSegments = 0; ///< final seal's attested count
    std::uint32_t numEntries = 0;
};

/** One transaction (run of segments) with its verdict. */
struct TxReport
{
    TxVerdict verdict = TxVerdict::InFlight;
    TxTimestamp ts = 0;
    /** Why the verdict holds, suitable for humans. */
    std::string reason;
    std::vector<SegReport> segs;
    /** Decoded entries of the run (committed txs: what recovery will
     * redo; value bytes still live in the image at valuePos). */
    std::vector<core::DecodedEntry> entries;
};

/** Everything found in one thread's log chain. */
struct ChainReport
{
    unsigned tid = 0;
    /** False when the thread's root slot is null. */
    bool present = false;
    PmOff head = kPmNull;
    std::vector<PmOff> blocks;
    /** True when the walk ended on a record whose seal failed. */
    bool tornTail = false;
    /** Where the walk stopped (start of the torn record if any). */
    PmOff tailPos = kPmNull;
    /** Forensic detail about the torn tail (recomputed CRC, ...). */
    std::string tailDetail;
    std::vector<TxReport> txs;
    /** End of the last committed tx: where recovery will re-adopt. */
    PmOff lastCommittedEnd = kPmNull;
    /** Interior CRC-failing segments the walker skipped as media
     * corruption (see core::QuarantinedSegment); empty on healthy
     * and crash-torn images alike. */
    std::vector<core::QuarantinedSegment> quarantined;
};

/** Full inspection result for one image. */
struct InspectReport
{
    std::string source;          ///< file path or caller-chosen tag
    std::size_t deviceBytes = 0;
    std::vector<ChainReport> chains;
    DecodedFlightRing flight;
    std::size_t committed = 0;
    std::size_t torn = 0;
    std::size_t inFlight = 0;
    /** Media-corrupted segments quarantined across all chains. */
    std::size_t quarantined = 0;

    /** @name Epoch group commit (root slot txn::kEpochFrontierSlot)
     * Populated only when the image publishes an epoch frontier
     * record; legacy images leave epochMedia false and the text/JSON
     * reports byte-identical to pre-epoch inspector output.
     */
    /// @{
    bool epochMedia = false;
    /** The frontier record passed its magic + CRC check. */
    bool frontierValid = false;
    TxTimestamp epochStart = 0; ///< frontier window start
    TxTimestamp epochEnd = 0;   ///< frontier window end
    /** Highest replayable timestamp (epochReplayLimit). */
    TxTimestamp epochLimit = 0;
    /** Committed-on-media runs demoted to UNSEALED. */
    std::size_t unsealed = 0;
    /// @}

    /** Deterministic human-readable report (golden-test stable:
     * depends only on the image bytes). */
    std::string toText() const;

    /**
     * JSON report. When @p metrics_json is non-empty it is embedded
     * verbatim as the "metrics" member (callers pass
     * obs::Registry::global().snapshot().toJson() to attach the
     * inspecting process's counters, e.g. after a recovery audit).
     */
    std::string toJson(const std::string &metrics_json = {}) const;
};

/**
 * Inspect @p dev read-only; see file comment. @p threads bounds the
 * root-slot scan (clamped to kMaxInspectThreads); chains whose root
 * slot is null are reported absent.
 */
InspectReport inspectImage(const pmem::PmemDevice &dev,
                           unsigned threads = kMaxInspectThreads,
                           const std::string &source = "image");

} // namespace specpmt::forensic

#endif // SPECPMT_FORENSIC_INSPECTOR_HH
