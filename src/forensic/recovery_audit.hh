/**
 * @file
 * Recovery audit: run the *real* recovery on a copy of a crashed
 * image and diff the runtime's actual decisions against the offline
 * inspector's independent classification ([[inspector]]).
 *
 * The inspector and the runtime implement the commit rule twice — the
 * inspector on purpose shares only the low-level walker, not the
 * recovery code path — so agreement between them is evidence that
 * what the report *says* recovery will do is what recovery *does*.
 * The audit checks three ways:
 *
 *   1. the runtime's replayed-transaction counter
 *      (specpmt_recovery_replayed_txs_total) advanced by exactly the
 *      inspector's COMMITTED count;
 *   2. re-walking the recovered pool's chains finds exactly the
 *      inspector's committed timestamps (debris truncated, committed
 *      prefix preserved);
 *   3. every byte covered by a committed entry equals the value the
 *      inspector predicts from an independent chronological replay of
 *      the committed log records.
 *
 * Recovery runs against a throwaway device built from the image
 * (pmem/image_io); the caller's image is never mutated. The freshly
 * wrapped pool's allocator knows nothing of pre-crash allocations, so
 * the audit raises the allocation watermark (PmemPool::reserveBelow)
 * before recovery: recovery-time allocations (fresh log blocks for
 * threads whose chain is gone) must not overwrite the evidence the
 * walkers still have to read.
 *
 * Supported for the speculative-logging runtimes ("spec", "spec-dp"),
 * whose recovery the inspector models. Other runtimes report
 * supported=false rather than a fake verdict.
 */

#ifndef SPECPMT_FORENSIC_RECOVERY_AUDIT_HH
#define SPECPMT_FORENSIC_RECOVERY_AUDIT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "forensic/inspector.hh"

namespace specpmt::forensic
{

/** Outcome of one audit; agrees == supported && no disagreements. */
struct AuditResult
{
    bool supported = false;
    bool agrees = false;
    /** Committed txs the runtime's recovery actually replayed. */
    std::uint64_t runtimeReplayedTxs = 0;
    /** Committed txs the inspector classified. */
    std::size_t inspectorCommitted = 0;
    /** Human-readable descriptions of every disagreement found. */
    std::vector<std::string> disagreements;

    /** One-paragraph deterministic summary. */
    std::string toText() const;

    /** JSON object mirroring the fields above. */
    std::string toJson() const;
};

/**
 * Audit @p runtime_name's recovery of @p image against @p report
 * (the inspector's output for the same image); see file comment.
 * @p threads must match the thread count the image was produced with
 * (it sizes the runtime, exactly as a real post-crash reopen would).
 */
AuditResult auditRecovery(const std::vector<std::uint8_t> &image,
                          const std::string &runtime_name,
                          unsigned threads,
                          const InspectReport &report);

} // namespace specpmt::forensic

#endif // SPECPMT_FORENSIC_RECOVERY_AUDIT_HH
