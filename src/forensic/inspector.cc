#include "forensic/inspector.hh"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <string_view>

#include "core/splog_walk.hh"
#include "txn/tx_runtime.hh"

namespace specpmt::forensic
{

namespace
{

using core::DecodedSegment;
using core::SegHead;

std::string
hex(std::uint64_t value)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "0x%" PRIx64, value);
    return buf;
}

std::string
hex32(std::uint32_t value)
{
    char buf[16];
    std::snprintf(buf, sizeof(buf), "0x%08" PRIx32, value);
    return buf;
}

SegReport
segReport(const DecodedSegment &seg)
{
    SegReport out;
    out.pos = seg.pos;
    out.sizeBytes = seg.sizeBytes;
    out.timestamp = seg.timestamp;
    out.final = seg.final;
    out.txSegments = seg.txSegments;
    out.numEntries = static_cast<std::uint32_t>(seg.entries.size());
    // The walker only surfaces checksum-valid segments, so the stored
    // seal equals the recomputed one; report the stored value.
    return out;
}

TxReport
txFromGroup(const core::GroupedTx &group, TxVerdict verdict,
            std::string reason)
{
    TxReport tx;
    tx.verdict = verdict;
    tx.ts = group.ts;
    tx.reason = std::move(reason);
    for (const auto &part : group.segs) {
        tx.segs.push_back(segReport(part.seg));
        tx.entries.insert(tx.entries.end(), part.seg.entries.begin(),
                          part.seg.entries.end());
    }
    return tx;
}

/** Sort key placing transactions in chronological (append) order. */
std::pair<std::size_t, PmOff>
txOrderKey(const TxReport &tx)
{
    if (tx.segs.empty())
        return {~std::size_t{0}, ~PmOff{0}};
    return {0, tx.segs.front().pos};
}

/**
 * Forensic detail for a walk that stopped on an invalid record:
 * re-read the header at the stop position and say exactly which check
 * fails, recomputing the CRC when the sizes are plausible. Tolerates
 * arbitrary garbage.
 */
std::string
describeTornTail(const pmem::PmemDevice &dev, PmOff pos)
{
    if (pos == kPmNull)
        return "chain head block header is implausible "
               "(torn allocation or foreign log format)";
    if (pos + sizeof(SegHead) > dev.size()) {
        return "segment header at " + hex(pos) +
               " exceeds device bounds";
    }
    const auto head = dev.loadT<SegHead>(pos);
    if (head.sizeBytes == 0)
        return "unexpected tail poison at " + hex(pos);
    if (head.sizeBytes < sizeof(SegHead)) {
        return "implausible segment size " +
               std::to_string(head.sizeBytes) + " at " + hex(pos);
    }
    if (pos + head.sizeBytes > dev.size()) {
        return "segment size " + std::to_string(head.sizeBytes) +
               " at " + hex(pos) + " exceeds device bounds";
    }
    const std::uint32_t computed = core::segmentCrc(dev, pos, head);
    if (computed != head.crc) {
        return "seal crc mismatch at " + hex(pos) + ": stored " +
               hex32(head.crc) + ", computed " + hex32(computed) +
               " (sizeBytes=" + std::to_string(head.sizeBytes) +
               ", ts=" + std::to_string(head.timestamp) +
               ", entries=" + std::to_string(head.numEntries) + ")";
    }
    return "segment at " + hex(pos) +
           " has a valid seal but is structurally inconsistent "
           "(overruns its block or malformed entry table)";
}

ChainReport
inspectChain(const pmem::PmemDevice &dev, unsigned tid, PmOff root)
{
    ChainReport chain;
    chain.tid = tid;
    chain.present = true;
    chain.head = root;

    core::TxGrouper grouper;
    const auto walk = core::walkChain(
        dev, root,
        [&](const DecodedSegment &seg) { grouper.feed(seg); },
        [&](const core::QuarantinedSegment &) {
            grouper.noteQuarantine();
        });
    grouper.finish();
    chain.quarantined = walk.quarantined;

    chain.blocks = walk.blocks;
    chain.tornTail = walk.end == core::WalkEnd::TornRecord;
    chain.tailPos = walk.tailPos;
    if (chain.tornTail)
        chain.tailDetail = describeTornTail(dev, walk.tailPos);
    chain.lastCommittedEnd = grouper.lastCommittedEnd();

    for (const auto &group : grouper.committed()) {
        const auto &last = group.segs.back().seg;
        chain.txs.push_back(txFromGroup(
            group, TxVerdict::Committed,
            "final seal at " + hex(last.pos) + " attests " +
                std::to_string(last.txSegments) +
                " segment(s); run has " +
                std::to_string(group.segs.size())));
    }
    for (const auto &discarded : grouper.discarded()) {
        std::string reason;
        switch (discarded.reason) {
          case core::TxDiscard::TimestampBreak:
            reason = "no final seal before the log's timestamp "
                     "changed (interrupted commit's debris, " +
                     std::to_string(discarded.tx.segs.size()) +
                     " sealed segment(s))";
            break;
          case core::TxDiscard::SegCountMismatch: {
            const auto &last = discarded.tx.segs.back().seg;
            reason = "final seal at " + hex(last.pos) + " attests " +
                     std::to_string(last.txSegments) +
                     " segment(s) but the run has " +
                     std::to_string(discarded.tx.segs.size()) +
                     " (intermediate segment never persisted)";
            break;
          }
          case core::TxDiscard::QuarantineGap:
            reason = "a quarantined (media-corrupted) segment "
                     "interrupted the run of " +
                     std::to_string(discarded.tx.segs.size()) +
                     " sealed segment(s); committing the remainder "
                     "would apply a subset";
            break;
        }
        chain.txs.push_back(txFromGroup(discarded.tx, TxVerdict::Torn,
                                        std::move(reason)));
    }
    std::sort(chain.txs.begin(), chain.txs.end(),
              [](const TxReport &a, const TxReport &b) {
                  return txOrderKey(a) < txOrderKey(b);
              });

    // The trailing open run — and, when the walk stopped on an invalid
    // record, the torn record itself — classify last.
    const auto &open = grouper.inFlight();
    if (!open.segs.empty()) {
        if (chain.tornTail) {
            chain.txs.push_back(txFromGroup(
                open, TxVerdict::Torn,
                "run of " + std::to_string(open.segs.size()) +
                    " sealed segment(s) ends in a torn record: " +
                    chain.tailDetail));
        } else {
            chain.txs.push_back(txFromGroup(
                open, TxVerdict::InFlight,
                "no final seal; log ends in clean tail poison "
                "(crash between txBegin and the commit seal)"));
        }
    } else if (chain.tornTail) {
        TxReport tx;
        tx.verdict = TxVerdict::Torn;
        tx.reason = "torn record at chain tail: " + chain.tailDetail;
        chain.txs.push_back(std::move(tx));
    }
    return chain;
}

} // namespace

const char *
txVerdictName(TxVerdict verdict)
{
    switch (verdict) {
      case TxVerdict::Committed:
        return "COMMITTED";
      case TxVerdict::Torn:
        return "TORN";
      case TxVerdict::InFlight:
        return "IN-FLIGHT";
      case TxVerdict::Unsealed:
        return "UNSEALED";
    }
    return "?";
}

InspectReport
inspectImage(const pmem::PmemDevice &dev, unsigned threads,
             const std::string &source)
{
    InspectReport report;
    report.source = source;
    report.deviceBytes = dev.size();
    threads = std::min(threads, kMaxInspectThreads);

    for (unsigned tid = 0; tid < threads; ++tid) {
        const PmOff slot_off =
            txn::logHeadSlot(tid) * sizeof(PmOff);
        if (slot_off + sizeof(PmOff) > dev.size())
            break; // truncated image: no root directory beyond here
        const PmOff root = dev.loadT<PmOff>(slot_off);
        if (root == kPmNull)
            continue;
        report.chains.push_back(inspectChain(dev, tid, root));
    }

    const PmOff flight_slot_off =
        kFlightRecorderRootSlot * sizeof(PmOff);
    if (flight_slot_off + sizeof(PmOff) <= dev.size()) {
        report.flight = FlightRecorder::decode(
            dev, dev.loadT<PmOff>(flight_slot_off));
    }

    // Epoch-mode images publish a frontier record; apply the same
    // replay-limit rule recovery uses (splog_walk) and demote
    // committed runs beyond the limit: they were never acked.
    const PmOff frontier_slot_off =
        txn::kEpochFrontierSlot * sizeof(PmOff);
    PmOff frontier_root = kPmNull;
    if (frontier_slot_off + sizeof(PmOff) <= dev.size())
        frontier_root = dev.loadT<PmOff>(frontier_slot_off);
    if (frontier_root != kPmNull) {
        report.epochMedia = true;
        core::EpochFrontier frontier{};
        if (frontier_root + sizeof(frontier) <= dev.size())
            frontier = dev.loadT<core::EpochFrontier>(frontier_root);
        report.frontierValid = core::epochFrontierValid(frontier);
        report.epochStart = frontier.start;
        report.epochEnd = frontier.end;
        std::vector<TxTimestamp> committed_ts;
        for (const auto &chain : report.chains) {
            for (const auto &tx : chain.txs) {
                if (tx.verdict == TxVerdict::Committed)
                    committed_ts.push_back(tx.ts);
            }
        }
        // An invalid record replays nothing: fail closed, exactly as
        // epochReplayLimit does for a corrupt frontier.
        report.epochLimit =
            core::epochReplayLimit(frontier, std::move(committed_ts));
        for (auto &chain : report.chains) {
            bool demoted = false;
            for (auto &tx : chain.txs) {
                if (tx.verdict != TxVerdict::Committed ||
                    tx.ts <= report.epochLimit)
                    continue;
                tx.verdict = TxVerdict::Unsealed;
                tx.reason = "committed on media but ts " +
                            std::to_string(tx.ts) +
                            " exceeds the epoch replay limit " +
                            std::to_string(report.epochLimit) +
                            " (frontier window [" +
                            std::to_string(frontier.start) + ", " +
                            std::to_string(frontier.end) +
                            "]): the epoch's shared fence never "
                            "completed, so it was never acked and "
                            "recovery drops it";
                demoted = true;
            }
            if (demoted) {
                // Recovery re-adopts after the last *replayable* run.
                chain.lastCommittedEnd = kPmNull;
                for (const auto &tx : chain.txs) {
                    if (tx.verdict == TxVerdict::Committed &&
                        !tx.segs.empty()) {
                        const auto &last = tx.segs.back();
                        chain.lastCommittedEnd =
                            last.pos +
                            ((last.sizeBytes + 7) & ~std::uint32_t{7});
                    }
                }
            }
        }
    }

    for (const auto &chain : report.chains) {
        report.quarantined += chain.quarantined.size();
        for (const auto &tx : chain.txs) {
            switch (tx.verdict) {
              case TxVerdict::Committed:
                ++report.committed;
                break;
              case TxVerdict::Torn:
                ++report.torn;
                break;
              case TxVerdict::InFlight:
                ++report.inFlight;
                break;
              case TxVerdict::Unsealed:
                ++report.unsealed;
                break;
            }
        }
    }
    return report;
}

// ---------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------

namespace
{

void
appendJsonEscaped(std::string &out, std::string_view text)
{
    for (char c : text) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
}

void
appendFlightText(std::string &out, const DecodedFlightRing &flight)
{
    if (!flight.present) {
        out += "flight recorder: absent\n";
        return;
    }
    if (!flight.error.empty()) {
        out += "flight recorder: unreadable (" + flight.error + ")\n";
        return;
    }
    out += "flight recorder: " +
           std::to_string(flight.records.size()) + " record(s), " +
           std::to_string(flight.invalidSlots) +
           " invalid slot(s), capacity " +
           std::to_string(flight.capacity) + "\n";
    for (const auto &rec : flight.records) {
        out += "  seq=" + std::to_string(rec.seq) + " " +
               eventTypeName(rec.type) +
               " tid=" + std::to_string(rec.tid) +
               " ts=" + std::to_string(rec.timestamp) +
               " arg0=" + std::to_string(rec.arg0) +
               " arg1=" + std::to_string(rec.arg1) + "\n";
    }
}

} // namespace

std::string
InspectReport::toText() const
{
    std::string out;
    out += "pminspect report: " + source + "\n";
    out += "device: " + std::to_string(deviceBytes) + " bytes\n";
    out += "chains: " + std::to_string(chains.size()) + "\n";
    for (const auto &chain : chains) {
        out += "chain tid=" + std::to_string(chain.tid) +
               " head=" + hex(chain.head) +
               " blocks=" + std::to_string(chain.blocks.size());
        if (chain.tornTail)
            out += " tail=torn@" + hex(chain.tailPos);
        else
            out += " tail=clean";
        out += "\n";
        for (const auto &tx : chain.txs) {
            out += std::string("  ") + txVerdictName(tx.verdict) +
                   " ts=" + std::to_string(tx.ts) +
                   " segs=" + std::to_string(tx.segs.size()) +
                   " entries=" + std::to_string(tx.entries.size());
            if (!tx.segs.empty()) {
                const auto &first = tx.segs.front();
                const auto &last = tx.segs.back();
                out += " at=" + hex(first.pos);
                if (last.final) {
                    out += " final-seal(count=" +
                           std::to_string(last.txSegments) + ")";
                }
            }
            out += "\n    reason: " + tx.reason + "\n";
        }
        for (const auto &q : chain.quarantined) {
            out += "  QUARANTINED segment at " + hex(q.pos) +
                   " (sizeBytes=" + std::to_string(q.sizeBytes) +
                   ", block=" + hex(q.block) +
                   "): seal crc failed but a valid segment follows "
                   "(media corruption, not a torn tail)\n";
        }
    }
    if (epochMedia) {
        out += "epoch frontier: window [" +
               std::to_string(epochStart) + ", " +
               std::to_string(epochEnd) + "] " +
               (frontierValid ? "(valid seal)" : "(INVALID seal)") +
               ", replay limit " + std::to_string(epochLimit) + "\n";
    }
    appendFlightText(out, flight);
    out += "summary: committed=" + std::to_string(committed) +
           " torn=" + std::to_string(torn) +
           " in-flight=" + std::to_string(inFlight);
    if (epochMedia)
        out += " unsealed=" + std::to_string(unsealed);
    if (quarantined != 0)
        out += " quarantined=" + std::to_string(quarantined);
    out += "\n";
    return out;
}

std::string
InspectReport::toJson(const std::string &metrics_json) const
{
    std::string out = "{\n  \"image\": {\"source\": \"";
    appendJsonEscaped(out, source);
    out += "\", \"bytes\": " + std::to_string(deviceBytes) + "},\n";

    out += "  \"chains\": [";
    bool first_chain = true;
    for (const auto &chain : chains) {
        if (!first_chain)
            out += ",";
        first_chain = false;
        out += "\n    {\"tid\": " + std::to_string(chain.tid) +
               ", \"head\": " + std::to_string(chain.head) +
               ", \"blocks\": [";
        for (std::size_t i = 0; i < chain.blocks.size(); ++i) {
            if (i)
                out += ", ";
            out += std::to_string(chain.blocks[i]);
        }
        out += "], \"tornTail\": ";
        out += chain.tornTail ? "true" : "false";
        out += ", \"tailPos\": " + std::to_string(chain.tailPos) +
               ", \"tailDetail\": \"";
        appendJsonEscaped(out, chain.tailDetail);
        out += "\", \"lastCommittedEnd\": " +
               std::to_string(chain.lastCommittedEnd);
        if (!chain.quarantined.empty()) {
            out += ", \"quarantined\": [";
            bool first_q = true;
            for (const auto &q : chain.quarantined) {
                if (!first_q)
                    out += ", ";
                first_q = false;
                out += "{\"pos\": " + std::to_string(q.pos) +
                       ", \"sizeBytes\": " +
                       std::to_string(q.sizeBytes) +
                       ", \"block\": " + std::to_string(q.block) + "}";
            }
            out += "]";
        }
        out += ",\n     \"txs\": [";
        bool first_tx = true;
        for (const auto &tx : chain.txs) {
            if (!first_tx)
                out += ",";
            first_tx = false;
            out += "\n      {\"verdict\": \"";
            out += txVerdictName(tx.verdict);
            out += "\", \"ts\": " + std::to_string(tx.ts) +
                   ", \"reason\": \"";
            appendJsonEscaped(out, tx.reason);
            out += "\", \"segments\": [";
            bool first_seg = true;
            for (const auto &seg : tx.segs) {
                if (!first_seg)
                    out += ", ";
                first_seg = false;
                out += "{\"pos\": " + std::to_string(seg.pos) +
                       ", \"sizeBytes\": " +
                       std::to_string(seg.sizeBytes) +
                       ", \"timestamp\": " +
                       std::to_string(seg.timestamp) +
                       ", \"final\": ";
                out += seg.final ? "true" : "false";
                out += ", \"txSegments\": " +
                       std::to_string(seg.txSegments) +
                       ", \"numEntries\": " +
                       std::to_string(seg.numEntries) + "}";
            }
            out += "], \"entries\": [";
            bool first_entry = true;
            for (const auto &entry : tx.entries) {
                if (!first_entry)
                    out += ", ";
                first_entry = false;
                out += "{\"off\": " + std::to_string(entry.dataOff) +
                       ", \"size\": " + std::to_string(entry.size) +
                       "}";
            }
            out += "]}";
        }
        out += "]}";
    }
    out += "\n  ],\n";

    out += "  \"flight\": {\"present\": ";
    out += flight.present ? "true" : "false";
    out += ", \"error\": \"";
    appendJsonEscaped(out, flight.error);
    out += "\", \"capacity\": " + std::to_string(flight.capacity) +
           ", \"invalidSlots\": " +
           std::to_string(flight.invalidSlots) + ", \"records\": [";
    bool first_rec = true;
    for (const auto &rec : flight.records) {
        if (!first_rec)
            out += ",";
        first_rec = false;
        out += "\n    {\"seq\": " + std::to_string(rec.seq) +
               ", \"type\": \"";
        out += eventTypeName(rec.type);
        out += "\", \"tid\": " + std::to_string(rec.tid) +
               ", \"timestamp\": " + std::to_string(rec.timestamp) +
               ", \"arg0\": " + std::to_string(rec.arg0) +
               ", \"arg1\": " + std::to_string(rec.arg1) + "}";
    }
    out += "]},\n";

    if (epochMedia) {
        out += "  \"epoch\": {\"frontierValid\": ";
        out += frontierValid ? "true" : "false";
        out += ", \"start\": " + std::to_string(epochStart) +
               ", \"end\": " + std::to_string(epochEnd) +
               ", \"replayLimit\": " + std::to_string(epochLimit) +
               "},\n";
    }
    out += "  \"summary\": {\"committed\": " +
           std::to_string(committed) +
           ", \"torn\": " + std::to_string(torn) +
           ", \"inFlight\": " + std::to_string(inFlight);
    if (epochMedia)
        out += ", \"unsealed\": " + std::to_string(unsealed);
    if (quarantined != 0)
        out += ", \"quarantined\": " + std::to_string(quarantined);
    out += "}";
    if (!metrics_json.empty())
        out += ",\n  \"metrics\": " + metrics_json;
    out += "\n}\n";
    return out;
}

} // namespace specpmt::forensic
