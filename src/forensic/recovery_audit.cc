#include "forensic/recovery_audit.hh"

#include <algorithm>
#include <map>

#include "core/splog_walk.hh"
#include "obs/metrics.hh"
#include "pmem/image_io.hh"
#include "pmem/pmem_pool.hh"
#include "sim/crash_explorer.hh"
#include "txn/tx_runtime.hh"

namespace specpmt::forensic
{

namespace
{

constexpr const char *kReplayedCounter =
    "specpmt_recovery_replayed_txs_total";

std::uint64_t
replayedCounterValue()
{
    const auto snap = obs::Registry::global().snapshot();
    const auto it = snap.counters.find(kReplayedCounter);
    return it == snap.counters.end() ? 0 : it->second;
}

/** Committed timestamps per thread, sorted (multiset semantics). */
std::map<unsigned, std::vector<TxTimestamp>>
committedTimestamps(const InspectReport &report)
{
    std::map<unsigned, std::vector<TxTimestamp>> out;
    for (const auto &chain : report.chains) {
        auto &list = out[chain.tid];
        for (const auto &tx : chain.txs) {
            if (tx.verdict == TxVerdict::Committed)
                list.push_back(tx.ts);
        }
        std::sort(list.begin(), list.end());
    }
    return out;
}

} // namespace

AuditResult
auditRecovery(const std::vector<std::uint8_t> &image,
              const std::string &runtime_name, unsigned threads,
              const InspectReport &report)
{
    AuditResult result;
    result.inspectorCommitted = report.committed;
    if (runtime_name != "spec" && runtime_name != "spec-dp")
        return result; // inspector only models splog recovery
    result.supported = true;

    // The inspector's independent prediction of recovery's data
    // writes: replay every committed entry in global timestamp order
    // against a sparse byte map, values read from the *original*
    // image (recovery may truncate the log area they live in).
    struct PendingTx
    {
        TxTimestamp ts;
        const TxReport *tx;
    };
    std::vector<PendingTx> committed;
    for (const auto &chain : report.chains) {
        for (const auto &tx : chain.txs) {
            if (tx.verdict == TxVerdict::Committed)
                committed.push_back({tx.ts, &tx});
        }
    }
    std::sort(committed.begin(), committed.end(),
              [](const PendingTx &a, const PendingTx &b) {
                  return a.ts < b.ts;
              });
    // Ordered so any byte-mismatch reporting is deterministic.
    std::map<PmOff, std::uint8_t> expected;
    for (const auto &pending : committed) {
        for (const auto &entry : pending.tx->entries) {
            if (entry.valuePos + entry.size > image.size() ||
                entry.dataOff + entry.size > image.size()) {
                result.disagreements.push_back(
                    "committed entry out of image bounds (off=" +
                    std::to_string(entry.dataOff) +
                    ", size=" + std::to_string(entry.size) + ")");
                continue;
            }
            for (std::uint32_t i = 0; i < entry.size; ++i)
                expected[entry.dataOff + i] =
                    image[entry.valuePos + i];
        }
    }

    // Real recovery, on a throwaway copy.
    auto dev = pmem::deviceFromImage(image);
    pmem::PmemPool pool(*dev);
    const PmOff watermark = dev->size() >= (1u << 20)
                                ? dev->size() - (256u << 10)
                                : dev->size() / 2;
    pool.reserveBelow(watermark);

    const std::uint64_t replayed_before = replayedCounterValue();
    auto runtime = sim::makeCrashRuntime(runtime_name, pool, threads);
    runtime->recover();
    result.runtimeReplayedTxs =
        replayedCounterValue() - replayed_before;

    // Check 1: replayed-transaction count.
    if (result.runtimeReplayedTxs != report.committed) {
        result.disagreements.push_back(
            "runtime replayed " +
            std::to_string(result.runtimeReplayedTxs) +
            " transaction(s) but the inspector classified " +
            std::to_string(report.committed) + " as COMMITTED");
    }

    // Check 2: the recovered chains hold exactly the committed
    // timestamps, per thread (debris truncated, prefix preserved).
    const auto want_ts = committedTimestamps(report);
    for (const auto &[tid, want] : want_ts) {
        const PmOff root =
            dev->loadT<PmOff>(txn::logHeadSlot(tid) * sizeof(PmOff));
        std::vector<TxTimestamp> got;
        if (root != kPmNull) {
            core::TxGrouper grouper;
            core::walkChain(
                *dev, root,
                [&](const core::DecodedSegment &seg) {
                    grouper.feed(seg);
                },
                [&](const core::QuarantinedSegment &) {
                    grouper.noteQuarantine();
                });
            grouper.finish();
            for (const auto &group : grouper.committed())
                got.push_back(group.ts);
            std::sort(got.begin(), got.end());
        }
        if (got != want) {
            result.disagreements.push_back(
                "recovered chain of tid " + std::to_string(tid) +
                " holds " + std::to_string(got.size()) +
                " committed transaction(s) where the inspector "
                "expected " + std::to_string(want.size()));
        }
    }

    // Check 3: every committed-entry byte matches the inspector's
    // chronological replay.
    std::size_t mismatches = 0;
    for (const auto &[addr, value] : expected) {
        std::uint8_t actual = 0;
        dev->load(addr, &actual, 1);
        if (actual != value && mismatches++ < 4) {
            result.disagreements.push_back(
                "byte at offset " + std::to_string(addr) +
                " is " + std::to_string(actual) +
                " after recovery; committed log records say " +
                std::to_string(value));
        }
    }
    if (mismatches > 4) {
        result.disagreements.push_back(
            "... and " + std::to_string(mismatches - 4) +
            " more byte mismatch(es)");
    }

    result.agrees = result.disagreements.empty();
    return result;
}

std::string
AuditResult::toText() const
{
    if (!supported) {
        return "recovery audit: unsupported runtime (only spec / "
               "spec-dp recovery is modeled)\n";
    }
    std::string out =
        "recovery audit: " +
        std::string(agrees ? "AGREES" : "DISAGREES") +
        " (runtime replayed " + std::to_string(runtimeReplayedTxs) +
        ", inspector committed " +
        std::to_string(inspectorCommitted) + ")\n";
    for (const auto &item : disagreements)
        out += "  disagreement: " + item + "\n";
    return out;
}

std::string
AuditResult::toJson() const
{
    std::string out = "{\"supported\": ";
    out += supported ? "true" : "false";
    out += ", \"agrees\": ";
    out += agrees ? "true" : "false";
    out += ", \"runtimeReplayedTxs\": " +
           std::to_string(runtimeReplayedTxs) +
           ", \"inspectorCommitted\": " +
           std::to_string(inspectorCommitted) +
           ", \"disagreements\": [";
    for (std::size_t i = 0; i < disagreements.size(); ++i) {
        if (i)
            out += ", ";
        out += "\"";
        for (char c : disagreements[i]) {
            if (c == '"' || c == '\\')
                out += '\\';
            out += c;
        }
        out += "\"";
    }
    out += "]}";
    return out;
}

} // namespace specpmt::forensic
