/**
 * @file
 * Persistent flight recorder: a small, bounded, crash-consistent ring
 * journal of coarse runtime lifecycle events, allocated inside the
 * pmem pool so it survives the crash it is meant to explain.
 *
 * Every record is one sealed cache line, borrowing the speculative
 * log's trick (splog_format): a CRC32C seeded by the record's
 * location doubles as the validity flag, so a torn ring-slot
 * overwrite is self-identifying and an offline reader never needs a
 * separate index. Appends store the line and clwb it with *no* fence
 * — the record becomes durable with the caller's next commit fence
 * (SpecTx's single commit sfence, the undo runtimes' commit barrier),
 * so steady-state recording costs one cache-line store + flush and
 * zero extra ordering. A record appended after the final pre-crash
 * fence may be lost or torn; both read back as an invalid seal and
 * are reported as such, never as a wrong event.
 *
 * The recorder is strictly opt-in and off by default: create() is
 * called once, at pool-creation time, before any runtime is
 * constructed; every runtime's constructor then attach()es through
 * the pool root and gets a cheap disabled handle when the root is
 * null. Because appends add persistence events (stores + flushes),
 * leaving it off keeps crash-schedule replay tokens stable.
 *
 * Event semantics (what arg0/arg1 carry) are documented per EventType
 * member; the timestamp field holds the runtime's commit timestamp
 * where one exists, else 0.
 */

#ifndef SPECPMT_FORENSIC_FLIGHT_RECORDER_HH
#define SPECPMT_FORENSIC_FLIGHT_RECORDER_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hh"
#include "pmem/pmem_device.hh"
#include "pmem/pmem_pool.hh"

namespace specpmt::forensic
{

/** Root directory slot publishing the ring (last slot, clear of the
 * per-thread log heads at 1+tid, the hybrid sequence cells at 20+tid
 * and the application roots from 40 up). */
constexpr unsigned kFlightRecorderRootSlot =
    pmem::PmemPool::kRootSlots - 1;

/** Ring header magic ("SPMTFLT1", little-endian). */
constexpr std::uint64_t kFlightMagic = 0x31544C46544D5053ull;

/** Coarse lifecycle events the runtimes append. */
enum class EventType : std::uint16_t
{
    None = 0,
    /** arg0 = 0. */
    TxBegin = 1,
    /** timestamp = commit timestamp (0 if the scheme has none),
     * arg0 = log segments / records sealed by this commit. */
    TxCommit = 2,
    /** arg0 = 0. */
    TxAbort = 3,
    /** arg0 = live log bytes when the cycle started. */
    ReclaimBegin = 4,
    /** arg0 = bytes freed by the cycle. */
    ReclaimEnd = 5,
    /** arg0 = 0. */
    RecoveryBegin = 6,
    /** arg0 = committed transactions replayed. */
    RecoveryEnd = 7,
    /** arg0 = 0 (Section 4.3.1 mechanism switch). */
    ModeSwitch = 8,
    /** A device MediaError surfaced to the runtime: arg0 = the
     * faulting media offset, arg1 = MediaErrorKind. */
    MediaFault = 9,
    /** Recovery/walk quarantined a CRC-failing segment: arg0 = the
     * segment's position, arg1 = its claimed sizeBytes. */
    Quarantine = 10,
    /** The pool entered read-only degraded mode (log-space
     * exhaustion or unrecoverable media failure): arg0 = bytes the
     * failing allocation needed (0 when unknown). */
    DegradedEnter = 11,
};

/** Printable name of @p type ("tx_commit", ...). */
const char *eventTypeName(EventType type);

/** On-media ring header (one cache line). */
struct FlightHeader
{
    std::uint64_t magic;
    std::uint32_t capacity; ///< record slots in the ring
    std::uint32_t pad0;
    std::uint64_t pad[6];
};
static_assert(sizeof(FlightHeader) == 64);

/** On-media record (one cache line; crc seeded by its location). */
struct FlightRecord
{
    std::uint32_t crc;   ///< covers type..arg1, seeded by position
    EventType type;
    std::uint16_t tid;
    std::uint64_t seq;   ///< global append sequence, 1-based
    std::uint64_t timestamp;
    std::uint64_t arg0;
    std::uint64_t arg1;
    std::uint64_t pad[3];
};
static_assert(sizeof(FlightRecord) == 64);

/** A ring record decoded offline (valid seal, in-bounds fields). */
struct DecodedFlightRecord
{
    std::uint64_t seq = 0;
    EventType type = EventType::None;
    unsigned tid = 0;
    std::uint64_t timestamp = 0;
    std::uint64_t arg0 = 0;
    std::uint64_t arg1 = 0;
    unsigned slot = 0; ///< ring slot the record was read from
};

/** Offline view of a ring found in an image. */
struct DecodedFlightRing
{
    /** False when the root slot is null (recorder never enabled). */
    bool present = false;
    /** Non-empty when the root points at garbage (corrupt header). */
    std::string error;
    PmOff base = kPmNull;
    std::uint32_t capacity = 0;
    /** Valid records, sorted by seq (ascending = chronological). */
    std::vector<DecodedFlightRecord> records;
    /** Slots whose seal did not validate (torn or never written). */
    unsigned invalidSlots = 0;
};

/**
 * The runtime-side handle; see file comment. Default-constructed
 * handles are disabled and every record() is a no-op branch.
 */
class FlightRecorder
{
  public:
    FlightRecorder() = default;

    /**
     * Allocate and persist an empty ring of @p capacity records in
     * @p pool and publish it in the root directory. Call once per
     * pool, before constructing any runtime. Idempotent re-creation
     * is not supported: the slot must be unset.
     */
    static void create(pmem::PmemPool &pool, std::uint32_t capacity = 64);

    /**
     * Attach to the ring published in @p pool's root directory.
     * Returns a disabled handle when the root is null or the header
     * does not validate. Re-adopts the ring's allocation (idempotent)
     * and re-establishes the append sequence by scanning the ring for
     * the newest valid seal, so recording continues monotonically
     * across crashes.
     */
    static FlightRecorder attach(pmem::PmemPool &pool);

    bool enabled() const { return dev_ != nullptr; }

    /**
     * Append one record (no-op when disabled). The stored line is
     * flushed (TrafficClass::Meta) but not fenced — it rides the
     * caller's next commit fence.
     */
    void record(EventType type, ThreadId tid, std::uint64_t timestamp = 0,
                std::uint64_t arg0 = 0, std::uint64_t arg1 = 0);

    /** Sequence number of the newest appended record (0 = none). */
    std::uint64_t sequence() const;

    /**
     * Decode the ring referenced by @p pool_root (the value of the
     * flight-recorder root slot) from @p dev without mutating
     * anything — the offline reader pminspect builds on. Tolerates
     * arbitrary garbage.
     */
    static DecodedFlightRing decode(const pmem::PmemDevice &dev,
                                    PmOff pool_root);

  private:
    static std::uint32_t recordCrc(PmOff pos, const FlightRecord &rec);

    pmem::PmemDevice *dev_ = nullptr;
    PmOff base_ = kPmNull;     ///< ring area (header at base_)
    std::uint32_t capacity_ = 0;
    std::shared_ptr<std::atomic<std::uint64_t>> seq_;
};

} // namespace specpmt::forensic

#endif // SPECPMT_FORENSIC_FLIGHT_RECORDER_HH
