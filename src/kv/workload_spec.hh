/**
 * @file
 * Shared YCSB workload-shape generation for every KV load path.
 *
 * The closed-loop driver (kv/driver) and the open-loop network load
 * generator (net/loadgen) must draw *identical* key/value/op-mix
 * distributions, or their results are not comparable and the
 * distributions silently drift as one copy is edited. This header is
 * the single definition: the mix/popularity enums, the YCSB zipfian
 * rank generator, the rank-to-key scrambler, and OpGenerator — a
 * deterministic stream of fully materialized operations (reads,
 * tagged-value puts, multi-put batches) that both drivers consume.
 *
 * Determinism contract: for a given (WorkloadSpec, seed), next()
 * returns the same operation sequence on every platform, and the
 * sequence is exactly what kv/driver's inline loop historically drew
 * (same Rng draw order), so existing seeds reproduce old runs.
 */

#ifndef SPECPMT_KV_WORKLOAD_SPEC_HH
#define SPECPMT_KV_WORKLOAD_SPEC_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "common/rand.hh"
#include "kv/kv_service.hh"

namespace specpmt::kv
{

/** YCSB core workload mixes. */
enum class Mix
{
    A, ///< 50% read / 50% update
    B, ///< 95% read / 5% update
    C, ///< 100% read
};

const char *mixName(Mix mix);

/** Update fraction of @p mix (0.5 / 0.05 / 0). */
double mixUpdateFraction(Mix mix);

/** Key popularity distributions. */
enum class KeyDist
{
    Uniform,
    Zipfian,
};

const char *keyDistName(KeyDist dist);

/**
 * The YCSB zipfian rank generator (Gray et al.'s algorithm): ranks in
 * [0, n) with P(rank) ∝ 1/(rank+1)^theta. Construction is O(n) (zeta
 * precomputation); next() is O(1).
 */
class ZipfianGenerator
{
  public:
    ZipfianGenerator(std::uint64_t n, double theta);

    /** Draw a rank in [0, n); rank 0 is the most popular. */
    std::uint64_t next(Rng &rng) const;

  private:
    std::uint64_t n_;
    double theta_;
    double zetan_;
    double alpha_;
    double eta_;
};

/**
 * Map a popularity rank to a key in [1, keys]: ranks are scrambled
 * with a 64-bit mix so hot keys spread across shards, as YCSB does.
 */
std::uint64_t rankToKey(std::uint64_t rank, std::uint64_t keys);

/** The workload shape both load paths generate from. */
struct WorkloadSpec
{
    /** Keyspace: keys 1..keys (loaded before the run). */
    std::uint64_t keys = 1u << 14;
    Mix mix = Mix::A;
    KeyDist dist = KeyDist::Zipfian;
    double zipfTheta = 0.99;
    /** Issue this fraction of updates as multiPut batches (0 = off). */
    double multiPutFraction = 0.0;
    /** Keys per multiPut batch. */
    unsigned multiPutBatch = 4;
};

/** One fully materialized operation. */
struct WorkloadOp
{
    enum class Kind : std::uint8_t
    {
        Get,
        Put,
        MultiPut,
    };

    Kind kind = Kind::Get;
    /** Get/Put target (unused for MultiPut). */
    KvKey key = 0;
    /** Put value (tagged for key). */
    KvValue value{};
    /** MultiPut pairs (empty otherwise). */
    std::vector<std::pair<KvKey, KvValue>> batch;
};

/**
 * Deterministic operation stream; see file comment. The zipfian
 * generator is shared by pointer because its construction is O(keys):
 * callers build one per run and hand it to every worker's generator.
 * It may be null when spec.dist == Uniform.
 */
class OpGenerator
{
  public:
    OpGenerator(const WorkloadSpec &spec, const ZipfianGenerator *zipf,
                std::uint64_t seed);

    /** Draw the next operation. */
    WorkloadOp next();

    /**
     * The per-worker seed the closed-loop driver has always used, so
     * N workers with workerSeed(seed, 0..N-1) reproduce historical
     * multi-threaded runs.
     */
    static std::uint64_t
    workerSeed(std::uint64_t seed, unsigned worker)
    {
        return seed * 0x9E3779B9u + worker;
    }

  private:
    WorkloadSpec spec_;
    const ZipfianGenerator *zipf_;
    double updateFraction_;
    Rng rng_;
};

} // namespace specpmt::kv

#endif // SPECPMT_KV_WORKLOAD_SPEC_HH
