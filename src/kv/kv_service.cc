#include "kv/kv_service.hh"

#include <algorithm>
#include <chrono>
#include <map>
#include <thread>

#include "common/hash.hh"
#include "common/logging.hh"
#include "forensic/flight_recorder.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace specpmt::kv
{

namespace
{

/** Tag mixed into word 0 of tagged values ("KVTA"). */
constexpr std::uint64_t kValueTag = 0x4B565441'5EC9417ull;

/** KV service operation counters, registered once per process. */
struct KvMetrics
{
    obs::Counter &gets;
    obs::Counter &puts;
    obs::Counter &putFailures;
    obs::Counter &erases;
    obs::Counter &multiPuts;
    obs::Counter &crashes;
    obs::Counter &recoveries;
    obs::Counter &mediaAborts;
    obs::Counter &readOnlyRejects;
    obs::Counter &degradedEnters;
    obs::Gauge &lastRecoveryNs;
    obs::Histogram &shardRecoveryNs;

    static KvMetrics &
    get()
    {
        auto &reg = obs::Registry::global();
        static KvMetrics m{
            reg.counter("specpmt_kv_gets_total", "KV point lookups"),
            reg.counter("specpmt_kv_puts_total",
                        "KV puts (update or insert)"),
            reg.counter("specpmt_kv_put_failures_total",
                        "KV puts rejected (table full)"),
            reg.counter("specpmt_kv_erases_total",
                        "KV erases that removed a key"),
            reg.counter("specpmt_kv_multi_puts_total",
                        "KV multi-shard batch puts"),
            reg.counter("specpmt_kv_crashes_total",
                        "simulated whole-service crashes"),
            reg.counter("specpmt_kv_recoveries_total",
                        "whole-service parallel recoveries"),
            reg.counter("specpmt_kv_media_tx_aborts_total",
                        "transactions aborted cleanly on a media "
                        "fault (poisoned read / write EIO)"),
            reg.counter("specpmt_kv_readonly_rejects_total",
                        "mutations refused by a read-only degraded "
                        "shard"),
            reg.counter("specpmt_kv_degraded_enters_total",
                        "shards that flipped into read-only degraded "
                        "mode (log-space exhaustion)"),
            reg.gauge("specpmt_kv_last_recovery_ns",
                      "wall-clock ns of the most recent recover()"),
            reg.histogram("specpmt_kv_shard_recovery_ns",
                          "per-shard recovery wall-clock ns"),
        };
        return m;
    }
};

} // namespace

KvValue
KvValue::tagged(KvKey key, std::uint64_t payload)
{
    KvValue value;
    value.words[0] = key ^ kValueTag;
    value.words[1] = payload;
    for (unsigned i = 2; i < 8; ++i)
        value.words[i] = mix64(payload + i);
    return value;
}

bool
KvValue::checkTag(KvKey key) const
{
    if (words[0] != (key ^ kValueTag))
        return false;
    for (unsigned i = 2; i < 8; ++i) {
        if (words[i] != mix64(words[1] + i))
            return false;
    }
    return true;
}

KvService::KvService(const KvServiceConfig &config) : config_(config)
{
    SPECPMT_ASSERT(config_.shards > 0);
    SPECPMT_ASSERT(config_.threads > 0);
    SPECPMT_ASSERT((config_.bucketsPerShard &
                    (config_.bucketsPerShard - 1)) == 0);
    SPECPMT_ASSERT(txn::isRuntimeName(config_.runtime));

    shards_.reserve(config_.shards);
    for (unsigned s = 0; s < config_.shards; ++s) {
        auto shard = std::make_unique<Shard>();
        if (config_.pmDir.empty()) {
            shard->device = std::make_unique<pmem::PmemDevice>(
                config_.shardPoolBytes);
        } else {
            shard->device = std::make_unique<pmem::PmemDevice>(
                config_.shardPoolBytes,
                config_.pmDir + "/shard-" + std::to_string(s) +
                    ".pm");
        }
        shard->pool = std::make_unique<pmem::PmemPool>(*shard->device);
        if (shard->device->hadExistingData()) {
            // Reattach: the backing file holds a pre-kill image.
            // Run this shard's recovery and re-adopt the map exactly
            // as the post-crash path does.
            shard->runtime = txn::makeRuntime(config_.runtime,
                                              *shard->pool,
                                              config_.threads,
                                              config_.runtimeOptions);
            shard->runtime->recover();
            const PmOff base =
                shard->pool->getRoot(txn::kAppRootSlotBase);
            SPECPMT_ASSERT(base != kPmNull);
            shard->map.emplace(Map::attach(*shard->runtime, base));
        } else {
            if (config_.flightRecorder)
                forensic::FlightRecorder::create(*shard->pool);
            shard->runtime =
                txn::makeRuntime(config_.runtime, *shard->pool,
                                 config_.threads,
                                 config_.runtimeOptions);
            shard->map.emplace(
                Map::create(*shard->runtime,
                            config_.bucketsPerShard));
            shard->pool->setRoot(txn::kAppRootSlotBase,
                                 shard->map->base());
        }
        shard->flight = forensic::FlightRecorder::attach(*shard->pool);
        shard->locks =
            std::make_unique<txn::LockTable>(config_.lockStripes);
        shard->sealLagGauge = &obs::Registry::global().gauge(
            "specpmt_epoch_seal_lag",
            "relaxed epoch tickets issued but not yet sealed",
            {{"shard", std::to_string(s)}});
        shards_.push_back(std::move(shard));
    }
    startEpochSealer();
}

KvService::~KvService()
{
    stopEpochSealer();
}

bool
KvService::groupCommitEnabled() const
{
    return config_.runtimeOptions.groupCommit &&
           shards_.front()->runtime &&
           shards_.front()->runtime->groupCommitSupported();
}

std::uint64_t
KvService::sealShardEpoch(unsigned shard_index)
{
    const std::uint64_t sealed =
        shards_.at(shard_index)->runtime->sealEpoch();
    publishSealLag(shard_index);
    return sealed;
}

std::uint64_t
KvService::shardSealedEpoch(unsigned shard_index) const
{
    return shards_.at(shard_index)->runtime->lastSealedEpoch();
}

void
KvService::sealAllEpochs()
{
    for (unsigned s = 0; s < shards_.size(); ++s) {
        if (shards_[s]->runtime) {
            shards_[s]->runtime->sealEpoch();
            publishSealLag(s);
        }
    }
}

std::uint64_t
KvService::shardEpochLag(unsigned shard_index) const
{
    const Shard &shard = *shards_.at(shard_index);
    if (!shard.runtime)
        return 0;
    const std::uint64_t issued =
        shard.lastRelaxedTicket.load(std::memory_order_relaxed);
    const std::uint64_t sealed = shard.runtime->lastSealedEpoch();
    return issued > sealed ? issued - sealed : 0;
}

void
KvService::noteTicket(unsigned shard_index, Shard &shard,
                      std::uint64_t ticket)
{
    if (ticket == 0)
        return;
    // Monotone max: tickets are per-shard increasing, but batches on
    // different client threads can race the store.
    std::uint64_t seen =
        shard.lastRelaxedTicket.load(std::memory_order_relaxed);
    while (seen < ticket &&
           !shard.lastRelaxedTicket.compare_exchange_weak(
               seen, ticket, std::memory_order_relaxed)) {
    }
    publishSealLag(shard_index);
}

void
KvService::publishSealLag(unsigned shard_index) const
{
    const Shard &shard = *shards_[shard_index];
    if (shard.sealLagGauge != nullptr)
        shard.sealLagGauge->set(
            static_cast<std::int64_t>(shardEpochLag(shard_index)));
}

void
KvService::noteRelaxedMutation(unsigned shard_index, Shard &shard)
{
    const std::uint64_t n =
        shard.relaxedSinceSeal.fetch_add(1, std::memory_order_relaxed)
        + 1;
    if (config_.epochMaxOps != 0 && n >= config_.epochMaxOps) {
        shard.relaxedSinceSeal.store(0, std::memory_order_relaxed);
        sealShardEpoch(shard_index);
    }
}

void
KvService::startEpochSealer()
{
    if (config_.epochSealIntervalUs == 0 || !groupCommitEnabled())
        return;
    {
        std::lock_guard<std::mutex> guard(sealerMutex_);
        stopSealer_ = false;
    }
    sealer_ = std::thread([this] {
        std::unique_lock<std::mutex> lock(sealerMutex_);
        while (!stopSealer_) {
            sealerCv_.wait_for(lock,
                               std::chrono::microseconds(
                                   config_.epochSealIntervalUs));
            if (stopSealer_)
                break;
            lock.unlock();
            sealAllEpochs();
            lock.lock();
        }
    });
}

void
KvService::stopEpochSealer()
{
    if (!sealer_.joinable())
        return;
    {
        std::lock_guard<std::mutex> guard(sealerMutex_);
        stopSealer_ = true;
    }
    sealerCv_.notify_all();
    sealer_.join();
}

unsigned
shardOfKey(KvKey key, unsigned shards)
{
    return static_cast<unsigned>(mix64(key + 0x5AD0) % shards);
}

unsigned
KvService::shardOf(KvKey key) const
{
    return shardOfKey(key, config_.shards);
}

PmOff
KvService::lockAddr(KvKey key)
{
    // One pseudo cache line per key; the lock table stripes by line.
    return key * kCacheLineSize;
}

std::optional<KvValue>
KvService::get(ThreadId tid, KvKey key)
{
    Shard &shard = *shards_[shardOf(key)];
    KvMetrics::get().gets.add();
    return shard.map->get(tid, key);
}

bool
KvService::put(ThreadId tid, KvKey key, const KvValue &value,
               Durability durability, std::uint64_t *epoch_ticket)
{
    const unsigned shard_index = shardOf(key);
    Shard &shard = *shards_[shard_index];
    const bool relaxed = durability == Durability::Relaxed &&
                         shard.runtime->groupCommitSupported();
    auto commit = [&]() -> std::uint64_t {
        if (relaxed)
            return shard.runtime->txCommitRelaxed(tid);
        shard.runtime->txCommit(tid);
        return 0;
    };
    auto guard = shard.locks->lockAll({lockAddr(key)});
    bool ok;
    std::uint64_t ticket = 0;
    if (shard.map->get(tid, key)) {
        // Pure update: only this stripe's holders write this bucket.
        shard.runtime->txBegin(tid);
        ok = shard.map->putInTx(tid, key, value);
        ticket = commit();
    } else {
        // Insert: claims a bucket somewhere in the probe chain, which
        // may cross stripes — serialize against other claimers.
        std::lock_guard<std::mutex> structure(shard.structureLock);
        shard.runtime->txBegin(tid);
        ok = shard.map->putInTx(tid, key, value);
        ticket = commit();
    }
    if (epoch_ticket)
        *epoch_ticket = ticket;
    noteTicket(shard_index, shard, ticket);
    if (ok)
        shard.committedTxs.fetch_add(1, std::memory_order_relaxed);
    if (relaxed)
        noteRelaxedMutation(shard_index, shard);
    KvMetrics::get().puts.add();
    if (!ok)
        KvMetrics::get().putFailures.add();
    return ok;
}

bool
KvService::erase(ThreadId tid, KvKey key)
{
    Shard &shard = *shards_[shardOf(key)];
    auto guard = shard.locks->lockAll({lockAddr(key)});
    shard.runtime->txBegin(tid);
    const bool erased = shard.map->eraseInTx(tid, key);
    shard.runtime->txCommit(tid);
    if (erased) {
        shard.committedTxs.fetch_add(1, std::memory_order_relaxed);
        KvMetrics::get().erases.add();
    }
    return erased;
}

bool
KvService::putBatchLocked(Shard &shard, ThreadId tid,
                          const std::vector<std::pair<KvKey, KvValue>>
                              &items)
{
    shard.runtime->txBegin(tid);
    bool all_ok = true;
    for (const auto &[key, value] : items)
        all_ok = shard.map->putInTx(tid, key, value) && all_ok;
    shard.runtime->txCommit(tid);
    shard.committedTxs.fetch_add(1, std::memory_order_relaxed);
    return all_ok;
}

bool
KvService::multiPut(ThreadId tid,
                    const std::vector<std::pair<KvKey, KvValue>>
                        &items)
{
    // Ascending shard order; commit each shard's part before moving
    // on, holding locks only within the shard being written.
    std::map<unsigned, std::vector<std::pair<KvKey, KvValue>>>
        by_shard;
    for (const auto &item : items)
        by_shard[shardOf(item.first)].push_back(item);

    KvMetrics::get().multiPuts.add();
    bool all_ok = true;
    for (auto &[index, shard_items] : by_shard) {
        Shard &shard = *shards_[index];
        std::vector<PmOff> addrs;
        addrs.reserve(shard_items.size());
        for (const auto &[key, value] : shard_items)
            addrs.push_back(lockAddr(key));
        auto guard = shard.locks->lockAll(std::move(addrs));
        // The batch may insert, so always take the structure lock
        // (stripes first, then structure — same order as put()).
        std::lock_guard<std::mutex> structure(shard.structureLock);
        all_ok = putBatchLocked(shard, tid, shard_items) && all_ok;
    }
    return all_ok;
}

void
KvService::noteMediaAbort(unsigned shard_index, Shard &shard,
                          ThreadId tid, std::uint64_t fault_off,
                          std::uint64_t fault_kind, bool in_tx)
{
    // Everything here runs with media faults suppressed: the rollback
    // recovering from a MediaError must not itself be interrupted by
    // one, and the flight append stores to the same device.
    pmem::MediaFaultSuppress suppress_media_faults;
    if (in_tx)
        shard.runtime->txAbort(tid);
    shard.mediaAborts.fetch_add(1, std::memory_order_relaxed);
    KvMetrics::get().mediaAborts.add();
    shard.flight.record(forensic::EventType::MediaFault, tid, 0,
                        fault_off, fault_kind);
    SPECPMT_INFORM("kv: shard %u aborted a transaction on a media "
                "fault (off=%llu kind=%llu)",
                shard_index,
                static_cast<unsigned long long>(fault_off),
                static_cast<unsigned long long>(fault_kind));
}

void
KvService::enterReadOnly(unsigned shard_index, Shard &shard,
                         ThreadId tid, std::uint64_t bytes_needed)
{
    bool was = false;
    if (!shard.readOnly.compare_exchange_strong(
            was, true, std::memory_order_acq_rel))
        return; // already degraded
    KvMetrics::get().degradedEnters.add();
    {
        pmem::MediaFaultSuppress suppress_media_faults;
        shard.flight.record(forensic::EventType::DegradedEnter, tid,
                            0, bytes_needed);
    }
    SPECPMT_INFORM("kv: shard %u entered read-only degraded mode "
                "(allocation of %llu bytes failed)",
                shard_index,
                static_cast<unsigned long long>(bytes_needed));
}

bool
KvService::shardReadOnly(unsigned shard_index) const
{
    return shards_.at(shard_index)
        ->readOnly.load(std::memory_order_acquire);
}

void
KvService::setShardReadOnly(unsigned shard_index, bool read_only)
{
    Shard &shard = *shards_.at(shard_index);
    if (read_only)
        enterReadOnly(shard_index, shard, 0, 0);
    else
        shard.readOnly.store(false, std::memory_order_release);
}

bool
KvService::shardDegraded(unsigned shard_index) const
{
    const Shard &shard = *shards_.at(shard_index);
    return shard.readOnly.load(std::memory_order_acquire) ||
           shard.mediaAborts.load(std::memory_order_relaxed) != 0 ||
           shardQuarantined(shard_index) != 0;
}

std::uint64_t
KvService::shardQuarantined(unsigned shard_index) const
{
    const Shard &shard = *shards_.at(shard_index);
    return shard.runtime ? shard.runtime->quarantinedSegments() : 0;
}

std::uint64_t
KvService::shardMediaAborts(unsigned shard_index) const
{
    return shards_.at(shard_index)
        ->mediaAborts.load(std::memory_order_relaxed);
}

BatchStatus
KvService::executeShardBatch(ThreadId tid, unsigned shard_index,
                             const std::vector<BatchOp> &ops,
                             std::vector<BatchOpResult> &results,
                             Durability durability,
                             std::uint64_t *epoch_ticket)
{
    if (epoch_ticket)
        *epoch_ticket = 0;
    results.clear();
    results.resize(ops.size());
    if (shard_index >= config_.shards)
        return BatchStatus::BadRoute;
    bool any_mutation = false;
    bool any_put = false;
    std::vector<PmOff> addrs;
    for (const auto &op : ops) {
        if (shardOf(op.key) != shard_index)
            return BatchStatus::BadRoute;
        if (op.kind != BatchOp::Kind::Get) {
            addrs.push_back(lockAddr(op.key));
            any_mutation = true;
            any_put |= op.kind == BatchOp::Kind::Put;
        }
    }
    Shard &shard = *shards_[shard_index];
    auto &metrics = KvMetrics::get();

    const bool read_only =
        shard.readOnly.load(std::memory_order_acquire);
    if (!any_mutation || read_only) {
        // No transaction: lock-free probes serve the reads; in
        // degraded read-only mode the mutations are refused
        // individually (nothing is staged) so reads stay alive.
        try {
            for (std::size_t i = 0; i < ops.size(); ++i) {
                if (ops[i].kind != BatchOp::Kind::Get) {
                    results[i].ok = false;
                    results[i].rejectedReadOnly = true;
                    metrics.readOnlyRejects.add();
                    continue;
                }
                const auto value = shard.map->get(tid, ops[i].key);
                results[i].ok = value.has_value();
                if (value)
                    results[i].value = *value;
                metrics.gets.add();
            }
        } catch (const pmem::MediaError &err) {
            noteMediaAbort(shard_index, shard, tid,
                           err.offset(),
                           static_cast<std::uint64_t>(err.kind()),
                           /*in_tx=*/false);
            return BatchStatus::Io;
        }
        return BatchStatus::Ok;
    }

    // Same lock order as put()/multiPut(): stripes, then (only when a
    // bucket claim is possible) the shard structure lock.
    auto guard = shard.locks->lockAll(std::move(addrs));
    std::unique_lock<std::mutex> structure(shard.structureLock,
                                           std::defer_lock);
    if (any_put)
        structure.lock();
    try {
        shard.runtime->txBegin(tid);
        for (std::size_t i = 0; i < ops.size(); ++i) {
            const BatchOp &op = ops[i];
            switch (op.kind) {
              case BatchOp::Kind::Get: {
                // In-order inside the open tx: sees this batch's
                // earlier uncommitted puts (read-your-writes).
                const auto value = shard.map->get(tid, op.key);
                results[i].ok = value.has_value();
                if (value)
                    results[i].value = *value;
                metrics.gets.add();
                break;
              }
              case BatchOp::Kind::Put:
                results[i].ok =
                    shard.map->putInTx(tid, op.key, op.value);
                metrics.puts.add();
                if (!results[i].ok)
                    metrics.putFailures.add();
                break;
              case BatchOp::Kind::Erase:
                results[i].ok = shard.map->eraseInTx(tid, op.key);
                if (results[i].ok)
                    metrics.erases.add();
                break;
            }
        }
        if (durability == Durability::Relaxed &&
            shard.runtime->groupCommitSupported()) {
            const std::uint64_t ticket =
                shard.runtime->txCommitRelaxed(tid);
            if (epoch_ticket)
                *epoch_ticket = ticket;
            noteTicket(shard_index, shard, ticket);
        } else {
            shard.runtime->txCommit(tid);
        }
    } catch (const pmem::MediaError &err) {
        // Abort cleanly: pre-images restore the in-place data, the
        // staged log segments are dropped, nothing of the run
        // survives. The caller may retry (fresh log blocks usually
        // avoid the bad lines).
        noteMediaAbort(shard_index, shard, tid, err.offset(),
                       static_cast<std::uint64_t>(err.kind()),
                       /*in_tx=*/true);
        return BatchStatus::Io;
    } catch (const pmem::PoolExhausted &err) {
        // Log space is gone: abort the run and flip the shard into
        // read-only degraded mode instead of dying. Reads keep
        // working; mutations are refused until an operator clears it.
        {
            pmem::MediaFaultSuppress suppress_media_faults;
            shard.runtime->txAbort(tid);
        }
        enterReadOnly(shard_index, shard, tid, err.need());
        return BatchStatus::ReadOnly;
    }
    shard.committedTxs.fetch_add(1, std::memory_order_relaxed);
    return BatchStatus::Ok;
}

void
KvService::crash(const pmem::CrashPolicy &policy)
{
    // The sealer thread dies with the simulated process.
    stopEpochSealer();
    // Disarm any pending countdowns first so teardown device traffic
    // cannot trip a second simulated failure.
    for (auto &shard : shards_)
        shard->device->armCrash(-1);
    for (auto &shard : shards_) {
        shard->map.reset();
        shard->runtime.reset(); // the old process is gone
        shard->device->simulateCrash(policy);
        shard->pool->reopenAfterCrash();
    }
    KvMetrics::get().crashes.add();
}

void
KvService::recover()
{
    SPECPMT_TRACE_SPAN("kv_recover", "recovery");
    const auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> workers;
    workers.reserve(shards_.size());
    for (auto &shard_ptr : shards_) {
        workers.emplace_back([this, &shard_ptr] {
            SPECPMT_TRACE_SPAN("kv_recover_shard", "recovery");
            const auto shard_start = std::chrono::steady_clock::now();
            Shard &shard = *shard_ptr;
            shard.runtime = txn::makeRuntime(config_.runtime,
                                             *shard.pool,
                                             config_.threads,
                                             config_.runtimeOptions);
            shard.runtime->recover();
            const PmOff base =
                shard.pool->getRoot(txn::kAppRootSlotBase);
            SPECPMT_ASSERT(base != kPmNull);
            shard.map.emplace(Map::attach(*shard.runtime, base));
            shard.flight =
                forensic::FlightRecorder::attach(*shard.pool);
            // Recovery re-initializes the log areas, so a shard that
            // degraded on log exhaustion serves mutations again.
            shard.readOnly.store(false, std::memory_order_release);
            KvMetrics::get().shardRecoveryNs.record(
                static_cast<std::uint64_t>(
                    std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - shard_start)
                        .count()));
        });
    }
    for (auto &worker : workers)
        worker.join();
    startEpochSealer();
    KvMetrics::get().recoveries.add();
    KvMetrics::get().lastRecoveryNs.set(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
}

void
KvService::shutdown()
{
    stopEpochSealer();
    for (auto &shard : shards_) {
        shard->runtime->shutdown();
        // Registry totals catch up with the shard's device traffic
        // here, so artifacts written right after shutdown() see it
        // even while the service object is still alive.
        shard->device->publishMetrics();
    }
}

std::shared_ptr<pmem::CrashCountdown>
KvService::armCrashAll(long ops)
{
    if (ops < 0) {
        for (auto &shard : shards_)
            shard->device->armCrash(-1);
        return nullptr;
    }
    auto countdown = std::make_shared<pmem::CrashCountdown>();
    countdown->remaining.store(ops, std::memory_order_relaxed);
    for (auto &shard : shards_)
        shard->device->armCrash(countdown);
    return countdown;
}

ShardSnapshot
KvService::shardSnapshot(unsigned shard_index) const
{
    const Shard &shard = *shards_.at(shard_index);
    ShardSnapshot snapshot;
    snapshot.device = shard.device->stats();
    snapshot.pmLineWrites = shard.device->timing().pmLineWrites();
    snapshot.simNs = shard.device->timing().now();
    snapshot.committedTxs =
        shard.committedTxs.load(std::memory_order_relaxed);
    return snapshot;
}

void
KvService::clearStats()
{
    for (auto &shard : shards_) {
        shard->device->clearStats();
        shard->device->timing().reset();
        shard->committedTxs.store(0, std::memory_order_relaxed);
    }
}

pmem::PmemDevice &
KvService::shardDevice(unsigned shard)
{
    return *shards_.at(shard)->device;
}

const pmem::PmemDevice &
KvService::shardDevice(unsigned shard) const
{
    return *shards_.at(shard)->device;
}

txn::TxRuntime &
KvService::shardRuntime(unsigned shard)
{
    return *shards_.at(shard)->runtime;
}

} // namespace specpmt::kv
