#include "kv/workload_spec.hh"

#include <algorithm>
#include <cmath>

#include "common/hash.hh"
#include "common/logging.hh"

namespace specpmt::kv
{

namespace
{

double
zeta(std::uint64_t n, double theta)
{
    double sum = 0.0;
    for (std::uint64_t i = 1; i <= n; ++i)
        sum += 1.0 / std::pow(static_cast<double>(i), theta);
    return sum;
}

} // namespace

const char *
mixName(Mix mix)
{
    switch (mix) {
      case Mix::A:
        return "A";
      case Mix::B:
        return "B";
      case Mix::C:
        return "C";
    }
    return "?";
}

double
mixUpdateFraction(Mix mix)
{
    switch (mix) {
      case Mix::A:
        return 0.5;
      case Mix::B:
        return 0.05;
      case Mix::C:
        return 0.0;
    }
    return 0.0;
}

const char *
keyDistName(KeyDist dist)
{
    switch (dist) {
      case KeyDist::Uniform:
        return "uniform";
      case KeyDist::Zipfian:
        return "zipfian";
    }
    return "?";
}

ZipfianGenerator::ZipfianGenerator(std::uint64_t n, double theta)
    : n_(n), theta_(theta), zetan_(zeta(n, theta)),
      alpha_(1.0 / (1.0 - theta)),
      eta_((1.0 - std::pow(2.0 / static_cast<double>(n),
                           1.0 - theta)) /
           (1.0 - zeta(2, theta) / zetan_))
{
    SPECPMT_ASSERT(n >= 2);
    SPECPMT_ASSERT(theta > 0.0 && theta < 1.0);
}

std::uint64_t
ZipfianGenerator::next(Rng &rng) const
{
    const double u = rng.uniform();
    const double uz = u * zetan_;
    if (uz < 1.0)
        return 0;
    if (uz < 1.0 + std::pow(0.5, theta_))
        return 1;
    const auto rank = static_cast<std::uint64_t>(
        static_cast<double>(n_) *
        std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return std::min(rank, n_ - 1);
}

std::uint64_t
rankToKey(std::uint64_t rank, std::uint64_t keys)
{
    return 1 + mix64(rank + 1) % keys;
}

OpGenerator::OpGenerator(const WorkloadSpec &spec,
                         const ZipfianGenerator *zipf,
                         std::uint64_t seed)
    : spec_(spec), zipf_(zipf),
      updateFraction_(mixUpdateFraction(spec.mix)), rng_(seed)
{
    SPECPMT_ASSERT(spec_.keys >= 1);
    if (spec_.dist == KeyDist::Zipfian)
        SPECPMT_ASSERT(zipf_ != nullptr);
}

WorkloadOp
OpGenerator::next()
{
    // Draw order is load-bearing: rank, update?, [multiPut?, batch
    // payloads] — exactly the sequence the closed-loop driver used
    // inline, so existing seeds keep reproducing the same runs.
    WorkloadOp op;
    const std::uint64_t rank = spec_.dist == KeyDist::Zipfian
        ? zipf_->next(rng_)
        : rng_.below(spec_.keys);
    op.key = rankToKey(rank, spec_.keys);
    const bool update = rng_.uniform() < updateFraction_;
    if (!update) {
        op.kind = WorkloadOp::Kind::Get;
    } else if (spec_.multiPutFraction > 0.0 &&
               rng_.uniform() < spec_.multiPutFraction) {
        op.kind = WorkloadOp::Kind::MultiPut;
        op.batch.reserve(spec_.multiPutBatch);
        op.batch.emplace_back(op.key,
                              KvValue::tagged(op.key, rng_.next()));
        for (unsigned b = 1; b < spec_.multiPutBatch; ++b) {
            const KvKey extra =
                rankToKey(rng_.below(spec_.keys), spec_.keys);
            op.batch.emplace_back(
                extra, KvValue::tagged(extra, rng_.next()));
        }
    } else {
        op.kind = WorkloadOp::Kind::Put;
        op.value = KvValue::tagged(op.key, rng_.next());
    }
    return op;
}

} // namespace specpmt::kv
