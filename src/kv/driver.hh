/**
 * @file
 * Closed-loop multi-threaded load driver for the KV service.
 *
 * Implements the YCSB core-workload shapes the PM-transaction papers
 * evaluate with (A: 50/50 read/update, B: 95/5, C: read-only) over
 * uniform or zipfian key popularity, with per-operation wall-clock
 * latency recorded into thread-local LatencyHistograms (merged after
 * the run) and per-shard PM traffic pulled from the emulated devices.
 * Throughput is reported on both clocks: real wall time of the
 * emulation, and the shards' virtual ADR clocks (max over shards =
 * the simulated makespan, the number the paper's figures correspond
 * to).
 */

#ifndef SPECPMT_KV_DRIVER_HH
#define SPECPMT_KV_DRIVER_HH

#include <cstdint>
#include <vector>

#include "common/rand.hh"
#include "common/stats.hh"
#include "kv/kv_service.hh"
#include "kv/workload_spec.hh"

namespace specpmt::kv
{

/** Driver parameters. */
struct DriverConfig
{
    unsigned threads = 4;
    /** Keyspace: keys 1..keys are loaded before the run. */
    std::uint64_t keys = 1u << 14;
    std::uint64_t opsPerThread = 10000;
    Mix mix = Mix::A;
    KeyDist dist = KeyDist::Zipfian;
    double zipfTheta = 0.99;
    std::uint64_t seed = 1;
    /** Issue this fraction of updates as multiPut batches (0 = off). */
    double multiPutFraction = 0.0;
    /** Keys per multiPut batch. */
    unsigned multiPutBatch = 4;
    /**
     * Arm a simulated power failure after this many persistence ops
     * from worker 0 on every shard device (<0 = none). On failure the
     * run stops and DriverResult::crashed is set.
     */
    long armCrashAfter = -1;
    /**
     * Issue puts with Durability::Relaxed (epoch group commit): the
     * service auto-seals every KvServiceConfig::epochMaxOps relaxed
     * mutations, and the driver seals all shards once at the end of
     * the run so the reported traffic covers full durability. No-op
     * on runtimes without group-commit support.
     */
    bool relaxedPuts = false;
};

/** Aggregated outcome of one closed-loop run. */
struct DriverResult
{
    std::uint64_t reads = 0;
    std::uint64_t updates = 0;
    std::uint64_t multiPuts = 0; ///< batches (each counts 1 op)
    std::uint64_t failed = 0;
    bool crashed = false;
    double wallSeconds = 0.0;
    /** Wall-clock throughput of the emulation, ops/second. */
    double throughputOps = 0.0;
    /** Simulated makespan: max over shards of the virtual clock. */
    SimNs simNs = 0;
    /** Throughput on the virtual ADR clock, ops/second. */
    double simThroughputOps = 0.0;
    /** Per-op wall-clock latency, nanoseconds. */
    LatencyHistogram readLatency;
    LatencyHistogram updateLatency;
    /** Per-shard accounting over the run phase. */
    std::vector<ShardSnapshot> shards;

    std::uint64_t
    totalOps() const
    {
        return reads + updates + multiPuts;
    }
};

/** The workload shape of @p config (the part OpGenerator consumes). */
WorkloadSpec workloadSpec(const DriverConfig &config);

/** Insert keys 1..config.keys via multiPut batches (load phase). */
void loadKeyspace(KvService &service, const DriverConfig &config);

/**
 * Run the closed loop: config.threads workers, each issuing
 * config.opsPerThread operations against @p service. Shard stats are
 * zeroed at the start so the result reflects the run phase only.
 */
DriverResult runClosedLoop(KvService &service,
                           const DriverConfig &config);

} // namespace specpmt::kv

#endif // SPECPMT_KV_DRIVER_HH
