#include "kv/driver.hh"

#include <atomic>
#include <chrono>
#include <cmath>
#include <thread>

#include "common/hash.hh"
#include "common/logging.hh"
#include "obs/metrics.hh"

namespace specpmt::kv
{

namespace
{

double
zeta(std::uint64_t n, double theta)
{
    double sum = 0.0;
    for (std::uint64_t i = 1; i <= n; ++i)
        sum += 1.0 / std::pow(static_cast<double>(i), theta);
    return sum;
}

std::uint64_t
nowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace

const char *
mixName(Mix mix)
{
    switch (mix) {
      case Mix::A:
        return "A";
      case Mix::B:
        return "B";
      case Mix::C:
        return "C";
    }
    return "?";
}

const char *
keyDistName(KeyDist dist)
{
    switch (dist) {
      case KeyDist::Uniform:
        return "uniform";
      case KeyDist::Zipfian:
        return "zipfian";
    }
    return "?";
}

ZipfianGenerator::ZipfianGenerator(std::uint64_t n, double theta)
    : n_(n), theta_(theta), zetan_(zeta(n, theta)),
      alpha_(1.0 / (1.0 - theta)),
      eta_((1.0 - std::pow(2.0 / static_cast<double>(n),
                           1.0 - theta)) /
           (1.0 - zeta(2, theta) / zetan_))
{
    SPECPMT_ASSERT(n >= 2);
    SPECPMT_ASSERT(theta > 0.0 && theta < 1.0);
}

std::uint64_t
ZipfianGenerator::next(Rng &rng) const
{
    const double u = rng.uniform();
    const double uz = u * zetan_;
    if (uz < 1.0)
        return 0;
    if (uz < 1.0 + std::pow(0.5, theta_))
        return 1;
    const auto rank = static_cast<std::uint64_t>(
        static_cast<double>(n_) *
        std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return std::min(rank, n_ - 1);
}

std::uint64_t
rankToKey(std::uint64_t rank, std::uint64_t keys)
{
    return 1 + mix64(rank + 1) % keys;
}

void
loadKeyspace(KvService &service, const DriverConfig &config)
{
    constexpr unsigned kLoadBatch = 64;
    std::vector<std::pair<KvKey, KvValue>> batch;
    batch.reserve(kLoadBatch);
    for (std::uint64_t key = 1; key <= config.keys; ++key) {
        batch.emplace_back(key, KvValue::tagged(key, 0));
        if (batch.size() == kLoadBatch || key == config.keys) {
            const bool ok = service.multiPut(0, batch);
            SPECPMT_ASSERT(ok);
            batch.clear();
        }
    }
}

DriverResult
runClosedLoop(KvService &service, const DriverConfig &config)
{
    service.clearStats();
    // timing().reset() keeps the media-write counters; remember the
    // baseline so the result reports run-phase line writes only.
    std::vector<std::uint64_t> base_line_writes;
    for (unsigned s = 0; s < service.numShards(); ++s) {
        base_line_writes.push_back(
            service.shardSnapshot(s).pmLineWrites);
    }

    const double update_fraction =
        config.mix == Mix::A ? 0.5 : config.mix == Mix::B ? 0.05 : 0.0;
    // Zipf construction is O(keys); build once, share read-only.
    const ZipfianGenerator zipf(config.keys, config.zipfTheta);

    struct WorkerOut
    {
        std::uint64_t reads = 0;
        std::uint64_t updates = 0;
        std::uint64_t multiPuts = 0;
        std::uint64_t failed = 0;
        LatencyHistogram readLatency;
        LatencyHistogram updateLatency;
    };
    std::vector<WorkerOut> outs(config.threads);
    std::atomic<bool> stop{false};
    std::atomic<bool> crashed{false};

    const auto wall_start = std::chrono::steady_clock::now();
    std::vector<std::thread> workers;
    workers.reserve(config.threads);
    for (unsigned t = 0; t < config.threads; ++t) {
        workers.emplace_back([&, t] {
            WorkerOut &out = outs[t];
            Rng rng(config.seed * 0x9E3779B9u + t);
            if (t == 0 && config.armCrashAfter >= 0)
                service.armCrashAll(config.armCrashAfter);
            try {
                for (std::uint64_t i = 0;
                     i < config.opsPerThread &&
                     !stop.load(std::memory_order_relaxed);
                     ++i) {
                    const std::uint64_t rank =
                        config.dist == KeyDist::Zipfian
                            ? zipf.next(rng)
                            : rng.below(config.keys);
                    const KvKey key = rankToKey(rank, config.keys);
                    const bool update =
                        rng.uniform() < update_fraction;
                    const std::uint64_t begin = nowNs();
                    if (!update) {
                        const auto value = service.get(t, key);
                        out.readLatency.record(nowNs() - begin);
                        if (!value || !value->checkTag(key))
                            ++out.failed;
                        ++out.reads;
                    } else if (config.multiPutFraction > 0.0 &&
                               rng.uniform() <
                                   config.multiPutFraction) {
                        std::vector<std::pair<KvKey, KvValue>> batch;
                        batch.reserve(config.multiPutBatch);
                        batch.emplace_back(
                            key, KvValue::tagged(key, rng.next()));
                        for (unsigned b = 1;
                             b < config.multiPutBatch; ++b) {
                            const KvKey extra = rankToKey(
                                rng.below(config.keys), config.keys);
                            batch.emplace_back(
                                extra,
                                KvValue::tagged(extra, rng.next()));
                        }
                        if (!service.multiPut(t, batch))
                            ++out.failed;
                        out.updateLatency.record(nowNs() - begin);
                        ++out.multiPuts;
                    } else {
                        const auto value =
                            KvValue::tagged(key, rng.next());
                        if (!service.put(t, key, value))
                            ++out.failed;
                        out.updateLatency.record(nowNs() - begin);
                        ++out.updates;
                    }
                }
            } catch (const pmem::SimulatedCrash &) {
                crashed.store(true);
                stop.store(true);
            }
        });
    }
    for (auto &worker : workers)
        worker.join();
    const auto wall_end = std::chrono::steady_clock::now();

    DriverResult result;
    for (const auto &out : outs) {
        result.reads += out.reads;
        result.updates += out.updates;
        result.multiPuts += out.multiPuts;
        result.failed += out.failed;
        result.readLatency.merge(out.readLatency);
        result.updateLatency.merge(out.updateLatency);
    }
    // Publish the run's latency distributions into the shared registry
    // (bulk merge of the already-aggregated histograms: the per-op
    // fast path stays registry-free).
    obs::Registry::global()
        .histogram("specpmt_kv_read_latency_ns",
                   "closed-loop driver read latency")
        .mergeFrom(result.readLatency);
    obs::Registry::global()
        .histogram("specpmt_kv_update_latency_ns",
                   "closed-loop driver update latency")
        .mergeFrom(result.updateLatency);
    result.crashed = crashed.load();
    result.wallSeconds =
        std::chrono::duration<double>(wall_end - wall_start).count();
    if (result.wallSeconds > 0.0) {
        result.throughputOps =
            static_cast<double>(result.totalOps()) /
            result.wallSeconds;
    }
    for (unsigned s = 0; s < service.numShards(); ++s) {
        result.shards.push_back(service.shardSnapshot(s));
        result.shards.back().pmLineWrites -= base_line_writes[s];
        result.simNs = std::max(result.simNs, result.shards.back().simNs);
    }
    if (result.simNs > 0) {
        result.simThroughputOps =
            static_cast<double>(result.totalOps()) * 1e9 /
            static_cast<double>(result.simNs);
    }
    return result;
}

} // namespace specpmt::kv
