#include "kv/driver.hh"

#include <atomic>
#include <chrono>
#include <thread>

#include "common/logging.hh"
#include "obs/metrics.hh"

namespace specpmt::kv
{

namespace
{

std::uint64_t
nowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace

WorkloadSpec
workloadSpec(const DriverConfig &config)
{
    WorkloadSpec spec;
    spec.keys = config.keys;
    spec.mix = config.mix;
    spec.dist = config.dist;
    spec.zipfTheta = config.zipfTheta;
    spec.multiPutFraction = config.multiPutFraction;
    spec.multiPutBatch = config.multiPutBatch;
    return spec;
}

void
loadKeyspace(KvService &service, const DriverConfig &config)
{
    constexpr unsigned kLoadBatch = 64;
    std::vector<std::pair<KvKey, KvValue>> batch;
    batch.reserve(kLoadBatch);
    for (std::uint64_t key = 1; key <= config.keys; ++key) {
        batch.emplace_back(key, KvValue::tagged(key, 0));
        if (batch.size() == kLoadBatch || key == config.keys) {
            const bool ok = service.multiPut(0, batch);
            SPECPMT_ASSERT(ok);
            batch.clear();
        }
    }
}

DriverResult
runClosedLoop(KvService &service, const DriverConfig &config)
{
    service.clearStats();
    // timing().reset() keeps the media-write counters; remember the
    // baseline so the result reports run-phase line writes only.
    std::vector<std::uint64_t> base_line_writes;
    for (unsigned s = 0; s < service.numShards(); ++s) {
        base_line_writes.push_back(
            service.shardSnapshot(s).pmLineWrites);
    }

    const WorkloadSpec spec = workloadSpec(config);
    // Zipf construction is O(keys); build once, share read-only.
    const ZipfianGenerator zipf(config.keys, config.zipfTheta);
    const ZipfianGenerator *zipf_ptr =
        spec.dist == KeyDist::Zipfian ? &zipf : nullptr;

    struct WorkerOut
    {
        std::uint64_t reads = 0;
        std::uint64_t updates = 0;
        std::uint64_t multiPuts = 0;
        std::uint64_t failed = 0;
        LatencyHistogram readLatency;
        LatencyHistogram updateLatency;
    };
    std::vector<WorkerOut> outs(config.threads);
    std::atomic<bool> stop{false};
    std::atomic<bool> crashed{false};

    const auto wall_start = std::chrono::steady_clock::now();
    std::vector<std::thread> workers;
    workers.reserve(config.threads);
    for (unsigned t = 0; t < config.threads; ++t) {
        workers.emplace_back([&, t] {
            WorkerOut &out = outs[t];
            OpGenerator gen(spec, zipf_ptr,
                            OpGenerator::workerSeed(config.seed, t));
            if (t == 0 && config.armCrashAfter >= 0)
                service.armCrashAll(config.armCrashAfter);
            try {
                for (std::uint64_t i = 0;
                     i < config.opsPerThread &&
                     !stop.load(std::memory_order_relaxed);
                     ++i) {
                    const WorkloadOp op = gen.next();
                    const std::uint64_t begin = nowNs();
                    switch (op.kind) {
                      case WorkloadOp::Kind::Get: {
                        const auto value = service.get(t, op.key);
                        out.readLatency.record(nowNs() - begin);
                        if (!value || !value->checkTag(op.key))
                            ++out.failed;
                        ++out.reads;
                        break;
                      }
                      case WorkloadOp::Kind::MultiPut: {
                        if (!service.multiPut(t, op.batch))
                            ++out.failed;
                        out.updateLatency.record(nowNs() - begin);
                        ++out.multiPuts;
                        break;
                      }
                      case WorkloadOp::Kind::Put: {
                        const Durability durability =
                            config.relaxedPuts ? Durability::Relaxed
                                               : Durability::Strict;
                        if (!service.put(t, op.key, op.value,
                                         durability))
                            ++out.failed;
                        out.updateLatency.record(nowNs() - begin);
                        ++out.updates;
                        break;
                      }
                    }
                }
            } catch (const pmem::SimulatedCrash &) {
                crashed.store(true);
                stop.store(true);
            }
        });
    }
    for (auto &worker : workers)
        worker.join();
    // Final seal: the run only counts as complete once every relaxed
    // commit is durable, so the closing fences are part of the run's
    // reported traffic.
    if (config.relaxedPuts && !crashed.load())
        service.sealAllEpochs();
    const auto wall_end = std::chrono::steady_clock::now();

    DriverResult result;
    for (const auto &out : outs) {
        result.reads += out.reads;
        result.updates += out.updates;
        result.multiPuts += out.multiPuts;
        result.failed += out.failed;
        result.readLatency.merge(out.readLatency);
        result.updateLatency.merge(out.updateLatency);
    }
    // Publish the run's latency distributions into the shared registry
    // (bulk merge of the already-aggregated histograms: the per-op
    // fast path stays registry-free).
    obs::Registry::global()
        .histogram("specpmt_kv_read_latency_ns",
                   "closed-loop driver read latency")
        .mergeFrom(result.readLatency);
    obs::Registry::global()
        .histogram("specpmt_kv_update_latency_ns",
                   "closed-loop driver update latency")
        .mergeFrom(result.updateLatency);
    result.crashed = crashed.load();
    result.wallSeconds =
        std::chrono::duration<double>(wall_end - wall_start).count();
    if (result.wallSeconds > 0.0) {
        result.throughputOps =
            static_cast<double>(result.totalOps()) /
            result.wallSeconds;
    }
    for (unsigned s = 0; s < service.numShards(); ++s) {
        result.shards.push_back(service.shardSnapshot(s));
        result.shards.back().pmLineWrites -= base_line_writes[s];
        result.simNs = std::max(result.simNs, result.shards.back().simNs);
    }
    if (result.simNs > 0) {
        result.simThroughputOps =
            static_cast<double>(result.totalOps()) * 1e9 /
            static_cast<double>(result.simNs);
    }
    return result;
}

} // namespace specpmt::kv
