/**
 * @file
 * Crash-exploration adapter for the sharded KV service.
 *
 * A single-client YCSB-A-style scenario (50% reads, 40% puts, 10%
 * cross-shard multiPuts over a uniform keyspace) with a shadow of
 * every acknowledged mutation. One shared crash countdown spans all
 * shard devices, so a crash point indexes the service-global
 * persistence-event sequence; the prune key combines every shard's
 * post-crash image with the acknowledged-state shadow. Verification
 * is per-shard prefix consistency: after recovery each shard must
 * equal its acknowledged state, possibly plus the *whole* shard-local
 * part of the one in-flight transaction.
 */

#ifndef SPECPMT_KV_KV_CRASH_WORKLOAD_HH
#define SPECPMT_KV_KV_CRASH_WORKLOAD_HH

#include <memory>

#include "sim/crash_explorer.hh"

namespace specpmt::kv
{

/**
 * Build the KV crash workload for @p cell (cell.workload == "kv").
 * Throws std::runtime_error if cell.runtime is not a factory-
 * constructible recoverable scheme.
 */
std::unique_ptr<sim::CrashWorkload>
makeKvCrashWorkload(const sim::CrashCell &cell);

/**
 * Factory covering every workload the KV layer can reach: "kv" here,
 * everything else via sim::builtinCrashWorkloadFactory().
 */
sim::CrashWorkloadFactory kvCrashWorkloadFactory();

} // namespace specpmt::kv

#endif // SPECPMT_KV_KV_CRASH_WORKLOAD_HH
