#include "kv/kv_crash_workload.hh"

#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "common/hash.hh"
#include "common/rand.hh"
#include "kv/kv_service.hh"

namespace specpmt::kv
{

namespace
{

KvServiceConfig
serviceConfig(const sim::CrashCell &cell)
{
    KvServiceConfig config;
    config.shards = cell.kvShards;
    config.threads = 1;
    config.runtime = cell.runtime;
    config.bucketsPerShard = 512;
    config.shardPoolBytes = 8u << 20;
    // Deterministic crash testing: no background threads, small log
    // blocks so transactions span block boundaries.
    config.runtimeOptions.backgroundWorkers = false;
    config.runtimeOptions.specLogBlockSize = 256;
    if (cell.kvEpochOps != 0) {
        // Epoch group commit, sealed explicitly by the workload so
        // crash points land deterministically before, inside and
        // after each seal; the count-based auto-seal and background
        // sealer would race the countdown.
        config.runtimeOptions.groupCommit = true;
        config.epochMaxOps = 0;
        config.epochSealIntervalUs = 0;
    }
    return config;
}

class KvCrashWorkload final : public sim::CrashWorkload
{
  public:
    explicit KvCrashWorkload(const sim::CrashCell &cell)
        : cell_(cell), service_(serviceConfig(cell))
    {
        epoch_ =
            cell_.kvEpochOps != 0 && service_.groupCommitEnabled();
        pending_.resize(service_.numShards());
        for (KvKey key = 1; key <= cell_.kvKeys; ++key) {
            const auto value = KvValue::tagged(key, 0);
            if (!service_.put(0, key, value))
                throw std::runtime_error("kv setup put failed");
            committed_[key] = value;
        }
        if (cell_.fault == "drop-fences") {
            for (unsigned s = 0; s < service_.numShards(); ++s) {
                service_.shardDevice(s).injectFault(
                    pmem::DeviceFault::DropFences);
            }
        }
    }

    bool
    run(long crash_after) override
    {
        Rng rng(cell_.seed);
        armed_ = crash_after;
        countdown_ = service_.armCrashAll(crash_after);
        unsigned mutations = 0;
        try {
            for (unsigned i = 0; i < cell_.kvOps; ++i) {
                staged_.clear();
                const double dice = rng.uniform();
                if (dice < 0.5) {
                    const KvKey key = 1 + rng.below(cell_.kvKeys);
                    service_.get(0, key);
                } else if (dice < 0.9) {
                    const KvKey key = 1 + rng.below(cell_.kvKeys);
                    const auto value =
                        KvValue::tagged(key, rng.next() | 1);
                    staged_[key] = value;
                    if (epoch_) {
                        std::uint64_t ticket = 0;
                        if (service_.put(0, key, value,
                                         Durability::Relaxed,
                                         &ticket)) {
                            if (ticket != 0)
                                pending_[service_.shardOf(key)]
                                    .emplace_back(key, value);
                            else
                                committed_[key] = value;
                        }
                    } else if (service_.put(0, key, value)) {
                        committed_[key] = value;
                    }
                    staged_.clear();
                    ++mutations;
                } else {
                    std::vector<std::pair<KvKey, KvValue>> batch;
                    for (unsigned b = 0; b < 4; ++b) {
                        const KvKey key = 1 + rng.below(cell_.kvKeys);
                        const auto value =
                            KvValue::tagged(key, rng.next() | 1);
                        batch.emplace_back(key, value);
                        staged_[key] = value;
                    }
                    if (service_.multiPut(0, batch)) {
                        // A strict multiPut commit seals each touched
                        // shard's epoch, making that shard's earlier
                        // relaxed mutations durable too.
                        if (epoch_) {
                            for (const auto &[key, value] : batch)
                                drainPending(service_.shardOf(key));
                        }
                        for (const auto &[key, value] : batch)
                            committed_[key] = value;
                    }
                    staged_.clear();
                    ++mutations;
                }
                if (epoch_ && cell_.kvEpochOps != 0 &&
                    mutations >= cell_.kvEpochOps) {
                    mutations = 0;
                    sealAndDrainAll();
                }
            }
        } catch (const pmem::SimulatedCrash &) {
            return true;
        }
        service_.armCrashAll(-1);
        // Crash-free runs end fully sealed, so the exact-state checks
        // (and a later clean power cycle) see no unsealed tail.
        if (epoch_)
            sealAndDrainAll();
        return false;
    }

    std::uint64_t
    eventsConsumed() const override
    {
        if (!countdown_)
            return 0;
        if (countdown_->fired.load(std::memory_order_relaxed))
            return static_cast<std::uint64_t>(armed_);
        const long remaining =
            countdown_->remaining.load(std::memory_order_relaxed);
        return static_cast<std::uint64_t>(
            armed_ - (remaining < 0 ? 0 : remaining));
    }

    std::uint64_t
    pruneKey(const pmem::CrashPolicy &policy) const override
    {
        // Hash exactly what powerCycle() will materialize:
        // KvService::crash() hands every shard the same policy.
        std::uint64_t hash = 0xC4A54ull;
        for (unsigned s = 0; s < service_.numShards(); ++s) {
            hash = hashCombine(
                hash, sim::hashCrashImage(
                          service_.shardDevice(s).crashImage(policy)));
        }
        hash = hashCombine(hash, shadowHash());
        return hash;
    }

    void
    powerCycle(const pmem::CrashPolicy &policy) override
    {
        service_.crash(policy);
        service_.recover();
    }

    std::vector<sim::CrashImageExport>
    exportCrashImages(const pmem::CrashPolicy &policy) const override
    {
        std::vector<sim::CrashImageExport> out;
        for (unsigned s = 0; s < service_.numShards(); ++s) {
            sim::CrashImageExport exp;
            exp.name = "shard" + std::to_string(s);
            exp.threads = serviceConfig(cell_).threads;
            exp.image = service_.shardDevice(s).crashImage(policy);
            out.push_back(std::move(exp));
        }
        return out;
    }

    std::string
    check() override
    {
        return epoch_ ? verifyEpochPrefix() : verifyAtomicity();
    }

    std::string
    checkContinuation() override
    {
        rebaseline();
        if (run(kNoCrash))
            return "continuation: unexpected crash";
        if (auto msg = verifyExact(); !msg.empty())
            return "continuation: " + msg;
        powerCycle(pmem::CrashPolicy::nothing());
        if (auto msg = verifyExact(); !msg.empty())
            return "second crash: " + msg;
        return {};
    }

  private:
    static constexpr long kNoCrash = 1L << 40;

    /** Move a shard's sealed-pending mutations into committed_. */
    void
    drainPending(unsigned shard)
    {
        for (const auto &[key, value] : pending_[shard])
            committed_[key] = value;
        pending_[shard].clear();
    }

    /** Seal every shard's epoch; everything pending becomes acked. */
    void
    sealAndDrainAll()
    {
        service_.sealAllEpochs();
        for (unsigned s = 0; s < service_.numShards(); ++s)
            drainPending(s);
    }

    static std::optional<KvValue>
    lookup(const std::map<KvKey, KvValue> &map, KvKey key)
    {
        const auto it = map.find(key);
        return it == map.end() ? std::nullopt
                               : std::optional(it->second);
    }

    static bool
    same(const std::optional<KvValue> &a,
         const std::optional<KvValue> &b)
    {
        if (a.has_value() != b.has_value())
            return false;
        return !a || *a == *b;
    }

    /**
     * Per shard, the surviving state must be the acknowledged
     * (committed) state, possibly plus the *whole* shard-local part
     * of the one in-flight transaction. Any torn value, lost
     * acknowledged put, or partially applied shard transaction is a
     * failure.
     */
    std::string
    verifyAtomicity()
    {
        for (unsigned s = 0; s < service_.numShards(); ++s) {
            bool matches_committed = true;
            bool matches_overlay = true;
            std::string detail;
            for (KvKey key = 1; key <= cell_.kvKeys; ++key) {
                if (service_.shardOf(key) != s)
                    continue;
                const auto actual = service_.get(0, key);
                const auto committed = lookup(committed_, key);
                auto overlay = committed;
                if (auto it = staged_.find(key); it != staged_.end())
                    overlay = it->second;
                if (!same(actual, committed)) {
                    matches_committed = false;
                    detail += " key " + std::to_string(key);
                }
                if (!same(actual, overlay))
                    matches_overlay = false;
            }
            if (!matches_committed && !matches_overlay) {
                return "shard " + std::to_string(s) +
                       " holds a partial transaction:" + detail;
            }
        }
        return {};
    }

    /**
     * Epoch-mode atomic durability: per shard, the surviving state
     * must be the acked (sealed) state plus a clean *prefix* of that
     * shard's unsealed relaxed mutations in commit order — the dense
     * replay window the epoch frontier admits — optionally topped by
     * the whole in-flight transaction (which, holding the shard's
     * newest timestamp, can only survive when the full prefix did).
     * Any hole in the prefix, torn value, or lost acked mutation is a
     * failure.
     */
    std::string
    verifyEpochPrefix()
    {
        for (unsigned s = 0; s < service_.numShards(); ++s) {
            const auto &pend = pending_[s];
            bool ok = false;
            for (std::size_t p = 0; p <= pend.size() && !ok; ++p) {
                std::map<KvKey, KvValue> overlay = committed_;
                for (std::size_t i = 0; i < p; ++i)
                    overlay[pend[i].first] = pend[i].second;
                ok = shardMatches(s, overlay);
                if (!ok && p == pend.size() && !staged_.empty()) {
                    for (const auto &[key, value] : staged_)
                        overlay[key] = value;
                    ok = shardMatches(s, overlay);
                }
            }
            if (!ok) {
                return "shard " + std::to_string(s) +
                       " is not acked state plus a clean prefix of "
                       "its " +
                       std::to_string(pend.size()) +
                       " unsealed mutations";
            }
        }
        return {};
    }

    /** True if every shard-@p s key matches @p overlay exactly. */
    bool
    shardMatches(unsigned s, const std::map<KvKey, KvValue> &overlay)
    {
        for (KvKey key = 1; key <= cell_.kvKeys; ++key) {
            if (service_.shardOf(key) != s)
                continue;
            if (!same(service_.get(0, key), lookup(overlay, key)))
                return false;
        }
        return true;
    }

    /** Adopt the surviving state as the new acknowledged baseline. */
    void
    rebaseline()
    {
        committed_.clear();
        for (KvKey key = 1; key <= cell_.kvKeys; ++key) {
            if (const auto value = service_.get(0, key))
                committed_[key] = *value;
        }
        staged_.clear();
        for (auto &pend : pending_)
            pend.clear();
    }

    /** Exact-state check (crash-free phases). */
    std::string
    verifyExact()
    {
        for (KvKey key = 1; key <= cell_.kvKeys; ++key) {
            const auto actual = service_.get(0, key);
            if (!same(actual, lookup(committed_, key)))
                return "key " + std::to_string(key) + " diverges";
        }
        return {};
    }

    std::uint64_t
    shadowHash() const
    {
        std::uint64_t hash = 0x1C55ADEull;
        auto fold = [&hash](const std::map<KvKey, KvValue> &map) {
            for (const auto &[key, value] : map) {
                std::uint64_t h = key;
                for (unsigned i = 0; i < 8; ++i)
                    h = hashCombine(h, value.words[i]);
                hash = hashCombine(hash, h);
            }
        };
        fold(committed_);
        hash = hashCombine(hash, 0x57A6EDull);
        fold(staged_);
        if (epoch_) {
            for (const auto &pend : pending_) {
                hash = hashCombine(hash, 0xE90C4ull);
                for (const auto &[key, value] : pend) {
                    std::uint64_t h = key;
                    for (unsigned i = 0; i < 8; ++i)
                        h = hashCombine(h, value.words[i]);
                    hash = hashCombine(hash, h);
                }
            }
        }
        return hash;
    }

    sim::CrashCell cell_;
    KvService service_;
    bool epoch_ = false;
    std::map<KvKey, KvValue> committed_;
    std::map<KvKey, KvValue> staged_;
    /** Per shard: relaxed-committed, not-yet-sealed mutations, in
     * commit order (the crash may keep any prefix of each list). */
    std::vector<std::vector<std::pair<KvKey, KvValue>>> pending_;
    std::shared_ptr<pmem::CrashCountdown> countdown_;
    long armed_ = 0;
};

} // namespace

std::unique_ptr<sim::CrashWorkload>
makeKvCrashWorkload(const sim::CrashCell &cell)
{
    if (!txn::isRecoverableRuntimeName(cell.runtime)) {
        throw std::runtime_error(
            "kv crash workload needs a factory-constructible "
            "recoverable runtime, got: " +
            cell.runtime);
    }
    return std::make_unique<KvCrashWorkload>(cell);
}

sim::CrashWorkloadFactory
kvCrashWorkloadFactory()
{
    return [](const sim::CrashCell &cell)
               -> std::unique_ptr<sim::CrashWorkload> {
        if (cell.workload == "kv")
            return makeKvCrashWorkload(cell);
        return sim::builtinCrashWorkloadFactory()(cell);
    };
}

} // namespace specpmt::kv
