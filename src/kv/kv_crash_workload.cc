#include "kv/kv_crash_workload.hh"

#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "common/hash.hh"
#include "common/rand.hh"
#include "kv/kv_service.hh"

namespace specpmt::kv
{

namespace
{

KvServiceConfig
serviceConfig(const sim::CrashCell &cell)
{
    KvServiceConfig config;
    config.shards = cell.kvShards;
    config.threads = 1;
    config.runtime = cell.runtime;
    config.bucketsPerShard = 512;
    config.shardPoolBytes = 8u << 20;
    // Deterministic crash testing: no background threads, small log
    // blocks so transactions span block boundaries.
    config.runtimeOptions.backgroundWorkers = false;
    config.runtimeOptions.specLogBlockSize = 256;
    return config;
}

class KvCrashWorkload final : public sim::CrashWorkload
{
  public:
    explicit KvCrashWorkload(const sim::CrashCell &cell)
        : cell_(cell), service_(serviceConfig(cell))
    {
        for (KvKey key = 1; key <= cell_.kvKeys; ++key) {
            const auto value = KvValue::tagged(key, 0);
            if (!service_.put(0, key, value))
                throw std::runtime_error("kv setup put failed");
            committed_[key] = value;
        }
        if (cell_.fault == "drop-fences") {
            for (unsigned s = 0; s < service_.numShards(); ++s) {
                service_.shardDevice(s).injectFault(
                    pmem::DeviceFault::DropFences);
            }
        }
    }

    bool
    run(long crash_after) override
    {
        Rng rng(cell_.seed);
        armed_ = crash_after;
        countdown_ = service_.armCrashAll(crash_after);
        try {
            for (unsigned i = 0; i < cell_.kvOps; ++i) {
                staged_.clear();
                const double dice = rng.uniform();
                if (dice < 0.5) {
                    const KvKey key = 1 + rng.below(cell_.kvKeys);
                    service_.get(0, key);
                } else if (dice < 0.9) {
                    const KvKey key = 1 + rng.below(cell_.kvKeys);
                    const auto value =
                        KvValue::tagged(key, rng.next() | 1);
                    staged_[key] = value;
                    if (service_.put(0, key, value))
                        committed_[key] = value;
                    staged_.clear();
                } else {
                    std::vector<std::pair<KvKey, KvValue>> batch;
                    for (unsigned b = 0; b < 4; ++b) {
                        const KvKey key = 1 + rng.below(cell_.kvKeys);
                        const auto value =
                            KvValue::tagged(key, rng.next() | 1);
                        batch.emplace_back(key, value);
                        staged_[key] = value;
                    }
                    if (service_.multiPut(0, batch)) {
                        for (const auto &[key, value] : batch)
                            committed_[key] = value;
                    }
                    staged_.clear();
                }
            }
        } catch (const pmem::SimulatedCrash &) {
            return true;
        }
        service_.armCrashAll(-1);
        return false;
    }

    std::uint64_t
    eventsConsumed() const override
    {
        if (!countdown_)
            return 0;
        if (countdown_->fired.load(std::memory_order_relaxed))
            return static_cast<std::uint64_t>(armed_);
        const long remaining =
            countdown_->remaining.load(std::memory_order_relaxed);
        return static_cast<std::uint64_t>(
            armed_ - (remaining < 0 ? 0 : remaining));
    }

    std::uint64_t
    pruneKey(const pmem::CrashPolicy &policy) const override
    {
        // Hash exactly what powerCycle() will materialize:
        // KvService::crash() hands every shard the same policy.
        std::uint64_t hash = 0xC4A54ull;
        for (unsigned s = 0; s < service_.numShards(); ++s) {
            hash = hashCombine(
                hash, sim::hashCrashImage(
                          service_.shardDevice(s).crashImage(policy)));
        }
        hash = hashCombine(hash, shadowHash());
        return hash;
    }

    void
    powerCycle(const pmem::CrashPolicy &policy) override
    {
        service_.crash(policy);
        service_.recover();
    }

    std::vector<sim::CrashImageExport>
    exportCrashImages(const pmem::CrashPolicy &policy) const override
    {
        std::vector<sim::CrashImageExport> out;
        for (unsigned s = 0; s < service_.numShards(); ++s) {
            sim::CrashImageExport exp;
            exp.name = "shard" + std::to_string(s);
            exp.threads = serviceConfig(cell_).threads;
            exp.image = service_.shardDevice(s).crashImage(policy);
            out.push_back(std::move(exp));
        }
        return out;
    }

    std::string
    check() override
    {
        return verifyAtomicity();
    }

    std::string
    checkContinuation() override
    {
        rebaseline();
        if (run(kNoCrash))
            return "continuation: unexpected crash";
        if (auto msg = verifyExact(); !msg.empty())
            return "continuation: " + msg;
        powerCycle(pmem::CrashPolicy::nothing());
        if (auto msg = verifyExact(); !msg.empty())
            return "second crash: " + msg;
        return {};
    }

  private:
    static constexpr long kNoCrash = 1L << 40;

    static std::optional<KvValue>
    lookup(const std::map<KvKey, KvValue> &map, KvKey key)
    {
        const auto it = map.find(key);
        return it == map.end() ? std::nullopt
                               : std::optional(it->second);
    }

    static bool
    same(const std::optional<KvValue> &a,
         const std::optional<KvValue> &b)
    {
        if (a.has_value() != b.has_value())
            return false;
        return !a || *a == *b;
    }

    /**
     * Per shard, the surviving state must be the acknowledged
     * (committed) state, possibly plus the *whole* shard-local part
     * of the one in-flight transaction. Any torn value, lost
     * acknowledged put, or partially applied shard transaction is a
     * failure.
     */
    std::string
    verifyAtomicity()
    {
        for (unsigned s = 0; s < service_.numShards(); ++s) {
            bool matches_committed = true;
            bool matches_overlay = true;
            std::string detail;
            for (KvKey key = 1; key <= cell_.kvKeys; ++key) {
                if (service_.shardOf(key) != s)
                    continue;
                const auto actual = service_.get(0, key);
                const auto committed = lookup(committed_, key);
                auto overlay = committed;
                if (auto it = staged_.find(key); it != staged_.end())
                    overlay = it->second;
                if (!same(actual, committed)) {
                    matches_committed = false;
                    detail += " key " + std::to_string(key);
                }
                if (!same(actual, overlay))
                    matches_overlay = false;
            }
            if (!matches_committed && !matches_overlay) {
                return "shard " + std::to_string(s) +
                       " holds a partial transaction:" + detail;
            }
        }
        return {};
    }

    /** Adopt the surviving state as the new acknowledged baseline. */
    void
    rebaseline()
    {
        committed_.clear();
        for (KvKey key = 1; key <= cell_.kvKeys; ++key) {
            if (const auto value = service_.get(0, key))
                committed_[key] = *value;
        }
        staged_.clear();
    }

    /** Exact-state check (crash-free phases). */
    std::string
    verifyExact()
    {
        for (KvKey key = 1; key <= cell_.kvKeys; ++key) {
            const auto actual = service_.get(0, key);
            if (!same(actual, lookup(committed_, key)))
                return "key " + std::to_string(key) + " diverges";
        }
        return {};
    }

    std::uint64_t
    shadowHash() const
    {
        std::uint64_t hash = 0x1C55ADEull;
        auto fold = [&hash](const std::map<KvKey, KvValue> &map) {
            for (const auto &[key, value] : map) {
                std::uint64_t h = key;
                for (unsigned i = 0; i < 8; ++i)
                    h = hashCombine(h, value.words[i]);
                hash = hashCombine(hash, h);
            }
        };
        fold(committed_);
        hash = hashCombine(hash, 0x57A6EDull);
        fold(staged_);
        return hash;
    }

    sim::CrashCell cell_;
    KvService service_;
    std::map<KvKey, KvValue> committed_;
    std::map<KvKey, KvValue> staged_;
    std::shared_ptr<pmem::CrashCountdown> countdown_;
    long armed_ = 0;
};

} // namespace

std::unique_ptr<sim::CrashWorkload>
makeKvCrashWorkload(const sim::CrashCell &cell)
{
    if (!txn::isRecoverableRuntimeName(cell.runtime)) {
        throw std::runtime_error(
            "kv crash workload needs a factory-constructible "
            "recoverable runtime, got: " +
            cell.runtime);
    }
    return std::make_unique<KvCrashWorkload>(cell);
}

sim::CrashWorkloadFactory
kvCrashWorkloadFactory()
{
    return [](const sim::CrashCell &cell)
               -> std::unique_ptr<sim::CrashWorkload> {
        if (cell.workload == "kv")
            return makeKvCrashWorkload(cell);
        return sim::builtinCrashWorkloadFactory()(cell);
    };
}

} // namespace specpmt::kv
