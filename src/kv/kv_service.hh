/**
 * @file
 * A sharded, multi-threaded, crash-consistent key-value service — the
 * first serving-shaped layer over the transaction runtimes.
 *
 * The keyspace is hash-partitioned across N independent shards. Each
 * shard owns a full persistence stack: an emulated PmemDevice, a
 * PmemPool, a pluggable TxRuntime (any name the runtime factory
 * accepts: SpecTx, PMDK-style undo, SPHT, ...) and a PmHashMap
 * backing store. Every mutation is one shard-local transaction, so it
 * is crash-atomic under any recoverable runtime; multiPut() spans
 * shards as one transaction per touched shard, committed shard-
 * locally in ascending shard order.
 *
 * Isolation follows the paper's Section 4.3.3 contract (the runtime
 * provides atomic durability, the application de-conflicts): each
 * shard has a striped LockTable, and every mutation holds the stripes
 * of the keys it touches. Because the backing store is open-
 * addressing, a probe chain can cross stripe boundaries, so mutations
 * that claim a new bucket (inserts) additionally serialize on a
 * per-shard structure lock; pure updates and tombstoning deletes only
 * ever write the key's own live bucket, which no other stripe holder
 * touches, so they need just their stripe. Reads probe without locks:
 * bucket loads and stores are individually atomic at the device
 * level, so a racing get() observes each bucket entirely before or
 * entirely after a concurrent mutation.
 *
 * After a simulated power failure, recover() rebuilds every shard in
 * parallel (one recovery thread per shard — the shards' logs are
 * fully independent).
 */

#ifndef SPECPMT_KV_KV_SERVICE_HH
#define SPECPMT_KV_KV_SERVICE_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/types.hh"
#include "forensic/flight_recorder.hh"
#include "pmds/pm_hash_map.hh"
#include "pmem/crash_policy.hh"
#include "pmem/pmem_device.hh"
#include "pmem/pmem_pool.hh"
#include "txn/lock_table.hh"
#include "txn/runtime_factory.hh"

namespace specpmt::obs
{
class Gauge;
} // namespace specpmt::obs

namespace specpmt::kv
{

/** Keys are 64-bit; key 0 is valid. */
using KvKey = std::uint64_t;

/** Fixed-size value payload: one cache line. */
struct KvValue
{
    std::uint64_t words[8];

    bool
    operator==(const KvValue &other) const
    {
        for (unsigned i = 0; i < 8; ++i) {
            if (words[i] != other.words[i])
                return false;
        }
        return true;
    }

    /**
     * A self-describing value: word 0 ties the value to its key so
     * verification can detect cross-key corruption, the rest derive
     * from @p payload so torn values are detectable too.
     */
    static KvValue tagged(KvKey key, std::uint64_t payload);

    /** True if this value was built by tagged() for @p key. */
    bool checkTag(KvKey key) const;
};

/** Service construction parameters. */
struct KvServiceConfig
{
    /** Number of independent shards (each with its own pool+runtime). */
    unsigned shards = 4;
    /** Client threads that will call the service (thread ids 0..n-1). */
    unsigned threads = 4;
    /** Runtime scheme name (see txn::runtimeNames()). */
    std::string runtime = "spec";
    /** Buckets per shard hash map (a power of two). */
    std::uint64_t bucketsPerShard = 1u << 14;
    /** Emulated device capacity per shard. */
    std::size_t shardPoolBytes = 64u << 20;
    /** Lock stripes per shard. */
    unsigned lockStripes = 64;
    /**
     * Create a persistent flight-recorder ring in every shard pool so
     * the runtimes journal lifecycle events for post-mortem analysis
     * (pminspect). Off by default: appends add persistence events,
     * which perturbs crash-schedule replay tokens.
     */
    bool flightRecorder = false;
    /**
     * Group-commit auto-seal threshold: a shard's epoch is sealed once
     * this many relaxed mutations have accumulated since the previous
     * seal. Only meaningful when runtimeOptions.groupCommit is on.
     */
    unsigned epochMaxOps = 64;
    /**
     * Background epoch sealer period in microseconds (0 = no sealer
     * thread). Bounds how long a relaxed mutation can stay
     * DRAM-latest-only when the auto-seal threshold is never reached.
     */
    std::uint64_t epochSealIntervalUs = 0;
    /** Options forwarded to the runtime factory. */
    txn::RuntimeOptions runtimeOptions;
    /**
     * When non-empty, every shard's emulated device is backed by an
     * mmap'ed file `<pmDir>/shard-<n>.pm` so its persistent image
     * survives the PROCESS (SIGKILL included), not just a simulated
     * crash. Opening a directory that already holds matching images
     * reattaches them: the constructor runs each shard's recovery and
     * re-adopts the hash map instead of creating a fresh one — the
     * restart path a chaos harness drives.
     */
    std::string pmDir;
};

/**
 * Durability contract of a mutating call. Strict = the call returns
 * only after its transaction's commit fence (ack implies durable).
 * Relaxed = the call returns once the transaction is visible in the
 * DRAM-latest view and enrolled in its shard's open epoch; it is
 * durable once the shard's sealed epoch reaches the returned ticket.
 */
enum class Durability : std::uint8_t
{
    Strict,
    Relaxed,
};

/** One operation in a shard batch (see executeShardBatch). */
struct BatchOp
{
    enum class Kind : std::uint8_t
    {
        Get,
        Put,
        Erase,
    };

    Kind kind = Kind::Get;
    KvKey key = 0;
    /** Put payload (ignored for Get/Erase). */
    KvValue value{};
};

/** Outcome of one BatchOp. */
struct BatchOpResult
{
    /** Get: found; Put: stored (false = map full); Erase: removed. */
    bool ok = false;
    /** The mutation was refused because its shard is in read-only
     * degraded mode (ok is false; nothing was staged). */
    bool rejectedReadOnly = false;
    /** The value read (Get with ok == true only). */
    KvValue value{};
};

/** Outcome of one executeShardBatch call. */
enum class BatchStatus : std::uint8_t
{
    /** Ops executed; per-op results are valid (mutations on a
     * read-only shard report rejectedReadOnly individually). */
    Ok,
    /** A key did not map to the shard; nothing executed. */
    BadRoute,
    /** A media fault (poisoned read / write EIO) interrupted the
     * run. Any open transaction was aborted cleanly — nothing the
     * run staged was applied — and per-op results are meaningless. */
    Io,
    /** The shard ran out of log space mid-run: the transaction was
     * aborted cleanly and the shard flipped into read-only degraded
     * mode. Nothing was applied; reads keep working on retry. */
    ReadOnly,
};

/**
 * The key-to-shard map every routing layer (service internals, network
 * clients doing shard-affine routing) must agree on.
 */
unsigned shardOfKey(KvKey key, unsigned shards);

/** Point-in-time per-shard accounting. */
struct ShardSnapshot
{
    pmem::DeviceStats device;       ///< stores/clwbs/fences since clear
    std::uint64_t pmLineWrites = 0; ///< media line writes
    SimNs simNs = 0;                ///< shard device virtual clock
    std::uint64_t committedTxs = 0; ///< transactions committed
};

/** The sharded KV service; see file comment. */
class KvService
{
  public:
    explicit KvService(const KvServiceConfig &config);
    ~KvService();

    KvService(const KvService &) = delete;
    KvService &operator=(const KvService &) = delete;

    unsigned numShards() const { return config_.shards; }
    unsigned numThreads() const { return config_.threads; }
    const KvServiceConfig &config() const { return config_; }

    /** Shard responsible for @p key. */
    unsigned shardOf(KvKey key) const;

    /** Point lookup on client thread @p tid. */
    std::optional<KvValue> get(ThreadId tid, KvKey key);

    /**
     * Insert or update; one crash-atomic shard transaction. Returns
     * false (without staging anything) when the shard map is full —
     * size bucketsPerShard for the keyspace.
     *
     * With Durability::Relaxed on a group-commit runtime the commit
     * fence is deferred into the shard's epoch; the service auto-seals
     * after every config().epochMaxOps relaxed mutations. When
     * @p epoch_ticket is non-null it receives the epoch ticket the
     * transaction joined (0 = already durable).
     */
    bool put(ThreadId tid, KvKey key, const KvValue &value,
             Durability durability = Durability::Strict,
             std::uint64_t *epoch_ticket = nullptr);

    /** Delete; one crash-atomic shard transaction. True if present. */
    bool erase(ThreadId tid, KvKey key);

    /**
     * Write a batch of pairs: one transaction per touched shard,
     * committed shard-locally in ascending shard order. Each shard's
     * part is all-or-nothing under a crash; the batch as a whole is
     * not atomic across shards (a crash can persist a prefix of the
     * shard commits). Returns false if any shard map was full.
     */
    bool multiPut(ThreadId tid,
                  const std::vector<std::pair<KvKey, KvValue>> &items);

    /**
     * Execute an ordered batch of operations whose keys all map to
     * @p shard, with every mutation in ONE crash-atomic shard
     * transaction — the group-commit primitive the network event
     * loops amortize the commit fence with: N pipelined mutations
     * cost one flush+fence instead of N.
     *
     * Ops run strictly in order inside the transaction, so a Get
     * issued after a Put of the same key in the same batch observes
     * the new value (pipelined read-your-writes); results are only
     * reported to the caller after the commit fence, so acking them
     * never races durability. A batch with no mutations skips the
     * transaction entirely (zero fences).
     *
     * Returns false (executing nothing) if any key does not map to
     * @p shard. @p results is resized to ops.size().
     *
     * With Durability::Relaxed on a group-commit runtime the batch's
     * transaction joins the shard's open epoch instead of fencing;
     * @p epoch_ticket (when non-null) receives the ticket to wait on
     * before acking the results (0 = already durable / read-only).
     * Relaxed batches do NOT auto-seal — the caller owns the seal
     * policy via sealShardEpoch().
     */
    BatchStatus executeShardBatch(
        ThreadId tid, unsigned shard,
        const std::vector<BatchOp> &ops,
        std::vector<BatchOpResult> &results,
        Durability durability = Durability::Strict,
        std::uint64_t *epoch_ticket = nullptr);

    /** @name Degraded-mode state (media faults, log exhaustion) */
    /// @{

    /** True once @p shard refuses mutations (log space exhausted or
     * forced via setShardReadOnly). Reads keep working. */
    bool shardReadOnly(unsigned shard) const;

    /** Operator/test hook: force @p shard in or out of read-only
     * degraded mode. */
    void setShardReadOnly(unsigned shard, bool read_only);

    /** True when @p shard is read-only, has aborted transactions on
     * media faults, or recovered past quarantined log segments —
     * anything /healthz should surface as degraded. */
    bool shardDegraded(unsigned shard) const;

    /** Log segments @p shard's recovery quarantined as media-corrupt. */
    std::uint64_t shardQuarantined(unsigned shard) const;

    /** Transactions of @p shard aborted cleanly on a media fault. */
    std::uint64_t shardMediaAborts(unsigned shard) const;

    /// @}

    /** @name Epoch group commit */
    /// @{

    /** True if the shard runtimes defer durability into epochs. */
    bool groupCommitEnabled() const;

    /** Seal @p shard 's open epoch; returns the sealed ticket. */
    std::uint64_t sealShardEpoch(unsigned shard);

    /** Highest sealed (durable) epoch ticket of @p shard. */
    std::uint64_t shardSealedEpoch(unsigned shard) const;

    /**
     * Seal lag of @p shard: relaxed epoch tickets issued but not yet
     * covered by a sealed epoch (0 when fully durable or when group
     * commit is off). This is the health metric /healthz bounds —
     * unbounded lag means acks are parking forever.
     */
    std::uint64_t shardEpochLag(unsigned shard) const;

    /** Seal every shard's open epoch (run drain / quiesce points). */
    void sealAllEpochs();

    /// @}

    /**
     * Simulated power failure on every shard: drops the runtimes,
     * collapses each device to its crash image under @p policy, and
     * re-opens the pools. Call recover() before serving again.
     */
    void crash(const pmem::CrashPolicy &policy);

    /**
     * Post-crash recovery: rebuild every shard's runtime and replay
     * its logs, one recovery thread per shard.
     */
    void recover();

    /** Clean shutdown of every shard runtime. */
    void shutdown();

    /**
     * Arm one crash countdown *shared by every shard device* for the
     * calling thread, so @p ops indexes the service-global
     * persistence-event sequence (the space crash-schedule
     * exploration enumerates). Negative disarms and returns null;
     * otherwise returns the countdown so callers can read back how
     * many events a run consumed.
     */
    std::shared_ptr<pmem::CrashCountdown> armCrashAll(long ops);

    /** Per-shard accounting snapshot. */
    ShardSnapshot shardSnapshot(unsigned shard) const;

    /** Zero every shard's device counters and virtual clock. */
    void clearStats();

    /** Direct device access (tests arm crashes / inspect images). */
    pmem::PmemDevice &shardDevice(unsigned shard);
    const pmem::PmemDevice &shardDevice(unsigned shard) const;

    /** Direct runtime access (tests drain background helpers). */
    txn::TxRuntime &shardRuntime(unsigned shard);

  private:
    using Map = pmds::PmHashMap<KvKey, KvValue>;

    struct Shard
    {
        std::unique_ptr<pmem::PmemDevice> device;
        std::unique_ptr<pmem::PmemPool> pool;
        std::unique_ptr<txn::TxRuntime> runtime;
        std::optional<Map> map;
        std::unique_ptr<txn::LockTable> locks;
        /** Serializes bucket-claiming mutations (see file comment). */
        std::mutex structureLock;
        std::atomic<std::uint64_t> committedTxs{0};
        /** Relaxed mutations since the last auto-seal (epoch mode). */
        std::atomic<std::uint64_t> relaxedSinceSeal{0};
        /** Highest relaxed epoch ticket issued (shardEpochLag). */
        std::atomic<std::uint64_t> lastRelaxedTicket{0};
        /** Cached `specpmt_epoch_seal_lag{shard=}` gauge. */
        obs::Gauge *sealLagGauge = nullptr;
        /** Mutations refused: read-only degraded mode (see
         * executeShardBatch / PoolExhausted). */
        std::atomic<bool> readOnly{false};
        /** Transactions aborted cleanly on pmem::MediaError. */
        std::atomic<std::uint64_t> mediaAborts{0};
        /** Journal handle for media-fault / degraded-mode events
         * (disabled unless the pool carries a flight ring). */
        forensic::FlightRecorder flight;
    };

    /** Pseudo-address used to stripe-lock @p key. */
    static PmOff lockAddr(KvKey key);

    /** Upsert @p items into @p shard as one transaction. */
    bool putBatchLocked(Shard &shard, ThreadId tid,
                        const std::vector<std::pair<KvKey, KvValue>>
                            &items);

    /** Media-fault catch path: abort the open tx with faults
     * suppressed, journal the event, bump the abort accounting. */
    void noteMediaAbort(unsigned shard_index, Shard &shard,
                        ThreadId tid, std::uint64_t fault_off,
                        std::uint64_t fault_kind, bool in_tx);

    /** Flip @p shard into read-only degraded mode (idempotent). */
    void enterReadOnly(unsigned shard_index, Shard &shard,
                       ThreadId tid, std::uint64_t bytes_needed);

    /** Count one relaxed mutation; seal on the epochMaxOps boundary. */
    void noteRelaxedMutation(unsigned shard_index, Shard &shard);

    /** Track the highest relaxed ticket + publish the seal-lag gauge. */
    void noteTicket(unsigned shard_index, Shard &shard,
                    std::uint64_t ticket);

    /** Refresh shard's `specpmt_epoch_seal_lag{shard=}` gauge. */
    void publishSealLag(unsigned shard_index) const;

    /** Start / stop the periodic background sealer thread. */
    void startEpochSealer();
    void stopEpochSealer();

    KvServiceConfig config_;
    std::vector<std::unique_ptr<Shard>> shards_;

    std::mutex sealerMutex_;
    std::condition_variable sealerCv_;
    bool stopSealer_ = false;
    std::thread sealer_;
};

} // namespace specpmt::kv

#endif // SPECPMT_KV_KV_SERVICE_HH
