/**
 * @file
 * Crash eviction policies for the emulated persistence domain.
 *
 * At a simulated power failure, every store that has been fenced into
 * the persistence domain survives deterministically. Everything else —
 * dirty cache lines and flushed-but-unfenced lines — may or may not
 * have reached persistent media, depending on cache evictions and
 * write-pending-queue drain timing that real hardware does not let
 * software observe. These policies make that nondeterminism explicit
 * and enumerable so crash-consistency tests can sweep it.
 */

#ifndef SPECPMT_PMEM_CRASH_POLICY_HH
#define SPECPMT_PMEM_CRASH_POLICY_HH

#include <cstdint>

namespace specpmt::pmem
{

/** How undrained lines behave at a simulated crash. */
enum class CrashMode : std::uint8_t
{
    /** No unfenced write persists: the adversarial minimum. */
    NothingExtra,
    /** Every dirty/pending line persists: the adversarial maximum. */
    EverythingDrains,
    /** Each unfenced line independently persists with probability p. */
    RandomSubset,
};

/** A fully specified crash scenario. */
struct CrashPolicy
{
    CrashMode mode = CrashMode::NothingExtra;
    /** Persist probability for RandomSubset. */
    double persistProbability = 0.5;
    /** RNG seed for RandomSubset so scenarios are reproducible. */
    std::uint64_t seed = 1;

    static CrashPolicy
    nothing()
    {
        return {CrashMode::NothingExtra, 0.0, 0};
    }

    static CrashPolicy
    everything()
    {
        return {CrashMode::EverythingDrains, 1.0, 0};
    }

    static CrashPolicy
    random(std::uint64_t seed, double p = 0.5)
    {
        return {CrashMode::RandomSubset, p, seed};
    }
};

} // namespace specpmt::pmem

#endif // SPECPMT_PMEM_CRASH_POLICY_HH
