/**
 * @file
 * Crash eviction policies for the emulated persistence domain.
 *
 * At a simulated power failure, every store that has been fenced into
 * the persistence domain survives deterministically. Everything else —
 * dirty cache lines and flushed-but-unfenced lines — may or may not
 * have reached persistent media, depending on cache evictions and
 * write-pending-queue drain timing that real hardware does not let
 * software observe. These policies make that nondeterminism explicit
 * and enumerable so crash-consistency tests can sweep it.
 */

#ifndef SPECPMT_PMEM_CRASH_POLICY_HH
#define SPECPMT_PMEM_CRASH_POLICY_HH

#include <cstdint>
#include <string_view>

namespace specpmt::pmem
{

/** How undrained lines behave at a simulated crash. */
enum class CrashMode : std::uint8_t
{
    /** No unfenced write persists: the adversarial minimum. */
    NothingExtra,
    /** Every dirty/pending line persists: the adversarial maximum. */
    EverythingDrains,
    /** Each unfenced line independently persists with probability p. */
    RandomSubset,
};

/** A fully specified crash scenario. */
struct CrashPolicy
{
    CrashMode mode = CrashMode::NothingExtra;
    /** Persist probability for RandomSubset. */
    double persistProbability = 0.5;
    /** RNG seed for RandomSubset so scenarios are reproducible. */
    std::uint64_t seed = 1;

    static CrashPolicy
    nothing()
    {
        return {CrashMode::NothingExtra, 0.0, 0};
    }

    static CrashPolicy
    everything()
    {
        return {CrashMode::EverythingDrains, 1.0, 0};
    }

    static CrashPolicy
    random(std::uint64_t seed, double p = 0.5)
    {
        return {CrashMode::RandomSubset, p, seed};
    }
};

/** Stable textual name of @p mode ("nothing"/"everything"/"random"). */
inline const char *
crashModeName(CrashMode mode)
{
    switch (mode) {
      case CrashMode::NothingExtra:
        return "nothing";
      case CrashMode::EverythingDrains:
        return "everything";
      case CrashMode::RandomSubset:
        return "random";
    }
    return "?";
}

/** Parse a crashModeName() string; false if @p name is unknown. */
inline bool
parseCrashMode(std::string_view name, CrashMode &mode)
{
    if (name == "nothing") {
        mode = CrashMode::NothingExtra;
    } else if (name == "everything") {
        mode = CrashMode::EverythingDrains;
    } else if (name == "random") {
        mode = CrashMode::RandomSubset;
    } else {
        return false;
    }
    return true;
}

} // namespace specpmt::pmem

#endif // SPECPMT_PMEM_CRASH_POLICY_HH
