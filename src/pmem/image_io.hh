/**
 * @file
 * Save/load of PmemDevice crash images as files, so a post-crash
 * persistence domain can leave the process that produced it and be
 * examined offline (tools/pminspect) or attached to a CI failure.
 *
 * The format is deliberately trivial: a 16-byte header (magic +
 * payload size) followed by the raw image bytes. The magic pins
 * endianness and version; the explicit size rejects truncated files
 * before any walker touches them.
 */

#ifndef SPECPMT_PMEM_IMAGE_IO_HH
#define SPECPMT_PMEM_IMAGE_IO_HH

#include <cstdint>
#include <string>
#include <vector>

#include "pmem/pmem_device.hh"

namespace specpmt::pmem
{

/** Image file magic ("SPMTIMG1", little-endian). */
constexpr std::uint64_t kImageMagic = 0x31474D49544D5053ull;

/**
 * Write @p image to @p path (header + raw bytes).
 * @return true on success; on failure @p error describes the problem.
 */
bool saveImage(const std::string &path,
               const std::vector<std::uint8_t> &image,
               std::string &error);

/** Convenience: snapshot @p dev's persistent image to @p path. */
bool savePersistentImage(const std::string &path, const PmemDevice &dev,
                         std::string &error);

/**
 * Read an image file written by saveImage().
 * @return true on success with the payload in @p image; false with
 *         @p error set on a missing/truncated/foreign file.
 */
bool loadImage(const std::string &path, std::vector<std::uint8_t> &image,
               std::string &error);

/**
 * Build a device whose volatile *and* persistent images both equal
 * @p image — the state a machine wakes up to after the power failure
 * that produced the image. The device is untimed and has no pending
 * cache state; walking it reads exactly the surviving bytes.
 */
std::unique_ptr<PmemDevice>
deviceFromImage(const std::vector<std::uint8_t> &image);

} // namespace specpmt::pmem

#endif // SPECPMT_PMEM_IMAGE_IO_HH
