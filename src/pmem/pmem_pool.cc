#include "pmem/pmem_pool.hh"

#include "common/logging.hh"

namespace specpmt::pmem
{

PoolExhausted::PoolExhausted(std::size_t need, PmOff at,
                             std::size_t capacity)
    : std::runtime_error("pmem pool exhausted: need " +
                         std::to_string(need) + " bytes at " +
                         std::to_string(at) + " (capacity " +
                         std::to_string(capacity) + ")"),
      need_(need), capacity_(capacity)
{
}

PmemPool::PmemPool(PmemDevice &device)
    : device_(device), freeLists_(kNumClasses),
      bump_(kPageSize) // page 0 is the root directory
{
    SPECPMT_ASSERT(device_.size() > 2 * kPageSize);
}

unsigned
PmemPool::sizeClass(std::size_t size)
{
    std::size_t cls_bytes = kMinAlloc;
    for (unsigned cls = 0; cls < kNumClasses; ++cls) {
        if (size <= cls_bytes)
            return cls;
        cls_bytes <<= 1;
    }
    return kNumClasses; // large allocation, no class
}

std::size_t
PmemPool::classBytes(unsigned cls)
{
    return kMinAlloc << cls;
}

PmOff
PmemPool::alloc(std::size_t size)
{
    return allocAligned(size, kMinAlloc);
}

PmOff
PmemPool::allocAligned(std::size_t size, std::size_t alignment)
{
    SPECPMT_ASSERT(size > 0);
    SPECPMT_ASSERT((alignment & (alignment - 1)) == 0);
    if (alignment < kMinAlloc)
        alignment = kMinAlloc;

    std::lock_guard<std::mutex> guard(mutex_);

    const unsigned cls = sizeClass(size);
    PmOff off = kPmNull;

    if (cls < kNumClasses && alignment <= kMinAlloc &&
        !freeLists_[cls].empty()) {
        off = freeLists_[cls].back();
        freeLists_[cls].pop_back();
        live_[off] = classBytes(cls);
    } else {
        const std::size_t bytes =
            cls < kNumClasses ? classBytes(cls)
                              : ((size + kMinAlloc - 1) & ~(kMinAlloc - 1));
        PmOff start = (bump_ + alignment - 1) & ~(alignment - 1);
        if (start + bytes > device_.size())
            throw PoolExhausted(bytes, start, device_.size());
        bump_ = start + bytes;
        off = start;
        live_[off] = bytes;
    }

    bytesLive_ += live_[off];
    if (bytesLive_ > peakBytesLive_)
        peakBytesLive_ = bytesLive_;
    return off;
}

void
PmemPool::free(PmOff off)
{
    std::lock_guard<std::mutex> guard(mutex_);
    auto it = live_.find(off);
    SPECPMT_ASSERT(it != live_.end());
    const std::size_t bytes = it->second;
    bytesLive_ -= bytes;
    live_.erase(it);
    const unsigned cls = sizeClass(bytes);
    if (cls < kNumClasses && classBytes(cls) == bytes)
        freeLists_[cls].push_back(off);
    // Large allocations are leaked back to the bump region; the pools
    // in this repository are recreated per run, so fragmentation of
    // oversized blocks is a non-issue.
}

std::size_t
PmemPool::allocationSize(PmOff off) const
{
    std::lock_guard<std::mutex> guard(mutex_);
    auto it = live_.find(off);
    SPECPMT_ASSERT(it != live_.end());
    return it->second;
}

std::size_t
PmemPool::bytesAllocated() const
{
    std::lock_guard<std::mutex> guard(mutex_);
    return bytesLive_;
}

std::size_t
PmemPool::peakBytesAllocated() const
{
    std::lock_guard<std::mutex> guard(mutex_);
    return peakBytesLive_;
}

void
PmemPool::setRoot(unsigned slot, PmOff value)
{
    SPECPMT_ASSERT(slot < kRootSlots);
    const PmOff addr = slot * sizeof(PmOff);
    device_.storeT<PmOff>(addr, value);
    device_.clwb(addr, TrafficClass::Meta);
    device_.sfence();
}

PmOff
PmemPool::getRoot(unsigned slot) const
{
    SPECPMT_ASSERT(slot < kRootSlots);
    return device_.loadT<PmOff>(slot * sizeof(PmOff));
}

void
PmemPool::adopt(PmOff off, std::size_t size)
{
    std::lock_guard<std::mutex> guard(mutex_);
    SPECPMT_ASSERT(off != kPmNull && size > 0);
    if (auto it = live_.find(off); it != live_.end()) {
        // Already known (recover() without an intervening re-open).
        // An adopter working from the on-media structure knows only
        // the payload size, which the original allocation may have
        // rounded up to its size class.
        SPECPMT_ASSERT(it->second >= size);
        return;
    }
    live_[off] = size;
    bytesLive_ += size;
    if (bytesLive_ > peakBytesLive_)
        peakBytesLive_ = bytesLive_;
    if (off + size > bump_)
        bump_ = off + size;
}

void
PmemPool::reserveBelow(PmOff watermark)
{
    std::lock_guard<std::mutex> guard(mutex_);
    SPECPMT_ASSERT(watermark <= device_.size());
    if (watermark > bump_)
        bump_ = watermark;
    // Free-list entries below the watermark would defeat it.
    for (auto &list : freeLists_)
        list.clear();
}

void
PmemPool::reopenAfterCrash()
{
    std::lock_guard<std::mutex> guard(mutex_);
    for (auto &list : freeLists_)
        list.clear();
    live_.clear();
    bytesLive_ = 0;
    // The bump pointer is left where it was: recovery must be able to
    // read pre-crash data, and new allocations must not overwrite it.
}

} // namespace specpmt::pmem
