#include "pmem/image_io.hh"

#include <algorithm>
#include <cstring>
#include <fstream>

namespace specpmt::pmem
{

namespace
{

struct ImageFileHeader
{
    std::uint64_t magic;
    std::uint64_t sizeBytes;
};
static_assert(sizeof(ImageFileHeader) == 16);

} // namespace

bool
saveImage(const std::string &path, const std::vector<std::uint8_t> &image,
          std::string &error)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
        error = "cannot open " + path + " for writing";
        return false;
    }
    const ImageFileHeader header{kImageMagic, image.size()};
    out.write(reinterpret_cast<const char *>(&header), sizeof(header));
    out.write(reinterpret_cast<const char *>(image.data()),
              static_cast<std::streamsize>(image.size()));
    if (!out) {
        error = "short write to " + path;
        return false;
    }
    return true;
}

bool
savePersistentImage(const std::string &path, const PmemDevice &dev,
                    std::string &error)
{
    std::vector<std::uint8_t> image(dev.persistentRaw(),
                                    dev.persistentRaw() + dev.size());
    return saveImage(path, image, error);
}

bool
loadImage(const std::string &path, std::vector<std::uint8_t> &image,
          std::string &error)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        error = "cannot read " + path;
        return false;
    }
    ImageFileHeader header{};
    in.read(reinterpret_cast<char *>(&header), sizeof(header));
    if (!in || in.gcount() != sizeof(header)) {
        error = path + ": truncated header";
        return false;
    }
    if (header.magic != kImageMagic) {
        error = path + ": not a SpecPMT image file (bad magic)";
        return false;
    }
    image.resize(header.sizeBytes);
    in.read(reinterpret_cast<char *>(image.data()),
            static_cast<std::streamsize>(image.size()));
    if (!in || static_cast<std::uint64_t>(in.gcount()) !=
                   header.sizeBytes) {
        error = path + ": truncated payload (header promises " +
                std::to_string(header.sizeBytes) + " bytes)";
        return false;
    }
    return true;
}

std::unique_ptr<PmemDevice>
deviceFromImage(const std::vector<std::uint8_t> &image)
{
    // The device rounds its size up to a whole cache line; pad a
    // truncated (unaligned) image with zeros, which read back as tail
    // poison — exactly what a cut-off log should look like.
    const std::size_t rounded =
        std::max<std::size_t>(
            (image.size() + kCacheLineSize - 1) & ~(kCacheLineSize - 1),
            kCacheLineSize);
    auto dev = std::make_unique<PmemDevice>(rounded);
    auto padded = image;
    padded.resize(rounded, 0);
    dev->resetFromImage(padded);
    return dev;
}

} // namespace specpmt::pmem
