/**
 * @file
 * Analytic timing model of an ADR persistent memory subsystem.
 *
 * The software-solution evaluation in the paper ran on a real Optane
 * machine; this container has neither persistent memory nor multiple
 * cores, so the software benchmarks instead accumulate *simulated*
 * nanoseconds from a first-order model of the events that dominate
 * persistent transaction cost:
 *
 *  - cache-hit stores/loads: ~1ns,
 *  - clwb: enqueue into a 512-byte (8-line) write pending queue,
 *    stalling when the queue is full; a line already pending merges,
 *  - media drain: writes spread over pmChannels interleaved channels
 *    (by XPLine address); within one channel a write to the same
 *    256B XPLine as the previous write costs pmWriteSameXpLineNs
 *    (Optane's internal write combining — the reason sequential log
 *    writes beat scattered data writes, Section 3), a new XPLine
 *    costs the full pmWriteNs read-modify-write,
 *  - sfence: waits until every flush issued by the measured thread
 *    has drained (strict persist), plus a fixed core-side cost;
 *    background cores' (async) writes share drain bandwidth but are
 *    never waited on,
 *  - PM read (cold): 150ns.
 *
 * Parameters come from Table 1 / Section 7.1.3 plus the Optane
 * characterization literature the paper cites [67, 70, 78, 11].
 */

#ifndef SPECPMT_PMEM_PMEM_TIMING_HH
#define SPECPMT_PMEM_PMEM_TIMING_HH

#include <array>
#include <cstdint>
#include <deque>
#include <vector>

#include "common/types.hh"

namespace specpmt::pmem
{

/**
 * Where simulated nanoseconds went, for the runtime-wide
 * `specpmt_sim_ns_total{event=...}` attribution counters. WpqStall
 * and FenceDrain are the interesting ones: time the core spent
 * blocked on media drain rather than doing work.
 */
enum class SimNsEvent : unsigned
{
    Store = 0,
    Load,
    PmRead,
    Compute,
    WpqAccept,
    WpqStall,
    FenceDrain,
    Sfence,
    kCount,
};

/** Tunable latency parameters (defaults per the paper's Table 1). */
struct TimingParams
{
    SimNs storeNs = 1;            ///< cache-hit store
    SimNs loadNs = 1;             ///< cache-hit load
    SimNs pmReadNs = 150;         ///< cold PM read
    SimNs pmWriteNs = 500;        ///< PM media write, new XPLine (RMW)
    SimNs pmWriteSameXpLineNs = 125; ///< write combined within an XPLine
    SimNs wpqAcceptNs = 10;       ///< WPQ enqueue handshake
    unsigned wpqLines = 8;        ///< 512B WPQ = 8 cache lines
    /** Fixed core-side sfence cost (store-buffer drain). */
    SimNs sfenceNs = 100;
    /** Interleaved PM channels draining in parallel. */
    unsigned pmChannels = 4;
};

/**
 * Accumulates a virtual clock for one execution; see file comment.
 */
class PmemTiming
{
  public:
    explicit PmemTiming(const TimingParams &params = {})
        : params_(params), channels_(params.pmChannels)
    {}

    /** Publishes any unflushed attribution deltas. */
    ~PmemTiming() { publishMetrics(); }

    PmemTiming(const PmemTiming &) = delete;
    PmemTiming &operator=(const PmemTiming &) = delete;

    /** Current virtual time. */
    SimNs now() const { return now_; }

    /** Charge @p ns of pure computation. */
    void
    compute(SimNs ns)
    {
        now_ += ns;
        charge(SimNsEvent::Compute, ns);
    }

    /** Charge a cache-hit store of @p lines cache lines. */
    void
    onStore(std::uint64_t lines)
    {
        now_ += params_.storeNs * lines;
        charge(SimNsEvent::Store, params_.storeNs * lines);
    }

    /** Charge a cache-hit load of @p lines cache lines. */
    void
    onLoad(std::uint64_t lines)
    {
        now_ += params_.loadNs * lines;
        charge(SimNsEvent::Load, params_.loadNs * lines);
    }

    /** Charge a cold PM read of @p lines cache lines. */
    void
    onPmRead(std::uint64_t lines)
    {
        now_ += params_.pmReadNs * lines;
        charge(SimNsEvent::PmRead, params_.pmReadNs * lines);
    }

    /**
     * Charge a cache line writeback heading to PM.
     *
     * @param line_index  Cache line index (drives channel selection
     *                    and XPLine locality).
     */
    void onClwb(std::uint64_t line_index);

    /**
     * A PM write issued by a *background* core (SPHT's replayer,
     * SpecPMT's reclaimer): it consumes shared drain bandwidth —
     * delaying the measured thread's subsequent writes and fences —
     * but does not advance the measured thread's clock by itself and
     * is never waited on by its fences.
     */
    void onClwbAsync(std::uint64_t line_index);

    /** Charge a store fence (persist barrier). */
    void onSfence();

    /** Number of PM line writes that hit the XPLine combining path. */
    std::uint64_t combinedWrites() const { return combinedWrites_; }

    /** Total PM line writes issued to the media. */
    std::uint64_t pmLineWrites() const { return pmLineWrites_; }

    /**
     * Flush this model's attribution counters (sim-ns by event, WPQ
     * merges/stalls, media line writes) into the process-wide metrics
     * registry as a bulk delta. The per-event paths above only bump
     * plain members — cheap enough for the emulated-store fast path —
     * so the registry sees this model's traffic only when published:
     * on destruction, or via PmemDevice::publishMetrics().
     */
    void publishMetrics();

    /** Reset the clock and queue (counters survive). */
    void
    reset()
    {
        now_ = 0;
        for (auto &channel : channels_) {
            channel.inflight.clear();
            channel.lastXpLine = ~0ull;
        }
    }

    const TimingParams &params() const { return params_; }

  private:
    /** One in-flight PM write. */
    struct Inflight
    {
        SimNs done;
        std::uint64_t line;
        bool async;
    };

    struct Channel
    {
        std::deque<Inflight> inflight;
        std::uint64_t lastXpLine = ~0ull;
    };

    Channel &channelFor(std::uint64_t line_index);
    void retireCompleted();
    std::size_t pendingCount() const;
    /** Stall until the earliest pending write completes. */
    void waitForSlot();
    /** True if @p line is pending; merging is free media-side. */
    bool mergeIfPending(std::uint64_t line_index);
    /** Queue the media write; returns its completion time. */
    SimNs enqueueDrain(std::uint64_t line_index, bool async);

    /** Accumulate @p ns of attributed simulated time (plain add). */
    void
    charge(SimNsEvent event, SimNs ns)
    {
        simNsByEvent_[static_cast<unsigned>(event)] += ns;
    }

    TimingParams params_;
    SimNs now_ = 0;
    std::vector<Channel> channels_;
    std::uint64_t combinedWrites_ = 0;
    std::uint64_t pmLineWrites_ = 0;
    std::uint64_t wpqMerges_ = 0;
    std::uint64_t wpqStalls_ = 0;
    std::array<SimNs, static_cast<unsigned>(SimNsEvent::kCount)>
        simNsByEvent_{};

    /** Values already flushed to the registry by publishMetrics(). */
    struct Published
    {
        std::uint64_t combinedWrites = 0;
        std::uint64_t pmLineWrites = 0;
        std::uint64_t wpqMerges = 0;
        std::uint64_t wpqStalls = 0;
        std::array<SimNs, static_cast<unsigned>(SimNsEvent::kCount)>
            simNsByEvent{};
    } published_;
};

} // namespace specpmt::pmem

#endif // SPECPMT_PMEM_PMEM_TIMING_HH
