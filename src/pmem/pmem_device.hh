/**
 * @file
 * Emulated persistent memory device with an explicit persistence
 * domain, the substrate every transaction runtime in this repository
 * is built on.
 *
 * The device keeps two byte images of the same address space:
 *
 *  - the *volatile image*: what the CPU observes through loads — the
 *    union of cache contents and memory;
 *  - the *persistent image*: what is guaranteed to survive a power
 *    failure under ADR semantics.
 *
 * Stores modify the volatile image and mark cache lines dirty. clwb
 * snapshots the current line contents into a pending set (the write
 * heads toward the write pending queue). sfence promotes every pending
 * snapshot into the persistent image — only then is the data durable
 * under *all* crash scenarios. A simulated crash keeps the persistent
 * image and lets a CrashPolicy decide, line by line, whether unfenced
 * state (dirty lines, pending snapshots) also made it out — exactly
 * the nondeterminism real hardware exposes.
 *
 * This model is deliberately conservative: on real ADR hardware a
 * retired clwb will eventually drain even without a fence, but no
 * ordering is guaranteed, so treating unfenced flushes as "maybe
 * persisted" covers every real interleaving.
 */

#ifndef SPECPMT_PMEM_PMEM_DEVICE_HH
#define SPECPMT_PMEM_PMEM_DEVICE_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"
#include "pmem/crash_policy.hh"
#include "pmem/pmem_timing.hh"

namespace specpmt::pmem
{

/** Purpose tag for persistence traffic, for per-figure accounting. */
enum class TrafficClass : std::uint8_t
{
    Data = 0,
    Log = 1,
    Meta = 2,
};

/**
 * Thrown by the device when an armed crash countdown expires; the
 * "power failed" signal for crash-injection tests. The operation that
 * tripped the countdown is NOT applied.
 */
class SimulatedCrash : public std::exception
{
  public:
    const char *
    what() const noexcept override
    {
        return "simulated power failure";
    }
};

/**
 * A crash countdown shared between the arming code and one or more
 * devices. Every persistence event performed by the arming thread
 * decrements @c remaining; the event that observes zero throws
 * SimulatedCrash and records its device-local event id.
 *
 * Sharing one countdown across several devices (the sharded KV
 * service's per-shard devices) makes the countdown index into the
 * *global* persistence-event sequence of the run, which is what
 * exhaustive crash-schedule exploration enumerates. After a run the
 * explorer reads back how many events were consumed, so one counted
 * pass bounds the whole crash-point space.
 */
struct CrashCountdown
{
    /** Events still allowed before the crash fires; < 0 = disarmed. */
    std::atomic<long> remaining{-1};
    /** Set once the countdown expired and the crash was thrown. */
    std::atomic<bool> fired{false};
    /** Device-local persistence-event id at the firing operation. */
    std::atomic<std::uint64_t> firedEventId{0};
};

/**
 * Device-level fault injection, for validating that the crash
 * explorer actually catches consistency regressions (test-the-tester).
 */
enum class DeviceFault : std::uint8_t
{
    None = 0,
    /**
     * sfence retires (counts, advances the clock, can trip an armed
     * crash) but promotes nothing into the persistence domain —
     * the "dropped commit fence" regression.
     */
    DropFences,
};

/** What kind of media failure a device operation hit. */
enum class MediaErrorKind : std::uint8_t
{
    /** A load overlapped a poisoned line (uncorrectable read error). */
    PoisonedRead,
    /** A store overlapped a write-failed line; nothing was written. */
    WriteEio,
};

const char *mediaErrorKindName(MediaErrorKind kind);

/**
 * Thrown by the device data path when an operation overlaps a line
 * selected by the active FaultPlan. Unlike SimulatedCrash this is a
 * *survivable* error: the caller is expected to abort the enclosing
 * transaction (or quarantine the affected log segment) and keep
 * serving. The faulting operation is NOT applied.
 */
class MediaError : public std::runtime_error
{
  public:
    MediaError(MediaErrorKind kind, PmOff off);

    MediaErrorKind kind() const { return kind_; }
    /** Line-aligned offset of the faulting media line. */
    PmOff offset() const { return off_; }

  private:
    MediaErrorKind kind_;
    PmOff off_;
};

/**
 * A seeded, deterministic media-fault plan. applyFaultPlan() derives
 * the affected cache lines from @c seed with the repo's deterministic
 * Rng, so a scenario name + seed reproduces the exact same fault set
 * on every run (the property the specchaos matrix keys off).
 *
 * Three independent fault populations:
 *  - @c poisonLines: loads overlapping these lines throw
 *    MediaError(PoisonedRead) instead of returning data;
 *  - @c eioLines: stores overlapping these lines throw
 *    MediaError(WriteEio) and write nothing;
 *  - @c corruptLines: a single bit is flipped in the *persistent*
 *    image of each selected (non-zero) line — latent corruption that
 *    surfaces only at recovery, where the log CRC seals must catch it.
 */
struct FaultPlan
{
    std::uint64_t seed = 1;
    /** Number of lines to poison for reads. */
    std::size_t poisonLines = 0;
    /** Number of lines that fail writes with EIO. */
    std::size_t eioLines = 0;
    /** Number of persistent lines to latently bit-flip. */
    std::size_t corruptLines = 0;
    /** Fault region [regionStart, regionEnd); end 0 = device size. */
    PmOff regionStart = 0;
    PmOff regionEnd = 0;
};

/**
 * RAII scope under which media faults are NOT raised for the calling
 * thread: loads of poisoned lines return their bytes, stores to EIO
 * lines apply. Cleanup paths (transaction abort restoring pre-images,
 * tail poisoning, flight-recorder appends) run under this scope so a
 * media error can never wedge the abort that recovers from it.
 */
class MediaFaultSuppress
{
  public:
    MediaFaultSuppress();
    ~MediaFaultSuppress();
    MediaFaultSuppress(const MediaFaultSuppress &) = delete;
    MediaFaultSuppress &operator=(const MediaFaultSuppress &) = delete;
};

/** Aggregate event counters exposed by the device. */
struct DeviceStats
{
    std::uint64_t stores = 0;
    std::uint64_t storeBytes = 0;
    std::uint64_t loads = 0;
    std::uint64_t clwbs[3] = {0, 0, 0}; ///< indexed by TrafficClass
    std::uint64_t fences = 0;
    std::uint64_t crashes = 0;
    /** Loads rejected by a poisoned line (MediaError thrown). */
    std::uint64_t mediaReadErrors = 0;
    /** Stores rejected by an EIO line (MediaError thrown). */
    std::uint64_t mediaWriteErrors = 0;

    std::uint64_t
    totalClwbs() const
    {
        return clwbs[0] + clwbs[1] + clwbs[2];
    }
};

/**
 * The emulated device. Thread-safe: all mutating entry points take an
 * internal lock, because software SpecPMT runs worker threads alongside
 * a background log reclaimer.
 */
class PmemDevice
{
  public:
    /**
     * @param size    Device capacity in bytes (rounded up to a line).
     * @param params  Latency model parameters.
     */
    explicit PmemDevice(std::size_t size, const TimingParams &params = {});

    /**
     * File-backed variant: the persistent image is mirrored into an
     * mmap(MAP_SHARED) mapping of @p backingPath, so it survives even
     * a SIGKILL of the process (the page cache outlives the mapping).
     * If the file already holds a full image, both images are loaded
     * from it and hadExistingData() returns true — the re-open path a
     * restarted server uses to find its pre-kill state.
     */
    PmemDevice(std::size_t size, const std::string &backingPath,
               const TimingParams &params = {});

    /** Publishes any unflushed metric deltas; see publishMetrics(). */
    ~PmemDevice();

    PmemDevice(const PmemDevice &) = delete;
    PmemDevice &operator=(const PmemDevice &) = delete;

    /** Device capacity in bytes. */
    std::size_t size() const { return volatileImage_.size(); }

    /** @name CPU-visible data path */
    /// @{

    /** Store @p size bytes at @p off (volatile until flushed+fenced). */
    void store(PmOff off, const void *src, std::size_t size);

    /** Load @p size bytes from @p off into @p dst. */
    void load(PmOff off, void *dst, std::size_t size) const;

    /** Typed store convenience. */
    template <typename T>
    void
    storeT(PmOff off, const T &value)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        store(off, &value, sizeof(T));
    }

    /** Typed load convenience. */
    template <typename T>
    T
    loadT(PmOff off) const
    {
        static_assert(std::is_trivially_copyable_v<T>);
        T value;
        load(off, &value, sizeof(T));
        return value;
    }

    /** Flush the cache line containing @p off toward the WPQ. */
    void clwb(PmOff off, TrafficClass cls = TrafficClass::Data);

    /** Flush every line overlapping [off, off+size). */
    void clwbRange(PmOff off, std::size_t size,
                   TrafficClass cls = TrafficClass::Data);

    /** Store fence: all previously flushed lines become durable. */
    void sfence();

    /**
     * Non-temporal store: bypasses the cache; the written lines head
     * straight for the WPQ (still requires sfence for a guarantee).
     */
    void ntstore(PmOff off, const void *src, std::size_t size,
                 TrafficClass cls = TrafficClass::Data);

    /**
     * Hardware-ordered persist: the lines overlapping [off, off+size)
     * enter the persistence domain immediately, with no fence.
     *
     * This models a hardware path that guarantees a write reaches the
     * ADR-protected write pending queue before any dependent later
     * store can retire — the ordering primitive hardware logging
     * schemes (EDE's dependency tracking, hardware SpecPMT's log
     * writes, Section 5) rely on. Software runtimes must NOT use it;
     * they only get clwb + sfence.
     */
    void adrPersist(PmOff off, std::size_t size,
                    TrafficClass cls = TrafficClass::Log);

    /** Charge pure computation time on the virtual clock. */
    void
    compute(SimNs ns)
    {
        std::lock_guard<std::mutex> guard(mutex_);
        if (timed())
            timing_.compute(ns);
    }

    /**
     * Restrict the virtual clock to the calling thread. Background
     * helpers (SPHT's replayer, SpecPMT's reclaimer) run on dedicated
     * cores in the paper's methodology; with this set, their device
     * operations still count in the traffic statistics but do not
     * advance the measured thread's clock.
     */
    void
    timeOnlyCallingThread()
    {
        std::lock_guard<std::mutex> guard(mutex_);
        timedThreadOnly_ = true;
        timedThread_ = std::this_thread::get_id();
    }

    /// @}

    /** @name Crash machinery */
    /// @{

    /**
     * Compute the post-crash memory image under @p policy without
     * modifying the device, so tests can sweep many policies from a
     * single execution point.
     */
    std::vector<std::uint8_t> crashImage(const CrashPolicy &policy) const;

    /**
     * Simulate a power failure: the volatile state collapses to the
     * crash image, all cache/WPQ state is lost.
     */
    void simulateCrash(const CrashPolicy &policy);

    /** Reset both images from an externally captured crash image. */
    void resetFromImage(const std::vector<std::uint8_t> &image);

    /**
     * Flush and fence every dirty line (clean shutdown / mode switch,
     * Section 4.3.1's wbnoinvd analog).
     */
    void drainAll(TrafficClass cls = TrafficClass::Data);

    /// @}

    /**
     * Arm a crash for the *calling thread*: after @p ops further
     * persistence-relevant operations (stores, effective flushes,
     * fences) from this thread, the device throws SimulatedCrash.
     * Other threads are unaffected. Pass a negative value to disarm.
     */
    void armCrash(long ops);

    /**
     * Arm with an external countdown, which may be shared with other
     * devices so it indexes the combined persistence-event sequence
     * (see CrashCountdown). Only events from the calling thread
     * decrement it. Pass nullptr to disarm.
     */
    void armCrash(std::shared_ptr<CrashCountdown> countdown);

    /** The countdown currently armed on this device (may be null). */
    std::shared_ptr<CrashCountdown> crashCountdown() const;

    /**
     * Inject a persistence fault (see DeviceFault). Used by the crash
     * explorer's self-test to prove injected consistency regressions
     * are detected; production code paths never call this.
     */
    void injectFault(DeviceFault fault);

    /**
     * Derive and install the media-fault line sets for @p plan (see
     * FaultPlan). Replaces any previous plan; latent corruption is
     * applied to the persistent image immediately. Deterministic for
     * a given (plan, image) pair.
     */
    void applyFaultPlan(const FaultPlan &plan);

    /** Remove every installed media fault (latent flips stay). */
    void clearFaultPlan();

    /** True when the device was opened over a pre-existing image. */
    bool hadExistingData() const { return hadExistingData_; }

    /** @name Introspection */
    /// @{

    /** Direct read-only view of the volatile image. */
    const std::uint8_t *raw() const { return volatileImage_.data(); }

    /** Direct read-only view of the persistent image. */
    const std::uint8_t *
    persistentRaw() const
    {
        return persistentImage_.data();
    }

    /** True if the line containing @p off has unflushed stores. */
    bool isLineDirty(PmOff off) const;

    /** Number of currently dirty lines. */
    std::size_t dirtyLineCount() const;

    /**
     * Monotonically increasing persistence-event id: the number of
     * persistence-relevant operations (stores, effective flushes,
     * fences, nt-stores, hardware persists) the device has executed,
     * from any thread. Crash-schedule exploration keys replay tokens
     * off this sequence.
     */
    std::uint64_t persistEventId() const;

    /** Event counters. */
    const DeviceStats &stats() const { return stats_; }

    /** Zero the event counters (images unaffected). */
    void
    clearStats()
    {
        publishMetrics(); // keep registry totals before the reset
        stats_ = DeviceStats{};
        published_ = DeviceStats{};
    }

    /**
     * Flush this device's traffic counters (and its timing model's
     * attribution) into the process-wide metrics registry as a bulk
     * delta. The data-path hot paths only bump the plain DeviceStats
     * members; the registry catches up here — on destruction,
     * clearStats(), or an explicit call before a snapshot.
     */
    void publishMetrics();

    /** The virtual clock / latency model. */
    PmemTiming &timing() { return timing_; }
    const PmemTiming &timing() const { return timing_; }

    /// @}

  private:
    using Line = std::array<std::uint8_t, kCacheLineSize>;

    void checkRange(PmOff off, std::size_t size) const;
    void clwbLocked(PmOff off, TrafficClass cls);
    void maybeCrash();
    /** Throw MediaError if [off,off+size) overlaps @p lines. */
    void checkMediaLines(
        const std::unordered_set<std::uint64_t> &lines,
        MediaErrorKind kind, PmOff off, std::size_t size) const;
    /** Copy one persistent line into the backing mapping. */
    void mirrorLine(std::uint64_t line);
    /** Copy the whole persistent image into the backing mapping. */
    void mirrorAll();

    /** Whether the calling thread's ops advance the virtual clock. */
    bool
    timed() const
    {
        return !timedThreadOnly_ ||
               std::this_thread::get_id() == timedThread_;
    }

    mutable std::mutex mutex_;
    std::vector<std::uint8_t> volatileImage_;
    std::vector<std::uint8_t> persistentImage_;
    /** Lines with stores newer than any flush. */
    std::unordered_set<std::uint64_t> dirtyLines_;
    /** Flushed-but-unfenced line snapshots, keyed by line index. */
    std::unordered_map<std::uint64_t, Line> pendingLines_;
    DeviceStats stats_;
    /** stats_ values already flushed by publishMetrics(). */
    DeviceStats published_;
    PmemTiming timing_;
    /** Crash-injection countdown; null = disarmed. */
    std::shared_ptr<CrashCountdown> countdown_;
    std::thread::id crashThread_;
    /** Persistence-event id counter (see persistEventId()). */
    std::uint64_t persistEvents_ = 0;
    /** Injected persistence fault (DeviceFault::None normally). */
    DeviceFault fault_ = DeviceFault::None;
    /** Lines whose loads fail (FaultPlan::poisonLines). */
    std::unordered_set<std::uint64_t> poisonLines_;
    /** Lines whose stores fail (FaultPlan::eioLines). */
    std::unordered_set<std::uint64_t> eioLines_;
    /** mmap(MAP_SHARED) mirror of persistentImage_; null = none. */
    std::uint8_t *backingMap_ = nullptr;
    int backingFd_ = -1;
    bool hadExistingData_ = false;
    /** Virtual-clock thread filter (see timeOnlyCallingThread). */
    bool timedThreadOnly_ = false;
    std::thread::id timedThread_;
};

} // namespace specpmt::pmem

#endif // SPECPMT_PMEM_PMEM_DEVICE_HH
