/**
 * @file
 * Emulated persistent memory device with an explicit persistence
 * domain, the substrate every transaction runtime in this repository
 * is built on.
 *
 * The device keeps two byte images of the same address space:
 *
 *  - the *volatile image*: what the CPU observes through loads — the
 *    union of cache contents and memory;
 *  - the *persistent image*: what is guaranteed to survive a power
 *    failure under ADR semantics.
 *
 * Stores modify the volatile image and mark cache lines dirty. clwb
 * snapshots the current line contents into a pending set (the write
 * heads toward the write pending queue). sfence promotes every pending
 * snapshot into the persistent image — only then is the data durable
 * under *all* crash scenarios. A simulated crash keeps the persistent
 * image and lets a CrashPolicy decide, line by line, whether unfenced
 * state (dirty lines, pending snapshots) also made it out — exactly
 * the nondeterminism real hardware exposes.
 *
 * This model is deliberately conservative: on real ADR hardware a
 * retired clwb will eventually drain even without a fence, but no
 * ordering is guaranteed, so treating unfenced flushes as "maybe
 * persisted" covers every real interleaving.
 */

#ifndef SPECPMT_PMEM_PMEM_DEVICE_HH
#define SPECPMT_PMEM_PMEM_DEVICE_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"
#include "pmem/crash_policy.hh"
#include "pmem/pmem_timing.hh"

namespace specpmt::pmem
{

/** Purpose tag for persistence traffic, for per-figure accounting. */
enum class TrafficClass : std::uint8_t
{
    Data = 0,
    Log = 1,
    Meta = 2,
};

/**
 * Thrown by the device when an armed crash countdown expires; the
 * "power failed" signal for crash-injection tests. The operation that
 * tripped the countdown is NOT applied.
 */
class SimulatedCrash : public std::exception
{
  public:
    const char *
    what() const noexcept override
    {
        return "simulated power failure";
    }
};

/**
 * A crash countdown shared between the arming code and one or more
 * devices. Every persistence event performed by the arming thread
 * decrements @c remaining; the event that observes zero throws
 * SimulatedCrash and records its device-local event id.
 *
 * Sharing one countdown across several devices (the sharded KV
 * service's per-shard devices) makes the countdown index into the
 * *global* persistence-event sequence of the run, which is what
 * exhaustive crash-schedule exploration enumerates. After a run the
 * explorer reads back how many events were consumed, so one counted
 * pass bounds the whole crash-point space.
 */
struct CrashCountdown
{
    /** Events still allowed before the crash fires; < 0 = disarmed. */
    std::atomic<long> remaining{-1};
    /** Set once the countdown expired and the crash was thrown. */
    std::atomic<bool> fired{false};
    /** Device-local persistence-event id at the firing operation. */
    std::atomic<std::uint64_t> firedEventId{0};
};

/**
 * Device-level fault injection, for validating that the crash
 * explorer actually catches consistency regressions (test-the-tester).
 */
enum class DeviceFault : std::uint8_t
{
    None = 0,
    /**
     * sfence retires (counts, advances the clock, can trip an armed
     * crash) but promotes nothing into the persistence domain —
     * the "dropped commit fence" regression.
     */
    DropFences,
};

/** Aggregate event counters exposed by the device. */
struct DeviceStats
{
    std::uint64_t stores = 0;
    std::uint64_t storeBytes = 0;
    std::uint64_t loads = 0;
    std::uint64_t clwbs[3] = {0, 0, 0}; ///< indexed by TrafficClass
    std::uint64_t fences = 0;
    std::uint64_t crashes = 0;

    std::uint64_t
    totalClwbs() const
    {
        return clwbs[0] + clwbs[1] + clwbs[2];
    }
};

/**
 * The emulated device. Thread-safe: all mutating entry points take an
 * internal lock, because software SpecPMT runs worker threads alongside
 * a background log reclaimer.
 */
class PmemDevice
{
  public:
    /**
     * @param size    Device capacity in bytes (rounded up to a line).
     * @param params  Latency model parameters.
     */
    explicit PmemDevice(std::size_t size, const TimingParams &params = {});

    /** Publishes any unflushed metric deltas; see publishMetrics(). */
    ~PmemDevice();

    PmemDevice(const PmemDevice &) = delete;
    PmemDevice &operator=(const PmemDevice &) = delete;

    /** Device capacity in bytes. */
    std::size_t size() const { return volatileImage_.size(); }

    /** @name CPU-visible data path */
    /// @{

    /** Store @p size bytes at @p off (volatile until flushed+fenced). */
    void store(PmOff off, const void *src, std::size_t size);

    /** Load @p size bytes from @p off into @p dst. */
    void load(PmOff off, void *dst, std::size_t size) const;

    /** Typed store convenience. */
    template <typename T>
    void
    storeT(PmOff off, const T &value)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        store(off, &value, sizeof(T));
    }

    /** Typed load convenience. */
    template <typename T>
    T
    loadT(PmOff off) const
    {
        static_assert(std::is_trivially_copyable_v<T>);
        T value;
        load(off, &value, sizeof(T));
        return value;
    }

    /** Flush the cache line containing @p off toward the WPQ. */
    void clwb(PmOff off, TrafficClass cls = TrafficClass::Data);

    /** Flush every line overlapping [off, off+size). */
    void clwbRange(PmOff off, std::size_t size,
                   TrafficClass cls = TrafficClass::Data);

    /** Store fence: all previously flushed lines become durable. */
    void sfence();

    /**
     * Non-temporal store: bypasses the cache; the written lines head
     * straight for the WPQ (still requires sfence for a guarantee).
     */
    void ntstore(PmOff off, const void *src, std::size_t size,
                 TrafficClass cls = TrafficClass::Data);

    /**
     * Hardware-ordered persist: the lines overlapping [off, off+size)
     * enter the persistence domain immediately, with no fence.
     *
     * This models a hardware path that guarantees a write reaches the
     * ADR-protected write pending queue before any dependent later
     * store can retire — the ordering primitive hardware logging
     * schemes (EDE's dependency tracking, hardware SpecPMT's log
     * writes, Section 5) rely on. Software runtimes must NOT use it;
     * they only get clwb + sfence.
     */
    void adrPersist(PmOff off, std::size_t size,
                    TrafficClass cls = TrafficClass::Log);

    /** Charge pure computation time on the virtual clock. */
    void
    compute(SimNs ns)
    {
        std::lock_guard<std::mutex> guard(mutex_);
        if (timed())
            timing_.compute(ns);
    }

    /**
     * Restrict the virtual clock to the calling thread. Background
     * helpers (SPHT's replayer, SpecPMT's reclaimer) run on dedicated
     * cores in the paper's methodology; with this set, their device
     * operations still count in the traffic statistics but do not
     * advance the measured thread's clock.
     */
    void
    timeOnlyCallingThread()
    {
        std::lock_guard<std::mutex> guard(mutex_);
        timedThreadOnly_ = true;
        timedThread_ = std::this_thread::get_id();
    }

    /// @}

    /** @name Crash machinery */
    /// @{

    /**
     * Compute the post-crash memory image under @p policy without
     * modifying the device, so tests can sweep many policies from a
     * single execution point.
     */
    std::vector<std::uint8_t> crashImage(const CrashPolicy &policy) const;

    /**
     * Simulate a power failure: the volatile state collapses to the
     * crash image, all cache/WPQ state is lost.
     */
    void simulateCrash(const CrashPolicy &policy);

    /** Reset both images from an externally captured crash image. */
    void resetFromImage(const std::vector<std::uint8_t> &image);

    /**
     * Flush and fence every dirty line (clean shutdown / mode switch,
     * Section 4.3.1's wbnoinvd analog).
     */
    void drainAll(TrafficClass cls = TrafficClass::Data);

    /// @}

    /**
     * Arm a crash for the *calling thread*: after @p ops further
     * persistence-relevant operations (stores, effective flushes,
     * fences) from this thread, the device throws SimulatedCrash.
     * Other threads are unaffected. Pass a negative value to disarm.
     */
    void armCrash(long ops);

    /**
     * Arm with an external countdown, which may be shared with other
     * devices so it indexes the combined persistence-event sequence
     * (see CrashCountdown). Only events from the calling thread
     * decrement it. Pass nullptr to disarm.
     */
    void armCrash(std::shared_ptr<CrashCountdown> countdown);

    /** The countdown currently armed on this device (may be null). */
    std::shared_ptr<CrashCountdown> crashCountdown() const;

    /**
     * Inject a persistence fault (see DeviceFault). Used by the crash
     * explorer's self-test to prove injected consistency regressions
     * are detected; production code paths never call this.
     */
    void injectFault(DeviceFault fault);

    /** @name Introspection */
    /// @{

    /** Direct read-only view of the volatile image. */
    const std::uint8_t *raw() const { return volatileImage_.data(); }

    /** Direct read-only view of the persistent image. */
    const std::uint8_t *
    persistentRaw() const
    {
        return persistentImage_.data();
    }

    /** True if the line containing @p off has unflushed stores. */
    bool isLineDirty(PmOff off) const;

    /** Number of currently dirty lines. */
    std::size_t dirtyLineCount() const;

    /**
     * Monotonically increasing persistence-event id: the number of
     * persistence-relevant operations (stores, effective flushes,
     * fences, nt-stores, hardware persists) the device has executed,
     * from any thread. Crash-schedule exploration keys replay tokens
     * off this sequence.
     */
    std::uint64_t persistEventId() const;

    /** Event counters. */
    const DeviceStats &stats() const { return stats_; }

    /** Zero the event counters (images unaffected). */
    void
    clearStats()
    {
        publishMetrics(); // keep registry totals before the reset
        stats_ = DeviceStats{};
        published_ = DeviceStats{};
    }

    /**
     * Flush this device's traffic counters (and its timing model's
     * attribution) into the process-wide metrics registry as a bulk
     * delta. The data-path hot paths only bump the plain DeviceStats
     * members; the registry catches up here — on destruction,
     * clearStats(), or an explicit call before a snapshot.
     */
    void publishMetrics();

    /** The virtual clock / latency model. */
    PmemTiming &timing() { return timing_; }
    const PmemTiming &timing() const { return timing_; }

    /// @}

  private:
    using Line = std::array<std::uint8_t, kCacheLineSize>;

    void checkRange(PmOff off, std::size_t size) const;
    void clwbLocked(PmOff off, TrafficClass cls);
    void maybeCrash();

    /** Whether the calling thread's ops advance the virtual clock. */
    bool
    timed() const
    {
        return !timedThreadOnly_ ||
               std::this_thread::get_id() == timedThread_;
    }

    mutable std::mutex mutex_;
    std::vector<std::uint8_t> volatileImage_;
    std::vector<std::uint8_t> persistentImage_;
    /** Lines with stores newer than any flush. */
    std::unordered_set<std::uint64_t> dirtyLines_;
    /** Flushed-but-unfenced line snapshots, keyed by line index. */
    std::unordered_map<std::uint64_t, Line> pendingLines_;
    DeviceStats stats_;
    /** stats_ values already flushed by publishMetrics(). */
    DeviceStats published_;
    PmemTiming timing_;
    /** Crash-injection countdown; null = disarmed. */
    std::shared_ptr<CrashCountdown> countdown_;
    std::thread::id crashThread_;
    /** Persistence-event id counter (see persistEventId()). */
    std::uint64_t persistEvents_ = 0;
    /** Injected persistence fault (DeviceFault::None normally). */
    DeviceFault fault_ = DeviceFault::None;
    /** Virtual-clock thread filter (see timeOnlyCallingThread). */
    bool timedThreadOnly_ = false;
    std::thread::id timedThread_;
};

} // namespace specpmt::pmem

#endif // SPECPMT_PMEM_PMEM_DEVICE_HH
